// Packaging trade-off study: sweep the power-delivery network's impedance
// from "meets spec" (expensive) to 400% of target (cheap) and show how the
// microarchitectural controller lets a cheap package behave like an
// expensive one — the paper's core economic argument.
package main

import (
	"fmt"
	"log"

	"didt"
)

func main() {
	prog := didt.Stressmark(didt.StressmarkParams{Iterations: 2000})

	fmt.Println("Packaging vs control: dI/dt stressmark across impedance points")
	fmt.Println()
	fmt.Printf("%-12s %-24s %-24s\n", "impedance", "uncontrolled", "with FU/DL1/IL1 control")
	fmt.Printf("%-12s %-10s %-12s %-10s %-12s %-8s\n", "", "emerg", "minV", "emerg", "minV", "slowdown")

	for _, pct := range []float64{1, 2, 3, 4} {
		var sp didt.RunSpec
		sp.PDN.ImpedancePct = pct
		base, err := didt.NewSystem(prog, didt.Options{Spec: sp})
		if err != nil {
			log.Fatal(err)
		}
		baseRes, err := base.Run()
		if err != nil {
			log.Fatal(err)
		}

		sp.Control.Enabled = true
		sp.Actuator.Mechanism = didt.FUDL1IL1.Name
		sp.Sensor.DelayCycles = 2
		ctl, err := didt.NewSystem(prog, didt.Options{Spec: sp})
		if err != nil {
			log.Fatal(err)
		}
		ctlRes, err := ctl.Run()
		if err != nil {
			log.Fatal(err)
		}

		slow := float64(ctlRes.Cycles)/float64(baseRes.Cycles) - 1
		fmt.Printf("%-12s %-10d %-12.4f %-10d %-12.4f %-.1f%%\n",
			fmt.Sprintf("%.0f%%", pct*100),
			baseRes.Emergencies, baseRes.MinV,
			ctlRes.Emergencies, ctlRes.MinV,
			slow*100)
	}

	fmt.Println()
	fmt.Println("A controller plus a cheap 200% package delivers the safety of the")
	fmt.Println("expensive 100% package — the augmentation the paper proposes in")
	fmt.Println("place of 'packaging heroics'.")
}
