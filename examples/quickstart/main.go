// Quickstart: build the dI/dt stressmark, run it on the coupled
// processor/power/PDN simulation at a 200%-of-target impedance, then run
// it again with the threshold controller enabled and compare.
package main

import (
	"fmt"
	"log"

	"didt"
)

func main() {
	prog := didt.Stressmark(didt.StressmarkParams{Iterations: 2000})

	// Uncontrolled: a cheap package (200% of target impedance) exposed to
	// the resonant stressmark.
	var uncontrolled didt.RunSpec
	uncontrolled.PDN.ImpedancePct = 2
	base, err := didt.NewSystem(prog, didt.Options{Spec: uncontrolled})
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := base.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Controlled: same package, threshold controller with a 2-cycle sensor
	// and the FU/DL1 actuator.
	controlled := uncontrolled
	controlled.Control.Enabled = true
	controlled.Actuator.Mechanism = didt.FUDL1.Name
	controlled.Sensor.DelayCycles = 2
	ctl, err := didt.NewSystem(prog, didt.Options{Spec: controlled})
	if err != nil {
		log.Fatal(err)
	}
	ctlRes, err := ctl.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("dI/dt stressmark at 200% of target impedance")
	fmt.Println()
	fmt.Printf("%-22s %15s %15s\n", "", "uncontrolled", "controlled")
	fmt.Printf("%-22s %15d %15d\n", "cycles", baseRes.Cycles, ctlRes.Cycles)
	fmt.Printf("%-22s %15.2f %15.2f\n", "IPC", baseRes.IPC(), ctlRes.IPC())
	fmt.Printf("%-22s %12.4f V %12.4f V\n", "minimum voltage", baseRes.MinV, ctlRes.MinV)
	fmt.Printf("%-22s %12.4f V %12.4f V\n", "maximum voltage", baseRes.MaxV, ctlRes.MaxV)
	fmt.Printf("%-22s %15d %15d\n", "emergency cycles", baseRes.Emergencies, ctlRes.Emergencies)
	fmt.Printf("%-22s %13.4g J %13.4g J\n", "energy", baseRes.Energy, ctlRes.Energy)
	fmt.Println()
	th := ctlRes.Thresholds
	fmt.Printf("controller thresholds: low %.4f V, high %.4f V (safe window %.1f mV)\n",
		th.Low, th.High, th.SafeWindow*1e3)
	fmt.Printf("actuations: %d clock-gating events, %d phantom firings\n",
		ctlRes.LowEvents, ctlRes.HighEvents)
	slow := float64(ctlRes.Cycles)/float64(baseRes.Cycles) - 1
	fmt.Printf("cost of safety: %.1f%% slowdown, %.1f%% energy\n",
		slow*100, (ctlRes.Energy/baseRes.Energy-1)*100)
}
