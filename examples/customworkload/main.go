// Customworkload: write your own kernel in the library's assembly syntax,
// assemble it, and put it under dI/dt control. Demonstrates the assembler
// front end and threshold/actuation introspection for code the library has
// never seen.
package main

import (
	"fmt"
	"log"

	"didt"
)

// A hand-written resonance kernel in the paper's Figure 8 style: a divide
// stall followed by a dependent burst, with the loop-carried dependence
// through memory.
const src = `
    ; setup
    ldi  r4, 65536
    ldi  r9, 1500          ; iterations
    fldi f2, 1.0000001
    fldi f1, 1.5
    fst  f1, 0(r4)
loop:
    fld  f1, 0(r4)         ; depends on last iteration's store
    fdiv f3, f1, f2        ; quiet phase: serialized divides
    fdiv f3, f3, f2
    fdiv f3, f3, f2
    fst  f3, 8(r4)         ; publish result
    ld   r7, 8(r4)         ; reload as integer (cross-file move)
    cmovnz r3, r7, r31
    add  r10, r7, r11      ; burst: independent fan-out on r7
    add  r11, r7, r12
    add  r12, r7, r13
    add  r13, r7, r14
    xor  r14, r7, r10
    xor  r15, r7, r11
    st   r7, 64(r4)
    st   r7, 72(r4)
    st   r7, 80(r4)
    st   r7, 88(r4)
    fadd f10, f3, f11
    fadd f11, f3, f12
    fmul f12, f3, f2
    add  r10, r7, r13
    xor  r11, r7, r14
    st   r7, 112(r4)
    xor  r13, r7, r10
    add  r14, r7, r11
    st   r7, 136(r4)
    add  r10, r7, r13
    xor  r11, r7, r14
    st   r7, 160(r4)
    xor  r13, r7, r10
    add  r14, r7, r11
    st   r7, 184(r4)
    add  r10, r7, r13
    xor  r11, r7, r14
    st   r7, 208(r4)
    xor  r13, r7, r10
    add  r14, r7, r11
    st   r7, 232(r4)
    add  r10, r7, r13
    xor  r11, r7, r14
    st   r7, 256(r4)
    xor  r13, r7, r10
    add  r14, r7, r11
    st   r7, 280(r4)
    add  r10, r7, r13
    xor  r11, r7, r14
    st   r7, 304(r4)
    xor  r13, r7, r10
    add  r14, r7, r11
    st   r7, 328(r4)
    add  r10, r7, r13
    xor  r11, r7, r14
    st   r7, 352(r4)
    xor  r13, r7, r10
    add  r14, r7, r11
    st   r7, 376(r4)
    add  r10, r7, r13
    xor  r11, r7, r14
    st   r7, 400(r4)
    xor  r13, r7, r10
    fadd f10, f3, f12
    fadd f11, f3, f13
    fadd f12, f3, f14
    fadd f13, f3, f15
    fadd f14, f3, f10
    fadd f15, f3, f11
    fadd f10, f3, f12
    fadd f11, f3, f13
    fadd f12, f3, f14
    fadd f13, f3, f15
    fst  f3, 0(r4)         ; feed the next iteration
    addi r9, r9, -1
    bnez r9, loop
    halt
`

func main() {
	prog, err := didt.ParseAssembly(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d instructions\n\n", len(prog))

	for _, delay := range []int{0, 2, 4} {
		var sp didt.RunSpec
		sp.PDN.ImpedancePct = 4 // a very cheap package: this kernel needs control here
		sp.Control.Enabled = true
		sp.Actuator.Mechanism = didt.FUDL1.Name
		sp.Sensor.DelayCycles = delay
		sys, err := didt.NewSystem(prog, didt.Options{Spec: sp})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		th := res.Thresholds
		fmt.Printf("sensor delay %d: thresholds [%.4f, %.4f] V, window %.1f mV\n",
			delay, th.Low, th.High, th.SafeWindow*1e3)
		fmt.Printf("  %d cycles, V in [%.4f, %.4f], %d emergencies, %d gating events\n",
			res.Cycles, res.MinV, res.MaxV, res.Emergencies, res.LowEvents)
	}

	fmt.Println()
	fmt.Println("Slower sensors force more conservative thresholds (narrower safe")
	fmt.Println("windows) and trigger the actuator earlier and more often.")
}
