// Characterize: run a slice of the synthetic SPEC2000 suite the way the
// paper's Section 3.3 does — measure each benchmark's IPC, cache behavior
// and, most importantly, its supply-voltage distribution — and contrast
// stable against variable workloads (the paper's ammp-vs-swim observation).
package main

import (
	"fmt"
	"log"

	"didt"
)

func main() {
	benches := []string{"mcf", "twolf", "gcc", "crafty", "swim", "galgel", "mgrid", "sixtrack"}

	fmt.Println("Synthetic SPEC2000 characterization at 100% of target impedance")
	fmt.Println()
	fmt.Printf("%-10s %6s %8s %8s %10s %10s %10s\n",
		"bench", "IPC", "L1D-m%", "bpred-m%", "minV", "maxV", "spread-mV")

	for _, name := range benches {
		prog, err := didt.Benchmark(name, 3000)
		if err != nil {
			log.Fatal(err)
		}
		var sp didt.RunSpec
		sp.PDN.ImpedancePct = 1
		sp.Budget.MaxCycles = 250000
		sp.Budget.WarmupCycles = 40000
		sys, err := didt.NewSystem(prog, didt.Options{Spec: sp})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			log.Fatal(err)
		}
		mispred := 0.0
		if res.Stats.BranchLookups > 0 {
			mispred = float64(res.Stats.Mispredicts) / float64(res.Stats.BranchLookups) * 100
		}
		fmt.Printf("%-10s %6.2f %8.2f %8.2f %10.4f %10.4f %10.1f\n",
			name, res.IPC(),
			res.Stats.L1DMissRate*100, mispred,
			res.MinV, res.MaxV, (res.MaxV-res.MinV)*1e3)
	}

	fmt.Println()
	fmt.Println("Memory-bound benchmarks (mcf) hold a flat, quiet voltage; bursty")
	fmt.Println("floating-point codes (swim, galgel) swing across a wide band —")
	fmt.Println("the distribution contrast of the paper's Figure 10.")
}
