// Designflow walks the paper's Figure 13 methodology explicitly, step by
// step: analyze the power supply system, analyze the processor model, find
// the worst case, solve for thresholds, then verify on the cycle
// simulator. This is the example to read when adapting the library to a
// different package or core.
package main

import (
	"fmt"
	"log"

	"didt"
	"didt/internal/actuator"
	"didt/internal/control"
	"didt/internal/core"
	"didt/internal/pdn"
	"didt/internal/power"
	"didt/internal/spec"
)

func main() {
	fmt.Println("The Figure 13 design flow, step by step")
	fmt.Println()

	// Step 1: analyze the power supply system — resonant frequency and
	// peak impedance.
	iMin, iMax := 11.0, 51.0 // from the envelope probe; see step 2
	net, err := pdn.Calibrate(pdn.Params{IFloor: 0.5 * (iMin + iMax)}, iMin, iMax, 2)
	if err != nil {
		log.Fatal(err)
	}
	sys2 := net.System()
	fmt.Printf("1. power supply analysis:\n")
	fmt.Printf("   resonant frequency %.0f MHz, peak impedance %.2f mΩ (200%% of target)\n",
		sys2.ResonantFreq()/1e6, sys2.PeakImpedance()*1e3)
	fmt.Printf("   resonant period %d CPU cycles at 3 GHz; damping ζ = %.2f\n",
		net.ResonantPeriodCycles(), sys2.DampingRatio())

	// Step 2: analyze the processor model — minimum and maximum power.
	pm := power.New(power.Params{}, didt.CPUConfig{})
	fmt.Printf("\n2. processor power analysis:\n")
	fmt.Printf("   idle floor %.1f A, absolute unit-peak sum %.1f A\n", pm.MinCurrent(), pm.MaxCurrent())
	fmt.Printf("   (the coupled system measures the *achievable* maximum with a saturation probe)\n")

	// Step 3: the worst-case waveform — a square wave over the envelope at
	// the resonant period.
	dev := net.WorstCaseDeviation(iMin, iMax)
	fmt.Printf("\n3. worst-case waveform: resonant square %g↔%g A -> ±%.1f mV (band is ±50 mV)\n",
		iMin, iMax, dev*1e3)

	// Step 4: solve for thresholds under each sensor delay.
	solver := control.NewSolver(net)
	floor, ceil := actuator.FUDL1.Envelope(pm)
	fmt.Printf("\n4. threshold solving (FU/DL1 authority: floor %.1f A, ceiling %.1f A):\n", floor, ceil)
	for _, d := range []int{0, 2, 4} {
		th, err := solver.Solve(control.Envelope{
			IMin: iMin, IMax: iMax, Floor: floor, Ceil: ceil, Settle: 2,
		}, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   delay %d: low %.4f V, high %.4f V (window %.1f mV, stable=%v)\n",
			d, th.Low, th.High, th.SafeWindow*1e3, th.Stable)
	}

	// Step 5: simulate processor voltage and performance with the
	// thresholds in the loop.
	prog := didt.Stressmark(didt.StressmarkParams{Iterations: 1500})
	var sp spec.RunSpec
	sp.PDN.ImpedancePct = 2
	sp.Control.Enabled = true
	sp.Actuator.Mechanism = actuator.FUDL1.Name
	sp.Sensor.DelayCycles = 2
	run, err := core.NewSystem(prog, core.Options{Spec: sp})
	if err != nil {
		log.Fatal(err)
	}
	res, err := run.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n5. closed-loop verification on the stressmark:\n")
	fmt.Printf("   V ∈ [%.4f, %.4f], emergencies %d, gating events %d, IPC %.2f\n",
		res.MinV, res.MaxV, res.Emergencies, res.LowEvents, res.IPC())
}
