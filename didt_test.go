package didt

import (
	"bytes"
	"testing"
)

func TestFacadeQuickLoop(t *testing.T) {
	prog := Stressmark(StressmarkParams{Iterations: 300})
	var sp RunSpec
	sp.PDN.ImpedancePct = 2
	sp.Budget.MaxCycles = 60000
	sys, err := NewSystem(prog, Options{Spec: sp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Instructions == 0 {
		t.Error("nothing retired")
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	if got := len(Benchmarks()); got != 26 {
		t.Errorf("%d benchmarks, want 26", got)
	}
	prog, err := Benchmark("gcc", 20)
	if err != nil || len(prog) == 0 {
		t.Fatalf("Benchmark(gcc): %v", err)
	}
	if _, err := Benchmark("bogus", 0); err == nil {
		t.Error("want error for unknown benchmark")
	}
}

func TestFacadeParseAssembly(t *testing.T) {
	prog, err := ParseAssembly("ldi r1, 5\nhalt\n")
	if err != nil || len(prog) != 2 {
		t.Fatalf("ParseAssembly: %v", err)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) < 17 {
		t.Errorf("%d experiments", len(ids))
	}
	var buf bytes.Buffer
	if err := RunExperiment("fig1", QuickExperimentConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
	err := RunExperiment("nope", QuickExperimentConfig(), &buf)
	if err == nil {
		t.Fatal("want error for unknown id")
	}
	if _, ok := err.(*UnknownExperimentError); !ok {
		t.Errorf("want UnknownExperimentError, got %T", err)
	}
}

func TestMechanismsExported(t *testing.T) {
	for _, m := range []Mechanism{FU, FUDL1, FUDL1IL1, Ideal} {
		if m.Name == "" {
			t.Error("unnamed mechanism")
		}
	}
}
