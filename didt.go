// Package didt is a from-scratch reproduction of "Control Techniques to
// Eliminate Voltage Emergencies in High Performance Processors" (Joseph,
// Brooks, Martonosi; HPCA 2003): microarchitectural dI/dt control coupled
// to a cycle-level out-of-order processor simulator, a Wattch-style power
// model and a second-order power-delivery-network model.
//
// The facade re-exports the library's primary entry points:
//
//	prog := didt.Stressmark(didt.StressmarkParams{Iterations: 2000})
//	var sp didt.RunSpec
//	sp.PDN.ImpedancePct = 2
//	sp.Control.Enabled = true
//	sp.Actuator.Mechanism = didt.FUDL1.Name
//	sp.Sensor.DelayCycles = 2
//	sys, err := didt.NewSystem(prog, didt.Options{Spec: sp})
//	res, err := sys.Run()
//	fmt.Println(res.Emergencies, res.IPC())
//
// A RunSpec is plain data: zero values take the paper's defaults, the
// whole struct round-trips through JSON, and Key() gives a content hash
// of the fully resolved configuration.
//
// Subsystem packages live under internal/: the PDN mathematics (linsys,
// pdn), the machine (isa, bpred, mem, cpu), the power model (power), the
// control stack (sensor, actuator, control), the workloads (workload), and
// the experiment harness that regenerates every table and figure in the
// paper (experiments).
package didt

import (
	"io"

	"didt/internal/actuator"
	"didt/internal/control"
	"didt/internal/core"
	"didt/internal/cpu"
	"didt/internal/experiments"
	"didt/internal/isa"
	"didt/internal/pdn"
	"didt/internal/power"
	"didt/internal/spec"
	"didt/internal/telemetry"
	"didt/internal/workload"
)

// Core simulation types.
type (
	// Options attaches a RunSpec (plus host-side concerns such as tracing)
	// to a simulation; zero values take the paper's defaults (Table 1 core,
	// 3 GHz / 1.0 V / 50 MHz package).
	Options = core.Options
	// RunSpec is the complete, JSON-serializable description of one run.
	RunSpec = spec.RunSpec
	// Seed is an optional RNG seed that distinguishes "unset" from zero.
	Seed = spec.Seed
	// System is one assembled closed loop.
	System = core.System
	// Result summarizes a run.
	Result = core.Result
	// CycleState is the per-cycle view used for trace-level analysis.
	CycleState = core.CycleState

	// CPUConfig is the Table 1 machine configuration.
	CPUConfig = cpu.Config
	// PowerParams calibrates the Wattch-style power model.
	PowerParams = power.Params
	// PDNParams describes the package model.
	PDNParams = pdn.Params

	// Mechanism names an actuation granularity.
	Mechanism = actuator.Mechanism
	// Thresholds is a solved voltage-threshold pair.
	Thresholds = control.Thresholds

	// Program is an executable instruction sequence.
	Program = isa.Program
	// StressmarkParams shapes the dI/dt stressmark loop.
	StressmarkParams = workload.StressmarkParams
	// BenchmarkProfile parameterizes one synthetic SPEC2000 stand-in.
	BenchmarkProfile = workload.Profile

	// ExperimentConfig scales the table/figure harness.
	ExperimentConfig = experiments.Config

	// Tracer collects cycle-level telemetry events; attach one through
	// Options.Telemetry or ExperimentConfig.Telemetry and serialize it with
	// WriteChromeTrace or WriteJSONL.
	Tracer = telemetry.Tracer
	// MetricsRegistry holds counters, gauges and histograms; the process
	// default is Metrics().
	MetricsRegistry = telemetry.Registry
	// MetricsManifest is the machine-readable run summary.
	MetricsManifest = telemetry.Manifest
)

// Actuation mechanisms (Section 5.1 granularities plus the ideal actuator
// of Section 4).
var (
	FU       = actuator.FU
	FUDL1    = actuator.FUDL1
	FUDL1IL1 = actuator.FUDL1IL1
	Ideal    = actuator.Ideal
)

// NewSystem assembles the coupled processor/power/PDN/controller loop for
// a program.
func NewSystem(prog Program, opts Options) (*System, error) {
	return core.NewSystem(prog, opts)
}

// DefaultSpec returns the fully resolved paper-default run spec; override
// fields and pass it through Options.Spec.
func DefaultSpec() RunSpec { return spec.Default() }

// Stressmark builds the paper's dI/dt stressmark (Section 3.2).
func Stressmark(p StressmarkParams) Program { return workload.Stressmark(p) }

// Benchmarks lists the 26 synthetic SPEC2000 stand-ins.
func Benchmarks() []string { return workload.Names() }

// Benchmark generates the named synthetic benchmark with the given loop
// trip count (0 = default).
func Benchmark(name string, iterations int) (Program, error) {
	p, err := workload.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	p.Iterations = iterations
	return workload.Generate(p), nil
}

// ParseAssembly assembles textual assembly into a Program.
func ParseAssembly(src string) (Program, error) { return isa.ParseString(src) }

// Experiments lists the paper-reproduction experiment identifiers in
// paper order.
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's tables or figures, writing
// the rendered result to w. Use DefaultExperimentConfig or
// QuickExperimentConfig for cfg.
func RunExperiment(id string, cfg ExperimentConfig, w io.Writer) error {
	runner, ok := experiments.Registry()[id]
	if !ok {
		return &UnknownExperimentError{ID: id}
	}
	return runner(cfg, w)
}

// DefaultExperimentConfig is the full-size harness configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }

// QuickExperimentConfig is a reduced configuration for smoke tests.
func QuickExperimentConfig() ExperimentConfig { return experiments.Quick() }

// NewTracer builds a cycle tracer whose streams retain at most ringCap
// events each (0 = default). Tracers are nil-safe: a nil *Tracer attached
// anywhere records nothing at no cost.
func NewTracer(ringCap int) *Tracer { return telemetry.NewTracer(ringCap) }

// Metrics is the process-wide metrics registry that the simulator's
// subsystems publish into.
func Metrics() *MetricsRegistry { return telemetry.Default() }

// WriteChromeTrace serializes a tracer in Chrome trace-event format
// (loadable in Perfetto or chrome://tracing). clockHz scales cycle
// timestamps to microseconds; 0 uses the paper's 3 GHz clock.
func WriteChromeTrace(w io.Writer, t *Tracer, clockHz float64) error {
	return telemetry.WriteChromeTrace(w, t, clockHz)
}

// WriteJSONL serializes a tracer as line-oriented JSON, one event per line.
func WriteJSONL(w io.Writer, t *Tracer) error { return telemetry.WriteJSONL(w, t) }

// UnknownExperimentError reports a bad experiment identifier.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "didt: unknown experiment " + e.ID + " (see Experiments())"
}
