#!/bin/sh
# CI gate: formatting, static analysis, vet, build, then the full test
# suite under the race detector. The race run covers the parallel sweep
# engine (internal/sim) and the determinism contract
# (internal/experiments TestParallelOutputIdentical).
set -eux

# Formatting gate: gofmt must produce no diffs (testdata fixtures included —
# the analysistest runner parses them with the same toolchain).
test -z "$(gofmt -l .)"

# didtlint: the repo's own go/analysis-style suite (internal/analysis) —
# five intra-package analyzers (determinism, telemetryguard, hotpath,
# locks, directives) plus the whole-program ones (purity, ctxflow,
# goroleak, lockorder). Proves the determinism, telemetry-guard,
# hot-path, lock-discipline, and cancellation invariants the tests below
# only sample. Runs before the test suite so a contract violation fails
# fast with a file:line diagnostic. The run also emits a SARIF 2.1.0
# artifact (didtlint.sarif, uploadable to code-scanning UIs) and enforces
# the committed suppression budget: any drift in //didt:allow counts —
# up OR down — against didtlint.baseline.json fails the gate. After a
# reviewed change to the suppressions, regenerate the budget with
# `go run ./cmd/didtlint -baseline didtlint.baseline.json -write-baseline ./...`.
# (didtlint is standalone because golang.org/x/tools is not vendored; if it
# ever is, these analyzers can also be adapted behind `go vet -vettool`.)
go run ./cmd/didtlint -sarif didtlint.sarif -baseline didtlint.baseline.json ./...

# Span-guard gate, called out explicitly: the packages where an unguarded
# Tracer.Start/Span.End would tax every request and every sweep job. The
# ./... run above already covers them; this line keeps the observability
# contract visible when the lint scope changes.
go run ./cmd/didtlint ./internal/server ./internal/telemetry

go vet ./...
go build ./...

# Spec golden gate: the resolved default run spec is public API — it is
# served by GET /v1/spec/default and every memo key hashes spec sections —
# so any drift from the checked-in golden must be deliberate. Regenerate
# with `go run ./cmd/didtd -print-default-spec > internal/spec/testdata/default_spec.json`
# after an intentional default change.
go run ./cmd/didtd -print-default-spec | diff - internal/spec/testdata/default_spec.json

go test -race ./...

# Determinism with telemetry enabled: rendered output AND serialized
# traces must be byte-identical at any worker count.
go test -race -count=1 -run TestParallelOutputIdenticalWithTelemetry ./internal/experiments

# didtd server smoke test under the race detector: sweep responses
# byte-identical to cmd/experiments output at parallel 1 and 8, graceful
# shutdown drains in-flight work (503 for new requests), admission
# overflow answers 429, and concurrent requests under memo capacity
# pressure never compute an in-flight study twice.
go test -race -count=1 -run 'TestServer' ./internal/server

# Observability smoke test under the race detector: a sweep served over
# SSE (with structured JSON logging and spans live) reconstructs the
# exact bytes of the non-streaming response, error envelopes carry trace
# ids that appear in the access log, and the Prometheus exposition parses.
go test -race -count=1 \
    -run 'TestSweepSSE|TestErrorEnvelope|TestAccessLogAndSpanCorrelation|TestMetricsPrometheusFormat' \
    ./internal/server

# Determinism with spans + structured logs on: experiment bytes identical
# at parallel 1 and 4 whether tracing is enabled or not.
go test -race -count=1 -run TestParallelOutputIdenticalWithSpans ./internal/experiments

# Multi-rail smoke test under the race detector: the rail-graph family's
# rendered bytes identical at parallel 1 and 8, and the multi-rail core
# (sequential RunBatch fallback, per-rail sensing, DVS composition) clean
# under race.
go test -race -count=1 -run 'TestRailsFamilyParallelDeterminism|TestMultiRail' \
    ./internal/experiments ./internal/core

# Result-store smoke test under the race detector: concurrent identical
# requests cost exactly one engine run (wire singleflight), a restarted
# server serves the stored bytes with the same ETag and answers
# If-None-Match with 304, /v1/batch deduplicates through the same store,
# and the store itself survives kill-restart, truncation and bit flips.
go test -race -count=1 \
    -run 'TestServerStore|TestServerSweepStoreRoundTrip|TestServerBatch|TestStore|TestEntry' \
    ./internal/server ./internal/store

# Allocation gate: the per-cycle simulation kernels (streaming PDN step,
# batched SoA step, FFT block convolution) must stay allocation-free —
# one allocation per cycle is the difference between the profiled ~50
# ns/cycle and multiples of it. The benchmarks run under -benchmem and
# any "N allocs/op" with N > 0 fails.
go test -run NONE -bench 'BenchmarkStep$|BenchmarkBatchStep$|BenchmarkConvolve$|BenchmarkGraphStep$' \
    -benchtime 100x -benchmem ./internal/pdn ./internal/fft | tee /tmp/didt_allocgate.txt
! grep -E ' [1-9][0-9]* allocs/op' /tmp/didt_allocgate.txt

# Perf gate: the telemetry-off hot path (a disabled cycle tracer attached
# to every system) and the spans-off hot path (a disabled span tracer in
# the run context — didtd with -spans=false) must both stay within
# CI_BENCH_TOLERANCE_PCT (default 10%) of the bare serial sweep measured
# in the same process — a ratio, so the gate is insensitive to how fast
# the shared CI host happens to be running. Regenerate the committed
# BENCH_sweep.json (including spans_off_ns_per_op) with
# `go run ./cmd/benchreport` after intentional perf changes.
go run ./cmd/benchreport -check -baseline BENCH_sweep.json \
    -tolerance "${CI_BENCH_TOLERANCE_PCT:-10}"
