#!/bin/sh
# CI gate: vet, build, then the full test suite under the race detector.
# The race run covers the parallel sweep engine (internal/sim) and the
# determinism contract (internal/experiments TestParallelOutputIdentical).
set -eux

go vet ./...
go build ./...
go test -race ./...

# Determinism with telemetry enabled: rendered output AND serialized
# traces must be byte-identical at any worker count.
go test -race -count=1 -run TestParallelOutputIdenticalWithTelemetry ./internal/experiments

# Perf gate: the telemetry-off hot path (a disabled tracer attached to
# every system, the configuration all production sweeps run in) must stay
# within CI_BENCH_TOLERANCE_PCT (default 5%) of the committed
# BENCH_sweep.json baseline. Regenerate the baseline with
# `go run ./cmd/benchreport` after intentional perf changes.
go run ./cmd/benchreport -check -baseline BENCH_sweep.json \
    -tolerance "${CI_BENCH_TOLERANCE_PCT:-5}"
