module didt

go 1.22
