package didt_test

import (
	"fmt"
	"log"
	"os"

	"didt"
)

// Example demonstrates the core loop: run the dI/dt stressmark on a cheap
// package with the threshold controller and inspect the outcome.
func Example() {
	prog := didt.Stressmark(didt.StressmarkParams{Iterations: 500})
	var sp didt.RunSpec
	sp.PDN.ImpedancePct = 2
	sp.Control.Enabled = true
	sp.Actuator.Mechanism = didt.FUDL1.Name
	sp.Sensor.DelayCycles = 2
	sp.Budget.MaxCycles = 200000
	sys, err := didt.NewSystem(prog, didt.Options{Spec: sp})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("emergencies:", res.Emergencies)
	// Output: emergencies: 0
}

// ExampleBenchmark shows how to run one of the synthetic SPEC2000
// stand-ins uncontrolled for characterization.
func ExampleBenchmark() {
	prog, err := didt.Benchmark("gcc", 200)
	if err != nil {
		log.Fatal(err)
	}
	var sp didt.RunSpec
	sp.PDN.ImpedancePct = 1
	sp.Budget.MaxCycles = 100000
	sys, err := didt.NewSystem(prog, didt.Options{Spec: sp})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inside the band:", res.Emergencies == 0)
	// Output: inside the band: true
}

// ExampleParseAssembly assembles a custom kernel in the library's textual
// syntax.
func ExampleParseAssembly() {
	prog, err := didt.ParseAssembly(`
	  ldi  r1, 3
	loop:
	  addi r1, r1, -1
	  bnez r1, loop
	  halt
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instructions:", len(prog))
	// Output: instructions: 4
}

// ExampleRunExperiment regenerates one of the paper's artifacts.
func ExampleRunExperiment() {
	err := didt.RunExperiment("fig1", didt.QuickExperimentConfig(), os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
}
