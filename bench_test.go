package didt

// Benchmark harness: one testing.B benchmark per paper table and figure.
// Each benchmark regenerates its artifact through the experiment harness
// with the reduced Quick configuration so `go test -bench=.` completes in
// minutes; run cmd/experiments with the default configuration for the
// full-size regeneration recorded in EXPERIMENTS.md.
//
// Shared studies are memoized inside the experiments package, so for the
// heavyweight sweeps (table2, fig14-17, stressmark-actuation) the FIRST
// iteration pays the full simulation cost and subsequent iterations
// measure only result rendering; single-iteration numbers (b.N == 1) are
// the honest end-to-end cost.

import (
	"context"
	"io"
	"testing"

	"didt/internal/core"
	"didt/internal/experiments"
	"didt/internal/pdn"
	"didt/internal/telemetry"
	"didt/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Quick()
	reg := experiments.Registry()
	runner, ok := reg[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runner(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1 regenerates the ITRS impedance-trend figure.
func BenchmarkFig1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2 regenerates the second-order frequency/step responses.
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3 regenerates the narrow-spike response.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4 regenerates the wide-spike response.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates the notched-spike response.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates the resonant pulse-train response.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig9 regenerates the stressmark-vs-worst-case comparison.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkTable2 regenerates the voltage-emergency sweep.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig10 regenerates the voltage distributions.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates the controller-in-action trace.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkTable3 regenerates the thresholds-under-delay table.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig14 regenerates the sensor-delay performance study.
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15 regenerates the sensor-delay energy study.
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16 regenerates the sensor-error study.
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkFig17 regenerates the actuator-granularity performance study.
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17") }

// BenchmarkFig18 regenerates the actuator-granularity energy study.
func BenchmarkFig18(b *testing.B) { benchExperiment(b, "fig18") }

// BenchmarkStressmarkActuation regenerates the Section 5.2/5.3 stressmark
// numbers.
func BenchmarkStressmarkActuation(b *testing.B) { benchExperiment(b, "stressmark-actuation") }

// --------------------------------------------------------------------------
// Component micro-benchmarks: the substrate costs a downstream user cares
// about (simulation throughput, solver latency).

// BenchmarkCoupledCycles measures end-to-end coupled-simulation throughput
// in cycles per second (stressmark, uncontrolled, 200% impedance).
func BenchmarkCoupledCycles(b *testing.B) {
	prog := Stressmark(StressmarkParams{Iterations: 1 << 30})
	var sp RunSpec
	sp.PDN.ImpedancePct = 2
	sp.Budget.MaxCycles = 1 << 62
	sys, err := NewSystem(prog, Options{Spec: sp})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.StepCycle()
	}
}

// BenchmarkControlledCycles measures coupled throughput with the threshold
// controller in the loop.
func BenchmarkControlledCycles(b *testing.B) {
	prog := Stressmark(StressmarkParams{Iterations: 1 << 30})
	var sp RunSpec
	sp.PDN.ImpedancePct = 2
	sp.Control.Enabled = true
	sp.Sensor.DelayCycles = 2
	sp.Budget.MaxCycles = 1 << 62
	sys, err := NewSystem(prog, Options{Spec: sp})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.StepCycle()
	}
}

// BenchmarkTelemetryOff measures coupled throughput with a tracer attached
// but disabled — the configuration every production sweep runs in. The
// observability contract is that this stays within 2% of
// BenchmarkCoupledCycles: the per-cycle cost of disabled telemetry is one
// pointer test plus one atomic load.
func BenchmarkTelemetryOff(b *testing.B) {
	tracer := NewTracer(0)
	tracer.SetEnabled(false)
	prog := Stressmark(StressmarkParams{Iterations: 1 << 30})
	var sp RunSpec
	sp.PDN.ImpedancePct = 2
	sp.Budget.MaxCycles = 1 << 62
	sys, err := NewSystem(prog, Options{
		Spec: sp, Telemetry: tracer, TelemetryName: "bench",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.StepCycle()
	}
}

// BenchmarkTelemetryOn measures coupled throughput with cycle tracing
// live, bounding the cost of a fully-instrumented run.
func BenchmarkTelemetryOn(b *testing.B) {
	tracer := NewTracer(0)
	prog := Stressmark(StressmarkParams{Iterations: 1 << 30})
	var sp RunSpec
	sp.PDN.ImpedancePct = 2
	sp.Budget.MaxCycles = 1 << 62
	sys, err := NewSystem(prog, Options{
		Spec: sp, Telemetry: tracer, TelemetryName: "bench",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.StepCycle()
	}
}

// --------------------------------------------------------- sweep engine

// sweepBenchConfig is a reduced multi-experiment sweep: large enough that
// the worker pool has real work to distribute, small enough for -bench
// runs to finish quickly.
func sweepBenchConfig(parallel int) experiments.Config {
	cfg := experiments.Quick()
	cfg.Cycles = 30_000
	cfg.Warmup = 10_000
	cfg.Iterations = 300
	cfg.StressIter = 250
	cfg.Benchmarks = []string{"swim", "gcc"}
	cfg.Parallel = parallel
	return cfg
}

func benchSweep(b *testing.B, parallel int) {
	b.Helper()
	ids := []string{"table2", "fig14", "stressmark-actuation", "ablation-window"}
	reg := experiments.Registry()
	cfg := sweepBenchConfig(parallel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Reset every memo so each iteration pays the full simulation
		// cost; otherwise iterations after the first measure rendering.
		experiments.ResetMemo()
		experiments.ResetRunCache()
		workload.ResetProgramCache()
		pdn.ResetKernelCache()
		core.ResetEnvelopeCache()
		for _, id := range ids {
			if err := reg[id](cfg, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepSerial runs the sweep-heavy experiment set on one worker.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel runs the same set with one worker per core;
// output is byte-identical to the serial run (see internal/experiments
// TestParallelOutputIdentical).
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkSpansOff runs the parallel sweep with a span tracer threaded
// through the request context but disabled — exactly how didtd executes
// when -spans=false, and the hot path every enabled-but-not-sampling
// request takes inside sim.Map. The observability contract is that this
// stays within 2% of BenchmarkSweepParallel: a disabled tracer costs one
// pointer test per job dispatch, nothing more.
func BenchmarkSpansOff(b *testing.B) {
	tracer := telemetry.NewTracer(0)
	tracer.SetEnabled(false)
	ctx := telemetry.ContextWithTracer(context.Background(), tracer)
	ids := []string{"table2", "fig14", "stressmark-actuation", "ablation-window"}
	reg := experiments.Registry()
	cfg := sweepBenchConfig(0)
	cfg.Ctx = ctx
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.ResetMemo()
		experiments.ResetRunCache()
		workload.ResetProgramCache()
		pdn.ResetKernelCache()
		core.ResetEnvelopeCache()
		for _, id := range ids {
			if err := reg[id](cfg, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}
