// Package trace provides per-cycle current and voltage trace containers
// with summary statistics and CSV import/export. Traces are the interchange
// format between the cycle simulator, the PDN model, and the experiment
// harness (the paper's Figure 7 data flow).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Trace is a sequence of per-cycle samples (amperes for current traces,
// volts for voltage traces).
type Trace []float64

// Min returns the smallest sample, or +Inf for an empty trace.
func (t Trace) Min() float64 {
	m := math.Inf(1)
	for _, v := range t {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample, or -Inf for an empty trace.
func (t Trace) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean, or 0 for an empty trace.
func (t Trace) Mean() float64 {
	if len(t) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range t {
		s += v
	}
	return s / float64(len(t))
}

// StdDev returns the population standard deviation.
func (t Trace) StdDev() float64 {
	if len(t) == 0 {
		return 0
	}
	m := t.Mean()
	s := 0.0
	for _, v := range t {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(t)))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank on a
// sorted copy. An empty trace returns 0.
func (t Trace) Percentile(p float64) float64 {
	if len(t) == 0 {
		return 0
	}
	c := append(Trace(nil), t...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(c)))) - 1
	if idx < 0 {
		idx = 0
	}
	return c[idx]
}

// CountBelow returns how many samples are strictly below x.
func (t Trace) CountBelow(x float64) int {
	n := 0
	for _, v := range t {
		if v < x {
			n++
		}
	}
	return n
}

// CountAbove returns how many samples are strictly above x.
func (t Trace) CountAbove(x float64) int {
	n := 0
	for _, v := range t {
		if v > x {
			n++
		}
	}
	return n
}

// CountOutside returns how many samples fall outside [lo, hi]; for voltage
// traces with the emergency band this is the emergency-cycle count.
func (t Trace) CountOutside(lo, hi float64) int {
	return t.CountBelow(lo) + t.CountAbove(hi)
}

// MaxStep returns the largest absolute cycle-to-cycle change — the dI/dt
// figure of merit for a current trace.
func (t Trace) MaxStep() float64 {
	m := 0.0
	for i := 1; i < len(t); i++ {
		if d := math.Abs(t[i] - t[i-1]); d > m {
			m = d
		}
	}
	return m
}

// Slice returns t[lo:hi] clamped to valid bounds.
func (t Trace) Slice(lo, hi int) Trace {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t) {
		hi = len(t)
	}
	if lo >= hi {
		return nil
	}
	return t[lo:hi]
}

// WriteCSV emits "cycle,value" rows with a header.
func (t Trace) WriteCSV(w io.Writer, valueName string) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "cycle,%s\n", valueName); err != nil {
		return err
	}
	for i, v := range t {
		if _, err := fmt.Fprintf(bw, "%d,%g\n", i, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the format written by WriteCSV (header optional; the
// second column is taken as the value).
func ReadCSV(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	var out Trace
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) < 2 {
			return nil, fmt.Errorf("trace: line %d: want 2 columns, got %q", line, text)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
