package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryStats(t *testing.T) {
	tr := Trace{1, 2, 3, 4, 5}
	if tr.Min() != 1 || tr.Max() != 5 {
		t.Errorf("min/max: %g/%g", tr.Min(), tr.Max())
	}
	if tr.Mean() != 3 {
		t.Errorf("mean: %g", tr.Mean())
	}
	if got := tr.StdDev(); math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Errorf("stddev: %g", got)
	}
}

func TestEmptyTrace(t *testing.T) {
	var tr Trace
	if !math.IsInf(tr.Min(), 1) || !math.IsInf(tr.Max(), -1) {
		t.Error("empty min/max should be infinities")
	}
	if tr.Mean() != 0 || tr.StdDev() != 0 || tr.Percentile(50) != 0 {
		t.Error("empty aggregates should be zero")
	}
}

func TestPercentile(t *testing.T) {
	tr := Trace{5, 1, 4, 2, 3}
	if tr.Percentile(0) != 1 || tr.Percentile(100) != 5 {
		t.Error("extreme percentiles")
	}
	if got := tr.Percentile(50); got != 3 {
		t.Errorf("median: %g", got)
	}
	// Original order untouched.
	if tr[0] != 5 {
		t.Error("Percentile mutated the trace")
	}
}

func TestCounts(t *testing.T) {
	tr := Trace{0.94, 0.96, 1.0, 1.04, 1.06}
	if tr.CountBelow(0.95) != 1 || tr.CountAbove(1.05) != 1 {
		t.Error("below/above counts")
	}
	if tr.CountOutside(0.95, 1.05) != 2 {
		t.Error("outside count")
	}
}

func TestMaxStep(t *testing.T) {
	tr := Trace{10, 12, 50, 49}
	if got := tr.MaxStep(); got != 38 {
		t.Errorf("max step: %g", got)
	}
	if (Trace{7}).MaxStep() != 0 {
		t.Error("single sample has no step")
	}
}

func TestSliceClamps(t *testing.T) {
	tr := Trace{1, 2, 3}
	if got := tr.Slice(-5, 99); len(got) != 3 {
		t.Errorf("clamped slice: %v", got)
	}
	if got := tr.Slice(2, 1); got != nil {
		t.Errorf("inverted slice: %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Trace{1.5, -2.25, 1e-6}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf, "current"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "cycle,current\n") {
		t.Error("missing header")
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("length %d", len(got))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Errorf("sample %d: %g != %g", i, got[i], tr[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a\n")); err == nil {
		t.Error("want error for single column")
	}
	if _, err := ReadCSV(strings.NewReader("cycle,v\n0,notanumber\n")); err == nil {
		t.Error("want error for bad value")
	}
}

func TestPropertyMeanWithinRange(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		// Clamp to a physical range (amperes/volts) so the sum cannot
		// overflow; the trace type is for physical quantities.
		xs := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			xs[i] = math.Mod(x, 1e6)
		}
		tr := Trace(xs)
		m := tr.Mean()
		return m >= tr.Min()-1e-9 && m <= tr.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
