package cpu

import (
	"testing"

	"didt/internal/isa"
)

// run executes a program to completion (or maxCycles) and returns the CPU.
func run(t *testing.T, prog isa.Program, maxCycles int) *CPU {
	t.Helper()
	c, err := New(Config{}, prog)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < maxCycles; i++ {
		if _, done := c.Step(); done {
			if c.Err() != nil {
				t.Fatalf("cpu error: %v", c.Err())
			}
			return c
		}
	}
	t.Fatalf("program did not finish in %d cycles (pc=%d ruu=%d)", maxCycles, c.fetchPC, c.count)
	return nil
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("want error for empty program")
	}
	if _, err := New(Config{RUUSize: 1}, isa.Program{{Op: isa.HALT}}); err == nil {
		t.Error("want error for tiny RUU")
	}
	if _, err := New(Config{}, isa.Program{{Op: isa.JMP, Imm: 7}}); err == nil {
		t.Error("want error for invalid program")
	}
}

func TestTrivialProgramHalts(t *testing.T) {
	c := run(t, isa.Program{{Op: isa.HALT}}, 1000)
	if got := c.Stats().Instructions; got != 1 {
		t.Errorf("instructions = %d, want 1", got)
	}
}

func TestArithmeticResult(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 6).LdI(2, 7).Mul(3, 1, 2).Halt()
	c := run(t, b.MustBuild(), 1000)
	if c.Arch().R[3] != 42 {
		t.Errorf("r3 = %d, want 42", c.Arch().R[3])
	}
}

func TestIndependentOpsSuperscalar(t *testing.T) {
	// A warm loop of 64 independent single-cycle adds must sustain IPC well
	// above 1 (the 8-wide machine should approach its width). The loop
	// amortizes the cold-I-cache compulsory misses.
	b := isa.NewBuilder()
	b.LdI(20, 1000)
	b.Label("loop")
	for i := 0; i < 64; i++ {
		b.AddI(uint8(1+i%8), isa.ZeroReg, int64(i))
	}
	b.AddI(20, 20, -1)
	b.BneZ(20, "loop")
	b.Halt()
	c := run(t, b.MustBuild(), 200000)
	if ipc := c.Stats().IPC(); ipc < 2.0 {
		t.Errorf("independent adds IPC = %.2f, want > 2", ipc)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	// A chain of 64 dependent adds cannot exceed IPC 1.
	b := isa.NewBuilder()
	b.LdI(1, 0)
	for i := 0; i < 64; i++ {
		b.AddI(1, 1, 1)
	}
	b.Halt()
	c := run(t, b.MustBuild(), 5000)
	if c.Arch().R[1] != 64 {
		t.Fatalf("r1 = %d, want 64", c.Arch().R[1])
	}
	if ipc := c.Stats().IPC(); ipc > 1.2 {
		t.Errorf("dependent chain IPC = %.2f, want ~<1", ipc)
	}
}

func TestDependentVsIndependentTiming(t *testing.T) {
	mk := func(dep bool) isa.Program {
		b := isa.NewBuilder()
		b.LdI(1, 0)
		for i := 0; i < 100; i++ {
			if dep {
				b.AddI(1, 1, 1)
			} else {
				b.AddI(uint8(2+i%8), 1, 1)
			}
		}
		b.Halt()
		return b.MustBuild()
	}
	dep := run(t, mk(true), 5000).Stats().Cycles
	ind := run(t, mk(false), 5000).Stats().Cycles
	if ind >= dep {
		t.Errorf("independent (%d cycles) should beat dependent (%d cycles)", ind, dep)
	}
}

func TestFDivLongLatencyStalls(t *testing.T) {
	// Chained FDIVs: each takes LatFPDiv cycles, non-pipelined.
	b := isa.NewBuilder()
	b.FLdI(1, 1e30).FLdI(2, 1.5)
	for i := 0; i < 10; i++ {
		b.FDiv(1, 1, 2)
	}
	b.Halt()
	c := run(t, b.MustBuild(), 5000)
	if got := c.Stats().Cycles; got < 10*12 {
		t.Errorf("10 chained fdivs took %d cycles, want >= 120", got)
	}
}

func TestNonPipelinedDivOccupiesUnit(t *testing.T) {
	// 4 independent int divides on 2 units (20 cycles, non-pipelined) need
	// at least 2 waves: ~40+ cycles. Pipelined would take ~20.
	b := isa.NewBuilder()
	b.LdI(1, 100).LdI(2, 3)
	for i := 0; i < 4; i++ {
		b.Div(uint8(3+i), 1, 2)
	}
	b.Halt()
	c := run(t, b.MustBuild(), 5000)
	if got := c.Stats().Cycles; got < 40 {
		t.Errorf("4 divs on 2 non-pipelined units took %d cycles, want >= 40", got)
	}
}

func TestLoadStoreForwarding(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 0x1000).LdI(2, 77)
	b.St(2, 1, 0)
	b.Ld(3, 1, 0) // must see 77 via forwarding or memory
	b.Halt()
	c := run(t, b.MustBuild(), 5000)
	if c.Arch().R[3] != 77 {
		t.Errorf("r3 = %d, want 77", c.Arch().R[3])
	}
}

func TestColdLoadPaysMemoryLatency(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 0x100000)
	b.Ld(2, 1, 0)
	b.Add(3, 2, 2) // dependent on the load
	b.Halt()
	c := run(t, b.MustBuild(), 5000)
	memLat := c.Mem.Config().MemLat
	if got := int(c.Stats().Cycles); got < memLat {
		t.Errorf("cold load run took %d cycles, want >= %d", got, memLat)
	}
}

func TestWarmLoadsFast(t *testing.T) {
	// Two runs over the same line: second load should hit.
	b := isa.NewBuilder()
	b.LdI(1, 0x2000)
	b.Ld(2, 1, 0)
	b.Ld(3, 1, 8) // same line (64B lines)
	b.Halt()
	c := run(t, b.MustBuild(), 5000)
	if mr := c.Mem.L1D.MissRate(); mr >= 1.0 {
		t.Errorf("second load should hit L1: miss rate %.2f", mr)
	}
}

func TestLoopExecutesCorrectly(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 100).LdI(2, 0)
	b.Label("loop")
	b.Add(2, 2, 1)
	b.AddI(1, 1, -1)
	b.BneZ(1, "loop")
	b.Halt()
	c := run(t, b.MustBuild(), 100000)
	if c.Arch().R[2] != 5050 {
		t.Errorf("sum = %d, want 5050", c.Arch().R[2])
	}
	// The loop branch is highly predictable: mispredicts must be a handful
	// (cold BTB plus the final fall-through).
	if mp := c.Stats().Mispredicts; mp > 8 {
		t.Errorf("mispredicts = %d, want small", mp)
	}
}

func TestMispredictionCostsPenalty(t *testing.T) {
	// A data-dependent unpredictable branch pattern: compare cycles against
	// the same instruction count with a fully-biased branch.
	mk := func(pattern int64) isa.Program {
		b := isa.NewBuilder()
		b.LdI(1, 200) // trip count
		b.LdI(4, pattern)
		b.LdI(5, 0)
		b.Label("loop")
		// r6 = bit of r4 selected by (r1 & 63): pseudo-random for pattern.
		b.And(6, 1, 7)
		b.Emit(isa.Instr{Op: isa.SHR, Dst: 6, Src1: 4, Src2: 1})
		b.AddI(6, 6, 0)
		b.And(6, 6, 8)
		b.BeqZ(6, "skip")
		b.AddI(5, 5, 1)
		b.Label("skip")
		b.AddI(1, 1, -1)
		b.BneZ(1, "loop")
		b.Halt()
		return b.MustBuild()
	}
	// r8 must hold 1 for the AND mask; set via program? Simpler: encode
	// mask inline by initializing r8 before loop.
	withInit := func(pattern int64) isa.Program {
		b := isa.NewBuilder()
		b.LdI(8, 1)
		p := mk(pattern)
		for _, in := range p {
			// shift branch targets by 1 for the prepended instruction
			if in.IsBranch() && in.Op != isa.RET {
				in.Imm++
			}
			b.Emit(in)
		}
		return b.MustBuild()
	}
	biased := run(t, withInit(0), 200000)
	random := run(t, withInit(0x5DEECE66D), 200000)
	if random.Stats().Mispredicts <= biased.Stats().Mispredicts {
		t.Errorf("random pattern should mispredict more: %d vs %d",
			random.Stats().Mispredicts, biased.Stats().Mispredicts)
	}
	if random.Stats().Cycles <= biased.Stats().Cycles {
		t.Errorf("random pattern should be slower: %d vs %d cycles",
			random.Stats().Cycles, biased.Stats().Cycles)
	}
}

func TestCallRetRoundTrip(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 5)
	b.Emit(isa.Instr{Op: isa.CALL}) // patched below via label trick
	// Simpler to assemble textually:
	src := `
	  ldi r1, 0
	  ldi r2, 3
	loop:
	  call fn
	  addi r2, r2, -1
	  bnez r2, loop
	  halt
	fn:
	  addi r1, r1, 10
	  ret
	`
	p, err := isa.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	c := run(t, p, 100000)
	if c.Arch().R[1] != 30 {
		t.Errorf("r1 = %d, want 30", c.Arch().R[1])
	}
}

func TestGatingFUsStallsExecution(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 0)
	for i := 0; i < 50; i++ {
		b.AddI(1, 1, 1)
	}
	b.Halt()
	p := b.MustBuild()

	base := run(t, p, 10000).Stats().Cycles

	c, err := New(Config{}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Let the front end warm up past the cold I-cache misses, then gate the
	// FUs for 100 cycles; nothing may issue while gated.
	warm := int(base) - 20
	for i := 0; i < warm && !c.Done(); i++ {
		c.Step()
	}
	if c.Done() {
		t.Fatal("finished during warmup")
	}
	for i := 0; i < 100; i++ {
		c.SetGating(Gating{FUs: true})
		act, done := c.Step()
		if done {
			t.Fatal("finished while gated")
		}
		// HALT/NOP placeholders may still flow; no real execution class may.
		for _, cl := range []isa.Class{isa.ClassIntALU, isa.ClassIntMult,
			isa.ClassIntDiv, isa.ClassFPAdd, isa.ClassFPMult, isa.ClassFPDiv,
			isa.ClassBranch} {
			if act.IssuedByClass[cl] > 0 {
				t.Fatalf("cycle %d: issued %s while FUs gated", i, cl)
			}
		}
	}
	c.SetGating(Gating{})
	for i := 0; i < 10000; i++ {
		if _, done := c.Step(); done {
			break
		}
	}
	if !c.Done() {
		t.Fatal("did not finish after ungating")
	}
	if c.Arch().R[1] != 50 {
		t.Errorf("r1 = %d, want 50 (gating must not drop instructions)", c.Arch().R[1])
	}
	// The window recovers some slack after ungating, so the added time is a
	// bit under the 100 gated cycles.
	if got := c.Stats().Cycles; got < base+60 {
		t.Errorf("gated run %d cycles vs base %d; gating should add most of the 100", got, base)
	}
}

func TestGatingIL1StallsFetch(t *testing.T) {
	b := isa.NewBuilder()
	for i := 0; i < 20; i++ {
		b.Nop()
	}
	b.Halt()
	c, err := New(Config{}, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	c.SetGating(Gating{IL1: true})
	for i := 0; i < 50; i++ {
		act, _ := c.Step()
		if act.Fetched > 0 {
			t.Fatalf("fetched %d while I-cache gated", act.Fetched)
		}
	}
	c.SetGating(Gating{})
	for i := 0; i < 1000 && !c.Done(); i++ {
		c.Step()
	}
	if !c.Done() {
		t.Error("did not finish after ungating")
	}
}

func TestGatingDL1StallsLoads(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 0x3000)
	b.Ld(2, 1, 0)
	b.Halt()
	c, err := New(Config{}, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	c.SetGating(Gating{DL1: true})
	for i := 0; i < 100; i++ {
		act, _ := c.Step()
		if act.DCacheAccess > 0 {
			t.Fatalf("D-cache accessed while gated")
		}
	}
	c.SetGating(Gating{})
	for i := 0; i < 2000 && !c.Done(); i++ {
		c.Step()
	}
	if !c.Done() {
		t.Error("did not finish after ungating")
	}
}

func TestActivityOccupancyBounded(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 1000)
	b.Label("loop")
	b.AddI(1, 1, -1)
	b.BneZ(1, "loop")
	b.Halt()
	c, err := New(Config{}, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	for !c.Done() {
		act, _ := c.Step()
		if act.RUUOccupancy > c.Config().RUUSize {
			t.Fatalf("RUU occupancy %d exceeds size", act.RUUOccupancy)
		}
		if act.LSQOccupancy > c.Config().LSQSize {
			t.Fatalf("LSQ occupancy %d exceeds size", act.LSQOccupancy)
		}
		if act.Issued > c.Config().IssueWidth {
			t.Fatalf("issued %d exceeds width", act.Issued)
		}
		if act.Committed > c.Config().CommitWidth {
			t.Fatalf("committed %d exceeds width", act.Committed)
		}
	}
}

func TestStrideMissesSlowerThanHits(t *testing.T) {
	mk := func(stride int64) isa.Program {
		b := isa.NewBuilder()
		b.LdI(1, 0).LdI(2, 500)
		b.Label("loop")
		b.Ld(3, 1, 0)
		b.AddI(1, 1, stride)
		b.AddI(2, 2, -1)
		b.BneZ(2, "loop")
		b.Halt()
		return b.MustBuild()
	}
	hits := run(t, mk(0), 2000000).Stats().Cycles
	misses := run(t, mk(4096), 2000000).Stats().Cycles
	if misses <= hits*2 {
		t.Errorf("striding loads (%d cycles) should be much slower than repeated (%d)", misses, hits)
	}
}

func TestStatsConsistency(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 50)
	b.Label("loop")
	b.AddI(1, 1, -1)
	b.BneZ(1, "loop")
	b.Halt()
	c := run(t, b.MustBuild(), 100000)
	s := c.Stats()
	if s.Instructions != 1+50*2+1 {
		t.Errorf("instructions = %d, want 102", s.Instructions)
	}
	if s.Fetched < s.Instructions {
		t.Errorf("fetched %d < committed %d", s.Fetched, s.Instructions)
	}
	if s.IPC() <= 0 {
		t.Error("IPC must be positive")
	}
}

func TestDeterminism(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 200).LdI(2, 0x4000)
	b.Label("loop")
	b.Ld(3, 2, 0)
	b.Add(4, 4, 3)
	b.AddI(2, 2, 64)
	b.AddI(1, 1, -1)
	b.BneZ(1, "loop")
	b.Halt()
	p := b.MustBuild()
	a := run(t, p, 2000000).Stats()
	bb := run(t, p, 2000000).Stats()
	if a != bb {
		t.Errorf("two identical runs diverged: %+v vs %+v", a, bb)
	}
}
