package cpu

import (
	"fmt"

	"didt/internal/bpred"
	"didt/internal/isa"
	"didt/internal/mem"
)

// Config describes the core, matching the paper's Table 1 by default.
type Config struct {
	FetchWidth  int // instructions fetched per cycle
	DecodeWidth int // instructions dispatched into the window per cycle
	IssueWidth  int // instructions issued to FUs per cycle
	CommitWidth int // instructions retired per cycle

	RUUSize int // register update unit (merged ROB + reservation stations)
	LSQSize int

	IntALU    int // functional unit counts
	IntMult   int // int multiply/divide units (shared, non-pipelined divide)
	FPALU     int
	FPMult    int // fp multiply/divide units (shared, non-pipelined divide)
	MemPorts  int
	FetchQLen int // fetch buffer depth

	// BranchPenalty is the extra front-end refill delay, in cycles, charged
	// after a mispredicted branch resolves (the paper's 10-cycle penalty
	// modeling super-pipelined fetch/decode).
	BranchPenalty int

	Bpred bpred.Config
	Mem   mem.Config

	// Latencies per FU class; zero fields take defaults.
	LatIntALU  int
	LatIntMult int
	LatIntDiv  int // non-pipelined
	LatFPAdd   int
	LatFPMult  int
	LatFPDiv   int // non-pipelined
}

// DefaultConfig returns the Table 1 processor.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  8,
		DecodeWidth: 8,
		IssueWidth:  8,
		CommitWidth: 8,
		RUUSize:     256,
		LSQSize:     128,
		IntALU:      8,
		IntMult:     2,
		FPALU:       4,
		FPMult:      2,
		MemPorts:    4,
		FetchQLen:   16,

		BranchPenalty: 10,

		LatIntALU:  1,
		LatIntMult: 3,
		LatIntDiv:  20,
		LatFPAdd:   2,
		LatFPMult:  4,
		LatFPDiv:   12,
	}
}

// WithDefaults fills zero fields from the Table 1 configuration. The spec
// layer (internal/spec) is the canonical caller — it resolves the CPU
// section of a RunSpec through this — and cpu.New applies it again
// idempotently so direct package users keep the same semantics.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.FetchWidth == 0 {
		c.FetchWidth = d.FetchWidth
	}
	if c.DecodeWidth == 0 {
		c.DecodeWidth = d.DecodeWidth
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = d.IssueWidth
	}
	if c.CommitWidth == 0 {
		c.CommitWidth = d.CommitWidth
	}
	if c.RUUSize == 0 {
		c.RUUSize = d.RUUSize
	}
	if c.LSQSize == 0 {
		c.LSQSize = d.LSQSize
	}
	if c.IntALU == 0 {
		c.IntALU = d.IntALU
	}
	if c.IntMult == 0 {
		c.IntMult = d.IntMult
	}
	if c.FPALU == 0 {
		c.FPALU = d.FPALU
	}
	if c.FPMult == 0 {
		c.FPMult = d.FPMult
	}
	if c.MemPorts == 0 {
		c.MemPorts = d.MemPorts
	}
	if c.FetchQLen == 0 {
		c.FetchQLen = d.FetchQLen
	}
	if c.BranchPenalty == 0 {
		c.BranchPenalty = d.BranchPenalty
	}
	if c.LatIntALU == 0 {
		c.LatIntALU = d.LatIntALU
	}
	if c.LatIntMult == 0 {
		c.LatIntMult = d.LatIntMult
	}
	if c.LatIntDiv == 0 {
		c.LatIntDiv = d.LatIntDiv
	}
	if c.LatFPAdd == 0 {
		c.LatFPAdd = d.LatFPAdd
	}
	if c.LatFPMult == 0 {
		c.LatFPMult = d.LatFPMult
	}
	if c.LatFPDiv == 0 {
		c.LatFPDiv = d.LatFPDiv
	}
	return c
}

// Validate checks structural invariants on a resolved configuration.
func (c Config) Validate() error {
	if c.RUUSize < 2 {
		return fmt.Errorf("cpu: RUUSize %d too small", c.RUUSize)
	}
	if c.LSQSize < 1 {
		return fmt.Errorf("cpu: LSQSize %d too small", c.LSQSize)
	}
	if c.FetchWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1 || c.DecodeWidth < 1 {
		return fmt.Errorf("cpu: pipeline widths must be positive")
	}
	return nil
}

// latency returns (execution latency, pipelined) for a class.
func (c Config) latency(cl isa.Class) (int, bool) {
	switch cl {
	case isa.ClassIntALU, isa.ClassBranch:
		return c.LatIntALU, true
	case isa.ClassIntMult:
		return c.LatIntMult, true
	case isa.ClassIntDiv:
		return c.LatIntDiv, false
	case isa.ClassFPAdd:
		return c.LatFPAdd, true
	case isa.ClassFPMult:
		return c.LatFPMult, true
	case isa.ClassFPDiv:
		return c.LatFPDiv, false
	}
	return 1, true
}

// fuPool maps a class to the functional-unit group that executes it.
type fuGroup uint8

const (
	fuIntALU fuGroup = iota
	fuIntMult
	fuFPALU
	fuFPMult
	fuMemPort
	numFUGroups
)

func groupOf(cl isa.Class) fuGroup {
	switch cl {
	case isa.ClassIntALU, isa.ClassBranch:
		return fuIntALU
	case isa.ClassIntMult, isa.ClassIntDiv:
		return fuIntMult
	case isa.ClassFPAdd:
		return fuFPALU
	case isa.ClassFPMult, isa.ClassFPDiv:
		return fuFPMult
	case isa.ClassLoad, isa.ClassStore:
		return fuMemPort
	}
	return fuIntALU
}

func (c Config) groupSize(g fuGroup) int {
	switch g {
	case fuIntALU:
		return c.IntALU
	case fuIntMult:
		return c.IntMult
	case fuFPALU:
		return c.FPALU
	case fuFPMult:
		return c.FPMult
	case fuMemPort:
		return c.MemPorts
	}
	return 0
}
