// Package cpu implements the cycle-level out-of-order core of Table 1: an
// 8-wide machine with a 256-entry register update unit (RUU — the merged
// reorder buffer / reservation stations of SimpleScalar's sim-outorder), a
// 128-entry load/store queue, the Table 1 functional-unit mix, a combined
// branch predictor and the Table 1 memory hierarchy.
//
// The timing model uses SimpleScalar's execute-at-dispatch technique:
// instructions are functionally executed (against isa.ArchState) when they
// enter the window, so values, branch outcomes and effective addresses are
// exact, while the pipeline model charges realistic timing. On a branch
// misprediction the front end stops (no wrong-path dispatch) and resumes at
// resolution plus the configured refill penalty; the quiet front end during
// refill is precisely the current dip the paper's controller must manage.
//
// Every cycle Step returns an Activity report for the power model, and the
// Gating hooks let the dI/dt actuator clock-gate the execution units and
// the L1 caches without perturbing architectural state.
package cpu

import (
	"fmt"

	"didt/internal/bpred"
	"didt/internal/isa"
	"didt/internal/mem"
	"didt/internal/telemetry"
)

const (
	stWaiting uint8 = iota // in window, operands outstanding
	stReady                // operands available, not yet issued
	stIssued               // executing
	stDone                 // completed, awaiting commit
)

// calBuckets must exceed the longest possible operation latency.
const calBuckets = 1024

type prodRef struct {
	idx int32
	seq uint64
}

type entry struct {
	in    isa.Instr
	pc    int
	seq   uint64
	out   isa.Outcome
	pred  bpred.Prediction
	class isa.Class
	state uint8

	isBranch bool
	mispred  bool

	waitCnt   int
	consumers []prodRef // younger entries waiting on this result

	isLoad, isStore bool
	addrReady       bool // stores: address generated

	doneAt uint64
}

type fetchSlot struct {
	in   isa.Instr
	pc   int
	pred bpred.Prediction
}

// CPU is one core instance. It is not safe for concurrent use.
type CPU struct {
	cfg  Config
	prog isa.Program
	arch *isa.ArchState

	Pred *bpred.Predictor
	Mem  *mem.Hierarchy

	gating Gating

	// Window state. ruu is a ring: head is the oldest entry, count entries.
	ruu   []entry
	head  int
	count int
	seq   uint64

	lsq      []int32 // RUU indices of in-flight memory ops, oldest first
	lsqHead  int
	lsqCount int

	intProd [isa.NumRegs]prodRef
	fpProd  [isa.NumRegs]prodRef

	ready []int32 // ready-entry ring, kept in age order

	calendar [calBuckets][]int32

	fuBusy [numFUGroups][]uint64 // per-unit busy-until cycle

	// Front end. fetchQ is a fixed ring of FetchQLen slots (fqHead is the
	// oldest entry, fqLen the occupancy) so steady-state fetch/dispatch
	// traffic never reallocates or re-slices the queue.
	fetchPC      int
	fetchQ       []fetchSlot
	fqHead       int
	fqLen        int
	fetchBlocked bool // mispredicted branch in flight; no wrong-path fetch
	fetchHalted  bool // HALT fetched or PC ran off the program
	fetchReadyAt uint64
	curFetchLine uint64

	haltSeen   bool // HALT dispatched
	done       bool
	cycle      uint64
	idleStreak uint64 // consecutive no-progress cycles (deadlock guard)

	stats Stats
	err   error
}

// New builds a core for the given program. Zero Config fields take the
// Table 1 defaults.
func New(cfg Config, prog isa.Program) (*CPU, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if len(prog) == 0 {
		return nil, fmt.Errorf("cpu: empty program")
	}
	pred, err := bpred.New(cfg.Bpred)
	if err != nil {
		return nil, err
	}
	hier, err := mem.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	maxLat := cfg.Mem.L1HitLat + cfg.Mem.L2HitLat + cfg.Mem.MemLat
	if maxLat == 0 {
		m := hier.Config()
		maxLat = m.L1HitLat + m.L2HitLat + m.MemLat
	}
	if maxLat+cfg.LatIntDiv >= calBuckets {
		return nil, fmt.Errorf("cpu: latency %d exceeds calendar capacity", maxLat)
	}
	c := &CPU{
		cfg:          cfg,
		prog:         prog,
		arch:         isa.NewArchState(),
		Pred:         pred,
		Mem:          hier,
		ruu:          make([]entry, cfg.RUUSize),
		lsq:          make([]int32, cfg.LSQSize),
		fetchQ:       make([]fetchSlot, cfg.FetchQLen),
		seq:          1,
		curFetchLine: ^uint64(0),
	}
	for g := fuGroup(0); g < numFUGroups; g++ {
		c.fuBusy[g] = make([]uint64, cfg.groupSize(g))
	}
	telemetry.Default().Counter("cpu.machines_built_total").Inc()
	return c, nil
}

// Arch exposes the architectural state (for workload setup and result
// inspection).
func (c *CPU) Arch() *isa.ArchState { return c.arch }

// Config returns the resolved configuration.
func (c *CPU) Config() Config { return c.cfg }

// SetGating installs the actuator's gating decision for subsequent cycles.
func (c *CPU) SetGating(g Gating) {
	c.gating = g
	c.Mem.DL1Gated = g.DL1
	c.Mem.IL1Gated = g.IL1
}

// Flush models the pipeline-flush recovery alternative of the paper's
// Section 6 ("flushing the pipeline if execution cannot resume
// mid-stream"): the fetch queue is discarded and the front end restarts at
// the oldest discarded instruction after the given refill penalty. In-
// window instructions are unaffected (they hold architectural results).
// If a misprediction recovery is already pending, the flush is a no-op —
// that recovery will redirect fetch anyway. Discarded instructions are
// re-looked-up on re-fetch, so the branch predictor sees their history
// twice; this small inaccuracy is inherent to flush-style recovery.
func (c *CPU) Flush(penalty int) {
	if c.fetchBlocked || c.fetchHalted {
		return
	}
	if c.fqLen > 0 {
		c.fetchPC = c.fetchQ[c.fqHead].pc
		c.fqHead, c.fqLen = 0, 0
		c.curFetchLine = ^uint64(0)
	}
	if penalty < 0 {
		penalty = 0
	}
	if at := c.cycle + uint64(penalty); at > c.fetchReadyAt {
		c.fetchReadyAt = at
	}
}

// Gating returns the current gating state.
func (c *CPU) Gating() Gating { return c.gating }

// Done reports whether the program has fully retired (or the core wedged;
// see Err).
func (c *CPU) Done() bool { return c.done }

// Err reports an internal model error (deadlock); nil in normal operation.
func (c *CPU) Err() error { return c.err }

// Stats returns a snapshot of run statistics.
func (c *CPU) Stats() Stats {
	s := c.stats
	s.L1IMissRate = c.Mem.L1I.MissRate()
	s.L1DMissRate = c.Mem.L1D.MissRate()
	s.L2MissRate = c.Mem.L2.MissRate()
	s.BranchLookups = c.Pred.Lookups
	s.Mispredicts = c.Pred.DirMispred + c.Pred.TargMispred
	return s
}

// Cycle returns the current cycle number.
func (c *CPU) Cycle() uint64 { return c.cycle }

func (c *CPU) idx(pos int) int32 { return int32(pos % c.cfg.RUUSize) }

// Step advances the core one clock cycle and returns the structural
// activity of that cycle. done becomes true when the program has retired.
func (c *CPU) Step() (Activity, bool) {
	var act Activity
	done := c.StepInto(&act)
	return act, done
}

// StepInto is Step without the ~200-byte Activity return copy: it resets
// *act and fills it in place. The simulation loops call it once per
// machine cycle per lane, where the value-return copies (Step's return,
// the power model's argument) were a measurable slice of a cold sweep.
//
//didt:hotpath
func (c *CPU) StepInto(act *Activity) bool {
	*act = Activity{}
	if c.done {
		return true
	}
	act.FUsGated, act.DL1Gated, act.IL1Gated = c.gating.FUs, c.gating.DL1, c.gating.IL1
	if c.gating.FUs || c.gating.DL1 || c.gating.IL1 {
		c.stats.GatedCycles++
	}

	c.writeback(act)
	c.commit(act)
	c.issue(act)
	c.dispatch(act)
	c.fetch(act)

	act.RUUOccupancy = c.count
	act.LSQOccupancy = c.lsqCount
	c.stats.Cycles++
	if act.Issued == 0 {
		c.stats.IssueStallCycles++
	}
	if act.Fetched == 0 {
		c.stats.FetchStallCycles++
	}
	c.cycle++

	// Deadlock guard: the machine must eventually make progress somewhere
	// (fetch counts — an empty window waiting out a cold I-cache miss is
	// legitimate, but thousands of cycles with no events of any kind means
	// a model bug or a permanently-gated machine).
	if !c.done && act.Completed == 0 && act.Committed == 0 && act.Issued == 0 &&
		act.Dispatched == 0 && act.Fetched == 0 {
		c.idleStreak++
		// The longest legitimate quiet period is a memory-latency stall (or
		// an actuator gate); anything much longer is a wedge.
		if c.idleStreak > uint64(4*(c.Mem.Config().MemLat+calBuckets)) {
			c.err = fmt.Errorf("cpu: pipeline wedged at cycle %d (pc=%d, ruu=%d)", c.cycle, c.fetchPC, c.count) //didt:allow hotpath -- terminal wedge diagnostic, reached at most once per run
			c.done = true
		}
	} else {
		c.idleStreak = 0
	}

	if c.count == 0 && (c.fetchHalted || c.fetchBlocked) && c.fqLen == 0 && c.haltSeen {
		c.done = true
	}
	// A program that runs off the end without HALT also terminates once
	// drained.
	if c.count == 0 && c.fetchHalted && c.fqLen == 0 {
		c.done = true
	}
	return c.done
}

// idleStreak tracks consecutive no-progress cycles for the deadlock guard.
// (kept out of Stats; internal diagnostics only)

func (c *CPU) writeback(act *Activity) {
	bucket := &c.calendar[c.cycle%calBuckets]
	if len(*bucket) == 0 {
		return
	}
	for _, idx := range *bucket {
		e := &c.ruu[idx]
		if e.state != stIssued || e.doneAt != c.cycle {
			continue // stale (squashed and slot reused)
		}
		e.state = stDone
		act.Completed++
		if e.in.WritesInt() || e.in.WritesFP() {
			act.RegWrites++
		}
		if e.isStore {
			e.addrReady = true
		}
		// Wake consumers.
		for _, cr := range e.consumers {
			t := &c.ruu[cr.idx]
			if t.seq != cr.seq || t.state != stWaiting {
				continue
			}
			act.WindowWakeups++
			t.waitCnt--
			if t.waitCnt == 0 {
				t.state = stReady
				c.ready = append(c.ready, cr.idx)
			}
		}
		e.consumers = e.consumers[:0]
		if e.isBranch {
			c.resolveBranch(e)
		}
	}
	*bucket = (*bucket)[:0]
}

func (c *CPU) resolveBranch(e *entry) {
	taken := e.out.Taken
	c.Pred.Resolve(e.pc, e.in, e.pred, taken, e.out.NextPC)
	if e.mispred {
		// Recovery: drop the wrong-path fetch queue and restart the front
		// end at the correct target after the refill penalty.
		c.fqHead, c.fqLen = 0, 0
		c.fetchBlocked = false
		c.fetchPC = e.out.NextPC
		c.fetchReadyAt = c.cycle + 1 + uint64(c.cfg.BranchPenalty)
		c.curFetchLine = ^uint64(0)
		if c.fetchPC < 0 || c.fetchPC >= len(c.prog) {
			c.fetchHalted = true
			c.haltSeen = true
		} else {
			c.fetchHalted = false
		}
	}
}

func (c *CPU) commit(act *Activity) {
	for n := 0; n < c.cfg.CommitWidth && c.count > 0; n++ {
		idx := c.idx(c.head)
		e := &c.ruu[idx]
		if e.state != stDone {
			c.stats.CommitStallCycles++
			return
		}
		if e.isStore {
			// Stores update the D-cache at retirement; a gated cache
			// stalls commit (the clock is off).
			res, ok := c.Mem.AccessData(e.out.EA, true)
			if !ok {
				c.stats.CommitStallCycles++
				return
			}
			act.DCacheAccess++
			if res.L2Used {
				act.L2Access++
			}
		}
		// Free register-status entries that still point here.
		if e.in.WritesInt() {
			if p := &c.intProd[e.in.Dst]; p.idx == idx && p.seq == e.seq {
				p.seq = 0
			}
			if e.in.Op == isa.CALL {
				if p := &c.intProd[isa.LinkReg]; p.idx == idx && p.seq == e.seq {
					p.seq = 0
				}
			}
		}
		if e.in.WritesFP() {
			if p := &c.fpProd[e.in.Dst]; p.idx == idx && p.seq == e.seq {
				p.seq = 0
			}
		}
		if e.isLoad || e.isStore {
			c.lsqHead = (c.lsqHead + 1) % c.cfg.LSQSize
			c.lsqCount--
		}
		e.seq = 0
		c.head++
		c.count--
		act.Committed++
		c.stats.Instructions++
		if e.in.Op == isa.HALT {
			c.done = true
			return
		}
	}
}

func (c *CPU) issue(act *Activity) {
	if len(c.ready) == 0 {
		return
	}
	// Keep age order so older instructions get FU priority.
	insertionSortReady(c.ready, c.ruu)
	budget := c.cfg.IssueWidth
	out := c.ready[:0]
	for _, idx := range c.ready {
		e := &c.ruu[idx]
		if e.state != stReady {
			continue // squashed or stale
		}
		if budget == 0 {
			out = append(out, idx)
			continue
		}
		if ok := c.tryIssue(idx, e, act); ok {
			budget--
			act.Issued++
			c.stats.Issued++
			act.IssuedByClass[e.class]++
		} else {
			out = append(out, idx)
		}
	}
	c.ready = out
}

func (c *CPU) tryIssue(idx int32, e *entry, act *Activity) bool {
	// Execution-unit gating from the dI/dt actuator: the int and fp
	// pipelines are clock-gated, so nothing can start executing on them.
	if c.gating.FUs {
		switch e.class {
		case isa.ClassIntALU, isa.ClassIntMult, isa.ClassIntDiv,
			isa.ClassFPAdd, isa.ClassFPMult, isa.ClassFPDiv, isa.ClassBranch:
			return false
		}
	}
	var lat int
	var dcache, l2 bool
	switch {
	case e.isLoad:
		if c.gating.DL1 {
			return false
		}
		fwd, ok := c.loadOrderingOK(idx, e)
		if !ok {
			return false
		}
		if fwd {
			lat = 1 // store-to-load forward inside the LSQ
		} else {
			res, ok := c.Mem.AccessData(e.out.EA, false)
			if !ok {
				return false
			}
			lat = res.Latency
			dcache = true
			l2 = res.L2Used
		}
	case e.isStore:
		lat = 1 // address generation only; data written at commit
	default:
		lat, _ = c.cfg.latency(e.class)
	}
	// Allocate a functional unit.
	grp := groupOf(e.class)
	unit := -1
	for u, busy := range c.fuBusy[grp] {
		if busy <= c.cycle {
			unit = u
			break
		}
	}
	if unit < 0 {
		return false
	}
	_, pipelined := c.cfg.latency(e.class)
	if e.isLoad || e.isStore {
		pipelined = true
	}
	if pipelined {
		c.fuBusy[grp][unit] = c.cycle + 1
	} else {
		c.fuBusy[grp][unit] = c.cycle + uint64(lat)
	}
	e.state = stIssued
	if lat < 1 {
		lat = 1
	}
	e.doneAt = c.cycle + uint64(lat)
	slot := &c.calendar[e.doneAt%calBuckets]
	*slot = append(*slot, idx)
	if dcache {
		act.DCacheAccess++
	}
	if l2 {
		act.L2Access++
	}
	// Register-file read traffic.
	_, nsrc := sourceRegs(e.in)
	act.RegReads += nsrc
	return true
}

// loadOrderingOK enforces conservative load/store ordering: a load may
// issue only after every older store in the LSQ has generated its address.
// It reports (forwarded, ok): forwarded means an older store to the same
// word supplies the data directly.
func (c *CPU) loadOrderingOK(idx int32, e *entry) (bool, bool) {
	fwd := false
	for i := 0; i < c.lsqCount; i++ {
		j := c.lsq[(c.lsqHead+i)%c.cfg.LSQSize]
		se := &c.ruu[j]
		if j == idx {
			break // reached the load itself; older stores all checked
		}
		if !se.isStore {
			continue
		}
		if !se.addrReady {
			return false, false
		}
		if se.out.EA>>3 == e.out.EA>>3 {
			fwd = true // youngest matching older store wins
		}
	}
	return fwd, true
}

func (c *CPU) dispatch(act *Activity) {
	if c.fetchBlocked {
		return
	}
	for n := 0; n < c.cfg.DecodeWidth && c.fqLen > 0; n++ {
		if c.count == c.cfg.RUUSize {
			return
		}
		slot := &c.fetchQ[c.fqHead]
		isMem := slot.in.IsMem()
		if isMem && c.lsqCount == c.cfg.LSQSize {
			return
		}
		c.fqHead++
		if c.fqHead == len(c.fetchQ) {
			c.fqHead = 0
		}
		c.fqLen--

		pos := c.idx(c.head + c.count)
		c.count++
		e := &c.ruu[pos]
		// Reset the slot field-by-field rather than with a struct-literal
		// overwrite: that keeps the consumer list's capacity (writeback's
		// appends would otherwise reallocate per dispatched entry) and skips
		// re-zeroing the large out/pred fields that the assignments below
		// overwrite in full anyway.
		e.in = slot.in
		e.pc = slot.pc
		e.seq = c.seq
		e.pred = slot.pred
		e.class = isa.ClassOf(slot.in.Op)
		e.state = stWaiting
		e.mispred = false
		e.waitCnt = 0
		e.addrReady = false
		e.doneAt = 0
		e.consumers = e.consumers[:0]
		c.seq++
		// Functional execution: exact values, outcome and address.
		e.out = c.arch.Exec(slot.in)
		e.isBranch = slot.in.IsBranch()
		e.isLoad = slot.in.IsLoad()
		e.isStore = slot.in.IsStore()
		if e.isLoad || e.isStore {
			c.lsq[(c.lsqHead+c.lsqCount)%c.cfg.LSQSize] = pos
			c.lsqCount++
		}

		// Collect operand dependencies against in-flight producers.
		srcs, nsrc := sourceRegs(slot.in)
		for _, src := range srcs[:nsrc] {
			var p *prodRef
			if src.fp {
				p = &c.fpProd[src.reg]
			} else {
				p = &c.intProd[src.reg]
			}
			if p.seq == 0 {
				continue
			}
			pe := &c.ruu[p.idx]
			if pe.seq != p.seq || pe.state == stDone {
				continue
			}
			e.waitCnt++
			pe.consumers = append(pe.consumers, prodRef{pos, e.seq})
		}
		// Publish this entry as the new producer of its destination.
		if slot.in.WritesInt() {
			dst := slot.in.Dst
			if slot.in.Op == isa.CALL {
				dst = isa.LinkReg
			}
			c.intProd[dst] = prodRef{pos, e.seq}
		}
		if slot.in.WritesFP() {
			c.fpProd[slot.in.Dst] = prodRef{pos, e.seq}
		}

		if e.waitCnt == 0 {
			e.state = stReady
			c.ready = append(c.ready, pos)
		}
		act.Dispatched++

		if e.isBranch {
			correct := e.pred.Taken == e.out.Taken && (!e.out.Taken || e.pred.Target == e.out.NextPC)
			if !correct {
				e.mispred = true
				c.fetchBlocked = true
				return
			}
		}
		if slot.in.Op == isa.HALT {
			c.haltSeen = true
			return
		}
	}
}

func (c *CPU) fetch(act *Activity) {
	if c.fetchBlocked || c.fetchHalted || c.gating.IL1 {
		return
	}
	if c.cycle < c.fetchReadyAt {
		return
	}
	lineMask := ^uint64(int64(c.Mem.Config().LineBytes - 1))
	for n := 0; n < c.cfg.FetchWidth && c.fqLen < len(c.fetchQ); n++ {
		if c.fetchPC < 0 || c.fetchPC >= len(c.prog) {
			c.fetchHalted = true
			c.haltSeen = true
			return
		}
		addr := isa.PCByteAddr(c.fetchPC)
		if addr&lineMask != c.curFetchLine {
			res, ok := c.Mem.FetchInstr(addr)
			if !ok {
				return // I-cache gated
			}
			act.ICacheAccess++
			if res.L2Used {
				act.L2Access++
			}
			c.curFetchLine = addr & lineMask
			if !res.L1Hit {
				c.fetchReadyAt = c.cycle + uint64(res.Latency)
				return
			}
		}
		in := c.prog[c.fetchPC]
		slot := fetchSlot{in: in, pc: c.fetchPC}
		if in.IsBranch() {
			slot.pred = c.Pred.Lookup(c.fetchPC, in)
			act.BpredLookups++
		}
		tail := c.fqHead + c.fqLen
		if tail >= len(c.fetchQ) {
			tail -= len(c.fetchQ)
		}
		c.fetchQ[tail] = slot
		c.fqLen++
		act.Fetched++
		c.stats.Fetched++
		if in.Op == isa.HALT {
			c.fetchHalted = true
			return
		}
		if in.IsBranch() && slot.pred.Taken {
			c.fetchPC = slot.pred.Target
			return // taken branch ends the fetch group
		}
		c.fetchPC++
	}
}

// sourceRegs lists the register operands an instruction reads.
type regRef struct {
	fp  bool
	reg uint8
}

// sourceRegs returns the operands by value (array plus count) rather than
// a slice: it runs for every dispatched and issued instruction, and a
// heap-allocated slice literal per call was one of the dominant allocation
// sites in a cold sweep.
func sourceRegs(in isa.Instr) ([3]regRef, int) {
	switch in.Op {
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
		isa.CMPLT, isa.CMPEQ, isa.MUL, isa.DIV:
		return [3]regRef{{false, in.Src1}, {false, in.Src2}}, 2
	case isa.CMOVNZ:
		return [3]regRef{{false, in.Src1}, {false, in.Src2}, {false, in.Dst}}, 3
	case isa.ADDI:
		return [3]regRef{{false, in.Src1}}, 1
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
		return [3]regRef{{true, in.Src1}, {true, in.Src2}}, 2
	case isa.LD, isa.FLD:
		return [3]regRef{{false, in.Src1}}, 1
	case isa.ST:
		return [3]regRef{{false, in.Src1}, {false, in.Src2}}, 2
	case isa.FST:
		return [3]regRef{{false, in.Src1}, {true, in.Src2}}, 2
	case isa.BEQZ, isa.BNEZ:
		return [3]regRef{{false, in.Src1}}, 1
	case isa.RET:
		return [3]regRef{{false, isa.LinkReg}}, 1
	}
	return [3]regRef{}, 0
}

// insertionSortReady keeps the ready list in ascending seq (age) order;
// the list is nearly sorted between cycles, so insertion sort is cheap.
func insertionSortReady(xs []int32, ruu []entry) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		sx := ruu[x].seq
		j := i - 1
		for j >= 0 && ruu[xs[j]].seq > sx {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}
