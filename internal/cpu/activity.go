package cpu

import "didt/internal/isa"

// Activity is the per-cycle structural activity report consumed by the
// power model (the Wattch accounting interface): how many times each
// microarchitectural structure was exercised this cycle.
type Activity struct {
	Fetched    int // instructions fetched from the I-cache
	Dispatched int // instructions renamed + inserted into RUU/LSQ
	Issued     int // instructions sent to functional units
	Completed  int // results written back on the result bus
	Committed  int // instructions retired

	IssuedByClass [isa.NumClasses]int

	BpredLookups  int
	ICacheAccess  int // I-cache line accesses
	DCacheAccess  int // D-cache accesses (loads issued + stores committed)
	L2Access      int
	RegReads      int
	RegWrites     int
	WindowWakeups int // tag-match wakeups broadcast in the window
	RUUOccupancy  int // entries resident this cycle
	LSQOccupancy  int

	// Gating status this cycle (for the power model's actuator accounting).
	FUsGated bool
	DL1Gated bool
	IL1Gated bool
}

// Gating is the actuator interface into the core: which structures are
// clock-gated this cycle. Gating never drops architectural work — gated
// structures simply refuse service until re-enabled.
type Gating struct {
	FUs bool // block issue to all execution units (int + fp pipelines)
	DL1 bool // block D-cache access (loads stall, stores cannot commit)
	IL1 bool // block instruction fetch
}

// Stats accumulates whole-run statistics.
type Stats struct {
	Cycles       uint64
	Instructions uint64 // committed
	Fetched      uint64
	Issued       uint64

	BranchLookups uint64
	Mispredicts   uint64

	L1IMissRate float64
	L1DMissRate float64
	L2MissRate  float64

	FetchStallCycles  uint64 // front end had nothing to do (refill, gate)
	IssueStallCycles  uint64 // no instruction issued
	GatedCycles       uint64 // at least one structure gated by the actuator
	CommitStallCycles uint64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}
