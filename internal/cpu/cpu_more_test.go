package cpu

import (
	"testing"

	"didt/internal/isa"
)

// TestRUUFillStallsDispatch verifies back-pressure: a long-latency head
// instruction blocks commit, the window fills, and dispatch halts rather
// than overflowing.
func TestRUUFillStallsDispatch(t *testing.T) {
	// A loop so the second iteration runs with a warm I-cache: its head
	// load misses to memory while fetch streams filler behind it.
	b := isa.NewBuilder()
	b.LdI(1, 0x400000)
	b.LdI(9, 3)
	b.Label("loop")
	b.Ld(2, 1, 0) // cold miss: ~318 cycles at the head
	for i := 0; i < 400; i++ {
		b.AddI(uint8(3+i%8), isa.ZeroReg, int64(i)) // independent filler
	}
	b.AddI(1, 1, 1<<20) // next iteration misses again
	b.AddI(9, 9, -1)
	b.BneZ(9, "loop")
	b.Halt()
	c, err := New(Config{}, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	sawFull := false
	for i := 0; i < 60000 && !c.Done(); i++ {
		act, _ := c.Step()
		if act.RUUOccupancy > c.Config().RUUSize {
			t.Fatalf("RUU overflow: %d", act.RUUOccupancy)
		}
		if act.RUUOccupancy == c.Config().RUUSize {
			sawFull = true
		}
	}
	if !sawFull {
		t.Error("window never filled behind a memory-latency stall")
	}
}

// TestLSQFillStallsDispatch does the same for the load/store queue.
func TestLSQFillStallsDispatch(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 0x400000)
	b.LdI(9, 3)
	b.Label("loop")
	b.Ld(2, 1, 0) // cold miss at the head blocks commit
	for i := 0; i < 180; i++ {
		b.St(1, 1, int64(8*i)) // stores pile into the LSQ
	}
	b.AddI(1, 1, 1<<20)
	b.AddI(9, 9, -1)
	b.BneZ(9, "loop")
	b.Halt()
	c, err := New(Config{}, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	peak := 0
	for i := 0; i < 60000 && !c.Done(); i++ {
		act, _ := c.Step()
		if act.LSQOccupancy > c.Config().LSQSize {
			t.Fatalf("LSQ overflow: %d", act.LSQOccupancy)
		}
		if act.LSQOccupancy > peak {
			peak = act.LSQOccupancy
		}
	}
	if peak < c.Config().LSQSize {
		t.Errorf("LSQ peaked at %d, expected to fill (%d)", peak, c.Config().LSQSize)
	}
}

// TestRETMispredictionRecovers drives returns through two different call
// sites so the RAS must supply differing targets, and validates the
// architectural result.
func TestRETMispredictionRecovers(t *testing.T) {
	src := `
	  ldi r1, 0
	  ldi r2, 200
	loop:
	  call fa
	  call fb
	  addi r2, r2, -1
	  bnez r2, loop
	  halt
	fa:
	  addi r1, r1, 1
	  ret
	fb:
	  addi r1, r1, 3
	  ret
	`
	p, err := isa.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{}, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500000 && !c.Done(); i++ {
		c.Step()
	}
	if !c.Done() || c.Err() != nil {
		t.Fatalf("did not finish: %v", c.Err())
	}
	if c.Arch().R[1] != 200*4 {
		t.Errorf("r1 = %d, want 800", c.Arch().R[1])
	}
}

// TestStoreToLoadForwardingLatency checks that a forwarded load is much
// faster than a cache miss would be.
func TestStoreToLoadForwardingLatency(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 0x500000) // cold region
	b.LdI(2, 99)
	b.St(2, 1, 0)
	b.Ld(3, 1, 0)  // same word: must forward, not wait on the cold miss
	b.Add(4, 3, 3) // dependent
	b.Halt()
	c, err := New(Config{}, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000 && !c.Done(); i++ {
		c.Step()
	}
	// The I-cache cold misses dominate; the run must NOT also pay a data
	// miss (store commits to cache at retirement, load forwarded earlier).
	memLat := c.Mem.Config().MemLat
	if got := int(c.Stats().Cycles); got > 3*memLat {
		t.Errorf("run took %d cycles; forwarding should avoid a serialized data miss", got)
	}
	if c.Arch().R[4] != 198 {
		t.Errorf("r4 = %d", c.Arch().R[4])
	}
}

// TestZeroRegisterInPipeline verifies r31 discards results through the
// renamed dataflow, not just in the functional model.
func TestZeroRegisterInPipeline(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(isa.ZeroReg, 42)
	b.Add(1, isa.ZeroReg, isa.ZeroReg)
	b.AddI(2, 1, 7)
	b.Halt()
	c, err := New(Config{}, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000 && !c.Done(); i++ {
		c.Step()
	}
	if c.Arch().R[1] != 0 || c.Arch().R[2] != 7 {
		t.Errorf("r1=%d r2=%d", c.Arch().R[1], c.Arch().R[2])
	}
}

// TestFetchStopsAtProgramEnd: a program whose last instruction is not HALT
// must still terminate once it runs off the end.
func TestFetchStopsAtProgramEnd(t *testing.T) {
	p := isa.Program{
		{Op: isa.ADDI, Dst: 1, Src1: isa.ZeroReg, Imm: 5},
		{Op: isa.ADDI, Dst: 2, Src1: 1, Imm: 5},
	}
	c, err := New(Config{}, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000 && !c.Done(); i++ {
		c.Step()
	}
	if !c.Done() {
		t.Fatal("run-off-the-end program did not terminate")
	}
	if c.Arch().R[2] != 10 {
		t.Errorf("r2 = %d", c.Arch().R[2])
	}
}

// TestBranchToSelfLoopWithCounter exercises a tight 2-instruction loop
// (maximum branch pressure).
func TestBranchToSelfLoopWithCounter(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 3000)
	b.Label("l")
	b.AddI(1, 1, -1)
	b.BneZ(1, "l")
	b.Halt()
	c, err := New(Config{}, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000 && !c.Done(); i++ {
		c.Step()
	}
	if !c.Done() || c.Arch().R[1] != 0 {
		t.Fatalf("tight loop failed: done=%v r1=%d", c.Done(), c.Arch().R[1])
	}
}

// TestGatingAllThreeSimultaneously: the widest actuation must stall the
// whole machine and release cleanly.
func TestGatingAllThreeSimultaneously(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 50000)
	b.Label("l")
	b.Ld(2, 1, 0)
	b.AddI(1, 1, -1)
	b.BneZ(1, "l")
	b.Halt()
	c, err := New(Config{}, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	// Warm up.
	for i := 0; i < 2000; i++ {
		c.Step()
	}
	c.SetGating(Gating{FUs: true, DL1: true, IL1: true})
	for i := 0; i < 200; i++ {
		act, done := c.Step()
		if done {
			t.Fatal("finished while fully gated")
		}
		if act.Fetched > 0 || act.DCacheAccess > 0 {
			t.Fatal("activity while fully gated")
		}
	}
	c.SetGating(Gating{})
	for i := 0; i < 500000 && !c.Done(); i++ {
		c.Step()
	}
	if !c.Done() || c.Err() != nil {
		t.Fatalf("did not recover from full gating: %v", c.Err())
	}
}

// TestDeadlockGuardFires: an artificial wedge (permanent full gating) must
// trip the guard rather than spin forever.
func TestDeadlockGuardFires(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 10)
	b.Ld(2, 1, 0)
	b.Halt()
	c, err := New(Config{}, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	// Let it dispatch something first, then gate forever.
	for i := 0; i < 30; i++ {
		c.Step()
	}
	c.SetGating(Gating{FUs: true, DL1: true, IL1: true})
	for i := 0; i < 20_000_000 && !c.Done(); i++ {
		c.Step()
	}
	if !c.Done() {
		t.Fatal("guard never fired")
	}
	if c.Err() == nil {
		t.Fatal("expected a wedge error")
	}
}

// TestMispredictRefillQuietsFrontEnd: during the refill window after a
// mispredict, fetch activity must be zero (the current dip the controller
// has to manage).
func TestMispredictRefillQuietsFrontEnd(t *testing.T) {
	// An unpredictable branch via LCG bits.
	b := isa.NewBuilder()
	b.LdI(5, 6364136223846793005)
	b.LdI(6, 12345)
	b.LdI(7, 1)
	b.LdI(1, 2000)
	b.LdI(8, 61)
	b.Label("loop")
	b.Mul(6, 6, 5)
	b.AddI(6, 6, 1442695040888963407)
	b.Emit(isa.Instr{Op: isa.SHR, Dst: 9, Src1: 6, Src2: 8})
	b.And(9, 9, 7)
	b.BeqZ(9, "skip")
	b.AddI(2, 2, 1)
	b.Label("skip")
	b.AddI(1, 1, -1)
	b.BneZ(1, "loop")
	b.Halt()
	c, err := New(Config{}, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	quietRuns := 0
	quiet := 0
	for i := 0; i < 400000 && !c.Done(); i++ {
		act, _ := c.Step()
		if act.Fetched == 0 {
			quiet++
		} else {
			if quiet >= c.Config().BranchPenalty {
				quietRuns++
			}
			quiet = 0
		}
	}
	if !c.Done() {
		t.Fatal("did not finish")
	}
	if c.Stats().Mispredicts < 100 {
		t.Fatalf("only %d mispredicts; the pattern should be unpredictable", c.Stats().Mispredicts)
	}
	if quietRuns < 50 {
		t.Errorf("only %d refill-length quiet runs for %d mispredicts",
			quietRuns, c.Stats().Mispredicts)
	}
}

// TestActivityConservation: per-cycle activity reports must sum to the
// run-level statistics, and the pipeline funnel can only narrow
// (fetched >= dispatched >= committed).
func TestActivityConservation(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 400)
	b.Label("l")
	b.Ld(2, 1, 0)
	b.Mul(3, 2, 1)
	b.St(3, 1, 8)
	b.AddI(1, 1, -1)
	b.BneZ(1, "l")
	b.Halt()
	c, err := New(Config{}, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	var fetched, dispatched, issued, committed uint64
	for i := 0; i < 500000 && !c.Done(); i++ {
		act, _ := c.Step()
		fetched += uint64(act.Fetched)
		dispatched += uint64(act.Dispatched)
		issued += uint64(act.Issued)
		committed += uint64(act.Committed)
	}
	if !c.Done() {
		t.Fatal("did not finish")
	}
	s := c.Stats()
	if fetched != s.Fetched {
		t.Errorf("fetched: activity %d vs stats %d", fetched, s.Fetched)
	}
	if committed != s.Instructions {
		t.Errorf("committed: activity %d vs stats %d", committed, s.Instructions)
	}
	if issued != s.Issued {
		t.Errorf("issued: activity %d vs stats %d", issued, s.Issued)
	}
	if fetched < dispatched || dispatched < committed {
		t.Errorf("pipeline funnel violated: fetched %d dispatched %d committed %d",
			fetched, dispatched, committed)
	}
	// No wrong-path dispatch in this model: everything dispatched commits.
	if dispatched != committed {
		t.Errorf("dispatched %d != committed %d (no-wrong-path invariant)", dispatched, committed)
	}
}

// TestFlushRestartsFetchQueue: Flush discards fetched-but-undispatched
// work and refetches it after the penalty, preserving results.
func TestFlushRestartsFetchQueue(t *testing.T) {
	b := isa.NewBuilder()
	b.LdI(1, 100)
	b.Label("l")
	b.AddI(2, 2, 3)
	b.AddI(1, 1, -1)
	b.BneZ(1, "l")
	b.Halt()
	c, err := New(Config{}, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	flushes := 0
	for i := 0; i < 200000 && !c.Done(); i++ {
		if i%50 == 10 {
			c.Flush(c.Config().BranchPenalty)
			flushes++
		}
		c.Step()
	}
	if !c.Done() || c.Err() != nil {
		t.Fatalf("did not finish under periodic flushing: %v", c.Err())
	}
	if c.Arch().R[2] != 300 {
		t.Errorf("r2 = %d, want 300 (flush must not lose instructions)", c.Arch().R[2])
	}
	if flushes == 0 {
		t.Fatal("no flushes exercised")
	}
}
