package isa

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse assembles textual assembly into a Program. The syntax is the one
// produced by Instr.String plus labels ("name:") and comments (";" or "#"
// to end of line). Branch targets may be labels or absolute instruction
// indices. Example:
//
//	loop:
//	  fld   f1, 0(r4)
//	  fdiv  f3, f1, f2
//	  fst   f3, 8(r4)
//	  ld    r7, 8(r4)
//	  cmovnz r3, r7, r31
//	  addi  r5, r5, -1
//	  bnez  r5, loop
//	  halt
func Parse(r io.Reader) (Program, error) {
	type pending struct {
		instr int
		label string
		line  int
	}
	var (
		prog    Program
		labels  = map[string]int{}
		fixups  []pending
		scanner = bufio.NewScanner(r)
		lineNo  int
	)
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels may share a line with an instruction: "loop: add ..."
		for {
			if i := strings.Index(line, ":"); i >= 0 && !strings.ContainsAny(line[:i], " \t,") {
				name := strings.TrimSpace(line[:i])
				if name == "" {
					return nil, fmt.Errorf("isa: line %d: empty label", lineNo)
				}
				if _, dup := labels[name]; dup {
					return nil, fmt.Errorf("isa: line %d: duplicate label %q", lineNo, name)
				}
				labels[name] = len(prog)
				line = strings.TrimSpace(line[i+1:])
				if line == "" {
					break
				}
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		in, labelRef, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %v", lineNo, err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{len(prog), labelRef, lineNo})
		}
		prog = append(prog, in)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	for _, f := range fixups {
		t, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: line %d: undefined label %q", f.line, f.label)
		}
		prog[f.instr].Imm = int64(t)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseString assembles a source string.
func ParseString(src string) (Program, error) { return Parse(strings.NewReader(src)) }

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

func parseInstr(line string) (Instr, string, error) {
	fields := strings.SplitN(line, " ", 2)
	mnemonic := strings.ToLower(strings.TrimSpace(fields[0]))
	op, ok := opByName[mnemonic]
	if !ok {
		return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	var args []string
	if len(fields) == 2 {
		for _, a := range strings.Split(fields[1], ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: want %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}
	in := Instr{Op: op}
	switch op {
	case NOP, HALT, RET:
		return in, "", need(0)
	case ADD, SUB, AND, OR, XOR, SHL, SHR, CMPLT, CMPEQ, CMOVNZ, MUL, DIV:
		if err := need(3); err != nil {
			return in, "", err
		}
		var err error
		if in.Dst, err = parseReg(args[0], 'r'); err != nil {
			return in, "", err
		}
		if in.Src1, err = parseReg(args[1], 'r'); err != nil {
			return in, "", err
		}
		if in.Src2, err = parseReg(args[2], 'r'); err != nil {
			return in, "", err
		}
		return in, "", nil
	case FADD, FSUB, FMUL, FDIV:
		if err := need(3); err != nil {
			return in, "", err
		}
		var err error
		if in.Dst, err = parseReg(args[0], 'f'); err != nil {
			return in, "", err
		}
		if in.Src1, err = parseReg(args[1], 'f'); err != nil {
			return in, "", err
		}
		if in.Src2, err = parseReg(args[2], 'f'); err != nil {
			return in, "", err
		}
		return in, "", nil
	case ADDI:
		if err := need(3); err != nil {
			return in, "", err
		}
		var err error
		if in.Dst, err = parseReg(args[0], 'r'); err != nil {
			return in, "", err
		}
		if in.Src1, err = parseReg(args[1], 'r'); err != nil {
			return in, "", err
		}
		imm, err := strconv.ParseInt(args[2], 0, 64)
		if err != nil {
			return in, "", fmt.Errorf("bad immediate %q", args[2])
		}
		in.Imm = imm
		return in, "", nil
	case LDI:
		if err := need(2); err != nil {
			return in, "", err
		}
		var err error
		if in.Dst, err = parseReg(args[0], 'r'); err != nil {
			return in, "", err
		}
		imm, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return in, "", fmt.Errorf("bad immediate %q", args[1])
		}
		in.Imm = imm
		return in, "", nil
	case FLDI:
		if err := need(2); err != nil {
			return in, "", err
		}
		var err error
		if in.Dst, err = parseReg(args[0], 'f'); err != nil {
			return in, "", err
		}
		v, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return in, "", fmt.Errorf("bad float immediate %q", args[1])
		}
		in.Imm = FloatImm(v)
		return in, "", nil
	case LD, FLD:
		if err := need(2); err != nil {
			return in, "", err
		}
		file := byte('r')
		if op == FLD {
			file = 'f'
		}
		var err error
		if in.Dst, err = parseReg(args[0], file); err != nil {
			return in, "", err
		}
		disp, base, err := parseMemOperand(args[1])
		if err != nil {
			return in, "", err
		}
		in.Imm, in.Src1 = disp, base
		return in, "", nil
	case ST, FST:
		if err := need(2); err != nil {
			return in, "", err
		}
		file := byte('r')
		if op == FST {
			file = 'f'
		}
		var err error
		if in.Src2, err = parseReg(args[0], file); err != nil {
			return in, "", err
		}
		disp, base, err := parseMemOperand(args[1])
		if err != nil {
			return in, "", err
		}
		in.Imm, in.Src1 = disp, base
		return in, "", nil
	case BEQZ, BNEZ:
		if err := need(2); err != nil {
			return in, "", err
		}
		var err error
		if in.Src1, err = parseReg(args[0], 'r'); err != nil {
			return in, "", err
		}
		if t, err := strconv.ParseInt(args[1], 0, 64); err == nil {
			in.Imm = t
			return in, "", nil
		}
		return in, args[1], nil
	case JMP, CALL:
		if err := need(1); err != nil {
			return in, "", err
		}
		if t, err := strconv.ParseInt(args[0], 0, 64); err == nil {
			in.Imm = t
			return in, "", nil
		}
		return in, args[0], nil
	}
	return in, "", fmt.Errorf("unhandled mnemonic %q", mnemonic)
}

func parseReg(s string, file byte) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) < 2 || s[0] != file {
		return 0, fmt.Errorf("bad %c-register %q", file, s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

// parseMemOperand parses "disp(rN)".
func parseMemOperand(s string) (int64, uint8, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	dispStr := strings.TrimSpace(s[:open])
	disp := int64(0)
	if dispStr != "" {
		var err error
		disp, err = strconv.ParseInt(dispStr, 0, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad displacement %q", dispStr)
		}
	}
	base, err := parseReg(s[open+1:len(s)-1], 'r')
	if err != nil {
		return 0, 0, err
	}
	return disp, base, nil
}

// Disassemble renders a whole program, one instruction per line, with
// index prefixes.
func Disassemble(p Program) string {
	var sb strings.Builder
	for i, in := range p {
		fmt.Fprintf(&sb, "%4d:  %s\n", i, in)
	}
	return sb.String()
}
