package isa

// Memory is the functional data memory: a sparse, page-granular store of
// 64-bit words. Addresses are byte addresses; accesses are 8-byte and the
// low three address bits are ignored (the machine has no sub-word
// operations). Timing is modeled separately by the cache hierarchy; Memory
// holds only architectural state.
type Memory struct {
	pages map[uint64]*[pageWords]uint64
}

const (
	pageShift = 12 // 4 KiB pages
	pageBytes = 1 << pageShift
	pageWords = pageBytes / 8
)

// NewMemory returns an empty memory; all locations read as zero.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageWords]uint64)}
}

func split(addr uint64) (page uint64, word int) {
	return addr >> pageShift, int(addr&(pageBytes-1)) >> 3
}

// LoadWord returns the 64-bit word at addr (rounded down to 8 bytes).
func (m *Memory) LoadWord(addr uint64) uint64 {
	page, word := split(addr)
	p := m.pages[page]
	if p == nil {
		return 0
	}
	return p[word]
}

// StoreWord writes the 64-bit word at addr (rounded down to 8 bytes).
func (m *Memory) StoreWord(addr uint64, v uint64) {
	page, word := split(addr)
	p := m.pages[page]
	if p == nil {
		p = new([pageWords]uint64)
		m.pages[page] = p
	}
	p[word] = v
}

// Footprint returns the number of distinct pages touched, an aid for
// sizing workload working sets against the cache hierarchy.
func (m *Memory) Footprint() int { return len(m.pages) }
