package isa

import "math"

// ArchState is the architectural machine state: register files, data
// memory, program counter and halt flag. The out-of-order timing model
// executes instructions functionally against an ArchState at dispatch time
// (the SimpleScalar sim-outorder technique); timing is layered on top.
type ArchState struct {
	R    [NumRegs]int64
	F    [NumRegs]float64
	Mem  *Memory
	PC   int
	Halt bool

	// Retired counts instructions executed (architecturally useful work).
	Retired uint64
}

// NewArchState returns a reset machine with fresh memory.
func NewArchState() *ArchState {
	return &ArchState{Mem: NewMemory()}
}

// Outcome describes the side effects of one instruction, as needed by the
// timing model: the next PC, whether a branch was taken, and the effective
// address of a memory operation.
type Outcome struct {
	NextPC  int
	Taken   bool // meaningful for branches
	EA      uint64
	IsMem   bool
	RegHigh uint64 // value written, for switching-activity power estimates
}

func (s *ArchState) readR(r uint8) int64 {
	if r == ZeroReg {
		return 0
	}
	return s.R[r]
}

func (s *ArchState) writeR(r uint8, v int64) {
	if r != ZeroReg {
		s.R[r] = v
	}
}

func (s *ArchState) readF(r uint8) float64 {
	if r == ZeroReg {
		return 0
	}
	return s.F[r]
}

func (s *ArchState) writeF(r uint8, v float64) {
	if r != ZeroReg {
		s.F[r] = v
	}
}

// Exec executes the instruction at the current PC functionally, updating
// architectural state and returning the Outcome. Calling Exec after Halt
// is a no-op that reports the same PC.
func (s *ArchState) Exec(in Instr) Outcome {
	out := Outcome{NextPC: s.PC + 1}
	if s.Halt {
		out.NextPC = s.PC
		return out
	}
	switch in.Op {
	case NOP:
	case ADD:
		s.writeR(in.Dst, s.readR(in.Src1)+s.readR(in.Src2))
	case ADDI:
		s.writeR(in.Dst, s.readR(in.Src1)+in.Imm)
	case SUB:
		s.writeR(in.Dst, s.readR(in.Src1)-s.readR(in.Src2))
	case AND:
		s.writeR(in.Dst, s.readR(in.Src1)&s.readR(in.Src2))
	case OR:
		s.writeR(in.Dst, s.readR(in.Src1)|s.readR(in.Src2))
	case XOR:
		s.writeR(in.Dst, s.readR(in.Src1)^s.readR(in.Src2))
	case SHL:
		s.writeR(in.Dst, s.readR(in.Src1)<<(uint64(s.readR(in.Src2))&63))
	case SHR:
		s.writeR(in.Dst, int64(uint64(s.readR(in.Src1))>>(uint64(s.readR(in.Src2))&63)))
	case CMPLT:
		if s.readR(in.Src1) < s.readR(in.Src2) {
			s.writeR(in.Dst, 1)
		} else {
			s.writeR(in.Dst, 0)
		}
	case CMPEQ:
		if s.readR(in.Src1) == s.readR(in.Src2) {
			s.writeR(in.Dst, 1)
		} else {
			s.writeR(in.Dst, 0)
		}
	case CMOVNZ:
		if s.readR(in.Src1) != 0 {
			s.writeR(in.Dst, s.readR(in.Src2))
		}
	case LDI:
		s.writeR(in.Dst, in.Imm)
	case MUL:
		s.writeR(in.Dst, s.readR(in.Src1)*s.readR(in.Src2))
	case DIV:
		d := s.readR(in.Src2)
		if d == 0 {
			s.writeR(in.Dst, 0)
		} else {
			s.writeR(in.Dst, s.readR(in.Src1)/d)
		}
	case FADD:
		s.writeF(in.Dst, s.readF(in.Src1)+s.readF(in.Src2))
	case FSUB:
		s.writeF(in.Dst, s.readF(in.Src1)-s.readF(in.Src2))
	case FMUL:
		s.writeF(in.Dst, s.readF(in.Src1)*s.readF(in.Src2))
	case FDIV:
		d := s.readF(in.Src2)
		if d == 0 {
			s.writeF(in.Dst, math.Inf(1))
		} else {
			s.writeF(in.Dst, s.readF(in.Src1)/d)
		}
	case FLDI:
		s.writeF(in.Dst, ImmFloat(in.Imm))
	case LD:
		ea := uint64(s.readR(in.Src1) + in.Imm)
		out.EA, out.IsMem = ea, true
		v := int64(s.Mem.LoadWord(ea))
		s.writeR(in.Dst, v)
		out.RegHigh = uint64(v)
	case ST:
		ea := uint64(s.readR(in.Src1) + in.Imm)
		out.EA, out.IsMem = ea, true
		s.Mem.StoreWord(ea, uint64(s.readR(in.Src2)))
	case FLD:
		ea := uint64(s.readR(in.Src1) + in.Imm)
		out.EA, out.IsMem = ea, true
		s.writeF(in.Dst, math.Float64frombits(s.Mem.LoadWord(ea)))
	case FST:
		ea := uint64(s.readR(in.Src1) + in.Imm)
		out.EA, out.IsMem = ea, true
		s.Mem.StoreWord(ea, math.Float64bits(s.readF(in.Src2)))
	case BEQZ:
		if s.readR(in.Src1) == 0 {
			out.Taken = true
			out.NextPC = int(in.Imm)
		}
	case BNEZ:
		if s.readR(in.Src1) != 0 {
			out.Taken = true
			out.NextPC = int(in.Imm)
		}
	case JMP:
		out.Taken = true
		out.NextPC = int(in.Imm)
	case CALL:
		s.writeR(LinkReg, int64(s.PC+1))
		out.Taken = true
		out.NextPC = int(in.Imm)
	case RET:
		out.Taken = true
		out.NextPC = int(s.readR(LinkReg))
	case HALT:
		s.Halt = true
		out.NextPC = s.PC
	}
	s.PC = out.NextPC
	s.Retired++
	return out
}
