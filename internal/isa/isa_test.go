package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestClassOfCoversAllOps(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		c := ClassOf(op)
		if c >= NumClasses {
			t.Errorf("op %s: bad class %d", op, c)
		}
		switch op {
		case NOP:
			if c != ClassNop {
				t.Errorf("NOP class %s", c)
			}
		case FDIV:
			if c != ClassFPDiv {
				t.Errorf("FDIV class %s", c)
			}
		case LD, FLD:
			if c != ClassLoad {
				t.Errorf("%s class %s", op, c)
			}
		case ST, FST:
			if c != ClassStore {
				t.Errorf("%s class %s", op, c)
			}
		case BEQZ, BNEZ, JMP:
			if c != ClassBranch {
				t.Errorf("%s class %s", op, c)
			}
		}
	}
}

func TestZeroRegisterDiscardsWrites(t *testing.T) {
	s := NewArchState()
	s.Exec(Instr{Op: LDI, Dst: ZeroReg, Imm: 42})
	if s.R[ZeroReg] != 0 {
		t.Error("write to r31 not discarded")
	}
	s.Exec(Instr{Op: FLDI, Dst: ZeroReg, Imm: FloatImm(3.5)})
	if s.F[ZeroReg] != 0 {
		t.Error("write to f31 not discarded")
	}
	// Reads of r31 always yield zero even if forced.
	s.R[ZeroReg] = 99
	s.Exec(Instr{Op: ADD, Dst: 1, Src1: ZeroReg, Src2: ZeroReg})
	if s.R[1] != 0 {
		t.Error("read of r31 not zero")
	}
}

func TestIntegerALUSemantics(t *testing.T) {
	s := NewArchState()
	s.R[1], s.R[2] = 7, 3
	cases := []struct {
		in   Instr
		want int64
	}{
		{Instr{Op: ADD, Dst: 3, Src1: 1, Src2: 2}, 10},
		{Instr{Op: SUB, Dst: 3, Src1: 1, Src2: 2}, 4},
		{Instr{Op: AND, Dst: 3, Src1: 1, Src2: 2}, 3},
		{Instr{Op: OR, Dst: 3, Src1: 1, Src2: 2}, 7},
		{Instr{Op: XOR, Dst: 3, Src1: 1, Src2: 2}, 4},
		{Instr{Op: SHL, Dst: 3, Src1: 1, Src2: 2}, 56},
		{Instr{Op: SHR, Dst: 3, Src1: 1, Src2: 2}, 0},
		{Instr{Op: CMPLT, Dst: 3, Src1: 2, Src2: 1}, 1},
		{Instr{Op: CMPLT, Dst: 3, Src1: 1, Src2: 2}, 0},
		{Instr{Op: CMPEQ, Dst: 3, Src1: 1, Src2: 1}, 1},
		{Instr{Op: ADDI, Dst: 3, Src1: 1, Imm: -10}, -3},
		{Instr{Op: MUL, Dst: 3, Src1: 1, Src2: 2}, 21},
		{Instr{Op: DIV, Dst: 3, Src1: 1, Src2: 2}, 2},
		{Instr{Op: DIV, Dst: 3, Src1: 1, Src2: ZeroReg}, 0},
	}
	for _, c := range cases {
		s.Exec(c.in)
		if s.R[3] != c.want {
			t.Errorf("%s: got %d, want %d", c.in, s.R[3], c.want)
		}
	}
}

func TestCMovNZ(t *testing.T) {
	s := NewArchState()
	s.R[1], s.R[2], s.R[3] = 1, 42, 7
	s.Exec(Instr{Op: CMOVNZ, Dst: 3, Src1: 1, Src2: 2})
	if s.R[3] != 42 {
		t.Errorf("cmovnz taken: got %d", s.R[3])
	}
	s.R[1], s.R[3] = 0, 7
	s.Exec(Instr{Op: CMOVNZ, Dst: 3, Src1: 1, Src2: 2})
	if s.R[3] != 7 {
		t.Errorf("cmovnz not-taken: got %d", s.R[3])
	}
}

func TestFloatSemantics(t *testing.T) {
	s := NewArchState()
	s.Exec(Instr{Op: FLDI, Dst: 1, Imm: FloatImm(6.0)})
	s.Exec(Instr{Op: FLDI, Dst: 2, Imm: FloatImm(1.5)})
	s.Exec(Instr{Op: FDIV, Dst: 3, Src1: 1, Src2: 2})
	if s.F[3] != 4.0 {
		t.Errorf("fdiv: got %g", s.F[3])
	}
	s.Exec(Instr{Op: FMUL, Dst: 4, Src1: 3, Src2: 2})
	if s.F[4] != 6.0 {
		t.Errorf("fmul: got %g", s.F[4])
	}
	s.Exec(Instr{Op: FDIV, Dst: 5, Src1: 1, Src2: ZeroReg})
	if !math.IsInf(s.F[5], 1) {
		t.Errorf("fdiv by zero: got %g", s.F[5])
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	s := NewArchState()
	s.R[4] = 0x1000
	s.R[2] = -12345
	out := s.Exec(Instr{Op: ST, Src1: 4, Src2: 2, Imm: 16})
	if !out.IsMem || out.EA != 0x1010 {
		t.Fatalf("store EA: %+v", out)
	}
	s.Exec(Instr{Op: LD, Dst: 5, Src1: 4, Imm: 16})
	if s.R[5] != -12345 {
		t.Errorf("load after store: got %d", s.R[5])
	}
	// FP memory shares the address space.
	s.Exec(Instr{Op: FLDI, Dst: 1, Imm: FloatImm(2.75)})
	s.Exec(Instr{Op: FST, Src1: 4, Src2: 1, Imm: 24})
	s.Exec(Instr{Op: FLD, Dst: 2, Src1: 4, Imm: 24})
	if s.F[2] != 2.75 {
		t.Errorf("fld after fst: got %g", s.F[2])
	}
}

func TestSparseMemoryZeroDefault(t *testing.T) {
	m := NewMemory()
	if m.LoadWord(0xdeadbeef) != 0 {
		t.Error("untouched memory must read zero")
	}
	m.StoreWord(1<<40, 7)
	if m.LoadWord(1<<40) != 7 {
		t.Error("high-address store lost")
	}
	if m.Footprint() != 1 {
		t.Errorf("footprint = %d pages, want 1", m.Footprint())
	}
}

func TestBranchSemantics(t *testing.T) {
	s := NewArchState()
	s.PC = 5
	out := s.Exec(Instr{Op: BEQZ, Src1: 1, Imm: 2})
	if !out.Taken || s.PC != 2 {
		t.Errorf("beqz on zero: taken=%v pc=%d", out.Taken, s.PC)
	}
	s.R[1] = 1
	out = s.Exec(Instr{Op: BEQZ, Src1: 1, Imm: 0})
	if out.Taken || s.PC != 3 {
		t.Errorf("beqz on nonzero: taken=%v pc=%d", out.Taken, s.PC)
	}
	out = s.Exec(Instr{Op: JMP, Imm: 9})
	if !out.Taken || s.PC != 9 {
		t.Errorf("jmp: pc=%d", s.PC)
	}
}

func TestHaltStopsExecution(t *testing.T) {
	s := NewArchState()
	s.Exec(Instr{Op: HALT})
	if !s.Halt {
		t.Fatal("halt flag not set")
	}
	pc := s.PC
	s.Exec(Instr{Op: ADDI, Dst: 1, Src1: 1, Imm: 5})
	if s.R[1] != 0 || s.PC != pc {
		t.Error("execution continued after halt")
	}
}

func TestBuilderLoopProgram(t *testing.T) {
	b := NewBuilder()
	b.LdI(1, 5).LdI(2, 0)
	b.Label("loop")
	b.Add(2, 2, 1)
	b.AddI(1, 1, -1)
	b.BneZ(1, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s := NewArchState()
	for i := 0; i < 1000 && !s.Halt; i++ {
		s.Exec(p[s.PC])
	}
	if !s.Halt {
		t.Fatal("program did not halt")
	}
	if s.R[2] != 5+4+3+2+1 {
		t.Errorf("sum = %d, want 15", s.R[2])
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere").Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("want undefined-label error")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x").Nop().Label("x").Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("want duplicate-label error")
	}
}

func TestValidateRejectsWildBranch(t *testing.T) {
	p := Program{{Op: JMP, Imm: 99}}
	if err := p.Validate(); err == nil {
		t.Fatal("want out-of-range branch error")
	}
}

func TestParseStressmarkStyleLoop(t *testing.T) {
	src := `
	; dI/dt stressmark inner loop (paper Figure 8 shape)
	  ldi  r4, 4096
	  ldi  r5, 3
	  fldi f2, 1.0001
	loop:
	  fld  f1, 0(r4)
	  fdiv f3, f1, f2
	  fdiv f3, f3, f2
	  fst  f3, 8(r4)
	  ld   r7, 8(r4)
	  cmovnz r3, r7, r31
	  st   r3, 0(r4)
	  addi r5, r5, -1
	  bnez r5, loop
	  halt
	`
	p, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s := NewArchState()
	for i := 0; i < 10000 && !s.Halt; i++ {
		s.Exec(p[s.PC])
	}
	if !s.Halt {
		t.Fatal("did not halt")
	}
	if s.R[5] != 0 {
		t.Errorf("loop counter = %d, want 0", s.R[5])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate r1, r2",
		"add r1, r2",
		"add f1, r2, r3",
		"ld r1, r2",
		"ld r1, 0(f2)",
		"beqz r1, nowhere",
		"addi r1, r2, abc",
		"x: x: nop",
		"ldi r99, 5",
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q): want error", src)
		}
	}
}

func TestDisassembleParseRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.LdI(1, 10).FLdI(2, 2.5)
	b.Label("top")
	b.FAdd(3, 2, 2).Mul(4, 1, 1).Ld(5, 1, 8).St(5, 1, 16)
	b.FLd(6, 1, 24).FSt(6, 1, 32)
	b.CmpEQ(7, 4, 5).CMovNZ(8, 7, 4)
	b.AddI(1, 1, -1).BneZ(1, "top").Jmp("end")
	b.Label("end").Halt()
	p := b.MustBuild()

	var sb strings.Builder
	for _, in := range p {
		sb.WriteString(in.String())
		sb.WriteString("\n")
	}
	p2, err := ParseString(sb.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(p2) != len(p) {
		t.Fatalf("length mismatch: %d vs %d", len(p2), len(p))
	}
	for i := range p {
		if p[i] != p2[i] {
			t.Errorf("instr %d: %v != %v", i, p[i], p2[i])
		}
	}
}

func TestDisassembleIncludesIndices(t *testing.T) {
	p := Program{{Op: NOP}, {Op: HALT}}
	d := Disassemble(p)
	if !strings.Contains(d, "0:") || !strings.Contains(d, "halt") {
		t.Errorf("unexpected disassembly:\n%s", d)
	}
}

func TestPropertyFloatImmRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		got := ImmFloat(FloatImm(v))
		return got == v || (math.IsNaN(got) && math.IsNaN(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMemoryStoreLoad(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v uint64) bool {
		addr &= (1 << 34) - 1
		m.StoreWord(addr, v)
		return m.LoadWord(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAddMatchesGo(t *testing.T) {
	f := func(a, b int64) bool {
		s := NewArchState()
		s.R[1], s.R[2] = a, b
		s.Exec(Instr{Op: ADD, Dst: 3, Src1: 1, Src2: 2})
		return s.R[3] == a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWritesIntFP(t *testing.T) {
	if !(Instr{Op: LD, Dst: 1}).WritesInt() {
		t.Error("LD writes int")
	}
	if (Instr{Op: LD, Dst: ZeroReg}).WritesInt() {
		t.Error("LD to r31 writes nothing")
	}
	if !(Instr{Op: FLD, Dst: 1}).WritesFP() {
		t.Error("FLD writes fp")
	}
	if (Instr{Op: ST}).WritesInt() || (Instr{Op: ST}).WritesFP() {
		t.Error("ST writes no register")
	}
	if !(Instr{Op: BNEZ}).IsConditional() || (Instr{Op: JMP}).IsConditional() {
		t.Error("conditional classification")
	}
}

func TestPCByteAddr(t *testing.T) {
	if PCByteAddr(3) != 24 {
		t.Errorf("PCByteAddr(3) = %d", PCByteAddr(3))
	}
}
