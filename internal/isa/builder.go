package isa

import "fmt"

// Builder assembles programs in code with symbolic labels, the way the
// workload generators construct the stressmark and synthetic benchmarks.
// Branches may reference labels defined later; Build resolves them.
type Builder struct {
	instrs []Instr
	labels map[string]int
	fixups []fixup
	errs   []error
}

type fixup struct {
	instr int
	label string
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.instrs)
	return b
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in Instr) *Builder {
	b.instrs = append(b.instrs, in)
	return b
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.instrs) }

// Convenience emitters. Register arguments are file indices.

func (b *Builder) Nop() *Builder { return b.Emit(Instr{Op: NOP}) }

func (b *Builder) Op3(op Op, dst, s1, s2 uint8) *Builder {
	return b.Emit(Instr{Op: op, Dst: dst, Src1: s1, Src2: s2})
}

func (b *Builder) Add(dst, s1, s2 uint8) *Builder  { return b.Op3(ADD, dst, s1, s2) }
func (b *Builder) Sub(dst, s1, s2 uint8) *Builder  { return b.Op3(SUB, dst, s1, s2) }
func (b *Builder) And(dst, s1, s2 uint8) *Builder  { return b.Op3(AND, dst, s1, s2) }
func (b *Builder) Or(dst, s1, s2 uint8) *Builder   { return b.Op3(OR, dst, s1, s2) }
func (b *Builder) Xor(dst, s1, s2 uint8) *Builder  { return b.Op3(XOR, dst, s1, s2) }
func (b *Builder) Mul(dst, s1, s2 uint8) *Builder  { return b.Op3(MUL, dst, s1, s2) }
func (b *Builder) Div(dst, s1, s2 uint8) *Builder  { return b.Op3(DIV, dst, s1, s2) }
func (b *Builder) FAdd(dst, s1, s2 uint8) *Builder { return b.Op3(FADD, dst, s1, s2) }
func (b *Builder) FSub(dst, s1, s2 uint8) *Builder { return b.Op3(FSUB, dst, s1, s2) }
func (b *Builder) FMul(dst, s1, s2 uint8) *Builder { return b.Op3(FMUL, dst, s1, s2) }
func (b *Builder) FDiv(dst, s1, s2 uint8) *Builder { return b.Op3(FDIV, dst, s1, s2) }

func (b *Builder) CmpLT(dst, s1, s2 uint8) *Builder  { return b.Op3(CMPLT, dst, s1, s2) }
func (b *Builder) CmpEQ(dst, s1, s2 uint8) *Builder  { return b.Op3(CMPEQ, dst, s1, s2) }
func (b *Builder) CMovNZ(dst, s1, s2 uint8) *Builder { return b.Op3(CMOVNZ, dst, s1, s2) }

func (b *Builder) AddI(dst, s1 uint8, imm int64) *Builder {
	return b.Emit(Instr{Op: ADDI, Dst: dst, Src1: s1, Imm: imm})
}

func (b *Builder) LdI(dst uint8, imm int64) *Builder {
	return b.Emit(Instr{Op: LDI, Dst: dst, Imm: imm})
}

func (b *Builder) FLdI(dst uint8, v float64) *Builder {
	return b.Emit(Instr{Op: FLDI, Dst: dst, Imm: FloatImm(v)})
}

func (b *Builder) Ld(dst, base uint8, disp int64) *Builder {
	return b.Emit(Instr{Op: LD, Dst: dst, Src1: base, Imm: disp})
}

func (b *Builder) St(val, base uint8, disp int64) *Builder {
	return b.Emit(Instr{Op: ST, Src2: val, Src1: base, Imm: disp})
}

func (b *Builder) FLd(dst, base uint8, disp int64) *Builder {
	return b.Emit(Instr{Op: FLD, Dst: dst, Src1: base, Imm: disp})
}

func (b *Builder) FSt(val, base uint8, disp int64) *Builder {
	return b.Emit(Instr{Op: FST, Src2: val, Src1: base, Imm: disp})
}

// branch emitters reference labels, resolved at Build time.

func (b *Builder) BeqZ(cond uint8, label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.instrs), label})
	return b.Emit(Instr{Op: BEQZ, Src1: cond})
}

func (b *Builder) BneZ(cond uint8, label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.instrs), label})
	return b.Emit(Instr{Op: BNEZ, Src1: cond})
}

func (b *Builder) Jmp(label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.instrs), label})
	return b.Emit(Instr{Op: JMP})
}

func (b *Builder) Halt() *Builder { return b.Emit(Instr{Op: HALT}) }

// Build resolves labels and validates the program.
func (b *Builder) Build() (Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	p := append(Program(nil), b.instrs...)
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q", f.label)
		}
		p[f.instr].Imm = int64(target)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for programs constructed from trusted generators;
// it panics on error.
func (b *Builder) MustBuild() Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
