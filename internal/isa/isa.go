// Package isa defines the small RISC instruction set executed by the cycle
// simulator. It stands in for SimpleScalar's Alpha ISA: the paper's
// experiments need an instruction stream whose microarchitectural activity
// (ILP, stalls, cache misses, branches, long-latency divides) can be shaped
// precisely, not binary compatibility with any real machine.
//
// The machine has 32 integer registers r0..r31 and 32 floating-point
// registers f0..f31. r31 and f31 are hardwired zero, mirroring Alpha's $31
// (the stressmark in the paper uses $31 as a discard target). Programs are
// slices of Instr addressed by instruction index; the fetch stage maps an
// index to a byte address (8 bytes per instruction) for the I-cache.
package isa

import (
	"fmt"
	"math"
)

// NumRegs is the size of each register file.
const NumRegs = 32

// ZeroReg is the hardwired-zero register index in both files.
const ZeroReg = 31

// InstrBytes is the encoded size of one instruction, used to derive fetch
// addresses for the I-cache model.
const InstrBytes = 8

// Op enumerates the instruction opcodes.
type Op uint8

const (
	NOP Op = iota
	// Integer ALU.
	ADD  // Dst = Src1 + Src2
	ADDI // Dst = Src1 + Imm
	SUB  // Dst = Src1 - Src2
	AND  // Dst = Src1 & Src2
	OR   // Dst = Src1 | Src2
	XOR  // Dst = Src1 ^ Src2
	SHL  // Dst = Src1 << (Src2 & 63)
	SHR  // Dst = Src1 >> (Src2 & 63) (logical)
	CMPLT
	CMPEQ
	CMOVNZ // if Src1 != 0 { Dst = Src2 } (reads Dst as third operand)
	LDI    // Dst = Imm
	// Integer multiply / divide.
	MUL
	DIV // Src2 == 0 yields 0 (no faults in this machine)
	// Floating point.
	FADD
	FSUB
	FMUL
	FDIV // long-latency, non-pipelined: the stressmark's stall generator
	FLDI // FDst = float64 from Imm bits
	// Memory. Effective address = intreg Src1 + Imm.
	LD  // Dst  = mem[EA]   (integer)
	ST  // mem[EA] = Src2   (integer)
	FLD // FDst = mem[EA]   (float)
	FST // mem[EA] = FSrc2  (float)
	// Control. Branch target is the absolute instruction index in Imm.
	BEQZ // taken if intreg Src1 == 0
	BNEZ // taken if intreg Src1 != 0
	JMP  // unconditional
	CALL // r30 = PC+1; jump to Imm (return-address stack push)
	RET  // jump to r30 (return-address stack pop)
	HALT // stop the program

	numOps
)

// LinkReg receives the return address written by CALL and read by RET.
const LinkReg = 30

var opNames = [numOps]string{
	NOP: "nop", ADD: "add", ADDI: "addi", SUB: "sub", AND: "and", OR: "or",
	XOR: "xor", SHL: "shl", SHR: "shr", CMPLT: "cmplt", CMPEQ: "cmpeq",
	CMOVNZ: "cmovnz", LDI: "ldi", MUL: "mul", DIV: "div", FADD: "fadd",
	FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FLDI: "fldi", LD: "ld",
	ST: "st", FLD: "fld", FST: "fst", BEQZ: "beqz", BNEZ: "bnez",
	JMP: "jmp", CALL: "call", RET: "ret", HALT: "halt",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class groups opcodes by the functional unit that executes them; the
// timing and power models dispatch on it.
type Class uint8

const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMult
	ClassIntDiv
	ClassFPAdd
	ClassFPMult
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassHalt

	NumClasses
)

var classNames = [NumClasses]string{
	"nop", "int-alu", "int-mult", "int-div", "fp-add", "fp-mult", "fp-div",
	"load", "store", "branch", "halt",
}

// String names the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ClassOf returns the functional-unit class for an opcode.
func ClassOf(op Op) Class {
	switch op {
	case NOP:
		return ClassNop
	case ADD, ADDI, SUB, AND, OR, XOR, SHL, SHR, CMPLT, CMPEQ, CMOVNZ, LDI:
		return ClassIntALU
	case MUL:
		return ClassIntMult
	case DIV:
		return ClassIntDiv
	case FADD, FSUB, FLDI:
		return ClassFPAdd
	case FMUL:
		return ClassFPMult
	case FDIV:
		return ClassFPDiv
	case LD, FLD:
		return ClassLoad
	case ST, FST:
		return ClassStore
	case BEQZ, BNEZ, JMP, CALL, RET:
		return ClassBranch
	case HALT:
		return ClassHalt
	}
	return ClassNop
}

// IsFP reports whether the opcode reads or writes the floating-point file.
func IsFP(op Op) bool {
	switch op {
	case FADD, FSUB, FMUL, FDIV, FLDI, FLD, FST:
		return true
	}
	return false
}

// Instr is one decoded instruction. Register fields index the integer file
// except where the opcode is floating point (then Dst/Src1/Src2 index the
// FP file, with memory ops keeping their base register Src1 in the integer
// file).
type Instr struct {
	Op   Op
	Dst  uint8
	Src1 uint8
	Src2 uint8
	Imm  int64
}

// FloatImm builds the Imm encoding for FLDI.
func FloatImm(v float64) int64 { return int64(math.Float64bits(v)) }

// ImmFloat decodes an FLDI immediate.
func ImmFloat(imm int64) float64 { return math.Float64frombits(uint64(imm)) }

// String renders assembly text round-trippable through Parse.
func (in Instr) String() string {
	switch in.Op {
	case NOP, HALT:
		return in.Op.String()
	case ADDI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Dst, in.Src1, in.Imm)
	case LDI:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Dst, in.Imm)
	case FLDI:
		return fmt.Sprintf("%s f%d, %g", in.Op, in.Dst, ImmFloat(in.Imm))
	case ADD, SUB, AND, OR, XOR, SHL, SHR, CMPLT, CMPEQ, CMOVNZ, MUL, DIV:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Dst, in.Src1, in.Src2)
	case FADD, FSUB, FMUL, FDIV:
		return fmt.Sprintf("%s f%d, f%d, f%d", in.Op, in.Dst, in.Src1, in.Src2)
	case LD:
		return fmt.Sprintf("ld r%d, %d(r%d)", in.Dst, in.Imm, in.Src1)
	case ST:
		return fmt.Sprintf("st r%d, %d(r%d)", in.Src2, in.Imm, in.Src1)
	case FLD:
		return fmt.Sprintf("fld f%d, %d(r%d)", in.Dst, in.Imm, in.Src1)
	case FST:
		return fmt.Sprintf("fst f%d, %d(r%d)", in.Src2, in.Imm, in.Src1)
	case BEQZ, BNEZ:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Src1, in.Imm)
	case JMP:
		return fmt.Sprintf("jmp %d", in.Imm)
	case CALL:
		return fmt.Sprintf("call %d", in.Imm)
	case RET:
		return "ret"
	}
	return fmt.Sprintf("%s ?", in.Op)
}

// IsBranch reports whether the instruction can redirect fetch.
func (in Instr) IsBranch() bool {
	switch in.Op {
	case BEQZ, BNEZ, JMP, CALL, RET:
		return true
	}
	return false
}

// IsConditional reports whether the branch outcome depends on a register.
func (in Instr) IsConditional() bool { return in.Op == BEQZ || in.Op == BNEZ }

// IsMem reports whether the instruction accesses data memory.
func (in Instr) IsMem() bool {
	switch in.Op {
	case LD, ST, FLD, FST:
		return true
	}
	return false
}

// IsLoad and IsStore classify memory operations.
func (in Instr) IsLoad() bool  { return in.Op == LD || in.Op == FLD }
func (in Instr) IsStore() bool { return in.Op == ST || in.Op == FST }

// WritesInt reports whether the instruction writes an integer register
// (excluding the discarding zero register).
func (in Instr) WritesInt() bool {
	switch in.Op {
	case ADD, ADDI, SUB, AND, OR, XOR, SHL, SHR, CMPLT, CMPEQ, CMOVNZ, LDI, MUL, DIV, LD:
		return in.Dst != ZeroReg
	case CALL:
		return true // writes LinkReg
	}
	return false
}

// WritesFP reports whether the instruction writes a floating-point
// register (excluding f31).
func (in Instr) WritesFP() bool {
	switch in.Op {
	case FADD, FSUB, FMUL, FDIV, FLDI, FLD:
		return in.Dst != ZeroReg
	}
	return false
}

// Program is a sequence of instructions addressed by index.
type Program []Instr

// PCByteAddr converts an instruction index to a byte address for the
// I-cache model.
func PCByteAddr(pc int) uint64 { return uint64(pc) * InstrBytes }

// Validate checks that all branch targets are in range and the program is
// terminated (contains a HALT or ends with an unconditional backward jump).
func (p Program) Validate() error {
	for i, in := range p {
		if in.IsBranch() && in.Op != RET {
			if in.Imm < 0 || in.Imm >= int64(len(p)) {
				return fmt.Errorf("isa: instr %d (%s): branch target %d out of range [0,%d)", i, in, in.Imm, len(p))
			}
		}
		if in.Dst >= NumRegs || in.Src1 >= NumRegs || in.Src2 >= NumRegs {
			return fmt.Errorf("isa: instr %d (%s): register out of range", i, in)
		}
	}
	return nil
}
