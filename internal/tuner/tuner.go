// Package tuner automates the stressmark's loop-shape search on a concrete
// system configuration. It lives above both workload (which only generates
// programs) and core (which only runs them), so the generator layer stays
// free of simulation dependencies.
package tuner

import (
	"didt/internal/core"
	"didt/internal/workload"
)

// TuneResult reports one stressmark tuning evaluation.
type TuneResult struct {
	Params        workload.StressmarkParams
	MaxDeviation  float64 // volts from nominal, worse side
	CyclesPerIter float64
	Emergencies   uint64
}

// TuneStressmark sweeps the stressmark's loop-shape parameters on the given
// system configuration and returns the evaluations sorted as encountered,
// with Best holding the deepest-swing configuration. This automates the
// paper's hand-tuning of Section 3.2 ("adding instructions ... can affect
// the loop timing and move it off the resonant frequency").
func TuneStressmark(opts core.Options) (best TuneResult, all []TuneResult, err error) {
	const iters = 1200
	opts.RecordTraces = false
	if opts.Spec.Budget.MaxCycles == 0 || opts.Spec.Budget.MaxCycles > 400000 {
		opts.Spec.Budget.MaxCycles = 400000
	}
	for _, divs := range []int{2, 3, 4} {
		for _, alu := range []int{40, 60, 80, 100, 120} {
			for _, st := range []int{24, 40, 56} {
				p := workload.StressmarkParams{
					Iterations:  iters,
					ChainedDivs: divs,
					BurstALU:    alu,
					BurstStores: st,
				}
				sys, err := core.NewSystem(workload.Stressmark(p), opts)
				if err != nil {
					return TuneResult{}, nil, err
				}
				res, err := sys.Run()
				if err != nil {
					return TuneResult{}, nil, err
				}
				devLo := res.VNominal - res.MinV
				devHi := res.MaxV - res.VNominal
				dev := devLo
				if devHi > dev {
					dev = devHi
				}
				r := TuneResult{
					Params:        p,
					MaxDeviation:  dev,
					CyclesPerIter: float64(res.Cycles) / float64(iters),
					Emergencies:   res.Emergencies,
				}
				all = append(all, r)
				if r.MaxDeviation > best.MaxDeviation {
					best = r
				}
			}
		}
	}
	return best, all, nil
}
