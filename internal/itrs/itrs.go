// Package itrs models the 2001 ITRS roadmap trends the paper's Figure 1
// presents: relative power-supply-network target impedance for
// cost-performance and high-performance systems across technology
// generations. The paper's reading of the roadmap: target impedance must
// drop roughly 2x every 3-5 years, and the gap between the two system
// classes shrinks over time.
package itrs

import "math"

// Point is one roadmap year.
type Point struct {
	Year              int
	HighPerformance   float64 // impedance relative to the 2001 high-perf value
	CostPerformance   float64
	RelativeGapFactor float64 // cost-perf / high-perf
}

// baseYear anchors the relative scale.
const baseYear = 2001

// halvingYearsHigh and halvingYearsCost capture "2x every 3-5 years": the
// high-performance class leads (shorter halving time) while the
// cost-performance class starts with laxer targets but catches up,
// shrinking the relative gap — the paper's second observation.
const (
	halvingYearsHigh = 4.0
	halvingYearsCost = 3.2
	initialGap       = 3.0 // cost-perf targets start ~3x laxer
)

// Impedances returns the relative target impedances for a year.
func Impedances(year int) (highPerf, costPerf float64) {
	dy := float64(year - baseYear)
	highPerf = math.Pow(2, -dy/halvingYearsHigh)
	costPerf = initialGap * math.Pow(2, -dy/halvingYearsCost)
	if costPerf < highPerf {
		costPerf = highPerf // the classes converge; cost-perf never leads
	}
	return highPerf, costPerf
}

// Trend returns the roadmap from 2001 through the requested horizon.
func Trend(lastYear int) []Point {
	var out []Point
	for y := baseYear; y <= lastYear; y++ {
		h, c := Impedances(y)
		out = append(out, Point{Year: y, HighPerformance: h, CostPerformance: c, RelativeGapFactor: c / h})
	}
	return out
}
