package itrs

import (
	"math"
	"testing"
)

func TestBaseYearAnchored(t *testing.T) {
	h, c := Impedances(2001)
	if h != 1 {
		t.Errorf("2001 high-perf = %g, want 1", h)
	}
	if c != 3 {
		t.Errorf("2001 cost-perf = %g, want 3", c)
	}
}

func TestHalvingRate(t *testing.T) {
	// "2x every 3-5 years": after 4 years high-perf should be ~0.5.
	h, _ := Impedances(2005)
	if math.Abs(h-0.5) > 1e-9 {
		t.Errorf("2005 high-perf = %g, want 0.5", h)
	}
}

func TestTrendsMonotoneAndConverging(t *testing.T) {
	pts := Trend(2016)
	if len(pts) != 16 {
		t.Fatalf("%d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].HighPerformance >= pts[i-1].HighPerformance {
			t.Error("high-perf impedance must fall")
		}
		if pts[i].CostPerformance >= pts[i-1].CostPerformance {
			t.Error("cost-perf impedance must fall")
		}
		if pts[i].RelativeGapFactor > pts[i-1].RelativeGapFactor {
			t.Error("the class gap must shrink (the paper's second observation)")
		}
	}
	for _, p := range pts {
		if p.CostPerformance < p.HighPerformance {
			t.Error("cost-perf targets never lead high-perf")
		}
	}
}
