package analysis

import (
	"go/ast"
	"go/types"
)

// Locks proves the worker-pool liveness invariant in internal/sim: a
// mutex must never be held across a channel send, receive, or select. A
// blocked channel operation under a lock turns backpressure into a
// deadlock of every goroutine that touches the same mutex — exactly the
// failure mode a bounded sweep pool invites under heavy traffic.
var Locks = &Analyzer{
	Name: "locks",
	Doc:  "flag sync mutexes held across channel operations in the internal/sim worker pool",
	AppliesTo: func(pkgPath string) bool {
		return pathWithin(pkgPath, "didt/internal/sim")
	},
	Run: runLocks,
}

func runLocks(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				checkBlockLocks(pass, body, map[string]bool{})
			}
			return true
		})
	}
	return nil
}

// mutexCallRecv returns the rendered receiver when stmt is a plain
// `recv.Lock()` / `recv.Unlock()` style call matching pred.
func mutexCallRecv(pass *Pass, stmt ast.Stmt, pred func(*types.Func) bool) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || !pred(calleeFunc(pass.Info, call)) {
		return "", false
	}
	return recvExprString(call)
}

// checkBlockLocks scans one block, tracking which mutexes are held after
// each statement. held maps the rendered receiver expression of a Lock
// call to true; a deferred Unlock leaves the mutex held (lexically) until
// the end of the block, which is exactly the dangerous region. While a
// mutex is held, the entire statement subtree is inspected for channel
// operations; while none is, nested blocks are walked so locks acquired
// inside them are tracked too.
func checkBlockLocks(pass *Pass, block *ast.BlockStmt, held map[string]bool) {
	for _, stmt := range block.List {
		if recv, ok := mutexCallRecv(pass, stmt, isMutexAcquire); ok {
			held[recv] = true
			continue
		}
		if recv, ok := mutexCallRecv(pass, stmt, isMutexRelease); ok {
			delete(held, recv)
			continue
		}
		if len(held) > 0 {
			reportChannelOps(pass, stmt, held)
			continue
		}
		descendLocks(pass, stmt, held)
	}
}

// descendLocks recurses into a statement's nested blocks with a copy of
// the (empty) held set, so lock/unlock pairs inside branches and loops are
// analyzed in their own scope.
func descendLocks(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	fork := func() map[string]bool {
		c := make(map[string]bool, len(held))
		for k, v := range held {
			c[k] = v
		}
		return c
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		checkBlockLocks(pass, s, fork())
	case *ast.IfStmt:
		checkBlockLocks(pass, s.Body, fork())
		if els, ok := s.Else.(*ast.BlockStmt); ok {
			checkBlockLocks(pass, els, fork())
		} else if els, ok := s.Else.(*ast.IfStmt); ok {
			descendLocks(pass, els, held)
		}
	case *ast.ForStmt:
		checkBlockLocks(pass, s.Body, fork())
	case *ast.RangeStmt:
		checkBlockLocks(pass, s.Body, fork())
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkBlockLocks(pass, &ast.BlockStmt{List: cc.Body}, fork())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkBlockLocks(pass, &ast.BlockStmt{List: cc.Body}, fork())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				checkBlockLocks(pass, &ast.BlockStmt{List: cc.Body}, fork())
			}
		}
	case *ast.LabeledStmt:
		descendLocks(pass, s.Stmt, held)
	}
}

// reportChannelOps flags channel sends, receives, selects, and channel
// ranges anywhere inside stmt (function literals excluded: a goroutine or
// callback runs on its own stack, not under this frame's lock scope).
func reportChannelOps(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	holder := ""
	for recv := range held {
		if holder == "" || recv < holder {
			holder = recv
		}
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while holding %s: a full channel deadlocks every goroutine contending on the mutex", holder)
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(), "channel receive while holding %s: an empty channel deadlocks every goroutine contending on the mutex", holder)
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select while holding %s: a blocking select deadlocks every goroutine contending on the mutex", holder)
			return false
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pass.Reportf(n.Pos(), "range over channel while holding %s: the loop blocks until the channel closes", holder)
				}
			}
		}
		return true
	})
}
