package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// telemetryPath is the import path of the telemetry package whose emit
// methods the suite polices (fixtures mirror the path under testdata/src).
const telemetryPath = "didt/internal/telemetry"

// pathWithin reports whether pkgPath is prefix or a package below it.
func pathWithin(pkgPath, prefix string) bool {
	return pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")
}

// calleeFunc resolves the static callee of a call expression: a package
// function, a method, or nil for builtins, type conversions and calls of
// function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (never a method).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// methodInfo describes a resolved method callee: the defining package
// path and the receiver's base type name.
func methodInfo(fn *types.Func) (pkgPath, typeName, method string, ok bool) {
	if fn == nil || fn.Pkg() == nil {
		return "", "", "", false
	}
	sig, sok := fn.Type().(*types.Signature)
	if !sok || sig.Recv() == nil {
		return "", "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, nok := t.(*types.Named)
	if !nok {
		return "", "", "", false
	}
	return fn.Pkg().Path(), named.Obj().Name(), fn.Name(), true
}

// ioWriterIface is a structural copy of io.Writer, built without importing
// io so the check works identically on fixtures and the real tree.
var ioWriterIface = func() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	errType := types.Universe.Lookup("error").Type()
	params := types.NewTuple(types.NewVar(0, nil, "p", byteSlice))
	results := types.NewTuple(
		types.NewVar(0, nil, "n", types.Typ[types.Int]),
		types.NewVar(0, nil, "err", errType),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	write := types.NewFunc(0, nil, "Write", sig)
	iface := types.NewInterfaceType([]*types.Func{write}, nil)
	iface.Complete()
	return iface
}()

// implementsWriter reports whether t (or *t) satisfies io.Writer.
func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, ioWriterIface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), ioWriterIface)
	}
	return false
}

// isMutexAcquire reports whether a call acquires a sync mutex (Lock or
// RLock on sync.Mutex / sync.RWMutex, including promoted embeds).
func isMutexAcquire(fn *types.Func) bool {
	pkg, typ, name, ok := methodInfo(fn)
	if !ok || pkg != "sync" {
		return false
	}
	return (typ == "Mutex" || typ == "RWMutex") && (name == "Lock" || name == "RLock")
}

// isMutexRelease reports whether a call releases a sync mutex.
func isMutexRelease(fn *types.Func) bool {
	pkg, typ, name, ok := methodInfo(fn)
	if !ok || pkg != "sync" {
		return false
	}
	return (typ == "Mutex" || typ == "RWMutex") && (name == "Unlock" || name == "RUnlock")
}

// recvExprString renders the receiver expression of a method call
// ("s.stream" for s.stream.Emit(...)), the key used to match guard and
// emit receivers.
func recvExprString(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return types.ExprString(sel.X), true
}
