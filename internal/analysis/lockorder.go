package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder extends the per-function locks analyzer into a whole-program
// lock-acquisition graph. A node is a lock identity — the owning named
// type plus field (didt/internal/sim.Cache.mu), or a package-level
// variable — and an edge A→B means some function acquires B while holding
// A, either directly in its body or through any function it calls
// (transitively). A cycle in that graph is a potential deadlock: two
// goroutines entering the cycle from different edges can each hold what
// the other needs. A self-edge is a guaranteed one: sync.Mutex is not
// reentrant, so acquiring a lock while holding it — directly or through a
// call chain — blocks forever.
//
// Held-ness is tracked lexically, the same discipline locks.go uses:
// between mu.Lock() and mu.Unlock() in straight-line statement order.
// Function literals do not inherit the enclosing held set (a go-launched
// body runs on another goroutine), but their own acquisitions still feed
// the enclosing function's transitive acquire set — conservative in the
// direction that finds cycles. Interface-dispatched calls are invisible
// to the graph (no static callee), an accepted under-approximation.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "build the whole-program lock-acquisition graph and reject cycles " +
		"(potential deadlocks) and recursive acquisition",
	RunProgram: runLockOrder,
}

// lockEdge records that `to` is acquired while `from` is held, at pos.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

// funcLocks summarizes one function for the fixpoint: the locks its body
// acquires directly, the statically-known callees, and the call sites
// executed while locks are held.
type funcLocks struct {
	fi       *FuncInfo
	acquires map[string]token.Pos // lock id -> first acquisition position
	callees  []*types.Func
	// heldCalls: call sites under held locks; edges from each held lock to
	// everything the callee transitively acquires.
	heldCalls []heldCall
	edges     []lockEdge // direct body edges (lock acquired under lock)
}

type heldCall struct {
	held   []string
	callee *types.Func
	pos    token.Pos
}

func runLockOrder(pass *ProgramPass) error {
	prog := pass.Program()
	requested := map[string]bool{}
	for _, p := range pass.Paths {
		requested[p] = true
	}

	// Summarize every loaded function; the graph needs out-of-scope
	// callees' acquires even though edges are only reported in scope.
	summaries := map[*types.Func]*funcLocks{}
	for _, fi := range prog.Funcs {
		summaries[fi.Fn] = summarizeLocks(fi)
	}

	// Fixpoint: propagate acquires through calls until stable.
	trans := map[*types.Func]map[string]token.Pos{}
	for fn, s := range summaries {
		m := map[string]token.Pos{}
		for id, pos := range s.acquires {
			m[id] = pos
		}
		trans[fn] = m
	}
	for changed := true; changed; {
		changed = false
		for fn, s := range summaries {
			m := trans[fn]
			for _, callee := range s.callees {
				cm, ok := trans[callee]
				if !ok {
					continue
				}
				for id, pos := range cm {
					if _, have := m[id]; !have {
						m[id] = pos
						changed = true
					}
				}
			}
		}
	}

	// Assemble edges: direct ones plus held-call closures. Only functions
	// in the requested packages contribute reportable edges, so fixture
	// runs sharing a loader never leak each other's graphs.
	var edges []lockEdge
	for _, s := range summaries {
		if !requested[s.fi.Pkg.Path] {
			continue
		}
		edges = append(edges, s.edges...)
		for _, hc := range s.heldCalls {
			cm, ok := trans[hc.callee]
			if !ok {
				continue
			}
			ids := make([]string, 0, len(cm))
			for id := range cm {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, held := range hc.held {
				for _, id := range ids {
					edges = append(edges, lockEdge{from: held, to: id, pos: hc.pos})
				}
			}
		}
	}

	// Dedup edges by (from, to), keeping the earliest position.
	best := map[[2]string]lockEdge{}
	for _, e := range edges {
		k := [2]string{e.from, e.to}
		if prev, ok := best[k]; !ok || e.pos < prev.pos {
			best[k] = e
		}
	}
	adj := map[string][]string{}
	var uniq []lockEdge
	for _, e := range best {
		uniq = append(uniq, e)
		adj[e.from] = append(adj[e.from], e.to)
	}
	sort.Slice(uniq, func(i, j int) bool {
		if uniq[i].pos != uniq[j].pos {
			return uniq[i].pos < uniq[j].pos
		}
		return uniq[i].from+uniq[i].to < uniq[j].from+uniq[j].to
	})

	// Report every edge that participates in a cycle: self-edges
	// (recursive acquisition) and edges whose target can reach the source.
	for _, e := range uniq {
		if e.from == e.to {
			pass.Reportf(e.pos, "recursive acquisition of %s: sync mutexes are not reentrant, this deadlocks", e.from)
			continue
		}
		if reaches(adj, e.to, e.from) {
			pass.Reportf(e.pos, "lock-order cycle: %s acquired while holding %s, but elsewhere %s is acquired while %s is held", e.to, e.from, e.from, e.to)
		}
	}
	return nil
}

// reaches reports whether target is reachable from start in the edge map.
func reaches(adj map[string][]string, start, target string) bool {
	seen := map[string]bool{}
	stack := []string{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == target {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, adj[n]...)
	}
	return false
}

// summarizeLocks walks one function body computing its lock summary.
func summarizeLocks(fi *FuncInfo) *funcLocks {
	s := &funcLocks{fi: fi, acquires: map[string]token.Pos{}}
	for _, e := range fi.Edges {
		if e.Call {
			s.callees = append(s.callees, e.Callee)
		}
	}
	walkLockStmts(fi, fi.Decl.Body, nil, s)
	return s
}

// walkLockStmts processes statements in order, tracking the held set
// lexically. Nested blocks and control-flow bodies are walked with a copy
// of the current held set (an Unlock inside an if is not assumed on the
// fall-through path). Function literals start from an empty held set —
// they may run on another goroutine — but feed the same summary.
func walkLockStmts(fi *FuncInfo, block *ast.BlockStmt, held []string, s *funcLocks) {
	if block == nil {
		return
	}
	for _, stmt := range block.List {
		held = lockStep(fi, stmt, held, s)
	}
}

// lockStep handles one statement, returning the updated held set.
func lockStep(fi *FuncInfo, stmt ast.Stmt, held []string, s *funcLocks) []string {
	info := fi.Pkg.Info
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			fn := calleeFunc(info, call)
			switch {
			case isMutexAcquire(fn):
				id := lockIdent(info, fi, call)
				s.recordAcquire(id, call.Pos(), held)
				return append(append([]string{}, held...), id)
			case isMutexRelease(fn):
				id := lockIdent(info, fi, call)
				return removeLast(held, id)
			}
		}
	case *ast.DeferStmt:
		fn := calleeFunc(info, st.Call)
		if isMutexRelease(fn) {
			// Deferred unlock: held until return; leave the set alone.
			return held
		}
	}
	// Any other statement: scan for calls made while locks are held and
	// recurse into nested blocks with a copied held set.
	scanHeldCalls(fi, stmt, held, s)
	return held
}

// recordAcquire notes a direct acquisition and the edges it creates from
// every currently held lock.
func (s *funcLocks) recordAcquire(id string, pos token.Pos, held []string) {
	if _, ok := s.acquires[id]; !ok {
		s.acquires[id] = pos
	}
	// An already-held id produces the self-edge that reports as
	// recursive acquisition.
	for _, h := range held {
		s.edges = append(s.edges, lockEdge{from: h, to: id, pos: pos})
	}
}

// scanHeldCalls walks a statement's subtree handling nested lock
// operations, held-context call sites, and function literals.
func scanHeldCalls(fi *FuncInfo, root ast.Node, held []string, s *funcLocks) {
	info := fi.Pkg.Info
	cur := append([]string{}, held...)
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Fresh held set: the literal may run on another goroutine.
			walkLockStmts(fi, n.Body, nil, s)
			return false
		case *ast.BlockStmt:
			walkLockStmts(fi, n, cur, s)
			return false
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			switch {
			case isMutexAcquire(fn):
				id := lockIdent(info, fi, n)
				s.recordAcquire(id, n.Pos(), cur)
				cur = append(cur, id)
			case isMutexRelease(fn):
				cur = removeLast(cur, lockIdent(info, fi, n))
			case fn != nil && len(cur) > 0:
				s.heldCalls = append(s.heldCalls, heldCall{
					held: append([]string{}, cur...), callee: origin(fn), pos: n.Pos(),
				})
			}
		}
		return true
	})
}

// removeLast drops the last occurrence of id from held.
func removeLast(held []string, id string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == id {
			out := append([]string{}, held[:i]...)
			return append(out, held[i+1:]...)
		}
	}
	return held
}

// lockIdent names the lock a mu.Lock()/mu.Unlock() call operates on: the
// owning named type plus field path for field mutexes, the package path
// plus variable name for globals, a function-scoped name for locals.
func lockIdent(info *types.Info, fi *FuncInfo, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "unknown"
	}
	recv := ast.Unparen(sel.X)
	if fieldSel, ok := recv.(*ast.SelectorExpr); ok {
		if named := namedOf(info.TypeOf(fieldSel.X)); named != nil {
			return qualifiedTypeName(named) + "." + fieldSel.Sel.Name
		}
	}
	if id, ok := recv.(*ast.Ident); ok {
		if named := namedOf(info.TypeOf(id)); named != nil && !isSyncLockType(named) {
			// Promoted embed: c.Lock() on a type embedding sync.Mutex.
			return qualifiedTypeName(named) + ".(embedded)"
		}
		if obj := info.ObjectOf(id); obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + id.Name
			}
			return obj.Pkg().Path() + "." + fi.Fn.Name() + "." + id.Name
		}
	}
	return types.ExprString(recv)
}

// namedOf unwraps pointers and returns the named type underneath, if any.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// qualifiedTypeName renders pkgpath.TypeName.
func qualifiedTypeName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// isSyncLockType reports whether the named type is sync.Mutex/RWMutex
// itself (as opposed to a type embedding one).
func isSyncLockType(n *types.Named) bool {
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
