package analysis_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"didt/internal/analysis"
	"didt/internal/analysis/analysistest"
)

// testdata returns the fixture root next to this test file.
func testdata(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test file")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

func TestDeterminismFixtures(t *testing.T) {
	analysistest.Run(t, testdata(t), []string{"didt/internal/core/detfix"}, analysis.Determinism)
}

func TestTelemetryGuardFixtures(t *testing.T) {
	analysistest.Run(t, testdata(t), []string{"didt/internal/core/guardfix"}, analysis.TelemetryGuard)
}

func TestHotPathFixtures(t *testing.T) {
	analysistest.Run(t, testdata(t), []string{"didt/hotfix"}, analysis.HotPath)
}

func TestLocksFixtures(t *testing.T) {
	analysistest.Run(t, testdata(t), []string{"didt/internal/sim/lockfix"}, analysis.Locks)
}

func TestDirectivesFixtures(t *testing.T) {
	analysistest.Run(t, testdata(t), []string{"didt/dirfix"}, analysis.Directives)
}

func TestCtxFlowFixtures(t *testing.T) {
	analysistest.Run(t, testdata(t), []string{"didt/internal/sim/ctxfix"}, analysis.CtxFlow)
}

func TestGoroLeakFixtures(t *testing.T) {
	analysistest.Run(t, testdata(t), []string{"didt/gorofix"}, analysis.GoroLeak)
}

func TestLockOrderFixtures(t *testing.T) {
	analysistest.Run(t, testdata(t), []string{"didt/lockorderfix"}, analysis.LockOrder)
}

func TestPurityFixtures(t *testing.T) {
	purity := analysis.NewPurity([]analysis.PurityRoot{
		{Pkg: "didt/purefix", Name: "Run", Label: "purefix.Run"},
	})
	analysistest.Run(t, testdata(t), []string{"didt/purefix", "didt/purefix/dep"}, purity)
}

// TestDualFixtures pins the determinism/purity overlap: a line both flag
// takes two wants, or one comma-separated allow.
func TestDualFixtures(t *testing.T) {
	purity := analysis.NewPurity([]analysis.PurityRoot{
		{Pkg: "didt/internal/core/dualfix", Name: "Root", Label: "dualfix.Root"},
	})
	analysistest.Run(t, testdata(t), []string{"didt/internal/core/dualfix"}, analysis.Determinism, purity)
}

// TestStaleSuppression pins the three stale-allow outcomes: live allows
// pass, dead allows report, allows for analyzers outside the run are left
// undecided, and an acknowledged staleness is suppressible.
func TestStaleSuppression(t *testing.T) {
	analysistest.Run(t, testdata(t), []string{"didt/stalefix"}, analysis.HotPath, analysis.Directives)
}

// TestScopes pins each analyzer's package scope: the determinism contract
// covers the simulation/report packages, the locks contract the worker
// pool, and telemetryguard everything except the telemetry package's own
// internals.
func TestScopes(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		pkg      string
		want     bool
	}{
		{analysis.Determinism, "didt/internal/core", true},
		{analysis.Determinism, "didt/internal/telemetry", true},
		{analysis.Determinism, "didt/internal/sensor", false},
		{analysis.Determinism, "didt/cmd/benchreport", false},
		{analysis.TelemetryGuard, "didt/internal/telemetry", false},
		{analysis.TelemetryGuard, "didt/internal/core", true},
		{analysis.Locks, "didt/internal/sim", true},
		{analysis.Locks, "didt/internal/core", false},
		{analysis.CtxFlow, "didt/internal/sim", true},
		{analysis.CtxFlow, "didt/internal/server", true},
		{analysis.CtxFlow, "didt/internal/core", false},
		{analysis.CtxFlow, "didt/internal/pdn", false},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.pkg); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
}

// TestSelfCheck runs all nine analyzers over every package in the module
// — auto-discovered, not hardcoded, so a new package cannot silently
// escape the suite. The tree this repository ships must lint clean, with
// every exception an explicit //didt:allow. This is the in-process twin
// of the ci.sh didtlint gate.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the module from source; skipped in -short")
	}
	root := filepath.Clean(filepath.Join(testdata(t), "..", "..", ".."))
	paths, err := analysis.WalkModulePackages(root, "didt")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("package discovery looks broken: found only %v", paths)
	}
	l := analysis.NewLoader(analysis.Root{Prefix: "didt", Dir: root})
	res, err := analysis.RunSuite(l, paths, analysis.Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diags {
		t.Errorf("%s", d)
	}
}

// TestDefaultPurityRoots pins that every default purity root resolves on
// the real tree: a renamed kernel entry point must fail here, not
// silently shrink the proven region.
func TestDefaultPurityRoots(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the module from source; skipped in -short")
	}
	root := filepath.Clean(filepath.Join(testdata(t), "..", "..", ".."))
	l := analysis.NewLoader(analysis.Root{Prefix: "didt", Dir: root})
	if err := analysis.CheckDefaultPurityRoots(l); err != nil {
		t.Fatal(err)
	}
}
