package analysis_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"didt/internal/analysis"
	"didt/internal/analysis/analysistest"
)

// testdata returns the fixture root next to this test file.
func testdata(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test file")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

func TestDeterminismFixtures(t *testing.T) {
	analysistest.Run(t, testdata(t), []string{"didt/internal/core/detfix"}, analysis.Determinism)
}

func TestTelemetryGuardFixtures(t *testing.T) {
	analysistest.Run(t, testdata(t), []string{"didt/internal/core/guardfix"}, analysis.TelemetryGuard)
}

func TestHotPathFixtures(t *testing.T) {
	analysistest.Run(t, testdata(t), []string{"didt/hotfix"}, analysis.HotPath)
}

func TestLocksFixtures(t *testing.T) {
	analysistest.Run(t, testdata(t), []string{"didt/internal/sim/lockfix"}, analysis.Locks)
}

func TestDirectivesFixtures(t *testing.T) {
	analysistest.Run(t, testdata(t), []string{"didt/dirfix"}, analysis.Directives)
}

// TestScopes pins each analyzer's package scope: the determinism contract
// covers the simulation/report packages, the locks contract the worker
// pool, and telemetryguard everything except the telemetry package's own
// internals.
func TestScopes(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		pkg      string
		want     bool
	}{
		{analysis.Determinism, "didt/internal/core", true},
		{analysis.Determinism, "didt/internal/telemetry", true},
		{analysis.Determinism, "didt/internal/sensor", false},
		{analysis.Determinism, "didt/cmd/benchreport", false},
		{analysis.TelemetryGuard, "didt/internal/telemetry", false},
		{analysis.TelemetryGuard, "didt/internal/core", true},
		{analysis.Locks, "didt/internal/sim", true},
		{analysis.Locks, "didt/internal/core", false},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.pkg); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
}

// TestSelfCheck runs the full suite over the real simulation packages: the
// tree this repository ships must lint clean, with every exception an
// explicit //didt:allow. This is the in-process twin of the ci.sh
// didtlint gate.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the module from source; skipped in -short")
	}
	root := filepath.Clean(filepath.Join(testdata(t), "..", "..", ".."))
	l := analysis.NewLoader(analysis.Root{Prefix: "didt", Dir: root})
	for _, path := range []string{
		"didt/internal/core",
		"didt/internal/sim",
		"didt/internal/pdn",
		"didt/internal/sensor",
		"didt/internal/actuator",
		"didt/internal/cpu",
		"didt/internal/power",
		"didt/internal/experiments",
		"didt/internal/report",
		"didt/internal/telemetry",
	} {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := analysis.Analyze(pkg, analysis.Suite())
		if err != nil {
			t.Fatalf("analyzing %s: %v", path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s", path, d)
		}
	}
}
