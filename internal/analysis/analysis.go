// Package analysis is didt's static-analysis suite: machine-checked
// proofs of the invariants the rest of CI takes on faith. The paper solves
// its controller thresholds offline so the closed loop provably stays
// inside the ±5% band; this package plays the same role for the software —
// the determinism contract (byte-identical sweep output at any -parallel
// setting), the telemetry-guard contract (tracing can never panic or cost
// when disabled), the hot-path contract (the per-cycle kernels stay
// allocation- and lock-free), and the concurrency contracts (every
// blocking point escapes through ctx.Done, every goroutine joins, lock
// acquisition stays acyclic).
//
// The framework mirrors golang.org/x/tools/go/analysis — Analyzer, Pass,
// Diagnostic, testdata/src fixtures with `// want` expectations — but is
// built entirely on the standard library (go/ast, go/types, go/build and
// the source importer), because this repository vendors no third-party
// code. If x/tools becomes available, each Analyzer.Run is shaped so it
// can be lifted onto the real framework mechanically.
//
// Two kinds of analyzer exist. Per-package analyzers (Run) see one
// type-checked package at a time; whole-program analyzers (RunProgram) see
// every package a lint run loaded, plus a call graph, so they can prove
// transitive properties — the purity analyzer walks everything reachable
// from the simulation kernel, the lockorder analyzer chases lock
// acquisitions across package boundaries.
//
// Two source annotations steer the suite:
//
//	//didt:hotpath
//	    placed in a function's doc comment, subjects its body to the
//	    hotpath analyzer (no fmt, no defer, no mutex acquisition, no
//	    interface-converting or escaping allocations).
//
//	//didt:allow <analyzer>[,<analyzer>] -- <reason>
//	    placed on (or immediately above) an offending line, suppresses
//	    the named analyzers' diagnostics there. The reason is mandatory:
//	    every exception is an audited decision, never a blind spot. An
//	    allow that no longer suppresses anything is itself reported
//	    (stale suppression), and the per-analyzer suppression budget in
//	    didtlint.baseline.json fails CI when new allows appear
//	    unreviewed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the conventional compiler-style line.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass carries a whole-program analyzer's view of a lint run: the
// loader (so the analyzer can pull in packages beyond those requested —
// the purity roots live in internal/core whatever subtree is being
// linted), the requested package paths, and a lazily built call graph
// over everything loaded.
type ProgramPass struct {
	Analyzer *Analyzer
	Loader   *Loader
	// Paths are the package paths this run was asked to lint. Rooted
	// analyzers (purity) may report beyond them; unrooted scans
	// (lockorder) restrict their reporting to these packages.
	Paths []string

	diags *[]Diagnostic
	prog  *Program
}

// Reportf records a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Loader.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Load pulls one more package into the run (memoized by the loader).
func (p *ProgramPass) Load(path string) (*Package, error) { return p.Loader.Load(path) }

// Program returns the call graph over every package the loader has seen,
// built on first use. Analyzers that Load extra roots must do so before
// the first Program call.
func (p *ProgramPass) Program() *Program {
	if p.prog == nil {
		p.prog = buildProgram(p.Loader)
	}
	return p.prog
}

// Analyzer is one named check. Exactly one of Run (per-package) and
// RunProgram (whole-program) is set. AppliesTo, when non-nil, restricts a
// per-package analyzer to packages whose import path it accepts.
type Analyzer struct {
	Name       string
	Doc        string
	AppliesTo  func(pkgPath string) bool
	Run        func(*Pass) error
	RunProgram func(*ProgramPass) error
}

// Suite returns every analyzer in the didtlint suite, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		Determinism,
		TelemetryGuard,
		HotPath,
		Locks,
		Directives,
		CtxFlow,
		GoroLeak,
		LockOrder,
		Purity,
	}
}

// knownAnalyzers names the valid targets of a //didt:allow directive.
// (Spelled out rather than derived from Suite so the directives analyzer,
// itself a Suite member, has no initialization cycle.)
func knownAnalyzers() map[string]bool {
	return map[string]bool{
		"determinism":    true,
		"telemetryguard": true,
		"hotpath":        true,
		"locks":          true,
		"directives":     true,
		"ctxflow":        true,
		"goroleak":       true,
		"lockorder":      true,
		"purity":         true,
	}
}

// Analyze runs the given per-package analyzers over one loaded package,
// applies //didt:allow suppressions, and returns the surviving diagnostics
// sorted by position. Program analyzers in the list are skipped; use
// RunSuite for a full run including them and stale-suppression detection.
func Analyze(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	if err := analyzePackage(pkg, analyzers, &diags); err != nil {
		return nil, err
	}
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	diags = filterAllowed(diags, dirs)
	sortDiagnostics(diags)
	return diags, nil
}

// analyzePackage applies every per-package analyzer to pkg, appending raw
// (unfiltered) diagnostics.
func analyzePackage(pkg *Package, analyzers []*Analyzer, diags *[]Diagnostic) error {
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    diags,
		}
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	return nil
}

// Result is the outcome of a RunSuite call: the surviving diagnostics and
// the per-analyzer count of //didt:allow sites in the requested packages,
// the input to the suppression budget.
type Result struct {
	Diags []Diagnostic
	// AllowCounts counts well-formed //didt:allow sites per analyzer name
	// across the requested packages (a multi-name allow counts once per
	// name).
	AllowCounts map[string]int
}

// RunSuite is the full lint run didtlint and TestSelfCheck share: load the
// requested packages, apply per-package analyzers to each, run
// whole-program analyzers once, filter //didt:allow suppressions wherever
// a finding lands, and report stale suppressions — an allow in a requested
// package that silenced nothing even though its analyzer ran.
func RunSuite(l *Loader, pkgPaths []string, analyzers []*Analyzer) (*Result, error) {
	var raw []Diagnostic
	requested := make([]*Package, 0, len(pkgPaths))
	for _, path := range pkgPaths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		requested = append(requested, pkg)
		if err := analyzePackage(pkg, analyzers, &raw); err != nil {
			return nil, err
		}
	}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pass := &ProgramPass{Analyzer: a, Loader: l, Paths: pkgPaths, diags: &raw}
		if err := a.RunProgram(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	// Suppression filtering uses the directives of every loaded package,
	// so a program analyzer's finding in a dependency can still be
	// allowed at its site.
	perPkg := map[*Package]*directives{}
	var all []*directives
	for _, pkg := range l.Packages() {
		d := parseDirectives(l.Fset, pkg.Files)
		perPkg[pkg] = d
		all = append(all, d)
	}
	merged := mergeDirectives(all...)
	kept := filterAllowed(raw, merged)

	// Stale suppressions: restricted to the requested packages (an allow
	// in a dependency may serve runs that lint that package directly) and
	// to analyzers that actually ran, so fixture runs exercising one
	// analyzer do not condemn the others' allows.
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	counts := map[string]int{}
	type staleCheck struct {
		d    *directives
		site allowSite
		name string
	}
	// Sites allowing "directives" are checked after everything else: an
	// acknowledgment allow (suppressing another site's stale report) is
	// only marked used while those reports are generated, and must not be
	// condemned as stale before that happens.
	var ordered []staleCheck
	for _, pkg := range requested {
		d := perPkg[pkg]
		for _, site := range d.sites {
			for _, name := range site.analyzers {
				counts[name]++
				if !ran[name] {
					continue
				}
				ordered = append(ordered, staleCheck{d: d, site: site, name: name})
			}
		}
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].name != "directives" && ordered[j].name == "directives"
	})
	for _, sc := range ordered {
		if sc.d.used[allowKey{sc.site.file, sc.site.line, sc.name}] {
			continue
		}
		stale := Diagnostic{
			Pos:      l.Fset.Position(sc.site.pos),
			Analyzer: "directives",
			Message: fmt.Sprintf("stale //didt:allow %s: no %s diagnostic on this line any more; delete the directive",
				sc.name, sc.name),
		}
		// A stale warning is itself suppressible (allow directives --
		// reason), keeping the vocabulary closed.
		if !merged.allows("directives", stale.Pos.Filename, stale.Pos.Line) {
			kept = append(kept, stale)
		}
	}
	sortDiagnostics(kept)
	return &Result{Diags: kept, AllowCounts: counts}, nil
}

// sortDiagnostics orders by file, line, column, then message.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// filterAllowed drops diagnostics covered by a well-formed //didt:allow
// directive on the same line or the line immediately above.
func filterAllowed(diags []Diagnostic, dirs *directives) []Diagnostic {
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if dirs.allows(d.Analyzer, d.Pos.Filename, d.Pos.Line) {
			continue
		}
		out = append(out, d)
	}
	return out
}
