// Package analysis is didt's static-analysis suite: machine-checked
// proofs of the invariants the rest of CI takes on faith. The paper solves
// its controller thresholds offline so the closed loop provably stays
// inside the ±5% band; this package plays the same role for the software —
// the determinism contract (byte-identical sweep output at any -parallel
// setting), the telemetry-guard contract (tracing can never panic or cost
// when disabled), and the hot-path contract (the per-cycle kernels stay
// allocation- and lock-free) are verified before the code ever runs.
//
// The framework mirrors golang.org/x/tools/go/analysis — Analyzer, Pass,
// Diagnostic, testdata/src fixtures with `// want` expectations — but is
// built entirely on the standard library (go/ast, go/types, go/build and
// the source importer), because this repository vendors no third-party
// code. If x/tools becomes available, each Analyzer.Run is shaped so it
// can be lifted onto the real framework mechanically.
//
// Two source annotations steer the suite:
//
//	//didt:hotpath
//	    placed in a function's doc comment, subjects its body to the
//	    hotpath analyzer (no fmt, no defer, no mutex acquisition, no
//	    interface-converting allocations).
//
//	//didt:allow <analyzer> -- <reason>
//	    placed on (or immediately above) an offending line, suppresses
//	    that analyzer's diagnostics there. The reason is mandatory: every
//	    exception is an audited decision, never a blind spot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the conventional compiler-style line.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check. AppliesTo, when non-nil, restricts the
// analyzer to packages whose import path it accepts; Run inspects a single
// package and reports findings through the pass.
type Analyzer struct {
	Name      string
	Doc       string
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass) error
}

// Suite returns every analyzer in the didtlint suite, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		Determinism,
		TelemetryGuard,
		HotPath,
		Locks,
		Directives,
	}
}

// knownAnalyzers names the valid targets of a //didt:allow directive.
// (Spelled out rather than derived from Suite so the directives analyzer,
// itself a Suite member, has no initialization cycle.)
func knownAnalyzers() map[string]bool {
	return map[string]bool{
		"determinism":    true,
		"telemetryguard": true,
		"hotpath":        true,
		"locks":          true,
		"directives":     true,
	}
}

// Analyze runs the given analyzers over one loaded package, applies
// //didt:allow suppressions, and returns the surviving diagnostics sorted
// by position.
func Analyze(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	diags = filterAllowed(diags, dirs)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// filterAllowed drops diagnostics covered by a well-formed //didt:allow
// directive on the same line or the line immediately above.
func filterAllowed(diags []Diagnostic, dirs *directives) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if dirs.allows(d.Analyzer, d.Pos.Filename, d.Pos.Line) {
			continue
		}
		out = append(out, d)
	}
	return out
}
