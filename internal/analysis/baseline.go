package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Suppression budget. The committed baseline records how many
// //didt:allow directives per analyzer the tree is entitled to; CI fails
// on drift in either direction. Over budget means a new suppression
// slipped in without review; under budget means suppressions were deleted
// and the budget should be ratcheted down (didtlint -write-baseline) so
// the headroom cannot be silently reclaimed later.

// Baseline is the persisted allow budget, keyed by analyzer name.
type Baseline struct {
	AllowBudget map[string]int `json:"allow_budget"`
}

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if b.AllowBudget == nil {
		b.AllowBudget = map[string]int{}
	}
	return &b, nil
}

// Diff compares the live allow counts against the budget and returns one
// human-readable drift message per analyzer that moved, sorted by
// analyzer name. Equality is strict in both directions; an empty slice
// means the tree matches its budget exactly.
func (b *Baseline) Diff(counts map[string]int) []string {
	names := map[string]bool{}
	for n := range b.AllowBudget {
		names[n] = true
	}
	for n := range counts {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	var drift []string
	for _, n := range ordered {
		have, want := counts[n], b.AllowBudget[n]
		switch {
		case have > want:
			drift = append(drift, fmt.Sprintf("analyzer %s: %d //didt:allow directives in tree, budget is %d — remove the new suppression or re-baseline with -write-baseline after review", n, have, want))
		case have < want:
			drift = append(drift, fmt.Sprintf("analyzer %s: %d //didt:allow directives in tree, budget is %d — suppressions were removed, ratchet the budget down with -write-baseline", n, have, want))
		}
	}
	return drift
}

// WriteBaseline persists counts as the new budget. Zero-count analyzers
// are omitted so the file only lists analyzers that actually have
// suppressions. Output is key-sorted (encoding/json sorts map keys) and
// newline-terminated, so regeneration on an unchanged tree is a no-op
// diff.
func WriteBaseline(path string, counts map[string]int) error {
	budget := map[string]int{}
	for n, c := range counts {
		if c > 0 {
			budget[n] = c
		}
	}
	data, err := json.MarshalIndent(&Baseline{AllowBudget: budget}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
