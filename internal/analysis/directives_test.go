package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		rest      string
		analyzers []string
		reason    string
		ok        bool
	}{
		{"hotpath -- cold error path", []string{"hotpath"}, "cold error path", true},
		{"determinism --  padded  reason ", []string{"determinism"}, "padded  reason", true},
		{"hotpath --", nil, "", false},              // empty reason
		{"-- reason only", nil, "", false},          // missing analyzer
		{"hotpath cold error path", nil, "", false}, // missing separator
		{"", nil, "", false},                        // empty
		{"two names -- reason", nil, "", false},     // list must be one space-free token
		{"locks -- buffered -- nested", []string{"locks"}, "buffered -- nested", true},
		{"determinism,purity -- shared reason", []string{"determinism", "purity"}, "shared reason", true},
		{"a,b,c -- three", []string{"a", "b", "c"}, "three", true},
		{"determinism, purity -- space after comma", nil, "", false},
		{"determinism,,purity -- empty element", nil, "", false},
		{",determinism -- leading comma", nil, "", false},
	}
	for _, c := range cases {
		analyzers, reason, ok := parseAllow(c.rest)
		if ok != c.ok || !slicesEqual(analyzers, c.analyzers) || reason != c.reason {
			t.Errorf("parseAllow(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.rest, analyzers, reason, ok, c.analyzers, c.reason, c.ok)
		}
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMergeDirectivesUsageFanOut verifies that marking an allow used
// through a merged view reaches the per-package set it came from — the
// contract stale-suppression detection depends on.
func TestMergeDirectivesUsageFanOut(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //didt:allow hotpath -- reason
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	child := parseDirectives(fset, []*ast.File{f})
	merged := mergeDirectives(child)
	if !merged.allows("hotpath", "p.go", 4) {
		t.Fatal("merged view did not suppress")
	}
	if !child.used[allowKey{"p.go", 4, "hotpath"}] {
		t.Error("usage mark did not fan out to the child directive set")
	}
}

func TestIsHotpathComment(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		{"//didt:hotpath", true},
		{"//didt:hotpath per-cycle convolver", true},
		{"//didt:hotpathological", false},
		{"//didt:allow hotpath -- x", false},
		{"// didt:hotpath", false}, // directives are space-free like //go:
	}
	for _, c := range cases {
		if got := isHotpathComment(c.text); got != c.want {
			t.Errorf("isHotpathComment(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

// TestAllowSuppressionPlacement verifies the two legal placements (same
// line, line above) and that other lines do not suppress.
func TestAllowSuppressionPlacement(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //didt:allow hotpath -- same line
	//didt:allow locks -- line above
	_ = 2
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	d := parseDirectives(fset, []*ast.File{f})
	if !d.allows("hotpath", "p.go", 4) {
		t.Error("same-line allow did not suppress")
	}
	if !d.allows("locks", "p.go", 6) {
		t.Error("line-above allow did not suppress")
	}
	if d.allows("hotpath", "p.go", 6) {
		t.Error("allow leaked to a different analyzer's line")
	}
	if d.allows("locks", "p.go", 7) {
		t.Error("allow leaked two lines down")
	}
}
