package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		rest     string
		analyzer string
		reason   string
		ok       bool
	}{
		{"hotpath -- cold error path", "hotpath", "cold error path", true},
		{"determinism --  padded  reason ", "determinism", "padded  reason", true},
		{"hotpath --", "", "", false},              // empty reason
		{"-- reason only", "", "", false},          // missing analyzer
		{"hotpath cold error path", "", "", false}, // missing separator
		{"", "", "", false},                        // empty
		{"two names -- reason", "", "", false},     // analyzer must be one token
		{"locks -- buffered -- nested", "locks", "buffered -- nested", true},
	}
	for _, c := range cases {
		analyzer, reason, ok := parseAllow(c.rest)
		if ok != c.ok || analyzer != c.analyzer || reason != c.reason {
			t.Errorf("parseAllow(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.rest, analyzer, reason, ok, c.analyzer, c.reason, c.ok)
		}
	}
}

func TestIsHotpathComment(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		{"//didt:hotpath", true},
		{"//didt:hotpath per-cycle convolver", true},
		{"//didt:hotpathological", false},
		{"//didt:allow hotpath -- x", false},
		{"// didt:hotpath", false}, // directives are space-free like //go:
	}
	for _, c := range cases {
		if got := isHotpathComment(c.text); got != c.want {
			t.Errorf("isHotpathComment(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

// TestAllowSuppressionPlacement verifies the two legal placements (same
// line, line above) and that other lines do not suppress.
func TestAllowSuppressionPlacement(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //didt:allow hotpath -- same line
	//didt:allow locks -- line above
	_ = 2
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	d := parseDirectives(fset, []*ast.File{f})
	if !d.allows("hotpath", "p.go", 4) {
		t.Error("same-line allow did not suppress")
	}
	if !d.allows("locks", "p.go", 6) {
		t.Error("line-above allow did not suppress")
	}
	if d.allows("hotpath", "p.go", 6) {
		t.Error("allow leaked to a different analyzer's line")
	}
	if d.allows("locks", "p.go", 7) {
		t.Error("allow leaked two lines down")
	}
}
