package analysis

import (
	"go/ast"
	"go/types"
)

// ctxflowScope: the packages whose goroutines serve requests and sweeps —
// the places where an unguarded blocking operation turns a cancelled
// request into a wedged worker. internal/store sits on every request's
// cache path, so it is held to the same bar. Library and kernel packages
// stay out of scope: they run synchronously under the caller's deadline.
var ctxflowScope = []string{
	"didt/internal/sim",
	"didt/internal/server",
	"didt/internal/store",
}

// CtxFlow enforces the cancellation contract on the concurrent packages:
// every potentially blocking channel operation or Wait must either sit in
// a select with a ctx.Done() (or default) case, be a receive from
// ctx.Done() itself — blocking there IS the cancellation point — or carry
// an audited //didt:allow ctxflow reason (provably non-blocking sends on
// buffered channels, drains of closed channels). Bodies of go-launched
// function literals are exempt: whether a goroutine terminates is the
// goroleak analyzer's question; ctxflow polices the paths a caller waits
// on.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "blocking channel ops and Waits in internal/sim and internal/server " +
		"must select on ctx.Done() or carry //didt:allow ctxflow",
	AppliesTo: func(pkgPath string) bool {
		for _, p := range ctxflowScope {
			if pathWithin(pkgPath, p) {
				return true
			}
		}
		return false
	},
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		comms := selectComms(f)
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if _, isLit := ast.Unparen(n.Call.Fun).(*ast.FuncLit); isLit {
					return false // goroutine liveness is goroleak's domain
				}
			case *ast.SelectStmt:
				checkSelect(pass, n)
			case *ast.SendStmt:
				if !comms[n] {
					pass.Reportf(n.Pos(), "blocking send outside select: wrap in select with ctx.Done() so a cancelled caller is never wedged")
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" && !comms[n] && !isCtxDoneRecv(pass.Info, n.X) {
					pass.Reportf(n.Pos(), "blocking receive outside select: wrap in select with ctx.Done() so a cancelled caller is never wedged")
				}
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over channel blocks until the channel closes: drain in a select with ctx.Done() instead")
					}
				}
			case *ast.CallExpr:
				if name, ok := isSyncWait(calleeFunc(pass.Info, n)); ok {
					pass.Reportf(n.Pos(), "%s blocks with no cancellation escape: join through a closed channel inside a select with ctx.Done()", name)
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// selectComms collects the send/receive operations that are the
// communication clause of a select statement — the legal home for a
// blocking op, judged at the select level instead.
func selectComms(f *ast.File) map[ast.Node]bool {
	comms := map[ast.Node]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				comms[comm] = true
			case *ast.ExprStmt:
				if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok {
					comms[u] = true
				}
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok {
						comms[u] = true
					}
				}
			}
		}
		return true
	})
	return comms
}

// checkSelect requires every select to be non-blocking (default clause)
// or cancellable (a case receiving from a context's Done channel).
func checkSelect(pass *Pass, sel *ast.SelectStmt) {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return // default: the select cannot block
		}
		if commRecvExpr(cc.Comm) != nil && isCtxDoneRecv(pass.Info, commRecvExpr(cc.Comm).X) {
			return
		}
	}
	pass.Reportf(sel.Pos(), "select has no default and no ctx.Done() case: a cancelled caller stays blocked here")
}

// commRecvExpr extracts the receive operation from a comm clause
// statement, or nil for sends.
func commRecvExpr(comm ast.Stmt) *ast.UnaryExpr {
	switch c := comm.(type) {
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
			return u
		}
	case *ast.AssignStmt:
		for _, rhs := range c.Rhs {
			if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
				return u
			}
		}
	}
	return nil
}

// isCtxDoneRecv reports whether e is a call of Done() on a
// context.Context value — the receive that embodies cancellation.
func isCtxDoneRecv(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	pkg, typ, name, ok := methodInfo(calleeFunc(info, call))
	return ok && pkg == "context" && typ == "Context" && name == "Done"
}

// isSyncWait matches the Waits with no built-in cancellation:
// sync.WaitGroup.Wait and sync.Cond.Wait.
func isSyncWait(fn *types.Func) (string, bool) {
	pkg, typ, name, ok := methodInfo(fn)
	if !ok || pkg != "sync" || name != "Wait" {
		return "", false
	}
	if typ == "WaitGroup" || typ == "Cond" {
		return "sync." + typ + ".Wait", true
	}
	return "", false
}
