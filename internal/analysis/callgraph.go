package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the static call graph whole-program analyzers walk.
// The graph is deliberately simple and deliberately conservative in one
// direction only: an edge exists for every *statically resolvable* callee
// — direct calls, method calls on concrete receivers, and function values
// referenced (passed, stored, returned), since a referenced function may
// be called by whoever receives it. Dynamic dispatch through interface
// methods is a dead end (the callee has no body here), which
// under-approximates reachability; the purity analyzer compensates by
// also rooting at the experiment registry, whose runners reach the graph
// through value-reference edges. Function literals are attributed to
// their enclosing declared function, so a goroutine body's calls count as
// the launcher's. Package-scope `var f = func() {...}` initializers have
// no enclosing FuncDecl and are invisible — a known limitation; none of
// the audited invariants route through one.

// CallEdge is one outgoing reference from a function body.
type CallEdge struct {
	Callee *types.Func
	Pos    token.Pos
	// Call is true for a call expression, false for a bare function-value
	// reference (the callee may run wherever the value flows).
	Call bool
}

// FuncInfo is one declared function in a loaded package, with its
// outgoing edges.
type FuncInfo struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Edges []CallEdge
}

// Program is the call graph over every package a loader has pulled in.
type Program struct {
	Loader *Loader
	Funcs  map[*types.Func]*FuncInfo
}

// buildProgram constructs the graph from the loader's current package set.
func buildProgram(l *Loader) *Program {
	prog := &Program{Loader: l, Funcs: map[*types.Func]*FuncInfo{}}
	for _, pkg := range l.Packages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				info := &FuncInfo{Fn: fn, Decl: fd, Pkg: pkg}
				info.Edges = collectEdges(pkg.Info, fd.Body)
				prog.Funcs[fn] = info
			}
		}
	}
	return prog
}

// collectEdges walks a function body recording every statically resolved
// function reference, distinguishing calls from value references.
// Nested function literals are included: their calls belong to the
// enclosing declaration.
func collectEdges(info *types.Info, body *ast.BlockStmt) []CallEdge {
	// First mark the identifiers that are the Fun operand of a call, so
	// the reference walk can label them Call=true and everything else
	// (arguments, assignments, returns) Call=false.
	callIdents := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callIdents[fun] = true
		case *ast.SelectorExpr:
			callIdents[fun.Sel] = true
		}
		return true
	})
	var edges []CallEdge
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		edges = append(edges, CallEdge{Callee: origin(fn), Pos: id.Pos(), Call: callIdents[id]})
		return true
	})
	return edges
}

// Lookup resolves a function by package path and name; recv selects a
// method on the named type ("" for package-level functions). Returns nil
// if anything along the way is missing — callers decide whether that is
// an error (real-tree roots) or expected (fixture trees without the
// package).
func (p *Program) Lookup(pkgPath, recv, name string) *types.Func {
	pkg, ok := p.Loader.pkgs[pkgPath]
	if !ok {
		return nil
	}
	scope := pkg.Types.Scope()
	if recv == "" {
		fn, _ := scope.Lookup(name).(*types.Func)
		return fn
	}
	tn, ok := scope.Lookup(recv).(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// Reachable walks the graph breadth-first from roots, following both call
// and reference edges, and returns every reached function that has a body
// in the loaded packages, in deterministic (FullName) order.
func (p *Program) Reachable(roots []*types.Func) []*FuncInfo {
	seen := map[*types.Func]bool{}
	var queue []*types.Func
	push := func(fn *types.Func) {
		if fn == nil {
			return
		}
		fn = origin(fn)
		if !seen[fn] {
			seen[fn] = true
			queue = append(queue, fn)
		}
	}
	for _, r := range roots {
		push(r)
	}
	var out []*FuncInfo
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fi, ok := p.Funcs[fn]
		if !ok {
			continue // no body here: stdlib, interface method, or external
		}
		out = append(out, fi)
		for _, e := range fi.Edges {
			push(e.Callee)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Fn.FullName() < out[j].Fn.FullName()
	})
	return out
}

// origin maps a generic instantiation back to its declared function, the
// identity the Funcs map is keyed by.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}
