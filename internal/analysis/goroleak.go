package analysis

import (
	"go/ast"
	"go/types"
)

// GoroLeak requires every `go` statement to carry visible evidence that
// someone can observe the goroutine finishing: a WaitGroup.Done, a send
// on (or close of) a channel, a drain of one, or a select on ctx.Done()
// inside the launched body. A goroutine with none of those is
// unjoinable — the server can never drain it, tests can never wait for
// it, and under -race its writes surface as mystery reports long after
// the test that launched it.
//
// The evidence must be lexically inside the launched function literal, so
// launching a named function is flagged even if that function signals —
// the join protocol belongs at the launch site, where the reader (and
// this analyzer) can see both halves. Wrap the call:
//
//	go func() { defer wg.Done(); work() }()
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement needs a reachable join/cancel: WaitGroup.Done, " +
		"channel send/close, or ctx.Done select in the launched body",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				pass.Reportf(g.Pos(), "go with a named function hides the join protocol: wrap in a func literal that signals completion (wg.Done, channel send/close) at the launch site")
				return true
			}
			if !signalsCompletion(pass.Info, lit.Body) {
				pass.Reportf(g.Pos(), "goroutine has no observable join or cancel: add wg.Done, a channel send/close, or a ctx.Done select so it can be waited for")
			}
			return true
		})
	}
	return nil
}

// signalsCompletion reports whether a goroutine body contains any
// mechanism an outsider can observe: WaitGroup.Done, a channel send,
// close(), a channel receive/range (the goroutine is consuming a work or
// signal channel someone else closes), or a ctx.Done select.
func signalsCompletion(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if b, _ := info.Uses[id].(*types.Builtin); b != nil {
					found = true
				}
			}
			if pkg, typ, name, ok := methodInfo(calleeFunc(info, n)); ok &&
				pkg == "sync" && typ == "WaitGroup" && name == "Done" {
				found = true
			}
		}
		return true
	})
	return found
}
