// Package analysistest runs didt analyzers over fixture packages and
// checks their diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// Fixtures live under <testdata>/src/<import/path>/ and may import each
// other and the standard library. Expectations are comments of the form
//
//	x := f() // want `regexp` `another regexp`
//
// attached to the line a diagnostic is expected on; every diagnostic must
// match an expectation on its line and every expectation must be matched
// by at least one diagnostic, so deleting either a finding or a guard
// fails the test. A want clause may be embedded at the end of another
// comment (including a //didt: directive), which is how fixtures annotate
// the directives themselves.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"didt/internal/analysis"
)

// loaders caches one loader per testdata root: fixture packages and the
// type-checked standard library are shared across tests in a run.
var (
	loadersMu sync.Mutex
	loaders   = map[string]*analysis.Loader{}
)

func loaderFor(testdata string) *analysis.Loader {
	loadersMu.Lock()
	defer loadersMu.Unlock()
	l, ok := loaders[testdata]
	if !ok {
		l = analysis.NewLoader(analysis.Root{Prefix: "", Dir: filepath.Join(testdata, "src")})
		loaders[testdata] = l
	}
	return l
}

// expectation is one want pattern with match bookkeeping.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// parseWants extracts expectations from every comment in the package.
func parseWants(pkg *analysis.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %w", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return wants, nil
}

// splitPatterns tokenizes a want clause: a sequence of back-quoted or
// double-quoted regular expressions.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '`' && quote != '"' {
			return nil, fmt.Errorf("want patterns must be quoted with ` or \": %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern: %q", s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[2+end:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want clause")
	}
	return out, nil
}

// Run loads the fixture packages, applies the analyzers through the same
// RunSuite path didtlint uses (per-package and whole-program analyzers,
// //didt:allow suppression, stale-suppression detection), and reports
// mismatches between diagnostics and want expectations. All listed
// packages form one run, so a whole-program analyzer sees them together
// and a diagnostic may land in any of them; a diagnostic in an unlisted
// package is always an error.
func Run(t *testing.T, testdata string, pkgPaths []string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	l := loaderFor(testdata)
	res, err := analysis.RunSuite(l, pkgPaths, analyzers)
	if err != nil {
		t.Fatalf("analyzing fixtures %v: %v", pkgPaths, err)
	}
	var wants []*expectation
	for _, path := range pkgPaths {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		ws, err := parseWants(pkg)
		if err != nil {
			t.Fatalf("fixture %s: %v", path, err)
		}
		wants = append(wants, ws...)
	}
	for _, d := range res.Diags {
		rendered := d.Analyzer + ": " + d.Message
		ok := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(rendered) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
