package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"didt/internal/analysis"
)

func TestSplitPatterns(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		want  []string
		errIs string // substring of the expected error; "" means success
	}{
		{name: "single backquoted", in: "`foo.*bar`", want: []string{"foo.*bar"}},
		{name: "single double-quoted", in: `"foo bar"`, want: []string{"foo bar"}},
		{name: "multiple backquoted", in: "`first` `second` `third`", want: []string{"first", "second", "third"}},
		{name: "mixed quoting", in: "`back` \"double\"", want: []string{"back", "double"}},
		{name: "surrounding space", in: "   `padded`   ", want: []string{"padded"}},
		{name: "regexp metacharacters survive", in: "`time\\.Now.*\\[in .*\\]`", want: []string{"time\\.Now.*\\[in .*\\]"}},
		{name: "double quote inside backquotes", in: "`say \"hi\"`", want: []string{`say "hi"`}},
		{name: "empty pattern is legal", in: "``", want: []string{""}},
		{name: "empty clause", in: "", errIs: "empty want clause"},
		{name: "only whitespace", in: "   ", errIs: "empty want clause"},
		{name: "unquoted", in: "foo", errIs: "must be quoted"},
		{name: "unterminated backquote", in: "`never closed", errIs: "unterminated"},
		{name: "unterminated after valid", in: "`ok` `broken", errIs: "unterminated"},
		{name: "junk between patterns", in: "`ok` and `more`", errIs: "must be quoted"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := splitPatterns(tc.in)
			if tc.errIs != "" {
				if err == nil {
					t.Fatalf("splitPatterns(%q) = %v, want error containing %q", tc.in, got, tc.errIs)
				}
				if !strings.Contains(err.Error(), tc.errIs) {
					t.Fatalf("splitPatterns(%q) error = %v, want containing %q", tc.in, err, tc.errIs)
				}
				return
			}
			if err != nil {
				t.Fatalf("splitPatterns(%q): %v", tc.in, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("splitPatterns(%q) = %v, want %v", tc.in, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("splitPatterns(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
				}
			}
		})
	}
}

// parsePkg builds the minimal analysis.Package parseWants needs (Fset and
// Files) from inline source, so the want parser is testable without a
// full fixture tree on disk.
func parsePkg(t *testing.T, src string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture source: %v", err)
	}
	return &analysis.Package{Path: "fixture", Fset: fset, Files: []*ast.File{f}}
}

func TestParseWants(t *testing.T) {
	pkg := parsePkg(t, `package fixture

import "time"

func a() {
	_ = time.Now() // want `+"`determinism: time\\.Now`"+`
}

func b() {
	// Two patterns on one line: the line must produce two diagnostics.
	_ = time.Now() // want `+"`first` `second`"+`
}

// An expectation embedded after a directive comment, the form the
// directive fixtures use:
func c() {
	_ = time.Now() //didt:allow determinism -- reason // want `+"`stale`"+`
}

func d() {
	_ = 1 // plain comment, no expectation
}
`)
	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) != 4 {
		for _, w := range wants {
			t.Logf("want at line %d: %q", w.line, w.raw)
		}
		t.Fatalf("parseWants found %d expectations, want 4", len(wants))
	}
	byRaw := map[string]int{}
	for _, w := range wants {
		byRaw[w.raw] = w.line
		if w.file != "fixture.go" {
			t.Errorf("want %q attributed to file %q", w.raw, w.file)
		}
	}
	if byRaw[`determinism: time\.Now`] != 6 {
		t.Errorf("first want on line %d, want 6", byRaw[`determinism: time\.Now`])
	}
	if byRaw["first"] != byRaw["second"] || byRaw["first"] != 11 {
		t.Errorf("paired wants on lines %d/%d, want both on 11", byRaw["first"], byRaw["second"])
	}
	if byRaw["stale"] != 17 {
		t.Errorf("directive-embedded want on line %d, want 17", byRaw["stale"])
	}
	if !wants[0].re.MatchString("determinism: time.Now: wall-clock state must not influence sweep output") {
		t.Error("compiled pattern does not match a representative diagnostic")
	}
}

func TestParseWantsRejectsMalformed(t *testing.T) {
	for _, tc := range []struct{ name, src, errIs string }{
		{
			name:  "unquoted pattern",
			src:   "package fixture\n\nvar x = 1 // want naked\n",
			errIs: "must be quoted",
		},
		{
			name:  "bad regexp",
			src:   "package fixture\n\nvar x = 1 // want `(`\n",
			errIs: "bad want pattern",
		},
		{
			name:  "unterminated",
			src:   "package fixture\n\nvar x = 1 // want `open\n",
			errIs: "unterminated",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseWants(parsePkg(t, tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.errIs) {
				t.Fatalf("parseWants error = %v, want containing %q", err, tc.errIs)
			}
			// Malformed wants report the offending file:line.
			if !strings.Contains(err.Error(), "fixture.go:3") {
				t.Errorf("error %v does not cite fixture.go:3", err)
			}
		})
	}
}
