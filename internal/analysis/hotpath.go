package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotPath proves the per-cycle cost contract: a function annotated
// //didt:hotpath (the PDN convolver step, the sensor sample, the actuator
// response — code executed once per simulated cycle, hundreds of millions
// of times per sweep) must not format strings, defer, acquire mutexes, or
// allocate. The allocation half is conservative escape reasoning rather
// than a real escape analysis: interface boxing, address-taken and
// reference-typed composite literals, variable-capturing closures, and
// append are each flagged as the line-level explanation behind a failed
// 0-allocs -benchmem gate. A site the compiler provably keeps on the
// stack earns a //didt:allow hotpath with that proof as its reason.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "forbid fmt calls, defer, mutex acquisition, interface boxing, " +
		"escaping literals, capturing closures and append in functions " +
		"annotated //didt:hotpath",
	Run: runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fn := range hotpathFuncs([]*ast.File{f}) {
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot-path function %s: the deferred frame costs on every per-cycle call", name)
		case *ast.CallExpr:
			callee := calleeFunc(pass.Info, n)
			if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(), "fmt.%s in hot-path function %s: formatting allocates on every per-cycle call", callee.Name(), name)
			}
			if isMutexAcquire(callee) {
				pass.Reportf(n.Pos(), "mutex acquisition in hot-path function %s: per-cycle code must be lock-free", name)
			}
			checkHotAppend(pass, n, name)
			checkCallIfaceArgs(pass, n, name)
		case *ast.AssignStmt:
			checkAssignIface(pass, n, name)
		case *ast.ReturnStmt:
			checkReturnIface(pass, fn, n, name)
		case *ast.ValueSpec:
			checkValueSpecIface(pass, n, name)
		case *ast.UnaryExpr:
			checkAddrOfLiteral(pass, n, name)
		case *ast.CompositeLit:
			checkRefLiteral(pass, n, name)
		case *ast.FuncLit:
			checkClosureCapture(pass, n, name)
		}
		return true
	})
}

// checkHotAppend flags append in hot-path functions: whether it grows
// depends on runtime capacity, which no annotation can prove, so the
// per-cycle kernels write into preallocated buffers by index instead.
func checkHotAppend(pass *Pass, call *ast.CallExpr, fnName string) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if b, _ := pass.Info.Uses[id].(*types.Builtin); b == nil {
		return
	}
	pass.Reportf(call.Pos(), "append in hot-path function %s may grow the backing array mid-sweep: index into a preallocated buffer instead", fnName)
}

// checkAddrOfLiteral flags &T{...}: taking a composite literal's address
// forces it to the heap unless the compiler can prove otherwise.
func checkAddrOfLiteral(pass *Pass, u *ast.UnaryExpr, fnName string) {
	if u.Op != token.AND {
		return
	}
	if _, ok := ast.Unparen(u.X).(*ast.CompositeLit); ok {
		pass.Reportf(u.Pos(), "address-of composite literal in hot-path function %s escapes to the heap on every per-cycle call", fnName)
	}
}

// checkRefLiteral flags slice and map literals, which allocate their
// backing store; struct and array values stay on the stack and pass.
func checkRefLiteral(pass *Pass, lit *ast.CompositeLit, fnName string) {
	t := pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal in hot-path function %s allocates its backing array on every per-cycle call", fnName)
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal in hot-path function %s allocates on every per-cycle call", fnName)
	}
}

// checkClosureCapture flags function literals that capture variables from
// the enclosing scope: the captured environment allocates (and defeats
// inlining) each time the literal is evaluated. Capture-free literals
// compile to static functions and pass.
func checkClosureCapture(pass *Pass, lit *ast.FuncLit, fnName string) {
	captured := capturedVars(pass.Info, lit)
	if len(captured) == 0 {
		return
	}
	pass.Reportf(lit.Pos(), "closure capturing %s in hot-path function %s allocates its environment on every per-cycle call", strings.Join(captured, ", "), fnName)
}

// capturedVars lists the variables a function literal references but does
// not declare — free variables excluding package-level objects, which
// cost nothing to reference.
func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	declared := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				declared[obj] = true
			}
		}
		return true
	})
	seen := map[types.Object]bool{}
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || declared[v] || seen[v] {
			return true
		}
		// Package-level variables are not captured; they live statically.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		// A variable declared lexically inside the literal is not free.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		seen[v] = true
		out = append(out, v.Name())
		return true
	})
	sort.Strings(out)
	return out
}

// isIfaceType reports whether t is an interface (but not a type
// parameter's constraint interface).
func isIfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isParam := t.(*types.TypeParam); isParam {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// convertsToIface reports whether assigning expr to target converts a
// concrete value to an interface — the boxing allocation hot paths ban.
func convertsToIface(info *types.Info, target types.Type, expr ast.Expr) bool {
	if !isIfaceType(target) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	return !isIfaceType(tv.Type)
}

func reportIfaceConv(pass *Pass, pos ast.Node, fnName string, target types.Type) {
	pass.Reportf(pos.Pos(), "interface-converting allocation in hot-path function %s: concrete value boxed into %s on every per-cycle call", fnName, target.String())
}

// checkCallIfaceArgs flags concrete arguments passed to interface
// parameters, and explicit conversions to interface types.
func checkCallIfaceArgs(pass *Pass, call *ast.CallExpr, fnName string) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// Explicit conversion T(x).
		if len(call.Args) == 1 && convertsToIface(pass.Info, tv.Type, call.Args[0]) {
			reportIfaceConv(pass, call, fnName, tv.Type)
		}
		return
	}
	ftv, ok := pass.Info.Types[call.Fun]
	if !ok || ftv.Type == nil {
		return
	}
	sig, ok := ftv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing here
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if convertsToIface(pass.Info, pt, arg) {
			reportIfaceConv(pass, arg, fnName, pt)
		}
	}
}

// checkAssignIface flags `ifaceVar = concrete` assignments (not short
// declarations, which infer the concrete type).
func checkAssignIface(pass *Pass, as *ast.AssignStmt, fnName string) {
	if as.Tok.String() != "=" || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := pass.Info.TypeOf(lhs)
		if convertsToIface(pass.Info, lt, as.Rhs[i]) {
			reportIfaceConv(pass, as.Rhs[i], fnName, lt)
		}
	}
}

// checkReturnIface flags returning concrete values as interface results.
func checkReturnIface(pass *Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt, fnName string) {
	obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if len(ret.Results) != results.Len() {
		return
	}
	for i, r := range ret.Results {
		rt := results.At(i).Type()
		if convertsToIface(pass.Info, rt, r) {
			reportIfaceConv(pass, r, fnName, rt)
		}
	}
}

// checkValueSpecIface flags `var x IfaceType = concrete` declarations.
func checkValueSpecIface(pass *Pass, vs *ast.ValueSpec, fnName string) {
	if vs.Type == nil {
		return
	}
	t := pass.Info.TypeOf(vs.Type)
	for _, v := range vs.Values {
		if convertsToIface(pass.Info, t, v) {
			reportIfaceConv(pass, v, fnName, t)
		}
	}
}
