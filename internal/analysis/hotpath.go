package analysis

import (
	"go/ast"
	"go/types"
)

// HotPath proves the per-cycle cost contract: a function annotated
// //didt:hotpath (the PDN convolver step, the sensor sample, the actuator
// response — code executed once per simulated cycle, hundreds of millions
// of times per sweep) must not format strings, defer, acquire mutexes, or
// allocate by converting concrete values to interfaces.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "forbid fmt calls, defer, mutex acquisition and interface-" +
		"converting allocations in functions annotated //didt:hotpath",
	Run: runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fn := range hotpathFuncs([]*ast.File{f}) {
			checkHotFunc(pass, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot-path function %s: the deferred frame costs on every per-cycle call", name)
		case *ast.CallExpr:
			callee := calleeFunc(pass.Info, n)
			if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(), "fmt.%s in hot-path function %s: formatting allocates on every per-cycle call", callee.Name(), name)
			}
			if isMutexAcquire(callee) {
				pass.Reportf(n.Pos(), "mutex acquisition in hot-path function %s: per-cycle code must be lock-free", name)
			}
			checkCallIfaceArgs(pass, n, name)
		case *ast.AssignStmt:
			checkAssignIface(pass, n, name)
		case *ast.ReturnStmt:
			checkReturnIface(pass, fn, n, name)
		case *ast.ValueSpec:
			checkValueSpecIface(pass, n, name)
		}
		return true
	})
}

// isIfaceType reports whether t is an interface (but not a type
// parameter's constraint interface).
func isIfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isParam := t.(*types.TypeParam); isParam {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// convertsToIface reports whether assigning expr to target converts a
// concrete value to an interface — the boxing allocation hot paths ban.
func convertsToIface(info *types.Info, target types.Type, expr ast.Expr) bool {
	if !isIfaceType(target) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	return !isIfaceType(tv.Type)
}

func reportIfaceConv(pass *Pass, pos ast.Node, fnName string, target types.Type) {
	pass.Reportf(pos.Pos(), "interface-converting allocation in hot-path function %s: concrete value boxed into %s on every per-cycle call", fnName, target.String())
}

// checkCallIfaceArgs flags concrete arguments passed to interface
// parameters, and explicit conversions to interface types.
func checkCallIfaceArgs(pass *Pass, call *ast.CallExpr, fnName string) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// Explicit conversion T(x).
		if len(call.Args) == 1 && convertsToIface(pass.Info, tv.Type, call.Args[0]) {
			reportIfaceConv(pass, call, fnName, tv.Type)
		}
		return
	}
	ftv, ok := pass.Info.Types[call.Fun]
	if !ok || ftv.Type == nil {
		return
	}
	sig, ok := ftv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing here
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if convertsToIface(pass.Info, pt, arg) {
			reportIfaceConv(pass, arg, fnName, pt)
		}
	}
}

// checkAssignIface flags `ifaceVar = concrete` assignments (not short
// declarations, which infer the concrete type).
func checkAssignIface(pass *Pass, as *ast.AssignStmt, fnName string) {
	if as.Tok.String() != "=" || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := pass.Info.TypeOf(lhs)
		if convertsToIface(pass.Info, lt, as.Rhs[i]) {
			reportIfaceConv(pass, as.Rhs[i], fnName, lt)
		}
	}
}

// checkReturnIface flags returning concrete values as interface results.
func checkReturnIface(pass *Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt, fnName string) {
	obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if len(ret.Results) != results.Len() {
		return
	}
	for i, r := range ret.Results {
		rt := results.At(i).Type()
		if convertsToIface(pass.Info, rt, r) {
			reportIfaceConv(pass, r, fnName, rt)
		}
	}
}

// checkValueSpecIface flags `var x IfaceType = concrete` declarations.
func checkValueSpecIface(pass *Pass, vs *ast.ValueSpec, fnName string) {
	if vs.Type == nil {
		return
	}
	t := pass.Info.TypeOf(vs.Type)
	for _, v := range vs.Values {
		if convertsToIface(pass.Info, t, v) {
			reportIfaceConv(pass, v, fnName, t)
		}
	}
}
