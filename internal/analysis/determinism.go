package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// determinismScope lists the packages whose output feeds the byte-identical
// sweep contract. internal/sensor is deliberately absent: it is the
// exemplar of the allowed pattern (an explicitly seeded rand.New stream).
var determinismScope = []string{
	"didt/internal/core",
	"didt/internal/sim",
	"didt/internal/pdn",
	"didt/internal/experiments",
	"didt/internal/report",
	"didt/internal/spec",
	"didt/internal/telemetry",
}

// Determinism proves the sweep-output determinism contract (PR 1): no wall
// clock, no global randomness, and no map-iteration order leaking into
// serialized output inside the simulation and reporting packages.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/Since, global math/rand, and map-ordered output " +
		"in the simulation/report packages",
	AppliesTo: func(pkgPath string) bool {
		for _, p := range determinismScope {
			if pathWithin(pkgPath, p) {
				return true
			}
		}
		return false
	},
	Run: runDeterminism,
}

// seededConstructors are the math/rand entry points that build explicitly
// seeded streams — the allowed idiom (see internal/sensor).
var seededConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		checkDeterminismIn(pass.Info, pass.Reportf, f)
	}
	return nil
}

// reporter abstracts Pass.Reportf / ProgramPass.Reportf so the
// determinism checks run identically per-package (determinism) and over
// call-graph-reachable functions (purity), which decorates the reports.
type reporter = func(pos token.Pos, format string, args ...interface{})

// checkDeterminismIn applies the wall-clock/rand and map-ordered-output
// checks to every node under root (a file for the determinism analyzer, a
// single function declaration for purity).
func checkDeterminismIn(info *types.Info, report reporter, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkWallClockAndRand(info, report, n)
		case *ast.RangeStmt:
			checkMapRangeOutput(info, report, n, enclosingFuncBody(root, n))
		}
		return true
	})
}

func checkWallClockAndRand(info *types.Info, report reporter, call *ast.CallExpr) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	if isPkgFunc(fn, "time", "Now") || isPkgFunc(fn, "time", "Since") {
		report(call.Pos(), "time.%s: wall-clock state must not influence sweep output", fn.Name())
		return
	}
	for _, randPkg := range []string{"math/rand", "math/rand/v2"} {
		if fn.Pkg() != nil && fn.Pkg().Path() == randPkg {
			sig, ok := fn.Type().(*types.Signature)
			if ok && sig.Recv() == nil && !seededConstructors[fn.Name()] {
				report(call.Pos(), "global %s.%s uses the shared unseeded stream; use rand.New(rand.NewSource(seed)) as internal/sensor does", randPkg, fn.Name())
			}
		}
	}
}

// enclosingFuncBody returns the body of the innermost function containing
// n (searching under root), for the sorted-afterwards exemption.
func enclosingFuncBody(root ast.Node, n ast.Node) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(root, func(c ast.Node) bool {
		if c == nil || c.Pos() > n.Pos() || c.End() < n.End() {
			return false
		}
		switch c := c.(type) {
		case *ast.FuncDecl:
			if c.Body != nil {
				body = c.Body
			}
		case *ast.FuncLit:
			body = c.Body
		}
		return true
	})
	return body
}

// checkMapRangeOutput flags `range m` over a map whose body writes to an
// io.Writer, appends to a slice declared outside the loop (unless the
// slice is sorted afterwards — the collect-then-sort idiom), or emits a
// telemetry event: all places where map iteration order would leak into
// serialized output.
func checkMapRangeOutput(info *types.Info, report reporter, rng *ast.RangeStmt, funcBody *ast.BlockStmt) {
	t := info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		switch {
		case isFprint(fn):
			report(call.Pos(), "fmt.%s inside range over map: iteration order leaks into the writer; iterate sorted keys instead", fn.Name())
		case isWriterMethod(info, call, fn):
			report(call.Pos(), "%s on an io.Writer inside range over map: iteration order leaks into serialized output; iterate sorted keys instead", fn.Name())
		case isTelemetryEmit(fn):
			report(call.Pos(), "telemetry %s inside range over map: event order would depend on map iteration; iterate sorted keys instead", fn.Name())
		default:
			checkOutsideAppend(info, report, rng, funcBody, call)
		}
		return true
	})
}

func isFprint(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// isWriterMethod reports whether call invokes a write-like method on a
// value that satisfies (or is declared as) io.Writer, or an encoding/json
// Encoder.
func isWriterMethod(info *types.Info, call *ast.CallExpr, fn *types.Func) bool {
	pkg, typ, name, ok := methodInfo(fn)
	if !ok {
		return false
	}
	if pkg == "encoding/json" && typ == "Encoder" && name == "Encode" {
		return true
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := info.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	if iface, isIface := recv.Underlying().(*types.Interface); isIface {
		return types.Implements(iface, ioWriterIface) || types.Identical(iface, ioWriterIface)
	}
	return implementsWriter(recv)
}

// isTelemetryEmit matches the telemetry package's event- and
// metric-emitting methods.
func isTelemetryEmit(fn *types.Func) bool {
	pkg, _, name, ok := methodInfo(fn)
	if !ok || pkg != telemetryPath {
		return false
	}
	switch name {
	case "Emit", "Add", "Inc", "Set", "Observe":
		return true
	}
	return false
}

// checkOutsideAppend flags append() growing a slice declared outside the
// range statement, unless that slice is later passed to a sort or slices
// call in the same function (the canonical collect-keys-then-sort fix).
func checkOutsideAppend(info *types.Info, report reporter, rng *ast.RangeStmt, funcBody *ast.BlockStmt, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if b, _ := info.Uses[id].(*types.Builtin); b == nil {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	obj := baseObject(info, call.Args[0])
	if obj == nil {
		return
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
		return // loop-local accumulation; order cannot escape
	}
	if sortedAfter(info, funcBody, rng, obj) {
		return
	}
	report(call.Pos(), "append to %s inside range over map: element order depends on map iteration; collect then sort, or iterate sorted keys", obj.Name())
}

// baseObject resolves the root identifier of an expression like x or
// s.field to its object.
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether obj is passed to a sort.* or slices.* call
// after the range statement within the same function body.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	if funcBody == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if baseObject(info, arg) == obj {
				found = true
			}
		}
		return true
	})
	return found
}
