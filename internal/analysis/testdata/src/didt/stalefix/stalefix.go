// Package stalefix exercises stale-suppression detection: a //didt:allow
// that no longer silences anything is itself a diagnostic — unless its
// analyzer did not run, or the staleness has been explicitly acknowledged.
package stalefix

import "fmt"

//didt:hotpath
func hot(v int) string {
	return fmt.Sprint(v) //didt:allow hotpath -- fixture: live suppression, keeps this allow non-stale
}

func cold(v int) string {
	return fmt.Sprint(v) //didt:allow hotpath -- fixture: obsolete, nothing fires here // want `stale //didt:allow hotpath`
}

// notRun names an analyzer absent from this run: staleness is
// undecidable, so nothing is reported.
func notRun(v int) string {
	return fmt.Sprint(v) //didt:allow ctxflow -- fixture: analyzer not in this run, never reported stale
}

// acknowledged shows the closed loop: the stale report is itself
// suppressible through the directives analyzer name.
func acknowledged(v int) string {
	//didt:allow directives -- fixture: staleness acknowledged pending cleanup
	return fmt.Sprint(v) //didt:allow hotpath -- fixture: stale but acknowledged above
}
