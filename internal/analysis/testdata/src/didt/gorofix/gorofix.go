// Package gorofix exercises the goroleak analyzer: every go statement
// must launch a body with an observable join or cancel signal.
package gorofix

import (
	"context"
	"sync"
)

func work() {}

func namedLaunch() {
	go work() // want `go with a named function hides the join protocol`
}

func silentLaunch() {
	go func() { // want `goroutine has no observable join or cancel`
		work()
	}()
}

func joinedByWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

func joinedByChannel() chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	return done
}

func joinedBySend(results chan int) {
	go func() {
		results <- 1
	}()
}

// consumer goroutines end when their input channel closes: the close is
// the cancel signal, observed by the range.
func consumer(jobs chan int) {
	go func() {
		for range jobs {
			work()
		}
	}()
}

// cancellable goroutines end when the context does.
func cancellable(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func allowedFireAndForget() {
	go work() //didt:allow goroleak -- fixture: process-lifetime helper, exits with the program
}
