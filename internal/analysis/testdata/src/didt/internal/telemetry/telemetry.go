// Package telemetry is a fixture stand-in for didt/internal/telemetry: it
// mirrors the emit-method surface the analyzers match on (the import path
// and method names are what matter, not the behavior).
package telemetry

// Kind classifies a trace event.
type Kind uint8

// KindVoltage mirrors the real package's periodic voltage sample kind.
const KindVoltage Kind = 5

// Tracer is the stand-in tracer.
type Tracer struct{ on bool }

// Enabled reports whether emission is on.
func (t *Tracer) Enabled() bool { return t != nil && t.on }

// Stream opens a named stream.
func (t *Tracer) Stream(name string) *Stream { return &Stream{} }

// Attr is the stand-in span attribute.
type Attr struct{ Key, Value string }

// AttrStr builds a string attribute.
func AttrStr(k, v string) Attr { return Attr{k, v} }

// Start opens a request span (stand-in: the real method threads a
// context.Context; the analyzer only matches receiver type and name).
func (t *Tracer) Start(name string, attrs ...Attr) *Span { return &Span{} }

// Span is the stand-in request span.
type Span struct{ on bool }

// Enabled reports whether the span is live and its tracer emitting.
func (s *Span) Enabled() bool { return s != nil && s.on }

// End closes the span.
func (s *Span) End() {}

// SetAttr adds an attribute (not part of the guarded surface).
func (s *Span) SetAttr(k, v string) {}

// Stream is the stand-in event stream.
type Stream struct{ on bool }

// Enabled reports whether the owning tracer is emitting.
func (s *Stream) Enabled() bool { return s != nil && s.on }

// Emit appends an event.
func (s *Stream) Emit(cycle uint64, k Kind, arg int32, value float64) {}

// Counter is the stand-in counter metric.
type Counter struct{ v int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v += n }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Gauge is the stand-in gauge metric.
type Gauge struct{ v float64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v = v }

// Histogram is the stand-in histogram metric.
type Histogram struct{ n uint64 }

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.n++ }
