// Package dualfix exercises the overlap between the per-package
// determinism analyzer and the interprocedural purity analyzer: a line
// both object to needs either two wants or one comma-separated allow.
package dualfix

import "time"

// Root is the fixture's purity root; the package path also sits inside
// the determinism scope (didt/internal/core/...).
func Root() int64 {
	return impure() + allowed()
}

func impure() int64 {
	return time.Now().Unix() // want `determinism: time\.Now` `purity: time\.Now.*reachable from dualfix\.Root`
}

func allowed() int64 {
	return time.Now().Unix() //didt:allow determinism,purity -- fixture: one audited reason covers both analyzer views
}
