// Package detfix exercises the determinism analyzer: wall-clock reads,
// global math/rand, and map-iteration order leaking into output.
package detfix

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"didt/internal/telemetry"
)

func wallClock() int64 {
	return time.Now().Unix() // want `determinism: time\.Now`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `determinism: time\.Since`
}

func globalRand() int {
	return rand.Intn(6) // want `global math/rand\.Intn`
}

func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // the allowed idiom (internal/sensor)
	return r.Float64()
}

func mapToWriter(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `iteration order leaks into the writer`
	}
}

func mapToWriteCall(w io.Writer, m map[string][]byte) {
	for _, v := range m {
		w.Write(v) // want `Write on an io\.Writer inside range over map`
	}
}

func mapToSlice(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over map`
	}
	return out
}

func mapToSortedSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // collect-then-sort: order cannot escape
	}
	sort.Strings(keys)
	return keys
}

func mapToTelemetry(s *telemetry.Stream, m map[uint64]float64) {
	if s.Enabled() {
		for c, v := range m {
			s.Emit(c, telemetry.KindVoltage, 0, v) // want `telemetry Emit inside range over map`
		}
	}
}

func manifestStamp() int64 {
	//didt:allow determinism -- fixture counterpart of the manifest timestamp exception
	return time.Now().UnixNano()
}
