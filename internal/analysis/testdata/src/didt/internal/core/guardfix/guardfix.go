// Package guardfix exercises the telemetryguard analyzer: Stream.Emit
// call sites must be dominated by the Enabled() guard on the same
// receiver.
package guardfix

import "didt/internal/telemetry"

type system struct {
	stream *telemetry.Stream
	other  *telemetry.Stream
}

func (s *system) unguarded(c uint64, v float64) {
	s.stream.Emit(c, telemetry.KindVoltage, 0, v) // want `not dominated by an s\.stream\.Enabled\(\) guard`
}

func (s *system) guardedIf(c uint64, v float64) {
	if s.stream.Enabled() {
		s.stream.Emit(c, telemetry.KindVoltage, 0, v)
	}
}

func (s *system) guardedConjunct(c uint64, v float64, extra bool) {
	if extra && s.stream.Enabled() {
		s.stream.Emit(c, telemetry.KindVoltage, 0, v)
	}
}

func (s *system) guardedEarlyReturn(c uint64, v float64) {
	if !s.stream.Enabled() {
		return
	}
	s.stream.Emit(c, telemetry.KindVoltage, 0, v)
	if v > 1 {
		s.stream.Emit(c, telemetry.KindVoltage, 1, v) // nested block, still dominated
	}
}

func (s *system) wrongReceiver(c uint64, v float64) {
	if s.stream.Enabled() {
		s.other.Emit(c, telemetry.KindVoltage, 0, v) // want `not dominated by an s\.other\.Enabled\(\) guard`
	}
}

func (s *system) negatedGuardBody(c uint64, v float64) {
	if !s.stream.Enabled() {
		s.stream.Emit(c, telemetry.KindVoltage, 0, v) // want `not dominated`
	}
}

func (s *system) guardDoesNotCrossFuncs(c uint64, v float64) {
	if s.stream.Enabled() {
		f := func() {
			s.stream.Emit(c, telemetry.KindVoltage, 0, v) // want `not dominated`
		}
		f()
	}
}

func (s *system) allowedColdPath(c uint64, v float64) {
	s.stream.Emit(c, telemetry.KindVoltage, 0, v) //didt:allow telemetryguard -- once-per-run cold path, cost is irrelevant
}
