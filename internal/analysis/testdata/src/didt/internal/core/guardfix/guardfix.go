// Package guardfix exercises the telemetryguard analyzer: Stream.Emit,
// Tracer.Start, and Span.End call sites must be dominated by the
// Enabled() guard on the same receiver.
package guardfix

import "didt/internal/telemetry"

type system struct {
	stream *telemetry.Stream
	other  *telemetry.Stream
	tracer *telemetry.Tracer
}

func (s *system) unguarded(c uint64, v float64) {
	s.stream.Emit(c, telemetry.KindVoltage, 0, v) // want `not dominated by an s\.stream\.Enabled\(\) guard`
}

func (s *system) guardedIf(c uint64, v float64) {
	if s.stream.Enabled() {
		s.stream.Emit(c, telemetry.KindVoltage, 0, v)
	}
}

func (s *system) guardedConjunct(c uint64, v float64, extra bool) {
	if extra && s.stream.Enabled() {
		s.stream.Emit(c, telemetry.KindVoltage, 0, v)
	}
}

func (s *system) guardedEarlyReturn(c uint64, v float64) {
	if !s.stream.Enabled() {
		return
	}
	s.stream.Emit(c, telemetry.KindVoltage, 0, v)
	if v > 1 {
		s.stream.Emit(c, telemetry.KindVoltage, 1, v) // nested block, still dominated
	}
}

func (s *system) wrongReceiver(c uint64, v float64) {
	if s.stream.Enabled() {
		s.other.Emit(c, telemetry.KindVoltage, 0, v) // want `not dominated by an s\.other\.Enabled\(\) guard`
	}
}

func (s *system) negatedGuardBody(c uint64, v float64) {
	if !s.stream.Enabled() {
		s.stream.Emit(c, telemetry.KindVoltage, 0, v) // want `not dominated`
	}
}

func (s *system) guardDoesNotCrossFuncs(c uint64, v float64) {
	if s.stream.Enabled() {
		f := func() {
			s.stream.Emit(c, telemetry.KindVoltage, 0, v) // want `not dominated`
		}
		f()
	}
}

func (s *system) allowedColdPath(c uint64, v float64) {
	s.stream.Emit(c, telemetry.KindVoltage, 0, v) //didt:allow telemetryguard -- once-per-run cold path, cost is irrelevant
}

func (s *system) unguardedSpanStart() {
	sp := s.tracer.Start("request", telemetry.AttrStr("k", "v")) // want `not dominated by an s\.tracer\.Enabled\(\) guard`
	_ = sp
}

func (s *system) guardedSpanStartAndEnd() {
	var sp *telemetry.Span
	if s.tracer.Enabled() {
		sp = s.tracer.Start("request", telemetry.AttrStr("k", "v"))
	}
	sp.SetAttr("outcome", "ok") // SetAttr is not part of the guarded surface
	if sp.Enabled() {
		sp.End()
	}
}

func (s *system) unguardedSpanEnd(sp *telemetry.Span) {
	sp.End() // want `not dominated by an sp\.Enabled\(\) guard`
}

func (s *system) spanEndEarlyReturn(sp *telemetry.Span) {
	if !sp.Enabled() {
		return
	}
	sp.End()
}

func (s *system) wrongReceiverSpan(sp *telemetry.Span) {
	if s.tracer.Enabled() {
		sp.End() // want `not dominated by an sp\.Enabled\(\) guard`
	}
}

func (s *system) allowedColdSpan(sp *telemetry.Span) {
	sp.End() //didt:allow telemetryguard -- shutdown path, runs once
}
