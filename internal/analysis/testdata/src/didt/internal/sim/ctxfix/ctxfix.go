// Package ctxfix exercises the ctxflow analyzer: blocking channel
// operations and Waits in the concurrent packages must select on
// ctx.Done(), be non-blocking, or carry an audited //didt:allow.
package ctxfix

import (
	"context"
	"sync"
)

func bareSend(ch chan int) {
	ch <- 1 // want `blocking send outside select`
}

func bareRecv(ch chan int) int {
	return <-ch // want `blocking receive outside select`
}

func rangeChan(ch chan int) (sum int) {
	for v := range ch { // want `range over channel blocks until the channel closes`
		sum += v
	}
	return sum
}

func bareWait(wg *sync.WaitGroup) {
	wg.Wait() // want `sync\.WaitGroup\.Wait blocks with no cancellation escape`
}

func condWait(c *sync.Cond) {
	c.Wait() // want `sync\.Cond\.Wait blocks with no cancellation escape`
}

func deafSelect(a, b chan int) int {
	select { // want `select has no default and no ctx\.Done\(\) case`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// guardedSend is the canonical pattern: the send escapes on cancellation.
func guardedSend(ctx context.Context, ch chan int) error {
	select {
	case ch <- 1:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// nonBlocking needs no Done case: default makes it unable to block.
func nonBlocking(ch chan int) bool {
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// doneRecv blocks on cancellation itself — that IS the escape hatch.
func doneRecv(ctx context.Context) {
	<-ctx.Done()
}

// launched bodies are goroleak's concern, not ctxflow's: the launcher
// returns immediately, so nothing here wedges a caller.
func launched(ch chan int, wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		ch <- 1
	}()
}

// allowedDrain documents the provably-non-blocking exception.
func allowedDrain(errc chan error) error {
	close(errc)
	var first error
	for e := range errc { //didt:allow ctxflow -- errc is closed above; the loop drains buffered values and terminates
		if first == nil {
			first = e
		}
	}
	return first
}
