// Package lockfix exercises the locks analyzer: sync mutexes must not be
// held across channel operations in the worker pool.
package lockfix

import "sync"

type pool struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	jobs chan int
	done chan struct{}
}

func (p *pool) sendUnderLock(i int) {
	p.mu.Lock()
	p.jobs <- i // want `channel send while holding p\.mu`
	p.mu.Unlock()
}

func (p *pool) recvUnderDeferredLock() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return <-p.jobs // want `channel receive while holding p\.mu`
}

func (p *pool) selectUnderRLock() {
	p.rw.RLock()
	select { // want `select while holding p\.rw`
	case i := <-p.jobs:
		_ = i
	case <-p.done:
	}
	p.rw.RUnlock()
}

func (p *pool) rangeUnderNestedLock(run bool) {
	if run {
		p.mu.Lock()
		for i := range p.jobs { // want `range over channel while holding p\.mu`
			_ = i
		}
		p.mu.Unlock()
	}
}

func (p *pool) releaseBeforeSend(i int) {
	p.mu.Lock()
	n := i * 2
	p.mu.Unlock()
	p.jobs <- n
}

func (p *pool) goroutineNotUnderLock() {
	p.mu.Lock()
	go func() {
		p.jobs <- 1 // runs on its own stack, not under this frame's lock
	}()
	p.mu.Unlock()
}

func (p *pool) allowedSend(i int) {
	p.mu.Lock()
	p.jobs <- i //didt:allow locks -- buffered channel sized to the worker count, cannot block
	p.mu.Unlock()
}
