// Package dirfix exercises the directives analyzer: the //didt:
// annotation vocabulary itself must be well-formed and well-placed.
package dirfix

func wellFormed() {
	x := 1 //didt:allow hotpath -- a fine, fully specified exception
	_ = x
}

func missingReason() {
	y := 2 //didt:allow hotpath // want `malformed //didt:allow directive`
	_ = y
}

func missingName() {
	z := 3 //didt:allow -- reason with no analyzer // want `malformed //didt:allow directive`
	_ = z
}

func unknownAnalyzer() {
	w := 4 //didt:allow frobnicator -- no such pass // want `unknown analyzer "frobnicator"`
	_ = w
}

func unknownVerb() {
	u := 5 //didt:frobnicate // want `unknown directive //didt:frobnicate`
	_ = u
}

func multiName() {
	a := 7 //didt:allow determinism,purity -- one audited reason for both views
	_ = a
}

func multiNameUnknown() {
	b := 8 //didt:allow determinism,frobnicator -- second name is bogus // want `unknown analyzer "frobnicator"`
	_ = b
}

func multiNameSpaced() {
	c := 9 //didt:allow determinism, purity -- comma lists are space-free // want `malformed //didt:allow directive`
	_ = c
}

func multiNameEmptyElement() {
	d := 10 //didt:allow determinism,,purity -- empty element // want `malformed //didt:allow directive`
	_ = d
}

//didt:hotpath
func legallyAnnotated() {}

//didt:hotpath misplaced on a variable // want `must be in a function's doc comment`
var notAFunction = 6
