// Package dep is purefix's dependency: purity findings must cross the
// package boundary, and //didt:allow must suppress them at the site.
package dep

import (
	"math/rand"
	"time"
)

func Impure() float64 {
	return float64(time.Now().UnixNano()) // want `time\.Now.*\[in didt/purefix/dep\.Impure, reachable from purefix\.Run\]`
}

func Allowed() float64 {
	return rand.Float64() //didt:allow purity -- fixture: stream is reseeded per spec.Key upstream
}
