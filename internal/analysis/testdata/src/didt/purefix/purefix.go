// Package purefix exercises the purity analyzer: everything reachable
// from the configured root must be free of wall-clock, global-rand, and
// map-ordered output — across package boundaries, while unreachable code
// is left alone.
package purefix

import (
	"time"

	"didt/purefix/dep"
)

// Run is the fixture's purity root.
func Run() float64 {
	fns := Table()
	return helper() + dep.Impure() + dep.Allowed() + fns[0]()
}

func helper() float64 {
	return float64(time.Now().Unix()) // want `time\.Now.*\[in didt/purefix\.helper, reachable from purefix\.Run\]`
}

// Table returns runner functions registry-style: viaTable enters the call
// graph through the value-reference edge, not a direct call.
func Table() []func() float64 {
	return []func() float64{viaTable}
}

func viaTable() float64 {
	return float64(time.Now().UnixNano()) // want `time\.Now.*reachable from purefix\.Run`
}

// unreachableImpure is never called from the root: impurity here is
// someone else's problem (the determinism analyzer's, if in scope).
func unreachableImpure() int64 {
	return time.Now().Unix()
}
