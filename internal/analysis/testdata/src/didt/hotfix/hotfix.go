// Package hotfix exercises the hotpath analyzer: //didt:hotpath functions
// reject fmt, defer, mutex acquisition and interface-converting
// allocations.
package hotfix

import (
	"fmt"
	"sync"
)

type counter struct {
	mu sync.Mutex
	n  int
}

//didt:hotpath
func (c *counter) locked() {
	c.mu.Lock() // want `mutex acquisition in hot-path function locked`
	c.n++
	c.mu.Unlock()
}

//didt:hotpath
func deferred(f func()) {
	defer f() // want `defer in hot-path function deferred`
}

//didt:hotpath
func formatted(v int) string {
	return fmt.Sprintf("%d", v) // want `fmt\.Sprintf in hot-path function` `interface-converting allocation`
}

var sink interface{}

//didt:hotpath
func boxed(v int) {
	sink = v // want `concrete value boxed into interface\{\}`
}

//didt:hotpath
func boxedReturn(v float64) interface{} {
	return v // want `interface-converting allocation in hot-path function boxedReturn`
}

//didt:hotpath
func ifaceThrough(v interface{}) interface{} {
	return v // already an interface: no new allocation
}

//didt:hotpath
func clean(a, b float64) float64 {
	return a*b + b
}

// unannotated may do all of this freely.
func unannotated(c *counter, v int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprint(v)
}

//didt:hotpath
func allowedColdBranch(err error) string {
	if err != nil {
		return fmt.Sprint(err) //didt:allow hotpath -- once-per-run error path, not the steady state
	}
	return ""
}

//didt:hotpath
func allowedOnLineAbove(v int) {
	//didt:allow hotpath -- boxing audited: sink is written once per run
	sink = v
}
