package hotfix

// Escape-reasoning half of the hotpath contract: appends, heap-bound
// literals and capturing closures are the usual suspects behind a failed
// 0-allocs -benchmem gate.

type sample struct{ v, t float64 }

//didt:hotpath
func appended(buf []float64, v float64) []float64 {
	return append(buf, v) // want `append in hot-path function appended may grow the backing array`
}

//didt:hotpath
func addrTaken(v float64) *sample {
	return &sample{v: v} // want `address-of composite literal in hot-path function addrTaken escapes`
}

//didt:hotpath
func sliceLit(v float64) float64 {
	s := []float64{v, v} // want `slice literal in hot-path function sliceLit allocates`
	return s[0]
}

//didt:hotpath
func mapLit(v float64) float64 {
	m := map[string]float64{"v": v} // want `map literal in hot-path function mapLit allocates`
	return m["v"]
}

//didt:hotpath
func capturing(v float64) func() float64 {
	return func() float64 { return v * 2 } // want `closure capturing v in hot-path function capturing`
}

// Value literals stay on the stack: no finding.
//
//didt:hotpath
func valueLit(v float64) sample {
	s := sample{v: v, t: v * 2}
	return s
}

// A capture-free literal compiles to a static function: no finding.
//
//didt:hotpath
func staticClosure() func(float64) float64 {
	return func(x float64) float64 { return x * x }
}

// Indexed writes into a preallocated buffer are the blessed idiom.
//
//didt:hotpath
func indexed(buf []float64, i int, v float64) {
	buf[i] = v
}

//didt:hotpath
func allowedWarmup(buf []float64) []float64 {
	//didt:allow hotpath -- capacity reserved by the caller; append is provably in-place here
	return append(buf, 0)
}
