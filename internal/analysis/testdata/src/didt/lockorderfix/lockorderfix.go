// Package lockorderfix exercises the lockorder analyzer: the
// whole-program lock-acquisition graph must stay acyclic, and no lock may
// be acquired while already held.
package lockorderfix

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var (
	a A
	b B
)

// abPath and baPath acquire the same two locks in opposite orders — the
// textbook deadlock pair. Each closing edge is reported where it forms.
func abPath() {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle: didt/lockorderfix\.B\.mu acquired while holding didt/lockorderfix\.A\.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

func baPath() {
	b.mu.Lock()
	a.mu.Lock() // want `lock-order cycle: didt/lockorderfix\.A\.mu acquired while holding didt/lockorderfix\.B\.mu`
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }

var c C

// direct recursive acquisition: sync.Mutex self-deadlocks.
func recursive() {
	c.mu.Lock()
	c.mu.Lock() // want `recursive acquisition of didt/lockorderfix\.C\.mu`
	c.mu.Unlock()
	c.mu.Unlock()
}

type D struct{ mu sync.Mutex }

var d D

func lockD() {
	d.mu.Lock()
	d.mu.Unlock()
}

// indirect recursion through a call: the callee's acquisitions count
// against the caller's held set.
func recursiveViaCall() {
	d.mu.Lock()
	lockD() // want `recursive acquisition of didt/lockorderfix\.D\.mu`
	d.mu.Unlock()
}

type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

var (
	e E
	f F
)

// Consistent ordering everywhere: E before F. Acyclic, no findings.
func efOne() {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func efTwo() {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

// Sequential (non-nested) acquisition creates no edge in either order.
func sequential() {
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

type G struct{ mu sync.Mutex }

var g G

func lockG() {
	g.mu.Lock()
	g.mu.Unlock()
}

// The audited exception: a re-entrant call pattern proven unreachable in
// production, carried with a reason.
func allowedRecursion() {
	g.mu.Lock()
	lockG() //didt:allow lockorder -- fixture: lockG is never called with g held in production; audited
	g.mu.Unlock()
}
