package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output: the interchange format CI systems and code hosts
// ingest for inline annotation. The structures below are the minimal
// valid subset — one run, one driver, didtlint's analyzers as rules,
// diagnostics as results with physical locations. Field order and result
// order are deterministic (diagnostics arrive position-sorted), so the
// artifact is byte-stable for identical trees.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. Analyzers become
// the driver's rules (including clean ones, so consumers can distinguish
// "checked and clean" from "not checked"); file paths are made relative
// to baseDir when possible, the URI convention SARIF viewers expect.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic, baseDir string) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	// The synthetic stale-suppression reports carry the directives rule
	// id, which the loop above already includes via the Directives
	// analyzer whenever it is in the run.
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if baseDir != "" {
			if rel, err := filepath.Rel(baseDir, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "didtlint", InformationURI: "https://example.invalid/didt", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
