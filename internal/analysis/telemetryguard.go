package analysis

import (
	"go/ast"
	"go/types"
)

// TelemetryGuard proves the telemetry-cost contract (PR 2, extended to
// request spans in PR 7): every call to a telemetry emission method —
// Stream.Emit, Tracer.Start, Span.End — must be dominated by the
// Enabled() guard on the same receiver, either an enclosing
// `if recv.Enabled() { ... }` or an earlier `if !recv.Enabled() { return }`.
// The methods are themselves nil-safe, but the guard is what keeps a
// disabled tracer's cost to one pointer test plus one atomic load — an
// unguarded call site pays the full argument evaluation (attribute
// construction, for spans) and call overhead even when tracing is off.
var TelemetryGuard = &Analyzer{
	Name: "telemetryguard",
	Doc: "require telemetry emission calls (Stream.Emit, Tracer.Start, " +
		"Span.End) to be dominated by the nil-safe Enabled() guard on the " +
		"same receiver",
	AppliesTo: func(pkgPath string) bool {
		// The telemetry package's own internals (sinks, tests' helpers)
		// legitimately drive streams directly.
		return pkgPath != telemetryPath
	},
	Run: runTelemetryGuard,
}

func runTelemetryGuard(pass *Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, emits := isTelemetryEmission(pass.Info, call)
			if !emits {
				return true
			}
			recv, ok := recvExprString(call)
			if !ok {
				return true
			}
			if !guardedByEnabled(pass.Info, stack, call, recv) {
				pass.Reportf(call.Pos(), "%s.%s is not dominated by an %s.Enabled() guard; wrap it in `if %s.Enabled() { ... }` so disabled tracing costs one pointer test", recv, method, recv, recv)
			}
			return true
		})
	}
	return nil
}

// isTelemetryEmission matches the guarded emission surface of
// didt/internal/telemetry: Stream.Emit (cycle events), Tracer.Start
// (opens a request span, evaluating attribute args) and Span.End
// (records the span). Returns the method name for the diagnostic.
func isTelemetryEmission(info *types.Info, call *ast.CallExpr) (string, bool) {
	pkg, typ, name, ok := methodInfo(calleeFunc(info, call))
	if !ok || pkg != telemetryPath {
		return "", false
	}
	switch {
	case typ == "Stream" && name == "Emit",
		typ == "Tracer" && name == "Start",
		typ == "Span" && name == "End":
		return name, true
	}
	return "", false
}

// isEnabledCall reports whether e is a call recv.Enabled() for the given
// rendered receiver.
func isEnabledCall(e ast.Expr, recv string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Enabled" {
		return false
	}
	return types.ExprString(sel.X) == recv
}

// condHasEnabled searches an if-condition for an unnegated recv.Enabled()
// conjunct.
func condHasEnabled(cond ast.Expr, recv string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		return condHasEnabled(c.X, recv) || condHasEnabled(c.Y, recv)
	case *ast.UnaryExpr:
		return false // a negated guard does not dominate the then-branch
	default:
		return isEnabledCall(cond, recv)
	}
}

// isEarlyReturnGuard matches `if !recv.Enabled() { return ... }`.
func isEarlyReturnGuard(s ast.Stmt, recv string) bool {
	ifs, ok := s.(*ast.IfStmt)
	if !ok || ifs.Else != nil {
		return false
	}
	neg, ok := ast.Unparen(ifs.Cond).(*ast.UnaryExpr)
	if !ok || !isEnabledCall(neg.X, recv) {
		return false
	}
	if len(ifs.Body.List) == 0 {
		return false
	}
	_, isReturn := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return isReturn
}

// guardedByEnabled walks the enclosing-node stack looking for a dominating
// guard: an ancestor `if recv.Enabled()` whose then-branch contains the
// call, or an earlier `if !recv.Enabled() { return }` in any enclosing
// block.
func guardedByEnabled(info *types.Info, stack []ast.Node, call *ast.CallExpr, recv string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			inThen := n.Body.Pos() <= call.Pos() && call.End() <= n.Body.End()
			if inThen && condHasEnabled(n.Cond, recv) {
				return true
			}
		case *ast.BlockStmt:
			for _, s := range n.List {
				if s.End() > call.Pos() {
					break
				}
				if isEarlyReturnGuard(s, recv) {
					return true
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			// Guards do not propagate across function boundaries.
			return false
		}
	}
	return false
}
