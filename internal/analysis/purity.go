package analysis

import (
	"fmt"
	"go/token"
	"go/types"
)

// PurityRoot names one entry point of the determinism-critical region:
// everything reachable from it must be pure in the sweep sense (no wall
// clock, no global rand, no map-ordered output). Recv selects a method on
// the named type; empty for package-level functions. Label is the short
// name used in diagnostics.
type PurityRoot struct {
	Pkg, Recv, Name, Label string
}

// defaultPurityRoots are the contract's entry points on the real tree:
// the per-cycle kernel, the batched kernel, the PDN convolver, the memo
// key, the experiment table (whose runner functions enter the graph
// through value-reference edges), and the result-store entry codec — a
// stored entry must be a pure function of (key, body) or byte-identical
// restart recovery is fiction.
var defaultPurityRoots = []PurityRoot{
	{Pkg: "didt/internal/core", Recv: "System", Name: "StepCycle", Label: "core.StepCycle"},
	{Pkg: "didt/internal/core", Recv: "", Name: "RunBatch", Label: "core.RunBatch"},
	{Pkg: "didt/internal/pdn", Recv: "Network", Name: "ConvolveVoltages", Label: "pdn.ConvolveVoltages"},
	{Pkg: "didt/internal/pdn", Recv: "GraphSimulator", Name: "Step", Label: "pdn.GraphSimulator.Step"},
	{Pkg: "didt/internal/pdn", Recv: "Graph", Name: "ConvolveVoltages", Label: "pdn.Graph.ConvolveVoltages"},
	{Pkg: "didt/internal/spec", Recv: "RunSpec", Name: "Key", Label: "spec.Key"},
	{Pkg: "didt/internal/experiments", Recv: "", Name: "Registry", Label: "experiments.Registry"},
	{Pkg: "didt/internal/store", Recv: "", Name: "EncodeEntry", Label: "store.EncodeEntry"},
	{Pkg: "didt/internal/store", Recv: "", Name: "DecodeEntry", Label: "store.DecodeEntry"},
}

// Purity is the interprocedural determinism analyzer: where the
// determinism analyzer polices a fixed package list file by file, purity
// builds the call graph and walks everything reachable from the
// simulation roots — wherever it lives, including packages the static
// scope list has never heard of. A root whose package is absent from the
// loaded tree is skipped (fixture trees), so the real-tree presence of
// every default root is pinned by a test instead.
var Purity = NewPurity(defaultPurityRoots)

// NewPurity builds a purity analyzer rooted at the given entry points;
// fixtures use instances rooted inside testdata trees.
func NewPurity(roots []PurityRoot) *Analyzer {
	return &Analyzer{
		Name: "purity",
		Doc: "prove every function reachable from the simulation entry points " +
			"free of wall-clock, global-rand, and map-ordered output",
		RunProgram: func(pass *ProgramPass) error { return runPurity(pass, roots) },
	}
}

// CheckDefaultPurityRoots verifies every default root resolves against a
// loader rooted at the real tree — the guard against a renamed entry
// point silently shrinking the proven region (runPurity tolerates absent
// packages because fixture trees lack them).
func CheckDefaultPurityRoots(l *Loader) error {
	for _, r := range defaultPurityRoots {
		if _, err := l.Load(r.Pkg); err != nil {
			return fmt.Errorf("purity root %s: %w", r.Label, err)
		}
	}
	prog := buildProgram(l)
	for _, r := range defaultPurityRoots {
		if prog.Lookup(r.Pkg, r.Recv, r.Name) == nil {
			return fmt.Errorf("purity root %s: %s.%s not found in %s", r.Label, r.Recv, r.Name, r.Pkg)
		}
	}
	return nil
}

func runPurity(pass *ProgramPass, roots []PurityRoot) error {
	// Pull the root packages in before the graph is built; absent ones
	// (fixture trees without internal/core) are skipped, not errors.
	present := make([]PurityRoot, 0, len(roots))
	for _, r := range roots {
		if _, err := pass.Load(r.Pkg); err == nil {
			present = append(present, r)
		}
	}
	prog := pass.Program()
	checked := map[*types.Func]bool{}
	for _, r := range present {
		fn := prog.Lookup(r.Pkg, r.Recv, r.Name)
		if fn == nil {
			return fmt.Errorf("purity root %s (%s.%s) not found in loaded package %s", r.Label, r.Recv, r.Name, r.Pkg)
		}
		for _, fi := range prog.Reachable([]*types.Func{fn}) {
			if checked[fi.Fn] {
				continue
			}
			checked[fi.Fn] = true
			report := func(pos token.Pos, format string, args ...interface{}) {
				pass.Reportf(pos, "%s [in %s, reachable from %s]",
					fmt.Sprintf(format, args...), fi.Fn.FullName(), r.Label)
			}
			checkDeterminismIn(fi.Pkg.Info, report, fi.Decl)
		}
	}
	return nil
}
