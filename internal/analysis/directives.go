package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowKey locates a //didt:allow directive: one analyzer name allowed on
// one line of one file.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// directive is one raw //didt: comment, pre-split for validation.
type directive struct {
	pos  token.Pos
	verb string // "hotpath", "allow", or anything else (unknown)
	rest string // text after the verb, want-comment suffix stripped
}

// allowSite is one well-formed //didt:allow directive, retained with its
// position so stale-suppression detection and the budget can account for
// every exception individually.
type allowSite struct {
	pos       token.Pos
	file      string
	line      int
	analyzers []string
	reason    string
}

// directives is every didt: annotation found in a package, plus the
// bookkeeping needed to validate placement and audit usage.
type directives struct {
	fset    *token.FileSet
	all     []directive
	sites   []allowSite
	allowed map[allowKey]bool
	// used records which allow keys actually suppressed a diagnostic in
	// this run — the complement is the stale-suppression set.
	used map[allowKey]bool
	// markUsed, when set (merged views), fans a usage mark out to the
	// child directive sets; nil means mark locally in used.
	markUsed func(allowKey)
	// hotpathDocs holds the comment groups serving as function doc
	// comments, the only legal home for //didt:hotpath.
	hotpathDocs map[*ast.CommentGroup]bool
}

// stripWant cuts an embedded analysistest expectation (`// want ...`) off
// a directive's text so fixtures can annotate the directives themselves.
func stripWant(s string) string {
	if i := strings.Index(s, "// want"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// parseDirectives scans every comment in the package for didt:
// annotations.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{
		fset:        fset,
		allowed:     map[allowKey]bool{},
		used:        map[allowKey]bool{},
		hotpathDocs: map[*ast.CommentGroup]bool{},
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Doc != nil {
				d.hotpathDocs[fn.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//didt:")
				if !ok {
					continue
				}
				text = stripWant(text)
				verb, rest, _ := strings.Cut(text, " ")
				dir := directive{pos: c.Pos(), verb: verb, rest: strings.TrimSpace(rest)}
				d.all = append(d.all, dir)
				if verb == "allow" {
					if names, reason, ok := parseAllow(dir.rest); ok {
						p := fset.Position(c.Pos())
						d.sites = append(d.sites, allowSite{
							pos: c.Pos(), file: p.Filename, line: p.Line,
							analyzers: names, reason: reason,
						})
						for _, name := range names {
							d.allowed[allowKey{p.Filename, p.Line, name}] = true
						}
					}
				}
			}
		}
	}
	return d
}

// mergeDirectives combines the directive sets of several packages into one
// view, so program-wide analyzers can have their diagnostics filtered no
// matter which package a finding lands in. The merged set shares the
// children's used maps: marking a key used through the merged view is
// visible to stale detection on the per-package sets.
func mergeDirectives(ds ...*directives) *directives {
	m := &directives{
		allowed:     map[allowKey]bool{},
		used:        map[allowKey]bool{},
		hotpathDocs: map[*ast.CommentGroup]bool{},
	}
	children := ds
	for _, d := range children {
		for k, v := range d.allowed {
			m.allowed[k] = v
		}
		m.sites = append(m.sites, d.sites...)
	}
	// Forward usage marks to every child holding the key.
	m.markUsed = func(k allowKey) {
		m.used[k] = true
		for _, d := range children {
			if d.allowed[k] {
				d.used[k] = true
			}
		}
	}
	return m
}

// parseAllow splits "analyzer[,analyzer...] -- reason", requiring both
// halves. A comma-separated analyzer list suppresses several analyzers on
// one line (a site flagged by both determinism and purity, say) with a
// single audited reason.
func parseAllow(rest string) (analyzers []string, reason string, ok bool) {
	names, reason, found := strings.Cut(rest, "--")
	names = strings.TrimSpace(names)
	reason = strings.TrimSpace(reason)
	if !found || names == "" || reason == "" || strings.ContainsAny(names, " \t") {
		return nil, "", false
	}
	for _, n := range strings.Split(names, ",") {
		if n == "" {
			return nil, "", false
		}
		analyzers = append(analyzers, n)
	}
	return analyzers, reason, true
}

// allows reports whether analyzer diagnostics at file:line are suppressed
// by a directive on that line or the line immediately above, marking the
// matched directive as used for stale-suppression accounting.
func (d *directives) allows(analyzer, file string, line int) bool {
	for _, l := range []int{line, line - 1} {
		k := allowKey{file, l, analyzer}
		if d.allowed[k] {
			if d.markUsed != nil {
				d.markUsed(k)
			} else {
				d.used[k] = true
			}
			return true
		}
	}
	return false
}

// isHotpathDoc reports whether a comment group is a function doc comment
// (legal placement for //didt:hotpath).
func (d *directives) isHotpathDoc(pos token.Pos) bool {
	for cg := range d.hotpathDocs {
		if cg.Pos() <= pos && pos <= cg.End() {
			return true
		}
	}
	return false
}

// hotpathFuncs returns the function declarations whose doc comment carries
// //didt:hotpath.
func hotpathFuncs(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if isHotpathComment(c.Text) {
					out = append(out, fn)
					break
				}
			}
		}
	}
	return out
}

// isHotpathComment reports whether a raw comment is a //didt:hotpath
// marker (optionally followed by free text).
func isHotpathComment(text string) bool {
	rest, ok := strings.CutPrefix(text, "//didt:hotpath")
	return ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t')
}

// Directives validates the didt: annotation vocabulary itself: every
// directive must be well-formed and correctly placed, so a typo can never
// silently disable a check.
var Directives = &Analyzer{
	Name: "directives",
	Doc:  "validate //didt:hotpath and //didt:allow annotation syntax and placement",
	Run:  runDirectives,
}

func runDirectives(pass *Pass) error {
	known := knownAnalyzers()
	d := parseDirectives(pass.Fset, pass.Files)
	for _, dir := range d.all {
		switch dir.verb {
		case "hotpath":
			if !d.isHotpathDoc(dir.pos) {
				pass.Reportf(dir.pos, "//didt:hotpath must be in a function's doc comment")
			}
		case "allow":
			names, _, ok := parseAllow(dir.rest)
			if !ok {
				pass.Reportf(dir.pos, "malformed //didt:allow directive: need \"//didt:allow <analyzer>[,<analyzer>] -- <reason>\"")
				continue
			}
			for _, name := range names {
				if !known[name] {
					pass.Reportf(dir.pos, "//didt:allow names unknown analyzer %q", name)
				}
			}
		default:
			pass.Reportf(dir.pos, "unknown directive //didt:%s", dir.verb)
		}
	}
	return nil
}
