package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowKey locates a //didt:allow directive: one analyzer name allowed on
// one line of one file.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// directive is one raw //didt: comment, pre-split for validation.
type directive struct {
	pos  token.Pos
	verb string // "hotpath", "allow", or anything else (unknown)
	rest string // text after the verb, want-comment suffix stripped
}

// directives is every didt: annotation found in a package, plus the
// bookkeeping needed to validate placement.
type directives struct {
	fset    *token.FileSet
	all     []directive
	allowed map[allowKey]bool
	// hotpathDocs holds the comment groups serving as function doc
	// comments, the only legal home for //didt:hotpath.
	hotpathDocs map[*ast.CommentGroup]bool
}

// stripWant cuts an embedded analysistest expectation (`// want ...`) off
// a directive's text so fixtures can annotate the directives themselves.
func stripWant(s string) string {
	if i := strings.Index(s, "// want"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// parseDirectives scans every comment in the package for didt:
// annotations.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{
		fset:        fset,
		allowed:     map[allowKey]bool{},
		hotpathDocs: map[*ast.CommentGroup]bool{},
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Doc != nil {
				d.hotpathDocs[fn.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//didt:")
				if !ok {
					continue
				}
				text = stripWant(text)
				verb, rest, _ := strings.Cut(text, " ")
				dir := directive{pos: c.Pos(), verb: verb, rest: strings.TrimSpace(rest)}
				d.all = append(d.all, dir)
				if verb == "allow" {
					if name, _, ok := parseAllow(dir.rest); ok {
						p := fset.Position(c.Pos())
						d.allowed[allowKey{p.Filename, p.Line, name}] = true
					}
				}
			}
		}
	}
	return d
}

// parseAllow splits "analyzer -- reason", requiring both halves.
func parseAllow(rest string) (analyzer, reason string, ok bool) {
	name, reason, found := strings.Cut(rest, "--")
	name = strings.TrimSpace(name)
	reason = strings.TrimSpace(reason)
	if !found || name == "" || reason == "" || strings.ContainsAny(name, " \t") {
		return "", "", false
	}
	return name, reason, true
}

// allows reports whether analyzer diagnostics at file:line are suppressed
// by a directive on that line or the line immediately above.
func (d *directives) allows(analyzer, file string, line int) bool {
	return d.allowed[allowKey{file, line, analyzer}] ||
		d.allowed[allowKey{file, line - 1, analyzer}]
}

// isHotpathDoc reports whether a comment group is a function doc comment
// (legal placement for //didt:hotpath).
func (d *directives) isHotpathDoc(pos token.Pos) bool {
	for cg := range d.hotpathDocs {
		if cg.Pos() <= pos && pos <= cg.End() {
			return true
		}
	}
	return false
}

// hotpathFuncs returns the function declarations whose doc comment carries
// //didt:hotpath.
func hotpathFuncs(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if isHotpathComment(c.Text) {
					out = append(out, fn)
					break
				}
			}
		}
	}
	return out
}

// isHotpathComment reports whether a raw comment is a //didt:hotpath
// marker (optionally followed by free text).
func isHotpathComment(text string) bool {
	rest, ok := strings.CutPrefix(text, "//didt:hotpath")
	return ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t')
}

// Directives validates the didt: annotation vocabulary itself: every
// directive must be well-formed and correctly placed, so a typo can never
// silently disable a check.
var Directives = &Analyzer{
	Name: "directives",
	Doc:  "validate //didt:hotpath and //didt:allow annotation syntax and placement",
	Run:  runDirectives,
}

func runDirectives(pass *Pass) error {
	known := knownAnalyzers()
	d := parseDirectives(pass.Fset, pass.Files)
	for _, dir := range d.all {
		switch dir.verb {
		case "hotpath":
			if !d.isHotpathDoc(dir.pos) {
				pass.Reportf(dir.pos, "//didt:hotpath must be in a function's doc comment")
			}
		case "allow":
			name, _, ok := parseAllow(dir.rest)
			if !ok {
				pass.Reportf(dir.pos, "malformed //didt:allow directive: need \"//didt:allow <analyzer> -- <reason>\"")
				continue
			}
			if !known[name] {
				pass.Reportf(dir.pos, "//didt:allow names unknown analyzer %q", name)
			}
		default:
			pass.Reportf(dir.pos, "unknown directive //didt:%s", dir.verb)
		}
	}
	return nil
}
