package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func TestBaselineDiff(t *testing.T) {
	base := &Baseline{AllowBudget: map[string]int{"determinism": 3, "hotpath": 1}}

	if drift := base.Diff(map[string]int{"determinism": 3, "hotpath": 1}); len(drift) != 0 {
		t.Fatalf("exact match reported drift: %v", drift)
	}

	over := base.Diff(map[string]int{"determinism": 4, "hotpath": 1})
	if len(over) != 1 || !strings.Contains(over[0], "determinism: 4") || !strings.Contains(over[0], "budget is 3") {
		t.Fatalf("over-budget drift = %v", over)
	}

	under := base.Diff(map[string]int{"determinism": 3})
	if len(under) != 1 || !strings.Contains(under[0], "hotpath: 0") || !strings.Contains(under[0], "ratchet") {
		t.Fatalf("under-budget drift = %v", under)
	}

	// An analyzer absent from the budget but present in the tree drifts too.
	novel := base.Diff(map[string]int{"determinism": 3, "hotpath": 1, "ctxflow": 2})
	if len(novel) != 1 || !strings.Contains(novel[0], "ctxflow: 2") {
		t.Fatalf("novel-analyzer drift = %v", novel)
	}

	// Drift messages come back sorted by analyzer name.
	multi := base.Diff(map[string]int{"determinism": 9, "ctxflow": 1})
	if len(multi) != 3 || !strings.Contains(multi[0], "ctxflow") ||
		!strings.Contains(multi[1], "determinism") || !strings.Contains(multi[2], "hotpath") {
		t.Fatalf("multi drift order = %v", multi)
	}
}

func TestBaselineWriteLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	counts := map[string]int{"determinism": 2, "purity": 5, "clean": 0}
	if err := WriteBaseline(path, counts); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-count analyzers are dropped on write; the rest round-trip.
	want := map[string]int{"determinism": 2, "purity": 5}
	if len(got.AllowBudget) != len(want) {
		t.Fatalf("AllowBudget = %v, want %v", got.AllowBudget, want)
	}
	for n, c := range want {
		if got.AllowBudget[n] != c {
			t.Fatalf("AllowBudget[%s] = %d, want %d", n, got.AllowBudget[n], c)
		}
	}
	if drift := got.Diff(map[string]int{"determinism": 2, "purity": 5}); len(drift) != 0 {
		t.Fatalf("round-tripped baseline drifted: %v", drift)
	}
}

func TestWriteSARIF(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:      token.Position{Filename: "/repo/internal/sim/sim.go", Line: 42, Column: 3},
			Analyzer: "ctxflow",
			Message:  "blocking channel receive without ctx.Done escape",
		},
		{
			Pos:      token.Position{Filename: "/elsewhere/outside.go", Line: 7, Column: 1},
			Analyzer: "purity",
			Message:  "time.Now: wall-clock state must not influence sweep output",
		},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, Suite(), diags, "/repo"); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Fatalf("version = %q, schema = %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "didtlint" {
		t.Fatalf("driver = %q", run.Tool.Driver.Name)
	}
	// Every suite analyzer appears as a rule, clean or not.
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range Suite() {
		if !ruleIDs[a.Name] {
			t.Fatalf("analyzer %s missing from SARIF rules", a.Name)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "ctxflow" || first.Level != "error" {
		t.Fatalf("result[0] = %+v", first)
	}
	loc := first.Locations[0].PhysicalLocation
	// Inside baseDir: relative, slash-separated URI.
	if loc.ArtifactLocation.URI != "internal/sim/sim.go" {
		t.Fatalf("uri = %q, want relative path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 3 {
		t.Fatalf("region = %+v", loc.Region)
	}
	// Outside baseDir: the absolute path is kept rather than a ../ escape.
	second := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if strings.HasPrefix(second, "..") {
		t.Fatalf("uri escaped baseDir: %q", second)
	}
}
