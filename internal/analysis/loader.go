package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Root maps an import-path prefix onto a directory tree. A Root with
// Prefix "didt" and Dir "/repo" resolves "didt/internal/pdn" to
// "/repo/internal/pdn"; a Root with Prefix "" resolves any path p to
// Dir/p, the layout analysistest fixtures use under testdata/src.
type Root struct {
	Prefix string
	Dir    string
}

// Loader type-checks packages from source. Import paths are resolved
// against the configured roots first; anything else (the standard library)
// goes through the toolchain's source importer, so the loader works with
// no compiled export data and no network — the constraint this repository
// builds under.
type Loader struct {
	Fset  *token.FileSet
	roots []Root

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader resolving the given roots (earlier roots
// win).
func NewLoader(roots ...Root) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		roots:   roots,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// dirFor resolves an import path against the loader's roots.
func (l *Loader) dirFor(path string) (string, bool) {
	for _, r := range l.roots {
		switch {
		case r.Prefix == "":
			return filepath.Join(r.Dir, filepath.FromSlash(path)), true
		case path == r.Prefix:
			return r.Dir, true
		case strings.HasPrefix(path, r.Prefix+"/"):
			return filepath.Join(r.Dir, filepath.FromSlash(path[len(r.Prefix)+1:])), true
		}
	}
	return "", false
}

// hasGoFiles reports whether dir contains at least one non-test .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// Load type-checks the package at the given import path (which must
// resolve within the loader's roots) and returns it with syntax and type
// information attached. Results are memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(path)
	if !ok || !hasGoFiles(dir) {
		return nil, fmt.Errorf("analysis: package %q not found under configured roots", path)
	}
	return l.load(path, dir)
}

// Import implements types.Importer so packages under the roots can depend
// on each other and on the standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if dir, ok := l.dirFor(path); ok && hasGoFiles(dir) {
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Packages returns every package loaded so far through this loader's
// roots (the standard library is resolved through the source importer and
// never appears here), sorted by import path for deterministic iteration.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// WalkModulePackages returns the import paths of every package under root
// (a directory containing go.mod for module modulePath), skipping
// testdata, vendor, and hidden directories. Paths come back sorted, so
// callers analyzing "./..." see a stable order.
func WalkModulePackages(root, modulePath string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(p) {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, modulePath)
		} else {
			paths = append(paths, path.Join(modulePath, filepath.ToSlash(rel)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}
