package sensor

import (
	"testing"
	"testing/quick"
)

func mustSensor(t *testing.T, delay int, noise float64) *Sensor {
	t.Helper()
	s, err := New(delay, noise, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetThresholds(0.96, 1.04); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidation(t *testing.T) {
	if _, err := New(-1, 0, 0); err == nil {
		t.Error("want error for negative delay")
	}
	if _, err := New(0, -0.1, 0); err == nil {
		t.Error("want error for negative noise")
	}
	s, _ := New(0, 0, 0)
	if err := s.SetThresholds(1.04, 0.96); err == nil {
		t.Error("want error for inverted thresholds")
	}
}

func TestZeroDelayImmediateDetection(t *testing.T) {
	s := mustSensor(t, 0, 0)
	if got := s.Sense(1.0); got != Normal {
		t.Errorf("nominal: %v", got)
	}
	if got := s.Sense(0.95); got != Low {
		t.Errorf("low: %v", got)
	}
	if got := s.Sense(1.05); got != High {
		t.Errorf("high: %v", got)
	}
}

func TestDelayShiftsDetection(t *testing.T) {
	const d = 3
	s := mustSensor(t, d, 0)
	// Fill the line with nominal.
	for i := 0; i < d+1; i++ {
		if got := s.Sense(1.0); got != Normal {
			t.Fatalf("warmup cycle %d: %v", i, got)
		}
	}
	// A dip now must be reported exactly d cycles later.
	if got := s.Sense(0.90); got != Normal {
		t.Errorf("dip visible immediately with delay %d", d)
	}
	for i := 0; i < d-1; i++ {
		if got := s.Sense(1.0); got != Normal {
			t.Errorf("dip visible %d cycles early", d-1-i)
		}
	}
	if got := s.Sense(1.0); got != Low {
		t.Error("dip never became visible")
	}
	if got := s.Sense(1.0); got != Normal {
		t.Error("dip reported twice")
	}
}

func TestNoiseCanFlipMarginalReadings(t *testing.T) {
	// With 25mV noise, a voltage 10mV above the low threshold sometimes
	// reads Low, and never without noise.
	clean := mustSensor(t, 0, 0)
	noisy := mustSensor(t, 0, 0.025)
	falseAlarms := 0
	for i := 0; i < 1000; i++ {
		if clean.Sense(0.97) != Normal {
			t.Fatal("clean sensor false alarm")
		}
		if noisy.Sense(0.97) == Low {
			falseAlarms++
		}
	}
	if falseAlarms == 0 {
		t.Error("noisy sensor never false-alarmed on a marginal reading")
	}
	if falseAlarms > 600 {
		t.Errorf("noise dominates signal: %d/1000 false alarms", falseAlarms)
	}
}

func TestNoiseDeterministicPerSeed(t *testing.T) {
	a, _ := New(0, 0.02, 42)
	b, _ := New(0, 0.02, 42)
	a.SetThresholds(0.96, 1.04)
	b.SetThresholds(0.96, 1.04)
	for i := 0; i < 500; i++ {
		v := 0.955 + float64(i%20)*0.001
		if a.Sense(v) != b.Sense(v) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestResetClearsLine(t *testing.T) {
	s := mustSensor(t, 2, 0)
	for i := 0; i < 5; i++ {
		s.Sense(0.90)
	}
	s.Reset(7)
	// After reset the line must refill before reporting.
	if got := s.Sense(0.90); got != Normal {
		t.Errorf("first post-reset reading: %v", got)
	}
}

func TestPropertyCleanSensorMatchesThresholds(t *testing.T) {
	s := mustSensor(t, 0, 0)
	lo, hi := s.Thresholds()
	f := func(raw uint16) bool {
		v := 0.9 + float64(raw)/65535*0.2 // 0.9 .. 1.1
		got := s.Sense(v)
		switch {
		case v < lo:
			return got == Low
		case v > hi:
			return got == High
		default:
			return got == Normal
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevelString(t *testing.T) {
	if Low.String() != "low" || High.String() != "high" || Normal.String() != "normal" {
		t.Error("level names")
	}
}
