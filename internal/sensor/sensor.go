// Package sensor models the threshold voltage sensor of Section 4: a
// three-level (Low/Normal/High) comparator against configurable thresholds,
// with a configurable detection delay (the paper studies 0-6 cycles) and
// additive white measurement noise (the paper studies 10-25 mV).
//
// The sensor deliberately does not report a numeric voltage: the paper
// argues that range detection (bandgap references, inverter-chain delay
// detectors) is what is implementable within 1-2 cycles, while full
// digitization is not.
package sensor

import (
	"fmt"
	"math/rand"
)

// Level is the sensor's three-valued output.
type Level int

const (
	Normal Level = iota
	Low
	High
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case High:
		return "high"
	case Normal:
		return "normal"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Sensor compares (delayed, noisy) voltage readings against thresholds.
// Not safe for concurrent use.
type Sensor struct {
	delay   int
	noise   float64 // peak amplitude of uniform white noise, volts
	rng     *rand.Rand
	line    []float64 // delay line; line[0] is the newest sample
	filled  int
	vLow    float64
	vHigh   float64
	nominal float64

	// Trip accounting for the telemetry layer: plain (non-atomic) locals
	// incremented in Sense, harvested once per run, so the hot path pays
	// an increment and nothing else.
	samples   uint64
	lowTrips  uint64
	highTrips uint64
}

// New builds a sensor with the given detection delay in cycles and noise
// amplitude in volts (0 for an ideal sensor). seed makes the noise stream
// reproducible. Thresholds start disabled (never trip) until SetThresholds.
func New(delay int, noise float64, seed int64) (*Sensor, error) {
	if delay < 0 {
		return nil, fmt.Errorf("sensor: negative delay %d", delay)
	}
	if noise < 0 {
		return nil, fmt.Errorf("sensor: negative noise %g", noise)
	}
	s := &Sensor{
		delay:   delay,
		noise:   noise,
		rng:     rand.New(rand.NewSource(seed)),
		line:    make([]float64, delay+1),
		vLow:    -1e9,
		vHigh:   1e9,
		nominal: 1.0,
	}
	return s, nil
}

// SetThresholds installs the trip points. lo must be below hi.
func (s *Sensor) SetThresholds(lo, hi float64) error {
	if lo >= hi {
		return fmt.Errorf("sensor: low threshold %g not below high %g", lo, hi)
	}
	s.vLow, s.vHigh = lo, hi
	return nil
}

// Thresholds returns the current trip points.
func (s *Sensor) Thresholds() (lo, hi float64) { return s.vLow, s.vHigh }

// Delay returns the detection delay in cycles.
func (s *Sensor) Delay() int { return s.delay }

// Sense pushes this cycle's true voltage into the delay line and returns
// the level of the reading the sensor can see now (the voltage from Delay
// cycles ago, perturbed by measurement noise). Before the line fills, the
// sensor reports Normal — the paper's systems power up quiescent.
//
//didt:hotpath
func (s *Sensor) Sense(v float64) Level {
	copy(s.line[1:], s.line)
	s.line[0] = v
	if s.filled < len(s.line) {
		s.filled++
		if s.filled < len(s.line) {
			return Normal
		}
	}
	reading := s.line[s.delay]
	if s.noise > 0 {
		reading += (2*s.rng.Float64() - 1) * s.noise
	}
	s.samples++
	switch {
	case reading < s.vLow:
		s.lowTrips++
		return Low
	case reading > s.vHigh:
		s.highTrips++
		return High
	}
	return Normal
}

// Trips reports how many readings the sensor has classified in total and
// how many tripped each threshold since construction (or the last Reset).
func (s *Sensor) Trips() (samples, low, high uint64) {
	return s.samples, s.lowTrips, s.highTrips
}

// Reset clears the delay line, trip counts, and reseeds the noise stream.
func (s *Sensor) Reset(seed int64) {
	for i := range s.line {
		s.line[i] = 0
	}
	s.filled = 0
	s.samples, s.lowTrips, s.highTrips = 0, 0, 0
	s.rng = rand.New(rand.NewSource(seed))
}
