package bpred

import (
	"testing"

	"didt/internal/isa"
)

func newP(t *testing.T) *Predictor {
	t.Helper()
	p, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{BimodalEntries: 3},
		{GshareEntries: 100},
		{BTBEntries: -4},
		{RASEntries: -1, BimodalEntries: 4, GshareEntries: 4, ChooserEntries: 4, BTBEntries: 4},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestUnconditionalAlwaysPredictedTaken(t *testing.T) {
	p := newP(t)
	in := isa.Instr{Op: isa.JMP, Imm: 42}
	pr := p.Lookup(7, in)
	if !pr.Taken || pr.Target != 42 || !pr.HitBTB {
		t.Errorf("jmp prediction: %+v", pr)
	}
	if ok := p.Resolve(7, in, pr, true, 42); !ok {
		t.Error("jmp must resolve correct")
	}
}

func TestLoopBranchLearnsTaken(t *testing.T) {
	p := newP(t)
	in := isa.Instr{Op: isa.BNEZ, Src1: 1, Imm: 3}
	pc := 10
	correct := 0
	for i := 0; i < 100; i++ {
		pr := p.Lookup(pc, in)
		if p.Resolve(pc, in, pr, true, 3) {
			correct++
		}
	}
	if correct < 95 {
		t.Errorf("loop branch: %d/100 correct, want >=95", correct)
	}
}

func TestBTBColdMissThenLearn(t *testing.T) {
	p := newP(t)
	in := isa.Instr{Op: isa.BNEZ, Src1: 1, Imm: 5}
	pr := p.Lookup(20, in)
	// Cold BTB: even if direction said taken, no target -> fall-through.
	if pr.Taken {
		t.Errorf("cold lookup should predict fall-through, got %+v", pr)
	}
	p.Resolve(20, in, pr, true, 5)
	// Warm it up past the counters.
	for i := 0; i < 4; i++ {
		pr = p.Lookup(20, in)
		p.Resolve(20, in, pr, true, 5)
	}
	pr = p.Lookup(20, in)
	if !pr.Taken || pr.Target != 5 {
		t.Errorf("after training: %+v", pr)
	}
}

func TestAlternatingPatternGshareLearns(t *testing.T) {
	// T,N,T,N... is hard for bimodal but trivial for gshare with history.
	p := newP(t)
	in := isa.Instr{Op: isa.BEQZ, Src1: 1, Imm: 2}
	pc := 30
	// Train BTB and counters.
	correct := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		pr := p.Lookup(pc, in)
		tgt := 2
		if !taken {
			tgt = pc + 1
		}
		if p.Resolve(pc, in, pr, taken, tgt) && i >= 200 {
			correct++
		}
	}
	if correct < 180 {
		t.Errorf("alternating branch after warmup: %d/200 correct", correct)
	}
}

func TestCallRetUsesRAS(t *testing.T) {
	p := newP(t)
	call := isa.Instr{Op: isa.CALL, Imm: 100}
	ret := isa.Instr{Op: isa.RET}
	prCall := p.Lookup(5, call)
	if !prCall.Taken || prCall.Target != 100 {
		t.Fatalf("call prediction: %+v", prCall)
	}
	p.Resolve(5, call, prCall, true, 100)
	prRet := p.Lookup(100, ret)
	if !prRet.Taken || prRet.Target != 6 || !prRet.HitBTB {
		t.Errorf("ret should pop 6 from RAS: %+v", prRet)
	}
	p.Resolve(100, ret, prRet, true, 6)
}

func TestNestedCallsRAS(t *testing.T) {
	p := newP(t)
	// call from 1 -> 10, call from 11 -> 20, ret -> 12, ret -> 2.
	c1 := isa.Instr{Op: isa.CALL, Imm: 10}
	c2 := isa.Instr{Op: isa.CALL, Imm: 20}
	r := isa.Instr{Op: isa.RET}
	p.Resolve(1, c1, p.Lookup(1, c1), true, 10)
	p.Resolve(11, c2, p.Lookup(11, c2), true, 20)
	pr := p.Lookup(20, r)
	if pr.Target != 12 {
		t.Errorf("inner ret: got %d, want 12", pr.Target)
	}
	p.Resolve(20, r, pr, true, 12)
	pr = p.Lookup(12, r)
	if pr.Target != 2 {
		t.Errorf("outer ret: got %d, want 2", pr.Target)
	}
}

func TestRASRecoversOnMisprediction(t *testing.T) {
	p := newP(t)
	call := isa.Instr{Op: isa.CALL, Imm: 50}
	// A mispredicted conditional before the call squashes speculative RAS
	// pushes from the wrong path.
	cond := isa.Instr{Op: isa.BNEZ, Src1: 1, Imm: 9}
	prCond := p.Lookup(3, cond)
	// Wrong path executes a call speculatively.
	p.Lookup(4, call)
	// Now the conditional resolves mispredicted: RAS must rewind.
	p.Resolve(3, cond, prCond, !prCond.Taken, 9)
	if p.rasTop != 0 {
		t.Errorf("RAS not recovered: top=%d", p.rasTop)
	}
}

func TestRASOverflowShifts(t *testing.T) {
	p := newP(t)
	call := isa.Instr{Op: isa.CALL, Imm: 1}
	for i := 0; i < 70; i++ {
		pr := p.Lookup(i, call)
		p.Resolve(i, call, pr, true, 1)
	}
	// Stack holds the most recent 64 return addresses; next pop must be 70.
	pr := p.Lookup(1, isa.Instr{Op: isa.RET})
	if pr.Target != 70 {
		t.Errorf("after overflow, top = %d, want 70", pr.Target)
	}
}

func TestMispredRateCounts(t *testing.T) {
	p := newP(t)
	in := isa.Instr{Op: isa.BNEZ, Src1: 1, Imm: 1}
	pr := p.Lookup(8, in)
	p.Resolve(8, in, pr, !pr.Taken, 9) // force one mispredict
	if p.MispredRate() == 0 {
		t.Error("mispredict not counted")
	}
	if p.Lookups != 1 {
		t.Errorf("lookups = %d", p.Lookups)
	}
}

func TestDistinctBranchesDoNotAlias(t *testing.T) {
	p := newP(t)
	a := isa.Instr{Op: isa.BNEZ, Src1: 1, Imm: 2}
	b := isa.Instr{Op: isa.BEQZ, Src1: 2, Imm: 4}
	// Train a taken, b not-taken at PCs that do not collide in the tables.
	for i := 0; i < 50; i++ {
		pra := p.Lookup(100, a)
		p.Resolve(100, a, pra, true, 2)
		prb := p.Lookup(200, b)
		p.Resolve(200, b, prb, false, 201)
	}
	if pr := p.Lookup(100, a); !pr.Taken {
		t.Error("branch a should predict taken")
	}
	if pr := p.Lookup(200, b); pr.Taken {
		t.Error("branch b should predict not-taken")
	}
}
