// Package bpred implements the branch prediction hardware of Table 1: a
// combined predictor (64Kbit bimodal + 64Kbit gshare selected by a 64Kbit
// chooser), a 1K-entry branch target buffer, and a 64-entry return-address
// stack.
//
// All predictor state is speculative in the same way SimpleScalar's is:
// counters update at resolution with the true outcome, and the RAS is
// checkpointed/recovered by the core on misprediction.
package bpred

import (
	"fmt"

	"didt/internal/isa"
)

// Config sizes the predictor structures. Table sizes are in two-bit
// counters (so 32768 counters = 64Kbit, the paper's "64Kb").
type Config struct {
	BimodalEntries int // power of two
	GshareEntries  int // power of two; history bits = log2
	ChooserEntries int // power of two
	BTBEntries     int // power of two, direct-mapped on PC
	RASEntries     int
}

// DefaultConfig is the Table 1 configuration.
func DefaultConfig() Config {
	return Config{
		BimodalEntries: 32768, // 64Kbit
		GshareEntries:  32768, // 64Kbit
		ChooserEntries: 32768, // 64Kbit
		BTBEntries:     1024,
		RASEntries:     64,
	}
}

func (c Config) validate() error {
	for _, v := range []struct {
		name string
		n    int
	}{
		{"BimodalEntries", c.BimodalEntries},
		{"GshareEntries", c.GshareEntries},
		{"ChooserEntries", c.ChooserEntries},
		{"BTBEntries", c.BTBEntries},
	} {
		if v.n <= 0 || v.n&(v.n-1) != 0 {
			return fmt.Errorf("bpred: %s must be a positive power of two, got %d", v.name, v.n)
		}
	}
	if c.RASEntries <= 0 {
		return fmt.Errorf("bpred: RASEntries must be positive, got %d", c.RASEntries)
	}
	return nil
}

// Predictor is the combined branch predictor. It is not safe for
// concurrent use.
type Predictor struct {
	cfg      Config
	bimodal  []uint8 // 2-bit counters
	gshare   []uint8
	chooser  []uint8 // 2-bit: high half prefers gshare
	history  uint64  // global history register (speculative)
	histBits uint

	btb []btbEntry

	ras    []int
	rasTop int // number of valid entries

	// Statistics.
	Lookups     uint64
	DirMispred  uint64 // conditional direction mispredictions
	TargMispred uint64 // target mispredictions (BTB / RAS misses)
}

type btbEntry struct {
	valid  bool
	pc     int
	target int
}

// New builds a predictor; zero-valued Config fields take defaults.
func New(cfg Config) (*Predictor, error) {
	d := DefaultConfig()
	if cfg.BimodalEntries == 0 {
		cfg.BimodalEntries = d.BimodalEntries
	}
	if cfg.GshareEntries == 0 {
		cfg.GshareEntries = d.GshareEntries
	}
	if cfg.ChooserEntries == 0 {
		cfg.ChooserEntries = d.ChooserEntries
	}
	if cfg.BTBEntries == 0 {
		cfg.BTBEntries = d.BTBEntries
	}
	if cfg.RASEntries == 0 {
		cfg.RASEntries = d.RASEntries
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, cfg.BimodalEntries),
		gshare:  make([]uint8, cfg.GshareEntries),
		chooser: make([]uint8, cfg.ChooserEntries),
		btb:     make([]btbEntry, cfg.BTBEntries),
		ras:     make([]int, cfg.RASEntries),
	}
	for n := cfg.GshareEntries; n > 1; n >>= 1 {
		p.histBits++
	}
	// Weakly taken initial state behaves best for loop-heavy code.
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 1 // weakly prefer bimodal
	}
	return p, nil
}

// Prediction is the front end's view of one branch.
type Prediction struct {
	Taken  bool
	Target int  // meaningful if Taken
	HitBTB bool // whether a target was available

	// Snapshot for recovery and update.
	history uint64
	rasTop  int
	usedRAS bool
}

// Lookup predicts the branch at pc. The instruction is passed so the
// predictor can special-case unconditional jumps, calls and returns the way
// real front ends do (decode-assisted prediction).
func (p *Predictor) Lookup(pc int, in isa.Instr) Prediction {
	p.Lookups++
	pred := Prediction{history: p.history, rasTop: p.rasTop}
	switch in.Op {
	case isa.JMP, isa.CALL:
		pred.Taken = true
		pred.Target = int(in.Imm)
		pred.HitBTB = true
		if in.Op == isa.CALL {
			p.push(pc + 1)
		}
		return pred
	case isa.RET:
		pred.Taken = true
		pred.usedRAS = true
		if t, ok := p.pop(); ok {
			pred.Target = t
			pred.HitBTB = true
		}
		return pred
	}
	// Conditional: combined direction prediction.
	bi := p.bimodal[pc&(p.cfg.BimodalEntries-1)]
	gi := p.gshare[p.gshareIndex(pc)]
	ch := p.chooser[pc&(p.cfg.ChooserEntries-1)]
	var taken bool
	if ch >= 2 {
		taken = gi >= 2
	} else {
		taken = bi >= 2
	}
	pred.Taken = taken
	if taken {
		if e := p.btb[pc&(p.cfg.BTBEntries-1)]; e.valid && e.pc == pc {
			pred.Target = e.target
			pred.HitBTB = true
		} else {
			// No target known: front end cannot redirect; predict
			// fall-through and let resolution fix it up.
			pred.Taken = false
		}
	}
	// Speculative history update with the predicted direction.
	p.history = (p.history << 1) | b2u(pred.Taken)
	return pred
}

func (p *Predictor) gshareIndex(pc int) int {
	mask := uint64(p.cfg.GshareEntries - 1)
	return int((uint64(pc) ^ (p.history & ((1 << p.histBits) - 1))) & mask)
}

// Resolve updates predictor state with the true outcome of a previously
// looked-up branch. correct reports whether the front end's prediction
// (direction and target) matched.
func (p *Predictor) Resolve(pc int, in isa.Instr, pred Prediction, taken bool, target int) (correct bool) {
	correct = pred.Taken == taken && (!taken || pred.Target == target)
	if in.IsConditional() {
		// Update direction tables using the *lookup-time* history the
		// gshare index was computed with.
		savedHist := p.history
		p.history = pred.history
		gIdx := p.gshareIndex(pc)
		p.history = savedHist

		bIdx := pc & (p.cfg.BimodalEntries - 1)
		cIdx := pc & (p.cfg.ChooserEntries - 1)
		bCorrect := (p.bimodal[bIdx] >= 2) == taken
		gCorrect := (p.gshare[gIdx] >= 2) == taken
		p.bimodal[bIdx] = bump(p.bimodal[bIdx], taken)
		p.gshare[gIdx] = bump(p.gshare[gIdx], taken)
		if bCorrect != gCorrect {
			p.chooser[cIdx] = bump(p.chooser[cIdx], gCorrect)
		}
		if pred.Taken != taken {
			p.DirMispred++
		} else if taken && pred.Target != target {
			p.TargMispred++
		}
	} else if !correct {
		p.TargMispred++
	}
	if taken {
		e := &p.btb[pc&(p.cfg.BTBEntries-1)]
		e.valid, e.pc, e.target = true, pc, target
	}
	if !correct {
		// Squash wrong-path history and RAS speculation, then append the
		// true outcome.
		p.history = (pred.history << 1) | b2u(taken)
		p.rasTop = pred.rasTop
		if in.Op == isa.CALL {
			p.push(pc + 1)
		}
	}
	return correct
}

func (p *Predictor) push(ret int) {
	if p.rasTop < len(p.ras) {
		p.ras[p.rasTop] = ret
		p.rasTop++
	} else {
		// Overflow: shift (cheap for 64 entries, rare in practice).
		copy(p.ras, p.ras[1:])
		p.ras[len(p.ras)-1] = ret
	}
}

func (p *Predictor) pop() (int, bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop], true
}

func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// MispredRate returns the fraction of lookups that were mispredicted.
func (p *Predictor) MispredRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.DirMispred+p.TargMispred) / float64(p.Lookups)
}
