package fft

import (
	"math"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(re, im []float64) ([]float64, []float64) {
	n := len(re)
	or := make([]float64, n)
	oi := make([]float64, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			theta := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			c, s := math.Cos(theta), math.Sin(theta)
			or[k] += re[t]*c - im[t]*s
			oi[k] += re[t]*s + im[t]*c
		}
	}
	return or, oi
}

// directConv is the O(n*m) reference causal convolution.
func directConv(h, x []float64) []float64 {
	y := make([]float64, len(x))
	for i := range x {
		for j := 0; j < len(h) && j <= i; j++ {
			y[i] += h[j] * x[i-j]
		}
	}
	return y
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestNewPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{-4, 0, 1, 3, 6, 12, 100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d): expected error", n)
		}
	}
	for _, n := range []int{2, 4, 8, 1024} {
		if _, err := NewPlan(n); err != nil {
			t.Errorf("NewPlan(%d): %v", n, err)
		}
	}
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 64, 256} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		re := make([]float64, n)
		im := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			im[i] = rng.NormFloat64()
		}
		wantRe, wantIm := naiveDFT(re, im)
		p.Forward(re, im)
		if d := maxAbsDiff(re, wantRe); d > 1e-9 {
			t.Errorf("n=%d: re error %g", n, d)
		}
		if d := maxAbsDiff(im, wantIm); d > 1e-9 {
			t.Errorf("n=%d: im error %g", n, d)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 128, 4096} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		re := make([]float64, n)
		im := make([]float64, n)
		orig := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			orig[i] = re[i]
		}
		p.Forward(re, im)
		p.Inverse(re, im)
		if d := maxAbsDiff(re, orig); d > 1e-11 {
			t.Errorf("n=%d: round-trip re error %g", n, d)
		}
		for i, v := range im {
			if math.Abs(v) > 1e-11 {
				t.Errorf("n=%d: im[%d] = %g after round trip", n, i, v)
				break
			}
		}
	}
}

func TestNewKernelValidation(t *testing.T) {
	if _, err := NewKernel(nil, 0); err == nil {
		t.Error("empty kernel: expected error")
	}
	if _, err := NewKernel(make([]float64, 10), 8); err == nil {
		t.Error("fftSize <= len(h): expected error")
	}
	k, err := NewKernel(make([]float64, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.plan.n < 80 {
		t.Errorf("auto size %d < 8*m", k.plan.n)
	}
	if k.BlockStep() != k.plan.n-k.M()+1 {
		t.Errorf("BlockStep %d != n-m+1", k.BlockStep())
	}
}

// TestConvolveMatchesDirect sweeps kernel lengths and trace lengths around
// the overlap-save block boundary: shorter than one block, exactly one
// block, one off either side, and many blocks.
func TestConvolveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range []int{1, 2, 7, 64, 573} {
		h := make([]float64, m)
		for i := range h {
			h[i] = rng.NormFloat64() * math.Exp(-float64(i)/float64(m))
		}
		k, err := NewKernel(h, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := k.NewScratch()
		step := k.BlockStep()
		for _, n := range []int{1, m, step - 1, step, step + 1, 3*step + 17} {
			if n < 1 {
				continue
			}
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			dst := make([]float64, n)
			k.Convolve(dst, x, s)
			want := directConv(h, x)
			if d := maxAbsDiff(dst, want); d > 1e-9 {
				t.Errorf("m=%d n=%d: max abs error %g", m, n, d)
			}
		}
	}
}

func TestConvolveScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := []float64{0.5, -0.25, 0.125}
	k, err := NewKernel(h, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := k.NewScratch()
	x := make([]float64, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	a := make([]float64, len(x))
	b := make([]float64, len(x))
	k.Convolve(a, x, s)
	k.Convolve(b, x, s) // same scratch, second pass must be identical
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scratch reuse changed output at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestConvolveZeroAlloc(t *testing.T) {
	h := make([]float64, 573)
	for i := range h {
		h[i] = math.Exp(-float64(i) / 100)
	}
	k, err := NewKernel(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := k.NewScratch()
	x := make([]float64, 10000)
	for i := range x {
		x[i] = float64(i % 17)
	}
	dst := make([]float64, len(x))
	allocs := testing.AllocsPerRun(5, func() {
		k.Convolve(dst, x, s)
	})
	if allocs != 0 {
		t.Errorf("Convolve allocated %v times per run; want 0", allocs)
	}
}

func BenchmarkConvolve(b *testing.B) {
	h := make([]float64, 573)
	for i := range h {
		h[i] = math.Exp(-float64(i) / 100)
	}
	k, err := NewKernel(h, 0)
	if err != nil {
		b.Fatal(err)
	}
	s := k.NewScratch()
	x := make([]float64, 90000)
	for i := range x {
		x[i] = float64(i % 23)
	}
	dst := make([]float64, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Convolve(dst, x, s)
	}
}
