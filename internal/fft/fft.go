// Package fft implements the radix-2 fast Fourier transform and the
// overlap-save block convolver built on it. It exists for one job: turning
// the O(cycles x taps) open-loop PDN convolution into
// O(cycles log taps) when the whole current trace is known up front
// (Network.VoltageTrace, envelope characterization, offline analysis).
// The closed feedback loop never uses it — there the next input depends on
// the previous output, so the streaming per-tap convolution in
// internal/pdn remains the reference implementation.
//
// Everything here is stdlib-only and allocation-free on the hot path: a
// Plan precomputes twiddle factors and the bit-reversal permutation for
// one power-of-two size, a Kernel freezes one impulse response's spectrum
// (immutable, safe to share across goroutines), and a Scratch carries the
// per-goroutine work buffers.
//
// Accuracy: double-precision FFT round-off is a few ULPs per butterfly
// stage, so block-convolved outputs differ from the streaming convolver in
// the last bits only. The property tests in this package and in
// internal/pdn pin the agreement to <= 1e-9 absolute error against both
// the streaming path and the analytic internal/linsys responses.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan holds the precomputed tables for transforms of one power-of-two
// size n: the bit-reversal permutation and the twiddle factors
// e^{-2*pi*i*k/n} for k in [0, n/2). A Plan is immutable after
// construction and safe for concurrent use.
type Plan struct {
	n        int
	rev      []int32
	wre, wim []float64
}

// NewPlan builds transform tables for size n, which must be a power of two
// >= 2.
func NewPlan(n int) (*Plan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: size %d is not a power of two >= 2", n)
	}
	p := &Plan{n: n, rev: make([]int32, n), wre: make([]float64, n/2), wim: make([]float64, n/2)}
	shift := 32 - uint(bits.TrailingZeros(uint(n)))
	for i := range p.rev {
		p.rev[i] = int32(bits.Reverse32(uint32(i)) >> shift)
	}
	for k := range p.wre {
		// Exact-angle evaluation per index keeps twiddles accurate to one
		// ULP; recurrence-based generation would accumulate error across
		// the table.
		theta := -2 * math.Pi * float64(k) / float64(n)
		p.wre[k] = math.Cos(theta)
		p.wim[k] = math.Sin(theta)
	}
	return p, nil
}

// N reports the transform size.
func (p *Plan) N() int { return p.n }

// Forward computes the in-place forward DFT of the complex sequence
// (re, im), both of which must have length N. Zero allocations.
//
//didt:hotpath
func (p *Plan) Forward(re, im []float64) {
	n := p.n
	_ = re[n-1]
	_ = im[n-1]
	for i, j := range p.rev {
		if int32(i) < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				wr := p.wre[k*step]
				wi := p.wim[k*step]
				i1 := start + k
				i2 := i1 + half
				tr := re[i2]*wr - im[i2]*wi
				ti := re[i2]*wi + im[i2]*wr
				re[i2] = re[i1] - tr
				im[i2] = im[i1] - ti
				re[i1] += tr
				im[i1] += ti
			}
		}
	}
}

// Inverse computes the in-place inverse DFT of (re, im), scaled by 1/N.
// It uses the conjugation identity IDFT(x) = swap(DFT(swap(x)))/N, so one
// twiddle table serves both directions. Zero allocations.
//
//didt:hotpath
func (p *Plan) Inverse(re, im []float64) {
	p.Forward(im, re)
	inv := 1 / float64(p.n)
	for i := range re {
		re[i] *= inv
		im[i] *= inv
	}
}

// Kernel is one impulse response frozen for overlap-save convolution: the
// plan for the chosen FFT size plus the kernel's precomputed spectrum.
// Immutable after construction and safe to share across goroutines; the
// mutable per-call state lives in Scratch.
type Kernel struct {
	plan *Plan
	m    int // kernel taps
	step int // fresh input samples consumed per block: N - m + 1
	hre  []float64
	him  []float64
}

// NewKernel freezes the impulse response h for block convolution. fftSize
// selects the transform size (power of two, > len(h)); fftSize <= 0 picks
// the smallest power of two >= 8*len(h), which keeps the per-sample cost
// near its minimum (the cost curve is flat between 4x and 16x).
func NewKernel(h []float64, fftSize int) (*Kernel, error) {
	m := len(h)
	if m == 0 {
		return nil, fmt.Errorf("fft: empty kernel")
	}
	if fftSize <= 0 {
		fftSize = 2
		for fftSize < 8*m {
			fftSize <<= 1
		}
	}
	if fftSize <= m {
		return nil, fmt.Errorf("fft: size %d must exceed kernel length %d", fftSize, m)
	}
	plan, err := NewPlan(fftSize)
	if err != nil {
		return nil, err
	}
	k := &Kernel{
		plan: plan,
		m:    m,
		step: fftSize - m + 1,
		hre:  make([]float64, fftSize),
		him:  make([]float64, fftSize),
	}
	copy(k.hre, h)
	plan.Forward(k.hre, k.him)
	return k, nil
}

// M reports the kernel length in taps.
func (k *Kernel) M() int { return k.m }

// BlockStep reports the number of fresh input samples each FFT block
// consumes (N - M + 1); the property tests sweep trace lengths around this
// boundary.
func (k *Kernel) BlockStep() int { return k.step }

// Scratch is the mutable work area for one goroutine's convolutions.
type Scratch struct {
	re, im []float64
}

// NewScratch allocates a work area sized for this kernel's plan.
func (k *Kernel) NewScratch() *Scratch {
	return &Scratch{re: make([]float64, k.plan.n), im: make([]float64, k.plan.n)}
}

// Convolve computes the causal linear convolution
//
//	dst[i] = sum_{j=0}^{m-1} h[j] * x[i-j]   (x[t] = 0 for t < 0)
//
// for i in [0, len(x)) by overlap-save blocks, writing into dst, which
// must have length >= len(x) and must not alias x. s must come from
// k.NewScratch (one per goroutine). Zero allocations.
//
//didt:hotpath
func (k *Kernel) Convolve(dst, x []float64, s *Scratch) {
	n := k.plan.n
	re, im := s.re, s.im
	for s0 := 0; s0 < len(x); s0 += k.step {
		// Load the block: m-1 samples of history then the fresh samples,
		// zero-padded outside the trace.
		base := s0 - (k.m - 1)
		for i := 0; i < n; i++ {
			t := base + i
			if t >= 0 && t < len(x) {
				re[i] = x[t]
			} else {
				re[i] = 0
			}
			im[i] = 0
		}
		k.plan.Forward(re, im)
		for i := 0; i < n; i++ {
			ar, ai := re[i], im[i]
			br, bi := k.hre[i], k.him[i]
			re[i] = ar*br - ai*bi
			im[i] = ar*bi + ai*br
		}
		k.plan.Inverse(re, im)
		// Outputs m-1..n-1 of the circular convolution are the valid
		// linear-convolution samples y[s0 .. s0+step-1].
		limit := k.step
		if rem := len(x) - s0; rem < limit {
			limit = rem
		}
		for j := 0; j < limit; j++ {
			dst[s0+j] = re[k.m-1+j]
		}
	}
}
