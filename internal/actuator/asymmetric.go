package actuator

import (
	"didt/internal/cpu"
	"didt/internal/power"
	"didt/internal/sensor"
)

// Responder is the controller-facing actuation interface. Mechanism is the
// symmetric implementation the paper evaluates; Asymmetric realizes the
// Section 6 proposal of using different mechanisms for voltage-high and
// voltage-low emergencies ("some CPU units are better suited for easy
// clock-gating while other units are easier to control for
// phantom-firings").
type Responder interface {
	// Label names the responder for reports.
	Label() string
	// Respond maps a sensed level to gating and phantom-firing decisions.
	Respond(l sensor.Level) (cpu.Gating, power.Phantom)
	// Envelope reports the current authority: the deepest floor gating can
	// force and the highest ceiling phantom firing can reach.
	Envelope(pm *power.Model) (floor, ceil float64)
}

// Label implements Responder for the symmetric mechanism.
func (m Mechanism) Label() string { return m.Name }

var _ Responder = Mechanism{}

// Asymmetric pairs a gating scope (voltage-low response) with an
// independent phantom-firing scope (voltage-high response).
type Asymmetric struct {
	Name string
	Low  Mechanism // units clock-gated on a voltage-low reading
	High Mechanism // units phantom-fired on a voltage-high reading
}

var _ Responder = Asymmetric{}

// Label implements Responder.
func (a Asymmetric) Label() string { return a.Name }

// Respond implements Responder: Low uses the gating scope, High the
// phantom scope.
func (a Asymmetric) Respond(l sensor.Level) (cpu.Gating, power.Phantom) {
	switch l {
	case sensor.Low:
		g, _ := a.Low.Respond(sensor.Low)
		return g, power.Phantom{}
	case sensor.High:
		_, p := a.High.Respond(sensor.High)
		return cpu.Gating{}, p
	}
	return cpu.Gating{}, power.Phantom{}
}

// Envelope implements Responder: the floor comes from the gating scope and
// the ceiling from the phantom scope.
func (a Asymmetric) Envelope(pm *power.Model) (floor, ceil float64) {
	floor, _ = a.Low.Envelope(pm)
	_, ceil = a.High.Envelope(pm)
	return floor, ceil
}

// GateWideFireNarrow is the natural Section 6 pairing: the wide-scope
// mechanism handles the common voltage-low emergencies (caches are easy to
// clock-gate) while phantom firing — which burns energy for no work — is
// confined to the functional units.
var GateWideFireNarrow = Asymmetric{
	Name: "gate FU/DL1/IL1, fire FU",
	Low:  FUDL1IL1,
	High: FU,
}
