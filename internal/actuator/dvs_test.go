package actuator

import (
	"math"
	"testing"

	"didt/internal/cpu"
	"didt/internal/power"
	"didt/internal/sensor"
)

func TestDVSDefaults(t *testing.T) {
	d := NewDVS(FU, nil, 10, 60, 0)
	if len(d.Steps) != 3 || d.Steps[0] != 1 {
		t.Errorf("default steps %v", d.Steps)
	}
	if d.CurrentExponent != 2 {
		t.Errorf("default exponent %g", d.CurrentExponent)
	}
	if d.Scale() != 1 || d.CurrentScale() != 1 {
		t.Errorf("initial operating point %g/%g, want 1/1", d.Scale(), d.CurrentScale())
	}
	if d.Label() != "FU+dvs" {
		t.Errorf("label %q", d.Label())
	}
}

func TestDVSPassesInnerResponseThrough(t *testing.T) {
	d := NewDVS(FUDL1IL1, nil, 0, 0, 2)
	for _, l := range []sensor.Level{sensor.Low, sensor.Normal, sensor.High} {
		g, p := d.Respond(l)
		wg, wp := FUDL1IL1.Respond(l)
		if g != wg || p != wp {
			t.Errorf("level %v: response (%+v,%+v) != inner (%+v,%+v)", l, g, p, wg, wp)
		}
	}
}

func TestDVSStepsDownWithLatencyAndBackUpAfterHold(t *testing.T) {
	d := NewDVS(FU, []float64{1, 0.9, 0.8}, 5, 20, 2)
	// One Low starts a transition; the step commits only after the
	// 5-cycle latency, during which the operating point is unchanged.
	d.Observe(sensor.Low)
	for i := 0; i < 4; i++ {
		if d.Scale() != 1 {
			t.Fatalf("cycle %d: stepped before latency elapsed (scale %g)", i, d.Scale())
		}
		d.Observe(sensor.Normal)
	}
	d.Observe(sensor.Normal)
	if d.Scale() != 0.9 || d.StepDowns != 1 {
		t.Fatalf("after latency: scale %g downs %d, want 0.9/1", d.Scale(), d.StepDowns)
	}
	if want := math.Pow(0.9, 2); d.CurrentScale() != want {
		t.Errorf("current scale %g, want %g", d.CurrentScale(), want)
	}
	// Sustained pressure reaches the bottom step and stays there.
	for i := 0; i < 50; i++ {
		d.Observe(sensor.Low)
	}
	if d.Scale() != 0.8 {
		t.Fatalf("sustained pressure: scale %g, want 0.8", d.Scale())
	}
	// Quiet for HoldCycles steps back up (one latency per step).
	for i := 0; i < 2*(20+5)+2; i++ {
		d.Observe(sensor.Normal)
	}
	if d.Scale() != 1 || d.StepUps < 2 {
		t.Errorf("after quiet: scale %g ups %d, want 1.0 and >=2", d.Scale(), d.StepUps)
	}
}

func TestDVSLowDuringQuietResetsHold(t *testing.T) {
	d := NewDVS(FU, []float64{1, 0.9}, 0, 10, 2)
	d.Observe(sensor.Low) // instantaneous (zero latency)
	if d.Scale() != 0.9 {
		t.Fatalf("zero-latency step did not commit: %g", d.Scale())
	}
	// 9 quiet cycles, then pressure again: the hold countdown restarts,
	// so 9 more quiet cycles must not step up.
	for i := 0; i < 9; i++ {
		d.Observe(sensor.Normal)
	}
	d.Observe(sensor.Low)
	for i := 0; i < 9; i++ {
		d.Observe(sensor.Normal)
	}
	if d.Scale() != 0.9 {
		t.Errorf("stepped up before a full quiet hold: %g", d.Scale())
	}
	d.Observe(sensor.Normal)
	if d.Scale() != 1 {
		t.Errorf("full hold elapsed but no step up: %g", d.Scale())
	}
}

func TestDVSDrivenModeIgnoresRespond(t *testing.T) {
	d := NewDVS(FU, []float64{1, 0.9}, 0, 5, 2)
	d.Driven = true
	for i := 0; i < 10; i++ {
		d.Respond(sensor.Low)
	}
	if d.Scale() != 1 {
		t.Errorf("driven schedule advanced through Respond: %g", d.Scale())
	}
	d.Observe(sensor.Low)
	if d.Scale() != 0.9 {
		t.Errorf("driven schedule ignored Observe: %g", d.Scale())
	}
}

func TestDVSEnvelopeDelegates(t *testing.T) {
	pm := power.New(power.Params{}, cpu.DefaultConfig())
	d := NewDVS(FUDL1, nil, 10, 60, 2)
	f, c := d.Envelope(pm)
	wf, wc := FUDL1.Envelope(pm)
	if f != wf || c != wc {
		t.Errorf("envelope (%g,%g) != inner (%g,%g)", f, c, wf, wc)
	}
}

func TestDVSReset(t *testing.T) {
	d := NewDVS(FU, []float64{1, 0.9}, 0, 5, 2)
	d.Observe(sensor.Low)
	d.Reset()
	if d.Scale() != 1 || d.StepDowns != 0 || d.StepUps != 0 {
		t.Errorf("reset left state: scale %g downs %d ups %d", d.Scale(), d.StepDowns, d.StepUps)
	}
}
