package actuator

import (
	"math"
	"testing"

	"didt/internal/cpu"
	"didt/internal/power"
	"didt/internal/sensor"
)

func TestRespondMapsLevels(t *testing.T) {
	for _, m := range Granularities() {
		g, ph := m.Respond(sensor.Low)
		if g.FUs != m.FUs || g.DL1 != m.DL1 || g.IL1 != m.IL1 {
			t.Errorf("%s low: gating %+v", m.Name, g)
		}
		if ph != (power.Phantom{}) {
			t.Errorf("%s low: phantom should be off", m.Name)
		}
		g, ph = m.Respond(sensor.High)
		if g != (cpu.Gating{}) {
			t.Errorf("%s high: gating should be off", m.Name)
		}
		if ph.FUs != m.FUs || ph.DL1 != m.DL1 || ph.IL1 != m.IL1 {
			t.Errorf("%s high: phantom %+v", m.Name, ph)
		}
		g, ph = m.Respond(sensor.Normal)
		if g != (cpu.Gating{}) || ph != (power.Phantom{}) {
			t.Errorf("%s normal: should release everything", m.Name)
		}
	}
}

func TestGranularitiesOrdering(t *testing.T) {
	gs := Granularities()
	if len(gs) != 3 || gs[0].Name != "FU" || gs[2].Name != "FU/DL1/IL1" {
		t.Errorf("granularities: %+v", gs)
	}
}

func TestEnvelopeAuthorityGrowsWithScope(t *testing.T) {
	pm := power.New(power.Params{}, cpu.DefaultConfig())
	prevFloor := math.Inf(1)
	prevCeil := math.Inf(-1)
	for _, m := range Granularities() {
		floor, ceil := m.Envelope(pm)
		if floor >= prevFloor {
			t.Errorf("%s: floor %g not below previous %g", m.Name, floor, prevFloor)
		}
		if ceil <= prevCeil {
			t.Errorf("%s: ceiling %g not above previous %g", m.Name, ceil, prevCeil)
		}
		prevFloor, prevCeil = floor, ceil
	}
	// FU-only is so weak its busy-chip floor exceeds its idle-chip ceiling
	// — the Section 5.2 leverage problem in one inequality.
	if f, c := FU.Envelope(pm); f <= c {
		t.Errorf("FU-only floor %g should exceed its ceiling %g", f, c)
	}
	// Ideal matches the widest real mechanism.
	fi, ci := Ideal.Envelope(pm)
	f3, c3 := FUDL1IL1.Envelope(pm)
	if fi != f3 || ci != c3 {
		t.Error("ideal envelope should equal FU/DL1/IL1")
	}
}

func TestAsymmetricRespond(t *testing.T) {
	a := GateWideFireNarrow
	g, ph := a.Respond(sensor.Low)
	if !g.FUs || !g.DL1 || !g.IL1 {
		t.Errorf("low response should gate the wide scope: %+v", g)
	}
	if ph != (power.Phantom{}) {
		t.Error("low response must not phantom-fire")
	}
	g, ph = a.Respond(sensor.High)
	if g != (cpu.Gating{}) {
		t.Error("high response must not gate")
	}
	if !ph.FUs || ph.DL1 || ph.IL1 {
		t.Errorf("high response should fire only the FU scope: %+v", ph)
	}
	g, ph = a.Respond(sensor.Normal)
	if g != (cpu.Gating{}) || ph != (power.Phantom{}) {
		t.Error("normal must release everything")
	}
}

func TestAsymmetricEnvelopeMixesScopes(t *testing.T) {
	pm := power.New(power.Params{}, cpu.DefaultConfig())
	floor, ceil := GateWideFireNarrow.Envelope(pm)
	wantFloor, _ := FUDL1IL1.Envelope(pm)
	_, wantCeil := FU.Envelope(pm)
	if floor != wantFloor {
		t.Errorf("floor %g, want the wide gating scope's %g", floor, wantFloor)
	}
	if ceil != wantCeil {
		t.Errorf("ceiling %g, want the narrow phantom scope's %g", ceil, wantCeil)
	}
}

func TestResponderLabels(t *testing.T) {
	if FUDL1.Label() != "FU/DL1" {
		t.Error("mechanism label")
	}
	if GateWideFireNarrow.Label() == "" {
		t.Error("asymmetric label empty")
	}
	// Both implement the Responder interface.
	var _ Responder = FU
	var _ Responder = GateWideFireNarrow
}
