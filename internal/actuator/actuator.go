// Package actuator implements the microarchitectural actuation mechanisms
// of Section 5. An actuator responds to the sensor's Low/Normal/High level
// by clock-gating its controlled units (voltage low: cut current quickly)
// or phantom-firing them (voltage high: burn current quickly). The three
// granularities evaluated in the paper are FU, FU/DL1 and FU/DL1/IL1;
// Ideal abstracts a perfect mechanism for the sensor study of Section 4.
package actuator

import (
	"fmt"
	"strings"

	"didt/internal/cpu"
	"didt/internal/power"
	"didt/internal/sensor"
)

// Mechanism names a set of controllable units.
type Mechanism struct {
	Name string
	FUs  bool // functional units (int + fp pipelines)
	DL1  bool // level-one data cache
	IL1  bool // level-one instruction cache
}

// The granularities of Section 5.1 plus the ideal mechanism of Section 4.
var (
	FU       = Mechanism{Name: "FU", FUs: true}
	FUDL1    = Mechanism{Name: "FU/DL1", FUs: true, DL1: true}
	FUDL1IL1 = Mechanism{Name: "FU/DL1/IL1", FUs: true, DL1: true, IL1: true}
	// Ideal gates everything controllable; Section 4 uses it to study
	// sensor properties in isolation from actuator limitations.
	Ideal = Mechanism{Name: "ideal", FUs: true, DL1: true, IL1: true}
)

// Granularities lists the real mechanisms in increasing scope, the order
// Figures 17/18 sweep them.
func Granularities() []Mechanism { return []Mechanism{FU, FUDL1, FUDL1IL1} }

// Names lists every mechanism name accepted by ByName, in increasing
// actuation scope.
func Names() []string { return []string{"FU", "FU/DL1", "FU/DL1/IL1", "ideal"} }

// ByName resolves a mechanism by its canonical name ("FU", "FU/DL1",
// "FU/DL1/IL1" or "ideal"). This is the single name registry behind
// spec.RunSpec, the CLIs and the server, so every layer accepts exactly
// the same vocabulary.
func ByName(name string) (Mechanism, error) {
	switch name {
	case "FU":
		return FU, nil
	case "FU/DL1":
		return FUDL1, nil
	case "FU/DL1/IL1":
		return FUDL1IL1, nil
	case "ideal":
		return Ideal, nil
	}
	return Mechanism{}, fmt.Errorf("unknown mechanism %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// Respond maps a sensed level to gating and phantom-firing decisions: a
// Low reading gates the controlled units (dropping current so the supply
// recovers), a High reading phantom-fires them (raising current to pull
// the supply down), and Normal releases both.
//
//didt:hotpath
func (m Mechanism) Respond(l sensor.Level) (cpu.Gating, power.Phantom) {
	switch l {
	case sensor.Low:
		return cpu.Gating{FUs: m.FUs, DL1: m.DL1, IL1: m.IL1}, power.Phantom{}
	case sensor.High:
		return cpu.Gating{}, power.Phantom{FUs: m.FUs, DL1: m.DL1, IL1: m.IL1}
	}
	return cpu.Gating{}, power.Phantom{}
}

// Envelope reports the current range this mechanism can force, given a
// power model: Floor is the deepest dip gating can achieve, Ceil the
// highest rise phantom firing can achieve. The threshold solver uses these
// as the actuator's authority limits.
func (m Mechanism) Envelope(pm *power.Model) (floor, ceil float64) {
	return pm.GatedFloorCurrent(m.FUs, m.DL1, m.IL1),
		pm.PhantomCeilingCurrent(m.FUs, m.DL1, m.IL1)
}

// Counting wraps a Responder and tallies how it is exercised — one plain
// integer increment per cycle, harvested once per run by the telemetry
// layer. The closed loop installs it around whatever responder a run
// configures, so actuation counts appear in metrics manifests for the
// paper's mechanisms and custom responders alike.
type Counting struct {
	R Responder

	LowResponses    uint64 // cycles responding to a voltage-low reading
	HighResponses   uint64 // cycles responding to a voltage-high reading
	NormalResponses uint64 // cycles with both actuations released
}

var _ Responder = (*Counting)(nil)

// Label implements Responder, delegating to the wrapped responder.
func (c *Counting) Label() string { return c.R.Label() }

// Respond implements Responder, counting by sensed level.
//
//didt:hotpath
func (c *Counting) Respond(l sensor.Level) (cpu.Gating, power.Phantom) {
	switch l {
	case sensor.Low:
		c.LowResponses++
	case sensor.High:
		c.HighResponses++
	default:
		c.NormalResponses++
	}
	return c.R.Respond(l)
}

// Envelope implements Responder, delegating to the wrapped responder.
func (c *Counting) Envelope(pm *power.Model) (floor, ceil float64) {
	return c.R.Envelope(pm)
}
