package actuator

import (
	"math"

	"didt/internal/cpu"
	"didt/internal/power"
	"didt/internal/sensor"
)

// DVS layers dynamic voltage scaling over an inner gate/phantom-fire
// responder: sustained voltage-low pressure walks the operating point down
// a descending schedule of voltage/frequency steps (each transition paying
// a latency), and a quiet spell walks it back up. The operating point
// scales the chip's current draw by step^CurrentExponent (P ~ V^2·f gives
// an exponent near 2 with I = P/V), so a lower step both shrinks the
// transients that cause voltage-low emergencies and leaves the inner
// mechanism's cycle-scale gating to catch what remains — the two actuators
// compose through the one Responder interface.
type DVS struct {
	// Inner handles the cycle-scale gate/phantom response; its decisions
	// pass through unchanged.
	Inner Responder
	// Steps is the descending operating-point schedule (fractions of
	// nominal; Steps[0] must be 1).
	Steps []float64
	// TransitionCycles is the latency of one voltage/frequency step.
	TransitionCycles int
	// HoldCycles is the quiet time required before stepping back up.
	HoldCycles int
	// CurrentExponent relates the operating point to current draw.
	CurrentExponent float64
	// Driven marks the schedule as externally advanced: Respond then only
	// delegates, and the owner (the multi-rail loop, which binds the
	// schedule to one rail's sensor) calls Observe itself.
	Driven bool

	// StepDowns and StepUps count committed transitions.
	StepDowns uint64
	StepUps   uint64

	scales  []float64 // Steps[i]^CurrentExponent, precomputed
	level   int       // current index into Steps
	pending int       // target index of an in-flight transition
	wait    int       // cycles remaining in the in-flight transition
	quiet   int       // consecutive non-Low cycles since the last reset
}

var _ Responder = (*DVS)(nil)

// NewDVS builds a DVS responder around inner. Empty steps select the
// [1, 0.95, 0.9] default schedule; a zero exponent selects 2 (zero
// latencies are honored as written — an ideal instantaneous regulator).
func NewDVS(inner Responder, steps []float64, transitionCycles, holdCycles int, currentExponent float64) *DVS {
	if len(steps) == 0 {
		steps = []float64{1, 0.95, 0.9}
	}
	if currentExponent == 0 {
		currentExponent = 2
	}
	d := &DVS{
		Inner:            inner,
		Steps:            steps,
		TransitionCycles: transitionCycles,
		HoldCycles:       holdCycles,
		CurrentExponent:  currentExponent,
		scales:           make([]float64, len(steps)),
	}
	for i, s := range steps {
		d.scales[i] = math.Pow(s, currentExponent)
	}
	return d
}

// Label implements Responder.
func (d *DVS) Label() string { return d.Inner.Label() + "+dvs" }

// Envelope implements Responder, delegating to the inner mechanism: the
// solver's authority limits describe the cycle-scale actuator; DVS only
// ever shrinks the currents flowing through them, so the inner envelope
// stays a safe bound.
func (d *DVS) Envelope(pm *power.Model) (floor, ceil float64) {
	return d.Inner.Envelope(pm)
}

// Respond implements Responder: the inner mechanism's gating and phantom
// decisions pass through unchanged, and — unless the schedule is
// externally Driven — the observed level also advances the schedule.
//
//didt:hotpath
func (d *DVS) Respond(l sensor.Level) (cpu.Gating, power.Phantom) {
	if !d.Driven {
		d.Observe(l)
	}
	return d.Inner.Respond(l)
}

// Observe advances the voltage-step schedule one cycle with the given
// sensed level: Low pressure steps down (after TransitionCycles), and
// HoldCycles of quiet steps back up. The multi-rail loop calls this with
// the bound rail's level; the single-rail path goes through Respond.
//
//didt:hotpath
func (d *DVS) Observe(l sensor.Level) {
	if d.wait > 0 {
		d.wait--
		if d.wait == 0 {
			if d.pending > d.level {
				d.StepDowns++
			} else {
				d.StepUps++
			}
			d.level = d.pending
			d.quiet = 0
		}
		return
	}
	if l == sensor.Low {
		d.quiet = 0
		if d.level < len(d.Steps)-1 {
			d.begin(d.level + 1)
		}
		return
	}
	d.quiet++
	if d.level > 0 && d.quiet >= d.HoldCycles {
		d.begin(d.level - 1)
	}
}

func (d *DVS) begin(target int) {
	if d.TransitionCycles <= 0 {
		if target > d.level {
			d.StepDowns++
		} else {
			d.StepUps++
		}
		d.level = target
		d.quiet = 0
		return
	}
	d.pending = target
	d.wait = d.TransitionCycles
}

// Level returns the current schedule index.
func (d *DVS) Level() int { return d.level }

// Scale returns the current operating point as a fraction of nominal.
func (d *DVS) Scale() float64 { return d.Steps[d.level] }

// CurrentScale returns the factor the operating point applies to current
// draw (Scale^CurrentExponent, precomputed per step).
//
//didt:hotpath
func (d *DVS) CurrentScale() float64 { return d.scales[d.level] }

// Reset returns the schedule to full speed and zeroes the counters.
func (d *DVS) Reset() {
	d.level, d.pending, d.wait, d.quiet = 0, 0, 0, 0
	d.StepDowns, d.StepUps = 0, 0
}
