// Package quadrant implements the paper's final future-work item
// (Section 6): "improving the locality at which we model dI/dt effects.
// Local power supply swings in different chip quadrants can be an
// important issue to consider, in addition to the more global effects."
//
// The chip's power grid is modeled as a global second-order network (the
// package, exactly as in internal/pdn) plus one smaller second-order
// network per floorplan quadrant (the local grid segment feeding that
// region). A quadrant's supply voltage is the nominal rail minus the
// global droop (driven by total chip current) minus the local droop
// (driven by that quadrant's own current). Local grids resonate higher —
// the upper end of the paper's troublesome 50-200 MHz band — and expose
// emergencies a uniform model averages away: a quadrant whose units swing
// together (the execution cluster under the stressmark) dips further than
// the chip-wide mean.
package quadrant

import (
	"fmt"

	"didt/internal/pdn"
	"didt/internal/power"
)

// NumQuadrants is the floorplan partition size.
const NumQuadrants = 4

// Quadrant indexes the floorplan partition.
type Quadrant int

const (
	FrontEnd Quadrant = iota // fetch, branch prediction, I-cache, rename
	Execute                  // integer + fp pipelines, register file
	Memory                   // D-cache, LSQ, L2 interface
	Window                   // issue window, result bus, clock spine share
)

var quadrantNames = [NumQuadrants]string{"front-end", "execute", "memory", "window"}

// String names the quadrant.
func (q Quadrant) String() string {
	if q >= 0 && int(q) < NumQuadrants {
		return quadrantNames[q]
	}
	return fmt.Sprintf("quadrant(%d)", int(q))
}

// UnitQuadrant maps each power-model unit to its floorplan quadrant. The
// clock tree is distributed: its power is split evenly across quadrants.
func UnitQuadrant(u power.Unit) (Quadrant, bool) {
	switch u {
	case power.UnitFetch, power.UnitBpred, power.UnitL1I, power.UnitRename:
		return FrontEnd, true
	case power.UnitIntALU, power.UnitIntMult, power.UnitFPALU, power.UnitFPMult, power.UnitRegFile:
		return Execute, true
	case power.UnitL1D, power.UnitLSQ, power.UnitL2:
		return Memory, true
	case power.UnitWindow, power.UnitResultBus:
		return Window, true
	}
	return 0, false // distributed (clock)
}

// Params configures the localized model.
type Params struct {
	// Global network parameters (zero fields take pdn defaults). The
	// global network is calibrated against the whole-chip envelope.
	Global pdn.Params
	// ImpedancePct scales the global target impedance as in Table 2.
	ImpedancePct float64
	// LocalResonantHz is the per-quadrant grid resonance; defaults to
	// 150 MHz, the top of the paper's mid-frequency band.
	LocalResonantHz float64
	// LocalShare is the fraction of the +-5% budget allocated to local
	// droop when calibrating quadrant grids; default 0.4.
	LocalShare float64
}

func (p Params) withDefaults() Params {
	if p.ImpedancePct == 0 {
		p.ImpedancePct = 2
	}
	if p.LocalResonantHz == 0 {
		p.LocalResonantHz = 150e6
	}
	if p.LocalShare == 0 {
		p.LocalShare = 0.4
	}
	return p
}

// Model is the localized PDN: one global simulator plus one per quadrant.
// It is not safe for concurrent use.
type Model struct {
	params Params

	global    *pdn.Network
	globalSim *pdn.Simulator

	local    [NumQuadrants]*pdn.Network
	localSim [NumQuadrants]*pdn.Simulator

	// Per-quadrant quiescent and peak currents, used for calibration and
	// as each local loop's regulator reference.
	qMin [NumQuadrants]float64
	qMax [NumQuadrants]float64
}

// New builds the localized model for a power model whose chip-wide
// envelope is [iMin, iMax] (measured the same way core does).
func New(p Params, pm *power.Model, iMin, iMax float64) (*Model, error) {
	p = p.withDefaults()
	gp := p.Global
	gp.IFloor = 0.5 * (iMin + iMax)
	global, err := pdn.Calibrate(gp, iMin, iMax, p.ImpedancePct)
	if err != nil {
		return nil, fmt.Errorf("quadrant: global: %w", err)
	}
	m := &Model{params: p, global: global, globalSim: global.NewSimulator()}

	// Per-quadrant envelopes from the unit peak powers: the quadrant's
	// share of the chip envelope, apportioned by peak power.
	peaks := pm.Params().Peak
	var totalPeak float64
	var qPeak [NumQuadrants]float64
	for u := power.Unit(0); u < power.NumUnits; u++ {
		if q, ok := UnitQuadrant(u); ok {
			qPeak[q] += peaks[u]
		} else {
			for i := range qPeak {
				qPeak[i] += peaks[u] / NumQuadrants
			}
		}
		totalPeak += peaks[u]
	}
	for q := 0; q < NumQuadrants; q++ {
		share := qPeak[q] / totalPeak
		m.qMin[q] = iMin * share
		m.qMax[q] = iMax * share
		lp := pdn.Params{
			ResonantHz:   p.LocalResonantHz,
			DCResistance: p.Global.DCResistance, // same metal class
			Tolerance:    global.Params().Tolerance * p.LocalShare,
			VNominal:     global.Params().VNominal,
			IFloor:       0.5 * (m.qMin[q] + m.qMax[q]),
			ClockHz:      p.Global.ClockHz,
		}
		net, err := pdn.Calibrate(lp, m.qMin[q], m.qMax[q], p.ImpedancePct)
		if err != nil {
			return nil, fmt.Errorf("quadrant: %s: %w", Quadrant(q), err)
		}
		m.local[q] = net
		m.localSim[q] = net.NewSimulator()
	}
	return m, nil
}

// Global exposes the chip-level network.
func (m *Model) Global() *pdn.Network { return m.global }

// Local exposes a quadrant's network.
func (m *Model) Local(q Quadrant) *pdn.Network { return m.local[q] }

// CycleVoltages ingests one cycle's power report and returns the supply
// voltage seen by each quadrant plus the chip-wide (global-only) voltage.
func (m *Model) CycleVoltages(rep power.CycleReport) (global float64, locals [NumQuadrants]float64) {
	var qCur [NumQuadrants]float64
	for u := power.Unit(0); u < power.NumUnits; u++ {
		if q, ok := UnitQuadrant(u); ok {
			qCur[q] += rep.PerUnit[u]
		} else {
			for i := range qCur {
				qCur[i] += rep.PerUnit[u] / NumQuadrants
			}
		}
	}
	vNom := m.global.Params().VNominal
	global = m.globalSim.Step(rep.Current)
	globalDroop := vNom - global
	for q := 0; q < NumQuadrants; q++ {
		vLocal := m.localSim[q].Step(qCur[q] / m.global.Params().VNominal)
		localDroop := vNom - vLocal
		locals[q] = vNom - globalDroop - localDroop
	}
	return global, locals
}

// Band returns the emergency band shared by all quadrants (the chip's
// logic does not care which grid segment sagged).
func (m *Model) Band() (vMin, vMax float64) {
	return m.global.VMin(), m.global.VMax()
}
