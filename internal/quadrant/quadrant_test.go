package quadrant

import (
	"testing"

	"didt/internal/cpu"
	"didt/internal/isa"
	"didt/internal/power"
)

func newModel(t *testing.T) (*Model, *power.Model) {
	t.Helper()
	pm := power.New(power.Params{}, cpu.DefaultConfig())
	m, err := New(Params{}, pm, 11, 50)
	if err != nil {
		t.Fatal(err)
	}
	return m, pm
}

func TestUnitQuadrantPartition(t *testing.T) {
	counts := map[Quadrant]int{}
	distributed := 0
	for u := power.Unit(0); u < power.NumUnits; u++ {
		if q, ok := UnitQuadrant(u); ok {
			counts[q]++
		} else {
			distributed++
		}
	}
	if distributed != 1 {
		t.Errorf("expected exactly the clock tree to be distributed, got %d units", distributed)
	}
	for q := Quadrant(0); q < NumQuadrants; q++ {
		if counts[q] == 0 {
			t.Errorf("quadrant %s has no units", q)
		}
	}
}

func TestQuadrantNames(t *testing.T) {
	if FrontEnd.String() != "front-end" || Execute.String() != "execute" {
		t.Error("quadrant names")
	}
	if Quadrant(9).String() == "" {
		t.Error("out-of-range name empty")
	}
}

func TestQuiescentVoltagesNearNominal(t *testing.T) {
	m, pm := newModel(t)
	// Feed idle cycles: all voltages should sit near (slightly above)
	// nominal since idle current is below each regulator reference.
	var rep power.CycleReport
	for i := 0; i < 500; i++ {
		rep = pm.Step(&cpu.Activity{}, power.Phantom{})
		g, locals := m.CycleVoltages(rep)
		if g < 0.99 || g > 1.05 {
			t.Fatalf("cycle %d: global voltage %g implausible", i, g)
		}
		for q, v := range locals {
			if v < 0.98 || v > 1.06 {
				t.Fatalf("cycle %d: quadrant %s voltage %g implausible", i, Quadrant(q), v)
			}
		}
	}
}

func TestLocalSwingExceedsGlobalForClusteredActivity(t *testing.T) {
	m, pm := newModel(t)
	cfg := cpu.DefaultConfig()
	// Alternate every half resonant period of the LOCAL grid between an
	// execution-heavy burst and idle: the execute quadrant must see deeper
	// local dips than the chip-wide voltage indicates.
	period := int(3e9 / 150e6) // 20 cycles
	minGlobal, minExec := 2.0, 2.0
	for i := 0; i < 4000; i++ {
		var act cpu.Activity
		if i%period < period/2 {
			act.Issued = cfg.IssueWidth
			act.IssuedByClass[isa.ClassIntALU] = cfg.IntALU
			act.IssuedByClass[isa.ClassFPAdd] = cfg.FPALU
			act.RegReads = 16
			act.RegWrites = 8
		}
		rep := pm.Step(&act, power.Phantom{})
		g, locals := m.CycleVoltages(rep)
		if i < 1000 {
			continue // build up
		}
		if g < minGlobal {
			minGlobal = g
		}
		if locals[Execute] < minExec {
			minExec = locals[Execute]
		}
	}
	if minExec >= minGlobal {
		t.Errorf("execute-quadrant dip %.4f should undercut the global dip %.4f", minExec, minGlobal)
	}
}

func TestBandMatchesGlobal(t *testing.T) {
	m, _ := newModel(t)
	lo, hi := m.Band()
	if lo != m.Global().VMin() || hi != m.Global().VMax() {
		t.Error("band must come from the global network")
	}
}

func TestBadEnvelopeRejected(t *testing.T) {
	pm := power.New(power.Params{}, cpu.DefaultConfig())
	if _, err := New(Params{}, pm, 50, 11); err == nil {
		t.Error("want error for inverted envelope")
	}
}
