package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(0.5)
	h.Add(5.5)
	h.Add(5.6)
	h.Add(9.9)
	if h.Total() != 4 {
		t.Errorf("total %d", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[5] != 2 || h.Counts[9] != 1 {
		t.Errorf("counts %v", h.Counts)
	}
	if got := h.Mode(); got != 5.5 {
		t.Errorf("mode %g", got)
	}
	if got := h.Fraction(5); got != 0.5 {
		t.Errorf("fraction %g", got)
	}
}

func TestHistogramSaturatesEdges(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-100)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Errorf("edge saturation: %v", h.Counts)
	}
	if h.Total() != 2 {
		t.Error("out-of-range samples must still count")
	}
}

func TestHistogramSpread(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if h.Spread() != 0 {
		t.Error("empty spread")
	}
	h.Add(1.5)
	if h.Spread() != 0 {
		t.Error("single-bin spread should be 0")
	}
	h.Add(8.5)
	if got := h.Spread(); got != 7 {
		t.Errorf("spread %g, want 7", got)
	}
}

func TestHistogramDegenerateArgs(t *testing.T) {
	h := NewHistogram(5, 5, 0) // invalid range and bins
	h.Add(5)
	if h.Total() != 1 {
		t.Error("degenerate histogram must still accept samples")
	}
}

func TestAddAll(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.AddAll([]float64{0.1, 0.2, 0.3})
	if h.Total() != 3 {
		t.Error("AddAll")
	}
}

func TestAggregates(t *testing.T) {
	xs := []float64{2, 8}
	if Mean(xs) != 5 {
		t.Error("mean")
	}
	if GeoMean(xs) != 4 {
		t.Error("geomean")
	}
	if Max(xs) != 8 || Min(xs) != 2 {
		t.Error("max/min")
	}
	if Median(xs) != 5 {
		t.Error("even median")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty aggregates")
	}
}

func TestGeoMeanFlagsNonPositive(t *testing.T) {
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("geomean of negative values must be NaN")
	}
}

func TestPropertyHistogramConservesSamples(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(-1, 1, 50)
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		var sum uint64
		for _, c := range h.Counts {
			sum += c
		}
		return sum == uint64(n) && h.Total() == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
