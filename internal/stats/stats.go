// Package stats provides the small statistical toolkit used by the
// experiment harness: fixed-bin histograms (for the paper's Figure 10
// voltage distributions) and aggregate helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Samples outside
// the range land in the saturating edge bins so no data is lost.
type Histogram struct {
	Lo, Hi float64
	Counts []uint64
	total  uint64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	idx := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
	h.total++
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() uint64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Mode returns the center of the most populated bin.
func (h *Histogram) Mode() float64 {
	best, bi := uint64(0), 0
	for i, c := range h.Counts {
		if c > best {
			best, bi = c, i
		}
	}
	return h.BinCenter(bi)
}

// Spread returns the distance between the lowest and highest non-empty bin
// centers — a cheap width measure for comparing Figure 10 distributions.
func (h *Histogram) Spread() float64 {
	lo, hi := -1, -1
	for i, c := range h.Counts {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	if lo < 0 {
		return 0
	}
	return h.BinCenter(hi) - h.BinCenter(lo)
}

// String renders a compact textual summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist[%g,%g) n=%d total=%d mode=%.4g", h.Lo, h.Hi, len(h.Counts), h.total, h.Mode())
}

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive xs; non-positive values
// make the result NaN, matching the usual benchmarking convention of
// flagging invalid aggregation loudly.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Max returns the maximum of xs, or -Inf if empty.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or +Inf if empty.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (0 if empty). xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return 0.5 * (c[n/2-1] + c[n/2])
}
