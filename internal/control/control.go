// Package control implements the paper's control layer: the threshold
// control policy (Section 4.1) and the offline threshold solver that
// replaces the authors' MATLAB/Simulink flow (Section 4.3, Figure 13).
//
// The solver works the way the paper describes: analyze the power supply
// system and processor model for worst cases (resonant square-wave drive
// between the processor's minimum and maximum current, sustained steps up
// and down), then — under a given sensor delay and actuator authority —
// find the voltage-low and voltage-high thresholds that guarantee the
// supply stays within the emergency band. Low is pushed as low as possible
// (fewest false alarms, least performance loss) and High as high as
// possible (least phantom-fire energy), exactly the trade-off of
// Section 4.3.
package control

import (
	"fmt"
	"math"

	"didt/internal/pdn"
)

// Envelope describes the current-domain authority of the plant and its
// actuator: the workload can swing anywhere in [IMin, IMax]; gating can
// force current down to Floor; phantom firing can force it up to Ceil.
// Settle is the number of cycles the current takes to reach the clamp
// after an actuation decision (actuator ramp), charged conservatively.
type Envelope struct {
	IMin, IMax  float64
	Floor, Ceil float64
	Settle      int
}

func (e Envelope) validate() error {
	if e.IMax <= e.IMin {
		return fmt.Errorf("control: IMax %g must exceed IMin %g", e.IMax, e.IMin)
	}
	if e.Floor > e.IMax || e.Ceil < e.IMin {
		return fmt.Errorf("control: actuator authority [%g,%g] outside workload range", e.Floor, e.Ceil)
	}
	if e.Settle < 0 {
		return fmt.Errorf("control: negative settle %d", e.Settle)
	}
	return nil
}

// Thresholds is the solver's product. SafeWindow = High - Low is the
// quantity Table 3 tracks as sensor delay grows. Stable is false when no
// threshold pair can bound the voltage — the paper's finding for FU-only
// actuation at controller delays of three or more cycles.
type Thresholds struct {
	Low, High  float64
	Stable     bool
	SafeWindow float64
}

// Solver finds and caches thresholds for one PDN.
type Solver struct {
	net   *pdn.Network
	cache map[solveKey]Thresholds
}

type solveKey struct {
	iMin, iMax, floor, ceil float64
	settle, delay           int
}

// NewSolver builds a solver over the given network.
func NewSolver(net *pdn.Network) *Solver {
	return &Solver{net: net, cache: make(map[solveKey]Thresholds)}
}

// Solve computes thresholds for the given envelope and sensor delay.
func (s *Solver) Solve(env Envelope, delay int) (Thresholds, error) {
	if err := env.validate(); err != nil {
		return Thresholds{}, err
	}
	if delay < 0 {
		return Thresholds{}, fmt.Errorf("control: negative delay %d", delay)
	}
	key := solveKey{env.IMin, env.IMax, env.Floor, env.Ceil, env.Settle, delay}
	if th, ok := s.cache[key]; ok {
		return th, nil
	}
	th := s.solve(env, delay)
	s.cache[key] = th
	return th, nil
}

func (s *Solver) solve(env Envelope, delay int) Thresholds {
	p := s.net.Params()
	vNom := p.VNominal
	vMin, vMax := s.net.VMin(), s.net.VMax()
	eps := 1e-4 // 0.1 mV numerical slack

	// solveLo bisects for the minimal Low threshold whose undershoot stays
	// legal given a fixed High; returns ok=false when even the most
	// conservative trigger (just under nominal) cannot stop the droop —
	// the actuator lacks downward authority.
	solveLo := func(hi float64) (float64, bool) {
		a, b := vMin, vNom-1e-4
		if minV, _ := s.excursions(b, hi, env, delay); minV < vMin-eps {
			return 0, false
		}
		for i := 0; i < 16; i++ {
			mid := 0.5 * (a + b)
			if minV, _ := s.excursions(mid, hi, env, delay); minV < vMin-eps {
				a = mid
			} else {
				b = mid
			}
		}
		return b, true
	}
	// solveHi bisects for the maximal High threshold whose overshoot stays
	// legal given a fixed Low.
	solveHi := func(lo float64) (float64, bool) {
		a, b := vNom+1e-4, vMax
		if _, maxV := s.excursions(lo, a, env, delay); maxV > vMax+eps {
			return 0, false
		}
		if _, maxV := s.excursions(lo, b, env, delay); maxV <= vMax+eps {
			return b, true // fully permissive High is already safe
		}
		for i := 0; i < 16; i++ {
			mid := 0.5 * (a + b)
			if _, maxV := s.excursions(lo, mid, env, delay); maxV > vMax+eps {
				b = mid
			} else {
				a = mid
			}
		}
		return a, true
	}

	// Start each search from the most permissive opposite threshold so the
	// two responses do not fight, then run one repair round for the weak
	// coupling (gating recovery can overshoot; phantom firing can droop).
	lo, ok := solveLo(vMax)
	if !ok {
		return Thresholds{Stable: false}
	}
	hi, ok := solveHi(lo)
	if !ok {
		return Thresholds{Stable: false}
	}
	for round := 0; round < 2; round++ {
		minV, maxV := s.excursions(lo, hi, env, delay)
		if minV >= vMin-eps && maxV <= vMax+eps && hi > lo {
			return Thresholds{Low: lo, High: hi, Stable: true, SafeWindow: hi - lo}
		}
		if lo, ok = solveLo(hi); !ok {
			return Thresholds{Stable: false}
		}
		if hi, ok = solveHi(lo); !ok {
			return Thresholds{Stable: false}
		}
	}
	minV, maxV := s.excursions(lo, hi, env, delay)
	if minV < vMin-eps || maxV > vMax+eps || hi <= lo {
		return Thresholds{Stable: false}
	}
	return Thresholds{Low: lo, High: hi, Stable: true, SafeWindow: hi - lo}
}

// excursions runs the controlled linear plant against the worst-case input
// suite and returns the extreme voltages observed.
func (s *Solver) excursions(lo, hi float64, env Envelope, delay int) (minV, maxV float64) {
	minV, maxV = math.Inf(1), math.Inf(-1)
	for _, sc := range scenarios {
		r := s.runScenario(sc, lo, hi, env, delay)
		minV = math.Min(minV, r.minV)
		maxV = math.Max(maxV, r.maxV)
	}
	return minV, maxV
}

// InterventionFraction reports the fraction of cycles the threshold
// controller overrides the workload's demand on the worst-case suite — the
// proxy for its performance cost in the linear-domain studies.
func (s *Solver) InterventionFraction(th Thresholds, env Envelope, delay int) float64 {
	if !th.Stable {
		return 1
	}
	var intervened, total int
	for _, sc := range scenarios {
		r := s.runScenario(sc, th.Low, th.High, env, delay)
		intervened += r.intervened
		total += r.cycles
	}
	if total == 0 {
		return 0
	}
	return float64(intervened) / float64(total)
}

// scenarioResult summarizes one closed-loop scenario run.
type scenarioResult struct {
	minV, maxV float64
	intervened int
	cycles     int
}

type scenario int

const (
	scResonant scenario = iota
	scResonantShifted
	scStepUp
	scStepDownAfterHigh
	numScenarios
)

var scenarios = []scenario{scResonant, scResonantShifted, scStepUp, scStepDownAfterHigh}

// runScenario simulates the threshold-controlled plant: an adversarial
// demand stream, a sensor with the given delay, and clamp-style actuation
// with the envelope's authority and settle time.
func (s *Solver) runScenario(sc scenario, lo, hi float64, env Envelope, delay int) scenarioResult {
	period := s.net.ResonantPeriodCycles()
	cycles := s.net.KernelLen() + 14*period
	sim := s.net.NewSimulator()
	p := s.net.Params()

	demand := func(c int) float64 {
		switch sc {
		case scResonant:
			if c%period < period/2 {
				return env.IMax
			}
			return env.IMin
		case scResonantShifted:
			if (c+period/2)%period < period/2 {
				return env.IMax
			}
			return env.IMin
		case scStepUp:
			return env.IMax
		case scStepDownAfterHigh:
			if c < cycles/2 {
				return env.IMax
			}
			return env.IMin
		}
		return env.IMin
	}

	res := scenarioResult{minV: p.VNominal, maxV: p.VNominal}
	vHist := make([]float64, delay+1)
	for i := range vHist {
		vHist[i] = p.VNominal
	}
	state := 0 // 0 normal, -1 gating, +1 phantom
	sinceTrigger := 0
	prevI := env.IMin

	for c := 0; c < cycles; c++ {
		// The sensor sees the voltage from `delay` cycles ago.
		sensed := vHist[0]
		switch {
		case sensed < lo:
			if state != -1 {
				sinceTrigger = 0
			}
			state = -1
		case sensed > hi:
			if state != 1 {
				sinceTrigger = 0
			}
			state = 1
		default:
			state = 0
		}

		var i float64
		switch state {
		case -1:
			if sinceTrigger >= env.Settle {
				i = env.Floor
			} else {
				i = prevI // actuator still ramping: worst case holds level
			}
		case 1:
			if sinceTrigger >= env.Settle {
				i = env.Ceil
			} else {
				i = prevI
			}
		default:
			i = demand(c)
		}
		sinceTrigger++
		prevI = i

		if state != 0 {
			res.intervened++
		}
		res.cycles++
		v := sim.Step(i)
		res.minV = math.Min(res.minV, v)
		res.maxV = math.Max(res.maxV, v)
		copy(vHist, vHist[1:])
		vHist[delay] = v
	}
	return res
}

// Policy is the runtime threshold-control state machine used by the
// coupled system: it simply latches the most recent sensed level. It
// exists as a type so the core package can count actuations and so future
// policies (asymmetric mechanisms, Section 6) can slot in.
type Policy struct {
	LowEvents  uint64
	HighEvents uint64
	lowActive  bool
	highActive bool
}

// Update records a sensed level and reports whether gating (low) or
// phantom firing (high) should be active this cycle.
func (p *Policy) Update(low, high bool) (gate, phantom bool) {
	if low && !p.lowActive {
		p.LowEvents++
	}
	if high && !p.highActive {
		p.HighEvents++
	}
	p.lowActive, p.highActive = low, high
	return low, high
}
