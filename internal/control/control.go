// Package control implements the paper's control layer: the threshold
// control policy (Section 4.1) and the offline threshold solver that
// replaces the authors' MATLAB/Simulink flow (Section 4.3, Figure 13).
//
// The solver works the way the paper describes: analyze the power supply
// system and processor model for worst cases (resonant square-wave drive
// between the processor's minimum and maximum current, sustained steps up
// and down), then — under a given sensor delay and actuator authority —
// find the voltage-low and voltage-high thresholds that guarantee the
// supply stays within the emergency band. Low is pushed as low as possible
// (fewest false alarms, least performance loss) and High as high as
// possible (least phantom-fire energy), exactly the trade-off of
// Section 4.3.
package control

import (
	"fmt"
	"math"

	"didt/internal/pdn"
	"didt/internal/sim"
	"didt/internal/telemetry"
)

// Envelope describes the current-domain authority of the plant and its
// actuator: the workload can swing anywhere in [IMin, IMax]; gating can
// force current down to Floor; phantom firing can force it up to Ceil.
// Settle is the number of cycles the current takes to reach the clamp
// after an actuation decision (actuator ramp), charged conservatively.
type Envelope struct {
	IMin, IMax  float64
	Floor, Ceil float64
	Settle      int
}

func (e Envelope) validate() error {
	if e.IMax <= e.IMin {
		return fmt.Errorf("control: IMax %g must exceed IMin %g", e.IMax, e.IMin)
	}
	if e.Floor > e.IMax || e.Ceil < e.IMin {
		return fmt.Errorf("control: actuator authority [%g,%g] outside workload range", e.Floor, e.Ceil)
	}
	if e.Settle < 0 {
		return fmt.Errorf("control: negative settle %d", e.Settle)
	}
	return nil
}

// Thresholds is the solver's product. SafeWindow = High - Low is the
// quantity Table 3 tracks as sensor delay grows. Stable is false when no
// threshold pair can bound the voltage — the paper's finding for FU-only
// actuation at controller delays of three or more cycles.
type Thresholds struct {
	Low, High  float64
	Stable     bool
	SafeWindow float64
}

// Solver finds thresholds for one PDN. Results are memoized in the
// process-wide solve cache, so distinct Solver instances over networks
// with equal parameters share their work.
type Solver struct {
	net *pdn.Network
}

// solveCacheKey is the full identity of one solve: the PDN parameters
// (every comparable field of pdn.Params, including IFloor and the
// truncation controls that shape the kernel), the actuation envelope, and
// the sensor delay.
type solveCacheKey struct {
	params pdn.Params
	env    Envelope
	delay  int
}

// solveCache memoizes threshold solving across Solver instances. Every
// NewSystem with control enabled used to run its own ~64-bisection solve
// (hundreds of excursion simulations) even when a sweep re-solved the
// identical (PDN, envelope, delay) point for every workload; the solve is
// a pure function of the key, so cached and fresh thresholds are
// bit-identical.
var solveCache = sim.NewCache[solveCacheKey, Thresholds](256)

func init() {
	solveCache.RegisterMetrics(telemetry.Default(), "cache.control_solve")
	sim.RegisterCacheCapacity("control_solve", 256, solveCache.SetCapacity)
}

// SolveCacheStats reports the shared threshold-solve cache's
// effectiveness.
func SolveCacheStats() sim.CacheStats { return solveCache.Stats() }

// ResetSolveCache empties the shared threshold-solve cache (benchmarks use
// it to measure cold-start cost).
func ResetSolveCache() { solveCache.Reset() }

// NewSolver builds a solver over the given network.
func NewSolver(net *pdn.Network) *Solver {
	return &Solver{net: net}
}

// Solve computes thresholds for the given envelope and sensor delay.
func (s *Solver) Solve(env Envelope, delay int) (Thresholds, error) {
	if err := env.validate(); err != nil {
		return Thresholds{}, err
	}
	if delay < 0 {
		return Thresholds{}, fmt.Errorf("control: negative delay %d", delay)
	}
	key := solveCacheKey{params: s.net.Params(), env: env, delay: delay}
	return solveCache.Get(key, func() (Thresholds, error) {
		return s.solve(env, delay), nil
	})
}

// solveEps is the solver's numerical slack: a voltage has to leave the
// emergency band by more than 0.1 mV before a probe calls it a violation.
const solveEps = 1e-4

func (s *Solver) solve(env Envelope, delay int) Thresholds {
	p := s.net.Params()
	vNom := p.VNominal
	vMin, vMax := s.net.VMin(), s.net.VMax()
	pr := s.newProbe(env, delay)

	// solveLo bisects for the minimal Low threshold whose undershoot stays
	// legal given a fixed High; returns ok=false when even the most
	// conservative trigger (just under nominal) cannot stop the droop —
	// the actuator lacks downward authority.
	solveLo := func(hi float64) (float64, bool) {
		a, b := vMin, vNom-1e-4
		if low, _ := pr.violations(b, hi, true, false); low {
			return 0, false
		}
		for i := 0; i < 16; i++ {
			mid := 0.5 * (a + b)
			if low, _ := pr.violations(mid, hi, true, false); low {
				a = mid
			} else {
				b = mid
			}
		}
		return b, true
	}
	// solveHi bisects for the maximal High threshold whose overshoot stays
	// legal given a fixed Low.
	solveHi := func(lo float64) (float64, bool) {
		a, b := vNom+1e-4, vMax
		if _, high := pr.violations(lo, a, false, true); high {
			return 0, false
		}
		if _, high := pr.violations(lo, b, false, true); !high {
			return b, true // fully permissive High is already safe
		}
		for i := 0; i < 16; i++ {
			mid := 0.5 * (a + b)
			if _, high := pr.violations(lo, mid, false, true); high {
				b = mid
			} else {
				a = mid
			}
		}
		return a, true
	}

	// Start each search from the most permissive opposite threshold so the
	// two responses do not fight, then run one repair round for the weak
	// coupling (gating recovery can overshoot; phantom firing can droop).
	lo, ok := solveLo(vMax)
	if !ok {
		return Thresholds{Stable: false}
	}
	hi, ok := solveHi(lo)
	if !ok {
		return Thresholds{Stable: false}
	}
	for round := 0; round < 2; round++ {
		low, high := pr.violations(lo, hi, true, true)
		if !low && !high && hi > lo {
			return Thresholds{Low: lo, High: hi, Stable: true, SafeWindow: hi - lo}
		}
		if lo, ok = solveLo(hi); !ok {
			return Thresholds{Stable: false}
		}
		if hi, ok = solveHi(lo); !ok {
			return Thresholds{Stable: false}
		}
	}
	low, high := pr.violations(lo, hi, true, true)
	if low || high || hi <= lo {
		return Thresholds{Stable: false}
	}
	return Thresholds{Low: lo, High: hi, Stable: true, SafeWindow: hi - lo}
}

// excursions runs the controlled linear plant against the worst-case input
// suite and returns the extreme voltages observed.
func (s *Solver) excursions(lo, hi float64, env Envelope, delay int) (minV, maxV float64) {
	minV, maxV = math.Inf(1), math.Inf(-1)
	for _, sc := range scenarios {
		r := s.runScenario(sc, lo, hi, env, delay)
		minV = math.Min(minV, r.minV)
		maxV = math.Max(maxV, r.maxV)
	}
	return minV, maxV
}

// InterventionFraction reports the fraction of cycles the threshold
// controller overrides the workload's demand on the worst-case suite — the
// proxy for its performance cost in the linear-domain studies.
func (s *Solver) InterventionFraction(th Thresholds, env Envelope, delay int) float64 {
	if !th.Stable {
		return 1
	}
	var intervened, total int
	for _, sc := range scenarios {
		r := s.runScenario(sc, th.Low, th.High, env, delay)
		intervened += r.intervened
		total += r.cycles
	}
	if total == 0 {
		return 0
	}
	return float64(intervened) / float64(total)
}

// scenarioResult summarizes one closed-loop scenario run.
type scenarioResult struct {
	minV, maxV float64
	intervened int
	cycles     int
}

type scenario int

const (
	scResonant scenario = iota
	scResonantShifted
	scStepUp
	scStepDownAfterHigh
	numScenarios
)

var scenarios = []scenario{scResonant, scResonantShifted, scStepUp, scStepDownAfterHigh}

// scenarioDemand is the adversarial demand stream for one worst-case
// scenario at one cycle: resonant square waves (two phases), a sustained
// step up, and a step down after a sustained high.
func scenarioDemand(sc scenario, c, cycles, period int, env Envelope) float64 {
	switch sc {
	case scResonant:
		if c%period < period/2 {
			return env.IMax
		}
		return env.IMin
	case scResonantShifted:
		if (c+period/2)%period < period/2 {
			return env.IMax
		}
		return env.IMin
	case scStepUp:
		return env.IMax
	case scStepDownAfterHigh:
		if c < cycles/2 {
			return env.IMax
		}
		return env.IMin
	}
	return env.IMin
}

// scenarioCtl is one replica of the threshold controller the solver
// simulates against: the sensed-level latch, the actuator settle counter,
// and the sensor delay pipeline. Shared by the solo scenario runner and
// the lockstep probe so both step the exact same state machine.
type scenarioCtl struct {
	state        int // 0 normal, -1 gating, +1 phantom
	sinceTrigger int
	prevI        float64
	vHist        []float64 // vHist[0] is the voltage from `delay` cycles ago
}

func newScenarioCtl(vNom float64, env Envelope, delay int) scenarioCtl {
	ctl := scenarioCtl{prevI: env.IMin, vHist: make([]float64, delay+1)}
	ctl.reset(vNom, env)
	return ctl
}

func (ctl *scenarioCtl) reset(vNom float64, env Envelope) {
	ctl.state = 0
	ctl.sinceTrigger = 0
	ctl.prevI = env.IMin
	for i := range ctl.vHist {
		ctl.vHist[i] = vNom
	}
}

// decide consumes this cycle's sensed voltage and demand and returns the
// current the plant actually draws: the clamp when the actuator has
// settled, the previous level while it is still ramping (worst case holds
// level), the demand when no threshold is latched.
func (ctl *scenarioCtl) decide(lo, hi, demand float64, env Envelope) float64 {
	sensed := ctl.vHist[0]
	switch {
	case sensed < lo:
		if ctl.state != -1 {
			ctl.sinceTrigger = 0
		}
		ctl.state = -1
	case sensed > hi:
		if ctl.state != 1 {
			ctl.sinceTrigger = 0
		}
		ctl.state = 1
	default:
		ctl.state = 0
	}

	var i float64
	switch ctl.state {
	case -1:
		if ctl.sinceTrigger >= env.Settle {
			i = env.Floor
		} else {
			i = ctl.prevI
		}
	case 1:
		if ctl.sinceTrigger >= env.Settle {
			i = env.Ceil
		} else {
			i = ctl.prevI
		}
	default:
		i = demand
	}
	ctl.sinceTrigger++
	ctl.prevI = i
	return i
}

// observe pushes this cycle's plant voltage into the sensor pipeline.
func (ctl *scenarioCtl) observe(v float64) {
	copy(ctl.vHist, ctl.vHist[1:])
	ctl.vHist[len(ctl.vHist)-1] = v
}

// runScenario simulates the threshold-controlled plant: an adversarial
// demand stream, a sensor with the given delay, and clamp-style actuation
// with the envelope's authority and settle time.
func (s *Solver) runScenario(sc scenario, lo, hi float64, env Envelope, delay int) scenarioResult {
	period := s.net.ResonantPeriodCycles()
	cycles := s.net.KernelLen() + 14*period
	sim := s.net.NewSimulator()
	defer sim.Release()
	p := s.net.Params()

	res := scenarioResult{minV: p.VNominal, maxV: p.VNominal}
	ctl := newScenarioCtl(p.VNominal, env, delay)
	for c := 0; c < cycles; c++ {
		i := ctl.decide(lo, hi, scenarioDemand(sc, c, cycles, period, env), env)
		if ctl.state != 0 {
			res.intervened++
		}
		res.cycles++
		v := sim.Step(i)
		res.minV = math.Min(res.minV, v)
		res.maxV = math.Max(res.maxV, v)
		ctl.observe(v)
	}
	return res
}

// probe owns the reusable lockstep machinery for one solve: a 4-lane batch
// convolver (one lane per worst-case scenario) plus a controller replica
// per lane, reset between evaluations instead of reallocated — a solve
// evaluates it dozens of times.
type probe struct {
	net      *pdn.Network
	env      Envelope
	period   int
	cycles   int
	vNom     float64
	vLow     float64 // vMin - solveEps
	vHigh    float64 // vMax + solveEps
	batch    *pdn.BatchSimulator
	ctls     []scenarioCtl
	currents []float64
	volts    []float64
}

func (s *Solver) newProbe(env Envelope, delay int) *probe {
	period := s.net.ResonantPeriodCycles()
	p := &probe{
		net:      s.net,
		env:      env,
		period:   period,
		cycles:   s.net.KernelLen() + 14*period,
		vNom:     s.net.Params().VNominal,
		vLow:     s.net.VMin() - solveEps,
		vHigh:    s.net.VMax() + solveEps,
		batch:    s.net.NewBatchSimulator(len(scenarios)),
		ctls:     make([]scenarioCtl, len(scenarios)),
		currents: make([]float64, len(scenarios)),
		volts:    make([]float64, len(scenarios)),
	}
	for l := range p.ctls {
		p.ctls[l] = newScenarioCtl(p.vNom, env, delay)
	}
	return p
}

// violations evaluates one threshold pair against the worst-case suite and
// reports whether any scenario drives the supply below vMin-solveEps
// (lowBad) or above vMax+solveEps (highBad) — exactly the comparisons
// excursions' extreme voltages feed, but computed in lockstep across the
// four scenarios and stopped the cycle every *needed* verdict has resolved
// to true. A needed verdict can only resolve false by surviving the whole
// horizon, so early exit never changes an answer; a verdict the caller did
// not ask for may be reported false even when a longer run would have
// tripped it. Per-lane voltages are bit-identical to the solo simulator's
// (the batch kernel preserves per-lane accumulation order), which is what
// keeps solved thresholds identical to the sequential implementation.
func (p *probe) violations(lo, hi float64, needLow, needHigh bool) (lowBad, highBad bool) {
	p.batch.Reset()
	for l := range p.ctls {
		p.ctls[l].reset(p.vNom, p.env)
	}
	for c := 0; c < p.cycles; c++ {
		for l := range p.ctls {
			demand := scenarioDemand(scenarios[l], c, p.cycles, p.period, p.env)
			p.currents[l] = p.ctls[l].decide(lo, hi, demand, p.env)
		}
		p.batch.Step(p.currents, p.volts)
		for l := range p.ctls {
			v := p.volts[l]
			if v < p.vLow {
				lowBad = true
			}
			if v > p.vHigh {
				highBad = true
			}
			p.ctls[l].observe(v)
		}
		if (lowBad || !needLow) && (highBad || !needHigh) {
			return lowBad, highBad
		}
	}
	return lowBad, highBad
}

// Policy is the runtime threshold-control state machine used by the
// coupled system: it simply latches the most recent sensed level. It
// exists as a type so the core package can count actuations and so future
// policies (asymmetric mechanisms, Section 6) can slot in.
type Policy struct {
	LowEvents  uint64
	HighEvents uint64
	lowActive  bool
	highActive bool
}

// Update records a sensed level and reports whether gating (low) or
// phantom firing (high) should be active this cycle.
func (p *Policy) Update(low, high bool) (gate, phantom bool) {
	if low && !p.lowActive {
		p.LowEvents++
	}
	if high && !p.highActive {
		p.HighEvents++
	}
	p.lowActive, p.highActive = low, high
	return low, high
}
