package control

import (
	"testing"
)

func TestPIDUpdateDirection(t *testing.T) {
	p := PID{Kp: 100, Setpoint: 1.0}
	// Undervoltage: positive output (reduce current).
	if u := p.Update(0.95); u <= 0 {
		t.Errorf("undervoltage output %g, want positive", u)
	}
	p.Reset()
	// Overvoltage: negative output (raise current).
	if u := p.Update(1.05); u >= 0 {
		t.Errorf("overvoltage output %g, want negative", u)
	}
}

func TestPIDIntegralAccumulates(t *testing.T) {
	p := PID{Ki: 10, Setpoint: 1.0}
	u1 := p.Update(0.99)
	u2 := p.Update(0.99)
	if u2 <= u1 {
		t.Errorf("integral term must grow under persistent error: %g then %g", u1, u2)
	}
	p.Reset()
	if u := p.Update(1.0); u != 0 {
		t.Errorf("after reset with zero error, output %g", u)
	}
}

func TestPIDDerivativeKicksOnChange(t *testing.T) {
	p := PID{Kd: 100, Setpoint: 1.0}
	p.Update(1.0)       // prime
	u := p.Update(0.99) // error jumped by +0.01
	if u <= 0 {
		t.Errorf("derivative kick %g, want positive", u)
	}
	u = p.Update(0.99) // error unchanged: derivative term zero
	if u != 0 {
		t.Errorf("steady error with only Kd should output 0, got %g", u)
	}
}

func TestComparePIDStructure(t *testing.T) {
	s := NewSolver(refNet(t, 2))
	pts, err := s.ComparePID(refEnv(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.PIDDelay != p.Delay+3 {
			t.Errorf("PID delay %d for sensor delay %d", p.PIDDelay, p.Delay)
		}
		if !p.ThresholdOK {
			t.Errorf("delay %d: threshold controller should hold the band", p.Delay)
		}
		if p.ThresholdIntervene <= 0 || p.ThresholdIntervene >= 1 {
			t.Errorf("threshold intervention %g out of (0,1)", p.ThresholdIntervene)
		}
		if p.PIDIntervene <= p.ThresholdIntervene {
			t.Errorf("PID must intervene far more than threshold control: %.2f vs %.2f",
				p.PIDIntervene, p.ThresholdIntervene)
		}
	}
}

func TestComparePIDRejectsBadEnvelope(t *testing.T) {
	s := NewSolver(refNet(t, 2))
	if _, err := s.ComparePID(Envelope{IMin: 70, IMax: 10}, 1, 3); err == nil {
		t.Error("want validation error")
	}
}
