package control

import (
	"math"
	"testing"

	"didt/internal/pdn"
)

// reference envelope: 10-70A workload, strong actuator, regulator reference
// at the midpoint.
func refNet(t *testing.T, pct float64) *pdn.Network {
	t.Helper()
	n, err := pdn.Calibrate(pdn.Params{IFloor: 40}, 10, 70, pct)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func refEnv() Envelope {
	return Envelope{IMin: 10, IMax: 70, Floor: 8, Ceil: 45, Settle: 2}
}

func TestSolveValidation(t *testing.T) {
	s := NewSolver(refNet(t, 2))
	if _, err := s.Solve(Envelope{IMin: 70, IMax: 10}, 0); err == nil {
		t.Error("want error for inverted envelope")
	}
	if _, err := s.Solve(refEnv(), -1); err == nil {
		t.Error("want error for negative delay")
	}
	bad := refEnv()
	bad.Settle = -1
	if _, err := s.Solve(bad, 0); err == nil {
		t.Error("want error for negative settle")
	}
}

func TestThresholdsStableAcrossDelays(t *testing.T) {
	s := NewSolver(refNet(t, 2))
	for d := 0; d <= 6; d++ {
		th, err := s.Solve(refEnv(), d)
		if err != nil {
			t.Fatal(err)
		}
		if !th.Stable {
			t.Fatalf("delay %d: unstable with a strong actuator", d)
		}
		if th.Low >= th.High {
			t.Fatalf("delay %d: degenerate thresholds %+v", d, th)
		}
		if th.Low < 0.95 || th.High > 1.05 {
			t.Fatalf("delay %d: thresholds outside band %+v", d, th)
		}
	}
}

// TestTable3LowThresholdRisesWithDelay reproduces the paper's Table 3
// trend: slower sensing forces a more conservative (higher) low threshold.
func TestTable3LowThresholdRisesWithDelay(t *testing.T) {
	s := NewSolver(refNet(t, 2))
	prev := 0.0
	for d := 0; d <= 6; d++ {
		th, err := s.Solve(refEnv(), d)
		if err != nil || !th.Stable {
			t.Fatalf("delay %d: %v %+v", d, err, th)
		}
		if th.Low < prev {
			t.Errorf("delay %d: low threshold %.4f dropped below delay %d's %.4f", d, th.Low, d-1, prev)
		}
		prev = th.Low
	}
}

func TestSafeWindowShrinksOverall(t *testing.T) {
	s := NewSolver(refNet(t, 2))
	th0, _ := s.Solve(refEnv(), 0)
	th6, _ := s.Solve(refEnv(), 6)
	if th6.SafeWindow >= th0.SafeWindow {
		t.Errorf("window should shrink: delay0 %.1fmV delay6 %.1fmV",
			th0.SafeWindow*1e3, th6.SafeWindow*1e3)
	}
}

func TestWeakActuatorEventuallyUnstable(t *testing.T) {
	// An actuator with almost no downward authority (floor just below the
	// regulator reference) cannot arrest worst-case dips once sensing is
	// slow.
	s := NewSolver(refNet(t, 3))
	env := Envelope{IMin: 10, IMax: 70, Floor: 39.9, Ceil: 41, Settle: 2}
	unstableSeen := false
	for d := 0; d <= 8; d++ {
		th, err := s.Solve(env, d)
		if err != nil {
			t.Fatal(err)
		}
		if !th.Stable {
			unstableSeen = true
			break
		}
	}
	if !unstableSeen {
		t.Error("weak actuator never went unstable even at long delays and 300% impedance")
	}
}

func TestHigherImpedanceTightensThresholds(t *testing.T) {
	s200 := NewSolver(refNet(t, 2))
	s400 := NewSolver(refNet(t, 4))
	th200, _ := s200.Solve(refEnv(), 2)
	th400, _ := s400.Solve(refEnv(), 2)
	if !th200.Stable {
		t.Fatal("200% should be stable")
	}
	if th400.Stable && th400.Low <= th200.Low {
		t.Errorf("400%% impedance should demand a more conservative low threshold: %.4f vs %.4f",
			th400.Low, th200.Low)
	}
}

func TestSolveCacheReturnsSameValue(t *testing.T) {
	s := NewSolver(refNet(t, 2))
	a, _ := s.Solve(refEnv(), 3)
	b, _ := s.Solve(refEnv(), 3)
	if a != b {
		t.Error("cache returned different thresholds")
	}
}

// TestGuaranteeHolds verifies the solver's core promise: running the
// worst-case suite with the solved thresholds keeps voltage inside the
// band (with numerical slack).
func TestGuaranteeHolds(t *testing.T) {
	net := refNet(t, 2)
	s := NewSolver(net)
	for d := 0; d <= 6; d += 2 {
		th, _ := s.Solve(refEnv(), d)
		if !th.Stable {
			t.Fatalf("delay %d unstable", d)
		}
		minV, maxV := s.excursions(th.Low, th.High, refEnv(), d)
		if minV < net.VMin()-2e-4 {
			t.Errorf("delay %d: guaranteed minV %.4f below band %.4f", d, minV, net.VMin())
		}
		if maxV > net.VMax()+2e-4 {
			t.Errorf("delay %d: guaranteed maxV %.4f above band %.4f", d, maxV, net.VMax())
		}
	}
}

// TestUncontrolledWorstCaseViolates sanity-checks the premise: without any
// control, the worst case at 200% impedance leaves the band.
func TestUncontrolledWorstCaseViolates(t *testing.T) {
	net := refNet(t, 2)
	if dev := net.WorstCaseDeviation(10, 70); dev <= 0.05 {
		t.Fatalf("uncontrolled worst case %.1fmV should exceed 50mV", dev*1e3)
	}
}

func TestPolicyCountsDistinctEvents(t *testing.T) {
	var p Policy
	p.Update(true, false)
	p.Update(true, false) // same episode
	p.Update(false, false)
	p.Update(true, false) // second episode
	p.Update(false, true)
	if p.LowEvents != 2 || p.HighEvents != 1 {
		t.Errorf("events: low=%d high=%d", p.LowEvents, p.HighEvents)
	}
}

func TestThresholdsSymmetricAroundNominal(t *testing.T) {
	// With a midpoint reference the dynamics are symmetric, so Low and
	// High should sit roughly symmetric around nominal at delay 0.
	s := NewSolver(refNet(t, 2))
	th, _ := s.Solve(refEnv(), 0)
	lowGap := 1.0 - th.Low
	highGap := th.High - 1.0
	if math.Abs(lowGap-highGap) > 0.025 {
		t.Errorf("asymmetric thresholds at delay 0: -%.1fmV / +%.1fmV", lowGap*1e3, highGap*1e3)
	}
}

// TestProbeViolationsMatchExcursions pins the lockstep probe's contract:
// for any threshold pair, its violation booleans equal the comparisons the
// sequential excursions path would make, including at thresholds very near
// the band edges where one extra 1e-16 of drift would flip a bisection.
func TestProbeViolationsMatchExcursions(t *testing.T) {
	s := NewSolver(refNet(t, 2))
	env := refEnv()
	vNom := 1.0
	vMin, vMax := s.net.VMin(), s.net.VMax()
	for _, delay := range []int{0, 2, 5} {
		pr := s.newProbe(env, delay)
		for _, lo := range []float64{vMin, vMin + 0.01, 0.5 * (vMin + vNom), vNom - 1e-4} {
			for _, hi := range []float64{vNom + 1e-4, 0.5 * (vNom + vMax), vMax} {
				minV, maxV := s.excursions(lo, hi, env, delay)
				wantLow := minV < vMin-solveEps
				wantHigh := maxV > vMax+solveEps
				// Needed verdicts must match the sequential path exactly.
				if low, _ := pr.violations(lo, hi, true, false); low != wantLow {
					t.Errorf("delay %d lo %.6f hi %.6f: lowBad=%t want %t", delay, lo, hi, low, wantLow)
				}
				if _, high := pr.violations(lo, hi, false, true); high != wantHigh {
					t.Errorf("delay %d lo %.6f hi %.6f: highBad=%t want %t", delay, lo, hi, high, wantHigh)
				}
				// A dual-verdict probe that runs to the horizon (at most one
				// verdict trips) resolves both; when it exits early both are
				// true, which also matches.
				low, high := pr.violations(lo, hi, true, true)
				if low != wantLow || high != wantHigh {
					t.Errorf("delay %d lo %.6f hi %.6f: (%t,%t) want (%t,%t)", delay, lo, hi, low, high, wantLow, wantHigh)
				}
			}
		}
	}
}

// TestWeakActuatorMatchesSequentialSolve pins that the probe rewrite did
// not move any stability frontier: a weak actuator must go unstable at the
// same delay as before (Table 3's FU-only finding).
func TestWeakActuatorMatchesSequentialSolve(t *testing.T) {
	s := NewSolver(refNet(t, 2))
	weak := refEnv()
	weak.Floor = 35 // barely below the midpoint: little downward authority
	firstUnstable := -1
	for d := 0; d <= 8; d++ {
		th, err := s.Solve(weak, d)
		if err != nil {
			t.Fatal(err)
		}
		if !th.Stable {
			firstUnstable = d
			break
		}
	}
	if firstUnstable < 0 {
		t.Skip("weak envelope stayed stable over the probed delays")
	}
	// Re-derive stability at the frontier from the sequential path.
	for d := firstUnstable - 1; d <= firstUnstable; d++ {
		if d < 0 {
			continue
		}
		th, err := s.Solve(weak, d)
		if err != nil {
			t.Fatal(err)
		}
		vMin, vMax := s.net.VMin(), s.net.VMax()
		if th.Stable {
			minV, maxV := s.excursions(th.Low, th.High, weak, d)
			if minV < vMin-solveEps || maxV > vMax+solveEps {
				t.Errorf("delay %d: solved thresholds violate the band on the sequential path", d)
			}
		}
	}
}
