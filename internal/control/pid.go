package control

import (
	"math"
)

// PID is a textbook discrete P-I-D controller over the voltage error, the
// alternative Section 6 discusses and argues against for dI/dt control: it
// needs a numeric voltage reading (not just a range) and a series of
// multiply-accumulates per sample, both of which add latency precisely
// where turnaround time is scarce. ComparePID quantifies that argument.
type PID struct {
	Kp, Ki, Kd float64
	Setpoint   float64

	integral float64
	prevErr  float64
	primed   bool
}

// Update consumes one voltage sample and returns the control output in
// amperes of requested current *reduction* (negative values request more
// current).
func (p *PID) Update(v float64) float64 {
	e := p.Setpoint - v // positive error = undervoltage = reduce current
	p.integral += e
	d := 0.0
	if p.primed {
		d = e - p.prevErr
	}
	p.prevErr = e
	p.primed = true
	return p.Kp*e + p.Ki*p.integral + p.Kd*d
}

// Reset clears the controller state.
func (p *PID) Reset() {
	p.integral, p.prevErr, p.primed = 0, 0, false
}

// PIDPoint is one delay evaluation of the threshold-vs-PID comparison.
type PIDPoint struct {
	Delay        int     // sensor delay charged to the threshold controller
	PIDDelay     int     // sensor delay + compute latency charged to the PID
	ThresholdDev float64 // worst-case |V - nominal| under threshold control
	PIDDev       float64 // worst-case |V - nominal| under the best PID found
	ThresholdOK  bool    // stayed within the emergency band
	PIDOK        bool
	// Intervention fractions: how often each controller overrides the
	// workload's demand — the proxy for performance cost. Threshold
	// control intervenes only near the band edge; a PID modulates
	// continuously.
	ThresholdIntervene float64
	PIDIntervene       float64
	BestGains          PID // gains of the best PID (Kp/Ki/Kd populated)
}

// ComparePID evaluates the threshold controller against a gain-searched
// PID controller on the worst-case resonant waveform, charging the PID the
// extra compute latency Section 6 predicts (extraPIDDelay cycles for the
// multiply-accumulate pipeline). Both controllers get the same actuation
// authority (env.Floor/env.Ceil); the PID may command any current between
// them (it is given *more* capability — continuous actuation — and still
// loses on latency).
func (s *Solver) ComparePID(env Envelope, maxDelay, extraPIDDelay int) ([]PIDPoint, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	var out []PIDPoint
	vNom := s.net.Params().VNominal
	tol := s.net.Params().Tolerance * vNom
	for d := 0; d <= maxDelay; d++ {
		pt := PIDPoint{Delay: d, PIDDelay: d + extraPIDDelay}

		// Threshold controller at its solved thresholds.
		th, err := s.Solve(env, d)
		if err != nil {
			return nil, err
		}
		if th.Stable {
			minV, maxV := s.excursions(th.Low, th.High, env, d)
			pt.ThresholdDev = math.Max(vNom-minV, maxV-vNom)
			pt.ThresholdOK = pt.ThresholdDev <= tol+1e-4
			pt.ThresholdIntervene = s.InterventionFraction(th, env, d)
		}

		// PID: coarse gain search, each candidate evaluated on the same
		// worst-case suite.
		best := math.Inf(1)
		for _, kp := range []float64{100, 300, 600, 1200, 2400} {
			for _, ki := range []float64{0, 5, 20} {
				for _, kd := range []float64{0, 200, 800} {
					dev, _ := s.pidExcursion(PID{Kp: kp, Ki: ki, Kd: kd, Setpoint: vNom}, env, pt.PIDDelay)
					if dev < best {
						best = dev
						pt.BestGains = PID{Kp: kp, Ki: ki, Kd: kd}
					}
				}
			}
		}
		pt.PIDDev = best
		pt.PIDOK = best <= tol+1e-4
		_, pt.PIDIntervene = s.pidExcursion(PID{Kp: pt.BestGains.Kp, Ki: pt.BestGains.Ki, Kd: pt.BestGains.Kd, Setpoint: vNom}, env, pt.PIDDelay)
		out = append(out, pt)
	}
	return out, nil
}

// pidExcursion runs the PID-controlled plant against the worst-case suite
// and returns the maximum |V - nominal| plus the fraction of cycles the
// controller overrode the demand.
func (s *Solver) pidExcursion(gains PID, env Envelope, delay int) (float64, float64) {
	worst := 0.0
	var intervened, total int
	vNom := s.net.Params().VNominal
	for _, sc := range scenarios {
		pid := gains
		pid.Setpoint = vNom
		period := s.net.ResonantPeriodCycles()
		cycles := s.net.KernelLen() + 14*period
		sim := s.net.NewSimulator()
		vHist := make([]float64, delay+1)
		for i := range vHist {
			vHist[i] = vNom
		}
		demand := func(c int) float64 {
			switch sc {
			case scResonant:
				if c%period < period/2 {
					return env.IMax
				}
				return env.IMin
			case scResonantShifted:
				if (c+period/2)%period < period/2 {
					return env.IMax
				}
				return env.IMin
			case scStepUp:
				return env.IMax
			case scStepDownAfterHigh:
				if c < cycles/2 {
					return env.IMax
				}
				return env.IMin
			}
			return env.IMin
		}
		for c := 0; c < cycles; c++ {
			u := pid.Update(vHist[0])
			dem := demand(c)
			i := dem - u
			// Actuation authority: gating can only pull current down
			// toward the floor, phantom firing only push it up toward the
			// ceiling; the raw demand itself is always reachable.
			lo, hi := env.Floor, env.Ceil
			if dem < lo {
				lo = dem
			}
			if dem > hi {
				hi = dem
			}
			if i < lo {
				i = lo
			}
			if i > hi {
				i = hi
			}
			if math.Abs(i-dem) > 0.5 {
				intervened++
			}
			total++
			v := sim.Step(i)
			if dev := math.Abs(v - vNom); dev > worst {
				worst = dev
			}
			copy(vHist, vHist[1:])
			vHist[delay] = v
		}
	}
	if total == 0 {
		return worst, 0
	}
	return worst, float64(intervened) / float64(total)
}
