package power

import (
	"math"
	"testing"

	"didt/internal/cpu"
	"didt/internal/isa"
)

func newM() *Model {
	return New(Params{}, cpu.DefaultConfig())
}

func TestDefaultsApplied(t *testing.T) {
	m := newM()
	p := m.Params()
	if p.VNominal != 1.0 || p.ClockHz != 3e9 || p.IdleFraction != 0.10 || p.GatedFraction != 0.02 {
		t.Errorf("defaults: %+v", p)
	}
	if p.Peak[UnitClock] == 0 {
		t.Error("peak powers not defaulted")
	}
}

func TestEnvelopeOrdering(t *testing.T) {
	m := newM()
	min, max := m.MinCurrent(), m.MaxCurrent()
	if !(0 < min && min < max) {
		t.Fatalf("0 < min (%g) < max (%g) violated", min, max)
	}
	// A ~60W/1V processor: max around 55-70A, min well below half.
	if max < 40 || max > 90 {
		t.Errorf("max current %g A out of the calibrated range", max)
	}
	if min > max/3 {
		t.Errorf("idle current %g too close to max %g", min, max)
	}
}

func TestIdleCycleNearMinCurrent(t *testing.T) {
	m := newM()
	r := m.Step(&cpu.Activity{}, Phantom{})
	if d := math.Abs(r.Current - m.MinCurrent()); d > 1.0 {
		t.Errorf("idle cycle current %g vs MinCurrent %g", r.Current, m.MinCurrent())
	}
}

func fullActivity(cfg cpu.Config) *cpu.Activity {
	var act cpu.Activity
	act.Fetched = cfg.FetchWidth
	act.Dispatched = cfg.DecodeWidth
	act.Issued = cfg.IssueWidth
	act.Completed = cfg.IssueWidth
	act.Committed = cfg.CommitWidth
	act.IssuedByClass[isa.ClassIntALU] = cfg.IntALU
	act.IssuedByClass[isa.ClassIntDiv] = cfg.IntMult
	act.IssuedByClass[isa.ClassFPAdd] = cfg.FPALU
	act.IssuedByClass[isa.ClassFPDiv] = cfg.FPMult
	act.IssuedByClass[isa.ClassLoad] = cfg.MemPorts
	act.BpredLookups = 2
	act.ICacheAccess = 1
	act.DCacheAccess = cfg.MemPorts
	act.L2Access = 1
	act.RegReads = 2 * cfg.IssueWidth
	act.RegWrites = cfg.IssueWidth
	act.WindowWakeups = cfg.IssueWidth
	act.RUUOccupancy = cfg.RUUSize
	act.LSQOccupancy = cfg.LSQSize
	return &act
}

func TestBusyCycleApproachesMax(t *testing.T) {
	cfg := cpu.DefaultConfig()
	m := newM()
	var r CycleReport
	for i := 0; i < 30; i++ { // let spreading saturate
		r = m.Step(fullActivity(cfg), Phantom{})
	}
	if r.Current < 0.85*m.MaxCurrent() {
		t.Errorf("fully busy current %g, want near max %g", r.Current, m.MaxCurrent())
	}
	if r.Current > m.MaxCurrent()*1.0001 {
		t.Errorf("current %g exceeds max %g", r.Current, m.MaxCurrent())
	}
}

func TestMoreActivityMorePower(t *testing.T) {
	cfg := cpu.DefaultConfig()
	m1, m2 := newM(), newM()
	var half cpu.Activity
	half.Fetched = cfg.FetchWidth / 2
	half.Issued = cfg.IssueWidth / 2
	half.IssuedByClass[isa.ClassIntALU] = cfg.IntALU / 2
	half.RUUOccupancy = cfg.RUUSize / 2
	var rHalf, rFull CycleReport
	for i := 0; i < 10; i++ {
		rHalf = m1.Step(&half, Phantom{})
		rFull = m2.Step(fullActivity(cfg), Phantom{})
	}
	if rHalf.Power >= rFull.Power {
		t.Errorf("half activity %gW >= full %gW", rHalf.Power, rFull.Power)
	}
}

func TestMultiCycleSpreading(t *testing.T) {
	// One FDIV issue must contribute FPMult activity for LatFPDiv cycles,
	// not a single spike.
	cfg := cpu.DefaultConfig()
	m := newM()
	var act cpu.Activity
	act.IssuedByClass[isa.ClassFPDiv] = 1
	r0 := m.Step(&act, Phantom{})
	elevated := 0
	for i := 0; i < cfg.LatFPDiv+5; i++ {
		r := m.Step(&cpu.Activity{}, Phantom{})
		if r.PerUnit[UnitFPMult] > m.Params().Peak[UnitFPMult]*m.Params().IdleFraction*1.01 {
			elevated++
		}
	}
	if r0.PerUnit[UnitFPMult] <= m.Params().Peak[UnitFPMult]*m.Params().IdleFraction {
		t.Error("issue cycle shows no FPMult activity")
	}
	if elevated < cfg.LatFPDiv-2 || elevated > cfg.LatFPDiv {
		t.Errorf("FPMult elevated for %d cycles, want ~%d-1", elevated, cfg.LatFPDiv)
	}
}

func TestHardGatingBelowIdle(t *testing.T) {
	m := newM()
	var act cpu.Activity
	act.FUsGated, act.DL1Gated, act.IL1Gated = true, true, true
	r := m.Step(&act, Phantom{})
	p := m.Params()
	for _, u := range []Unit{UnitIntALU, UnitFPALU, UnitL1D, UnitL1I} {
		if r.PerUnit[u] > p.Peak[u]*p.GatedFraction*1.001 {
			t.Errorf("%s gated power %g exceeds residual", u, r.PerUnit[u])
		}
	}
	idleR := newM().Step(&cpu.Activity{}, Phantom{})
	if r.Current >= idleR.Current {
		t.Errorf("hard-gated current %g should undercut idle %g", r.Current, idleR.Current)
	}
}

func TestPhantomFiringRaisesCurrent(t *testing.T) {
	m1, m2 := newM(), newM()
	idle := m1.Step(&cpu.Activity{}, Phantom{})
	ph := m2.Step(&cpu.Activity{}, Phantom{FUs: true, DL1: true, IL1: true})
	if ph.Current <= idle.Current+10 {
		t.Errorf("phantom firing raised current only from %g to %g", idle.Current, ph.Current)
	}
	p := m2.Params()
	if ph.PerUnit[UnitIntALU] != p.Peak[UnitIntALU] {
		t.Errorf("phantom IntALU at %g, want peak %g", ph.PerUnit[UnitIntALU], p.Peak[UnitIntALU])
	}
}

func TestGatedFloorAndPhantomCeilingOrdering(t *testing.T) {
	m := newM()
	// Wider gating scope digs a deeper floor. Narrow scopes leave the rest
	// of the chip running, so their floors sit ABOVE the all-idle current —
	// the Section 5.2 leverage argument.
	fu := m.GatedFloorCurrent(true, false, false)
	fud := m.GatedFloorCurrent(true, true, false)
	fudi := m.GatedFloorCurrent(true, true, true)
	if !(fudi < fud && fud < fu) {
		t.Errorf("floors not ordered: fu=%g fud=%g fudi=%g", fu, fud, fudi)
	}
	if fu < m.MinCurrent() {
		t.Errorf("FU-only floor %g should exceed all-idle %g (front end keeps running)", fu, m.MinCurrent())
	}
	if fudi > m.MinCurrent() {
		t.Errorf("full-scope floor %g should undercut all-idle %g", fudi, m.MinCurrent())
	}
	// Wider phantom scope reaches a higher ceiling.
	pfu := m.PhantomCeilingCurrent(true, false, false)
	pfud := m.PhantomCeilingCurrent(true, true, false)
	pfudi := m.PhantomCeilingCurrent(true, true, true)
	if !(pfudi > pfud && pfud > pfu && pfu > m.MinCurrent()) {
		t.Errorf("ceilings not ordered: %g %g %g idle=%g", pfu, pfud, pfudi, m.MinCurrent())
	}
	if pfudi >= m.MaxCurrent() {
		t.Errorf("phantom ceiling %g should stay below absolute max %g", pfudi, m.MaxCurrent())
	}
}

func TestEnergyAccumulates(t *testing.T) {
	m := newM()
	if m.TotalEnergy() != 0 {
		t.Fatal("fresh model has energy")
	}
	r := m.Step(&cpu.Activity{}, Phantom{})
	want := r.Power / m.Params().ClockHz
	if math.Abs(m.TotalEnergy()-want) > 1e-18 {
		t.Errorf("energy %g, want %g", m.TotalEnergy(), want)
	}
	m.Step(&cpu.Activity{}, Phantom{})
	if m.Cycles() != 2 {
		t.Errorf("cycles = %d", m.Cycles())
	}
}

func TestActivityFractionsClamped(t *testing.T) {
	// Absurd over-reporting must not push any unit past its peak.
	m := newM()
	var act cpu.Activity
	act.Fetched = 1000
	act.DCacheAccess = 1000
	act.RegReads = 1000
	act.IssuedByClass[isa.ClassIntALU] = 1000
	r := m.Step(&act, Phantom{})
	p := m.Params()
	for u := Unit(0); u < NumUnits; u++ {
		if r.PerUnit[u] > p.Peak[u]*1.0001 {
			t.Errorf("%s power %g exceeds peak %g", u, r.PerUnit[u], p.Peak[u])
		}
	}
}

func TestUnitStringNames(t *testing.T) {
	if UnitClock.String() != "clock" || UnitL1D.String() != "l1d" {
		t.Error("unit names wrong")
	}
	if Unit(99).String() == "" {
		t.Error("out-of-range unit name empty")
	}
}
