package power

// Delivery scopes partition the power-modeled units into the groups the
// multi-rail PDN can place on separate rails. The partition follows the
// actuator's gating scopes — FU, DL1, IL1 — so per-rail current naturally
// lines up with what gate/phantom-fire actuation can reach, plus an
// "uncore" scope for everything else (clock tree, rename, window, LSQ,
// register file, L2, result bus). The single-rail model is the degenerate
// partition where one rail owns every scope.

// Scope identifies one delivery scope.
type Scope int

const (
	ScopeFU Scope = iota
	ScopeDL1
	ScopeIL1
	ScopeUncore
	NumScopes
)

var scopeNames = [NumScopes]string{"fu", "dl1", "il1", "uncore"}

// String names the scope.
func (s Scope) String() string {
	if s >= 0 && int(s) < len(scopeNames) {
		return scopeNames[s]
	}
	return "scope(?)"
}

// ScopeNames lists the scope names in index order; the spec layer uses it
// for rail-binding validation and did-you-mean hints.
func ScopeNames() []string { return append([]string(nil), scopeNames[:]...) }

// ScopeByName resolves a scope name (as used in spec rail bindings).
func ScopeByName(name string) (Scope, bool) {
	for i, n := range scopeNames {
		if n == name {
			return Scope(i), true
		}
	}
	return 0, false
}

// scopeOf maps every unit to its delivery scope. The FU/DL1/IL1 rows match
// classify()'s hard-gating cases exactly; everything else is uncore.
var scopeOf = [NumUnits]Scope{
	UnitClock:     ScopeUncore,
	UnitFetch:     ScopeIL1,
	UnitBpred:     ScopeIL1,
	UnitRename:    ScopeUncore,
	UnitWindow:    ScopeUncore,
	UnitLSQ:       ScopeUncore,
	UnitRegFile:   ScopeUncore,
	UnitL1I:       ScopeIL1,
	UnitL1D:       ScopeDL1,
	UnitL2:        ScopeUncore,
	UnitIntALU:    ScopeFU,
	UnitIntMult:   ScopeFU,
	UnitFPALU:     ScopeFU,
	UnitFPMult:    ScopeFU,
	UnitResultBus: ScopeUncore,
}

// ScopeOf returns the delivery scope a unit belongs to.
func ScopeOf(u Unit) Scope { return scopeOf[u] }

// ScopeMask is a set of scopes — the scopes one rail owns.
type ScopeMask uint8

// Mask returns the single-scope mask.
func (s Scope) Mask() ScopeMask { return 1 << uint(s) }

// AllScopes is the full partition (the single-rail degenerate case).
const AllScopes = ScopeMask(1<<NumScopes) - 1

// Has reports whether the mask contains the scope.
func (m ScopeMask) Has(s Scope) bool { return m&s.Mask() != 0 }

// ScopeCurrents splits one cycle's current draw across the delivery
// scopes: dst[s] receives scope s's amperes. dst must have length >=
// NumScopes. The multi-rail closed loop calls this every cycle, so it
// allocates nothing.
//
//didt:hotpath
func (m *Model) ScopeCurrents(r *CycleReport, dst []float64) {
	_ = dst[NumScopes-1]
	for s := 0; s < int(NumScopes); s++ {
		dst[s] = 0
	}
	for u := Unit(0); u < NumUnits; u++ {
		dst[scopeOf[u]] += r.PerUnit[u]
	}
	inv := 1 / m.p.VNominal
	for s := 0; s < int(NumScopes); s++ {
		dst[s] *= inv
	}
}

// ScopedMinCurrent returns the quiescent (cc3-idle) current drawn by the
// units in the given scopes — the per-rail analogue of MinCurrent. The
// clock tree belongs to uncore and idles at its activity-tracking floor.
// Summed over the full partition this reproduces MinCurrent (same factors,
// possibly different float association, so compare with a tolerance).
func (m *Model) ScopedMinCurrent(mask ScopeMask) float64 {
	var sel float64
	for u := Unit(1); u < NumUnits; u++ {
		if mask.Has(scopeOf[u]) {
			sel += m.p.Peak[u] * m.p.IdleFraction
		}
	}
	if mask.Has(ScopeUncore) {
		sel += m.p.Peak[UnitClock] * (0.35 + 0.65*m.p.IdleFraction)
	}
	return sel / m.p.VNominal
}

// ScopedMaxCurrent returns the all-units-at-peak current of the given
// scopes — the per-rail analogue of MaxCurrent.
func (m *Model) ScopedMaxCurrent(mask ScopeMask) float64 {
	var sel float64
	for u := Unit(0); u < NumUnits; u++ {
		if mask.Has(scopeOf[u]) {
			sel += m.p.Peak[u]
		}
	}
	return sel / m.p.VNominal
}

// ScopedGatedFloorCurrent restricts GatedFloorCurrent to the units of the
// given scopes: the current the actuator can force on one rail by
// hard-gating the given groups, while un-gated units keep running at the
// sustained level. The clock term uses the whole-chip activity fraction —
// the clock tree spans the die regardless of which rail feeds it — so the
// scoped floors summed over the full partition equal GatedFloorCurrent.
func (m *Model) ScopedGatedFloorCurrent(mask ScopeMask, fus, dl1, il1 bool) float64 {
	var p, sumPeak, sel float64
	for u := Unit(1); u < NumUnits; u++ {
		var f float64
		switch classify(u, fus, dl1, il1) {
		case scopeGated:
			f = m.p.GatedFraction
		case scopeStalled:
			f = m.p.IdleFraction
		default:
			f = sustainedFraction
		}
		pu := m.p.Peak[u] * f
		p += pu
		sumPeak += m.p.Peak[u]
		if mask.Has(scopeOf[u]) {
			sel += pu
		}
	}
	if mask.Has(ScopeUncore) {
		sel += m.p.Peak[UnitClock] * (0.35 + 0.65*(p/sumPeak))
	}
	return sel / m.p.VNominal
}

// ScopedPhantomCeilingCurrent restricts PhantomCeilingCurrent to the units
// of the given scopes: the current one rail reaches when the actuator
// phantom-fires the given groups while the remainder idles. The clock term
// again tracks whole-chip activity.
func (m *Model) ScopedPhantomCeilingCurrent(mask ScopeMask, fus, dl1, il1 bool) float64 {
	var p, sumPeak, sel float64
	for u := Unit(1); u < NumUnits; u++ {
		full := false
		switch u {
		case UnitIntALU, UnitIntMult, UnitFPALU, UnitFPMult:
			full = fus
		case UnitL1D:
			full = dl1
		case UnitL1I, UnitFetch, UnitBpred:
			full = il1
		}
		pu := m.p.Peak[u] * m.p.IdleFraction
		if full {
			pu = m.p.Peak[u]
		}
		p += pu
		sumPeak += m.p.Peak[u]
		if mask.Has(scopeOf[u]) {
			sel += pu
		}
	}
	if mask.Has(ScopeUncore) {
		sel += m.p.Peak[UnitClock] * (0.35 + 0.65*(p/sumPeak))
	}
	return sel / m.p.VNominal
}
