// Package power is the structural, Wattch-style power model: it converts
// the core's per-cycle Activity reports into per-cycle power and current.
//
// Modeling choices mirror Section 3.1 of the paper:
//
//   - Conditional clock gating ("cc3"): an idle unit still draws a fixed
//     fraction of its peak power (default 10%). A unit hard-gated by the
//     dI/dt actuator draws a smaller residual (default 2%).
//   - Multi-cycle operations (divides, fp multiplies) spread their energy
//     over their full execution latency rather than charging it all at
//     issue, which would overstate cycle-to-cycle current swings.
//   - The clock tree has a fixed floor plus a component that tracks how
//     much of the chip is active.
//   - Peak unit powers are calibrated to a ~60 W, 3 GHz, 1.0 V processor
//     (ITRS-derived scaling), and current is power divided by nominal
//     voltage — supply ripple is ±5%, so the linearization error is small
//     and is the same approximation the paper's toolchain makes.
//
// The model also implements the actuator's "phantom firing": when the
// controller requests extra current draw, the controlled units are charged
// at full activity regardless of real utilization.
package power

import (
	"fmt"

	"didt/internal/cpu"
	"didt/internal/isa"
)

// Unit identifies one power-modeled structure.
type Unit int

const (
	UnitClock Unit = iota
	UnitFetch
	UnitBpred
	UnitRename
	UnitWindow
	UnitLSQ
	UnitRegFile
	UnitL1I
	UnitL1D
	UnitL2
	UnitIntALU
	UnitIntMult
	UnitFPALU
	UnitFPMult
	UnitResultBus
	NumUnits
)

var unitNames = [NumUnits]string{
	"clock", "fetch", "bpred", "rename", "window", "lsq", "regfile",
	"l1i", "l1d", "l2", "int-alu", "int-mult", "fp-alu", "fp-mult",
	"result-bus",
}

// String names the unit.
func (u Unit) String() string {
	if u >= 0 && int(u) < len(unitNames) {
		return unitNames[u]
	}
	return fmt.Sprintf("unit(%d)", int(u))
}

// Params configures the model. Zero values take defaults.
type Params struct {
	VNominal      float64 // volts; default 1.0
	ClockHz       float64 // default 3 GHz
	IdleFraction  float64 // cc3 residual for an idle unit; default 0.10
	GatedFraction float64 // residual for an actuator-gated unit; default 0.02

	// Peak per-unit power in watts; zero takes DefaultUnitPowers.
	Peak [NumUnits]float64
}

// DefaultUnitPowers is the peak power budget (watts) of the modeled 3 GHz
// 1.0 V core, roughly 62 W total, with a Wattch-like breakdown.
func DefaultUnitPowers() [NumUnits]float64 {
	return [NumUnits]float64{
		UnitClock:     12.0,
		UnitFetch:     4.0,
		UnitBpred:     2.5,
		UnitRename:    2.0,
		UnitWindow:    9.0,
		UnitLSQ:       3.5,
		UnitRegFile:   5.0,
		UnitL1I:       5.0,
		UnitL1D:       7.0,
		UnitL2:        4.5,
		UnitIntALU:    6.5,
		UnitIntMult:   1.5,
		UnitFPALU:     4.0,
		UnitFPMult:    2.5,
		UnitResultBus: 3.0,
	}
}

// WithDefaults fills zero fields with the reference 3 GHz / 1.0 V model.
// The spec layer resolves the power section of a RunSpec through this;
// power.New applies it again idempotently for direct users.
func (p Params) WithDefaults() Params {
	if p.VNominal == 0 {
		p.VNominal = 1.0
	}
	if p.ClockHz == 0 {
		p.ClockHz = 3e9
	}
	if p.IdleFraction == 0 {
		p.IdleFraction = 0.10
	}
	if p.GatedFraction == 0 {
		p.GatedFraction = 0.02
	}
	allZero := true
	for _, v := range p.Peak {
		if v != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		p.Peak = DefaultUnitPowers()
	}
	return p
}

// Phantom is the actuator's phantom-firing request: charge the named
// structures at full activity to raise current draw (voltage-high
// response). Phantom firings do no architectural work.
type Phantom struct {
	FUs bool
	DL1 bool
	IL1 bool
}

// CycleReport is one cycle's power accounting.
type CycleReport struct {
	Power   float64 // watts
	Current float64 // amperes (Power / VNominal)
	PerUnit [NumUnits]float64
}

// Model converts Activity to power. It carries the energy-spreading
// calendars for multi-cycle operations and accumulates total energy; it is
// not safe for concurrent use.
type Model struct {
	p   Params
	cfg cpu.Config

	// spread[class] is a ring of "units busy" counts for future cycles,
	// fed at issue time with the operation's full latency.
	spread [isa.NumClasses][]float64
	pos    int

	// sumPeak is the peak power of units 1..NumUnits-1 accumulated in
	// ascending unit order — the same order (hence the same float) the
	// per-cycle loop used to recompute it before it was hoisted here.
	sumPeak float64

	cycles      uint64
	totalEnergy float64 // joules
}

const spreadLen = 64 // exceeds the longest FU latency

// New builds a model for the given core configuration.
func New(p Params, cfg cpu.Config) *Model {
	m := &Model{p: p.WithDefaults(), cfg: cfg}
	for c := range m.spread {
		m.spread[c] = make([]float64, spreadLen)
	}
	for u := Unit(1); u < NumUnits; u++ {
		m.sumPeak += m.p.Peak[u]
	}
	return m
}

// Params returns the resolved parameters.
func (m *Model) Params() Params { return m.p }

// classLatency mirrors the core's execution latencies for spreading.
func (m *Model) classLatency(cl isa.Class) int {
	switch cl {
	case isa.ClassIntALU, isa.ClassBranch:
		return max1(m.cfg.LatIntALU)
	case isa.ClassIntMult:
		return max1(m.cfg.LatIntMult)
	case isa.ClassIntDiv:
		return max1(m.cfg.LatIntDiv)
	case isa.ClassFPAdd:
		return max1(m.cfg.LatFPAdd)
	case isa.ClassFPMult:
		return max1(m.cfg.LatFPMult)
	case isa.ClassFPDiv:
		return max1(m.cfg.LatFPDiv)
	}
	return 1
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// Step accounts one cycle of activity and returns its power.
//
//didt:hotpath
func (m *Model) Step(act *cpu.Activity, ph Phantom) CycleReport {
	// Feed the spreading calendars with this cycle's issues.
	for cl, n := range act.IssuedByClass {
		if n == 0 {
			continue
		}
		lat := m.classLatency(isa.Class(cl))
		idx := m.pos
		for k := 0; k < lat && k < spreadLen; k++ {
			m.spread[cl][idx] += float64(n)
			if idx++; idx == spreadLen {
				idx = 0
			}
		}
	}
	//didt:allow hotpath -- closure never escapes Step, so it stays on the stack; the -benchmem gate pins Step at 0 allocs/op
	busy := func(cl isa.Class) float64 { return m.spread[cl][m.pos] }

	var r CycleReport
	idle := m.p.IdleFraction
	gated := m.p.GatedFraction

	// util computes a unit's power given its activity fraction and whether
	// the actuator has hard-gated it.
	//
	//didt:allow hotpath -- closure never escapes Step, so it stays on the stack; the -benchmem gate pins Step at 0 allocs/op
	util := func(u Unit, frac float64, hardGated, phantom bool) float64 {
		peak := m.p.Peak[u]
		switch {
		case phantom:
			return peak // phantom firing: full rail
		case hardGated:
			return peak * gated
		}
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		// cc3: idle floor plus activity-proportional dynamic power.
		return peak * (idle + (1-idle)*frac)
	}

	fw := float64(m.cfg.FetchWidth)
	iw := float64(m.cfg.IssueWidth)

	// Front end.
	r.PerUnit[UnitFetch] = util(UnitFetch, float64(act.Fetched)/fw, act.IL1Gated, ph.IL1)
	r.PerUnit[UnitBpred] = util(UnitBpred, float64(act.BpredLookups)/2, act.IL1Gated, ph.IL1)
	r.PerUnit[UnitL1I] = util(UnitL1I, float64(act.ICacheAccess), act.IL1Gated, ph.IL1)
	r.PerUnit[UnitRename] = util(UnitRename, float64(act.Dispatched)/float64(m.cfg.DecodeWidth), false, false)

	// Window and register machinery.
	occFrac := float64(act.RUUOccupancy) / float64(m.cfg.RUUSize)
	issFrac := float64(act.Issued) / iw
	r.PerUnit[UnitWindow] = util(UnitWindow, 0.45*occFrac+0.55*issFrac, false, false)
	lsqFrac := float64(act.LSQOccupancy) / float64(m.cfg.LSQSize)
	memIss := float64(act.IssuedByClass[isa.ClassLoad]+act.IssuedByClass[isa.ClassStore]) / float64(m.cfg.MemPorts)
	r.PerUnit[UnitLSQ] = util(UnitLSQ, 0.4*lsqFrac+0.6*memIss, false, false)
	r.PerUnit[UnitRegFile] = util(UnitRegFile, float64(act.RegReads+act.RegWrites)/(3*iw), false, false)
	r.PerUnit[UnitResultBus] = util(UnitResultBus, float64(act.Completed)/iw, false, false)

	// Execution units, with multi-cycle spreading.
	r.PerUnit[UnitIntALU] = util(UnitIntALU,
		(busy(isa.ClassIntALU)+busy(isa.ClassBranch))/float64(m.cfg.IntALU),
		act.FUsGated, ph.FUs)
	r.PerUnit[UnitIntMult] = util(UnitIntMult,
		(busy(isa.ClassIntMult)+busy(isa.ClassIntDiv))/float64(m.cfg.IntMult),
		act.FUsGated, ph.FUs)
	r.PerUnit[UnitFPALU] = util(UnitFPALU,
		busy(isa.ClassFPAdd)/float64(m.cfg.FPALU),
		act.FUsGated, ph.FUs)
	r.PerUnit[UnitFPMult] = util(UnitFPMult,
		(busy(isa.ClassFPMult)+busy(isa.ClassFPDiv))/float64(m.cfg.FPMult),
		act.FUsGated, ph.FUs)

	// Data-side caches.
	r.PerUnit[UnitL1D] = util(UnitL1D, float64(act.DCacheAccess)/float64(m.cfg.MemPorts),
		act.DL1Gated, ph.DL1)
	r.PerUnit[UnitL2] = util(UnitL2, float64(act.L2Access), false, false)

	// Clock tree: fixed floor plus a share tracking overall chip activity.
	var sum float64
	for u := Unit(1); u < NumUnits; u++ {
		sum += r.PerUnit[u]
	}
	activityFrac := 0.0
	if m.sumPeak > 0 {
		activityFrac = sum / m.sumPeak
	}
	r.PerUnit[UnitClock] = m.p.Peak[UnitClock] * (0.35 + 0.65*activityFrac)

	for u := Unit(0); u < NumUnits; u++ {
		r.Power += r.PerUnit[u]
	}
	r.Current = r.Power / m.p.VNominal

	m.totalEnergy += r.Power / m.p.ClockHz
	m.cycles++

	// Advance the spreading calendar.
	for c := range m.spread {
		m.spread[c][m.pos] = 0
	}
	m.pos = (m.pos + 1) % spreadLen
	return r
}

// TotalEnergy returns the accumulated energy in joules.
func (m *Model) TotalEnergy() float64 { return m.totalEnergy }

// Cycles returns how many cycles have been accounted.
func (m *Model) Cycles() uint64 { return m.cycles }

// MinCurrent returns the quiescent current: every unit idle under
// conditional clock gating. This is the regulator's calibration point
// (IFloor) and the floor the actuator can force current toward.
func (m *Model) MinCurrent() float64 {
	var p float64
	for u := Unit(1); u < NumUnits; u++ {
		p += m.p.Peak[u] * m.p.IdleFraction
	}
	var sumPeak float64
	for u := Unit(1); u < NumUnits; u++ {
		sumPeak += m.p.Peak[u]
	}
	p += m.p.Peak[UnitClock] * (0.35 + 0.65*m.p.IdleFraction)
	return p / m.p.VNominal
}

// MaxCurrent returns the absolute worst-case current: every unit at peak.
func (m *Model) MaxCurrent() float64 {
	var p float64
	for u := Unit(0); u < NumUnits; u++ {
		p += m.p.Peak[u]
	}
	return p / m.p.VNominal
}

// sustainedFraction is the activity level the un-gated parts of the chip
// can sustain over a short gating window: the machine keeps fetching and
// accessing caches for tens of cycles while only some units are gated, so
// the worst-case analysis must assume an adversarial workload keeps them
// nearly saturated.
const sustainedFraction = 0.8

// gatingScope classifies each unit under an actuation decision: directly
// hard-gated, indirectly stalled within a couple of cycles (its upstream
// work source is gated), or still running.
type gatingScope int

const (
	scopeRunning gatingScope = iota
	scopeStalled
	scopeGated
)

func classify(u Unit, fus, dl1, il1 bool) gatingScope {
	switch u {
	case UnitIntALU, UnitIntMult, UnitFPALU, UnitFPMult:
		if fus {
			return scopeGated
		}
	case UnitL1D:
		if dl1 {
			return scopeGated
		}
	case UnitL1I, UnitFetch, UnitBpred:
		if il1 {
			return scopeGated
		}
	case UnitResultBus, UnitRegFile:
		// Results stop flowing as soon as the execution units stop.
		if fus {
			return scopeStalled
		}
	case UnitLSQ, UnitL2:
		// Memory traffic stops when the D-cache is gated.
		if dl1 {
			return scopeStalled
		}
	case UnitRename:
		// Dispatch stops when fetch stops.
		if il1 {
			return scopeStalled
		}
	case UnitWindow:
		if fus && dl1 {
			return scopeStalled // nothing issues at all
		}
	}
	return scopeRunning
}

// GatedFloorCurrent returns the current the actuator can force within the
// control-relevant horizon (a fraction of the resonant period) by
// hard-gating the given unit groups. Crucially, units outside the gated
// scope keep running at a sustained activity level — this is why FU-only
// actuation "does not have the necessary leverage to reshape voltage
// quickly" (Section 5.2): the front end and caches carry on.
func (m *Model) GatedFloorCurrent(fus, dl1, il1 bool) float64 {
	var p, sumPeak float64
	for u := Unit(1); u < NumUnits; u++ {
		switch classify(u, fus, dl1, il1) {
		case scopeGated:
			p += m.p.Peak[u] * m.p.GatedFraction
		case scopeStalled:
			p += m.p.Peak[u] * m.p.IdleFraction
		default:
			p += m.p.Peak[u] * sustainedFraction
		}
		sumPeak += m.p.Peak[u]
	}
	p += m.p.Peak[UnitClock] * (0.35 + 0.65*(p/sumPeak))
	return p / m.p.VNominal
}

// PhantomCeilingCurrent returns the current reached when the actuator
// phantom-fires the given groups. Phantom firing happens in voltage-high
// states, which follow low activity, so the un-fired remainder of the
// chip is charged at the idle floor.
func (m *Model) PhantomCeilingCurrent(fus, dl1, il1 bool) float64 {
	var p, sumPeak float64
	for u := Unit(1); u < NumUnits; u++ {
		full := false
		switch u {
		case UnitIntALU, UnitIntMult, UnitFPALU, UnitFPMult:
			full = fus
		case UnitL1D:
			full = dl1
		case UnitL1I, UnitFetch, UnitBpred:
			full = il1
		}
		if full {
			p += m.p.Peak[u]
		} else {
			p += m.p.Peak[u] * m.p.IdleFraction
		}
		sumPeak += m.p.Peak[u]
	}
	p += m.p.Peak[UnitClock] * (0.35 + 0.65*(p/sumPeak))
	return p / m.p.VNominal
}
