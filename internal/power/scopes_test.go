package power

import (
	"math"
	"testing"

	"didt/internal/cpu"
	"didt/internal/isa"
)

func scopePartition() []ScopeMask {
	return []ScopeMask{ScopeFU.Mask(), ScopeDL1.Mask(), ScopeIL1.Mask(), ScopeUncore.Mask()}
}

func TestScopeOfMatchesGatingClassify(t *testing.T) {
	// The FU/DL1/IL1 scopes must contain exactly the units classify()
	// hard-gates for that group — the rail partition and the actuator's
	// reach are the same sets by construction.
	for u := Unit(0); u < NumUnits; u++ {
		wantFU := classify(u, true, false, false) == scopeGated
		wantDL1 := classify(u, false, true, false) == scopeGated
		wantIL1 := classify(u, false, false, true) == scopeGated
		s := ScopeOf(u)
		if (s == ScopeFU) != wantFU || (s == ScopeDL1) != wantDL1 || (s == ScopeIL1) != wantIL1 {
			t.Errorf("unit %v: scope %v disagrees with classify (fu=%v dl1=%v il1=%v)",
				u, s, wantFU, wantDL1, wantIL1)
		}
	}
}

func TestScopeByName(t *testing.T) {
	for i, name := range ScopeNames() {
		s, ok := ScopeByName(name)
		if !ok || s != Scope(i) {
			t.Errorf("ScopeByName(%q) = %v,%v", name, s, ok)
		}
	}
	if _, ok := ScopeByName("l3"); ok {
		t.Error("unknown scope name resolved")
	}
}

// TestScopeCurrentsPartitionCycle: the per-scope split must account for
// every watt of the cycle report — the sum of scope currents equals the
// report's total current.
func TestScopeCurrentsPartitionCycle(t *testing.T) {
	m := New(Params{}, cpu.DefaultConfig())
	var act cpu.Activity
	act.Fetched = 4
	act.Dispatched = 4
	act.Issued = 3
	act.Completed = 3
	act.ICacheAccess = 1
	act.DCacheAccess = 2
	act.RUUOccupancy = 40
	act.LSQOccupancy = 10
	act.RegReads = 6
	act.RegWrites = 3
	act.IssuedByClass[isa.ClassIntALU] = 2
	act.IssuedByClass[isa.ClassLoad] = 1
	for cyc := 0; cyc < 50; cyc++ {
		r := m.Step(&act, Phantom{})
		scoped := make([]float64, NumScopes)
		m.ScopeCurrents(&r, scoped)
		var sum float64
		for _, c := range scoped {
			sum += c
		}
		if math.Abs(sum-r.Current) > 1e-12*r.Current {
			t.Fatalf("cycle %d: scope currents sum %.15g != total %.15g", cyc, sum, r.Current)
		}
	}
}

// TestScopedEnvelopesPartition: per-scope min/max/floor/ceiling summed
// over the full partition must reproduce the whole-chip figures.
func TestScopedEnvelopesPartition(t *testing.T) {
	m := New(Params{}, cpu.DefaultConfig())
	sumOver := func(f func(ScopeMask) float64) float64 {
		var s float64
		for _, mask := range scopePartition() {
			s += f(mask)
		}
		return s
	}
	close := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-12*want {
			t.Errorf("%s: partition sum %.15g, whole-chip %.15g", name, got, want)
		}
	}
	close("min", sumOver(m.ScopedMinCurrent), m.MinCurrent())
	close("max", sumOver(m.ScopedMaxCurrent), m.MaxCurrent())
	for _, gate := range []struct{ fus, dl1, il1 bool }{
		{true, false, false}, {true, true, false}, {true, true, true},
	} {
		close("floor", sumOver(func(mk ScopeMask) float64 {
			return m.ScopedGatedFloorCurrent(mk, gate.fus, gate.dl1, gate.il1)
		}), m.GatedFloorCurrent(gate.fus, gate.dl1, gate.il1))
		close("ceil", sumOver(func(mk ScopeMask) float64 {
			return m.ScopedPhantomCeilingCurrent(mk, gate.fus, gate.dl1, gate.il1)
		}), m.PhantomCeilingCurrent(gate.fus, gate.dl1, gate.il1))
	}
	// AllScopes is the degenerate single-rail partition in one mask.
	close("all-min", m.ScopedMinCurrent(AllScopes), m.MinCurrent())
	close("all-floor", m.ScopedGatedFloorCurrent(AllScopes, true, true, true),
		m.GatedFloorCurrent(true, true, true))
}

// TestScopedGatingAuthority: gating FUs must drop the FU rail's floor far
// below its sustained level while leaving the uncore rail's draw above its
// idle — the per-rail restatement of Section 5.2's leverage argument.
func TestScopedGatingAuthority(t *testing.T) {
	m := New(Params{}, cpu.DefaultConfig())
	fuFloor := m.ScopedGatedFloorCurrent(ScopeFU.Mask(), true, false, false)
	fuRun := m.ScopedGatedFloorCurrent(ScopeFU.Mask(), false, false, true)
	if fuFloor >= fuRun/2 {
		t.Errorf("gating FUs should collapse the FU rail: gated %.3g vs running %.3g", fuFloor, fuRun)
	}
	uncore := m.ScopedGatedFloorCurrent(ScopeUncore.Mask(), true, false, false)
	if uncore <= m.ScopedMinCurrent(ScopeUncore.Mask()) {
		t.Errorf("uncore keeps running under FU gating: floor %.3g <= idle %.3g",
			uncore, m.ScopedMinCurrent(ScopeUncore.Mask()))
	}
	// Phantom-firing a scope must raise that rail's ceiling above idle.
	dl1Ceil := m.ScopedPhantomCeilingCurrent(ScopeDL1.Mask(), false, true, false)
	if dl1Ceil <= m.ScopedMinCurrent(ScopeDL1.Mask()) {
		t.Errorf("phantom DL1 ceiling %.3g not above idle", dl1Ceil)
	}
}

func BenchmarkScopeCurrents(b *testing.B) {
	m := New(Params{}, cpu.DefaultConfig())
	var act cpu.Activity
	act.Issued = 3
	r := m.Step(&act, Phantom{})
	dst := make([]float64, NumScopes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScopeCurrents(&r, dst)
	}
}
