// Package linsys implements the second-order linear-system mathematics that
// underlie the paper's power-delivery-network model.
//
// The PDN seen from the die is modeled as a parallel resonance between the
// package inductance L (with series resistance R) and the decoupling
// capacitance C:
//
//	Z(s) = (R + sL) / (s^2 LC + s RC + 1)
//
// This transfer function maps load current to supply-voltage droop. It has
// DC value Z(0) = R, a resonant peak near w0 = 1/sqrt(LC), and — in every
// practically interesting configuration — a complex (underdamped) pole pair
//
//	s = -alpha +- j*wd,  alpha = R/(2L),  wd = sqrt(1/(LC) - alpha^2).
//
// All responses are available in closed form; no numerical ODE integration
// is required. The package mirrors the MATLAB model of Section 2.2 of the
// paper.
package linsys

import (
	"errors"
	"fmt"
	"math"
)

// SecondOrder is an underdamped second-order PDN transfer function
// Z(s) = (R + sL)/(s^2 LC + s RC + 1), constructed from circuit parameters.
// The zero value is not usable; build one with New or FromPeak.
type SecondOrder struct {
	R float64 // series (DC) resistance, ohms
	L float64 // package inductance, henries
	C float64 // decoupling capacitance, farads

	alpha float64 // damping rate R/(2L), 1/s
	wd    float64 // damped natural frequency, rad/s
	w0    float64 // undamped natural frequency 1/sqrt(LC), rad/s
}

// New builds a second-order system from explicit R, L, C values.
// It returns an error unless the parameters are positive and the system is
// underdamped (complex poles), which is the regime the paper analyzes.
func New(r, l, c float64) (*SecondOrder, error) {
	if r <= 0 || l <= 0 || c <= 0 {
		return nil, fmt.Errorf("linsys: parameters must be positive (R=%g L=%g C=%g)", r, l, c)
	}
	s := &SecondOrder{R: r, L: l, C: c}
	s.w0 = 1 / math.Sqrt(l*c)
	s.alpha = r / (2 * l)
	d := s.w0*s.w0 - s.alpha*s.alpha
	if d <= 0 {
		return nil, errors.New("linsys: system is not underdamped; the paper's PDN model requires complex poles")
	}
	s.wd = math.Sqrt(d)
	return s, nil
}

// FromPeak builds a system from the quantities the paper reports: DC
// resistance r (ohms), resonant frequency f0 (hertz), and peak impedance
// zPeak (ohms, the "target impedance" when the network meets spec).
//
// Internally it solves for the quality factor Q such that the exact peak of
// |Z(jw)| equals zPeak, then sets L = Q*r/w0 and C = 1/(w0^2 L).
func FromPeak(r, f0, zPeak float64) (*SecondOrder, error) {
	if r <= 0 || f0 <= 0 {
		return nil, fmt.Errorf("linsys: r and f0 must be positive (r=%g f0=%g)", r, f0)
	}
	if zPeak <= r {
		return nil, fmt.Errorf("linsys: peak impedance %g must exceed DC resistance %g", zPeak, r)
	}
	w0 := 2 * math.Pi * f0
	// |Z| at its maximum is a monotonically increasing function of Q for
	// fixed r, w0. Bisect Q in a generous bracket.
	lo, hi := 0.5000001, 1e4 // Q <= 0.5 is not underdamped
	f := func(q float64) float64 {
		l := q * r / w0
		c := 1 / (w0 * w0 * l)
		s, err := New(r, l, c)
		if err != nil {
			return -zPeak // treat as too small
		}
		return s.PeakImpedance() - zPeak
	}
	if f(hi) < 0 {
		return nil, fmt.Errorf("linsys: peak impedance %g unreachable with r=%g", zPeak, r)
	}
	if f(lo) > 0 {
		return nil, fmt.Errorf("linsys: peak impedance %g requires overdamped system (r=%g)", zPeak, r)
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if f(mid) > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	q := 0.5 * (lo + hi)
	l := q * r / w0
	c := 1 / (w0 * w0 * l)
	return New(r, l, c)
}

// Q returns the quality factor w0*L/R.
func (s *SecondOrder) Q() float64 { return s.w0 * s.L / s.R }

// DampingRatio returns zeta = alpha/w0. Underdamped systems have zeta < 1.
func (s *SecondOrder) DampingRatio() float64 { return s.alpha / s.w0 }

// ResonantFreq returns the undamped natural frequency in hertz.
func (s *SecondOrder) ResonantFreq() float64 { return s.w0 / (2 * math.Pi) }

// DampedFreq returns the damped oscillation frequency in hertz; transient
// ringing occurs at this frequency.
func (s *SecondOrder) DampedFreq() float64 { return s.wd / (2 * math.Pi) }

// Alpha returns the exponential decay rate of transients in 1/s.
func (s *SecondOrder) Alpha() float64 { return s.alpha }

// DCResistance returns Z(0) = R.
func (s *SecondOrder) DCResistance() float64 { return s.R }

// Impedance returns |Z(j*2*pi*f)| in ohms at frequency f hertz.
func (s *SecondOrder) Impedance(f float64) float64 {
	w := 2 * math.Pi * f
	num := complex(s.R, w*s.L)
	den := complex(1-w*w*s.L*s.C, w*s.R*s.C)
	return cmplxAbs(num) / cmplxAbs(den)
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

// PeakImpedance returns max over frequency of |Z(jw)|, found by golden-
// section search around the resonance (the curve is unimodal there).
func (s *SecondOrder) PeakImpedance() float64 {
	f0 := s.ResonantFreq()
	lo, hi := f0/10, f0*10
	gr := (math.Sqrt(5) - 1) / 2
	a, b := lo, hi
	c := b - gr*(b-a)
	d := a + gr*(b-a)
	for i := 0; i < 200; i++ {
		if s.Impedance(c) > s.Impedance(d) {
			b = d
		} else {
			a = c
		}
		c = b - gr*(b-a)
		d = a + gr*(b-a)
	}
	return s.Impedance(0.5 * (a + b))
}

// PeakFrequency returns the frequency (hertz) at which |Z| is maximal.
func (s *SecondOrder) PeakFrequency() float64 {
	f0 := s.ResonantFreq()
	lo, hi := f0/10, f0*10
	gr := (math.Sqrt(5) - 1) / 2
	a, b := lo, hi
	c := b - gr*(b-a)
	d := a + gr*(b-a)
	for i := 0; i < 200; i++ {
		if s.Impedance(c) > s.Impedance(d) {
			b = d
		} else {
			a = c
		}
		c = b - gr*(b-a)
		d = a + gr*(b-a)
	}
	return 0.5 * (a + b)
}

// Impulse returns h(t), the voltage-droop impulse response (ohms/second;
// convolving with current in amperes over seconds yields volts):
//
//	h(t) = (1/C) e^{-alpha t} (cos wd t + (alpha/wd) sin wd t),  t >= 0.
func (s *SecondOrder) Impulse(t float64) float64 {
	if t < 0 {
		return 0
	}
	e := math.Exp(-s.alpha * t)
	return (1 / s.C) * e * (math.Cos(s.wd*t) + (s.alpha/s.wd)*math.Sin(s.wd*t))
}

// Step returns the step response integral(0..t) h(tau) dtau: the voltage
// droop (volts) at time t after a unit (1 A) current step. It settles to
// Z(0) = R as t -> infinity.
func (s *SecondOrder) Step(t float64) float64 {
	if t <= 0 {
		return 0
	}
	// integral of e^{-a tau}(cos w tau + (a/w) sin w tau) dtau from 0 to t:
	// standard closed forms.
	a, w := s.alpha, s.wd
	den := a*a + w*w
	e := math.Exp(-a * t)
	// int e^{-a tau} cos(w tau) = [e^{-a tau}(-a cos + w sin)]/den, eval 0..t
	ic := (e*(-a*math.Cos(w*t)+w*math.Sin(w*t)) + a) / den
	// int e^{-a tau} sin(w tau) = [e^{-a tau}(-a sin - w cos)]/den, eval 0..t
	is := (e*(-a*math.Sin(w*t)-w*math.Cos(w*t)) + w) / den
	return (1 / s.C) * (ic + (a/w)*is)
}

// SettlingTime returns the time for transients to decay to the given
// fraction of their initial envelope (e.g. 0.01 for 1%).
func (s *SecondOrder) SettlingTime(frac float64) float64 {
	if frac <= 0 || frac >= 1 {
		return 0
	}
	return -math.Log(frac) / s.alpha
}

// SampleImpulse returns the discrete convolution kernel for sample interval
// dt (seconds). Tap k is the exact integral of the impulse response over
// [k*dt, (k+1)*dt) — i.e. Step((k+1)dt) - Step(k*dt) — which makes the
// discrete convolution sum_k h[k] i[n-k] *exact* for inputs that are
// piecewise constant over each cycle (which per-cycle current traces are).
// Sampling stops when the response envelope e^{-alpha t} falls below relTol
// of its t=0 value, or at maxLen samples, whichever is first. maxLen <= 0
// means no cap.
func (s *SecondOrder) SampleImpulse(dt, relTol float64, maxLen int) []float64 {
	if dt <= 0 {
		return nil
	}
	var out []float64
	for k := 0; ; k++ {
		t := float64(k) * dt
		if k > 0 && math.Exp(-s.alpha*t) < relTol {
			break
		}
		if maxLen > 0 && k >= maxLen {
			break
		}
		out = append(out, s.Step(t+dt)-s.Step(t))
	}
	return out
}

// StepAtSamples evaluates the step response at k*dt for k in [0, n).
func (s *SecondOrder) StepAtSamples(dt float64, n int) []float64 {
	out := make([]float64, n)
	for k := range out {
		out[k] = s.Step(float64(k) * dt)
	}
	return out
}

// String summarizes the system for diagnostics.
func (s *SecondOrder) String() string {
	return fmt.Sprintf("2nd-order PDN{R=%.3gmΩ f0=%.3gMHz Zpeak=%.3gmΩ Q=%.3g ζ=%.3g}",
		s.R*1e3, s.ResonantFreq()/1e6, s.PeakImpedance()*1e3, s.Q(), s.DampingRatio())
}
