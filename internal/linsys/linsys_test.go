package linsys

import (
	"math"
	"testing"
	"testing/quick"
)

// mustFromPeak builds the paper-reference system used across tests:
// R = 0.5 mΩ, f0 = 50 MHz, Zpeak = 2 mΩ.
func mustFromPeak(t *testing.T) *SecondOrder {
	t.Helper()
	s, err := FromPeak(0.5e-3, 50e6, 2e-3)
	if err != nil {
		t.Fatalf("FromPeak: %v", err)
	}
	return s
}

func TestNewRejectsBadParams(t *testing.T) {
	cases := []struct{ r, l, c float64 }{
		{0, 1e-9, 1e-6},
		{1e-3, 0, 1e-6},
		{1e-3, 1e-9, 0},
		{-1e-3, 1e-9, 1e-6},
	}
	for _, c := range cases {
		if _, err := New(c.r, c.l, c.c); err == nil {
			t.Errorf("New(%g,%g,%g): want error", c.r, c.l, c.c)
		}
	}
}

func TestNewRejectsOverdamped(t *testing.T) {
	// Large R relative to sqrt(L/C) gives real poles.
	if _, err := New(1.0, 1e-12, 1e-3); err == nil {
		t.Fatal("want overdamped rejection")
	}
}

func TestFromPeakHitsRequestedPeak(t *testing.T) {
	for _, zp := range []float64{0.8e-3, 1e-3, 2e-3, 5e-3, 20e-3} {
		s, err := FromPeak(0.5e-3, 50e6, zp)
		if err != nil {
			t.Fatalf("FromPeak(zp=%g): %v", zp, err)
		}
		got := s.PeakImpedance()
		if math.Abs(got-zp)/zp > 1e-6 {
			t.Errorf("zp=%g: peak=%g, want within 1e-6 relative", zp, got)
		}
	}
}

func TestFromPeakRejectsPeakBelowR(t *testing.T) {
	if _, err := FromPeak(1e-3, 50e6, 0.5e-3); err == nil {
		t.Fatal("want error for Zpeak < R")
	}
}

func TestDCImpedanceEqualsR(t *testing.T) {
	s := mustFromPeak(t)
	if got := s.Impedance(0); math.Abs(got-s.R) > 1e-12 {
		t.Errorf("Z(0) = %g, want R = %g", got, s.R)
	}
}

func TestResonantFrequency(t *testing.T) {
	s := mustFromPeak(t)
	if f := s.ResonantFreq(); math.Abs(f-50e6)/50e6 > 1e-9 {
		t.Errorf("f0 = %g, want 50 MHz", f)
	}
	// Peak should occur near (not exactly at, but within ~20% of) f0.
	fp := s.PeakFrequency()
	if fp < 30e6 || fp > 70e6 {
		t.Errorf("peak frequency %g far from resonance", fp)
	}
}

func TestImpedanceUnimodalNearResonance(t *testing.T) {
	s := mustFromPeak(t)
	peak := s.PeakImpedance()
	for _, f := range []float64{1e3, 1e6, 10e6, 50e6, 100e6, 1e9, 10e9} {
		if z := s.Impedance(f); z > peak*(1+1e-9) {
			t.Errorf("Z(%g) = %g exceeds reported peak %g", f, z, peak)
		}
	}
}

func TestImpulseMatchesDerivativeOfStep(t *testing.T) {
	s := mustFromPeak(t)
	dt := 1e-12
	for _, tm := range []float64{1e-9, 5e-9, 20e-9, 60e-9} {
		num := (s.Step(tm+dt) - s.Step(tm-dt)) / (2 * dt)
		anal := s.Impulse(tm)
		scale := math.Max(math.Abs(anal), 1/s.C*1e-6)
		if math.Abs(num-anal)/scale > 1e-3 {
			t.Errorf("t=%g: dStep/dt=%g impulse=%g", tm, num, anal)
		}
	}
}

func TestStepSettlesToR(t *testing.T) {
	s := mustFromPeak(t)
	tSettle := s.SettlingTime(1e-9)
	if got := s.Step(tSettle); math.Abs(got-s.R)/s.R > 1e-6 {
		t.Errorf("Step(inf) = %g, want R = %g", got, s.R)
	}
}

func TestStepOvershoots(t *testing.T) {
	// Underdamped systems must overshoot their final value.
	s := mustFromPeak(t)
	peak := 0.0
	for _, k := range s.StepAtSamples(1/3e9, 600) {
		if k > peak {
			peak = k
		}
	}
	if peak <= s.R*1.05 {
		t.Errorf("step peak %g shows no overshoot above R=%g", peak, s.R)
	}
}

func TestImpulseAtNegativeTimeIsZero(t *testing.T) {
	s := mustFromPeak(t)
	if s.Impulse(-1e-9) != 0 {
		t.Error("h(t<0) must be 0 (causality)")
	}
	if s.Step(-1e-9) != 0 {
		t.Error("step(t<0) must be 0")
	}
}

func TestSampleImpulseTruncation(t *testing.T) {
	s := mustFromPeak(t)
	dt := 1 / 3e9
	k := s.SampleImpulse(dt, 1e-6, 0)
	if len(k) == 0 {
		t.Fatal("empty kernel")
	}
	// Envelope at the cut must be below tolerance.
	tEnd := float64(len(k)) * dt
	if math.Exp(-s.Alpha()*tEnd) > 1e-6 {
		t.Errorf("kernel of %d samples truncated too early", len(k))
	}
	// Cap must be respected.
	if capped := s.SampleImpulse(dt, 1e-12, 100); len(capped) > 100 {
		t.Errorf("maxLen ignored: len=%d", len(capped))
	}
}

func TestSampledKernelSumApproximatesR(t *testing.T) {
	// sum h[k]*dt ~= integral h = Z(0) = R.
	s := mustFromPeak(t)
	k := s.SampleImpulse(1/3e9, 1e-9, 0)
	sum := 0.0
	for _, v := range k {
		sum += v
	}
	if math.Abs(sum-s.R)/s.R > 0.02 {
		t.Errorf("kernel sum %g, want ~R=%g", sum, s.R)
	}
}

func TestQAndDampingRelationship(t *testing.T) {
	s := mustFromPeak(t)
	// zeta = 1/(2Q) for this parameterization.
	if got, want := s.DampingRatio(), 1/(2*s.Q()); math.Abs(got-want) > 1e-9 {
		t.Errorf("zeta=%g want 1/(2Q)=%g", got, want)
	}
	if s.DampingRatio() >= 1 {
		t.Error("system must be underdamped")
	}
}

func TestHigherPeakMeansHigherQ(t *testing.T) {
	prev := 0.0
	for _, zp := range []float64{1e-3, 2e-3, 4e-3, 8e-3} {
		s, err := FromPeak(0.5e-3, 50e6, zp)
		if err != nil {
			t.Fatalf("FromPeak: %v", err)
		}
		if q := s.Q(); q <= prev {
			t.Errorf("Q not increasing with Zpeak: %g after %g", q, prev)
		} else {
			prev = q
		}
	}
}

func TestPropertyImpedancePositive(t *testing.T) {
	s := mustFromPeak(t)
	f := func(exp float64) bool {
		// frequencies spanning 1 Hz .. 100 GHz
		freq := math.Pow(10, math.Mod(math.Abs(exp), 11))
		return s.Impedance(freq) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyStepMonotoneEnvelopeDecay(t *testing.T) {
	// |Step(t) - R| must decay below any epsilon after the corresponding
	// settling time.
	s := mustFromPeak(t)
	f := func(u uint8) bool {
		frac := math.Pow(10, -1-float64(u%8)) // 1e-1 .. 1e-8
		tS := s.SettlingTime(frac)
		dev := math.Abs(s.Step(tS*1.5) - s.R)
		env := (1 / s.C) / s.Alpha() // loose bound on transient scale
		return dev <= frac*env
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringContainsKeyNumbers(t *testing.T) {
	s := mustFromPeak(t)
	str := s.String()
	if str == "" {
		t.Fatal("empty String()")
	}
}
