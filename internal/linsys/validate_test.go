package linsys

import (
	"math"
	"testing"
)

// TestAnalyticImpulseMatchesODEIntegration validates the closed-form
// responses against brute-force numerical integration of the underlying
// circuit equations — the "validation between different levels of
// modeling" the paper flags as important long-term work.
//
// State-space form of Z(s) = (R + sL)/(s^2 LC + s RC + 1) driven by
// current i(t), output v(t) (the droop). Controllable canonical form:
// q” = (i - RC q' - q)/(LC) with v = L q' + R q, integrated with RK4 and
// compared against Step(t) for a unit current step.
func TestAnalyticImpulseMatchesODEIntegration(t *testing.T) {
	s, err := FromPeak(0.5e-3, 50e6, 2e-3)
	if err != nil {
		t.Fatal(err)
	}
	L, R, C := s.L, s.R, s.C
	lc := L * C
	rc := R * C

	// q'' = (i - rc*q' - q)/lc ; v = L*q' + R*q
	// (check: Q/I = 1/(lc s^2 + rc s + 1), so V/I = (L s + R) * Q/I = Z(s).)
	var q, dq float64
	deriv := func(q, dq, i float64) (float64, float64) {
		return dq, (i - rc*dq - q) / lc
	}
	dt := 1e-12 // fine steps for RK4 accuracy at 50 MHz dynamics
	tEnd := 100e-9
	input := 1.0 // unit current step at t=0

	maxErr := 0.0
	nextCheck := 1e-9
	for tm := 0.0; tm < tEnd; tm += dt {
		// RK4.
		k1q, k1d := deriv(q, dq, input)
		k2q, k2d := deriv(q+0.5*dt*k1q, dq+0.5*dt*k1d, input)
		k3q, k3d := deriv(q+0.5*dt*k2q, dq+0.5*dt*k2d, input)
		k4q, k4d := deriv(q+dt*k3q, dq+dt*k3d, input)
		q += dt / 6 * (k1q + 2*k2q + 2*k3q + k4q)
		dq += dt / 6 * (k1d + 2*k2d + 2*k3d + k4d)

		if tm >= nextCheck {
			v := L*dq + R*q
			want := s.Step(tm + dt)
			if e := math.Abs(v - want); e > maxErr {
				maxErr = e
			}
			nextCheck += 1e-9
		}
	}
	// Tolerance: a fraction of the response scale (peak ~ a few mOhm * 1A).
	if maxErr > 0.02*s.PeakImpedance() {
		t.Errorf("max analytic-vs-ODE error %.3g V exceeds tolerance", maxErr)
	}
}

// TestDiscreteConvolutionMatchesContinuousStep: feeding the sampled kernel
// a step input must reproduce the analytic step response at cycle
// boundaries (the kernel construction integrates h per cycle, so this is
// exact up to truncation).
func TestDiscreteConvolutionMatchesContinuousStep(t *testing.T) {
	s, err := FromPeak(0.5e-3, 50e6, 2e-3)
	if err != nil {
		t.Fatal(err)
	}
	dt := 1 / 3e9
	k := s.SampleImpulse(dt, 1e-9, 0)
	sum := 0.0
	for n := 0; n < len(k) && n < 400; n++ {
		sum += k[n] // discrete convolution of a unit step = prefix sum
		want := s.Step(float64(n+1) * dt)
		if math.Abs(sum-want) > 1e-12 {
			t.Fatalf("cycle %d: discrete %.6g vs analytic %.6g", n, sum, want)
		}
	}
}
