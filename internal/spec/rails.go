package spec

import (
	"errors"
	"fmt"

	"didt/internal/pdn"
	"didt/internal/power"
)

// Multi-rail PDN sections. A legacy spec leaves Rails and Coupling empty
// and resolves to the single-rail network exactly as before — both fields
// are omitempty, so a legacy spec's resolved JSON, and therefore its
// Key(), are byte-identical to what they were before rails existed (pinned
// by TestLegacySpecKeyUnchangedByRails and testdata/spec_key.txt).

// RailSpec describes one delivery domain of a multi-rail PDN.
type RailSpec struct {
	// Name identifies the rail in coupling entries, sensor bindings and
	// per-rail results.
	Name string `json:"name"`
	// Scopes lists the power delivery scopes (power.ScopeNames: "fu",
	// "dl1", "il1", "uncore") this rail feeds. Scopes no rail claims go to
	// the first rail; every rail must end up with at least one.
	Scopes []string `json:"scopes,omitempty"`
	// Params is the rail's electrical model. A zero value inherits the
	// shared PDN params; PeakZ is derived by per-rail calibration and
	// IFloor from the rail's share of the measured envelope.
	Params pdn.Params `json:"params"`
	// ImpedancePct scales this rail's calibrated target impedance; zero
	// inherits the shared PDN impedance_pct.
	ImpedancePct float64 `json:"impedance_pct,omitempty"`
}

// CouplingSpec injects fraction K of rail From's current transient into
// rail To's convolution input.
type CouplingSpec struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	K    float64 `json:"k"`
}

// DVSSpec configures the dynamic voltage scaling responder: a descending
// schedule of relative voltage/frequency steps the actuator walks down on
// sustained voltage-low pressure and back up after a quiet spell.
type DVSSpec struct {
	// Steps are the available operating points as fractions of nominal,
	// descending from 1.0. Empty resolves to [1, 0.95, 0.9].
	Steps []float64 `json:"steps,omitempty"`
	// TransitionCycles is the latency of a voltage/frequency transition;
	// zero resolves to 10.
	TransitionCycles int `json:"transition_cycles,omitempty"`
	// HoldCycles is the quiet time required before stepping back up; zero
	// resolves to 60 (one resonant period).
	HoldCycles int `json:"hold_cycles,omitempty"`
	// CurrentExponent scales current draw with the operating point:
	// I' = I * step^CurrentExponent (P ~ V^2 f gives ~2 with I = P/V).
	// Zero resolves to 2.
	CurrentExponent float64 `json:"current_exponent,omitempty"`
	// Rail names the rail whose sensor drives the schedule on a
	// multi-rail spec; empty uses the aggregate (worst-rail) level.
	Rail string `json:"rail,omitempty"`
}

// MultiRail reports whether the spec selects the rail-graph path.
func (p PDNSpec) MultiRail() bool { return len(p.Rails) > 0 }

// RailNames returns the rail names in spec order.
func (p PDNSpec) RailNames() []string {
	names := make([]string, len(p.Rails))
	for i, r := range p.Rails {
		names[i] = r.Name
	}
	return names
}

// railIndex resolves a rail name to its spec-order index.
func (p PDNSpec) railIndex(name string) int {
	for i, r := range p.Rails {
		if r.Name == name {
			return i
		}
	}
	return -1
}

// RailScopeMasks resolves each rail's effective scope ownership: the
// scopes it names, plus — for the first rail — every scope no rail claims.
// Call on a validated spec; the error covers direct (unvalidated) users.
func (p PDNSpec) RailScopeMasks() ([]power.ScopeMask, error) {
	masks := make([]power.ScopeMask, len(p.Rails))
	var claimed power.ScopeMask
	for i, r := range p.Rails {
		for _, name := range r.Scopes {
			s, ok := power.ScopeByName(name)
			if !ok {
				return nil, UnknownName(
					fmt.Sprintf("spec: rail %q: unknown scope %q", r.Name, name),
					name, power.ScopeNames())
			}
			masks[i] |= s.Mask()
			claimed |= s.Mask()
		}
	}
	if len(masks) > 0 {
		masks[0] |= power.AllScopes &^ claimed
	}
	for i, m := range masks {
		if m == 0 {
			return nil, fmt.Errorf("spec: rail %q owns no scopes", p.Rails[i].Name)
		}
	}
	return masks, nil
}

// CouplingMatrix materializes the coupling entries as the NxN matrix
// (matrix[to][from]) pdn.NewGraph consumes. Call on a validated spec.
func (p PDNSpec) CouplingMatrix() ([][]float64, error) {
	if len(p.Coupling) == 0 {
		return nil, nil
	}
	n := len(p.Rails)
	matrix := make([][]float64, n)
	for i := range matrix {
		matrix[i] = make([]float64, n)
	}
	for _, c := range p.Coupling {
		from, to := p.railIndex(c.From), p.railIndex(c.To)
		if from < 0 || to < 0 {
			return nil, fmt.Errorf("spec: coupling references unknown rail %q -> %q", c.From, c.To)
		}
		matrix[to][from] = c.K
	}
	return matrix, nil
}

// withRailDefaults resolves the multi-rail sections of an already
// section-resolved spec: rail params inherit the shared PDN params, rail
// impedance inherits the shared impedance_pct, and a present DVS section
// takes its schedule defaults. No-op (and byte-preserving) on a legacy
// spec. Idempotent.
func (s RunSpec) withRailDefaults() RunSpec {
	if len(s.PDN.Rails) > 0 {
		// Copy before resolving: RunSpec has value semantics and the rails
		// slice must not alias the caller's spec.
		rails := make([]RailSpec, len(s.PDN.Rails))
		copy(rails, s.PDN.Rails)
		for i, r := range rails {
			if r.Params == (pdn.Params{}) {
				rails[i].Params = s.PDN.Params
			} else {
				rails[i].Params = r.Params.WithDefaults()
			}
			if r.ImpedancePct == 0 {
				rails[i].ImpedancePct = s.PDN.ImpedancePct
			}
		}
		s.PDN.Rails = rails
	}
	if d := s.Actuator.DVS; d != nil {
		dd := *d
		if len(dd.Steps) == 0 {
			dd.Steps = []float64{1, 0.95, 0.9}
		}
		if dd.TransitionCycles == 0 {
			dd.TransitionCycles = 10
		}
		if dd.HoldCycles == 0 {
			dd.HoldCycles = 60
		}
		if dd.CurrentExponent == 0 {
			dd.CurrentExponent = 2
		}
		s.Actuator.DVS = &dd
	}
	return s
}

// validateRails checks the multi-rail sections: rail naming, scope
// ownership, the coupling list, sensor and DVS rail bindings, and the DVS
// schedule. Returns every problem found (the caller joins them with the
// rest of Validate's findings).
func (s RunSpec) validateRails() []error {
	var errs []error
	names := s.PDN.RailNames()
	seen := make(map[string]bool, len(names))
	for i, r := range s.PDN.Rails {
		if r.Name == "" {
			errs = append(errs, fmt.Errorf("spec: rail %d has no name", i))
			continue
		}
		if seen[r.Name] {
			errs = append(errs, fmt.Errorf("spec: duplicate rail name %q", r.Name))
		}
		seen[r.Name] = true
		if r.ImpedancePct < 0 {
			errs = append(errs, fmt.Errorf("spec: rail %q impedance_pct %g must be positive", r.Name, r.ImpedancePct))
		}
		rp := r.Params
		if rp.ClockHz < 0 || rp.ResonantHz < 0 || rp.DCResistance < 0 || rp.TruncRelTol < 0 || rp.MaxKernelLen < 0 {
			errs = append(errs, fmt.Errorf("spec: rail %q params must be non-negative", r.Name))
		}
	}
	if len(s.PDN.Rails) > 0 {
		if _, err := s.PDN.RailScopeMasks(); err != nil {
			errs = append(errs, err)
		}
		claimedBy := make(map[string]string)
		for _, r := range s.PDN.Rails {
			for _, sc := range r.Scopes {
				if prev, dup := claimedBy[sc]; dup {
					errs = append(errs, fmt.Errorf("spec: scope %q claimed by both rail %q and rail %q", sc, prev, r.Name))
					continue
				}
				claimedBy[sc] = r.Name
			}
		}
	}
	railRef := func(where, name string) {
		if len(s.PDN.Rails) == 0 {
			errs = append(errs, fmt.Errorf("spec: %s references rail %q but the pdn has no rails section", where, name))
			return
		}
		if s.PDN.railIndex(name) < 0 {
			errs = append(errs, UnknownName(
				fmt.Sprintf("spec: %s references unknown rail %q", where, name), name, names))
		}
	}
	pairs := make(map[[2]string]bool, len(s.PDN.Coupling))
	for _, c := range s.PDN.Coupling {
		railRef("coupling", c.From)
		railRef("coupling", c.To)
		if c.From != "" && c.From == c.To {
			errs = append(errs, fmt.Errorf("spec: rail %q couples to itself", c.From))
		}
		if c.K < 0 || c.K >= 1 {
			errs = append(errs, fmt.Errorf("spec: coupling %q -> %q coefficient %g outside [0, 1)", c.From, c.To, c.K))
		}
		key := [2]string{c.From, c.To}
		if pairs[key] {
			errs = append(errs, fmt.Errorf("spec: duplicate coupling entry %q -> %q", c.From, c.To))
		}
		pairs[key] = true
	}
	for _, name := range s.Sensor.Rails {
		railRef("sensor", name)
	}
	if d := s.Actuator.DVS; d != nil {
		if d.Rail != "" {
			railRef("actuator dvs", d.Rail)
		}
		if len(d.Steps) > 0 {
			if d.Steps[0] != 1 {
				errs = append(errs, fmt.Errorf("spec: dvs steps must start at 1.0 (got %g)", d.Steps[0]))
			}
			for i, st := range d.Steps {
				if st <= 0 || st > 1 {
					errs = append(errs, fmt.Errorf("spec: dvs step %d (%g) outside (0, 1]", i, st))
				}
				if i > 0 && st >= d.Steps[i-1] {
					errs = append(errs, fmt.Errorf("spec: dvs steps must descend (step %d: %g >= %g)", i, st, d.Steps[i-1]))
				}
			}
		}
		if d.TransitionCycles < 0 {
			errs = append(errs, fmt.Errorf("spec: dvs transition_cycles %d negative", d.TransitionCycles))
		}
		if d.HoldCycles < 0 {
			errs = append(errs, fmt.Errorf("spec: dvs hold_cycles %d negative", d.HoldCycles))
		}
		if d.CurrentExponent < 0 {
			errs = append(errs, fmt.Errorf("spec: dvs current_exponent %g negative", d.CurrentExponent))
		}
	}
	if len(s.PDN.Rails) == 1 && len(s.PDN.Coupling) > 0 {
		errs = append(errs, errors.New("spec: coupling requires at least two rails"))
	}
	return errs
}
