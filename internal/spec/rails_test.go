package spec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"didt/internal/pdn"
	"didt/internal/power"
)

func threeRailSpec() RunSpec {
	s := RunSpec{}
	s.PDN.Rails = []RailSpec{
		{Name: "core", Scopes: []string{"fu", "uncore"}},
		{Name: "mem", Scopes: []string{"dl1"}},
		{Name: "fetch", Scopes: []string{"il1"}},
	}
	s.PDN.Coupling = []CouplingSpec{
		{From: "core", To: "mem", K: 0.2},
		{From: "mem", To: "core", K: 0.2},
	}
	return s
}

// TestLegacySpecKeyUnchangedByRails is the refactor's pinned guarantee:
// introducing the rails, coupling, sensor-rails and DVS sections must not
// move a single byte of a legacy spec's resolved JSON, so its Key() — and
// every memo built from it — is exactly what it was before this change.
func TestLegacySpecKeyUnchangedByRails(t *testing.T) {
	resolved := Default()
	raw, err := json.Marshal(resolved)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"rails", "coupling", "dvs"} {
		if strings.Contains(string(raw), `"`+field+`"`) {
			t.Errorf("legacy resolved spec JSON leaks new field %q: %s", field, raw)
		}
	}
	// The sensor section gained a "rails" list too; covered by the first
	// loop iteration, but assert the section explicitly for clarity.
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(m["sensor"]), "rails") {
		t.Errorf("legacy sensor section leaks rails: %s", m["sensor"])
	}
}

func TestRailDefaultsInheritSharedPDN(t *testing.T) {
	s := threeRailSpec().WithDefaults()
	if !s.PDN.MultiRail() {
		t.Fatal("rails spec not multi-rail")
	}
	for _, r := range s.PDN.Rails {
		if r.Params != s.PDN.Params {
			t.Errorf("rail %q params %+v did not inherit shared %+v", r.Name, r.Params, s.PDN.Params)
		}
		if r.ImpedancePct != s.PDN.ImpedancePct {
			t.Errorf("rail %q impedance %g did not inherit shared %g", r.Name, r.ImpedancePct, s.PDN.ImpedancePct)
		}
	}
	// A rail with partial params resolves through pdn defaults instead.
	s2 := threeRailSpec()
	s2.PDN.Rails[1].Params = pdn.Params{ResonantHz: 80e6}
	s2 = s2.WithDefaults()
	if got := s2.PDN.Rails[1].Params.ResonantHz; got != 80e6 {
		t.Errorf("explicit resonance overwritten: %g", got)
	}
	if got := s2.PDN.Rails[1].Params.ClockHz; got != pdn.DefaultClockHz {
		t.Errorf("partial rail params not defaulted: clock %g", got)
	}
}

func TestRailDefaultsIdempotent(t *testing.T) {
	s := threeRailSpec()
	s.Actuator.DVS = &DVSSpec{Rail: "core"}
	once := s.WithDefaults()
	twice := once.WithDefaults()
	if !reflect.DeepEqual(once, twice) {
		t.Errorf("WithDefaults not idempotent:\nonce  %+v\ntwice %+v", once, twice)
	}
	if once.Key() != twice.Key() {
		t.Errorf("key drifts across resolutions: %s vs %s", once.Key(), twice.Key())
	}
}

func TestWithDefaultsDoesNotAliasCallerRails(t *testing.T) {
	s := threeRailSpec()
	_ = s.WithDefaults()
	if s.PDN.Rails[0].Params != (pdn.Params{}) {
		t.Error("WithDefaults mutated the caller's rail params")
	}
	if s.Actuator.DVS != nil {
		t.Error("unexpected DVS materialization")
	}
}

func TestDVSDefaults(t *testing.T) {
	s := RunSpec{}
	s.Actuator.DVS = &DVSSpec{}
	r := s.WithDefaults()
	d := r.Actuator.DVS
	if d == nil {
		t.Fatal("DVS section dropped")
	}
	if !reflect.DeepEqual(d.Steps, []float64{1, 0.95, 0.9}) {
		t.Errorf("default steps %v", d.Steps)
	}
	if d.TransitionCycles != 10 || d.HoldCycles != 60 || d.CurrentExponent != 2 {
		t.Errorf("default schedule %+v", d)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("defaulted DVS spec invalid: %v", err)
	}
}

func TestRailScopeMasks(t *testing.T) {
	s := threeRailSpec().WithDefaults()
	masks, err := s.PDN.RailScopeMasks()
	if err != nil {
		t.Fatal(err)
	}
	want := []power.ScopeMask{
		power.ScopeFU.Mask() | power.ScopeUncore.Mask(),
		power.ScopeDL1.Mask(),
		power.ScopeIL1.Mask(),
	}
	if !reflect.DeepEqual(masks, want) {
		t.Errorf("masks %v, want %v", masks, want)
	}
	// Unclaimed scopes fall to the first rail.
	s2 := RunSpec{}
	s2.PDN.Rails = []RailSpec{{Name: "a"}, {Name: "b", Scopes: []string{"dl1"}}}
	masks, err = s2.PDN.RailScopeMasks()
	if err != nil {
		t.Fatal(err)
	}
	if masks[0] != power.AllScopes&^power.ScopeDL1.Mask() || masks[1] != power.ScopeDL1.Mask() {
		t.Errorf("unclaimed-scope masks %v", masks)
	}
}

func TestCouplingMatrix(t *testing.T) {
	s := threeRailSpec().WithDefaults()
	m, err := s.PDN.CouplingMatrix()
	if err != nil {
		t.Fatal(err)
	}
	// matrix[to][from]
	if m[1][0] != 0.2 || m[0][1] != 0.2 || m[2][0] != 0 {
		t.Errorf("coupling matrix %v", m)
	}
	legacy := RunSpec{}.WithDefaults()
	if lm, err := legacy.PDN.CouplingMatrix(); err != nil || lm != nil {
		t.Errorf("legacy coupling matrix %v, %v", lm, err)
	}
}

// TestRailsValidation covers the satellite checklist: duplicate rail
// names, self-coupling, out-of-range coefficients, and unknown rail
// references in actuator/sensor bindings, each with a did-you-mean hint
// where a registry exists, all collected errors.Join style.
func TestRailsValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*RunSpec)
		want string
	}{
		{"duplicate rail name", func(s *RunSpec) {
			s.PDN.Rails[1].Name = "core"
		}, `duplicate rail name "core"`},
		{"unnamed rail", func(s *RunSpec) {
			s.PDN.Rails[2].Name = ""
		}, "rail 2 has no name"},
		{"self coupling", func(s *RunSpec) {
			s.PDN.Coupling[0].To = "core"
		}, `rail "core" couples to itself`},
		{"coefficient too large", func(s *RunSpec) {
			s.PDN.Coupling[0].K = 1.0
		}, "outside [0, 1)"},
		{"negative coefficient", func(s *RunSpec) {
			s.PDN.Coupling[0].K = -0.1
		}, "outside [0, 1)"},
		{"duplicate coupling", func(s *RunSpec) {
			s.PDN.Coupling = append(s.PDN.Coupling, CouplingSpec{From: "core", To: "mem", K: 0.1})
		}, `duplicate coupling entry "core" -> "mem"`},
		{"unknown coupling rail", func(s *RunSpec) {
			s.PDN.Coupling[0].From = "coer"
		}, `did you mean "core"`},
		{"unknown sensor rail", func(s *RunSpec) {
			s.Sensor.Rails = []string{"memm"}
		}, `did you mean "mem"`},
		{"unknown dvs rail", func(s *RunSpec) {
			s.Actuator.DVS = &DVSSpec{Rail: "fethc"}
		}, `did you mean "fetch"`},
		{"unknown scope", func(s *RunSpec) {
			s.PDN.Rails[1].Scopes = []string{"dl2"}
		}, `did you mean "dl1"`},
		{"scope claimed twice", func(s *RunSpec) {
			s.PDN.Rails[2].Scopes = []string{"il1", "dl1"}
		}, `scope "dl1" claimed by both`},
		{"rail without scopes", func(s *RunSpec) {
			s.PDN.Rails[0].Scopes = []string{"fu", "uncore", "il1"}
			s.PDN.Rails[2].Scopes = nil
		}, `rail "fetch" owns no scopes`},
		{"sensor rails without rails section", func(s *RunSpec) {
			s.PDN.Rails = nil
			s.PDN.Coupling = nil
			s.Sensor.Rails = []string{"core"}
		}, "no rails section"},
		{"dvs steps not descending", func(s *RunSpec) {
			s.Actuator.DVS = &DVSSpec{Steps: []float64{1, 0.9, 0.95}}
		}, "must descend"},
		{"dvs steps not from 1", func(s *RunSpec) {
			s.Actuator.DVS = &DVSSpec{Steps: []float64{0.95, 0.9}}
		}, "must start at 1.0"},
		{"dvs step out of range", func(s *RunSpec) {
			s.Actuator.DVS = &DVSSpec{Steps: []float64{1, 0.5, -0.1}}
		}, "outside (0, 1]"},
		{"negative dvs latency", func(s *RunSpec) {
			s.Actuator.DVS = &DVSSpec{TransitionCycles: -1}
		}, "transition_cycles -1 negative"},
		{"coupling on single rail", func(s *RunSpec) {
			s.PDN.Rails = s.PDN.Rails[:1]
			s.PDN.Rails[0].Scopes = nil
			s.PDN.Coupling = []CouplingSpec{{From: "core", To: "core", K: 0.1}}
		}, "coupling requires at least two rails"},
	}
	for _, tc := range cases {
		s := threeRailSpec()
		tc.mut(&s)
		// Validate the sparse spec directly (validateRails does not depend
		// on resolution) so negative-latency cases aren't masked by
		// defaulting.
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
	// And the baseline multi-rail spec itself is valid.
	if _, err := threeRailSpec().Resolve(); err != nil {
		t.Errorf("baseline rails spec invalid: %v", err)
	}
}

// TestRailsChangeKey: rails, coupling, sensor bindings and DVS are all
// part of the resolved content hash — specs differing only there must
// not collide in any memo.
func TestRailsChangeKey(t *testing.T) {
	base := RunSpec{}.Key()
	keys := map[string]string{"legacy": base}
	add := func(name string, s RunSpec) {
		k := s.Key()
		for prev, pk := range keys {
			if pk == k {
				t.Errorf("%s and %s share key %s", name, prev, k)
			}
		}
		keys[name] = k
	}
	add("rails", threeRailSpec())
	uncoupled := threeRailSpec()
	uncoupled.PDN.Coupling = nil
	add("uncoupled", uncoupled)
	dvs := threeRailSpec()
	dvs.Actuator.DVS = &DVSSpec{}
	add("dvs", dvs)
	sensed := threeRailSpec()
	sensed.Sensor.Rails = []string{"core"}
	add("sensor-rails", sensed)
}
