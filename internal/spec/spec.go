// Package spec defines the RunSpec: one typed, JSON-serializable,
// content-hashable description of a complete closed-loop run — PDN, CPU,
// power model, sensor, controller, actuator, workload, cycle budgets and
// seeds. It is the configuration spine every layer speaks: core.NewSystem
// consumes a resolved spec, experiments.Config derives per-run specs from
// its sweep shape, the CLIs translate flags into spec overrides, and didtd
// accepts full specs over HTTP. Configuration is data: anything a run needs
// is in the spec, anything in the spec is serializable, and equal resolved
// specs — by Key() — mean equal results.
//
// Specs layer: a sparse spec (zero values everywhere the paper's defaults
// should apply) resolves through WithDefaults into a fully-populated one,
// so callers override only what they study. Validate reports every problem
// at once, with did-you-mean hints for misspelled names; the same
// validation backs CLI exit-2 errors and the server's 400 responses.
package spec

import (
	"errors"
	"fmt"
	"strings"

	"didt/internal/actuator"
	"didt/internal/cpu"
	"didt/internal/isa"
	"didt/internal/pdn"
	"didt/internal/power"
	"didt/internal/sim"
	"didt/internal/workload"
)

// RunSpec describes one closed-loop run completely. The zero value is the
// paper's default run (Table 1 core, 3 GHz / 1.0 V / 50 MHz package at
// 200% target impedance, free-running stressmark) once resolved through
// WithDefaults.
type RunSpec struct {
	CPU      cpu.Config   `json:"cpu"`
	Power    power.Params `json:"power"`
	PDN      PDNSpec      `json:"pdn"`
	Sensor   SensorSpec   `json:"sensor"`
	Control  ControlSpec  `json:"control"`
	Actuator ActuatorSpec `json:"actuator"`
	Workload WorkloadSpec `json:"workload"`
	Budget   BudgetSpec   `json:"budget"`
	Seed     Seed         `json:"seed"`
}

// PDNSpec selects the power-delivery network and its calibration point.
type PDNSpec struct {
	// Params is the electrical model; zero fields take the paper's
	// Section 2.2 reference values. PeakZ is derived by calibration and
	// IFloor from the measured envelope — leave both zero.
	Params pdn.Params `json:"params"`
	// ImpedancePct scales the calibrated target impedance: 1.0 is the
	// 100% column of Table 2, 2.0 (the default) the 200% design point the
	// control studies use.
	ImpedancePct float64 `json:"impedance_pct"`
	// EnvelopeIMin/IMax override the measured current envelope (amperes)
	// used for calibration and threshold solving; zero means measure.
	EnvelopeIMin float64 `json:"envelope_i_min_a"`
	EnvelopeIMax float64 `json:"envelope_i_max_a"`
	// Rails, when present, splits delivery across named per-domain rails
	// (the multi-rail graph); empty keeps the single shared rail above.
	// Both fields are omitempty on purpose: a legacy spec's resolved JSON —
	// and therefore its Key() — must not change with their introduction.
	Rails []RailSpec `json:"rails,omitempty"`
	// Coupling lists cross-rail transient injection coefficients.
	Coupling []CouplingSpec `json:"coupling,omitempty"`
}

// SensorSpec configures the threshold voltage sensor (Section 4).
type SensorSpec struct {
	DelayCycles int     `json:"delay_cycles"` // sensing/controller delay; 0 is a valid (ideal) delay
	NoiseMV     float64 `json:"noise_mv"`     // additive white noise amplitude
	// GuardBandMV widens the solved thresholds against sensor error
	// (Section 4.5). Zero tracks NoiseMV, the paper's guard-banding rule.
	GuardBandMV float64 `json:"guard_band_mv"`
	// Rails restricts per-rail sensing on a multi-rail spec to the named
	// rails; empty senses every rail. Omitempty keeps legacy keys stable.
	Rails []string `json:"rails,omitempty"`
}

// ControlSpec enables and shapes the threshold controller (Sections 4-5).
type ControlSpec struct {
	Enabled bool `json:"enabled"`
	// SettleCycles is the actuator ramp charged by the threshold solver;
	// zero takes the paper's 2.
	SettleCycles int `json:"settle_cycles"`
	// FlushRecovery selects the Section 6 alternative recovery (flush and
	// refill instead of protect-and-resume).
	FlushRecovery bool `json:"flush_recovery"`
	// PessimisticRamp, when positive, restarts execution at half rate for
	// this many cycles after a quiet spell (Section 2.3's alternative to
	// the greedy policy).
	PessimisticRamp int `json:"pessimistic_ramp"`
}

// ActuatorSpec selects the actuation granularity by name ("FU", "FU/DL1",
// "FU/DL1/IL1" or "ideal"; empty resolves to "ideal"). Code-level
// responder overrides (e.g. the asymmetric actuator study) attach at
// runtime through core.Options, outside the serializable spec.
type ActuatorSpec struct {
	Mechanism string `json:"mechanism"`
	// DVS, when present, layers the dynamic voltage scaling responder on
	// top of the gate/phantom-fire mechanism (they compose through the
	// same Responder interface). Nil — the legacy value — keeps the key
	// byte-identical to the pre-DVS spec.
	DVS *DVSSpec `json:"dvs,omitempty"`
}

// WorkloadSpec selects the program: a named synthetic SPEC2000 stand-in, the
// dI/dt stressmark, or a fully custom profile.
type WorkloadSpec struct {
	// Name is "stressmark", "custom", or a benchmark name from
	// workload.Names(). Empty resolves to "stressmark".
	Name string `json:"name"`
	// Iterations is the loop trip count; zero resolves to 3000, the
	// CLI/server default.
	Iterations int `json:"iterations"`
	// Stressmark customizes the stressmark's loop shape (Name must be
	// "stressmark"). Nil keeps the paper's tuning.
	Stressmark *workload.StressmarkParams `json:"stressmark,omitempty"`
	// Profile is a user-defined benchmark profile (Name must be
	// "custom").
	Profile *workload.Profile `json:"profile,omitempty"`
}

// BudgetSpec bounds the run.
type BudgetSpec struct {
	MaxCycles    uint64 `json:"max_cycles"`    // hard cycle cap; 0 resolves to 20M
	WarmupCycles uint64 `json:"warmup_cycles"` // excluded from voltage stats; 0 resolves to 1000
}

// Default returns the fully resolved default spec: the canonical
// description of the paper's baseline run. GET /v1/spec/default serves its
// JSON form, and internal/spec/testdata/default_spec.json pins it.
func Default() RunSpec { return RunSpec{}.WithDefaults() }

// WithDefaults resolves a sparse spec into a fully-populated one: every
// zero field that has a paper default takes it, section by section. This is
// the single defaulting layer — the per-package withDefaults logic that
// used to be duplicated across core.Options, cpu.Config, power.Params and
// pdn.Params is delegated to here (the subsystem packages export their
// field defaults; the spec layer owns when they apply). Idempotent.
func (s RunSpec) WithDefaults() RunSpec {
	s.CPU = s.CPU.WithDefaults()
	s.Power = s.Power.WithDefaults()
	s.PDN.Params = s.PDN.Params.WithDefaults()
	if s.PDN.ImpedancePct == 0 {
		s.PDN.ImpedancePct = 2.0
	}
	if s.Sensor.GuardBandMV == 0 {
		s.Sensor.GuardBandMV = s.Sensor.NoiseMV
	}
	if s.Control.SettleCycles == 0 {
		s.Control.SettleCycles = 2
	}
	if s.Actuator.Mechanism == "" {
		s.Actuator.Mechanism = actuator.Ideal.Name
	}
	if s.Workload.Name == "" {
		s.Workload.Name = "stressmark"
	}
	if s.Workload.Iterations == 0 {
		s.Workload.Iterations = 3000
	}
	if s.Budget.MaxCycles == 0 {
		s.Budget.MaxCycles = 20_000_000
	}
	if s.Budget.WarmupCycles == 0 {
		s.Budget.WarmupCycles = 1000
	}
	if !s.Seed.Explicit {
		s.Seed = NewSeed(0)
	}
	return s.withRailDefaults()
}

// Validate checks a resolved spec and returns every problem at once
// (errors.Join), so a caller fixing a spec sees the full list rather than
// one complaint per round trip. It never panics, however partial or
// inconsistent the spec.
func (s RunSpec) Validate() error {
	var errs []error
	if err := s.CPU.Validate(); err != nil {
		errs = append(errs, err)
	}
	p := s.PDN.Params
	if p.ClockHz < 0 || p.ResonantHz < 0 || p.DCResistance < 0 || p.TruncRelTol < 0 || p.MaxKernelLen < 0 {
		errs = append(errs, errors.New("spec: pdn params must be non-negative"))
	}
	if p.Tolerance < 0 || p.Tolerance >= 1 {
		errs = append(errs, fmt.Errorf("spec: pdn tolerance %g outside [0, 1)", p.Tolerance))
	}
	if s.PDN.ImpedancePct < 0 {
		errs = append(errs, fmt.Errorf("spec: impedance_pct %g must be positive", s.PDN.ImpedancePct))
	}
	if s.PDN.EnvelopeIMin < 0 || s.PDN.EnvelopeIMax < 0 {
		errs = append(errs, errors.New("spec: envelope currents must be non-negative"))
	}
	if s.PDN.EnvelopeIMin > 0 && s.PDN.EnvelopeIMax > 0 && s.PDN.EnvelopeIMax <= s.PDN.EnvelopeIMin {
		errs = append(errs, fmt.Errorf("spec: envelope_i_max_a %g must exceed envelope_i_min_a %g",
			s.PDN.EnvelopeIMax, s.PDN.EnvelopeIMin))
	}
	if s.Sensor.DelayCycles < 0 {
		errs = append(errs, fmt.Errorf("spec: sensor delay_cycles %d negative", s.Sensor.DelayCycles))
	}
	if s.Sensor.NoiseMV < 0 {
		errs = append(errs, fmt.Errorf("spec: sensor noise_mv %g negative", s.Sensor.NoiseMV))
	}
	if s.Sensor.GuardBandMV < 0 {
		errs = append(errs, fmt.Errorf("spec: sensor guard_band_mv %g negative", s.Sensor.GuardBandMV))
	}
	if s.Control.SettleCycles < 0 {
		errs = append(errs, fmt.Errorf("spec: control settle_cycles %d negative", s.Control.SettleCycles))
	}
	if s.Control.PessimisticRamp < 0 {
		errs = append(errs, fmt.Errorf("spec: control pessimistic_ramp %d negative", s.Control.PessimisticRamp))
	}
	if s.Actuator.Mechanism != "" {
		if _, err := actuator.ByName(s.Actuator.Mechanism); err != nil {
			errs = append(errs, UnknownName(
				fmt.Sprintf("spec: unknown mechanism %q", s.Actuator.Mechanism),
				s.Actuator.Mechanism, actuator.Names()))
		}
	}
	errs = append(errs, s.validateRails()...)
	errs = append(errs, s.Workload.validate()...)
	if s.Budget.MaxCycles > 0 && s.Budget.WarmupCycles >= s.Budget.MaxCycles {
		errs = append(errs, fmt.Errorf("spec: warmup_cycles %d must be below max_cycles %d",
			s.Budget.WarmupCycles, s.Budget.MaxCycles))
	}
	return errors.Join(errs...)
}

func (w WorkloadSpec) validate() []error {
	var errs []error
	if w.Iterations < 0 {
		errs = append(errs, fmt.Errorf("spec: workload iterations %d negative", w.Iterations))
	}
	switch w.Name {
	case "stressmark":
		if w.Profile != nil {
			errs = append(errs, errors.New(`spec: workload profile requires name "custom"`))
		}
	case "custom":
		if w.Profile == nil {
			errs = append(errs, errors.New(`spec: workload "custom" requires a profile`))
		}
		if w.Stressmark != nil {
			errs = append(errs, errors.New(`spec: workload stressmark params require name "stressmark"`))
		}
	case "":
		// Unresolved; WithDefaults selects the stressmark.
	default:
		if w.Stressmark != nil {
			errs = append(errs, errors.New(`spec: workload stressmark params require name "stressmark"`))
		}
		if w.Profile != nil {
			errs = append(errs, errors.New(`spec: workload profile requires name "custom"`))
		}
		if err := ValidBenchmark(w.Name); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// ValidBenchmark checks one benchmark name against the workload registry,
// returning a did-you-mean error listing the valid names on failure. The
// experiments harness and the server share it for their 400-style
// rejections.
func ValidBenchmark(name string) error {
	for _, n := range workload.Names() {
		if n == name {
			return nil
		}
	}
	return UnknownName(fmt.Sprintf("unknown benchmark %q", name), name, workload.Names())
}

// UnknownName builds a "did you mean" error: the caller's message, the
// closest candidate (when one is a plausible typo), and the full valid
// list. Every name registry (benchmarks, mechanisms, experiment IDs) fails
// through this one shape, so CLI exit-2 errors and server 400s read alike.
func UnknownName(msg, name string, valid []string) error {
	if hint := Suggest(name, valid); hint != "" {
		return fmt.Errorf("%s (did you mean %q? valid: %s)", msg, hint, strings.Join(valid, ", "))
	}
	return fmt.Errorf("%s (valid: %s)", msg, strings.Join(valid, ", "))
}

// Resolve is WithDefaults followed by Validate: the one call an API
// boundary makes to turn a user-supplied sparse spec into a runnable one.
func (s RunSpec) Resolve() (RunSpec, error) {
	r := s.WithDefaults()
	if err := r.Validate(); err != nil {
		return RunSpec{}, err
	}
	return r, nil
}

// Key is the canonical content hash of the resolved spec: equal keys mean
// equal configuration means (by the determinism contract) equal results.
// Memo identity across the repository is built from the same fingerprint
// primitive over the spec's resolved sections — the PDN kernel cache hashes
// the calibrated PDN.Params, the workload caches hash the resolved
// program parameters, the envelope cache hashes the CPU and power sections
// — so Key-equal specs hit exactly the same cache entries. Pinned by
// testdata/spec_key.txt: an accidental change to this value silently
// invalidates every memo, so CI fails loudly instead.
func (s RunSpec) Key() string {
	return "rs1-" + sim.Fingerprint(s.WithDefaults())
}

// Mechanism resolves the actuation mechanism named by the spec.
func (s RunSpec) Mechanism() (actuator.Mechanism, error) {
	name := s.Actuator.Mechanism
	if name == "" {
		return actuator.Ideal, nil
	}
	return actuator.ByName(name)
}

// Program resolves the workload section to an executable program using the
// shared generation caches (deterministic: cached and fresh programs are
// identical for equal parameters). Call on a resolved spec.
func (s RunSpec) Program() (isa.Program, error) {
	w := s.Workload
	switch w.Name {
	case "stressmark", "":
		p := workload.StressmarkParams{Iterations: w.Iterations}
		if w.Stressmark != nil {
			p = *w.Stressmark
			if p.Iterations == 0 {
				p.Iterations = w.Iterations
			}
		}
		return workload.StressmarkCached(p), nil
	case "custom":
		if w.Profile == nil {
			return nil, errors.New(`spec: workload "custom" requires a profile`)
		}
		p := *w.Profile
		if p.Iterations == 0 {
			p.Iterations = w.Iterations
		}
		return workload.GenerateCached(p), nil
	default:
		p, err := workload.ProfileByName(w.Name)
		if err != nil {
			return nil, UnknownName(fmt.Sprintf("unknown benchmark %q", w.Name), w.Name, workload.Names())
		}
		p.Iterations = w.Iterations
		return workload.GenerateCached(p), nil
	}
}
