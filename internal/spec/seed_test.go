package spec

import (
	"encoding/json"
	"flag"
	"io"
	"testing"
)

func TestSeedUnsetVsExplicitZero(t *testing.T) {
	var unset Seed
	if unset.Explicit {
		t.Error("zero Seed must be unset")
	}
	if got := unset.Resolve(7); got != 7 {
		t.Errorf("unset Resolve(7) = %d", got)
	}
	zero := NewSeed(0)
	if !zero.Explicit {
		t.Error("NewSeed(0) must be explicit")
	}
	if got := zero.Resolve(7); got != 0 {
		t.Errorf("explicit-0 Resolve(7) = %d", got)
	}
	if unset.String() != "unset" {
		t.Errorf("String() = %q", unset.String())
	}
}

// TestSeedCLIAndServerAgree is the contract behind the "only applied when
// set" flag semantics: a seed arriving through a CLI flag (-seed 42) and
// one arriving through a server JSON body ("seed": 42) must resolve to the
// same Seed value, hence to byte-identical runs.
func TestSeedCLIAndServerAgree(t *testing.T) {
	cases := []struct {
		flagArgs []string
		jsonBody string
		want     Seed
	}{
		{nil, `null`, Seed{}},
		{[]string{"-seed", "0"}, `0`, NewSeed(0)},
		{[]string{"-seed", "42"}, `42`, NewSeed(42)},
		{[]string{"-seed", "-3"}, `-3`, NewSeed(-3)},
	}
	for _, tc := range cases {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		var cli Seed
		fs.Var(&cli, "seed", "")
		if err := fs.Parse(tc.flagArgs); err != nil {
			t.Fatal(err)
		}
		var srv Seed
		if err := json.Unmarshal([]byte(tc.jsonBody), &srv); err != nil {
			t.Fatal(err)
		}
		if cli != tc.want || srv != tc.want {
			t.Errorf("args %v / body %s: cli %+v server %+v, want %+v",
				tc.flagArgs, tc.jsonBody, cli, srv, tc.want)
		}
		if cli.Resolve(99) != srv.Resolve(99) {
			t.Errorf("args %v: CLI and server resolve differently", tc.flagArgs)
		}
		// A spec built either way hashes identically.
		a, b := RunSpec{Seed: cli}, RunSpec{Seed: srv}
		if a.Key() != b.Key() {
			t.Errorf("args %v: spec keys diverge", tc.flagArgs)
		}
	}
}

func TestSeedJSONRoundTrip(t *testing.T) {
	for _, s := range []Seed{{}, NewSeed(0), NewSeed(-17), NewSeed(1 << 40)} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Seed
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != s {
			t.Errorf("%+v -> %s -> %+v", s, b, back)
		}
	}
	if b, _ := json.Marshal(Seed{}); string(b) != "null" {
		t.Errorf("unset seed marshals as %s, want null", b)
	}
	if b, _ := json.Marshal(NewSeed(5)); string(b) != "5" {
		t.Errorf("explicit seed marshals as %s, want 5", b)
	}
	if err := json.Unmarshal([]byte(`"x"`), new(Seed)); err == nil {
		t.Error("non-numeric seed should fail to parse")
	}
}
