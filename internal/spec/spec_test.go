package spec

import (
	"encoding/json"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"

	"didt/internal/cpu"
	"didt/internal/pdn"
	"didt/internal/power"
	"didt/internal/workload"
)

// TestDefaultSpecGolden pins the byte-exact JSON form of the resolved
// default spec. The same bytes are served by GET /v1/spec/default and
// printed by didtd -print-default-spec; ci.sh diffs the flag output against
// the golden so a silent default change fails loudly. Regenerate with:
//
//	go run ./cmd/didtd -print-default-spec > internal/spec/testdata/default_spec.json
func TestDefaultSpecGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/default_spec.json")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Default()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("default spec JSON drifted from testdata/default_spec.json;\ngot:\n%s\nwant:\n%s",
			buf.String(), want)
	}
}

// TestSpecKeyPinned pins the default spec's content hash. Every memo key in
// the repository is built from the same fingerprint primitive, so an
// accidental change to the hashed representation would silently invalidate
// caches everywhere; this makes it a visible test failure instead.
func TestSpecKeyPinned(t *testing.T) {
	want, err := os.ReadFile("testdata/spec_key.txt")
	if err != nil {
		t.Fatal(err)
	}
	got := RunSpec{}.Key()
	if got != strings.TrimSpace(string(want)) {
		t.Errorf("RunSpec{}.Key() = %s, want pinned %s", got, strings.TrimSpace(string(want)))
	}
	if got != Default().Key() {
		t.Error("sparse and resolved default specs must share a key")
	}
}

func TestKeyIgnoresDefaultableZeros(t *testing.T) {
	var sparse RunSpec
	explicit := RunSpec{}
	explicit.PDN.ImpedancePct = 2.0
	explicit.Workload.Name = "stressmark"
	explicit.Workload.Iterations = 3000
	if sparse.Key() != explicit.Key() {
		t.Error("zero fields and their explicit defaults must hash identically")
	}
	changed := explicit
	changed.PDN.ImpedancePct = 3.0
	if changed.Key() == explicit.Key() {
		t.Error("distinct impedance must change the key")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := Default()
	s.Workload.Name = "gcc"
	s.Workload.Iterations = 1234
	s.Sensor.NoiseMV = 10
	s.Seed = NewSeed(42)
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back RunSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip changed the spec:\n%+v\nvs\n%+v", s, back)
	}
	if s.Key() != back.Key() {
		t.Error("round trip changed the key")
	}
}

// TestDefaultsMatchSubsystems is the regression guard for collapsing the
// per-package defaulting into the spec layer: the resolved default spec
// must agree field-for-field with what each subsystem package resolves on
// its own, and with the core-level defaults the old core.Options applied.
func TestDefaultsMatchSubsystems(t *testing.T) {
	d := Default()
	if want := (cpu.Config{}).WithDefaults(); !reflect.DeepEqual(d.CPU, want) {
		t.Errorf("CPU defaults diverge from cpu.Config:\n%+v\nvs\n%+v", d.CPU, want)
	}
	if want := (power.Params{}).WithDefaults(); !reflect.DeepEqual(d.Power, want) {
		t.Errorf("power defaults diverge from power.Params:\n%+v\nvs\n%+v", d.Power, want)
	}
	if want := (pdn.Params{}).WithDefaults(); !reflect.DeepEqual(d.PDN.Params, want) {
		t.Errorf("PDN defaults diverge from pdn.Params:\n%+v\nvs\n%+v", d.PDN.Params, want)
	}
	// The run-level defaults the deleted core.Options.withDefaults applied.
	if d.PDN.ImpedancePct != 2.0 {
		t.Errorf("impedance default %g, want 2.0", d.PDN.ImpedancePct)
	}
	if d.Control.SettleCycles != 2 {
		t.Errorf("settle default %d, want 2", d.Control.SettleCycles)
	}
	if d.Actuator.Mechanism != "ideal" {
		t.Errorf("mechanism default %q, want ideal", d.Actuator.Mechanism)
	}
	if d.Workload.Name != "stressmark" || d.Workload.Iterations != 3000 {
		t.Errorf("workload default %q/%d, want stressmark/3000", d.Workload.Name, d.Workload.Iterations)
	}
	if d.Budget.MaxCycles != 20_000_000 || d.Budget.WarmupCycles != 1000 {
		t.Errorf("budget default %d/%d, want 20000000/1000", d.Budget.MaxCycles, d.Budget.WarmupCycles)
	}
	if !d.Seed.Explicit || d.Seed.Value != 0 {
		t.Errorf("seed default %+v, want explicit 0", d.Seed)
	}
	if got := d.WithDefaults(); !reflect.DeepEqual(d, got) {
		t.Error("WithDefaults is not idempotent")
	}
}

func TestValidateCollectsAllErrors(t *testing.T) {
	var s RunSpec
	s = s.WithDefaults()
	s.PDN.ImpedancePct = -1
	s.Sensor.DelayCycles = -2
	s.Actuator.Mechanism = "FU/DL2"
	s.Workload.Name = "gxc"
	err := s.Validate()
	if err == nil {
		t.Fatal("want errors")
	}
	for _, frag := range []string{"impedance_pct", "delay_cycles", "FU/DL2", "gxc"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("combined error misses %q: %v", frag, err)
		}
	}
}

func TestDidYouMean(t *testing.T) {
	err := ValidBenchmark("gxc")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), `did you mean "gcc"`) {
		t.Errorf("no gcc hint: %v", err)
	}
	if err := ValidBenchmark("gcc"); err != nil {
		t.Errorf("gcc should be valid: %v", err)
	}
	err = UnknownName("unknown experiment \"fig41\"", "fig41", []string{"fig14", "fig15"})
	if !strings.Contains(err.Error(), `did you mean "fig14"`) {
		t.Errorf("no fig14 hint: %v", err)
	}
}

// TestValidateNeverPanics drives Validate and WithDefaults across a
// fuzz-style sweep of hostile partial specs — extreme numbers in every
// field, inconsistent workload sections — asserting only that they return
// instead of panicking. Mutations come from a fixed table × value pool, so
// the sweep is deterministic.
func TestValidateNeverPanics(t *testing.T) {
	nums := []float64{0, -1, 1, math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64}
	ints := []int{0, -1, 1, math.MaxInt32, math.MinInt32}
	muts := []func(*RunSpec, int){
		func(s *RunSpec, i int) { s.PDN.ImpedancePct = nums[i%len(nums)] },
		func(s *RunSpec, i int) { s.PDN.Params.Tolerance = nums[i%len(nums)] },
		func(s *RunSpec, i int) { s.PDN.Params.MaxKernelLen = ints[i%len(ints)] },
		func(s *RunSpec, i int) { s.PDN.EnvelopeIMin = nums[i%len(nums)] },
		func(s *RunSpec, i int) { s.PDN.EnvelopeIMax = nums[(i+1)%len(nums)] },
		func(s *RunSpec, i int) { s.Sensor.DelayCycles = ints[i%len(ints)] },
		func(s *RunSpec, i int) { s.Sensor.NoiseMV = nums[i%len(nums)] },
		func(s *RunSpec, i int) { s.Sensor.GuardBandMV = nums[(i+2)%len(nums)] },
		func(s *RunSpec, i int) { s.Control.SettleCycles = ints[i%len(ints)] },
		func(s *RunSpec, i int) { s.Control.PessimisticRamp = ints[(i+1)%len(ints)] },
		func(s *RunSpec, i int) { s.CPU.RUUSize = ints[i%len(ints)] },
		func(s *RunSpec, i int) { s.CPU.FetchWidth = ints[(i+3)%len(ints)] },
		func(s *RunSpec, i int) { s.Budget.MaxCycles = uint64(i * 1000) },
		func(s *RunSpec, i int) { s.Budget.WarmupCycles = uint64(i * 2000) },
		func(s *RunSpec, i int) {
			s.Actuator.Mechanism = []string{"", "ideal", "FU", "bogus", "\x00", strings.Repeat("x", 300)}[i%6]
		},
		func(s *RunSpec, i int) {
			s.Workload.Name = []string{"", "stressmark", "custom", "gcc", "nope", "\xff"}[i%6]
		},
		func(s *RunSpec, i int) { s.Workload.Iterations = ints[i%len(ints)] },
		func(s *RunSpec, i int) {
			s.Workload.Stressmark = &workload.StressmarkParams{Iterations: ints[i%len(ints)]}
		},
		func(s *RunSpec, i int) { s.Workload.Profile = &workload.Profile{Iterations: ints[i%len(ints)]} },
	}
	check := func(s RunSpec) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on spec %+v: %v", s, r)
			}
		}()
		_ = s.Validate()
		_ = s.WithDefaults().Validate()
		_, _ = s.Resolve()
	}
	for i, m := range muts {
		for j, n := range muts {
			for k := 0; k < 6; k++ {
				var s RunSpec
				m(&s, i+k)
				n(&s, j+k)
				check(s)
			}
		}
	}
}

func TestResolveRejectsInvalid(t *testing.T) {
	var s RunSpec
	s.Workload.Name = "not-a-benchmark"
	if _, err := s.Resolve(); err == nil {
		t.Error("Resolve accepted an unknown benchmark")
	}
	var ok RunSpec
	ok.Workload.Name = "swim"
	r, err := ok.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := r.Program()
	if err != nil || len(prog) == 0 {
		t.Fatalf("Program: %v", err)
	}
}
