package spec

import "strings"

// Suggest returns the candidate closest to name by edit distance, or ""
// when nothing is close enough to be a plausible typo (distance greater
// than half the name's length). Validation errors use it for did-you-mean
// hints on benchmark, experiment and mechanism names.
func Suggest(name string, candidates []string) string {
	best, bestDist := "", len(name)/2+1
	lower := strings.ToLower(name)
	for _, c := range candidates {
		if d := editDistance(lower, strings.ToLower(c)); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
