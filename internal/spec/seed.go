package spec

import (
	"bytes"
	"fmt"
	"strconv"
)

// Seed is the one "only applied when set" seed representation shared by
// every configuration surface. The CLIs register a Seed as a flag.Value
// (unset until the flag appears on the command line, even as an explicit
// -seed 0) and the server decodes it from JSON (unset when the field is
// absent or null, set for any number including 0). Both paths therefore
// resolve seeds through the same type with the same semantics, replacing
// the flag.Visit bookkeeping and *int64 pointer fields they used to
// duplicate.
//
// The zero value is "unset". A resolved RunSpec always carries an explicit
// seed (WithDefaults pins unset seeds to 0), so seed choice is part of the
// spec's content hash.
type Seed struct {
	Value    int64 `json:"value"`
	Explicit bool  `json:"explicit"`
}

// NewSeed returns an explicitly set seed.
func NewSeed(v int64) Seed { return Seed{Value: v, Explicit: true} }

// Resolve returns the seed's value when set, or fallback when unset.
func (s Seed) Resolve(fallback int64) int64 {
	if s.Explicit {
		return s.Value
	}
	return fallback
}

// String renders the seed for flag help and logs ("unset" or the value).
func (s *Seed) String() string {
	if s == nil || !s.Explicit {
		return "unset"
	}
	return strconv.FormatInt(s.Value, 10)
}

// Set parses a command-line value, marking the seed explicit. It
// implements flag.Value, so `flag.Var(&seed, "seed", ...)` gives a CLI
// exactly the "only applied when the flag appears" behaviour.
func (s *Seed) Set(v string) error {
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return fmt.Errorf("seed: %v", err)
	}
	s.Value, s.Explicit = n, true
	return nil
}

// MarshalJSON encodes an unset seed as null and a set seed as its value,
// so specs serialize the way the server API speaks (a bare number).
func (s Seed) MarshalJSON() ([]byte, error) {
	if !s.Explicit {
		return []byte("null"), nil
	}
	return strconv.AppendInt(nil, s.Value, 10), nil
}

// UnmarshalJSON decodes null (or absence, via the zero value) as unset and
// any number as an explicit seed.
func (s *Seed) UnmarshalJSON(b []byte) error {
	if bytes.Equal(bytes.TrimSpace(b), []byte("null")) {
		*s = Seed{}
		return nil
	}
	n, err := strconv.ParseInt(string(bytes.TrimSpace(b)), 10, 64)
	if err != nil {
		return fmt.Errorf("seed: %v", err)
	}
	*s = Seed{Value: n, Explicit: true}
	return nil
}
