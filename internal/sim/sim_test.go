package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"didt/internal/telemetry"
)

func TestMapPreservesSubmissionOrder(t *testing.T) {
	// Later jobs finish first; results must still come back by index.
	const n = 64
	for _, workers := range []int{1, 2, 8, n} {
		out, err := Map(context.Background(), workers, n, func(_ context.Context, i int) (int, error) {
			time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != n {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), workers, 40, func(_ context.Context, i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, cap %d", p, workers)
	}
}

func TestMapErrorPropagation(t *testing.T) {
	wantErr := errors.New("job 5 exploded")
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), workers, 32, func(_ context.Context, i int) (int, error) {
			if i == 5 {
				return 0, wantErr
			}
			if i == 20 {
				return 0, errors.New("job 20 exploded")
			}
			return i, nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: got %v, want lowest-index error %v", workers, err, wantErr)
		}
	}
}

func TestMapErrorStopsDispatch(t *testing.T) {
	// After a failure, undispatched jobs must not run.
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := Map(context.Background(), 2, 1000, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if n := ran.Load(); n > 100 {
		t.Fatalf("%d jobs ran after early failure", n)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	done := make(chan struct{})
	var out []int
	var err error
	go func() {
		out, err = Map(ctx, 2, 1000, func(ctx context.Context, i int) (int, error) {
			if started.Add(1) == 3 {
				cancel()
			}
			select {
			case <-ctx.Done():
			case <-time.After(50 * time.Millisecond):
			}
			return i, nil
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Map did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("cancelled Map returned results")
	}
	// Serial path honors pre-cancelled contexts too.
	pre, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := Map(pre, 1, 4, func(context.Context, int) (int, error) { return 0, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("serial path ignored cancelled context: %v", err)
	}
}

func TestSweep(t *testing.T) {
	items := []string{"a", "bb", "ccc"}
	out, err := Sweep(context.Background(), 2, items, func(_ context.Context, s string) (int, error) {
		return len(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out) != "[1 2 3]" {
		t.Fatalf("got %v", out)
	}
	if out, err := Sweep(context.Background(), 4, []int(nil), func(_ context.Context, i int) (int, error) { return i, nil }); err != nil || out != nil {
		t.Fatalf("empty sweep: %v %v", out, err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultWorkers(7)
	if got := DefaultWorkers(); got != 7 {
		t.Fatalf("got %d after SetDefaultWorkers(7)", got)
	}
	SetDefaultWorkers(-3)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative override must restore GOMAXPROCS, got %d", got)
	}
	p := NewPool(0)
	if p.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("pool workers %d", p.Workers())
	}
}

func TestPoolRun(t *testing.T) {
	var sum atomic.Int64
	if err := NewPool(4).Run(context.Background(), 10, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum %d", sum.Load())
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache[string, int](0)
	var computes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.Get("k", func() (int, error) {
				computes.Add(1)
				time.Sleep(2 * time.Millisecond)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("got %d, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want exactly 1", n)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache[int, int](0)
	boom := errors.New("boom")
	calls := 0
	if _, err := c.Get(1, func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	v, err := c.Get(1, func() (int, error) { calls++; return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("retry got %d, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("%d compute calls", calls)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestCacheStats(t *testing.T) {
	c := NewCache[int, int](3)
	for _, k := range []int{1, 2, 1, 1, 3} {
		if _, err := c.Get(k, func() (int, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 3 || s.Entries != 3 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want 2 hits / 3 misses / 3 entries / 0 evictions", s)
	}
	if got, want := s.HitRate(), 2.0/5.0; got != want {
		t.Fatalf("hit rate = %v, want %v", got, want)
	}
	// Inserting past capacity evicts exactly the least-recently-used
	// completed entry (key 2: key 1 was re-read after it), not the whole
	// map.
	if _, err := c.Get(4, func() (int, error) { return 4, nil }); err != nil {
		t.Fatal(err)
	}
	s = c.Stats()
	if s.Evictions != 1 || s.Entries != 3 {
		t.Fatalf("after capacity eviction: %+v, want 1 eviction / 3 entries", s)
	}
	if v, _ := c.Get(1, func() (int, error) { return -1, nil }); v != 1 {
		t.Fatalf("recently-used key 1 was evicted: got %d", v)
	}
	c.Reset()
	if s = c.Stats(); s.Evictions != 4 || s.Entries != 0 {
		t.Fatalf("after reset: %+v, want 4 evictions / 0 entries", s)
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Fatal("untouched cache must report hit rate 0")
	}
}

func TestCacheRegisterMetrics(t *testing.T) {
	c := NewCache[int, int](0)
	r := telemetry.NewRegistry()
	c.RegisterMetrics(r, "cache.test")
	for _, k := range []int{1, 1, 2} {
		c.Get(k, func() (int, error) { return k, nil })
	}
	g := r.Snapshot().Gauges
	if g["cache.test.hits"] != 1 || g["cache.test.misses"] != 2 || g["cache.test.entries"] != 2 {
		t.Fatalf("gauges = %v", g)
	}
	if got, want := g["cache.test.hit_rate"], 1.0/3.0; got != want {
		t.Fatalf("hit_rate gauge = %v, want %v", got, want)
	}
}

func TestMapProgressHook(t *testing.T) {
	defer SetProgress(nil)
	var mu sync.Mutex
	var finalDone, finalTotal int64
	calls := 0
	SetProgress(func(done, total int64) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		finalDone, finalTotal = done, total
	})
	for _, workers := range []int{1, 4} {
		mu.Lock()
		calls, finalDone, finalTotal = 0, 0, 0
		mu.Unlock()
		if _, err := Map(context.Background(), workers, 12, func(_ context.Context, i int) (int, error) {
			return i, nil
		}); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		if calls == 0 {
			t.Fatalf("workers=%d: progress hook never fired", workers)
		}
		if finalDone != finalTotal {
			t.Fatalf("workers=%d: final progress %d/%d, want done == total", workers, finalDone, finalTotal)
		}
		mu.Unlock()
	}
}

func TestCacheCapacityAndReset(t *testing.T) {
	c := NewCache[int, int](4)
	for i := 0; i < 10; i++ {
		if _, err := c.Get(i, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n != 4 {
		t.Fatalf("capacity not enforced: %d entries, want exactly 4", n)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("reset left entries")
	}
	// Values survive for warm keys.
	v, _ := c.Get(3, func() (int, error) { return 33, nil })
	v2, _ := c.Get(3, func() (int, error) { return -1, nil })
	if v != 33 || v2 != 33 {
		t.Fatalf("got %d then %d", v, v2)
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := NewCache[int, int](3)
	for _, k := range []int{1, 2, 3} {
		c.Get(k, func() (int, error) { return k, nil })
	}
	// Touch 1 so 2 becomes the least recently used.
	c.Get(1, func() (int, error) { return -1, nil })
	c.Get(4, func() (int, error) { return 4, nil })
	if v, _ := c.Get(1, func() (int, error) { return -1, nil }); v != 1 {
		t.Fatalf("recently-read key 1 evicted: got %d", v)
	}
	if v, _ := c.Get(3, func() (int, error) { return -3, nil }); v != 3 {
		t.Fatalf("resident key 3 evicted: got %d", v)
	}
	// Key 2 was the LRU victim; a fresh Get recomputes it.
	if v, _ := c.Get(2, func() (int, error) { return -2, nil }); v != -2 {
		t.Fatalf("LRU key 2 should have been evicted: got %d", v)
	}
	if s := c.Stats(); s.Evictions < 2 {
		t.Fatalf("stats = %+v, want at least 2 single-entry evictions", s)
	}
}

func TestCacheSetCapacity(t *testing.T) {
	c := NewCache[int, int](0)
	for i := 0; i < 10; i++ {
		c.Get(i, func() (int, error) { return i, nil })
	}
	c.SetCapacity(3)
	if n := c.Len(); n != 3 {
		t.Fatalf("SetCapacity(3) left %d entries", n)
	}
	if s := c.Stats(); s.Evictions != 7 {
		t.Fatalf("SetCapacity evicted %d entries, want 7", s.Evictions)
	}
	// The survivors are the three most recently used.
	for _, k := range []int{7, 8, 9} {
		if v, _ := c.Get(k, func() (int, error) { return -1, nil }); v != k {
			t.Fatalf("MRU key %d evicted by SetCapacity", k)
		}
	}
}

// TestCacheInFlightPinnedUnderPressure is the regression test for the
// flush-everything eviction bug: a capacity flush used to drop entries
// whose computation was still running, so a concurrent Get of the same
// key would silently start a second computation. With the LRU rewrite an
// in-flight entry is pinned — never evicted, never recomputed — no matter
// how much capacity pressure concurrent requests generate.
func TestCacheInFlightPinnedUnderPressure(t *testing.T) {
	c := NewCache[int, int](2)
	var computes atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := c.Get(0, func() (int, error) {
			computes.Add(1)
			close(started)
			<-release
			return 100, nil
		})
		if err != nil || v != 100 {
			t.Errorf("first Get(0) = %d, %v; want 100", v, err)
		}
	}()
	<-started

	// Churn many other keys through the cache while key 0 is in flight.
	for k := 1; k <= 20; k++ {
		if _, err := c.Get(k, func() (int, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Two completed entries at capacity plus the pinned in-flight one.
	if n := c.Len(); n > 3 {
		t.Fatalf("%d resident entries, want <= cap+1 (pinned in-flight)", n)
	}

	// A concurrent Get of the in-flight key must join the running
	// computation rather than starting a second one.
	hitsBefore := c.Stats().Hits
	got := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _ := c.Get(0, func() (int, error) {
			computes.Add(1)
			return -1, nil
		})
		got <- v
	}()
	for c.Stats().Hits == hitsBefore {
		runtime.Gosched() // wait until the concurrent Get has joined
	}
	close(release)
	wg.Wait()
	if v := <-got; v != 100 {
		t.Fatalf("concurrent Get of in-flight key = %d, want 100 (entry was evicted and recomputed)", v)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("key 0 computed %d times, want exactly 1", n)
	}
}

// TestSetProgressMidSweepIsolated is the regression test for the
// mid-sweep counter reset: installing a callback used to zero the
// process-wide done/total counters while a running sweep kept adding to
// them, so the progress line could report done > total. Sessions isolate
// the counters: the in-flight sweep keeps reporting against the session
// it started under.
func TestSetProgressMidSweepIsolated(t *testing.T) {
	defer SetProgress(nil)
	var violations atomic.Int32
	check := func(done, total int64) {
		if done > total {
			violations.Add(1)
		}
	}
	SetProgress(check)
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	errc := make(chan error, 1)
	go func() {
		_, err := Map(context.Background(), 2, 8, func(_ context.Context, i int) (int, error) {
			once.Do(func() { close(started) })
			<-release
			return i, nil
		})
		errc <- err
	}()
	<-started
	SetProgress(check) // fresh session while the sweep is mid-flight
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if n := violations.Load(); n > 0 {
		t.Fatalf("progress callback observed done > total %d times", n)
	}
}

// TestPoolUndispatchedGauge covers the queue_depth gauge rename: the
// dispatch channel is unbuffered, so the old sim.pool.queue_depth name
// claimed a queue that cannot exist; the value counts undispatched jobs.
func TestPoolUndispatchedGauge(t *testing.T) {
	if _, err := Map(context.Background(), 2, 8, func(_ context.Context, i int) (int, error) {
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	g := telemetry.Default().Snapshot().Gauges
	if _, ok := g["sim.pool.undispatched_jobs"]; !ok {
		t.Fatalf("sim.pool.undispatched_jobs gauge missing; have %v", g)
	}
	if _, ok := g["sim.pool.queue_depth"]; ok {
		t.Fatal("stale sim.pool.queue_depth gauge still registered")
	}
}

// TestMapAbandonsJoinOnExternalCancel: regression for the unconditional
// worker join that once wedged Map's caller forever when a job function
// ignored its context. External cancellation must return promptly even
// while every worker is stuck inside such a job; the abandoned workers
// are left to die on their own once the job finally returns.
func TestMapAbandonsJoinOnExternalCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	wedge := make(chan struct{})
	entered := make(chan struct{}, 4)
	done := make(chan error, 1)
	go func() {
		_, err := Map(ctx, 2, 4, func(context.Context, int) (int, error) {
			entered <- struct{}{}
			<-wedge // deliberately ignores ctx: the worst-behaved job possible
			return 0, nil
		})
		done <- err
	}()
	<-entered
	<-entered // both workers are now wedged in context-ignoring jobs
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got err %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Map stayed wedged joining workers stuck in context-ignoring jobs")
	}
	close(wedge) // release the abandoned workers so they exit cleanly
}

// TestMapJobErrorSurvivesSlowJoin: the flip side of the abandon rule — an
// internal cancellation (a job error) must NOT abandon the join, because
// the caller needs the real error collected from the error channel, not a
// generic context error. The failing job's error comes back even when
// another worker is still finishing a slow job at join time.
func TestMapJobErrorSurvivesSlowJoin(t *testing.T) {
	boom := errors.New("job 0 failed")
	release := make(chan struct{})
	var failed atomic.Bool
	out, err := Map(context.Background(), 2, 4, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			failed.Store(true)
			close(release)
			return 0, boom
		}
		// The slow job holds the join open past the internal cancel.
		<-release
		time.Sleep(20 * time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got err %v, want the job error", err)
	}
	if out != nil {
		t.Fatal("failed Map returned results")
	}
	if !failed.Load() {
		t.Fatal("failing job never ran")
	}
}
