// Package sim is the parallel sweep engine: every experiment in the suite
// is a sweep of independent closed-loop simulations (table2 alone is 26
// benchmarks x 4 impedance points), and this package fans those jobs out
// across a bounded worker pool while preserving the determinism contract —
// results come back in submission order, so parallel output is
// byte-identical to serial output.
//
// Three pieces:
//
//   - Map / Sweep: run n independent jobs with bounded parallelism and
//     return their results in submission order regardless of completion
//     order. Workers <= 0 selects the process-wide default (GOMAXPROCS
//     unless overridden by SetDefaultWorkers, e.g. from a -parallel flag).
//   - Pool: the same engine with a fixed worker count, for callers that
//     want to share one configuration across many sweeps.
//   - Cache: a singleflight memoization cache for the deterministic
//     derived artifacts the sweeps share (sampled PDN kernels, generated
//     workload programs, measured current envelopes); concurrent callers
//     of the same key compute it exactly once.
package sim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"didt/internal/telemetry"
)

// defaultWorkers holds the process-wide worker default; <= 0 means
// GOMAXPROCS at sweep time.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker count used when a
// sweep is invoked with workers <= 0. n <= 0 restores GOMAXPROCS.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers reports the effective default worker count.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// resolveWorkers clamps a requested worker count to [1, n].
func resolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Pool observability: per-session job counters feeding an optional
// progress callback (a live stderr line in the CLIs and didtd), plus
// worker-pool metrics in the default telemetry registry. Both are
// aggregate-only and never influence scheduling, so they cannot perturb
// the determinism contract.
var (
	curProgress atomic.Pointer[progressSession]

	poolMetricsOnce sync.Once
	mJobs, mSweeps  *telemetry.Counter
	// Monotonic rate sources: the point-in-time gauges below answer "what
	// is happening now", but a scraper needs counters to derive rates from
	// two samples, so completions and queue-wait accumulate forever.
	mJobsCompleted *telemetry.Counter
	mQueueWaitNs   *telemetry.Counter
	gUndispatched  *telemetry.Gauge
	gWorkers       *telemetry.Gauge
	hUtilization   *telemetry.Histogram
)

// progressSession binds the cumulative done/total job counters to the
// callback they feed. Each Map captures the session current at its entry
// and reports against that session exclusively for its whole lifetime, so
// installing a new callback mid-sweep never zeroes (or re-homes) counters
// a running sweep is still adding to — the invariant done <= total holds
// within every session.
type progressSession struct {
	fn    func(done, total int64)
	done  atomic.Int64
	total atomic.Int64
}

func (s *progressSession) addTotal(n int64) {
	if s != nil {
		s.total.Add(n)
		s.notify()
	}
}

func (s *progressSession) addDone(n int64) {
	if s != nil {
		s.done.Add(n)
		s.notify()
	}
}

func (s *progressSession) notify() {
	s.fn(s.done.Load(), s.total.Load())
}

// SetProgress installs a callback invoked (from worker goroutines, so it
// must be safe for concurrent use) whenever a sweep job completes or is
// submitted, with the session's cumulative done/total job counts.
// Installing a callback starts a fresh progress session with zeroed
// counters; sweeps already in flight keep reporting to the session they
// started under, so the new callback never observes done > total. Pass
// nil to disable.
func SetProgress(f func(done, total int64)) {
	if f == nil {
		curProgress.Store(nil)
		return
	}
	curProgress.Store(&progressSession{fn: f})
}

func poolMetrics() {
	poolMetricsOnce.Do(func() {
		r := telemetry.Default()
		mJobs = r.Counter("sim.pool.jobs_total")
		mJobsCompleted = r.Counter("sim.pool.jobs_completed_total")
		mQueueWaitNs = r.Counter("sim.pool.queue_wait_ns_total")
		mSweeps = r.Counter("sim.pool.sweeps_total")
		// The dispatch channel is unbuffered, so the pool never queues
		// jobs itself: this gauge counts jobs of the currently-dispatching
		// sweep not yet handed to a worker. Admission queues live in front
		// of the pool (didtd reports didtd.admission.queue_depth).
		gUndispatched = r.Gauge("sim.pool.undispatched_jobs")
		gWorkers = r.Gauge("sim.pool.workers")
		hUtilization = r.Histogram("sim.pool.worker_utilization_pct", 0, 100, 20)
	})
}

// jobError carries the submission index so error propagation is
// deterministic: whichever goroutine fails, Map reports the error of the
// lowest-indexed failing job.
type jobError struct {
	index int
	err   error
}

// Map runs fn(ctx, i) for i in [0, n) with at most `workers` goroutines
// and returns the results in index order. On error it cancels the
// remaining jobs and returns the error of the lowest-indexed failing job;
// if ctx is cancelled first, ctx's error is returned. workers <= 0 selects
// DefaultWorkers; workers == 1 runs inline with no goroutines at all.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	workers = resolveWorkers(workers, n)
	poolMetrics()
	mSweeps.Inc()
	gWorkers.Set(float64(workers))
	// Capture the progress session once: every report from this sweep goes
	// to the session that was current when it started, even if a new one
	// is installed mid-flight.
	ps := curProgress.Load()
	ps.addTotal(int64(n))
	// A sweep that exits early (error or cancellation) gives back the jobs
	// it never ran, so the progress line's total always reflects work that
	// will actually happen.
	var completed atomic.Int64
	defer func() {
		if c := completed.Load(); c < int64(n) {
			ps.addTotal(c - int64(n))
		}
	}()
	// Per-job request spans ride the context's tracer (didtd installs it via
	// telemetry.ContextWithTracer); job results never depend on them.
	tr := telemetry.TracerFromContext(ctx)
	runJob := func(ctx context.Context, i int) (T, error) {
		jctx := ctx
		var jspan *telemetry.Span
		if tr.Enabled() {
			jctx, jspan = tr.Start(ctx, "sim.job", telemetry.AttrInt("index", int64(i)))
		}
		v, err := fn(jctx, i)
		if jspan.Enabled() {
			if err != nil {
				jspan.SetAttr("error", "true")
			}
			jspan.End()
		}
		return v, err
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := runJob(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
			completed.Add(1)
			mJobs.Inc()
			mJobsCompleted.Inc()
			ps.addDone(1)
		}
		return out, nil
	}

	// parent distinguishes external cancellation (abandon the join: the
	// caller must not hang on a job function that ignores its context)
	// from the internal cancel below (a job error: the join completes
	// promptly and the real error is collected from errc).
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	start := time.Now() //didt:allow determinism,purity -- wall-clock feeds only the utilization gauge, never sweep results
	busy := make([]time.Duration, workers)
	jobs := make(chan int)
	errc := make(chan jobError, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				jobStart := time.Now() //didt:allow determinism,purity -- per-job timing feeds only the utilization histogram
				v, err := runJob(ctx, i)
				busy[w] += time.Since(jobStart) //didt:allow determinism,purity -- per-job timing feeds only the utilization histogram
				if err != nil {
					errc <- jobError{i, err}
					cancel()
					return
				}
				out[i] = v
				completed.Add(1)
				mJobs.Inc()
				mJobsCompleted.Inc()
				ps.addDone(1)
			}
		}(w)
	}

dispatch:
	for i := 0; i < n; i++ {
		waitStart := time.Now() //didt:allow determinism,purity -- queue-wait feeds only the monotonic counter scrapers derive rates from
		select {
		case jobs <- i:
			mQueueWaitNs.Add(time.Since(waitStart).Nanoseconds()) //didt:allow determinism,purity -- queue-wait feeds only the monotonic counter scrapers derive rates from
			gUndispatched.Set(float64(n - i - 1))
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	// Join through a closed channel so a job function that ignores its
	// context can never wedge the caller: external cancellation abandons
	// the join (the worker goroutines die with the cancelled ctx when the
	// job function eventually returns). Internal cancellation — a job
	// error — is NOT an abandon trigger: there the workers drain promptly
	// and the caller must collect the real error from errc below rather
	// than report a generic context error.
	joined := make(chan struct{})
	go func() {
		wg.Wait()
		close(joined)
	}()
	select {
	case <-joined:
	case <-parent.Done():
		return nil, parent.Err()
	}
	close(errc)

	// Per-worker utilization: busy fraction of the sweep's wall time.
	if wall := time.Since(start); wall > 0 { //didt:allow determinism,purity -- utilization metric only; sweep outputs are index-ordered and timing-free
		for _, b := range busy {
			hUtilization.Observe(100 * float64(b) / float64(wall))
		}
	}

	first := jobError{index: n}
	for je := range errc { //didt:allow ctxflow -- errc is closed above after all workers exited; this drains at most `workers` buffered values and terminates
		if je.index < first.index {
			first = je
		}
	}
	if first.err != nil {
		return nil, first.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Sweep maps fn over items with bounded parallelism, preserving order.
func Sweep[In, Out any](ctx context.Context, workers int, items []In, fn func(ctx context.Context, item In) (Out, error)) ([]Out, error) {
	return Map(ctx, workers, len(items), func(ctx context.Context, i int) (Out, error) {
		return fn(ctx, items[i])
	})
}

// Pool is a fixed-width sweep configuration shared across many sweeps.
// The zero value uses the process default.
type Pool struct {
	workers int
}

// NewPool returns a pool running at most `workers` jobs concurrently;
// workers <= 0 selects DefaultWorkers at each sweep.
func NewPool(workers int) *Pool {
	if workers < 0 {
		workers = 0
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's effective worker count.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return DefaultWorkers()
	}
	return p.workers
}

// Run executes fn(ctx, i) for i in [0, n) on the pool (no results).
func (p *Pool) Run(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, p.Workers(), n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
