package sim

import (
	"log/slog"
	"sync"
	"sync/atomic"

	"didt/internal/telemetry"
)

// cacheLogger receives app-level cache events (currently LRU evictions)
// from every Cache in the process. nil (the default) disables logging
// entirely; didtd installs its structured logger here at startup.
var cacheLogger atomic.Pointer[slog.Logger]

// SetCacheLogger installs the logger that receives cache eviction events;
// nil disables them. Safe for concurrent use.
func SetCacheLogger(l *slog.Logger) {
	if l == nil {
		cacheLogger.Store(nil)
		return
	}
	cacheLogger.Store(l)
}

// logEviction emits one app-level record for a completed eviction pass.
// Called outside the cache mutex: slog handlers may block on IO, and the
// eviction has already happened — the log is observation, not mechanism.
func logEviction(name string, evicted, remaining int) {
	l := cacheLogger.Load()
	if l == nil || evicted <= 0 {
		return
	}
	if name == "" {
		name = "cache"
	}
	l.Debug("cache eviction", "cache", name, "evicted", evicted, "entries", remaining)
}

// Cache memoizes a deterministic computation keyed by K with singleflight
// semantics: when several goroutines ask for the same key at once, exactly
// one runs the computation and the rest wait for its result. Values must
// be deterministic functions of their key (every cached artifact in this
// repository is — sampled PDN kernels, generated programs, measured
// envelopes), so it never matters which goroutine populated an entry.
//
// Capacity bounds the map for long-lived processes: inserting beyond it
// evicts completed entries in least-recently-used order. An entry whose
// computation is still running is pinned — it is never evicted and never
// recomputed by a concurrent Get — so the map may transiently exceed
// capacity while more than `capacity` keys are in flight at once. Errors
// are not cached; a failed key is recomputed on the next Get.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*cacheEntry[K, V]
	// head/tail form the intrusive LRU list of *completed* entries
	// (head = most recent). In-flight entries are unlinked, which is
	// what pins them: eviction only walks this list.
	head, tail *cacheEntry[K, V]
	cap        int
	stats      CacheStats
	// name labels the cache in eviction logs; set by RegisterMetrics from
	// the metric prefix, "" until then.
	name string
}

// CacheStats is a point-in-time view of a cache's effectiveness. A Get
// that finds an entry (even one still being computed by another
// goroutine) counts as a hit; a Get that inserts counts as a miss;
// Evictions counts entries dropped by LRU capacity eviction, SetCapacity
// and Reset.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// HitRate is hits/(hits+misses), 0 for an untouched cache.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheEntry[K comparable, V any] struct {
	key  K
	once sync.Once
	val  V
	err  error

	// LRU links, guarded by Cache.mu. linked reports membership in the
	// completed-entry list; an unlinked entry still in the map is in
	// flight and therefore pinned.
	prev, next *cacheEntry[K, V]
	linked     bool
}

// NewCache creates a cache holding at most capacity completed entries;
// capacity <= 0 means unbounded.
func NewCache[K comparable, V any](capacity int) *Cache[K, V] {
	return &Cache[K, V]{entries: map[K]*cacheEntry[K, V]{}, cap: capacity}
}

// Get returns the cached value for k, computing it via compute on first
// use. Concurrent Gets of the same key share one computation.
func (c *Cache[K, V]) Get(k K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	e, ok := c.entries[k]
	evicted := 0
	if !ok {
		c.stats.Misses++
		e = &cacheEntry[K, V]{key: k}
		c.entries[k] = e
		evicted = c.evictLocked()
	} else {
		c.stats.Hits++
		if e.linked {
			c.unlinkLocked(e)
			c.linkFrontLocked(e)
		}
	}
	name, remaining := c.name, len(c.entries)
	c.mu.Unlock()
	logEviction(name, evicted, remaining)

	e.once.Do(func() {
		e.val, e.err = compute()
		c.mu.Lock()
		evicted := 0
		// Only touch the map if this entry is still the resident one: a
		// Reset may have dropped it while the computation ran.
		if cur, ok := c.entries[k]; ok && cur == e {
			if e.err != nil {
				// Drop the failed entry so a later Get retries.
				delete(c.entries, k)
			} else {
				// Completion unpins the entry: link it as most recent
				// and let eviction see it from now on.
				c.linkFrontLocked(e)
				evicted = c.evictLocked()
			}
		}
		name, remaining := c.name, len(c.entries)
		c.mu.Unlock()
		logEviction(name, evicted, remaining)
	})
	return e.val, e.err
}

// evictLocked drops least-recently-used completed entries until the map
// fits the capacity again, returning how many it dropped (callers log
// after releasing the mutex). In-flight entries are unlinked and therefore
// invisible here, so the map may exceed cap while computations run.
func (c *Cache[K, V]) evictLocked() int {
	if c.cap <= 0 {
		return 0
	}
	n := 0
	for len(c.entries) > c.cap && c.tail != nil {
		e := c.tail
		c.unlinkLocked(e)
		delete(c.entries, e.key)
		c.stats.Evictions++
		n++
	}
	return n
}

func (c *Cache[K, V]) linkFrontLocked(e *cacheEntry[K, V]) {
	e.linked = true
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache[K, V]) unlinkLocked(e *cacheEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.linked = false
}

// Lookup returns the cached value for k only if its computation has
// already completed; it never blocks and never computes. In-flight entries
// report (zero, false) — a caller that cannot wait must treat them as
// absent. A found entry counts as a hit and is refreshed in the LRU order;
// an absent or in-flight one counts as a miss. The batch scheduler probes
// with this before grouping the misses into one lockstep computation.
func (c *Cache[K, V]) Lookup(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok && e.linked {
		c.stats.Hits++
		c.unlinkLocked(e)
		c.linkFrontLocked(e)
		return e.val, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Put stores a value computed outside the cache (e.g. by the batch
// scheduler, which probed with Lookup, ran the misses itself, and now
// backfills). It counts neither hit nor miss — the Lookup already counted
// the miss — and leaves existing or in-flight entries untouched: values
// are deterministic functions of their key, so whichever copy resides is
// interchangeable, and an in-flight computation keeps singleflight
// ownership.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	if _, ok := c.entries[k]; ok {
		c.mu.Unlock()
		return
	}
	e := &cacheEntry[K, V]{key: k, val: v}
	e.once.Do(func() {}) // mark computed: a later Get must not re-run
	c.entries[k] = e
	c.linkFrontLocked(e)
	evicted := c.evictLocked()
	name, remaining := c.name, len(c.entries)
	c.mu.Unlock()
	logEviction(name, evicted, remaining)
}

// Len reports the number of resident entries (completed plus in-flight).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// SetCapacity rebounds the cache (n <= 0 means unbounded), evicting
// least-recently-used completed entries that no longer fit. In-flight
// entries stay pinned.
func (c *Cache[K, V]) SetCapacity(n int) {
	c.mu.Lock()
	if n < 0 {
		n = 0
	}
	c.cap = n
	evicted := c.evictLocked()
	name, remaining := c.name, len(c.entries)
	c.mu.Unlock()
	logEviction(name, evicted, remaining)
}

// Reset empties the cache. Unlike capacity eviction it drops in-flight
// entries too (their running computations finish but are not re-linked),
// so callers that need singleflight guarantees should not Reset while
// Gets are outstanding — it exists for benchmarks and tests that force
// recomputation.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Evictions += uint64(len(c.entries))
	c.entries = map[K]*cacheEntry[K, V]{}
	c.head, c.tail = nil, nil
}

// Stats reports the cache's cumulative hit/miss/eviction counts and
// current residency.
func (c *Cache[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// RegisterMetrics publishes the cache's statistics into a telemetry
// registry as callback gauges named <prefix>.hits, .misses, .evictions,
// .entries and .hit_rate, evaluated at snapshot time. The prefix also
// becomes the cache's name in eviction log records.
func (c *Cache[K, V]) RegisterMetrics(r *telemetry.Registry, prefix string) {
	c.mu.Lock()
	c.name = prefix
	c.mu.Unlock()
	r.RegisterGaugeFunc(prefix+".hits", func() float64 { return float64(c.Stats().Hits) })
	r.RegisterGaugeFunc(prefix+".misses", func() float64 { return float64(c.Stats().Misses) })
	r.RegisterGaugeFunc(prefix+".evictions", func() float64 { return float64(c.Stats().Evictions) })
	r.RegisterGaugeFunc(prefix+".entries", func() float64 { return float64(c.Stats().Entries) })
	r.RegisterGaugeFunc(prefix+".hit_rate", func() float64 { return c.Stats().HitRate() })
}
