package sim

import (
	"sync"

	"didt/internal/telemetry"
)

// Cache memoizes a deterministic computation keyed by K with singleflight
// semantics: when several goroutines ask for the same key at once, exactly
// one runs the computation and the rest wait for its result. Values must
// be deterministic functions of their key (every cached artifact in this
// repository is — sampled PDN kernels, generated programs, measured
// envelopes), so it never matters which goroutine populated an entry.
//
// Capacity bounds the map for long-lived processes: inserting beyond it
// evicts every completed entry (a full flush — cheap, and correct for
// caches of recomputable values). Errors are not cached; a failed key is
// recomputed on the next Get.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*cacheEntry[V]
	cap     int
	stats   CacheStats
}

// CacheStats is a point-in-time view of a cache's effectiveness. A Get
// that finds an entry (even one still being computed by another
// goroutine) counts as a hit; a Get that inserts counts as a miss;
// Evictions counts entries dropped by capacity flushes and Reset.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// HitRate is hits/(hits+misses), 0 for an untouched cache.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// NewCache creates a cache holding at most capacity entries; capacity <= 0
// means unbounded.
func NewCache[K comparable, V any](capacity int) *Cache[K, V] {
	return &Cache[K, V]{entries: map[K]*cacheEntry[V]{}, cap: capacity}
}

// Get returns the cached value for k, computing it via compute on first
// use. Concurrent Gets of the same key share one computation.
func (c *Cache[K, V]) Get(k K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		if c.cap > 0 && len(c.entries) >= c.cap {
			c.stats.Evictions += uint64(len(c.entries))
			c.entries = map[K]*cacheEntry[V]{}
		}
		e = &cacheEntry[V]{}
		c.entries[k] = e
	} else {
		c.stats.Hits++
	}
	c.mu.Unlock()

	e.once.Do(func() {
		e.val, e.err = compute()
		if e.err != nil {
			c.mu.Lock()
			// Drop the failed entry so a later Get retries, unless an
			// eviction already replaced it.
			if cur, ok := c.entries[k]; ok && cur == e {
				delete(c.entries, k)
			}
			c.mu.Unlock()
		}
	})
	return e.val, e.err
}

// Len reports the number of resident entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset empties the cache.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Evictions += uint64(len(c.entries))
	c.entries = map[K]*cacheEntry[V]{}
}

// Stats reports the cache's cumulative hit/miss/eviction counts and
// current residency.
func (c *Cache[K, V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// RegisterMetrics publishes the cache's statistics into a telemetry
// registry as callback gauges named <prefix>.hits, .misses, .evictions,
// .entries and .hit_rate, evaluated at snapshot time.
func (c *Cache[K, V]) RegisterMetrics(r *telemetry.Registry, prefix string) {
	r.RegisterGaugeFunc(prefix+".hits", func() float64 { return float64(c.Stats().Hits) })
	r.RegisterGaugeFunc(prefix+".misses", func() float64 { return float64(c.Stats().Misses) })
	r.RegisterGaugeFunc(prefix+".evictions", func() float64 { return float64(c.Stats().Evictions) })
	r.RegisterGaugeFunc(prefix+".entries", func() float64 { return float64(c.Stats().Entries) })
	r.RegisterGaugeFunc(prefix+".hit_rate", func() float64 { return c.Stats().HitRate() })
}
