package sim

import "sync"

// Cache memoizes a deterministic computation keyed by K with singleflight
// semantics: when several goroutines ask for the same key at once, exactly
// one runs the computation and the rest wait for its result. Values must
// be deterministic functions of their key (every cached artifact in this
// repository is — sampled PDN kernels, generated programs, measured
// envelopes), so it never matters which goroutine populated an entry.
//
// Capacity bounds the map for long-lived processes: inserting beyond it
// evicts every completed entry (a full flush — cheap, and correct for
// caches of recomputable values). Errors are not cached; a failed key is
// recomputed on the next Get.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*cacheEntry[V]
	cap     int
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// NewCache creates a cache holding at most capacity entries; capacity <= 0
// means unbounded.
func NewCache[K comparable, V any](capacity int) *Cache[K, V] {
	return &Cache[K, V]{entries: map[K]*cacheEntry[V]{}, cap: capacity}
}

// Get returns the cached value for k, computing it via compute on first
// use. Concurrent Gets of the same key share one computation.
func (c *Cache[K, V]) Get(k K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		if c.cap > 0 && len(c.entries) >= c.cap {
			c.entries = map[K]*cacheEntry[V]{}
		}
		e = &cacheEntry[V]{}
		c.entries[k] = e
	}
	c.mu.Unlock()

	e.once.Do(func() {
		e.val, e.err = compute()
		if e.err != nil {
			c.mu.Lock()
			// Drop the failed entry so a later Get retries, unless an
			// eviction already replaced it.
			if cur, ok := c.entries[k]; ok && cur == e {
				delete(c.entries, k)
			}
			c.mu.Unlock()
		}
	})
	return e.val, e.err
}

// Len reports the number of resident entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset empties the cache.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[K]*cacheEntry[V]{}
}
