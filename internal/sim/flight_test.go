package sim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightCoalesces: N concurrent joiners of one key elect exactly one
// leader, and every waiter sees the leader's published value.
func TestFlightCoalesces(t *testing.T) {
	var g FlightGroup[string, int]
	var leaders atomic.Int32
	var wg sync.WaitGroup
	results := make([]int, 16)
	lead := make(chan *Flight[int], 1)
	joined := make(chan struct{}, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, leader := g.Join("k")
			joined <- struct{}{}
			if leader {
				leaders.Add(1)
				lead <- f
				// Wait for the main goroutine to publish; our own Wait
				// would deadlock (leaders must not wait on themselves).
				v, err := f.Wait(context.Background())
				if err != nil {
					t.Errorf("leader wait: %v", err)
				}
				results[i] = v
				return
			}
			v, err := f.Wait(context.Background())
			if err != nil {
				t.Errorf("waiter: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Every goroutine must be on the flight before it finishes: a Finish
	// racing a late Join would leave that joiner leading a second flight
	// nobody completes.
	for i := 0; i < 16; i++ {
		<-joined
	}
	f := <-lead
	g.Finish("k", f, 42, nil)
	wg.Wait()
	if n := leaders.Load(); n != 1 {
		t.Errorf("leaders = %d, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("joiner %d saw %d, want 42", i, v)
		}
	}
	if g.Len() != 0 {
		t.Errorf("Len = %d after Finish, want 0", g.Len())
	}
}

// TestFlightAbort: an aborted flight hands every waiter ErrFlightAborted,
// and the key is immediately leadable again.
func TestFlightAbort(t *testing.T) {
	var g FlightGroup[string, int]
	f, leader := g.Join("k")
	if !leader {
		t.Fatal("first Join must lead")
	}
	waited := make(chan error, 1)
	joined := make(chan struct{})
	go func() {
		f2, lead2 := g.Join("k")
		close(joined)
		if lead2 {
			waited <- errors.New("second Join led while flight live")
			return
		}
		_, err := f2.Wait(context.Background())
		waited <- err
	}()
	<-joined // the waiter is on the flight before the leader aborts
	g.Abort("k", f)
	if err := <-waited; !errors.Is(err, ErrFlightAborted) {
		t.Errorf("waiter error = %v, want ErrFlightAborted", err)
	}
	if _, leader := g.Join("k"); !leader {
		t.Error("key not leadable after Abort")
	}
}

// TestFlightWaitHonoursContext: a waiter whose context dies is released
// with ctx.Err() while the flight stays live for others.
func TestFlightWaitHonoursContext(t *testing.T) {
	var g FlightGroup[string, int]
	f, _ := g.Join("k")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Wait under dead ctx = %v, want context.Canceled", err)
	}
	g.Finish("k", f, 7, nil)
	if v, err := f.Wait(context.Background()); err != nil || v != 7 {
		t.Errorf("Wait after Finish = (%d, %v), want (7, nil)", v, err)
	}
}

// TestFlightFinishError: leader errors propagate to waiters verbatim.
func TestFlightFinishError(t *testing.T) {
	var g FlightGroup[string, int]
	f, _ := g.Join("k")
	boom := errors.New("boom")
	done := make(chan error, 1)
	joined := make(chan struct{})
	go func() {
		f2, _ := g.Join("k")
		close(joined)
		_, err := f2.Wait(context.Background())
		done <- err
	}()
	<-joined // the waiter is on the flight before the leader finishes
	g.Finish("k", f, 0, boom)
	if err := <-done; !errors.Is(err, boom) {
		t.Errorf("waiter error = %v, want boom", err)
	}
}
