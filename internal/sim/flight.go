package sim

import (
	"context"
	"errors"
	"sync"
)

// ErrFlightAborted reports that a flight's leader finished without
// publishing a result: it lost admission, its client vanished, or it
// discovered the answer somewhere cheaper (a warm store entry). Waiters
// receiving it should retry — re-probe their caches and, if the key is
// still unresolved, lead a fresh flight themselves.
var ErrFlightAborted = errors.New("sim: flight aborted by leader")

// Flight is one in-progress computation shared by every concurrent
// requester of the same key. Exactly one goroutine — the leader returned
// by FlightGroup.Join — owns it and must end it with Finish or Abort;
// everyone else blocks in Wait until then.
type Flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Wait blocks until the flight ends or ctx is cancelled. It returns the
// published value, the leader's error, ErrFlightAborted when the leader
// produced nothing, or ctx.Err() when the waiter gave up first.
func (f *Flight[V]) Wait(ctx context.Context) (V, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		var zero V
		return zero, ctx.Err()
	}
}

// FlightGroup coalesces concurrent computations of the same key: the
// first Join for a key creates its flight and elects the caller leader;
// every later Join returns the same flight to wait on. Unlike Cache it
// retains nothing once a flight ends — persistence is the caller's
// concern (didtd layers it over the content-addressed result store) —
// which is exactly what generalizes in-process singleflight to the wire:
// N concurrent identical requests collapse onto one leader, and repeat
// requests hit whatever durable layer the leader populated.
//
// The zero value is ready to use.
type FlightGroup[K comparable, V any] struct {
	mu      sync.Mutex
	flights map[K]*Flight[V]
}

// Join returns the live flight for k, creating one when absent. leader
// reports whether this caller created it and therefore owns its
// completion: a leader must call exactly one of Finish or Abort, on every
// path, or waiters block until their contexts expire.
func (g *FlightGroup[K, V]) Join(k K) (f *Flight[V], leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.flights == nil {
		g.flights = map[K]*Flight[V]{}
	}
	if f, ok := g.flights[k]; ok {
		return f, false
	}
	f = &Flight[V]{done: make(chan struct{})}
	g.flights[k] = f
	return f, true
}

// Finish publishes the leader's result (value or error), removes the
// flight, and releases every waiter. The value is visible to waiters via
// the happens-before edge of the channel close.
func (g *FlightGroup[K, V]) Finish(k K, f *Flight[V], v V, err error) {
	f.val, f.err = v, err
	g.remove(k, f)
	close(f.done)
}

// Abort ends the flight without a result; waiters receive
// ErrFlightAborted and are expected to retry. Leaders use it when they
// were denied admission, their client vanished, or a store double-check
// made the computation unnecessary.
func (g *FlightGroup[K, V]) Abort(k K, f *Flight[V]) {
	f.err = ErrFlightAborted
	g.remove(k, f)
	close(f.done)
}

// remove detaches f from the group if it is still the resident flight
// for k (a retrying waiter may already have led a replacement).
func (g *FlightGroup[K, V]) remove(k K, f *Flight[V]) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if cur, ok := g.flights[k]; ok && cur == f {
		delete(g.flights, k)
	}
}

// Len reports the number of in-progress flights.
func (g *FlightGroup[K, V]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
