package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Cache capacity registry. Every long-lived Cache in the repository
// registers itself here under a stable name, so its capacity is a tunable
// — reachable from the spec/budget layer and the didtd flags — instead of
// a constructor literal buried in the owning package. Overrides may arrive
// before the owning package's init runs (flag parsing vs. package
// initialization order is arbitrary), so the registry remembers them and
// applies whichever of {override, default} is current when the cache
// finally registers.
var capReg struct {
	mu        sync.Mutex
	defaults  map[string]int
	overrides map[string]int
	hooks     map[string]func(int)
}

func capRegLocked() {
	if capReg.defaults == nil {
		capReg.defaults = map[string]int{}
		capReg.overrides = map[string]int{}
		capReg.hooks = map[string]func(int){}
	}
}

// RegisterCacheCapacity declares a named tunable cache with the given
// default capacity and resize hook (typically the cache's SetCapacity
// method). It applies — and returns — the effective capacity: a previously
// recorded override if one exists, the default otherwise. Registering the
// same name twice replaces the hook (tests re-initialize).
func RegisterCacheCapacity(name string, def int, setCap func(int)) int {
	capReg.mu.Lock()
	defer capReg.mu.Unlock()
	capRegLocked()
	capReg.defaults[name] = def
	capReg.hooks[name] = setCap
	eff := def
	if o, ok := capReg.overrides[name]; ok {
		eff = o
	}
	setCap(eff)
	return eff
}

// SetCacheCapacity overrides a named cache's capacity (n <= 0 means
// unbounded). If the cache is already registered the resize applies
// immediately; otherwise the override is remembered and applied at
// registration. An empty name is an error.
func SetCacheCapacity(name string, n int) error {
	if name == "" {
		return fmt.Errorf("sim: empty cache name")
	}
	capReg.mu.Lock()
	defer capReg.mu.Unlock()
	capRegLocked()
	if n < 0 {
		n = 0
	}
	capReg.overrides[name] = n
	if hook, ok := capReg.hooks[name]; ok {
		hook(n)
	}
	return nil
}

// CacheCapacityNames lists the registered tunable caches in sorted order.
func CacheCapacityNames() []string {
	capReg.mu.Lock()
	defer capReg.mu.Unlock()
	capRegLocked()
	names := make([]string, 0, len(capReg.defaults))
	for name := range capReg.defaults {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CacheCapacity reports a registered cache's effective capacity.
func CacheCapacity(name string) (int, bool) {
	capReg.mu.Lock()
	defer capReg.mu.Unlock()
	capRegLocked()
	if o, ok := capReg.overrides[name]; ok {
		return o, true
	}
	d, ok := capReg.defaults[name]
	return d, ok
}
