package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Fingerprint returns the canonical content hash of a configuration value:
// the hex-encoded SHA-256 of its JSON encoding. It is the one hashing
// primitive behind every memo identity in the repository — spec.RunSpec.Key
// and the sim.Cache keys (PDN kernel, workload programs, measured envelope,
// experiment studies) all reduce to it — so "same configuration" means the
// same thing at every layer.
//
// encoding/json is deterministic for the struct types used as keys (field
// order follows declaration order, map keys are sorted), so equal values
// always produce equal fingerprints, and distinct values produce distinct
// fingerprints because the encoding round-trips every key-relevant field.
// Values that cannot be marshaled (channels, funcs) panic: a memo key that
// cannot be serialized is a programming error, not a runtime condition.
func Fingerprint(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("sim: unfingerprintable key %T: %v", v, err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
