package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"didt/internal/telemetry"
)

// TestPoolMonotonicCounters proves rates are derivable from two scrapes:
// jobs_completed_total advances by exactly the number of completed jobs
// for both the inline (workers==1) and pooled paths, and
// queue_wait_ns_total never decreases.
func TestPoolMonotonicCounters(t *testing.T) {
	poolMetrics()
	ctx := context.Background()
	run := func(workers, n int) {
		before := mJobsCompleted.Value()
		waitBefore := mQueueWaitNs.Value()
		_, err := Map(ctx, workers, n, func(ctx context.Context, i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if got := mJobsCompleted.Value() - before; got != int64(n) {
			t.Errorf("workers=%d: jobs_completed_total advanced by %d, want %d", workers, got, n)
		}
		if mQueueWaitNs.Value() < waitBefore {
			t.Errorf("workers=%d: queue_wait_ns_total decreased", workers)
		}
	}
	run(1, 7)  // inline path
	run(4, 16) // pooled path: dispatch waits on the unbuffered channel
	// The pooled run must have accumulated some queue wait: each handoff on
	// the unbuffered jobs channel blocks until a worker receives.
	if mQueueWaitNs.Value() == 0 {
		t.Error("queue_wait_ns_total is zero after a pooled sweep")
	}
}

// TestMapJobSpans checks per-job spans ride the context's tracer: one
// sim.job span per job, parented under the caller's span, and none at all
// when the tracer is disabled.
func TestMapJobSpans(t *testing.T) {
	tr := telemetry.NewTracer(0)
	ctx := telemetry.ContextWithTracer(context.Background(), tr)
	ctx, root := tr.Start(ctx, "sweep")
	const n = 5
	if _, err := Map(ctx, 2, n, func(ctx context.Context, i int) (int, error) {
		if telemetry.SpanFromContext(ctx) == nil {
			t.Error("job context carries no span")
		}
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	if root.Enabled() {
		root.End()
	}
	var jobs int
	for _, r := range tr.Spans() {
		if r.Name != "sim.job" {
			continue
		}
		jobs++
		if r.TraceID != root.TraceID() {
			t.Errorf("job span trace id %s != root %s", r.TraceID, root.TraceID())
		}
		if r.ParentID != root.SpanID() {
			t.Errorf("job span parent %s != root span id %s", r.ParentID, root.SpanID())
		}
	}
	if jobs != n {
		t.Errorf("got %d sim.job spans, want %d", jobs, n)
	}

	// Disabled tracer: zero spans, zero overhead beyond the guard.
	tr2 := telemetry.NewTracer(0)
	tr2.SetEnabled(false)
	ctx2 := telemetry.ContextWithTracer(context.Background(), tr2)
	if _, err := Map(ctx2, 2, n, func(ctx context.Context, i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if got := len(tr2.Spans()); got != 0 {
		t.Errorf("disabled tracer recorded %d spans", got)
	}
}

// TestCacheEvictionLogging checks the app-level eviction log: records
// carry the cache's registered name and the eviction count, and a nil
// logger disables them.
func TestCacheEvictionLogging(t *testing.T) {
	var buf bytes.Buffer
	SetCacheLogger(slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug})))
	defer SetCacheLogger(nil)

	c := NewCache[int, int](2)
	c.RegisterMetrics(telemetry.NewRegistry(), "cache.test_evict")
	for i := 0; i < 4; i++ {
		if _, err := c.Get(i, func() (int, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "cache eviction") {
		t.Fatalf("no eviction record logged:\n%s", out)
	}
	var rec struct {
		Msg     string `json:"msg"`
		Cache   string `json:"cache"`
		Evicted int    `json:"evicted"`
		Entries int    `json:"entries"`
	}
	line := strings.SplitN(out, "\n", 2)[0]
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("eviction record is not JSON: %v\n%s", err, line)
	}
	if rec.Cache != "cache.test_evict" || rec.Evicted < 1 || rec.Entries < 1 {
		t.Errorf("unexpected eviction record: %+v", rec)
	}

	// Disabled logger: evictions proceed silently.
	SetCacheLogger(nil)
	buf.Reset()
	for i := 10; i < 14; i++ {
		c.Get(i, func() (int, error) { return i, nil })
	}
	if buf.Len() != 0 {
		t.Errorf("nil logger still produced output: %s", buf.String())
	}
	if c.Stats().Evictions < 2 {
		t.Errorf("evictions did not proceed with logging off: %+v", c.Stats())
	}
}
