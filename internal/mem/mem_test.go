package mem

import (
	"testing"
	"testing/quick"
)

func TestNewCacheValidation(t *testing.T) {
	cases := []struct {
		bytes, ways, line int
	}{
		{0, 2, 64},
		{1024, 0, 64},
		{1024, 2, 60},   // non-power-of-two line
		{1024, 32, 64},  // 16 lines < 32 ways
		{64 * 3, 2, 64}, // 3 lines not divisible / sets not pow2
	}
	for i, c := range cases {
		if _, err := NewCache("t", c.bytes, c.ways, c.line); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c, err := NewCache("t", 1024, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0x100) {
		t.Error("cold access must miss")
	}
	if !c.Access(0x100) {
		t.Error("second access must hit")
	}
	if !c.Access(0x13f) {
		t.Error("same line must hit")
	}
	if c.Access(0x140) {
		t.Error("next line must miss")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("stats: %d accesses %d misses", c.Accesses, c.Misses)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// 2 ways, 2 sets of 64B lines -> 256B cache. Addresses mapping to set 0:
	// lines 0, 2, 4 (line index even).
	c, err := NewCache("t", 256, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	addr := func(line int) uint64 { return uint64(line * 64) }
	c.Access(addr(0))
	c.Access(addr(2))
	c.Access(addr(0)) // touch 0, making 2 the LRU
	c.Access(addr(4)) // evicts 2
	if !c.Probe(addr(0)) {
		t.Error("line 0 should survive (MRU)")
	}
	if c.Probe(addr(2)) {
		t.Error("line 2 should be evicted (LRU)")
	}
	if !c.Probe(addr(4)) {
		t.Error("line 4 should be resident")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c, _ := NewCache("t", 256, 2, 64)
	c.Access(0)
	acc, miss := c.Accesses, c.Misses
	c.Probe(0)
	c.Probe(4096)
	if c.Accesses != acc || c.Misses != miss {
		t.Error("Probe changed statistics")
	}
}

func TestHierarchyDefaultsMatchTable1(t *testing.T) {
	h, err := NewHierarchy(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.Config()
	if cfg.L1DBytes != 64<<10 || cfg.L1DWays != 2 {
		t.Errorf("L1D: %+v", cfg)
	}
	if cfg.L2Bytes != 2<<20 || cfg.L2Ways != 4 {
		t.Errorf("L2: %+v", cfg)
	}
	if cfg.L2HitLat != 16 || cfg.MemLat != 300 {
		t.Errorf("latencies: %+v", cfg)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.Config()
	// Cold: L1 miss, L2 miss -> full memory latency.
	r, ok := h.AccessData(0x10000, false)
	if !ok {
		t.Fatal("unexpected gate")
	}
	if r.Latency != cfg.L1HitLat+cfg.L2HitLat+cfg.MemLat || !r.MemUsed {
		t.Errorf("cold access: %+v", r)
	}
	// Warm L1.
	r, _ = h.AccessData(0x10000, false)
	if r.Latency != cfg.L1HitLat || !r.L1Hit {
		t.Errorf("L1 hit: %+v", r)
	}
	// Evict from L1 but not L2: access enough conflicting lines.
	// L1D is 64KB 2-way with 64B lines -> 512 sets; stride 512*64 = 32KB
	// conflicts in the same set.
	for i := 1; i <= 4; i++ {
		h.AccessData(uint64(0x10000+i*32*1024), false)
	}
	r, _ = h.AccessData(0x10000, false)
	if r.L1Hit {
		t.Fatal("expected L1 eviction")
	}
	if !r.L2Hit || r.Latency != cfg.L1HitLat+cfg.L2HitLat {
		t.Errorf("L2 hit: %+v", r)
	}
}

func TestGatingBlocksAccess(t *testing.T) {
	h, _ := NewHierarchy(Config{})
	h.DL1Gated = true
	if _, ok := h.AccessData(0, false); ok {
		t.Error("gated D-cache must refuse access")
	}
	h.IL1Gated = true
	if _, ok := h.FetchInstr(0); ok {
		t.Error("gated I-cache must refuse access")
	}
	h.DL1Gated, h.IL1Gated = false, false
	if _, ok := h.AccessData(0, false); !ok {
		t.Error("ungated D-cache must serve")
	}
	if _, ok := h.FetchInstr(0); !ok {
		t.Error("ungated I-cache must serve")
	}
}

func TestGatingPreservesCacheState(t *testing.T) {
	h, _ := NewHierarchy(Config{})
	h.AccessData(0x2000, false)
	h.DL1Gated = true
	h.AccessData(0x2000, false) // refused
	h.DL1Gated = false
	r, _ := h.AccessData(0x2000, false)
	if !r.L1Hit {
		t.Error("gating must not disturb cache contents")
	}
}

func TestMissRate(t *testing.T) {
	c, _ := NewCache("t", 1024, 2, 64)
	if c.MissRate() != 0 {
		t.Error("empty cache miss rate should be 0")
	}
	c.Access(0)
	c.Access(0)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %g, want 0.5", got)
	}
}

func TestPropertySecondAccessAlwaysHits(t *testing.T) {
	c, _ := NewCache("t", 64<<10, 2, 64)
	f := func(addr uint64) bool {
		addr &= (1 << 30) - 1
		c.Access(addr)
		return c.Access(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyHierarchyLatencyIsOneOfThree(t *testing.T) {
	h, _ := NewHierarchy(Config{})
	cfg := h.Config()
	valid := map[int]bool{
		cfg.L1HitLat:                             true,
		cfg.L1HitLat + cfg.L2HitLat:              true,
		cfg.L1HitLat + cfg.L2HitLat + cfg.MemLat: true,
	}
	f := func(addr uint64) bool {
		r, ok := h.AccessData(addr&((1<<32)-1), false)
		return ok && valid[r.Latency]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
