// Package mem models the Table 1 memory hierarchy for timing: 64KB 2-way
// L1 instruction and data caches, a 2MB 4-way unified L2 with 16-cycle
// latency, and 300-cycle main memory. Caches track tags and LRU state
// only; architectural data lives in the functional memory (isa.Memory).
//
// The hierarchy also exposes the clock-gating hooks the dI/dt actuators
// need: a gated cache refuses access (the core must retry), modeling the
// paper's cache clock-gating that "merely disables the clock signal" and
// preserves state.
package mem

import "fmt"

// Cache is one set-associative, LRU, tag-only cache level.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineShift uint

	tags [][]uint64
	// valid bits folded into tags via +1 offset: tag 0 means invalid.
	lru [][]uint64 // per-way last-use stamps
	use uint64

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of totalBytes capacity with the given
// associativity and line size (both powers of two).
func NewCache(name string, totalBytes, ways, lineBytes int) (*Cache, error) {
	if totalBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("mem: %s: sizes must be positive", name)
	}
	if lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("mem: %s: line size %d not a power of two", name, lineBytes)
	}
	lines := totalBytes / lineBytes
	if lines < ways || lines%ways != 0 {
		return nil, fmt.Errorf("mem: %s: %d lines not divisible into %d ways", name, lines, ways)
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("mem: %s: %d sets not a power of two", name, sets)
	}
	c := &Cache{name: name, sets: sets, ways: ways}
	for l := lineBytes; l > 1; l >>= 1 {
		c.lineShift++
	}
	c.tags = make([][]uint64, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.lru[i] = make([]uint64, ways)
	}
	return c, nil
}

// Access looks up addr, updates LRU and fills on miss. It returns whether
// the access hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.use++
	line := addr >> c.lineShift
	set := int(line) & (c.sets - 1)
	tag := line + 1 // +1 so that 0 is never a valid tag
	ts, ls := c.tags[set], c.lru[set]
	for w, t := range ts {
		if t == tag {
			ls[w] = c.use
			return true
		}
	}
	c.Misses++
	// Fill into LRU way.
	victim := 0
	for w := 1; w < c.ways; w++ {
		if ls[w] < ls[victim] {
			victim = w
		}
	}
	ts[victim] = tag
	ls[victim] = c.use
	return false
}

// Probe reports whether addr currently hits without updating any state.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line) & (c.sets - 1)
	tag := line + 1
	for _, t := range c.tags[set] {
		if t == tag {
			return true
		}
	}
	return false
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Config sizes the whole hierarchy. Zero values take Table 1 defaults.
type Config struct {
	L1IBytes, L1IWays int
	L1DBytes, L1DWays int
	L2Bytes, L2Ways   int
	LineBytes         int

	L1HitLat int // cycles for an L1 hit (load-use)
	L2HitLat int // additional cycles to fetch from L2
	MemLat   int // additional cycles to fetch from main memory
}

// DefaultConfig is the Table 1 memory hierarchy.
func DefaultConfig() Config {
	return Config{
		L1IBytes: 64 << 10, L1IWays: 2,
		L1DBytes: 64 << 10, L1DWays: 2,
		L2Bytes: 2 << 20, L2Ways: 4,
		LineBytes: 64,
		L1HitLat:  2,
		L2HitLat:  16,
		MemLat:    300,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.L1IBytes == 0 {
		c.L1IBytes, c.L1IWays = d.L1IBytes, d.L1IWays
	}
	if c.L1DBytes == 0 {
		c.L1DBytes, c.L1DWays = d.L1DBytes, d.L1DWays
	}
	if c.L2Bytes == 0 {
		c.L2Bytes, c.L2Ways = d.L2Bytes, d.L2Ways
	}
	if c.LineBytes == 0 {
		c.LineBytes = d.LineBytes
	}
	if c.L1HitLat == 0 {
		c.L1HitLat = d.L1HitLat
	}
	if c.L2HitLat == 0 {
		c.L2HitLat = d.L2HitLat
	}
	if c.MemLat == 0 {
		c.MemLat = d.MemLat
	}
	return c
}

// Hierarchy is the three-level memory system with gating hooks.
type Hierarchy struct {
	cfg Config
	L1I *Cache
	L1D *Cache
	L2  *Cache

	// Gating state, driven by the dI/dt actuator. A gated cache cannot be
	// accessed this cycle; the requester must stall and retry.
	IL1Gated bool
	DL1Gated bool
}

// NewHierarchy builds the hierarchy; zero Config fields take defaults.
func NewHierarchy(cfg Config) (*Hierarchy, error) {
	cfg = cfg.withDefaults()
	l1i, err := NewCache("l1i", cfg.L1IBytes, cfg.L1IWays, cfg.LineBytes)
	if err != nil {
		return nil, err
	}
	l1d, err := NewCache("l1d", cfg.L1DBytes, cfg.L1DWays, cfg.LineBytes)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache("l2", cfg.L2Bytes, cfg.L2Ways, cfg.LineBytes)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{cfg: cfg, L1I: l1i, L1D: l1d, L2: l2}, nil
}

// Config returns the hierarchy's resolved configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// AccessResult describes one access's timing and the levels it touched.
type AccessResult struct {
	Latency int
	L1Hit   bool
	L2Hit   bool // meaningful when !L1Hit
	L2Used  bool // the access went to L2 (i.e. L1 missed)
	MemUsed bool
}

// FetchInstr performs a timing access for an instruction fetch at the
// given byte address. ok is false when the I-cache is gated (the fetch
// stage must stall).
func (h *Hierarchy) FetchInstr(addr uint64) (AccessResult, bool) {
	if h.IL1Gated {
		return AccessResult{}, false
	}
	return h.access(h.L1I, addr), true
}

// AccessData performs a timing access for a load or store. ok is false
// when the D-cache is gated.
func (h *Hierarchy) AccessData(addr uint64, _ bool) (AccessResult, bool) {
	if h.DL1Gated {
		return AccessResult{}, false
	}
	return h.access(h.L1D, addr), true
}

func (h *Hierarchy) access(l1 *Cache, addr uint64) AccessResult {
	r := AccessResult{Latency: h.cfg.L1HitLat}
	if l1.Access(addr) {
		r.L1Hit = true
		return r
	}
	r.L2Used = true
	r.Latency += h.cfg.L2HitLat
	if h.L2.Access(addr) {
		r.L2Hit = true
		return r
	}
	r.MemUsed = true
	r.Latency += h.cfg.MemLat
	return r
}
