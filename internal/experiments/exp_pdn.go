package experiments

import (
	"fmt"
	"io"
	"math"

	"didt/internal/itrs"
	"didt/internal/linsys"
	"didt/internal/pdn"
	"didt/internal/report"
	"didt/internal/trace"
)

// ---------------------------------------------------------------- Figure 1

// Fig1Result holds the ITRS relative-impedance trends.
type Fig1Result struct {
	Points []itrs.Point
}

// Fig1 computes the roadmap trend of the paper's Figure 1.
func Fig1(Config) (*Fig1Result, error) {
	return &Fig1Result{Points: itrs.Trend(2016)}, nil
}

// Render writes the trend as a table plus plot.
func (r *Fig1Result) Render(w io.Writer) {
	t := &report.Table{
		Title:   "Figure 1: Relative impedance trends (ITRS 2001 model)",
		Headers: []string{"year", "high-perf Z (rel)", "cost-perf Z (rel)", "gap (x)"},
	}
	var hp, cp []float64
	for _, p := range r.Points {
		t.AddRowf(p.Year, p.HighPerformance, p.CostPerformance, p.RelativeGapFactor)
		hp = append(hp, math.Log10(p.HighPerformance))
		cp = append(cp, math.Log10(p.CostPerformance))
	}
	t.Notes = append(t.Notes,
		"target impedance halves roughly every 3-5 years",
		"the cost-performance/high-performance gap shrinks over time")
	t.Render(w)
	(&report.LinePlot{
		Title:  "Figure 1 (log10 relative impedance vs year)",
		YLabel: "log10(Z/Z2001-HP)",
		Series: []report.Series{{Name: "high-perf", Data: hp}, {Name: "cost-perf", Data: cp}},
		Height: 12,
	}).Render(w)
}

func renderFig1(cfg Config, w io.Writer) error {
	r, err := Fig1(cfg)
	if err != nil {
		return err
	}
	r.Render(w)
	return nil
}

// ---------------------------------------------------------------- Figure 2

// Fig2Result holds the canonical second-order frequency and step responses.
type Fig2Result struct {
	Freqs     []float64
	Impedance []float64 // ohms at Freqs
	StepTime  []float64 // cycles
	Step      []float64 // volts of droop for a 1A step
	System    *linsys.SecondOrder
}

// Fig2 evaluates the reference PDN's frequency and transient responses.
func Fig2(cfg Config) (*Fig2Result, error) {
	sys, err := linsys.FromPeak(pdn.DefaultDCResistance, pdn.DefaultResonantHz, 2e-3)
	if err != nil {
		return nil, err
	}
	r := &Fig2Result{System: sys}
	for i := 0; i <= 80; i++ {
		f := math.Pow(10, 6+float64(i)*3.2/80) // 1 MHz .. ~1.6 GHz
		r.Freqs = append(r.Freqs, f)
		r.Impedance = append(r.Impedance, sys.Impedance(f))
	}
	dt := 1 / pdn.DefaultClockHz
	for k := 0; k < 300; k++ {
		r.StepTime = append(r.StepTime, float64(k))
		r.Step = append(r.Step, sys.Step(float64(k)*dt))
	}
	return r, nil
}

// Render plots both responses.
func (r *Fig2Result) Render(w io.Writer) {
	var z []float64
	for _, v := range r.Impedance {
		z = append(z, v*1e3)
	}
	(&report.LinePlot{
		Title:  "Figure 2a: |Z(f)| of the second-order PDN (1 MHz .. 1.6 GHz, log-f sweep)",
		YLabel: "mOhm",
		Series: []report.Series{{Name: "|Z|", Data: z}},
		Notes: []string{
			fmt.Sprintf("peak %.3g mOhm at %.3g MHz; DC resistance %.3g mOhm",
				r.System.PeakImpedance()*1e3, r.System.PeakFrequency()/1e6, r.System.DCResistance()*1e3),
		},
	}).Render(w)
	var mv []float64
	for _, v := range r.Step {
		mv = append(mv, v*1e3)
	}
	(&report.LinePlot{
		Title:  "Figure 2b: step response (voltage droop for a 1 A step, 300 cycles)",
		YLabel: "mV per ampere",
		Series: []report.Series{{Name: "droop", Data: mv}},
		Notes:  []string{"underdamped: overshoot and ringing before settling at R*dI"},
	}).Render(w)
}

func renderFig2(cfg Config, w io.Writer) error {
	r, err := Fig2(cfg)
	if err != nil {
		return err
	}
	r.Render(w)
	return nil
}

// ------------------------------------------------------- Figures 3, 4, 5, 6

// PulseResult holds a stimulus/response pair for the intuition figures.
type PulseResult struct {
	ID          string
	Description string
	Current     trace.Trace
	Voltage     trace.Trace
	VMin, VMax  float64 // band boundaries
	Crossed     bool    // did the response leave the band?
}

// Pulse computes the response of the 200%-impedance reference network to
// the paper's four characteristic stimuli.
func Pulse(cfg Config, id string) (*PulseResult, error) {
	const iLow, iHigh = 10.0, 50.0
	net, err := pdn.Calibrate(pdn.Params{IFloor: (iLow + iHigh) / 2}, iLow, iHigh, 2)
	if err != nil {
		return nil, err
	}
	period := net.ResonantPeriodCycles()
	n := 6 * period
	cur := make(trace.Trace, n)
	for i := range cur {
		cur[i] = iLow
	}
	r := &PulseResult{ID: id, VMin: net.VMin(), VMax: net.VMax()}
	set := func(from, to int) {
		for i := from; i < to && i < n; i++ {
			cur[i] = iHigh
		}
	}
	switch id {
	case "fig3":
		r.Description = "narrow current spike (5 cycles): recovers before the threshold"
		set(9, 14)
	case "fig4":
		r.Description = "wide current spike (half resonant period): pulls voltage through the threshold"
		set(9, 9+period/2)
	case "fig5":
		r.Description = "notched wide spike: microarchitectural control carves a notch so the network recovers"
		set(9, 9+period/2)
		// The notch: control cuts current for the middle third.
		for i := 9 + period/6; i < 9+period/3; i++ {
			cur[i] = iLow
		}
	case "fig6":
		r.Description = "pulse train at the resonant frequency: each pulse deepens the ripple (dI/dt stressmark effect)"
		for p := 0; p < 5; p++ {
			set(9+p*period, 9+p*period+period/2)
		}
	default:
		return nil, fmt.Errorf("experiments: unknown pulse id %q", id)
	}
	r.Current = cur
	r.Voltage = net.VoltageTrace(cur)
	r.Crossed = r.Voltage.CountOutside(net.VMin(), net.VMax()) > 0
	return r, nil
}

// Render plots the stimulus and the response.
func (r *PulseResult) Render(w io.Writer) {
	name := map[string]string{
		"fig3": "Figure 3", "fig4": "Figure 4", "fig5": "Figure 5", "fig6": "Figure 6",
	}[r.ID]
	(&report.LinePlot{
		Title:  fmt.Sprintf("%s: %s — input current", name, r.Description),
		YLabel: "A",
		Series: []report.Series{{Name: "I", Data: r.Current}},
		Height: 8,
	}).Render(w)
	status := "stays inside the +-5% band"
	if r.Crossed {
		status = "CROSSES the +-5% band (voltage emergency)"
	}
	(&report.LinePlot{
		Title:  fmt.Sprintf("%s — supply voltage response (%s)", name, status),
		YLabel: "V",
		Series: []report.Series{{Name: "V", Data: r.Voltage}},
		Notes: []string{
			fmt.Sprintf("band [%.3f, %.3f] V; response range [%.4f, %.4f] V",
				r.VMin, r.VMax, r.Voltage.Min(), r.Voltage.Max()),
		},
	}).Render(w)
}

func renderPulse(cfg Config, w io.Writer, id string) error {
	r, err := Pulse(cfg, id)
	if err != nil {
		return err
	}
	r.Render(w)
	return nil
}
