package experiments

import (
	"fmt"
	"io"
	"math"

	"didt/internal/core"
	"didt/internal/cpu"
	"didt/internal/power"
	"didt/internal/quadrant"
	"didt/internal/report"
	"didt/internal/telemetry"
)

// LocalityRow summarizes one quadrant under the localized PDN model.
type LocalityRow struct {
	Quadrant    string
	MinV        float64
	MaxV        float64
	Emergencies uint64
}

// LocalityResult is the Section 6 locality study: chip-wide (uniform)
// voltage versus per-quadrant voltage under the same run.
type LocalityResult struct {
	Workload          string
	GlobalMinV        float64
	GlobalMaxV        float64
	GlobalEmergencies uint64
	Rows              []LocalityRow
	VMin, VMax        float64
}

// Locality runs the stressmark through the quadrant-level PDN model.
func Locality(cfg Config) (*LocalityResult, error) {
	cfg = cfg.withDefaults()
	return memoized("locality", cfg, func() (*LocalityResult, error) {
		prog := cfg.stressProgram()
		// Use a plain system to get the measured envelope and drive the
		// machine; the quadrant model taps the per-cycle power report.
		sys, err := core.NewSystem(prog, cfg.baseOptions(2))
		if err != nil {
			return nil, err
		}
		iMin, iMax := sys.Envelope()
		qm, err := quadrant.New(quadrant.Params{ImpedancePct: 2}, sys.Power, iMin, iMax)
		if err != nil {
			return nil, err
		}
		vMin, vMax := qm.Band()
		r := &LocalityResult{Workload: "stressmark", VMin: vMin, VMax: vMax, GlobalMinV: math.Inf(1), GlobalMaxV: math.Inf(-1)}
		rows := make([]LocalityRow, quadrant.NumQuadrants)
		for q := range rows {
			rows[q] = LocalityRow{Quadrant: quadrant.Quadrant(q).String(), MinV: math.Inf(1), MaxV: math.Inf(-1)}
		}
		// Re-run the machine manually so every cycle's PerUnit report is
		// visible to the quadrant model.
		c := sys.CPU
		pm := power.New(power.Params{}, c.Config())
		stream := cfg.Telemetry.Stream("locality quadrants")
		var act cpu.Activity
		for i := uint64(0); i < cfg.Cycles; i++ {
			done := c.StepInto(&act)
			rep := pm.Step(&act, power.Phantom{})
			g, locals := qm.CycleVoltages(rep)
			if stream.Enabled() {
				stream.Emit(i, telemetry.KindVoltage, 0, g)
				for q, v := range locals {
					stream.Emit(i, telemetry.KindQuadrantVoltage, int32(q), v)
				}
			}
			if i >= cfg.Warmup {
				r.GlobalMinV = math.Min(r.GlobalMinV, g)
				r.GlobalMaxV = math.Max(r.GlobalMaxV, g)
				if g < vMin || g > vMax {
					r.GlobalEmergencies++
				}
				for q, v := range locals {
					rows[q].MinV = math.Min(rows[q].MinV, v)
					rows[q].MaxV = math.Max(rows[q].MaxV, v)
					if v < vMin || v > vMax {
						rows[q].Emergencies++
					}
				}
			}
			if done {
				break
			}
		}
		r.Rows = rows
		return r, nil
	})
}

func renderLocality(cfg Config, w io.Writer) error {
	r, err := Locality(cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Section 6 extension: per-quadrant (localized) dI/dt modeling — stressmark at 200% impedance",
		Headers: []string{"supply view", "minV", "maxV", "emergencies"},
	}
	t.AddRow("chip-wide (uniform model)",
		fmt.Sprintf("%.4f", r.GlobalMinV), fmt.Sprintf("%.4f", r.GlobalMaxV),
		fmt.Sprintf("%d", r.GlobalEmergencies))
	for _, row := range r.Rows {
		t.AddRow("quadrant: "+row.Quadrant,
			fmt.Sprintf("%.4f", row.MinV), fmt.Sprintf("%.4f", row.MaxV),
			fmt.Sprintf("%d", row.Emergencies))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("emergency band [%.3f, %.3f] V applies to every view", r.VMin, r.VMax),
		"quadrants whose units swing together dip beyond what the uniform model reports — the locality the paper flags as future work")
	t.Render(w)
	return nil
}
