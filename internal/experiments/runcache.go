package experiments

import (
	"fmt"

	"didt/internal/actuator"
	"didt/internal/core"
	"didt/internal/isa"
	"didt/internal/pdn"
	"didt/internal/sim"
	"didt/internal/spec"
	"didt/internal/telemetry"
	"didt/internal/workload"
)

// The experiment suite re-runs behaviorally identical simulations
// constantly: every study's uncontrolled baselines share one spec, the
// "ideal" and "FU/DL1/IL1" mechanisms are the same boolean actuator, and
// fig10's 100%-impedance runs are table2's 100% column. runCache memoizes
// complete runs keyed on program identity plus a behavior-canonical spec
// fingerprint, so each distinct simulation happens once per process.
// Cached Results are shared across studies and must be treated as
// read-only, which every renderer already does.
var runCache = sim.NewCache[string, *core.Result](512)

func init() {
	runCache.RegisterMetrics(telemetry.Default(), "cache.experiments_run")
	sim.RegisterCacheCapacity("experiments_run", 512, runCache.SetCapacity)
}

// RunCacheStats reports the shared full-run cache's effectiveness.
func RunCacheStats() sim.CacheStats { return runCache.Stats() }

// ResetRunCache empties the shared full-run cache (benchmarks use it to
// measure cold-start cost).
func ResetRunCache() { runCache.Reset() }

// runJob is one simulation in a keyed batch: the program, its stable
// identity (empty disables all run-level caching), and the run options.
type runJob struct {
	prog    isa.Program
	progKey string
	opts    core.Options
}

// benchProgramKeyed is benchProgram plus the profile fingerprint that
// names the generated program across runs.
func (c Config) benchProgramKeyed(name string) (isa.Program, string, error) {
	p, err := workload.ProfileByName(name)
	if err != nil {
		return nil, "", err
	}
	p.Iterations = c.Iterations
	return workload.GenerateCached(p), "prog:" + sim.Fingerprint(p), nil
}

// stressProgramKeyed is stressProgram plus its parameter fingerprint.
func (c Config) stressProgramKeyed() (isa.Program, string) {
	p := workload.StressmarkParams{Iterations: c.StressIter}
	return workload.StressmarkCached(p), "stress:" + sim.Fingerprint(p)
}

// baseJob describes an uncontrolled run at the study's standard budget.
func (c Config) baseJob(prog isa.Program, progKey string, pct float64) runJob {
	return runJob{prog: prog, progKey: progKey, opts: c.baseOptions(pct)}
}

// uncontrolledFullJob mirrors uncontrolledFull as a job description.
func (c Config) uncontrolledFullJob(prog isa.Program, progKey string, pct float64) runJob {
	j := c.baseJob(prog, progKey, pct)
	j.opts.Spec.Budget.MaxCycles = c.Cycles * 4
	return j
}

// controlledJob mirrors controlled as a job description.
func (c Config) controlledJob(prog isa.Program, progKey string, pct float64, mech actuator.Mechanism, delay int, noiseMV float64) runJob {
	j := c.uncontrolledFullJob(prog, progKey, pct)
	j.opts.Spec.Control.Enabled = true
	j.opts.Spec.Actuator.Mechanism = mech.Name
	j.opts.Spec.Sensor.DelayCycles = delay
	j.opts.Spec.Sensor.NoiseMV = noiseMV
	return j
}

// cacheableRun reports whether a job's complete Result is safe to memoize:
// it needs a program identity, must not carry a code-attached responder
// (not fingerprintable), must not want private trace buffers, and must not
// stream telemetry (an enabled tracer observes every cycle; serving such a
// run from cache would silently drop its stream).
func cacheableRun(progKey string, opts core.Options) bool {
	return progKey != "" && opts.Responder == nil && !opts.RecordTraces &&
		!opts.Telemetry.Enabled()
}

// canonicalRunSpec maps a spec to a representative of its behavioral
// equivalence class, so spec spellings that cannot produce different
// Results share one cache entry:
//   - with the controller (and ramp baseline) off, the actuator, sensor
//     and seed are dead configuration — gating never engages and the
//     sensor RNG is never drawn;
//   - with control on, the mechanism reduces to its gating booleans
//     ("ideal" and "fu+dl1+il1" are the same actuator), and the seed is
//     dead while NoiseMV is zero because the sensor only draws noise when
//     the amplitude is positive.
func canonicalRunSpec(s spec.RunSpec) spec.RunSpec {
	r := s.WithDefaults()
	if !r.Control.Enabled && r.Control.PessimisticRamp == 0 {
		r.Actuator = spec.ActuatorSpec{}
		r.Sensor = spec.SensorSpec{}
		r.Seed = spec.Seed{}
		return r
	}
	if r.Control.Enabled {
		if m, err := r.Mechanism(); err == nil {
			r.Actuator.Mechanism = fmt.Sprintf("gate:%t,%t,%t", m.FUs, m.DL1, m.IL1)
		}
		if r.Sensor.NoiseMV == 0 {
			r.Seed = spec.Seed{}
		}
	}
	return r
}

// runKey is a job's full behavioral identity.
func runKey(progKey string, opts core.Options) string {
	return progKey + "|" + sim.Fingerprint(canonicalRunSpec(opts.Spec))
}

// runKeyed executes one job through the run cache (when cacheable),
// threading the program identity so the machine-trace cache applies
// either way.
func (c Config) runKeyed(j runJob) (*core.Result, error) {
	opts := j.opts
	opts.ProgKey = j.progKey
	if !cacheableRun(j.progKey, opts) {
		return run(j.prog, opts)
	}
	return runCache.Get(runKey(j.progKey, opts), func() (*core.Result, error) {
		return run(j.prog, opts)
	})
}

// batchable reports whether a job runs on the streaming (closed-loop)
// path, where lockstep batching pays. Open-loop jobs go solo: they take
// the block-convolution fast path inside core, which is already far
// cheaper than any batched streaming run.
func batchable(opts core.Options) bool {
	s := opts.Spec.WithDefaults()
	if opts.Responder != nil {
		// Responders are study-specific code; keep them on the exact solo
		// path rather than reasoning about their reentrancy in a batch.
		return false
	}
	if s.PDN.MultiRail() {
		// A multi-rail system carries its own rail graph; the shared
		// single-kernel lockstep convolver does not apply (RunBatch would
		// fall back to sequential Runs anyway).
		return false
	}
	return s.Control.Enabled || s.Control.PessimisticRamp != 0 ||
		opts.Telemetry.Enabled()
}

// batchGroupKey fingerprints the machine-and-network half of a job's spec
// — everything that must agree for systems to share one batched PDN
// convolver. Controller, actuator, sensor, seed and workload stay
// per-lane.
func batchGroupKey(opts core.Options) string {
	s := opts.Spec
	s.Control = spec.ControlSpec{}
	s.Actuator = spec.ActuatorSpec{}
	s.Sensor = spec.SensorSpec{}
	s.Workload = spec.WorkloadSpec{}
	s.Seed = spec.Seed{}
	return sim.Fingerprint(s)
}

// runJobs executes a job list and returns Results in input order, spending
// as little simulation as possible: cache hits are taken up front,
// duplicate keys within the list run once, and the remaining closed-loop
// jobs are packed into pdn.Lanes-wide lockstep batches per machine/PDN
// group (leftovers and open-loop jobs run solo). Every job's Result is
// bit-identical to a plain run() of the same options.
func (c Config) runJobs(jobs []runJob) ([]*core.Result, error) {
	results := make([]*core.Result, len(jobs))
	keys := make([]string, len(jobs))
	follower := map[int]int{} // duplicate job -> its leader
	leaderOf := map[string]int{}
	var pending []int
	for i, j := range jobs {
		if !cacheableRun(j.progKey, j.opts) {
			pending = append(pending, i)
			continue
		}
		keys[i] = runKey(j.progKey, j.opts)
		if r, ok := runCache.Lookup(keys[i]); ok {
			results[i] = r
			continue
		}
		if l, ok := leaderOf[keys[i]]; ok {
			follower[i] = l
			continue
		}
		leaderOf[keys[i]] = i
		pending = append(pending, i)
	}

	chunks := chunkJobs(jobs, pending)
	chunkRes, err := sweep(c, chunks, func(idxs []int) ([]*core.Result, error) {
		return runChunk(jobs, idxs)
	})
	if err != nil {
		return nil, err
	}
	for ci, idxs := range chunks {
		for k, idx := range idxs {
			r := chunkRes[ci][k]
			if keys[idx] != "" {
				runCache.Put(keys[idx], r)
			}
			results[idx] = r
		}
	}
	for i, l := range follower {
		results[i] = results[l]
	}
	return results, nil
}

// chunkJobs partitions the pending job indices into execution chunks:
// full pdn.Lanes-wide batches within each machine/PDN group, then one
// chunk for whatever remains of the group (width 4 hits the solver-width
// kernel specialization; other sub-Lanes widths use the generic lane loop,
// which still amortizes the tap walk, and RunBatch migrates the last
// survivors of a draining batch to the per-run path). Only a remainder of
// one runs solo.
func chunkJobs(jobs []runJob, pending []int) [][]int {
	var chunks [][]int
	groups := map[string][]int{}
	var order []string
	for _, i := range pending {
		if !batchable(jobs[i].opts) {
			chunks = append(chunks, []int{i})
			continue
		}
		g := batchGroupKey(jobs[i].opts)
		if _, ok := groups[g]; !ok {
			order = append(order, g)
		}
		groups[g] = append(groups[g], i)
	}
	for _, g := range order {
		idxs := groups[g]
		for len(idxs) >= pdn.Lanes {
			chunks = append(chunks, idxs[:pdn.Lanes:pdn.Lanes])
			idxs = idxs[pdn.Lanes:]
		}
		if len(idxs) > 0 {
			chunks = append(chunks, idxs)
		}
	}
	return chunks
}

// runChunk executes one chunk: a lone job through run(), a full batch
// through core.RunBatch.
func runChunk(jobs []runJob, idxs []int) ([]*core.Result, error) {
	if len(idxs) == 1 {
		j := jobs[idxs[0]]
		opts := j.opts
		opts.ProgKey = j.progKey
		r, err := run(j.prog, opts)
		if err != nil {
			return nil, err
		}
		return []*core.Result{r}, nil
	}
	systems := make([]*core.System, len(idxs))
	defer func() {
		for _, s := range systems {
			if s != nil {
				s.Close()
			}
		}
	}()
	for k, idx := range idxs {
		j := jobs[idx]
		opts := j.opts
		opts.ProgKey = j.progKey
		sys, err := core.NewSystem(j.prog, opts)
		if err != nil {
			return nil, err
		}
		systems[k] = sys
	}
	return core.RunBatch(systems)
}
