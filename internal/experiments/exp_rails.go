package experiments

import (
	"fmt"
	"io"
	"math"

	"didt/internal/actuator"
	"didt/internal/core"
	"didt/internal/pdn"
	"didt/internal/report"
	"didt/internal/spec"
	"didt/internal/trace"
)

// The multi-rail experiment family exercises the rail-graph PDN of
// internal/pdn and the per-domain machinery layered through spec, power and
// core: per-rail emergency characterization across the workload suite, the
// domain-crossing resonance transfer sweep, the per-rail threshold solve
// against each mechanism's scoped authority, and the DVS+gating
// composability study. The family registers exactly like the paper figures,
// so cmd/experiments, the memo caches, didtd's /v1/sweep and the result
// store serve it with no server changes.

// railsSpec is the family's reference three-domain topology: the core rail
// feeds the functional units and uncore, the memory rail the DL1, the
// fetch rail the IL1, with symmetric core<->mem coupling and a weaker
// core<->fetch link.
func railsSpec(s *spec.RunSpec) {
	s.PDN.Rails = []spec.RailSpec{
		{Name: "core", Scopes: []string{"fu", "uncore"}},
		{Name: "mem", Scopes: []string{"dl1"}},
		{Name: "fetch", Scopes: []string{"il1"}},
	}
	s.PDN.Coupling = []spec.CouplingSpec{
		{From: "core", To: "mem", K: 0.2},
		{From: "mem", To: "core", K: 0.2},
		{From: "core", To: "fetch", K: 0.1},
		{From: "fetch", To: "core", K: 0.1},
	}
}

// railNames matches railsSpec's rail order.
var railNames = []string{"core", "mem", "fetch"}

// ---------------------------------------------------- rails-emergencies

// RailsEmergenciesRow is one workload's per-rail emergency profile.
type RailsEmergenciesRow struct {
	Name      string
	Aggregate float64   // any-rail emergency frequency
	PerRail   []float64 // frequency per rail, railNames order
}

// RailsEmergenciesResult characterizes which delivery domain breaks first
// across the suite.
type RailsEmergenciesResult struct {
	Pct   float64 // impedance scale
	Rails []string
	Rows  []RailsEmergenciesRow
}

// RailsEmergencies runs every configured benchmark (plus the stressmark)
// open-loop on the three-domain PDN at 300% impedance and tabulates
// per-rail emergency frequencies.
func RailsEmergencies(cfg Config) (*RailsEmergenciesResult, error) {
	cfg = cfg.withDefaults()
	return memoized("rails-emergencies", cfg, func() (*RailsEmergenciesResult, error) {
		const pct = 3
		names := cfg.benchmarks()
		jobs := make([]runJob, 0, len(names)+1)
		for _, name := range names {
			prog, key, err := cfg.benchProgramKeyed(name)
			if err != nil {
				return nil, err
			}
			j := cfg.baseJob(prog, key, pct)
			railsSpec(&j.opts.Spec)
			jobs = append(jobs, j)
		}
		prog, key := cfg.stressProgramKeyed()
		j := cfg.baseJob(prog, key, pct)
		railsSpec(&j.opts.Spec)
		jobs = append(jobs, j)

		results, err := cfg.runJobs(jobs)
		if err != nil {
			return nil, err
		}
		r := &RailsEmergenciesResult{Pct: pct, Rails: railNames}
		for k, res := range results {
			name := "stressmark"
			if k < len(names) {
				name = names[k]
			}
			row := RailsEmergenciesRow{Name: name, Aggregate: res.EmergencyFreq}
			for _, rr := range res.Rails {
				row.PerRail = append(row.PerRail, rr.EmergencyFreq)
			}
			r.Rows = append(r.Rows, row)
		}
		return r, nil
	})
}

// Render prints the per-rail table.
func (r *RailsEmergenciesResult) Render(w io.Writer) {
	t := &report.Table{
		Title:   fmt.Sprintf("Multi-rail emergencies: per-domain frequency at %.0f%% impedance", r.Pct*100),
		Headers: append(append([]string{"benchmark"}, r.Rails...), "any rail"),
	}
	worst := make([]int, len(r.Rails))
	for _, row := range r.Rows {
		cells := []interface{}{row.Name}
		best, bestF := -1, 0.0
		for i, f := range row.PerRail {
			cells = append(cells, fmtFreq(f))
			if f > bestF {
				best, bestF = i, f
			}
		}
		cells = append(cells, fmtFreq(row.Aggregate))
		t.AddRowf(cells...)
		if best >= 0 {
			worst[best]++
		}
	}
	for i, n := range worst {
		if n > 0 {
			t.Notes = append(t.Notes,
				fmt.Sprintf("%q is the worst rail on %d workload(s)", r.Rails[i], n))
		}
	}
	t.Notes = append(t.Notes,
		"per-rail counts use each rail's own +-5% band; \"any rail\" counts cycles where at least one rail is out")
	t.Render(w)
}

func renderRailsEmergencies(cfg Config, w io.Writer) error {
	r, err := RailsEmergencies(cfg)
	if err != nil {
		return err
	}
	r.Render(w)
	return nil
}

// ------------------------------------------------------ rails-resonance

// RailsResonanceResult is the domain-crossing transfer sweep: an aggressor
// rail driven by a resonant pulse train, a quiescent victim rail, droop on
// the victim as a function of coupling strength and stimulus frequency.
type RailsResonanceResult struct {
	Ks      []float64 // coupling coefficients swept
	Scales  []float64 // pulse period as fraction of the resonant period
	DroopMV [][]float64
	VBandMV float64 // victim band half-width, for reference
}

// RailsResonance computes the sweep on a two-rail graph, pure PDN math —
// no machine in the loop, so the study is exact and fast.
func RailsResonance(cfg Config) (*RailsResonanceResult, error) {
	cfg = cfg.withDefaults()
	return memoized("rails-resonance", cfg, func() (*RailsResonanceResult, error) {
		const (
			aLow, aHigh = 10.0, 50.0
			vLow, vHigh = 5.0, 25.0
		)
		aggressor, err := pdn.Calibrate(pdn.Params{IFloor: (aLow + aHigh) / 2}, aLow, aHigh, 2)
		if err != nil {
			return nil, err
		}
		r := &RailsResonanceResult{
			Ks:     []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5},
			Scales: []float64{0.5, 0.75, 1.0, 1.25, 1.5},
		}
		for _, k := range r.Ks {
			victim, err := pdn.Calibrate(pdn.Params{IFloor: (vLow + vHigh) / 2}, vLow, vHigh, 2)
			if err != nil {
				return nil, err
			}
			if r.VBandMV == 0 {
				r.VBandMV = (victim.Params().VNominal - victim.VMin()) * 1e3
			}
			graph, err := pdn.NewGraph(
				[]pdn.Rail{{Name: "aggressor", Net: aggressor}, {Name: "victim", Net: victim}},
				[][]float64{{0, 0}, {k, 0}}, // victim <- k * aggressor
			)
			if err != nil {
				return nil, err
			}
			period := victim.ResonantPeriodCycles()
			row := make([]float64, len(r.Scales))
			for si, scale := range r.Scales {
				p := int(math.Round(float64(period) * scale))
				if p < 2 {
					p = 2
				}
				n := victim.KernelLen() + 12*period
				cur := [][]float64{make(trace.Trace, n), make(trace.Trace, n)}
				for i := 0; i < n; i++ {
					cur[0][i] = aLow
					if i%p < p/2 {
						cur[0][i] = aHigh
					}
					cur[1][i] = victim.Params().IFloor // quiescent victim
				}
				volts := [][]float64{make([]float64, n), make([]float64, n)}
				graph.ConvolveVoltages(volts, cur)
				droop := 0.0
				vn := victim.Params().VNominal
				for _, v := range volts[1] {
					droop = math.Max(droop, vn-v)
				}
				row[si] = droop * 1e3
			}
			r.DroopMV = append(r.DroopMV, row)
		}
		return r, nil
	})
}

// Render prints the K x frequency transfer table.
func (r *RailsResonanceResult) Render(w io.Writer) {
	headers := []string{"coupling K"}
	for _, s := range r.Scales {
		headers = append(headers, fmt.Sprintf("%.2fx T_res", s))
	}
	t := &report.Table{
		Title:   "Domain-crossing resonance: victim-rail droop (mV) vs coupling and aggressor pulse period",
		Headers: headers,
	}
	for ki, k := range r.Ks {
		cells := []interface{}{fmt.Sprintf("%.1f", k)}
		for _, d := range r.DroopMV[ki] {
			cells = append(cells, fmt.Sprintf("%.2f", d))
		}
		t.AddRowf(cells...)
	}
	t.Notes = append(t.Notes,
		"the victim draws constant floor current: every millivolt of droop crosses the domain boundary",
		fmt.Sprintf("victim emergency band half-width: %.1f mV", r.VBandMV),
		"droop scales linearly with K and peaks at the resonant period (1.00x column)")
	t.Render(w)
	var series []report.Series
	for ki, k := range r.Ks {
		if ki%2 == 0 { // plot alternate Ks to keep the chart readable
			series = append(series, report.Series{Name: fmt.Sprintf("K=%.1f", k), Data: r.DroopMV[ki]})
		}
	}
	(&report.LinePlot{
		Title:  "Victim droop vs stimulus period (columns: 0.50x..1.50x resonant)",
		YLabel: "mV",
		Series: series,
		Height: 10,
	}).Render(w)
}

func renderRailsResonance(cfg Config, w io.Writer) error {
	r, err := RailsResonance(cfg)
	if err != nil {
		return err
	}
	r.Render(w)
	return nil
}

// ----------------------------------------------------- rails-thresholds

// RailsThresholdRow is one (mechanism, rail) solve.
type RailsThresholdRow struct {
	Mechanism  string
	Rail       string
	IMin, IMax float64
	Low, High  float64
	WindowMV   float64
	Stable     bool
}

// RailsThresholdsResult tabulates the per-rail threshold solves across
// actuation granularities.
type RailsThresholdsResult struct {
	Delay int
	Rows  []RailsThresholdRow
}

// RailsThresholds solves per-rail operating thresholds for each actuation
// mechanism on the three-domain topology: each rail's solve sees only the
// authority the mechanism has over that rail's scopes, so rails the
// mechanism cannot reach fall back to conservative trip points.
func RailsThresholds(cfg Config) (*RailsThresholdsResult, error) {
	cfg = cfg.withDefaults()
	return memoized("rails-thresholds", cfg, func() (*RailsThresholdsResult, error) {
		const delay = 4
		r := &RailsThresholdsResult{Delay: delay}
		prog := cfg.stressProgram()
		for _, mech := range []actuator.Mechanism{actuator.FU, actuator.FUDL1, actuator.FUDL1IL1} {
			opts := cfg.baseOptions(2)
			railsSpec(&opts.Spec)
			opts.Spec.Control.Enabled = true
			opts.Spec.Actuator.Mechanism = mech.Name
			opts.Spec.Sensor.DelayCycles = delay
			sys, err := core.NewSystem(prog, opts)
			if err != nil {
				return nil, err
			}
			for _, info := range sys.Rails() {
				r.Rows = append(r.Rows, RailsThresholdRow{
					Mechanism: mech.Name,
					Rail:      info.Name,
					IMin:      info.IMin,
					IMax:      info.IMax,
					Low:       info.Thresholds.Low,
					High:      info.Thresholds.High,
					WindowMV:  (info.Thresholds.High - info.Thresholds.Low) * 1e3,
					Stable:    info.Thresholds.Stable,
				})
			}
			sys.Close()
		}
		return r, nil
	})
}

// Render prints the mechanism x rail threshold table.
func (r *RailsThresholdsResult) Render(w io.Writer) {
	t := &report.Table{
		Title:   fmt.Sprintf("Per-rail threshold solve (delay %d cycles, 200%% impedance)", r.Delay),
		Headers: []string{"mechanism", "rail", "iMin (A)", "iMax (A)", "Vlow", "Vhigh", "window (mV)", "guaranteed"},
	}
	for _, row := range r.Rows {
		stable := "yes"
		if !row.Stable {
			stable = "no (conservative)"
		}
		t.AddRowf(row.Mechanism, row.Rail,
			fmt.Sprintf("%.1f", row.IMin), fmt.Sprintf("%.1f", row.IMax),
			fmt.Sprintf("%.4f", row.Low), fmt.Sprintf("%.4f", row.High),
			fmt.Sprintf("%.1f", row.WindowMV), stable)
	}
	t.Notes = append(t.Notes,
		"each rail's solve uses the mechanism's authority over that rail's scopes only",
		"\"no\" rows run with conservative trip points: the mechanism cannot guarantee containment on that rail")
	t.Render(w)
}

func renderRailsThresholds(cfg Config, w io.Writer) error {
	r, err := RailsThresholds(cfg)
	if err != nil {
		return err
	}
	r.Render(w)
	return nil
}

// ------------------------------------------------------------ rails-dvs

// RailsDVSResult compares gate-only control against gate+DVS on the
// multi-rail stressmark: the composability proof for the two responders in
// one spec.
type RailsDVSResult struct {
	GateOnly *core.Result
	GateDVS  *core.Result
	Rails    []string
}

// RailsDVS runs the stressmark closed-loop on the three-domain PDN at 300%
// impedance, with the FU gate alone and with a DVS schedule layered over
// it (bound to the core rail).
func RailsDVS(cfg Config) (*RailsDVSResult, error) {
	cfg = cfg.withDefaults()
	return memoized("rails-dvs", cfg, func() (*RailsDVSResult, error) {
		prog, key := cfg.stressProgramKeyed()
		mkJob := func(withDVS bool) runJob {
			j := cfg.controlledJob(prog, key, 3, actuator.FU, 4, 0)
			railsSpec(&j.opts.Spec)
			if withDVS {
				j.opts.Spec.Actuator.DVS = &spec.DVSSpec{
					Steps:            []float64{1, 0.95, 0.9},
					TransitionCycles: 10,
					HoldCycles:       120,
					Rail:             "core",
				}
			}
			return j
		}
		results, err := cfg.runJobs([]runJob{mkJob(false), mkJob(true)})
		if err != nil {
			return nil, err
		}
		return &RailsDVSResult{GateOnly: results[0], GateDVS: results[1], Rails: railNames}, nil
	})
}

// Render prints the side-by-side comparison.
func (r *RailsDVSResult) Render(w io.Writer) {
	t := &report.Table{
		Title:   "DVS + gating composability: stressmark on the three-domain PDN (300% impedance, FU gate, delay 4)",
		Headers: []string{"metric", "gate only", "gate + DVS"},
	}
	t.AddRowf("emergency freq (any rail)", fmtFreq(r.GateOnly.EmergencyFreq), fmtFreq(r.GateDVS.EmergencyFreq))
	for i, name := range r.Rails {
		var a, b float64
		if i < len(r.GateOnly.Rails) {
			a = r.GateOnly.Rails[i].EmergencyFreq
		}
		if i < len(r.GateDVS.Rails) {
			b = r.GateDVS.Rails[i].EmergencyFreq
		}
		t.AddRowf("  rail "+name, fmtFreq(a), fmtFreq(b))
	}
	t.AddRowf("IPC", fmt.Sprintf("%.3f", r.GateOnly.IPC()), fmt.Sprintf("%.3f", r.GateDVS.IPC()))
	t.AddRowf("gating episodes", fmt.Sprintf("%d", r.GateOnly.LowEvents), fmt.Sprintf("%d", r.GateDVS.LowEvents))
	t.AddRowf("DVS step downs", "-", fmt.Sprintf("%d", r.GateDVS.DVSStepDowns))
	t.AddRowf("DVS step ups", "-", fmt.Sprintf("%d", r.GateDVS.DVSStepUps))
	t.Notes = append(t.Notes,
		"both runs use one spec each: the DVS section composes with the gate mechanism through the same Responder interface",
		"DVS trades sustained throughput (lower operating point) for smaller transients on top of cycle-scale gating")
	t.Render(w)
}

func renderRailsDVS(cfg Config, w io.Writer) error {
	r, err := RailsDVS(cfg)
	if err != nil {
		return err
	}
	r.Render(w)
	return nil
}
