package experiments

import (
	"fmt"
	"io"

	"didt/internal/actuator"
	"didt/internal/report"
)

// RecoveryPoint compares one recovery style.
type RecoveryPoint struct {
	Style       string
	Cycles      uint64
	PerfLossPct float64
	EnergyPct   float64
	Emergencies uint64
}

// recoveryStudy measures the Section 6 recovery alternatives: the paper
// assumed the control logic protects state and resumes mid-stream, and
// reported that initial experiments with replay/flush recovery showed
// similar results — this study reproduces that comparison.
func recoveryStudy(cfg Config) ([]RecoveryPoint, error) {
	cfg = cfg.withDefaults()
	return memoized("recovery-policy", cfg, func() ([]RecoveryPoint, error) {
		prog := cfg.stressProgram()
		base, err := cfg.uncontrolledFull(prog, 2)
		if err != nil {
			return nil, err
		}
		var out []RecoveryPoint
		for _, flush := range []bool{false, true} {
			opts := cfg.baseOptions(2)
			opts.Spec.Control.Enabled = true
			opts.Spec.Actuator.Mechanism = actuator.FUDL1.Name
			opts.Spec.Sensor.DelayCycles = 2
			opts.Spec.Control.FlushRecovery = flush
			opts.Spec.Budget.MaxCycles = cfg.Cycles * 4
			res, err := run(prog, opts)
			if err != nil {
				return nil, err
			}
			style := "protect and resume (paper's assumption)"
			if flush {
				style = "flush front end on each gating episode"
			}
			out = append(out, RecoveryPoint{
				Style:       style,
				Cycles:      res.Cycles,
				PerfLossPct: 100 * (float64(res.Cycles)/float64(base.Cycles) - 1),
				EnergyPct:   100 * (res.Energy/base.Energy - 1),
				Emergencies: res.Emergencies,
			})
		}
		return out, nil
	})
}

func renderRecovery(cfg Config, w io.Writer) error {
	pts, err := recoveryStudy(cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Section 6 extension: actuation recovery styles (stressmark, FU/DL1, delay 2, 200% impedance)",
		Headers: []string{"recovery style", "cycles", "perf loss (%)", "energy increase (%)", "emergencies"},
	}
	for _, p := range pts {
		t.AddRow(p.Style, fmt.Sprintf("%d", p.Cycles), fmt.Sprintf("%.2f", p.PerfLossPct),
			fmt.Sprintf("%.2f", p.EnergyPct), fmt.Sprintf("%d", p.Emergencies))
	}
	t.Notes = append(t.Notes,
		`the paper: "we performed some initial experiments which show similar performance/energy results with these options" — reproduced: flush recovery protects equally at a modest extra refill cost`)
	t.Render(w)
	return nil
}
