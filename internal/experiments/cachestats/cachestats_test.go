// Package cachestats pins the repository's memoization behaviour. It lives
// in its own package directory so `go test` gives it a fresh process: the
// five process-global caches start empty, making absolute hit/miss counts
// meaningful.
package cachestats

import (
	"io"
	"testing"

	"didt/internal/core"
	"didt/internal/experiments"
	"didt/internal/pdn"
	"didt/internal/sim"
	"didt/internal/workload"
)

// TestQuickSweepCacheCounts runs a fixed slice of the quick experiment
// suite and asserts the exact hit/miss counts of every cache. The counts
// were captured before the run-spec refactor moved all memo identity onto
// spec fingerprints; they pin that the new keys draw exactly the same
// distinctions as the old struct keys — a key that became too coarse shows
// up as extra hits, one that became too fine as extra misses.
func TestQuickSweepCacheCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep is slow")
	}
	cfg := experiments.Quick()
	reg := experiments.Registry()
	for _, id := range []string{"fig14", "fig15", "table2", "ablation-window", "fig17", "fig18"} {
		if err := reg[id](cfg, io.Discard); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	check := func(name string, got sim.CacheStats, hits, misses uint64) {
		t.Helper()
		if got.Hits != hits || got.Misses != misses || got.Evictions != 0 {
			t.Errorf("%s cache: %+v, want Hits:%d Misses:%d Evictions:0", name, got, hits, misses)
		}
	}
	check("memo", experiments.MemoStats(), 2, 4)
	check("kernel", pdn.KernelCacheStats(), 102, 7)
	check("envelope", core.EnvelopeCacheStats(), 104, 5)
	check("program", workload.ProgramCacheStats(), 90, 3)
	check("stressmark", workload.StressmarkCacheStats(), 24, 1)
}
