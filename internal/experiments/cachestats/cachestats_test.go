// Package cachestats pins the repository's memoization behaviour. It lives
// in its own package directory so `go test` gives it a fresh process: the
// process-global caches start empty, making absolute hit/miss counts
// meaningful.
package cachestats

import (
	"io"
	"testing"

	"didt/internal/control"
	"didt/internal/core"
	"didt/internal/experiments"
	"didt/internal/pdn"
	"didt/internal/sim"
	"didt/internal/workload"
)

// TestQuickSweepCacheCounts runs a fixed slice of the quick experiment
// suite and asserts the exact hit/miss counts of every cache. The counts
// pin that each cache key draws exactly the intended distinctions — a key
// that became too coarse shows up as extra hits, one that became too fine
// as extra misses.
//
// The run/trace/solve counts additionally pin the batch scheduler's
// dedup: 87 distinct simulations serve the slice's 109 requested runs
// (the uncontrolled baselines are shared across studies, "ideal" and
// "fu+dl1+il1" are one behavioral mechanism, and ablation-window's
// RUU=256 point is table2's stressmark at 200%), 11 machine traces cover
// every open-loop run, and 19 threshold solves cover every controlled
// configuration (the solve key is workload- and mechanism-boolean-
// independent).
func TestQuickSweepCacheCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep is slow")
	}
	cfg := experiments.Quick()
	reg := experiments.Registry()
	for _, id := range []string{"fig14", "fig15", "table2", "ablation-window", "fig17", "fig18"} {
		if err := reg[id](cfg, io.Discard); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	check := func(name string, got sim.CacheStats, hits, misses uint64) {
		t.Helper()
		if got.Hits != hits || got.Misses != misses || got.Evictions != 0 {
			t.Errorf("%s cache: %+v, want Hits:%d Misses:%d Evictions:0", name, got, hits, misses)
		}
	}
	check("memo", experiments.MemoStats(), 2, 4)
	check("kernel", pdn.KernelCacheStats(), 80, 7)
	check("envelope", core.EnvelopeCacheStats(), 83, 4)
	check("program", workload.ProgramCacheStats(), 90, 3)
	check("stressmark", workload.StressmarkCacheStats(), 24, 1)
	check("run", experiments.RunCacheStats(), 22, 87)
	check("trace", core.TraceCacheStats(), 12, 11)
	check("solve", control.SolveCacheStats(), 45, 19)
}
