package experiments

import (
	"fmt"
	"io"
	"math"

	"didt/internal/core"
	"didt/internal/pdn"
	"didt/internal/report"
	"didt/internal/sensor"
	"didt/internal/stats"
	"didt/internal/trace"
)

// ---------------------------------------------------------------- Figure 9

// Fig9Result compares the theoretical worst-case waveform against the
// software stressmark.
type Fig9Result struct {
	WorstDeviation  float64 // volts, resonant square wave over the envelope
	StressDeviation float64 // volts, measured stressmark
	Fraction        float64 // stressmark / worst
	WorstTrace      trace.Trace
	StressTrace     trace.Trace // a warm window of the stressmark's voltage
	VMin, VMax      float64
}

// Fig9 runs the stressmark through the full coupled system at 200%
// impedance and compares it to the maximum-height resonant pulse train on
// the same network.
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	return memoized("fig9", cfg, func() (*Fig9Result, error) {
		opts := cfg.baseOptions(2)
		opts.RecordTraces = true
		prog, progKey := cfg.stressProgramKeyed()
		opts.ProgKey = progKey
		res, err := run(prog, opts)
		if err != nil {
			return nil, err
		}
		// The same network driven by the theoretical worst case.
		net, err := pdn.Calibrate(pdn.Params{IFloor: 0.5 * (res.IMin + res.IMax)}, res.IMin, res.IMax, 2)
		if err != nil {
			return nil, err
		}
		period := net.ResonantPeriodCycles()
		n := net.KernelLen() + 20*period
		cur := make(trace.Trace, n)
		for i := range cur {
			cur[i] = res.IMin
			if i%period < period/2 {
				cur[i] = res.IMax
			}
		}
		worstV := net.VoltageTrace(cur)
		worstDev := 0.0
		for _, v := range worstV {
			worstDev = math.Max(worstDev, math.Abs(v-res.VNominal))
		}
		stressDev := math.Max(res.VNominal-res.MinV, res.MaxV-res.VNominal)
		r := &Fig9Result{
			WorstDeviation:  worstDev,
			StressDeviation: stressDev,
			Fraction:        stressDev / worstDev,
			VMin:            net.VMin(),
			VMax:            net.VMax(),
		}
		r.WorstTrace = worstV[len(worstV)-4*period:]
		if len(res.VoltageTrace) > 4*period {
			r.StressTrace = res.VoltageTrace[len(res.VoltageTrace)-4*period:]
		} else {
			r.StressTrace = res.VoltageTrace
		}
		return r, nil
	})
}

// Render plots the two waveforms and the headline comparison.
func (r *Fig9Result) Render(w io.Writer) {
	(&report.LinePlot{
		Title:  "Figure 9: maximum-height pulse train at resonance vs dI/dt stressmark (4 periods, 200% impedance)",
		YLabel: "V",
		Series: []report.Series{
			{Name: "worst-case square", Data: r.WorstTrace},
			{Name: "stressmark", Data: r.StressTrace},
		},
		Notes: []string{
			fmt.Sprintf("worst-case deviation %.1f mV; stressmark %.1f mV (%.0f%% of worst case)",
				r.WorstDeviation*1e3, r.StressDeviation*1e3, r.Fraction*100),
			fmt.Sprintf("emergency band [%.3f, %.3f] V: the stressmark is less extreme than the true worst case but severe enough to stress the controller", r.VMin, r.VMax),
		},
	}).Render(w)
}

func renderFig9(cfg Config, w io.Writer) error {
	r, err := Fig9(cfg)
	if err != nil {
		return err
	}
	r.Render(w)
	return nil
}

// ----------------------------------------------------------------- Table 2

// Table2Row is one benchmark's emergency profile across impedances.
type Table2Row struct {
	Name string
	Freq map[int]float64 // impedance pct -> emergency frequency
}

// Table2Result reproduces "Voltage Emergencies on SPEC2000 Benchmarks".
type Table2Result struct {
	Pcts       []int
	Rows       []Table2Row
	Stressmark Table2Row
}

// Table2 sweeps every benchmark across 100-400% of target impedance. The
// (workload, impedance) grid is embarrassingly parallel — every point is
// an independent closed-loop run — so it fans out on the sweep engine.
func Table2(cfg Config) (*Table2Result, error) {
	cfg = cfg.withDefaults()
	return memoized("table2", cfg, func() (*Table2Result, error) {
		r := &Table2Result{Pcts: []int{100, 200, 300, 400}}
		type job struct {
			bench string // "" = stressmark
			pct   int
		}
		var jobs []job
		names := cfg.benchmarks()
		for _, name := range names {
			for _, pct := range r.Pcts {
				jobs = append(jobs, job{bench: name, pct: pct})
			}
		}
		for _, pct := range r.Pcts {
			jobs = append(jobs, job{pct: pct})
		}
		rjobs := make([]runJob, len(jobs))
		for k, j := range jobs {
			prog, key := cfg.stressProgramKeyed()
			if j.bench != "" {
				var err error
				if prog, key, err = cfg.benchProgramKeyed(j.bench); err != nil {
					return nil, err
				}
			}
			rjobs[k] = cfg.baseJob(prog, key, float64(j.pct)/100)
		}
		results, err := cfg.runJobs(rjobs)
		if err != nil {
			return nil, err
		}
		freqs := make([]float64, len(results))
		for k, res := range results {
			freqs[k] = res.EmergencyFreq
		}
		for i, name := range names {
			row := Table2Row{Name: name, Freq: map[int]float64{}}
			for k, pct := range r.Pcts {
				row.Freq[pct] = freqs[i*len(r.Pcts)+k]
			}
			r.Rows = append(r.Rows, row)
		}
		r.Stressmark = Table2Row{Name: "stressmark", Freq: map[int]float64{}}
		for k, pct := range r.Pcts {
			r.Stressmark.Freq[pct] = freqs[len(names)*len(r.Pcts)+k]
		}
		return r, nil
	})
}

// Summary aggregates the table the way the paper prints it.
func (r *Table2Result) Summary(pct int) (withEmergencies int, avg, max float64) {
	for _, row := range r.Rows {
		f := row.Freq[pct]
		if f > 0 {
			withEmergencies++
		}
		avg += f
		if f > max {
			max = f
		}
	}
	if len(r.Rows) > 0 {
		avg /= float64(len(r.Rows))
	}
	return withEmergencies, avg, max
}

// Render prints the aggregate table plus the per-benchmark detail.
func (r *Table2Result) Render(w io.Writer) {
	t := &report.Table{
		Title:   "Table 2: Voltage emergencies on the synthetic SPEC2000 suite",
		Headers: []string{"", "100%", "200%", "300%", "400%"},
	}
	var nRow, avgRow, maxRow []string
	nRow = append(nRow, "benchmarks w/ emergencies")
	avgRow = append(avgRow, "emergency freq (average)")
	maxRow = append(maxRow, "emergency freq (maximum)")
	for _, pct := range r.Pcts {
		n, avg, max := r.Summary(pct)
		nRow = append(nRow, fmt.Sprintf("%d", n))
		avgRow = append(avgRow, fmtFreq(avg))
		maxRow = append(maxRow, fmtFreq(max))
	}
	t.Rows = append(t.Rows, nRow, avgRow, maxRow)
	stress := []string{"stressmark freq"}
	for _, pct := range r.Pcts {
		stress = append(stress, fmtFreq(r.Stressmark.Freq[pct]))
	}
	t.Rows = append(t.Rows, stress)
	t.Notes = append(t.Notes,
		"emergencies are impossible at 100% by the target-impedance definition",
		"the stressmark breaks through at 200% while the suite stays clean — the paper's design point")
	t.Render(w)

	d := &report.Table{
		Title:   "Table 2 detail: per-benchmark emergency frequency",
		Headers: []string{"benchmark", "100%", "200%", "300%", "400%"},
	}
	for _, row := range r.Rows {
		cells := []string{row.Name}
		for _, pct := range r.Pcts {
			cells = append(cells, fmtFreq(row.Freq[pct]))
		}
		d.AddRow(cells...)
	}
	d.Render(w)
}

func fmtFreq(f float64) string {
	if f == 0 {
		return "0"
	}
	return fmt.Sprintf("%.2g%%", f*100)
}

func renderTable2(cfg Config, w io.Writer) error {
	r, err := Table2(cfg)
	if err != nil {
		return err
	}
	r.Render(w)
	return nil
}

// ---------------------------------------------------------------- Figure 10

// Fig10Row summarizes one benchmark's voltage distribution at 100%
// impedance.
type Fig10Row struct {
	Name   string
	Hist   *stats.Histogram
	MinV   float64
	MaxV   float64
	Spread float64
}

// Fig10Result is the suite's voltage-distribution characterization.
type Fig10Result struct {
	Rows       []Fig10Row
	Stressmark Fig10Row
}

// Fig10 measures voltage distributions for every benchmark at 100%, one
// independent run per workload, fanned out on the sweep engine.
func Fig10(cfg Config) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	return memoized("fig10", cfg, func() (*Fig10Result, error) {
		names := append(append([]string{}, cfg.benchmarks()...), "stressmark")
		jobs := make([]runJob, len(names))
		for i, name := range names {
			prog, key := cfg.stressProgramKeyed()
			if name != "stressmark" {
				var err error
				if prog, key, err = cfg.benchProgramKeyed(name); err != nil {
					return nil, err
				}
			}
			jobs[i] = cfg.baseJob(prog, key, 1)
		}
		results, err := cfg.runJobs(jobs)
		if err != nil {
			return nil, err
		}
		rows := make([]Fig10Row, len(names))
		for i, res := range results {
			rows[i] = Fig10Row{
				Name: names[i], Hist: res.Hist,
				MinV: res.MinV, MaxV: res.MaxV,
				Spread: res.Hist.Spread(),
			}
		}
		return &Fig10Result{
			Rows:       rows[:len(rows)-1],
			Stressmark: rows[len(rows)-1],
		}, nil
	})
}

// Render prints the distribution summary and a spread chart.
func (r *Fig10Result) Render(w io.Writer) {
	t := &report.Table{
		Title:   "Figure 10: voltage distributions at 100% target impedance",
		Headers: []string{"benchmark", "minV", "mode", "maxV", "spread (mV)"},
	}
	var labels []string
	var spreads []float64
	for _, row := range append(r.Rows, r.Stressmark) {
		t.AddRow(row.Name,
			fmt.Sprintf("%.4f", row.MinV),
			fmt.Sprintf("%.4f", row.Hist.Mode()),
			fmt.Sprintf("%.4f", row.MaxV),
			fmt.Sprintf("%.1f", row.Spread*1e3))
		labels = append(labels, row.Name)
		spreads = append(spreads, row.Spread*1e3)
	}
	t.Notes = append(t.Notes,
		"stable benchmarks (e.g. mcf, ammp-like) cluster tightly; variable ones (galgel, swim) span a wide range",
		"nothing leaves the +-5% band at 100% impedance")
	t.Render(w)
	(&report.BarChart{
		Title:  "Figure 10 summary: voltage spread per benchmark (mV)",
		Unit:   "mV",
		Labels: labels,
		Values: spreads,
	}).Render(w)
}

func renderFig10(cfg Config, w io.Writer) error {
	r, err := Fig10(cfg)
	if err != nil {
		return err
	}
	r.Render(w)
	return nil
}

// ---------------------------------------------------------------- Figure 11

// Fig11Result is a controller-in-action trace segment.
type Fig11Result struct {
	Voltage  trace.Trace
	Gated    []bool
	Low      float64
	High     float64
	VMin     float64
	VMax     float64
	Triggers int
}

// Fig11 captures a window of the stressmark under threshold control.
func Fig11(cfg Config) (*Fig11Result, error) {
	cfg = cfg.withDefaults()
	opts := cfg.baseOptions(2)
	opts.Spec.Control.Enabled = true
	opts.Spec.Sensor.DelayCycles = 2
	opts.TelemetryName = "fig11 stressmark controller"
	sys, err := core.NewSystem(cfg.stressProgram(), opts)
	if err != nil {
		return nil, err
	}
	th := sys.Thresholds()
	r := &Fig11Result{Low: th.Low, High: th.High, VMin: sys.Net.VMin(), VMax: sys.Net.VMax()}
	// Run past warmup, then record a window around controller activity.
	var window []core.CycleState
	for i := uint64(0); i < opts.Spec.Budget.MaxCycles; i++ {
		st := sys.StepCycle()
		if st.Done {
			break
		}
		if i < cfg.Warmup {
			continue
		}
		window = append(window, st)
		if len(window) > 360 {
			window = window[1:]
		}
		if st.Level == sensor.Low && len(window) > 250 {
			// Collect a short tail after the trigger and stop.
			for j := 0; j < 90; j++ {
				st = sys.StepCycle()
				window = append(window, st)
				if st.Done {
					break
				}
			}
			break
		}
	}
	for _, st := range window {
		r.Voltage = append(r.Voltage, st.Voltage)
		r.Gated = append(r.Gated, st.Gating.FUs || st.Gating.DL1 || st.Gating.IL1)
		if st.Level == sensor.Low {
			r.Triggers++
		}
	}
	return r, nil
}

// Render plots the trace and the gating activity.
func (r *Fig11Result) Render(w io.Writer) {
	gate := make([]float64, len(r.Gated))
	base := r.VMin
	for i, g := range r.Gated {
		if g {
			gate[i] = base + 0.002
		} else {
			gate[i] = base
		}
	}
	(&report.LinePlot{
		Title:  "Figure 11: threshold controller in action (stressmark at 200% impedance, delay 2)",
		YLabel: "V",
		Series: []report.Series{
			{Name: "supply voltage", Data: r.Voltage},
			{Name: "gating (raised = active)", Data: gate},
		},
		Notes: []string{
			fmt.Sprintf("thresholds: low %.4f V / high %.4f V; band [%.3f, %.3f] V", r.Low, r.High, r.VMin, r.VMax),
			fmt.Sprintf("%d low-voltage sensor events in the window; gating halts the droop and the network recovers", r.Triggers),
		},
	}).Render(w)
}

func renderFig11(cfg Config, w io.Writer) error {
	r, err := Fig11(cfg)
	if err != nil {
		return err
	}
	r.Render(w)
	return nil
}
