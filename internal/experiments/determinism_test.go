package experiments

import (
	"bytes"
	"context"
	"testing"

	"didt/internal/core"
	"didt/internal/pdn"
	"didt/internal/telemetry"
	"didt/internal/workload"
)

// tinyConfig keeps the determinism comparison fast enough to run under
// -race on a single core while still exercising multi-item sweeps.
func tinyConfig() Config {
	return Config{
		Cycles:     30_000,
		Warmup:     10_000,
		Iterations: 300,
		StressIter: 250,
		Benchmarks: []string{"swim", "gcc"},
	}
}

func resetAllCaches() {
	ResetMemo()
	ResetRunCache()
	workload.ResetProgramCache()
	pdn.ResetKernelCache()
	core.ResetEnvelopeCache()
}

// TestParallelOutputIdentical is the correctness contract of the sweep
// engine: rendered experiment output must be byte-identical regardless of
// the worker count. It covers representatives of every sweep shape —
// a benchmark×parameter grid (table2), a delay-major grid (fig14), a
// mechanism-major grid (stressmark-actuation) and plain list sweeps
// (ablation-window, asymmetric).
func TestParallelOutputIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism comparison is slow")
	}
	ids := []string{"table2", "fig14", "stressmark-actuation", "ablation-window", "asymmetric"}
	reg := Registry()

	render := func(parallel int) []byte {
		resetAllCaches()
		cfg := tinyConfig()
		cfg.Parallel = parallel
		var buf bytes.Buffer
		for _, id := range ids {
			if err := reg[id](cfg, &buf); err != nil {
				t.Fatalf("parallel=%d %s: %v", parallel, id, err)
			}
		}
		return buf.Bytes()
	}

	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		line := 1
		for i := 0; i < len(serial) && i < len(parallel); i++ {
			if serial[i] != parallel[i] {
				t.Fatalf("output diverges at byte %d (line %d): serial %q vs parallel %q",
					i, line, excerpt(serial, i), excerpt(parallel, i))
			}
			if serial[i] == '\n' {
				line++
			}
		}
		t.Fatalf("output lengths differ: serial %d bytes, parallel %d bytes", len(serial), len(parallel))
	}
}

// TestParallelOutputIdenticalWithTelemetry extends the determinism
// contract to observability: with a live tracer attached, both the
// rendered output AND the serialized trace must be byte-identical at any
// worker count (Streams() canonical ordering is what makes the trace
// independent of completion order).
func TestParallelOutputIdenticalWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism comparison is slow")
	}
	ids := []string{"table2", "fig11", "stressmark-actuation"}
	reg := Registry()

	render := func(parallel int) (output, trace []byte) {
		resetAllCaches()
		cfg := tinyConfig()
		cfg.Parallel = parallel
		tracer := telemetry.NewTracer(1 << 12)
		cfg.Telemetry = tracer
		var buf bytes.Buffer
		for _, id := range ids {
			if err := reg[id](cfg, &buf); err != nil {
				t.Fatalf("parallel=%d %s: %v", parallel, id, err)
			}
		}
		var tb bytes.Buffer
		if err := telemetry.WriteChromeTrace(&tb, tracer, 0); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), tb.Bytes()
	}

	serialOut, serialTrace := render(1)
	parallelOut, parallelTrace := render(8)
	if !bytes.Equal(serialOut, parallelOut) {
		t.Fatal("rendered output differs with telemetry attached")
	}
	if len(serialTrace) == 0 {
		t.Fatal("tracer recorded nothing")
	}
	if !bytes.Equal(serialTrace, parallelTrace) {
		for i := 0; i < len(serialTrace) && i < len(parallelTrace); i++ {
			if serialTrace[i] != parallelTrace[i] {
				t.Fatalf("trace diverges at byte %d: serial %q vs parallel %q",
					i, excerpt(serialTrace, i), excerpt(parallelTrace, i))
			}
		}
		t.Fatalf("trace lengths differ: serial %d bytes, parallel %d bytes",
			len(serialTrace), len(parallelTrace))
	}
}

// TestParallelOutputIdenticalWithSpans extends the determinism contract
// to request tracing: with a span tracer in the request context — per-job
// spans in sim.Map, cache-decision spans in memoized — rendered output
// must be byte-identical to a run with spans off, at -parallel 1 and 4.
// This is the acceptance proof that tracing observes and never perturbs.
func TestParallelOutputIdenticalWithSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism comparison is slow")
	}
	ids := []string{"table2", "fig14", "stressmark-actuation"}
	reg := Registry()

	render := func(parallel int, spans bool) ([]byte, *telemetry.Tracer) {
		resetAllCaches()
		cfg := tinyConfig()
		cfg.Parallel = parallel
		tracer := telemetry.NewTracer(0)
		tracer.SetEnabled(spans)
		ctx := telemetry.ContextWithTracer(context.Background(), tracer)
		ctx, root := tracer.Start(ctx, "sweep")
		cfg.Ctx = ctx
		var buf bytes.Buffer
		for _, id := range ids {
			if err := reg[id](cfg, &buf); err != nil {
				t.Fatalf("parallel=%d spans=%v %s: %v", parallel, spans, id, err)
			}
		}
		if root.Enabled() {
			root.End()
		}
		return buf.Bytes(), tracer
	}

	baseline, _ := render(1, false)
	for _, parallel := range []int{1, 4} {
		got, tracer := render(parallel, true)
		if !bytes.Equal(baseline, got) {
			t.Fatalf("output with spans on at parallel=%d differs from spans-off baseline", parallel)
		}
		spans := tracer.Spans()
		if len(spans) == 0 {
			t.Fatalf("parallel=%d: tracer recorded no spans", parallel)
		}
		var jobs, memos int
		for _, r := range spans {
			switch r.Name {
			case "sim.job":
				jobs++
			case "experiments.memo":
				memos++
			}
		}
		if jobs == 0 || memos == 0 {
			t.Errorf("parallel=%d: expected sim.job and experiments.memo spans, got %d/%d",
				parallel, jobs, memos)
		}
	}
}

func excerpt(b []byte, at int) string {
	lo, hi := at-30, at+30
	if lo < 0 {
		lo = 0
	}
	if hi > len(b) {
		hi = len(b)
	}
	return string(b[lo:hi])
}
