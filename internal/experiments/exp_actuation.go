package experiments

import (
	"fmt"
	"io"

	"didt/internal/actuator"
	"didt/internal/cpu"
	"didt/internal/report"
	"didt/internal/stats"
)

func defaultCPUConfig() cpu.Config { return cpu.DefaultConfig() }

// ActuationPoint is one (mechanism, delay) evaluation over the challenging
// benchmarks.
type ActuationPoint struct {
	Mechanism       string
	Delay           int
	SpecPerfLossPct float64
	SpecEnergyPct   float64
	SpecEmergencies uint64
	SolverStable    bool
}

// ActuationStudy sweeps the three actuation granularities of Section 5
// across controller delays.
type ActuationStudy struct {
	Points []ActuationPoint
}

func actuationStudy(cfg Config) (*ActuationStudy, error) {
	cfg = cfg.withDefaults()
	return memoized("actuation", cfg, func() (*ActuationStudy, error) {
		benches := cfg.challenging()
		mechs := actuator.Granularities()
		const delays = 6

		baseJobs := make([]runJob, len(benches))
		for i, name := range benches {
			prog, key, err := cfg.benchProgramKeyed(name)
			if err != nil {
				return nil, err
			}
			baseJobs[i] = cfg.uncontrolledFullJob(prog, key, 2)
		}
		type base struct{ cycles, energy float64 }
		baseRes, err := cfg.runJobs(baseJobs)
		if err != nil {
			return nil, err
		}
		bases := make([]base, len(benches))
		for i, res := range baseRes {
			bases[i] = base{float64(res.Cycles), res.Energy}
		}

		// The full (mechanism, delay, benchmark) grid, flattened
		// mechanism-major so per-point aggregation reads results in the
		// serial loop's exact order.
		type outcome struct {
			perfPct, energyPct float64
			emergencies        uint64
			stable             bool
		}
		nb := len(benches)
		jobs := make([]runJob, len(mechs)*delays*nb)
		for j := range jobs {
			m, d, i := j/(delays*nb), (j/nb)%delays, j%nb
			prog, key, err := cfg.benchProgramKeyed(benches[i])
			if err != nil {
				return nil, err
			}
			jobs[j] = cfg.controlledJob(prog, key, 2, mechs[m], d, 0)
		}
		gridRes, err := cfg.runJobs(jobs)
		if err != nil {
			return nil, err
		}
		runs := make([]outcome, len(gridRes))
		for j, res := range gridRes {
			b := bases[j%nb]
			runs[j] = outcome{
				perfPct:     100 * (float64(res.Cycles)/b.cycles - 1),
				energyPct:   100 * (res.Energy/b.energy - 1),
				emergencies: res.Emergencies,
				stable:      res.Thresholds.Stable,
			}
		}

		st := &ActuationStudy{}
		for m, mech := range mechs {
			for d := 0; d < delays; d++ {
				var perf, energy []float64
				var emerg uint64
				stable := true
				for i := 0; i < nb; i++ {
					o := runs[m*delays*nb+d*nb+i]
					perf = append(perf, o.perfPct)
					energy = append(energy, o.energyPct)
					emerg += o.emergencies
					stable = stable && o.stable
				}
				st.Points = append(st.Points, ActuationPoint{
					Mechanism:       mech.Name,
					Delay:           d,
					SpecPerfLossPct: stats.Mean(perf),
					SpecEnergyPct:   stats.Mean(energy),
					SpecEmergencies: emerg,
					SolverStable:    stable,
				})
			}
		}
		return st, nil
	})
}

func (st *ActuationStudy) series(metric func(ActuationPoint) float64) map[string][]float64 {
	out := map[string][]float64{}
	for _, p := range st.Points {
		out[p.Mechanism] = append(out[p.Mechanism], metric(p))
	}
	return out
}

func renderActuation(cfg Config, w io.Writer, title, unit string,
	metric func(ActuationPoint) float64, notes []string) error {
	st, err := actuationStudy(cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   title,
		Headers: []string{"mechanism", "delay", unit, "emergencies", "solver stable"},
	}
	for _, p := range st.Points {
		t.AddRow(p.Mechanism, fmt.Sprintf("%d", p.Delay),
			fmt.Sprintf("%.2f", metric(p)),
			fmt.Sprintf("%d", p.SpecEmergencies),
			fmt.Sprintf("%v", p.SolverStable))
	}
	t.Notes = notes
	t.Render(w)
	var series []report.Series
	for _, m := range actuator.Granularities() {
		series = append(series, report.Series{Name: m.Name, Data: st.series(metric)[m.Name]})
	}
	(&report.LinePlot{
		Title:  title + " (vs delay 0..5)",
		YLabel: unit,
		Series: series,
		Height: 12,
	}).Render(w)
	return nil
}

func renderFig17(cfg Config, w io.Writer) error {
	return renderActuation(cfg, w,
		"Figure 17: impact of guarded actuator delay on performance (SPEC challenging set, 200% impedance)",
		"perf loss (%)",
		func(p ActuationPoint) float64 { return p.SpecPerfLossPct },
		[]string{
			"FU-only control lacks the leverage to reshape voltage quickly: the rest of the chip keeps drawing current while the pipelines gate",
			"FU/DL1 and FU/DL1/IL1 keep performance loss small across delays",
		})
}

func renderFig18(cfg Config, w io.Writer) error {
	return renderActuation(cfg, w,
		"Figure 18: impact of guarded actuator delay on energy (SPEC challenging set, 200% impedance)",
		"energy increase (%)",
		func(p ActuationPoint) float64 { return p.SpecEnergyPct },
		[]string{"energy overhead stays small for SPEC; it grows with controller delay"})
}

// ----------------------------------------------- Section 5.2/5.3 stressmark

// StressActuationPoint is one (mechanism, delay) stressmark evaluation.
type StressActuationPoint struct {
	Mechanism   string
	Delay       int
	PerfLossPct float64
	EnergyPct   float64
	Emergencies uint64
	Stable      bool
}

// StressmarkActuationStudy reproduces the Section 5.2/5.3 stressmark
// numbers: bounded but significant performance/energy cost under real
// actuators.
type StressmarkActuationStudy struct {
	Points []StressActuationPoint
}

func stressmarkActuation(cfg Config) (*StressmarkActuationStudy, error) {
	cfg = cfg.withDefaults()
	return memoized("stressmark-actuation", cfg, func() (*StressmarkActuationStudy, error) {
		prog, progKey := cfg.stressProgramKeyed()
		baseRes, err := cfg.runKeyed(cfg.uncontrolledFullJob(prog, progKey, 2))
		if err != nil {
			return nil, err
		}
		mechs := actuator.Granularities()
		const delays = 6
		jobs := make([]runJob, len(mechs)*delays)
		for j := range jobs {
			m, d := j/delays, j%delays
			jobs[j] = cfg.controlledJob(prog, progKey, 2, mechs[m], d, 0)
		}
		gridRes, err := cfg.runJobs(jobs)
		if err != nil {
			return nil, err
		}
		points := make([]StressActuationPoint, len(gridRes))
		for j, res := range gridRes {
			m, d := j/delays, j%delays
			points[j] = StressActuationPoint{
				Mechanism:   mechs[m].Name,
				Delay:       d,
				PerfLossPct: 100 * (float64(res.Cycles)/float64(baseRes.Cycles) - 1),
				EnergyPct:   100 * (res.Energy/baseRes.Energy - 1),
				Emergencies: res.Emergencies,
				Stable:      res.Thresholds.Stable,
			}
		}
		return &StressmarkActuationStudy{Points: points}, nil
	})
}

func renderStressmarkActuation(cfg Config, w io.Writer) error {
	st, err := stressmarkActuation(cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Section 5.2/5.3: stressmark under real actuators (200% impedance)",
		Headers: []string{"mechanism", "delay", "perf loss (%)", "energy increase (%)", "emergencies", "solver stable"},
	}
	for _, p := range st.Points {
		t.AddRow(p.Mechanism, fmt.Sprintf("%d", p.Delay),
			fmt.Sprintf("%.2f", p.PerfLossPct),
			fmt.Sprintf("%.2f", p.EnergyPct),
			fmt.Sprintf("%d", p.Emergencies),
			fmt.Sprintf("%v", p.Stable))
	}
	t.Notes = append(t.Notes,
		"the near-worst-case stressmark pays tens of percent at large delays — acceptable for an unlikely scenario",
		"voltage protection holds wherever the solver reports stable thresholds")
	t.Render(w)
	return nil
}
