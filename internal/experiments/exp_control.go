package experiments

import (
	"fmt"
	"io"

	"didt/internal/actuator"
	"didt/internal/control"
	"didt/internal/core"
	"didt/internal/isa"
	"didt/internal/pdn"
	"didt/internal/power"
	"didt/internal/report"
	"didt/internal/stats"
)

// ----------------------------------------------------------------- Table 3

// Table3Row is one sensor-delay point.
type Table3Row struct {
	Delay      int
	Thresholds control.Thresholds
}

// Table3Result reproduces "Voltage thresholds under delay".
type Table3Result struct {
	ImpedancePct float64
	Rows         []Table3Row
}

// Table3 solves thresholds for sensor delays 0-6 at 200% impedance with
// the ideal actuator, the paper's Section 4.3 study.
func Table3(cfg Config) (*Table3Result, error) {
	cfg = cfg.withDefaults()
	return memoized("table3", cfg, func() (*Table3Result, error) {
		pm := power.New(power.Params{}, defaultCPUConfig())
		// The envelope comes from the same probe measurement the coupled
		// system uses.
		sys, err := core.NewSystem(cfg.stressProgram(), cfg.baseOptions(2))
		if err != nil {
			return nil, err
		}
		iMin, iMax := sys.Envelope()
		net, err := pdn.Calibrate(pdn.Params{IFloor: 0.5 * (iMin + iMax)}, iMin, iMax, 2)
		if err != nil {
			return nil, err
		}
		solver := control.NewSolver(net)
		floor, ceil := actuator.Ideal.Envelope(pm)
		r := &Table3Result{ImpedancePct: 2}
		for d := 0; d <= 6; d++ {
			th, err := solver.Solve(control.Envelope{
				IMin: iMin, IMax: iMax, Floor: floor, Ceil: ceil, Settle: 2,
			}, d)
			if err != nil {
				return nil, err
			}
			r.Rows = append(r.Rows, Table3Row{Delay: d, Thresholds: th})
		}
		return r, nil
	})
}

// Render prints the table.
func (r *Table3Result) Render(w io.Writer) {
	t := &report.Table{
		Title:   "Table 3: voltage thresholds under sensor delay (200% impedance, ideal actuator)",
		Headers: []string{"delay (cycles)", "low threshold (V)", "high threshold (V)", "safe window (mV)", "stable"},
	}
	for _, row := range r.Rows {
		if row.Thresholds.Stable {
			t.AddRow(fmt.Sprintf("%d", row.Delay),
				fmt.Sprintf("%.4f", row.Thresholds.Low),
				fmt.Sprintf("%.4f", row.Thresholds.High),
				fmt.Sprintf("%.1f", row.Thresholds.SafeWindow*1e3),
				"yes")
		} else {
			t.AddRow(fmt.Sprintf("%d", row.Delay), "-", "-", "-", "NO")
		}
	}
	t.Notes = append(t.Notes,
		"slower sensing narrows the operating window: the low threshold must rise to leave response time",
		"solved numerically against the worst-case resonant waveform (the paper's MATLAB/Simulink step)")
	t.Render(w)
}

func renderTable3(cfg Config, w io.Writer) error {
	r, err := Table3(cfg)
	if err != nil {
		return err
	}
	r.Render(w)
	return nil
}

// ------------------------------------------------------- Figures 14 and 15

// DelayPoint is one sensor-delay evaluation.
type DelayPoint struct {
	Delay           int
	SpecPerfLossPct float64 // mean over the challenging benchmarks
	SpecEnergyPct   float64
	StressPerfPct   float64
	StressEnergyPct float64
	SpecEmergencies uint64
	StressEmerg     uint64
}

// SensorDelayStudy sweeps sensor delay 0-6 with the ideal actuator at 200%
// impedance, measuring performance and energy against uncontrolled
// baselines.
type SensorDelayStudy struct {
	Points []DelayPoint
}

func sensorDelayStudy(cfg Config) (*SensorDelayStudy, error) {
	cfg = cfg.withDefaults()
	return memoized("sensor-delay", cfg, func() (*SensorDelayStudy, error) {
		benches := cfg.challenging()
		// Workload index len(benches) is the stressmark throughout.
		workloads := len(benches) + 1
		program := func(i int) (isa.Program, string, error) {
			if i == len(benches) {
				prog, key := cfg.stressProgramKeyed()
				return prog, key, nil
			}
			return cfg.benchProgramKeyed(benches[i])
		}

		baseJobs := make([]runJob, workloads)
		for i := range baseJobs {
			prog, key, err := program(i)
			if err != nil {
				return nil, err
			}
			baseJobs[i] = cfg.uncontrolledFullJob(prog, key, 2)
		}
		type base struct{ cycles, energy float64 }
		baseRes, err := cfg.runJobs(baseJobs)
		if err != nil {
			return nil, err
		}
		bases := make([]base, workloads)
		for i, res := range baseRes {
			bases[i] = base{float64(res.Cycles), res.Energy}
		}

		// One controlled run per (delay, workload); the flattened grid
		// keeps results in (delay-major, bench-order) submission order so
		// the per-delay means sum in exactly the serial order.
		const delays = 7
		type outcome struct {
			perfPct, energyPct float64
			emergencies        uint64
		}
		jobs := make([]runJob, delays*workloads)
		for j := range jobs {
			d, i := j/workloads, j%workloads
			prog, key, err := program(i)
			if err != nil {
				return nil, err
			}
			jobs[j] = cfg.controlledJob(prog, key, 2, actuator.Ideal, d, 0)
		}
		gridRes, err := cfg.runJobs(jobs)
		if err != nil {
			return nil, err
		}
		runs := make([]outcome, len(gridRes))
		for j, res := range gridRes {
			b := bases[j%workloads]
			runs[j] = outcome{
				perfPct:     100 * (float64(res.Cycles)/b.cycles - 1),
				energyPct:   100 * (res.Energy/b.energy - 1),
				emergencies: res.Emergencies,
			}
		}

		st := &SensorDelayStudy{}
		for d := 0; d < delays; d++ {
			var perf, energy []float64
			var emerg uint64
			for i := 0; i < len(benches); i++ {
				o := runs[d*workloads+i]
				perf = append(perf, o.perfPct)
				energy = append(energy, o.energyPct)
				emerg += o.emergencies
			}
			stress := runs[d*workloads+len(benches)]
			st.Points = append(st.Points, DelayPoint{
				Delay:           d,
				SpecPerfLossPct: stats.Mean(perf),
				SpecEnergyPct:   stats.Mean(energy),
				StressPerfPct:   stress.perfPct,
				StressEnergyPct: stress.energyPct,
				SpecEmergencies: emerg,
				StressEmerg:     stress.emergencies,
			})
		}
		return st, nil
	})
}

func renderFig14(cfg Config, w io.Writer) error {
	st, err := sensorDelayStudy(cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Figure 14: impact of sensor delay on performance (ideal actuator, 200% impedance)",
		Headers: []string{"delay", "SPEC mean perf loss (%)", "stressmark perf loss (%)"},
	}
	var spec, stress []float64
	for _, p := range st.Points {
		t.AddRow(fmt.Sprintf("%d", p.Delay), fmt.Sprintf("%.2f", p.SpecPerfLossPct), fmt.Sprintf("%.2f", p.StressPerfPct))
		spec = append(spec, p.SpecPerfLossPct)
		stress = append(stress, p.StressPerfPct)
	}
	t.Notes = append(t.Notes, "SPEC is largely unaffected; the near-worst-case stressmark pays significantly more as sensing slows")
	t.Render(w)
	(&report.LinePlot{
		Title:  "Figure 14 (perf loss vs sensor delay)",
		YLabel: "% slowdown",
		Series: []report.Series{{Name: "SPEC mean", Data: spec}, {Name: "stressmark", Data: stress}},
		Height: 12,
	}).Render(w)
	return nil
}

func renderFig15(cfg Config, w io.Writer) error {
	st, err := sensorDelayStudy(cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Figure 15: impact of sensor delay on energy (ideal actuator, 200% impedance)",
		Headers: []string{"delay", "SPEC mean energy increase (%)", "stressmark energy increase (%)"},
	}
	var spec, stress []float64
	for _, p := range st.Points {
		t.AddRow(fmt.Sprintf("%d", p.Delay), fmt.Sprintf("%.2f", p.SpecEnergyPct), fmt.Sprintf("%.2f", p.StressEnergyPct))
		spec = append(spec, p.SpecEnergyPct)
		stress = append(stress, p.StressEnergyPct)
	}
	t.Render(w)
	(&report.LinePlot{
		Title:  "Figure 15 (energy increase vs sensor delay)",
		YLabel: "% energy",
		Series: []report.Series{{Name: "SPEC mean", Data: spec}, {Name: "stressmark", Data: stress}},
		Height: 12,
	}).Render(w)
	return nil
}

// ---------------------------------------------------------------- Figure 16

// NoisePoint is one sensor-error evaluation.
type NoisePoint struct {
	NoiseMV         float64
	SpecPerfLossPct float64
	SpecEnergyPct   float64
}

// SensorErrorStudy sweeps sensor noise at a fixed small delay.
type SensorErrorStudy struct {
	Delay  int
	Points []NoisePoint
}

func sensorErrorStudy(cfg Config) (*SensorErrorStudy, error) {
	cfg = cfg.withDefaults()
	return memoized("sensor-error", cfg, func() (*SensorErrorStudy, error) {
		const delay = 2
		benches := cfg.challenging()
		noises := []float64{0, 10, 15, 20, 25}

		baseJobs := make([]runJob, len(benches))
		for i, name := range benches {
			prog, key, err := cfg.benchProgramKeyed(name)
			if err != nil {
				return nil, err
			}
			baseJobs[i] = cfg.uncontrolledFullJob(prog, key, 2)
		}
		type base struct{ cycles, energy float64 }
		baseRes, err := cfg.runJobs(baseJobs)
		if err != nil {
			return nil, err
		}
		bases := make([]base, len(benches))
		for i, res := range baseRes {
			bases[i] = base{float64(res.Cycles), res.Energy}
		}

		jobs := make([]runJob, len(noises)*len(benches))
		for j := range jobs {
			n, i := j/len(benches), j%len(benches)
			prog, key, err := cfg.benchProgramKeyed(benches[i])
			if err != nil {
				return nil, err
			}
			jobs[j] = cfg.controlledJob(prog, key, 2, actuator.Ideal, delay, noises[n])
		}
		gridRes, err := cfg.runJobs(jobs)
		if err != nil {
			return nil, err
		}
		type outcome struct{ perfPct, energyPct float64 }
		runs := make([]outcome, len(gridRes))
		for j, res := range gridRes {
			b := bases[j%len(benches)]
			runs[j] = outcome{
				perfPct:   100 * (float64(res.Cycles)/b.cycles - 1),
				energyPct: 100 * (res.Energy/b.energy - 1),
			}
		}

		st := &SensorErrorStudy{Delay: delay}
		for n, noise := range noises {
			var perf, energy []float64
			for i := range benches {
				o := runs[n*len(benches)+i]
				perf = append(perf, o.perfPct)
				energy = append(energy, o.energyPct)
			}
			st.Points = append(st.Points, NoisePoint{
				NoiseMV:         noise,
				SpecPerfLossPct: stats.Mean(perf),
				SpecEnergyPct:   stats.Mean(energy),
			})
		}
		return st, nil
	})
}

func renderFig16(cfg Config, w io.Writer) error {
	st, err := sensorErrorStudy(cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 16: impact of sensor error on performance and energy (delay %d, 200%% impedance)", st.Delay),
		Headers: []string{"noise (mV)", "SPEC mean perf loss (%)", "SPEC mean energy increase (%)"},
	}
	var perf, energy []float64
	for _, p := range st.Points {
		t.AddRow(fmt.Sprintf("%.0f", p.NoiseMV), fmt.Sprintf("%.2f", p.SpecPerfLossPct), fmt.Sprintf("%.2f", p.SpecEnergyPct))
		perf = append(perf, p.SpecPerfLossPct)
		energy = append(energy, p.SpecEnergyPct)
	}
	t.Notes = append(t.Notes,
		"thresholds are guard-banded by the noise amplitude, shrinking the operating window",
		"small errors (< 15 mV) are nearly free; larger errors cost performance and energy")
	t.Render(w)
	(&report.LinePlot{
		Title:  "Figure 16 (degradation vs sensor error)",
		YLabel: "%",
		Series: []report.Series{{Name: "perf loss", Data: perf}, {Name: "energy increase", Data: energy}},
		Height: 12,
	}).Render(w)
	return nil
}
