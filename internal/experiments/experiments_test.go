package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	reg := Registry()
	wanted := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig9", "fig10",
		"fig11", "table2", "table3", "fig14", "fig15", "fig16", "fig17",
		"fig18", "stressmark-actuation",
	}
	for _, id := range wanted {
		if _, ok := reg[id]; !ok {
			t.Errorf("missing experiment %q", id)
		}
	}
	ids := IDs()
	if len(ids) != len(reg) {
		t.Errorf("IDs() has %d entries, registry %d", len(ids), len(reg))
	}
}

func TestFig1Shape(t *testing.T) {
	r, err := Fig1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.HighPerformance >= first.HighPerformance {
		t.Error("impedance trend must fall")
	}
	if last.RelativeGapFactor >= first.RelativeGapFactor {
		t.Error("class gap must shrink")
	}
}

func TestFig2Shape(t *testing.T) {
	r, err := Fig2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// The impedance curve must peak in the interior (resonance), not at
	// the edges of the sweep.
	peakIdx, peak := 0, 0.0
	for i, z := range r.Impedance {
		if z > peak {
			peak, peakIdx = z, i
		}
	}
	if peakIdx == 0 || peakIdx == len(r.Impedance)-1 {
		t.Errorf("impedance peak at sweep edge (idx %d)", peakIdx)
	}
	// Step response must overshoot its final value (underdamped).
	final := r.Step[len(r.Step)-1]
	maxStep := 0.0
	for _, v := range r.Step {
		if v > maxStep {
			maxStep = v
		}
	}
	if maxStep <= final {
		t.Error("step response shows no overshoot")
	}
}

func TestPulseFigures(t *testing.T) {
	cfg := Quick()
	narrow, err := Pulse(cfg, "fig3")
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Crossed {
		t.Error("fig3: narrow spike must not cause an emergency")
	}
	wide, err := Pulse(cfg, "fig4")
	if err != nil {
		t.Fatal(err)
	}
	if wide.Voltage.Min() >= narrow.Voltage.Min() {
		t.Error("fig4: wide spike must dip deeper than narrow")
	}
	notch, err := Pulse(cfg, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if notch.Voltage.Min() <= wide.Voltage.Min() {
		t.Error("fig5: the control notch must relieve the dip")
	}
	train, err := Pulse(cfg, "fig6")
	if err != nil {
		t.Fatal(err)
	}
	if !train.Crossed {
		t.Error("fig6: the resonant pulse train must cause an emergency at 200%")
	}
	if train.Voltage.Min() >= wide.Voltage.Min() {
		t.Error("fig6: resonance must build beyond a single pulse")
	}
	if _, err := Pulse(cfg, "bogus"); err == nil {
		t.Error("want error for unknown pulse id")
	}
}

func TestTable3Shape(t *testing.T) {
	r, err := Table3(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		a, b := r.Rows[i-1].Thresholds, r.Rows[i].Thresholds
		if !a.Stable || !b.Stable {
			t.Fatalf("row %d unstable", i)
		}
		if b.Low < a.Low-1e-6 {
			t.Errorf("delay %d: low threshold fell (%.4f -> %.4f)", i, a.Low, b.Low)
		}
	}
	first, last := r.Rows[0].Thresholds, r.Rows[6].Thresholds
	if last.SafeWindow >= first.SafeWindow {
		t.Errorf("safe window must shrink with delay: %.1f -> %.1f mV",
			first.SafeWindow*1e3, last.SafeWindow*1e3)
	}
}

func TestQuickHarnessEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("quick harness still runs full simulations")
	}
	// Exercise a representative subset of runners end to end with the
	// quick config; render output must be non-trivial.
	cfg := Quick()
	for _, id := range []string{"fig1", "fig2", "fig3", "fig9", "fig11", "table3",
		"locality", "software-scheduling", "ramp-policy", "ablation-gating", "asymmetric", "pid"} {
		var buf bytes.Buffer
		if err := Registry()[id](cfg, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() < 100 {
			t.Errorf("%s: output suspiciously short", id)
		}
		if !strings.Contains(buf.String(), "===") {
			t.Errorf("%s: missing title rule", id)
		}
	}
}

func TestTable2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := Quick()
	r, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The definitional guarantee: no emergencies when impedance meets spec.
	if n, _, _ := r.Summary(100); n != 0 {
		t.Errorf("%d benchmarks with emergencies at 100%%", n)
	}
	if r.Stressmark.Freq[200] == 0 {
		t.Error("stressmark must break through at 200% impedance")
	}
	// Emergencies grow (weakly) with impedance.
	n3, _, _ := r.Summary(300)
	n4, _, _ := r.Summary(400)
	if n4 < n3 {
		t.Errorf("emergencies shrank with impedance: %d at 300%%, %d at 400%%", n3, n4)
	}
}

func TestMemoization(t *testing.T) {
	cfg := Quick()
	a, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("memoized study returned a different pointer")
	}
}
