// Package experiments regenerates every table and figure in the paper's
// evaluation. Each experiment has an identifier (fig1..fig18, table2,
// table3, stressmark-actuation), a typed result, and a text renderer; the
// cmd/experiments tool and the repository's benchmark harness both drive
// this package.
//
// Absolute numbers differ from the paper's (the substrate is a
// reimplemented simulator, not the authors' testbed); the shapes — which
// mechanism wins, where the knees fall, what sensing delay costs — are the
// reproduction targets. EXPERIMENTS.md records paper-vs-measured for every
// entry.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"didt/internal/actuator"
	"didt/internal/core"
	"didt/internal/isa"
	"didt/internal/sim"
	"didt/internal/spec"
	"didt/internal/telemetry"
	"didt/internal/workload"
)

// Config scales the whole harness. The defaults run every experiment in a
// few minutes; Quick is for unit tests and benchmarks.
type Config struct {
	Cycles     uint64 // per-run cycle cap
	Warmup     uint64 // cycles excluded from voltage statistics
	Iterations int    // benchmark loop iterations
	StressIter int    // stressmark loop iterations
	Benchmarks []string
	Seed       int64

	// Parallel bounds the worker count for the sweep-heavy experiments;
	// 0 takes the process default (GOMAXPROCS, or sim.SetDefaultWorkers).
	// Every simulation takes explicit seeds, so the worker count never
	// changes results — parallel output is byte-identical to serial.
	Parallel int

	// Telemetry, when non-nil, threads a cycle tracer through every
	// system the experiments build. It never affects rendered output or
	// memo keys (runs are identical traced or not); serialized traces are
	// reproducible at any Parallel setting because streams are ordered
	// canonically, not by completion.
	Telemetry *telemetry.Tracer

	// Ctx, when non-nil, bounds every sweep the experiment runs: request
	// cancellation and deadlines propagate into sim.Map, which stops
	// dispatching jobs and returns the context's error. It is excluded
	// from memo keys — like Parallel, it must never change results. The
	// didtd server threads each request's context through this field; nil
	// means context.Background() (the CLI behaviour).
	Ctx context.Context
}

// Default is the full-size configuration.
func Default() Config {
	return Config{
		Cycles:     220_000,
		Warmup:     40_000,
		Iterations: 3000,
		StressIter: 2500,
	}
}

// Quick is a reduced configuration for tests and benchmarks.
func Quick() Config {
	return Config{
		Cycles:     90_000,
		Warmup:     25_000,
		Iterations: 1200,
		StressIter: 1000,
		Benchmarks: []string{"swim", "gcc", "galgel"},
	}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.Cycles == 0 {
		c.Cycles = d.Cycles
	}
	if c.Warmup == 0 {
		c.Warmup = d.Warmup
	}
	if c.Iterations == 0 {
		c.Iterations = d.Iterations
	}
	if c.StressIter == 0 {
		c.StressIter = d.StressIter
	}
	return c
}

// Validate rejects sweep configurations that name unknown benchmarks,
// reporting every bad name at once with did-you-mean hints. The CLI turns
// the error into an exit-2 usage failure and the server into a 400; both
// go through this one path, so the vocabulary and wording match.
func (c Config) Validate() error {
	var errs []error
	for _, b := range c.Benchmarks {
		if err := spec.ValidBenchmark(b); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// ResolveIDs validates experiment identifiers against the registry,
// reporting every unknown identifier at once with did-you-mean hints, and
// returns them unchanged on success. An empty list means "all" and
// resolves to IDs().
func ResolveIDs(ids []string) ([]string, error) {
	if len(ids) == 0 {
		return IDs(), nil
	}
	reg := Registry()
	var errs []error
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			errs = append(errs, spec.UnknownName(fmt.Sprintf("unknown experiment %q", id), id, IDs()))
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return ids, nil
}

// benchmarks resolves the benchmark list (nil = all 26).
func (c Config) benchmarks() []string {
	if len(c.Benchmarks) > 0 {
		return c.Benchmarks
	}
	return workload.Names()
}

// challenging resolves the control-study subset: the paper's eight most
// voltage-variable benchmarks, intersected with any configured filter.
func (c Config) challenging() []string {
	eight := workload.ChallengingEight()
	if len(c.Benchmarks) == 0 {
		return eight
	}
	allowed := map[string]bool{}
	for _, b := range c.Benchmarks {
		allowed[b] = true
	}
	var out []string
	for _, b := range eight {
		if allowed[b] {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		return c.Benchmarks
	}
	return out
}

func (c Config) benchProgram(name string) (isa.Program, error) {
	p, err := workload.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	p.Iterations = c.Iterations
	return workload.GenerateCached(p), nil
}

func (c Config) stressProgram() isa.Program {
	return workload.StressmarkCached(workload.StressmarkParams{Iterations: c.StressIter})
}

// workers resolves the sweep worker count for this configuration.
func (c Config) workers() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	return sim.DefaultWorkers()
}

// context resolves the configured request context (nil = Background).
func (c Config) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// sweep fans fn out over items on the configured worker pool, returning
// results in item order (the determinism contract: identical output at any
// worker count). The configured context bounds the sweep.
func sweep[In, Out any](cfg Config, items []In, fn func(In) (Out, error)) ([]Out, error) {
	return sim.Sweep(cfg.context(), cfg.workers(), items, func(_ context.Context, item In) (Out, error) {
		return fn(item)
	})
}

// seq returns [0, 1, ..., n-1], the index list for grid sweeps.
func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// baseSpec derives the per-run spec every run of this sweep shape starts
// from: the Config is only sweep shape (which experiments, how many
// iterations, how wide); everything a single run needs is a RunSpec.
// Experiments override individual sections (controller, actuator, CPU
// sizing) on top of this base.
func (c Config) baseSpec(pct float64) spec.RunSpec {
	var s spec.RunSpec
	s.PDN.ImpedancePct = pct
	s.Budget.MaxCycles = c.Cycles
	s.Budget.WarmupCycles = c.Warmup
	s.Seed = spec.NewSeed(c.Seed)
	return s
}

// Spec derives the resolved base run spec this sweep shape starts from;
// experiments override individual sections (impedance, controller,
// actuator) per sweep point. Run manifests record it, with its Key, so a
// sweep's output is traceable to one concrete configuration.
func (c Config) Spec() spec.RunSpec {
	return c.withDefaults().baseSpec(0).WithDefaults()
}

// baseOptions assembles core options for an uncontrolled run.
func (c Config) baseOptions(pct float64) core.Options {
	return core.Options{
		Spec:      c.baseSpec(pct),
		Telemetry: c.Telemetry,
	}
}

// run executes one system, recycling pooled buffers afterwards.
func run(prog isa.Program, opts core.Options) (*core.Result, error) {
	sys, err := core.NewSystem(prog, opts)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	return sys.Run()
}

// controlled executes one controlled system.
func (c Config) controlled(prog isa.Program, pct float64, mech actuator.Mechanism, delay int, noiseMV float64) (*core.Result, error) {
	opts := c.baseOptions(pct)
	opts.Spec.Control.Enabled = true
	opts.Spec.Actuator.Mechanism = mech.Name
	opts.Spec.Sensor.DelayCycles = delay
	opts.Spec.Sensor.NoiseMV = noiseMV
	// Controlled runs take longer; leave headroom so the same program
	// retires fully and cycle counts are comparable.
	opts.Spec.Budget.MaxCycles = c.Cycles * 4
	return run(prog, opts)
}

// uncontrolledFull runs without a cycle cap tighter than the controlled
// ones so that both retire the full program (performance = cycles ratio).
func (c Config) uncontrolledFull(prog isa.Program, pct float64) (*core.Result, error) {
	opts := c.baseOptions(pct)
	opts.Spec.Budget.MaxCycles = c.Cycles * 4
	return run(prog, opts)
}

// memo caches expensive shared studies within a process (fig14 and fig15
// render the same sweep, as do fig17 and fig18) with singleflight
// semantics: concurrent experiments never compute the same study twice.
// The capacity bound keeps long-lived processes (benchmark harnesses,
// future servers) from growing it without limit.
var memo = sim.NewCache[string, interface{}](256)

func init() {
	memo.RegisterMetrics(telemetry.Default(), "cache.experiments_memo")
	sim.RegisterCacheCapacity("experiments_memo", 256, memo.SetCapacity)
}

// ResetMemo drops every cached study. Benchmarks and determinism tests use
// it to force recomputation.
func ResetMemo() { memo.Reset() }

// SetMemoCapacity rebounds the shared study memo (n <= 0 = unbounded).
// Long-lived servers tune this to their memory budget; tests shrink it to
// exercise capacity pressure. In-flight studies are never evicted.
func SetMemoCapacity(n int) { memo.SetCapacity(n) }

// MemoStats reports the shared study memo's effectiveness.
func MemoStats() sim.CacheStats { return memo.Stats() }

// memoIdentity is everything that affects a study's results: the derived
// base run spec (budget, seed — the per-run identity) plus the sweep-shape
// fields that pick programs and points. Parallel and Ctx are deliberately
// excluded — the worker count and request context must never change
// results, and keying on them would defeat the fig14/fig15 (and
// fig17/fig18) sharing.
type memoIdentity struct {
	Experiment string       `json:"experiment"`
	Base       spec.RunSpec `json:"base"`
	Iterations int          `json:"iterations"`
	StressIter int          `json:"stress_iter"`
	Benchmarks []string     `json:"benchmarks"`
}

// memoKey is the study's content hash, built from the same fingerprint
// primitive as spec.RunSpec.Key, over the unresolved base spec (so sparse
// configs that resolve identically still keep their own entries, matching
// the cache's historical structure).
func memoKey(name string, cfg Config) string {
	return name + "|" + sim.Fingerprint(memoIdentity{
		Experiment: name,
		Base:       cfg.baseSpec(0),
		Iterations: cfg.Iterations,
		StressIter: cfg.StressIter,
		Benchmarks: cfg.Benchmarks,
	})
}

// sweepIdentity is everything that affects a rendered sweep response: the
// resolved experiment list in execution order plus the same sweep-shape
// fields memoIdentity keys on. Parallel and Ctx are excluded for the same
// reason they are excluded there — the determinism contract promises the
// bytes do not depend on them.
type sweepIdentity struct {
	IDs        []string     `json:"ids"`
	Base       spec.RunSpec `json:"base"`
	Iterations int          `json:"iterations"`
	StressIter int          `json:"stress_iter"`
	Benchmarks []string     `json:"benchmarks"`
}

// ResultKey is the content hash of the rendered output for running ids
// under this configuration — the identity didtd's result store files a
// sweep response under. Defaults are applied first so sparse and explicit
// spellings of the same sweep share one entry.
func (c Config) ResultKey(ids []string) string {
	d := c.withDefaults()
	return sim.Fingerprint(sweepIdentity{
		IDs:        ids,
		Base:       d.baseSpec(0),
		Iterations: d.Iterations,
		StressIter: d.StressIter,
		Benchmarks: d.Benchmarks,
	})
}

func memoized[T any](name string, cfg Config, compute func() (T, error)) (T, error) {
	// A request span around the cache decision: the hit/miss attribute is
	// how a trace explains where a sweep's time went (a hit is microseconds,
	// a miss is the whole study). Spans never influence the computation.
	var span *telemetry.Span
	if tr := telemetry.TracerFromContext(cfg.context()); tr.Enabled() {
		_, span = tr.Start(cfg.context(), "experiments.memo", telemetry.AttrStr("study", name))
	}
	computed := false
	v, err := memo.Get(memoKey(name, cfg), func() (interface{}, error) {
		computed = true
		return compute()
	})
	if span.Enabled() {
		// computed stays false when singleflight handed us another caller's
		// result, which is a hit from this request's perspective.
		span.SetAttr("cache_hit", strconv.FormatBool(!computed))
		span.End()
	}
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// Runner executes one experiment and renders it.
type Runner func(cfg Config, w io.Writer) error

// Registry maps experiment identifiers to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1":   func(c Config, w io.Writer) error { return renderFig1(c, w) },
		"fig2":   func(c Config, w io.Writer) error { return renderFig2(c, w) },
		"fig3":   func(c Config, w io.Writer) error { return renderPulse(c, w, "fig3") },
		"fig4":   func(c Config, w io.Writer) error { return renderPulse(c, w, "fig4") },
		"fig5":   func(c Config, w io.Writer) error { return renderPulse(c, w, "fig5") },
		"fig6":   func(c Config, w io.Writer) error { return renderPulse(c, w, "fig6") },
		"fig9":   func(c Config, w io.Writer) error { return renderFig9(c, w) },
		"fig10":  func(c Config, w io.Writer) error { return renderFig10(c, w) },
		"fig11":  func(c Config, w io.Writer) error { return renderFig11(c, w) },
		"table2": func(c Config, w io.Writer) error { return renderTable2(c, w) },
		"table3": func(c Config, w io.Writer) error { return renderTable3(c, w) },
		"fig14":  func(c Config, w io.Writer) error { return renderFig14(c, w) },
		"fig15":  func(c Config, w io.Writer) error { return renderFig15(c, w) },
		"fig16":  func(c Config, w io.Writer) error { return renderFig16(c, w) },
		"fig17":  func(c Config, w io.Writer) error { return renderFig17(c, w) },
		"fig18":  func(c Config, w io.Writer) error { return renderFig18(c, w) },
		"stressmark-actuation": func(c Config, w io.Writer) error {
			return renderStressmarkActuation(c, w)
		},
		// Section 6 / discussion extensions and ablations.
		"asymmetric":      func(c Config, w io.Writer) error { return renderAsymmetric(c, w) },
		"locality":        func(c Config, w io.Writer) error { return renderLocality(c, w) },
		"pid":             func(c Config, w io.Writer) error { return renderPID(c, w) },
		"ramp-policy":     func(c Config, w io.Writer) error { return renderRampPolicy(c, w) },
		"ablation-gating": func(c Config, w io.Writer) error { return renderGatingAblation(c, w) },
		"software-scheduling": func(c Config, w io.Writer) error {
			return renderSoftwareScheduling(c, w)
		},
		"ablation-window": func(c Config, w io.Writer) error { return renderWindowAblation(c, w) },
		"recovery-policy": func(c Config, w io.Writer) error { return renderRecovery(c, w) },
		// Multi-rail PDN family: per-domain delivery, cross-domain coupling,
		// per-rail control, and the DVS actuator.
		"rails-emergencies": func(c Config, w io.Writer) error { return renderRailsEmergencies(c, w) },
		"rails-resonance":   func(c Config, w io.Writer) error { return renderRailsResonance(c, w) },
		"rails-thresholds":  func(c Config, w io.Writer) error { return renderRailsThresholds(c, w) },
		"rails-dvs":         func(c Config, w io.Writer) error { return renderRailsDVS(c, w) },
	}
}

// IDs lists experiment identifiers in the paper's order.
func IDs() []string {
	ordered := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig9", "table2",
		"fig10", "fig11", "table3", "fig14", "fig15", "fig16", "fig17",
		"fig18", "stressmark-actuation",
		// Section 6 / discussion extensions and ablations.
		"asymmetric", "pid", "ramp-policy", "ablation-gating", "locality",
		"software-scheduling", "ablation-window", "recovery-policy",
		// Multi-rail PDN family.
		"rails-emergencies", "rails-resonance", "rails-thresholds", "rails-dvs",
	}
	// Guard against registry drift.
	reg := Registry()
	var out []string
	for _, id := range ordered {
		if _, ok := reg[id]; ok {
			out = append(out, id)
		}
	}
	var extra []string
	for id := range reg {
		found := false
		for _, o := range ordered {
			if o == id {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, id)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}
