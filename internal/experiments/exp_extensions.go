package experiments

// Extensions implement the paper's Section 6 "Discussion and Future Work"
// proposals so their trade-offs can be measured rather than speculated:
//
//   - asymmetric: different actuation mechanisms for voltage-high and
//     voltage-low emergencies;
//   - pid: a textbook P-I-D controller compared against threshold control
//     under the compute latency the paper predicts it would add;
//   - ramp-policy: the greedy low-to-high transition policy of Section 2.3
//     against a pessimistic slow-reactivation policy;
//   - ablation-gating: sensitivity of the whole result to the conditional
//     clock-gating style (the idle-power fraction), Wattch's cc1/cc2/cc3
//     spectrum.

import (
	"fmt"
	"io"

	"didt/internal/actuator"
	"didt/internal/control"
	"didt/internal/core"
	"didt/internal/pdn"
	"didt/internal/power"
	"didt/internal/report"
)

// ------------------------------------------------------- asymmetric (§6)

// AsymmetricPoint compares one responder on the stressmark.
type AsymmetricPoint struct {
	Label       string
	PerfLossPct float64
	EnergyPct   float64
	Emergencies uint64
	HighEvents  uint64
}

// AsymmetricStudy compares symmetric wide-scope control against the
// Section 6 asymmetric pairing on the stressmark.
type AsymmetricStudy struct {
	Delay  int
	Points []AsymmetricPoint
}

func asymmetricStudy(cfg Config) (*AsymmetricStudy, error) {
	cfg = cfg.withDefaults()
	return memoized("asymmetric", cfg, func() (*AsymmetricStudy, error) {
		const delay = 2
		prog := cfg.stressProgram()
		base, err := cfg.uncontrolledFull(prog, 2)
		if err != nil {
			return nil, err
		}
		responders := []actuator.Responder{
			actuator.FUDL1IL1,
			actuator.GateWideFireNarrow,
			actuator.Asymmetric{Name: "gate FU/DL1, fire FU/DL1/IL1", Low: actuator.FUDL1, High: actuator.FUDL1IL1},
		}
		points, err := sweep(cfg, responders, func(r actuator.Responder) (AsymmetricPoint, error) {
			opts := cfg.baseOptions(2)
			opts.Spec.Control.Enabled = true
			opts.Responder = r
			opts.Spec.Sensor.DelayCycles = delay
			opts.Spec.Budget.MaxCycles = cfg.Cycles * 4
			res, err := run(prog, opts)
			if err != nil {
				return AsymmetricPoint{}, err
			}
			return AsymmetricPoint{
				Label:       r.Label(),
				PerfLossPct: 100 * (float64(res.Cycles)/float64(base.Cycles) - 1),
				EnergyPct:   100 * (res.Energy/base.Energy - 1),
				Emergencies: res.Emergencies,
				HighEvents:  res.HighEvents,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		return &AsymmetricStudy{Delay: delay, Points: points}, nil
	})
}

func renderAsymmetric(cfg Config, w io.Writer) error {
	st, err := asymmetricStudy(cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Section 6 extension: asymmetric actuation (stressmark, 200%% impedance, delay %d)", st.Delay),
		Headers: []string{"responder", "perf loss (%)", "energy increase (%)", "emergencies", "phantom events"},
	}
	for _, p := range st.Points {
		t.AddRow(p.Label, fmt.Sprintf("%.2f", p.PerfLossPct), fmt.Sprintf("%.2f", p.EnergyPct),
			fmt.Sprintf("%d", p.Emergencies), fmt.Sprintf("%d", p.HighEvents))
	}
	t.Notes = append(t.Notes,
		"asymmetry confines energy-burning phantom firings to the narrow FU scope while keeping wide gating authority for the common voltage-low case")
	t.Render(w)
	return nil
}

// -------------------------------------------------------------- pid (§6)

func pidStudy(cfg Config) ([]control.PIDPoint, error) {
	cfg = cfg.withDefaults()
	return memoized("pid", cfg, func() ([]control.PIDPoint, error) {
		// Envelope measured the same way the coupled system measures it.
		sys, err := core.NewSystem(cfg.stressProgram(), cfg.baseOptions(2))
		if err != nil {
			return nil, err
		}
		iMin, iMax := sys.Envelope()
		net, err := pdn.Calibrate(pdn.Params{IFloor: 0.5 * (iMin + iMax)}, iMin, iMax, 2)
		if err != nil {
			return nil, err
		}
		pm := power.New(power.Params{}, defaultCPUConfig())
		floor, ceil := actuator.Ideal.Envelope(pm)
		solver := control.NewSolver(net)
		// Section 6: a digital P-I-D "would require a series of additions
		// and multiplications ... this would likely increase the control
		// delay" — charge it 3 extra cycles.
		return solver.ComparePID(control.Envelope{
			IMin: iMin, IMax: iMax, Floor: floor, Ceil: ceil, Settle: 2,
		}, 4, 3)
	})
}

func renderPID(cfg Config, w io.Writer) error {
	pts, err := pidStudy(cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Section 6 extension: threshold control vs P-I-D (worst-case waveform, 200% impedance)",
		Headers: []string{"sensor delay", "thr dev (mV)", "thr in band", "thr intervene", "PID delay (+MAC)", "PID dev (mV)", "PID in band", "PID intervene", "best PID gains"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%d", p.Delay),
			fmt.Sprintf("%.1f", p.ThresholdDev*1e3),
			fmt.Sprintf("%v", p.ThresholdOK),
			fmt.Sprintf("%.0f%%", p.ThresholdIntervene*100),
			fmt.Sprintf("%d", p.PIDDelay),
			fmt.Sprintf("%.1f", p.PIDDev*1e3),
			fmt.Sprintf("%v", p.PIDOK),
			fmt.Sprintf("%.0f%%", p.PIDIntervene*100),
			fmt.Sprintf("Kp=%.0f Ki=%.0f Kd=%.0f", p.BestGains.Kp, p.BestGains.Ki, p.BestGains.Kd))
	}
	t.Notes = append(t.Notes,
		"the PID holds tighter voltage but only by overriding the workload's demand on most cycles — a massive performance tax, plus it needs a numeric voltage reading and pays multiply-accumulate latency",
		"threshold control intervenes only near the band edge, which is the paper's entire point")
	t.Render(w)
	return nil
}

// ------------------------------------------------------ ramp-policy (§2.3)

// RampPoint compares greedy vs pessimistic reactivation.
type RampPoint struct {
	Policy      string
	Cycles      uint64
	PerfLossPct float64
	MaxDevMV    float64
	Emergencies uint64
}

func rampStudy(cfg Config) ([]RampPoint, error) {
	cfg = cfg.withDefaults()
	return memoized("ramp-policy", cfg, func() ([]RampPoint, error) {
		prog := cfg.stressProgram()
		var out []RampPoint
		var baseCycles uint64
		for _, ramp := range []int{0, 16, 48} {
			opts := cfg.baseOptions(2)
			opts.Spec.Budget.MaxCycles = cfg.Cycles * 4
			opts.Spec.Control.PessimisticRamp = ramp
			res, err := run(prog, opts)
			if err != nil {
				return nil, err
			}
			name := "greedy (paper default)"
			if ramp > 0 {
				name = fmt.Sprintf("pessimistic ramp %d cycles", ramp)
			}
			if ramp == 0 {
				baseCycles = res.Cycles
			}
			dev := res.VNominal - res.MinV
			if up := res.MaxV - res.VNominal; up > dev {
				dev = up
			}
			out = append(out, RampPoint{
				Policy:      name,
				Cycles:      res.Cycles,
				PerfLossPct: 100 * (float64(res.Cycles)/float64(baseCycles) - 1),
				MaxDevMV:    dev * 1e3,
				Emergencies: res.Emergencies,
			})
		}
		return out, nil
	})
}

func renderRampPolicy(cfg Config, w io.Writer) error {
	pts, err := rampStudy(cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Section 2.3 ablation: greedy vs pessimistic low-to-high transitions (stressmark, 200% impedance, no controller)",
		Headers: []string{"policy", "cycles", "perf loss (%)", "max deviation (mV)", "emergencies"},
	}
	for _, p := range pts {
		t.AddRow(p.Policy, fmt.Sprintf("%d", p.Cycles), fmt.Sprintf("%.2f", p.PerfLossPct),
			fmt.Sprintf("%.1f", p.MaxDevMV), fmt.Sprintf("%d", p.Emergencies))
	}
	t.Notes = append(t.Notes,
		"slow reactivation trades steady performance loss for a softer current edge",
		"the paper's argument: stay greedy and let the threshold controller intervene only when needed")
	t.Render(w)
	return nil
}

// --------------------------------------------------- ablation-gating (cc*)

// GatingAblationPoint measures one idle-fraction setting.
type GatingAblationPoint struct {
	IdleFraction float64
	IMin, IMax   float64
	StressDevMV  float64
	Emergencies  uint64
}

func gatingAblation(cfg Config) ([]GatingAblationPoint, error) {
	cfg = cfg.withDefaults()
	return memoized("ablation-gating", cfg, func() ([]GatingAblationPoint, error) {
		prog := cfg.stressProgram()
		return sweep(cfg, []float64{0.05, 0.10, 0.25, 0.50}, func(idle float64) (GatingAblationPoint, error) {
			opts := cfg.baseOptions(2)
			opts.Spec.Power = power.Params{IdleFraction: idle}
			res, err := run(prog, opts)
			if err != nil {
				return GatingAblationPoint{}, err
			}
			dev := res.VNominal - res.MinV
			if up := res.MaxV - res.VNominal; up > dev {
				dev = up
			}
			return GatingAblationPoint{
				IdleFraction: idle,
				IMin:         res.IMin,
				IMax:         res.IMax,
				StressDevMV:  dev * 1e3,
				Emergencies:  res.Emergencies,
			}, nil
		})
	})
}

func renderGatingAblation(cfg Config, w io.Writer) error {
	pts, err := gatingAblation(cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Ablation: conditional clock-gating style (idle-power fraction) vs dI/dt severity",
		Headers: []string{"idle fraction", "iMin (A)", "iMax (A)", "stressmark max dev (mV)", "emergencies"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%.0f%%", p.IdleFraction*100),
			fmt.Sprintf("%.1f", p.IMin), fmt.Sprintf("%.1f", p.IMax),
			fmt.Sprintf("%.1f", p.StressDevMV), fmt.Sprintf("%d", p.Emergencies))
	}
	t.Notes = append(t.Notes,
		"aggressive clock gating (low idle fraction) widens the current envelope — the paper's opening observation that power savings worsen dI/dt",
		"the target impedance is recalibrated per envelope, so severity reflects the waveform, not just the range")
	t.Render(w)
	return nil
}
