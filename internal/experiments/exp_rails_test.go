package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRailsFamilyRegistered(t *testing.T) {
	reg := Registry()
	for _, id := range []string{"rails-emergencies", "rails-resonance", "rails-thresholds", "rails-dvs"} {
		if _, ok := reg[id]; !ok {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestRailsEmergenciesShape(t *testing.T) {
	r, err := RailsEmergencies(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Two configured benchmarks plus the stressmark.
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row.PerRail) != len(r.Rails) {
			t.Fatalf("%s: %d per-rail entries, want %d", row.Name, len(row.PerRail), len(r.Rails))
		}
		max, sum := 0.0, 0.0
		for _, f := range row.PerRail {
			sum += f
			if f > max {
				max = f
			}
		}
		if row.Aggregate < max || row.Aggregate > sum {
			t.Errorf("%s: aggregate %g outside [max %g, sum %g]", row.Name, row.Aggregate, max, sum)
		}
	}
	if r.Rows[len(r.Rows)-1].Name != "stressmark" {
		t.Errorf("last row %q, want stressmark", r.Rows[len(r.Rows)-1].Name)
	}
}

func TestRailsResonanceShape(t *testing.T) {
	r, err := RailsResonance(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Ks[0] != 0 {
		t.Fatal("sweep must include the uncoupled baseline")
	}
	// Zero coupling -> zero transfer: the victim draws constant floor
	// current, so any droop must cross the domain boundary.
	for si, d := range r.DroopMV[0] {
		if d > 1e-9 {
			t.Errorf("K=0 scale %g: droop %g mV, want 0", r.Scales[si], d)
		}
	}
	// Transfer grows with coupling strength at every stimulus period.
	resIdx := -1
	for i, s := range r.Scales {
		if s == 1.0 {
			resIdx = i
		}
	}
	for si := range r.Scales {
		for ki := 1; ki < len(r.Ks); ki++ {
			if r.DroopMV[ki][si] <= r.DroopMV[ki-1][si] {
				t.Errorf("scale %g: droop not increasing in K (%g -> %g)",
					r.Scales[si], r.DroopMV[ki-1][si], r.DroopMV[ki][si])
			}
		}
	}
	// And peaks at the resonant period for any nonzero coupling.
	for ki := 1; ki < len(r.Ks); ki++ {
		for si := range r.Scales {
			if si != resIdx && r.DroopMV[ki][si] > r.DroopMV[ki][resIdx] {
				t.Errorf("K=%g: droop at %gx (%g mV) exceeds resonance (%g mV)",
					r.Ks[ki], r.Scales[si], r.DroopMV[ki][si], r.DroopMV[ki][resIdx])
			}
		}
	}
}

func TestRailsThresholdsShape(t *testing.T) {
	r, err := RailsThresholds(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Three mechanisms x three rails.
	if len(r.Rows) != 9 {
		t.Fatalf("rows %d, want 9", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Low >= row.High {
			t.Errorf("%s/%s: thresholds inverted [%g, %g]", row.Mechanism, row.Rail, row.Low, row.High)
		}
		if row.IMin <= 0 || row.IMax <= row.IMin {
			t.Errorf("%s/%s: envelope [%g, %g]", row.Mechanism, row.Rail, row.IMin, row.IMax)
		}
	}
}

func TestRailsDVSRuns(t *testing.T) {
	r, err := RailsDVS(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.GateOnly.Rails) != 3 || len(r.GateDVS.Rails) != 3 {
		t.Fatalf("rail results %d/%d, want 3/3", len(r.GateOnly.Rails), len(r.GateDVS.Rails))
	}
	if r.GateOnly.DVSStepDowns != 0 {
		t.Error("gate-only run reports DVS activity")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "DVS step downs") {
		t.Error("render missing DVS counters")
	}
}

// TestRailsFamilyParallelDeterminism extends the byte-identity contract to
// the multi-rail family: rendered output at one worker equals rendered
// output at eight.
func TestRailsFamilyParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism comparison is slow")
	}
	ids := []string{"rails-emergencies", "rails-resonance", "rails-thresholds", "rails-dvs"}
	reg := Registry()
	render := func(parallel int) []byte {
		resetAllCaches()
		cfg := tinyConfig()
		cfg.Parallel = parallel
		var buf bytes.Buffer
		for _, id := range ids {
			if err := reg[id](cfg, &buf); err != nil {
				t.Fatalf("parallel=%d %s: %v", parallel, id, err)
			}
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("rails family output differs across worker counts (%d vs %d bytes)", len(serial), len(parallel))
	}
}
