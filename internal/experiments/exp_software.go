package experiments

import (
	"fmt"
	"io"

	"didt/internal/report"
	"didt/internal/workload"
)

// SoftwarePoint compares one scheduling variant of the stressmark.
type SoftwarePoint struct {
	Variant     string
	Cycles      uint64
	PerfLossPct float64
	MaxDevMV    float64
	Emergencies uint64
}

// softwareStudy reproduces the related-work software mitigation (Toburen's
// dI/dt-aware scheduling, Pant et al.'s gradual power stepping): the same
// burst instructions re-scheduled into short dependence chains so current
// ramps instead of stepping.
func softwareStudy(cfg Config) ([]SoftwarePoint, error) {
	cfg = cfg.withDefaults()
	return memoized("software-scheduling", cfg, func() ([]SoftwarePoint, error) {
		var out []SoftwarePoint
		var baseCycles uint64
		for _, smoothed := range []bool{false, true} {
			prog := workload.Stressmark(workload.StressmarkParams{
				Iterations:    cfg.StressIter,
				SmoothedBurst: smoothed,
			})
			res, err := cfg.uncontrolledFull(prog, 2)
			if err != nil {
				return nil, err
			}
			name := "baseline schedule"
			if smoothed {
				name = "dI/dt-aware schedule (chained burst)"
			} else {
				baseCycles = res.Cycles
			}
			dev := res.VNominal - res.MinV
			if up := res.MaxV - res.VNominal; up > dev {
				dev = up
			}
			out = append(out, SoftwarePoint{
				Variant:     name,
				Cycles:      res.Cycles,
				PerfLossPct: 100 * (float64(res.Cycles)/float64(baseCycles) - 1),
				MaxDevMV:    dev * 1e3,
				Emergencies: res.Emergencies,
			})
		}
		return out, nil
	})
}

func renderSoftwareScheduling(cfg Config, w io.Writer) error {
	pts, err := softwareStudy(cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Related-work extension: software dI/dt mitigation by instruction scheduling (stressmark, 200% impedance, no controller)",
		Headers: []string{"schedule", "cycles", "perf loss (%)", "max deviation (mV)", "emergencies"},
	}
	for _, p := range pts {
		t.AddRow(p.Variant, fmt.Sprintf("%d", p.Cycles), fmt.Sprintf("%.2f", p.PerfLossPct),
			fmt.Sprintf("%.1f", p.MaxDevMV), fmt.Sprintf("%d", p.Emergencies))
	}
	t.Notes = append(t.Notes,
		"chaining smears the burst's work into the divide stalls: the current swing collapses (and this kernel even speeds up, since the baseline wasted the stall cycles)",
		"the catch the paper identifies: the compiler must know the package's resonant timing and re-schedule every binary, and it cannot guard code it never saw — hardware threshold control is workload-independent")
	t.Render(w)
	return nil
}
