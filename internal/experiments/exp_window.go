package experiments

import (
	"fmt"
	"io"

	"didt/internal/cpu"
	"didt/internal/report"
)

// WindowPoint measures one instruction-window size.
type WindowPoint struct {
	RUUSize     int
	IPC         float64
	MaxDevMV    float64
	Emergencies uint64
}

// windowAblation sweeps the out-of-order window size — a knob the paper's
// framing (Section 3: "natural variances in ILP") implies but never
// isolates. For resonance-tuned code the measurement shows the deep window
// amplifying the swing (the dependence-released burst issues at full
// width), while small windows throttle the burst and shave it.
func windowAblation(cfg Config) ([]WindowPoint, error) {
	cfg = cfg.withDefaults()
	return memoized("ablation-window", cfg, func() ([]WindowPoint, error) {
		prog, progKey := cfg.stressProgramKeyed()
		ruus := []int{32, 64, 128, 256}
		jobs := make([]runJob, len(ruus))
		for i, ruu := range ruus {
			opts := cfg.baseOptions(2)
			opts.Spec.CPU = cpu.Config{RUUSize: ruu, LSQSize: ruu / 2}
			jobs[i] = runJob{prog: prog, progKey: progKey, opts: opts}
		}
		results, err := cfg.runJobs(jobs)
		if err != nil {
			return nil, err
		}
		points := make([]WindowPoint, len(ruus))
		for i, res := range results {
			dev := res.VNominal - res.MinV
			if up := res.MaxV - res.VNominal; up > dev {
				dev = up
			}
			points[i] = WindowPoint{
				RUUSize:     ruus[i],
				IPC:         res.IPC(),
				MaxDevMV:    dev * 1e3,
				Emergencies: res.Emergencies,
			}
		}
		return points, nil
	})
}

func renderWindowAblation(cfg Config, w io.Writer) error {
	pts, err := windowAblation(cfg)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Ablation: out-of-order window size vs dI/dt severity (stressmark, 200% impedance)",
		Headers: []string{"RUU size", "IPC", "max deviation (mV)", "emergencies"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%d", p.RUUSize), fmt.Sprintf("%.2f", p.IPC),
			fmt.Sprintf("%.1f", p.MaxDevMV), fmt.Sprintf("%d", p.Emergencies))
	}
	t.Notes = append(t.Notes,
		"for resonance-tuned code the deep window is an amplifier, not a filter: it lets the dependence-released burst issue at full width, so the Table 1 machine's 256-entry window is itself part of why the stressmark bites",
		"small windows throttle the burst (lower IPC) and shave the swing — performance features and dI/dt severity travel together, the paper's opening theme")
	t.Render(w)
	return nil
}
