package pdn

import (
	"math"
	"math/rand"
	"testing"
)

// TestPeekMatchesNaiveReference pins the shared dotRing walk against an
// inline naive convolution that tests for wrap at every tap, at several
// ring positions including pos == 0 (where Peek's history walk starts on
// the wrapped half). This is the regression test for deduplicating Peek's
// hand-copied ring walk with Step.
func TestPeekMatchesNaiveReference(t *testing.T) {
	n := mustCalibrated(t, 2)
	k := n.kernel
	sim := n.NewSimulator()
	naive := func(current float64) float64 {
		// Kernel tap 0 multiplies the candidate sample; tap i the sample
		// written i cycles ago.
		drop := k[0] * (current - n.params.IFloor)
		for i := 1; i < len(k); i++ {
			idx := sim.pos - i
			if idx < 0 {
				idx += len(sim.hist)
			}
			drop += k[i] * sim.hist[idx]
		}
		return n.params.VNominal - drop
	}
	rng := rand.New(rand.NewSource(11))
	for c := 0; c < 2*len(k)+10; c++ {
		probe := 10 + 50*rng.Float64()
		want := naive(probe)
		if got := sim.Peek(probe); math.Abs(got-want) > 1e-12 {
			t.Fatalf("cycle %d (pos %d): Peek=%g naive=%g", c, sim.pos, probe, want)
		}
		if sim.pos == 0 {
			// Exercise the all-wrapped walk explicitly.
			if got := sim.Peek(probe); math.Abs(got-want) > 1e-12 {
				t.Fatalf("pos=0: Peek=%g naive=%g", got, want)
			}
		}
		sim.Step(10 + 50*rng.Float64())
	}
}

// TestConvolveVoltagesMatchesStreaming is the FFT-vs-streaming property
// sweep: random RLC parameters, kernel truncation lengths, and trace
// lengths straddling the overlap-save block boundary (shorter than one
// block, exactly one block, one off either side, many blocks) must agree
// with the streaming Simulator to <= 1e-9 V.
func TestConvolveVoltagesMatchesStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 8; trial++ {
		p := Params{
			ClockHz:      2e9 + 2e9*rng.Float64(),
			ResonantHz:   30e6 + 70e6*rng.Float64(),
			DCResistance: (0.3 + 0.5*rng.Float64()) * 1e-3,
			IFloor:       5 + 10*rng.Float64(),
			TruncRelTol:  []float64{1e-6, 1e-4, 1e-3}[trial%3],
			MaxKernelLen: []int{4096, 512, 128}[trial%3],
		}
		net, err := Calibrate(p, p.IFloor, p.IFloor+40+20*rng.Float64(), 1+3*rng.Float64())
		if err != nil {
			t.Fatalf("trial %d: Calibrate: %v", trial, err)
		}
		step := net.fftk.BlockStep()
		m := net.KernelLen()
		for _, length := range []int{1, m - 1, m, m + 1, step - 1, step, step + 1, 2*step + 37} {
			if length < 1 {
				continue
			}
			cur := make([]float64, length)
			for i := range cur {
				cur[i] = p.IFloor + 50*rng.Float64()
			}
			got := make([]float64, length)
			net.ConvolveVoltages(got, cur)
			ref := net.NewSimulator()
			worst := 0.0
			for i, c := range cur {
				if d := math.Abs(got[i] - ref.Step(c)); d > worst {
					worst = d
				}
			}
			ref.Release()
			if worst > 1e-9 {
				t.Errorf("trial %d m=%d len=%d: max |FFT-streaming| = %g", trial, m, length, worst)
			}
		}
	}
}

// TestConvolveVoltagesMatchesLinsys pins the FFT path against the analytic
// step response: for a current step of height dI applied at cycle 0, the
// voltage drop at cycle c is dI * StepResponse((c+1)*dt) exactly (kernel
// tap k is the step-response increment over [k*dt, (k+1)*dt], so the taps
// telescope). Comparison stops at the kernel length, where truncation
// starts — within it, the only error is FFT round-off.
func TestConvolveVoltagesMatchesLinsys(t *testing.T) {
	n := mustCalibrated(t, 2)
	p := n.Params()
	dI := 35.0
	length := n.KernelLen() + 200 // > kernel, so the FFT path is taken
	cur := make([]float64, length)
	for i := range cur {
		cur[i] = p.IFloor + dI
	}
	got := make([]float64, length)
	n.ConvolveVoltages(got, cur)
	dt := 1 / p.ClockHz
	worst := 0.0
	for c := 0; c < n.KernelLen(); c++ {
		want := p.VNominal - dI*n.System().Step(float64(c+1)*dt)
		if d := math.Abs(got[c] - want); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		t.Errorf("max |FFT-analytic| = %g over first %d cycles", worst, n.KernelLen())
	}
}

// TestBatchSimulatorBitIdentical drives every lane of a BatchSimulator
// with its own current trace and requires each lane's voltage sequence to
// be bit-identical (==, not approximately) to a solo Simulator run.
func TestBatchSimulatorBitIdentical(t *testing.T) {
	n := mustCalibrated(t, 2)
	rng := rand.New(rand.NewSource(13))
	for _, w := range []int{1, 3, 4, 8} {
		b := n.NewBatchSimulator(w)
		solo := make([]*Simulator, w)
		for l := range solo {
			solo[l] = n.NewSimulator()
		}
		currents := make([]float64, w)
		volts := make([]float64, w)
		cycles := 2*n.KernelLen() + 17
		for c := 0; c < cycles; c++ {
			for l := 0; l < w; l++ {
				currents[l] = 10 + 50*rng.Float64()
			}
			b.Step(currents, volts)
			for l := 0; l < w; l++ {
				if want := solo[l].Step(currents[l]); volts[l] != want {
					t.Fatalf("w=%d cycle %d lane %d: batch %v solo %v", w, c, l, volts[l], want)
				}
			}
		}
		if b.Cycles() != cycles {
			t.Errorf("w=%d: Cycles()=%d want %d", w, b.Cycles(), cycles)
		}
		b.Reset()
		for l := range solo {
			solo[l].Release()
		}
		// After Reset, quiescent input must give nominal voltage.
		for l := 0; l < w; l++ {
			currents[l] = n.Params().IFloor
		}
		b.Step(currents, volts)
		for l := 0; l < w; l++ {
			if math.Abs(volts[l]-n.Params().VNominal) > 1e-12 {
				t.Errorf("after Reset lane %d: V=%g", l, volts[l])
			}
		}
	}
}

// TestExtractLaneContinuesBitIdentical runs a batch past the ring wrap,
// extracts each lane into a solo Simulator, and requires the continuation
// to stay bit-identical (==) to a reference that never left the solo path.
// This is the contract RunBatch's drain migration relies on.
func TestExtractLaneContinuesBitIdentical(t *testing.T) {
	n := mustCalibrated(t, 2)
	rng := rand.New(rand.NewSource(14))
	const w = 5
	b := n.NewBatchSimulator(w)
	ref := make([]*Simulator, w)
	for l := range ref {
		ref[l] = n.NewSimulator()
	}
	currents := make([]float64, w)
	volts := make([]float64, w)
	split := n.KernelLen() + 3 // past one full wrap, write position mid-ring
	for c := 0; c < split; c++ {
		for l := 0; l < w; l++ {
			currents[l] = 10 + 50*rng.Float64()
		}
		b.Step(currents, volts)
		for l := 0; l < w; l++ {
			if want := ref[l].Step(currents[l]); volts[l] != want {
				t.Fatalf("pre-split cycle %d lane %d: %v != %v", c, l, volts[l], want)
			}
		}
	}
	for l := 0; l < w; l++ {
		solo := n.NewSimulator()
		b.ExtractLane(l, solo)
		if solo.Cycles() != ref[l].Cycles() {
			t.Fatalf("lane %d: extracted cycle count %d want %d", l, solo.Cycles(), ref[l].Cycles())
		}
		for c := 0; c < n.KernelLen()+9; c++ {
			cur := 10 + 50*rng.Float64()
			if got, want := solo.Step(cur), ref[l].Step(cur); got != want {
				t.Fatalf("lane %d post-split cycle %d: %v != %v", l, c, got, want)
			}
		}
		solo.Release()
		ref[l].Release()
	}
}

func TestHotPathsZeroAlloc(t *testing.T) {
	n := mustCalibrated(t, 2)
	sim := n.NewSimulator()
	if a := testing.AllocsPerRun(100, func() { sim.Step(40); sim.Peek(55) }); a != 0 {
		t.Errorf("Simulator.Step/Peek allocate %v per run; want 0", a)
	}
	b := n.NewBatchSimulator(8)
	currents := make([]float64, 8)
	volts := make([]float64, 8)
	for i := range currents {
		currents[i] = 40
	}
	if a := testing.AllocsPerRun(100, func() { b.Step(currents, volts) }); a != 0 {
		t.Errorf("BatchSimulator.Step allocates %v per run; want 0", a)
	}
	// Steady state of the FFT path (pool warmed by the first call).
	cur := make([]float64, 3*n.KernelLen())
	dst := make([]float64, len(cur))
	for i := range cur {
		cur[i] = 40
	}
	n.ConvolveVoltages(dst, cur)
	if a := testing.AllocsPerRun(10, func() { n.ConvolveVoltages(dst, cur) }); a > 1 {
		t.Errorf("warm ConvolveVoltages allocates %v per run; want <= 1 (pool interface box)", a)
	}
}

func benchNet(b *testing.B) *Network {
	b.Helper()
	n, err := Calibrate(Params{IFloor: 10}, 10, 60, 2)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkStep is the ci.sh allocation gate for the streaming convolver.
func BenchmarkStep(b *testing.B) {
	n := benchNet(b)
	sim := n.NewSimulator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step(40)
	}
}

// BenchmarkBatchStep reports per-lane-cycle cost of the SoA kernel; divide
// by 8 lanes when comparing against BenchmarkStep.
func BenchmarkBatchStep(b *testing.B) {
	n := benchNet(b)
	bs := n.NewBatchSimulator(8)
	currents := make([]float64, 8)
	volts := make([]float64, 8)
	for i := range currents {
		currents[i] = 40
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.Step(currents, volts)
	}
}

// BenchmarkVoltageTraceFFT measures the open-loop block convolver on a
// quick-sweep-sized trace (90k cycles); compare per cycle against
// BenchmarkStep for the FFT speedup.
func BenchmarkVoltageTraceFFT(b *testing.B) {
	n := benchNet(b)
	cur := make([]float64, 90000)
	for i := range cur {
		cur[i] = 10 + float64(i%50)
	}
	dst := make([]float64, len(cur))
	n.ConvolveVoltages(dst, cur) // warm the scratch pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.ConvolveVoltages(dst, cur)
	}
}

// BenchmarkBatchStep4 reports the cost of the solver-width specialization;
// divide by 4 lanes when comparing against BenchmarkStep.
func BenchmarkBatchStep4(b *testing.B) {
	n := benchNet(b)
	bs := n.NewBatchSimulator(4)
	currents := make([]float64, 4)
	volts := make([]float64, 4)
	for i := range currents {
		currents[i] = 40
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.Step(currents, volts)
	}
}
