// Package pdn models the processor power-delivery network and computes the
// supply voltage seen by the die from a per-cycle current trace.
//
// The network itself is the second-order linear system of package linsys,
// configured the way the paper configures it (Section 2.2): DC resistance
// 0.5 mΩ, resonant frequency 50 MHz, nominal supply 1.0 V, 3 GHz CPU clock
// (so the resonant period is 60 CPU cycles). The supply voltage is
//
//	V[n] = Vnom - sum_k h[k] * (I[n-k] - Ifloor)
//
// where h is the sampled impulse response and Ifloor is the current level
// at which the voltage regulator holds the supply at exactly Vnom (the
// paper assumes the regulator nulls the drop at minimum processor power).
//
// Network is immutable after construction; Simulator carries the mutable
// convolution state so that one Network can serve many concurrent runs.
package pdn

import (
	"fmt"
	"math"
	"sync"

	"didt/internal/fft"
	"didt/internal/linsys"
	"didt/internal/sim"
	"didt/internal/telemetry"
)

// Paper-reference constants (Section 2.2 and Table 1).
const (
	DefaultClockHz      = 3e9    // 3 GHz CPU clock
	DefaultResonantHz   = 50e6   // package resonance
	DefaultDCResistance = 0.5e-3 // 0.5 mOhm
	DefaultVNominal     = 1.0    // volts
	DefaultTolerance    = 0.05   // +-5% emergency band
)

// Params describes a power delivery network plus the electrical environment
// it serves.
type Params struct {
	ClockHz      float64 // CPU clock; sets the convolution sample interval
	ResonantHz   float64 // PDN resonant frequency
	DCResistance float64 // ohms
	PeakZ        float64 // peak (target-relative) impedance, ohms
	VNominal     float64 // nominal supply voltage
	Tolerance    float64 // allowed fractional deviation (0.05 = +-5%)
	IFloor       float64 // amperes at which regulator holds exactly VNominal

	// TruncRelTol controls impulse-response truncation: sampling stops when
	// the response envelope decays below this fraction of its initial
	// value. Zero selects 1e-6.
	TruncRelTol float64
	// MaxKernelLen caps the sampled kernel length. Zero selects 4096.
	MaxKernelLen int
}

// WithDefaults fills zero fields from the paper-reference constants. The
// spec layer resolves the PDN section of a RunSpec through this; New and
// Calibrate apply it again idempotently for direct users.
func (p Params) WithDefaults() Params {
	if p.ClockHz == 0 {
		p.ClockHz = DefaultClockHz
	}
	if p.ResonantHz == 0 {
		p.ResonantHz = DefaultResonantHz
	}
	if p.DCResistance == 0 {
		p.DCResistance = DefaultDCResistance
	}
	if p.VNominal == 0 {
		p.VNominal = DefaultVNominal
	}
	if p.Tolerance == 0 {
		p.Tolerance = DefaultTolerance
	}
	if p.TruncRelTol == 0 {
		p.TruncRelTol = 1e-6
	}
	if p.MaxKernelLen == 0 {
		p.MaxKernelLen = 4096
	}
	return p
}

// Network is an immutable, sampled PDN ready for voltage simulation.
type Network struct {
	params Params
	sys    *linsys.SecondOrder
	kernel []float64 // impulse response sampled at the CPU clock, scaled by dt
	fftk   *fft.Kernel

	simPool sync.Pool // recycled Simulator history buffers ([]float64)
	fftPool sync.Pool // recycled fft.Scratch + deviation buffers (*fftWork)
}

// sampled pairs the derived artifacts a Network shares with every other
// Network built from the same parameters: the analytic system, the sampled
// impulse-response kernel, and the kernel's frozen FFT spectrum for the
// open-loop block convolver. All are immutable after construction.
type sampled struct {
	sys    *linsys.SecondOrder
	kernel []float64
	fftk   *fft.Kernel
}

// kernelCache memoizes kernel sampling across Networks. A sweep
// recalibrates the same handful of (envelope, impedance) points hundreds
// of times, and re-deriving and re-sampling the 4096-tap kernel each run
// dominated Network construction. The key is the fingerprint of the
// resolved (calibrated) Params — the same sub-hash that section
// contributes to spec.RunSpec.Key — and sampling is a pure function of the
// params, so cached and fresh kernels are bit-identical.
var kernelCache = sim.NewCache[string, sampled](512)

func init() {
	kernelCache.RegisterMetrics(telemetry.Default(), "cache.pdn_kernel")
	sim.RegisterCacheCapacity("pdn_kernel", 512, kernelCache.SetCapacity)
}

// ResetKernelCache empties the shared impulse-response cache (benchmarks
// use it to measure cold-start cost).
func ResetKernelCache() { kernelCache.Reset() }

// KernelCacheStats reports the shared impulse-response cache's
// effectiveness (hits, misses, evictions, residency).
func KernelCacheStats() sim.CacheStats { return kernelCache.Stats() }

// New constructs a Network. Zero-valued Params fields take the paper's
// defaults; PeakZ must be positive (use Calibrate to derive it from a
// current envelope).
func New(p Params) (*Network, error) {
	p = p.WithDefaults()
	if p.PeakZ <= 0 {
		return nil, fmt.Errorf("pdn: PeakZ must be positive (got %g); use Calibrate", p.PeakZ)
	}
	sk, err := kernelCache.Get(sim.Fingerprint(p), func() (sampled, error) {
		sys, err := linsys.FromPeak(p.DCResistance, p.ResonantHz, p.PeakZ)
		if err != nil {
			return sampled{}, fmt.Errorf("pdn: %w", err)
		}
		kernel := sys.SampleImpulse(1/p.ClockHz, p.TruncRelTol, p.MaxKernelLen)
		if len(kernel) == 0 {
			return sampled{}, fmt.Errorf("pdn: empty impulse-response kernel")
		}
		fftk, err := fft.NewKernel(kernel, 0)
		if err != nil {
			return sampled{}, fmt.Errorf("pdn: %w", err)
		}
		return sampled{sys: sys, kernel: kernel, fftk: fftk}, nil
	})
	if err != nil {
		return nil, err
	}
	telemetry.Default().Counter("pdn.networks_built_total").Inc()
	return &Network{params: p, sys: sk.sys, kernel: sk.kernel, fftk: sk.fftk}, nil
}

// Calibrate sets the network's peak impedance from the de facto target-
// impedance rule the paper describes in Section 2.1: the target impedance
// is the value that keeps the voltage within its allowed range for the
// maximum current swing,
//
//	Z_target = (Tolerance * VNominal) / (iMax - iMin).
//
// impedancePct then scales it: 1.0 reproduces the 100% column of Table 2
// (the network meets spec), 2.0 the cheaper 200% network, and so on.
// Note the resonant worst case stays comfortably inside the band at 100%
// (the square wave's fundamental carries 4/pi of half the swing), which is
// why Table 2's leftmost column has zero emergencies by definition while
// the 200% network is where the stressmark begins to break through.
func Calibrate(p Params, iMin, iMax, impedancePct float64) (*Network, error) {
	p = p.WithDefaults()
	if iMax <= iMin {
		return nil, fmt.Errorf("pdn: iMax (%g) must exceed iMin (%g)", iMax, iMin)
	}
	if impedancePct <= 0 {
		return nil, fmt.Errorf("pdn: impedancePct must be positive (got %g)", impedancePct)
	}
	zTarget := p.Tolerance * p.VNominal / (iMax - iMin)
	p.PeakZ = zTarget * impedancePct
	telemetry.Default().Counter("pdn.calibrations_total").Inc()
	if p.PeakZ <= p.DCResistance {
		return nil, fmt.Errorf("pdn: target impedance %.3gmΩ does not exceed DC resistance %.3gmΩ; reduce DCResistance or the current envelope", p.PeakZ*1e3, p.DCResistance*1e3)
	}
	return New(p)
}

// Params returns the parameters the network was built with (PeakZ reflects
// any calibration).
func (n *Network) Params() Params { return n.params }

// System exposes the underlying second-order model.
func (n *Network) System() *linsys.SecondOrder { return n.sys }

// KernelLen reports the truncated impulse-response length in cycles.
func (n *Network) KernelLen() int { return len(n.kernel) }

// ResonantPeriodCycles returns the resonant period expressed in CPU cycles,
// rounded to the nearest integer (60 for the paper's defaults).
func (n *Network) ResonantPeriodCycles() int {
	return int(math.Round(n.params.ClockHz / n.params.ResonantHz))
}

// VMin and VMax return the emergency boundaries.
func (n *Network) VMin() float64 { return n.params.VNominal * (1 - n.params.Tolerance) }
func (n *Network) VMax() float64 { return n.params.VNominal * (1 + n.params.Tolerance) }

// VoltageTrace convolves an entire current trace (amperes per cycle) and
// returns the per-cycle supply voltage. It is a convenience for offline
// analysis; closed-loop simulation uses Simulator.
func (n *Network) VoltageTrace(current []float64) []float64 {
	out := make([]float64, len(current))
	n.ConvolveVoltages(out, current)
	return out
}

// fftWork is the pooled per-goroutine state for one block convolution: the
// FFT scratch plus the deviation buffer that decouples the convolver's
// input from its output (overlap-save re-reads m-1 samples of history per
// block, so convolving in place would read already-overwritten values).
type fftWork struct {
	scratch *fft.Scratch
	dev     []float64
}

// ConvolveVoltages computes the supply voltage for an entire current trace
// at once, writing into dst (which must have length >= len(current) and
// may alias current). Traces at least one kernel length long go through
// the overlap-save FFT block convolver — O(log taps) per cycle instead of
// O(taps) — while shorter traces use the streaming Simulator, whose output
// is the bit-exact reference. The FFT path agrees with streaming to
// <= 1e-9 V (pinned by the property tests in this package); callers that
// need bit-exactness against Step must use a Simulator directly.
//
// The history before the trace is quiescent (I = IFloor, V = VNominal),
// matching a fresh Simulator.
func (n *Network) ConvolveVoltages(dst, current []float64) {
	if len(current) < len(n.kernel) {
		s := n.NewSimulator()
		for i, c := range current {
			dst[i] = s.Step(c)
		}
		s.Release()
		return
	}
	var w *fftWork
	if pooled, ok := n.fftPool.Get().(*fftWork); ok {
		w = pooled
	} else {
		w = &fftWork{scratch: n.fftk.NewScratch()}
	}
	if cap(w.dev) < len(current) {
		w.dev = make([]float64, len(current))
	}
	dev := w.dev[:len(current)]
	ifloor := n.params.IFloor
	for i, c := range current {
		dev[i] = c - ifloor
	}
	n.fftk.Convolve(dst, dev, w.scratch)
	vnom := n.params.VNominal
	for i := range dst[:len(current)] {
		dst[i] = vnom - dst[i]
	}
	n.fftPool.Put(w)
}

// WorstCaseDeviation drives the network with a sustained square wave
// between iMin and iMax at the resonant period and returns the maximum
// absolute deviation from nominal once the waveform has built up (it
// simulates long enough for transients to saturate).
func (n *Network) WorstCaseDeviation(iMin, iMax float64) float64 {
	period := n.ResonantPeriodCycles()
	if period < 2 {
		period = 2
	}
	cycles := len(n.kernel) + 20*period
	sim := n.NewSimulator()
	worst := 0.0
	for c := 0; c < cycles; c++ {
		cur := iMin
		if c%period < period/2 {
			cur = iMax
		}
		v := sim.Step(cur)
		if d := math.Abs(v - n.params.VNominal); d > worst {
			worst = d
		}
	}
	return worst
}

// Simulator carries the mutable streaming-convolution state for one run.
// It is not safe for concurrent use; create one per goroutine.
type Simulator struct {
	net  *Network
	hist []float64 // ring buffer of past current deviations (I - IFloor)
	pos  int       // next write index
	n    int       // cycles processed
}

// NewSimulator creates a fresh streaming voltage simulator whose history is
// all at IFloor (quiescent, V = VNominal). History buffers are recycled
// across runs via the network's pool; call Release when done with a
// simulator to return its buffer.
func (n *Network) NewSimulator() *Simulator {
	if h, ok := n.simPool.Get().([]float64); ok && len(h) == len(n.kernel) {
		for i := range h {
			h[i] = 0
		}
		return &Simulator{net: n, hist: h}
	}
	return &Simulator{net: n, hist: make([]float64, len(n.kernel))}
}

// Release returns the simulator's history buffer to the network's pool.
// The simulator must not be used afterwards.
func (s *Simulator) Release() {
	if s.hist == nil {
		return
	}
	s.net.simPool.Put(s.hist)
	s.hist = nil
}

// Step advances one CPU cycle with the given load current (amperes) and
// returns the supply voltage at this cycle.
//
// This is the hottest loop in the repository (kernel-length multiply-adds
// per simulated cycle), so the ring-buffer walk is split into its two
// contiguous halves instead of testing for wrap every tap. The summation
// order is unchanged — newest sample first — so results stay bit-identical
// to the naive loop.
//
//didt:hotpath
func (s *Simulator) Step(current float64) float64 {
	k := s.net.kernel
	h := s.hist
	h[s.pos] = current - s.net.params.IFloor
	drop := dotRing(0, k, h, 0, s.pos)
	s.pos++
	if s.pos == len(h) {
		s.pos = 0
	}
	s.n++
	return s.net.params.VNominal - drop
}

// Peek returns the voltage that would result if the given current were
// applied this cycle, without committing it. Controllers use this for
// lookahead analysis in tests; the closed loop itself never peeks.
//
//didt:hotpath
func (s *Simulator) Peek(current float64) float64 {
	k := s.net.kernel
	h := s.hist
	drop := dotRing(k[0]*(current-s.net.params.IFloor), k, h, 1, s.pos-1)
	return s.net.params.VNominal - drop
}

// dotRing accumulates acc + sum of k[i..] against the ring buffer h walked
// backwards from idx (the slot holding the sample that kernel tap i
// multiplies), wrapping once at the start. The walk is split into its two
// contiguous halves instead of testing for wrap every tap; the summation
// order — ascending kernel index, i.e. newest sample first — is the
// bit-exactness contract Step, Peek and BatchSimulator all share.
//
//didt:hotpath
func dotRing(acc float64, k, h []float64, i, idx int) float64 {
	for ; idx >= 0 && i < len(k); idx-- {
		acc += k[i] * h[idx]
		i++
	}
	for idx = len(h) - 1; i < len(k); idx-- {
		acc += k[i] * h[idx]
		i++
	}
	return acc
}

// Cycles reports how many cycles have been simulated.
func (s *Simulator) Cycles() int { return s.n }

// Lanes is the preferred BatchSimulator width: eight float64 history
// samples per ring slot is one 64-byte cache line, and the width the
// specialized register-accumulator inner loop is built for.
const Lanes = 8

// BatchSimulator advances W independent runs on the same Network in
// lockstep through one structure-of-arrays inner loop. The history buffer
// is laid out slot-major (hist[slot*W + lane]), so each kernel tap touches
// one contiguous W-wide row and the per-tap kernel load plus ring-index
// arithmetic is amortized across all lanes — the sweep engine groups runs
// that share a PDN kernel and steps them through one of these.
//
// Per lane, the accumulation order is exactly Simulator.Step's (ascending
// kernel index), so every lane's voltage sequence is bit-identical to
// running that lane alone on a Simulator. Not safe for concurrent use.
type BatchSimulator struct {
	net  *Network
	w    int
	hist []float64 // len(kernel) * w deviations, slot-major
	acc  []float64 // per-lane accumulators, reused across steps
	pos  int       // next write slot
	n    int       // cycles processed
}

// NewBatchSimulator creates a lockstep simulator for w lanes, all starting
// quiescent (history at IFloor, V = VNominal).
func (n *Network) NewBatchSimulator(w int) *BatchSimulator {
	if w < 1 {
		w = 1
	}
	return &BatchSimulator{
		net:  n,
		w:    w,
		hist: make([]float64, len(n.kernel)*w),
		acc:  make([]float64, w),
	}
}

// Lanes reports the batch width.
func (b *BatchSimulator) Lanes() int { return b.w }

// Cycles reports how many cycles have been simulated.
func (b *BatchSimulator) Cycles() int { return b.n }

// Step advances all lanes one CPU cycle: currents[l] is lane l's load
// current and volts[l] receives its supply voltage. Both slices must have
// length >= Lanes(). Zero allocations.
//
//didt:hotpath
func (b *BatchSimulator) Step(currents, volts []float64) {
	k := b.net.kernel
	w := b.w
	ifloor := b.net.params.IFloor
	row := b.hist[b.pos*w : b.pos*w+w]
	for l := 0; l < w; l++ {
		row[l] = currents[l] - ifloor
	}
	if w == Lanes {
		b.step8(volts)
		return
	}
	if w == 4 {
		b.step4(volts)
		return
	}
	acc := b.acc[:w]
	for l := 0; l < w; l++ {
		acc[l] = 0
	}
	// Same two-half ring walk as Simulator.Step, with the lane loop
	// innermost so each tap's row is one contiguous cache-line-friendly
	// read. Per lane the taps still accumulate in ascending order.
	i := 0
	for idx := b.pos; idx >= 0 && i < len(k); idx-- {
		ki := k[i]
		r := b.hist[idx*w : idx*w+w]
		for l := 0; l < w; l++ {
			acc[l] += ki * r[l]
		}
		i++
	}
	for idx := len(k) - 1; i < len(k); idx-- {
		ki := k[i]
		r := b.hist[idx*w : idx*w+w]
		for l := 0; l < w; l++ {
			acc[l] += ki * r[l]
		}
		i++
	}
	b.pos++
	if b.pos == len(k) {
		b.pos = 0
	}
	b.n++
	vnom := b.net.params.VNominal
	for l := 0; l < w; l++ {
		volts[l] = vnom - acc[l]
	}
}

// step8 is the full-width specialization: eight scalar accumulators live
// in registers across the whole tap walk (the generic loop's slice-based
// accumulators force a store+load per tap), and each tap's 64-byte row is
// one cache line. Accumulation order per lane is identical to the generic
// loop and to Simulator.Step.
//
//didt:hotpath
func (b *BatchSimulator) step8(volts []float64) {
	k := b.net.kernel
	var a0, a1, a2, a3, a4, a5, a6, a7 float64
	i := 0
	for idx := b.pos; idx >= 0 && i < len(k); idx-- {
		ki := k[i]
		r := b.hist[idx*Lanes : idx*Lanes+Lanes : idx*Lanes+Lanes]
		a0 += ki * r[0]
		a1 += ki * r[1]
		a2 += ki * r[2]
		a3 += ki * r[3]
		a4 += ki * r[4]
		a5 += ki * r[5]
		a6 += ki * r[6]
		a7 += ki * r[7]
		i++
	}
	for idx := len(k) - 1; i < len(k); idx-- {
		ki := k[i]
		r := b.hist[idx*Lanes : idx*Lanes+Lanes : idx*Lanes+Lanes]
		a0 += ki * r[0]
		a1 += ki * r[1]
		a2 += ki * r[2]
		a3 += ki * r[3]
		a4 += ki * r[4]
		a5 += ki * r[5]
		a6 += ki * r[6]
		a7 += ki * r[7]
		i++
	}
	b.pos++
	if b.pos == len(k) {
		b.pos = 0
	}
	b.n++
	vnom := b.net.params.VNominal
	volts[0] = vnom - a0
	volts[1] = vnom - a1
	volts[2] = vnom - a2
	volts[3] = vnom - a3
	volts[4] = vnom - a4
	volts[5] = vnom - a5
	volts[6] = vnom - a6
	volts[7] = vnom - a7
}

// step4 is the half-width specialization the threshold solver uses (one
// lane per worst-case scenario): four register accumulators across the tap
// walk, same per-lane accumulation order as the generic loop, step8 and
// Simulator.Step.
//
//didt:hotpath
func (b *BatchSimulator) step4(volts []float64) {
	k := b.net.kernel
	var a0, a1, a2, a3 float64
	i := 0
	for idx := b.pos; idx >= 0 && i < len(k); idx-- {
		ki := k[i]
		r := b.hist[idx*4 : idx*4+4 : idx*4+4]
		a0 += ki * r[0]
		a1 += ki * r[1]
		a2 += ki * r[2]
		a3 += ki * r[3]
		i++
	}
	for idx := len(k) - 1; i < len(k); idx-- {
		ki := k[i]
		r := b.hist[idx*4 : idx*4+4 : idx*4+4]
		a0 += ki * r[0]
		a1 += ki * r[1]
		a2 += ki * r[2]
		a3 += ki * r[3]
		i++
	}
	b.pos++
	if b.pos == len(k) {
		b.pos = 0
	}
	b.n++
	vnom := b.net.params.VNominal
	volts[0] = vnom - a0
	volts[1] = vnom - a1
	volts[2] = vnom - a2
	volts[3] = vnom - a3
}

// ExtractLane copies lane l's ring state into dst, a Simulator on the
// same Network. Both layouts index history by the same slot sequence (slot
// = cycle mod kernel length, identical write position and walk order), so
// after the copy, stepping dst continues lane l's voltage sequence
// bit-identically — the only difference between the two is storage stride.
// RunBatch uses this to let a nearly drained batch finish its last lanes
// on the cheaper per-run path.
func (b *BatchSimulator) ExtractLane(l int, dst *Simulator) {
	for i := range dst.hist {
		dst.hist[i] = b.hist[i*b.w+l]
	}
	dst.pos = b.pos
	dst.n = b.n
}

// Reset returns all lanes to the quiescent state.
func (b *BatchSimulator) Reset() {
	for i := range b.hist {
		b.hist[i] = 0
	}
	b.pos = 0
	b.n = 0
}

// Reset returns the simulator to the quiescent state.
func (s *Simulator) Reset() {
	for i := range s.hist {
		s.hist[i] = 0
	}
	s.pos = 0
	s.n = 0
}
