// Package pdn models the processor power-delivery network and computes the
// supply voltage seen by the die from a per-cycle current trace.
//
// The network itself is the second-order linear system of package linsys,
// configured the way the paper configures it (Section 2.2): DC resistance
// 0.5 mΩ, resonant frequency 50 MHz, nominal supply 1.0 V, 3 GHz CPU clock
// (so the resonant period is 60 CPU cycles). The supply voltage is
//
//	V[n] = Vnom - sum_k h[k] * (I[n-k] - Ifloor)
//
// where h is the sampled impulse response and Ifloor is the current level
// at which the voltage regulator holds the supply at exactly Vnom (the
// paper assumes the regulator nulls the drop at minimum processor power).
//
// Network is immutable after construction; Simulator carries the mutable
// convolution state so that one Network can serve many concurrent runs.
package pdn

import (
	"fmt"
	"math"
	"sync"

	"didt/internal/linsys"
	"didt/internal/sim"
	"didt/internal/telemetry"
)

// Paper-reference constants (Section 2.2 and Table 1).
const (
	DefaultClockHz      = 3e9    // 3 GHz CPU clock
	DefaultResonantHz   = 50e6   // package resonance
	DefaultDCResistance = 0.5e-3 // 0.5 mOhm
	DefaultVNominal     = 1.0    // volts
	DefaultTolerance    = 0.05   // +-5% emergency band
)

// Params describes a power delivery network plus the electrical environment
// it serves.
type Params struct {
	ClockHz      float64 // CPU clock; sets the convolution sample interval
	ResonantHz   float64 // PDN resonant frequency
	DCResistance float64 // ohms
	PeakZ        float64 // peak (target-relative) impedance, ohms
	VNominal     float64 // nominal supply voltage
	Tolerance    float64 // allowed fractional deviation (0.05 = +-5%)
	IFloor       float64 // amperes at which regulator holds exactly VNominal

	// TruncRelTol controls impulse-response truncation: sampling stops when
	// the response envelope decays below this fraction of its initial
	// value. Zero selects 1e-6.
	TruncRelTol float64
	// MaxKernelLen caps the sampled kernel length. Zero selects 4096.
	MaxKernelLen int
}

// WithDefaults fills zero fields from the paper-reference constants. The
// spec layer resolves the PDN section of a RunSpec through this; New and
// Calibrate apply it again idempotently for direct users.
func (p Params) WithDefaults() Params {
	if p.ClockHz == 0 {
		p.ClockHz = DefaultClockHz
	}
	if p.ResonantHz == 0 {
		p.ResonantHz = DefaultResonantHz
	}
	if p.DCResistance == 0 {
		p.DCResistance = DefaultDCResistance
	}
	if p.VNominal == 0 {
		p.VNominal = DefaultVNominal
	}
	if p.Tolerance == 0 {
		p.Tolerance = DefaultTolerance
	}
	if p.TruncRelTol == 0 {
		p.TruncRelTol = 1e-6
	}
	if p.MaxKernelLen == 0 {
		p.MaxKernelLen = 4096
	}
	return p
}

// Network is an immutable, sampled PDN ready for voltage simulation.
type Network struct {
	params Params
	sys    *linsys.SecondOrder
	kernel []float64 // impulse response sampled at the CPU clock, scaled by dt

	simPool sync.Pool // recycled Simulator history buffers ([]float64)
}

// sampled pairs the derived artifacts a Network shares with every other
// Network built from the same parameters: the analytic system and the
// sampled impulse-response kernel. Both are immutable after construction.
type sampled struct {
	sys    *linsys.SecondOrder
	kernel []float64
}

// kernelCache memoizes kernel sampling across Networks. A sweep
// recalibrates the same handful of (envelope, impedance) points hundreds
// of times, and re-deriving and re-sampling the 4096-tap kernel each run
// dominated Network construction. The key is the fingerprint of the
// resolved (calibrated) Params — the same sub-hash that section
// contributes to spec.RunSpec.Key — and sampling is a pure function of the
// params, so cached and fresh kernels are bit-identical.
var kernelCache = sim.NewCache[string, sampled](256)

func init() {
	kernelCache.RegisterMetrics(telemetry.Default(), "cache.pdn_kernel")
}

// ResetKernelCache empties the shared impulse-response cache (benchmarks
// use it to measure cold-start cost).
func ResetKernelCache() { kernelCache.Reset() }

// KernelCacheStats reports the shared impulse-response cache's
// effectiveness (hits, misses, evictions, residency).
func KernelCacheStats() sim.CacheStats { return kernelCache.Stats() }

// New constructs a Network. Zero-valued Params fields take the paper's
// defaults; PeakZ must be positive (use Calibrate to derive it from a
// current envelope).
func New(p Params) (*Network, error) {
	p = p.WithDefaults()
	if p.PeakZ <= 0 {
		return nil, fmt.Errorf("pdn: PeakZ must be positive (got %g); use Calibrate", p.PeakZ)
	}
	sk, err := kernelCache.Get(sim.Fingerprint(p), func() (sampled, error) {
		sys, err := linsys.FromPeak(p.DCResistance, p.ResonantHz, p.PeakZ)
		if err != nil {
			return sampled{}, fmt.Errorf("pdn: %w", err)
		}
		kernel := sys.SampleImpulse(1/p.ClockHz, p.TruncRelTol, p.MaxKernelLen)
		if len(kernel) == 0 {
			return sampled{}, fmt.Errorf("pdn: empty impulse-response kernel")
		}
		return sampled{sys: sys, kernel: kernel}, nil
	})
	if err != nil {
		return nil, err
	}
	telemetry.Default().Counter("pdn.networks_built_total").Inc()
	return &Network{params: p, sys: sk.sys, kernel: sk.kernel}, nil
}

// Calibrate sets the network's peak impedance from the de facto target-
// impedance rule the paper describes in Section 2.1: the target impedance
// is the value that keeps the voltage within its allowed range for the
// maximum current swing,
//
//	Z_target = (Tolerance * VNominal) / (iMax - iMin).
//
// impedancePct then scales it: 1.0 reproduces the 100% column of Table 2
// (the network meets spec), 2.0 the cheaper 200% network, and so on.
// Note the resonant worst case stays comfortably inside the band at 100%
// (the square wave's fundamental carries 4/pi of half the swing), which is
// why Table 2's leftmost column has zero emergencies by definition while
// the 200% network is where the stressmark begins to break through.
func Calibrate(p Params, iMin, iMax, impedancePct float64) (*Network, error) {
	p = p.WithDefaults()
	if iMax <= iMin {
		return nil, fmt.Errorf("pdn: iMax (%g) must exceed iMin (%g)", iMax, iMin)
	}
	if impedancePct <= 0 {
		return nil, fmt.Errorf("pdn: impedancePct must be positive (got %g)", impedancePct)
	}
	zTarget := p.Tolerance * p.VNominal / (iMax - iMin)
	p.PeakZ = zTarget * impedancePct
	telemetry.Default().Counter("pdn.calibrations_total").Inc()
	if p.PeakZ <= p.DCResistance {
		return nil, fmt.Errorf("pdn: target impedance %.3gmΩ does not exceed DC resistance %.3gmΩ; reduce DCResistance or the current envelope", p.PeakZ*1e3, p.DCResistance*1e3)
	}
	return New(p)
}

// Params returns the parameters the network was built with (PeakZ reflects
// any calibration).
func (n *Network) Params() Params { return n.params }

// System exposes the underlying second-order model.
func (n *Network) System() *linsys.SecondOrder { return n.sys }

// KernelLen reports the truncated impulse-response length in cycles.
func (n *Network) KernelLen() int { return len(n.kernel) }

// ResonantPeriodCycles returns the resonant period expressed in CPU cycles,
// rounded to the nearest integer (60 for the paper's defaults).
func (n *Network) ResonantPeriodCycles() int {
	return int(math.Round(n.params.ClockHz / n.params.ResonantHz))
}

// VMin and VMax return the emergency boundaries.
func (n *Network) VMin() float64 { return n.params.VNominal * (1 - n.params.Tolerance) }
func (n *Network) VMax() float64 { return n.params.VNominal * (1 + n.params.Tolerance) }

// VoltageTrace convolves an entire current trace (amperes per cycle) and
// returns the per-cycle supply voltage. It is a convenience for offline
// analysis; closed-loop simulation uses Simulator.
func (n *Network) VoltageTrace(current []float64) []float64 {
	sim := n.NewSimulator()
	out := make([]float64, len(current))
	for i, c := range current {
		out[i] = sim.Step(c)
	}
	return out
}

// WorstCaseDeviation drives the network with a sustained square wave
// between iMin and iMax at the resonant period and returns the maximum
// absolute deviation from nominal once the waveform has built up (it
// simulates long enough for transients to saturate).
func (n *Network) WorstCaseDeviation(iMin, iMax float64) float64 {
	period := n.ResonantPeriodCycles()
	if period < 2 {
		period = 2
	}
	cycles := len(n.kernel) + 20*period
	sim := n.NewSimulator()
	worst := 0.0
	for c := 0; c < cycles; c++ {
		cur := iMin
		if c%period < period/2 {
			cur = iMax
		}
		v := sim.Step(cur)
		if d := math.Abs(v - n.params.VNominal); d > worst {
			worst = d
		}
	}
	return worst
}

// Simulator carries the mutable streaming-convolution state for one run.
// It is not safe for concurrent use; create one per goroutine.
type Simulator struct {
	net  *Network
	hist []float64 // ring buffer of past current deviations (I - IFloor)
	pos  int       // next write index
	n    int       // cycles processed
}

// NewSimulator creates a fresh streaming voltage simulator whose history is
// all at IFloor (quiescent, V = VNominal). History buffers are recycled
// across runs via the network's pool; call Release when done with a
// simulator to return its buffer.
func (n *Network) NewSimulator() *Simulator {
	if h, ok := n.simPool.Get().([]float64); ok && len(h) == len(n.kernel) {
		for i := range h {
			h[i] = 0
		}
		return &Simulator{net: n, hist: h}
	}
	return &Simulator{net: n, hist: make([]float64, len(n.kernel))}
}

// Release returns the simulator's history buffer to the network's pool.
// The simulator must not be used afterwards.
func (s *Simulator) Release() {
	if s.hist == nil {
		return
	}
	s.net.simPool.Put(s.hist)
	s.hist = nil
}

// Step advances one CPU cycle with the given load current (amperes) and
// returns the supply voltage at this cycle.
//
// This is the hottest loop in the repository (kernel-length multiply-adds
// per simulated cycle), so the ring-buffer walk is split into its two
// contiguous halves instead of testing for wrap every tap. The summation
// order is unchanged — newest sample first — so results stay bit-identical
// to the naive loop.
//
//didt:hotpath
func (s *Simulator) Step(current float64) float64 {
	k := s.net.kernel
	h := s.hist
	h[s.pos] = current - s.net.params.IFloor
	drop := 0.0
	// kernel index 0 multiplies the newest sample: h[pos], h[pos-1], ...,
	// h[0], then h[len-1] down to h[pos+1].
	i := 0
	for idx := s.pos; idx >= 0 && i < len(k); idx-- {
		drop += k[i] * h[idx]
		i++
	}
	for idx := len(h) - 1; i < len(k); idx-- {
		drop += k[i] * h[idx]
		i++
	}
	s.pos++
	if s.pos == len(h) {
		s.pos = 0
	}
	s.n++
	return s.net.params.VNominal - drop
}

// Peek returns the voltage that would result if the given current were
// applied this cycle, without committing it. Controllers use this for
// lookahead analysis in tests; the closed loop itself never peeks.
//
//didt:hotpath
func (s *Simulator) Peek(current float64) float64 {
	k := s.net.kernel
	h := s.hist
	drop := k[0] * (current - s.net.params.IFloor)
	i := 1
	for idx := s.pos - 1; idx >= 0 && i < len(k); idx-- {
		drop += k[i] * h[idx]
		i++
	}
	for idx := len(h) - 1; i < len(k); idx-- {
		drop += k[i] * h[idx]
		i++
	}
	return s.net.params.VNominal - drop
}

// Cycles reports how many cycles have been simulated.
func (s *Simulator) Cycles() int { return s.n }

// Reset returns the simulator to the quiescent state.
func (s *Simulator) Reset() {
	for i := range s.hist {
		s.hist[i] = 0
	}
	s.pos = 0
	s.n = 0
}
