package pdn

import (
	"math"
	"testing"
)

func graphCurrent(i int) float64 {
	return 10 + 50*math.Abs(math.Sin(float64(i)/7))
}

// TestSingleRailGraphBitIdenticalStep: the 1-node graph's streaming path
// must produce the exact bits of a bare Simulator.
func TestSingleRailGraphBitIdenticalStep(t *testing.T) {
	n := mustCalibrated(t, 2)
	g := SingleRail(n)
	gs := g.NewSimulator()
	ref := n.NewSimulator()
	cur := make([]float64, 1)
	volt := make([]float64, 1)
	for i := 0; i < 500; i++ {
		cur[0] = graphCurrent(i)
		gs.Step(cur, volt)
		if want := ref.Step(cur[0]); volt[0] != want {
			t.Fatalf("cycle %d: graph %v != network %v", i, volt[0], want)
		}
	}
	gs.Release()
	ref.Release()
}

// TestSingleRailGraphBitIdenticalBatch: a lane drained out of the batched
// SoA simulator into the 1-node graph's rail simulator must continue the
// lane's voltage sequence bit-identically — the handoff RunBatch relies on.
func TestSingleRailGraphBitIdenticalBatch(t *testing.T) {
	n := mustCalibrated(t, 2)
	b := n.NewBatchSimulator(Lanes)
	cur := make([]float64, Lanes)
	volts := make([]float64, Lanes)
	for i := 0; i < 200; i++ {
		for l := range cur {
			cur[l] = graphCurrent(i*Lanes + l)
		}
		b.Step(cur, volts)
	}
	const lane = 3
	g := SingleRail(n)
	gs := g.NewSimulator()
	b.ExtractLane(lane, gs.RailSim(0))
	ref := n.NewSimulator()
	b.ExtractLane(lane, ref)
	gcur := make([]float64, 1)
	gvolt := make([]float64, 1)
	for i := 0; i < 300; i++ {
		gcur[0] = graphCurrent(1000 + i)
		gs.Step(gcur, gvolt)
		if want := ref.Step(gcur[0]); gvolt[0] != want {
			t.Fatalf("cycle %d after handoff: graph %v != network %v", i, gvolt[0], want)
		}
	}
	gs.Release()
	ref.Release()
}

// TestSingleRailGraphBitIdenticalConvolve: the 1-node graph's block path
// must delegate to Network.ConvolveVoltages on both the streaming branch
// (trace shorter than the kernel) and the FFT branch (trace longer).
func TestSingleRailGraphBitIdenticalConvolve(t *testing.T) {
	n := mustCalibrated(t, 2)
	g := SingleRail(n)
	for _, length := range []int{n.KernelLen() / 2, 4 * n.KernelLen()} {
		cur := make([]float64, length)
		for i := range cur {
			cur[i] = graphCurrent(i)
		}
		want := make([]float64, length)
		n.ConvolveVoltages(want, cur)
		got := make([]float64, length)
		g.ConvolveVoltages([][]float64{got}, [][]float64{cur})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("len %d cycle %d: graph %v != network %v", length, i, got[i], want[i])
			}
		}
	}
}

// TestTwoRailZeroCouplingIndependent: with no coupling — nil matrix or an
// explicit all-zero matrix — a 2-rail graph is exactly two independent
// networks, on both the step and block paths.
func TestTwoRailZeroCouplingIndependent(t *testing.T) {
	a, err := Calibrate(Params{IFloor: 10}, 10, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(Params{IFloor: 5, ResonantHz: 80e6}, 5, 30, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	rails := []Rail{{Name: "core", Net: a}, {Name: "mem", Net: b}}
	for _, matrix := range [][][]float64{nil, {{0, 0}, {0, 0}}} {
		g, err := NewGraph(rails, matrix)
		if err != nil {
			t.Fatal(err)
		}
		if g.Coupled() {
			t.Fatal("zero matrix must not mark the graph coupled")
		}
		gs := g.NewSimulator()
		ra := a.NewSimulator()
		rb := b.NewSimulator()
		cur := make([]float64, 2)
		volts := make([]float64, 2)
		traceA := make([]float64, 400)
		traceB := make([]float64, 400)
		for i := 0; i < 400; i++ {
			cur[0] = graphCurrent(i)
			cur[1] = 5 + 20*math.Abs(math.Cos(float64(i)/11))
			traceA[i], traceB[i] = cur[0], cur[1]
			gs.Step(cur, volts)
			if wa, wb := ra.Step(cur[0]), rb.Step(cur[1]); volts[0] != wa || volts[1] != wb {
				t.Fatalf("cycle %d: graph (%v,%v) != independent (%v,%v)", i, volts[0], volts[1], wa, wb)
			}
		}
		gs.Release()
		ra.Release()
		rb.Release()
		da, db := make([]float64, 400), make([]float64, 400)
		g.ConvolveVoltages([][]float64{da, db}, [][]float64{traceA, traceB})
		wa, wb := a.VoltageTrace(traceA), b.VoltageTrace(traceB)
		for i := range da {
			if da[i] != wa[i] || db[i] != wb[i] {
				t.Fatalf("block cycle %d: graph (%v,%v) != independent (%v,%v)", i, da[i], db[i], wa[i], wb[i])
			}
		}
	}
}

// TestSymmetricCoupledStepAnalytic pins the coupled response against the
// closed-form linsys step response: two identical rails with symmetric
// coupling k, both stepping dI above the floor, each see an effective
// deviation (1+k)*dI, so V(t) = Vnom - (1+k)*dI*Step(t). The sampled
// kernel's prefix sum reproduces Step exactly (see linsys validate tests),
// so the tolerance here only covers float rounding in the coupling math.
func TestSymmetricCoupledStepAnalytic(t *testing.T) {
	p := Params{PeakZ: 2e-3, IFloor: 10}.WithDefaults()
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	const k = 0.3
	const dI = 25.0
	g, err := NewGraph(
		[]Rail{{Name: "a", Net: a}, {Name: "b", Net: b}},
		[][]float64{{0, k}, {k, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	gs := g.NewSimulator()
	defer gs.Release()
	sys := a.System()
	dt := 1 / p.ClockHz
	cur := []float64{p.IFloor + dI, p.IFloor + dI}
	volts := make([]float64, 2)
	for n := 0; n < 400; n++ {
		gs.Step(cur, volts)
		want := p.VNominal - (1+k)*dI*sys.Step(float64(n+1)*dt)
		for rail := 0; rail < 2; rail++ {
			if math.Abs(volts[rail]-want) > 1e-9 {
				t.Fatalf("cycle %d rail %d: V=%.12g, analytic %.12g", n, rail, volts[rail], want)
			}
		}
	}
}

// TestCoupledQuiescence: with every rail at its floor the injected
// transients vanish and all rails hold nominal.
func TestCoupledQuiescence(t *testing.T) {
	a := mustCalibrated(t, 2)
	b := mustCalibrated(t, 2)
	g, err := NewGraph(
		[]Rail{{Name: "a", Net: a}, {Name: "b", Net: b}},
		[][]float64{{0, 0.5}, {0.5, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	gs := g.NewSimulator()
	defer gs.Release()
	cur := []float64{10, 10}
	volts := make([]float64, 2)
	for i := 0; i < 200; i++ {
		gs.Step(cur, volts)
		if math.Abs(volts[0]-1) > 1e-12 || math.Abs(volts[1]-1) > 1e-12 {
			t.Fatalf("cycle %d: quiescent V=(%g,%g), want 1.0", i, volts[0], volts[1])
		}
	}
}

// TestCoupledConvolveMatchesStreaming: the coupled block path must agree
// with the coupled streaming path to the same 1e-9 V the single-rail FFT
// convolver guarantees.
func TestCoupledConvolveMatchesStreaming(t *testing.T) {
	a := mustCalibrated(t, 2)
	b := mustCalibrated(t, 2)
	g, err := NewGraph(
		[]Rail{{Name: "a", Net: a}, {Name: "b", Net: b}},
		[][]float64{{0, 0.2}, {0.4, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	length := 3 * a.KernelLen()
	traces := [][]float64{make([]float64, length), make([]float64, length)}
	for i := 0; i < length; i++ {
		traces[0][i] = graphCurrent(i)
		traces[1][i] = 10 + 30*math.Abs(math.Cos(float64(i)/13))
	}
	block := [][]float64{make([]float64, length), make([]float64, length)}
	g.ConvolveVoltages(block, traces)
	gs := g.NewSimulator()
	defer gs.Release()
	cur := make([]float64, 2)
	volts := make([]float64, 2)
	for i := 0; i < length; i++ {
		cur[0], cur[1] = traces[0][i], traces[1][i]
		gs.Step(cur, volts)
		for rail := 0; rail < 2; rail++ {
			if math.Abs(volts[rail]-block[rail][i]) > 1e-9 {
				t.Fatalf("cycle %d rail %d: streaming %.12g vs block %.12g", i, rail, volts[rail], block[rail][i])
			}
		}
	}
}

func TestNewGraphValidation(t *testing.T) {
	n := mustCalibrated(t, 2)
	cases := []struct {
		name     string
		rails    []Rail
		coupling [][]float64
	}{
		{name: "no rails"},
		{name: "unnamed rail", rails: []Rail{{Net: n}}},
		{name: "duplicate name", rails: []Rail{{Name: "a", Net: n}, {Name: "a", Net: n}}},
		{name: "nil network", rails: []Rail{{Name: "a"}}},
		{name: "ragged matrix", rails: []Rail{{Name: "a", Net: n}}, coupling: [][]float64{{0, 0}}},
		{name: "self coupling", rails: []Rail{{Name: "a", Net: n}}, coupling: [][]float64{{0.1}}},
		{
			name:     "coefficient out of range",
			rails:    []Rail{{Name: "a", Net: n}, {Name: "b", Net: n}},
			coupling: [][]float64{{0, 1.0}, {0, 0}},
		},
		{
			name:     "negative coefficient",
			rails:    []Rail{{Name: "a", Net: n}, {Name: "b", Net: n}},
			coupling: [][]float64{{0, -0.1}, {0, 0}},
		},
	}
	for _, tc := range cases {
		if _, err := NewGraph(tc.rails, tc.coupling); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

// BenchmarkGraphStep covers the coupling inner loop under the CI -benchmem
// allocation gate: a coupled 3-rail step must stay allocation-free just
// like the single-rail Step.
func BenchmarkGraphStep(b *testing.B) {
	n1 := mustCalibratedB(b, 2)
	n2 := mustCalibratedB(b, 2)
	n3 := mustCalibratedB(b, 2)
	g, err := NewGraph(
		[]Rail{{Name: "a", Net: n1}, {Name: "b", Net: n2}, {Name: "c", Net: n3}},
		[][]float64{{0, 0.2, 0.1}, {0.2, 0, 0}, {0.1, 0, 0}},
	)
	if err != nil {
		b.Fatal(err)
	}
	gs := g.NewSimulator()
	defer gs.Release()
	cur := []float64{40, 20, 30}
	volts := make([]float64, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gs.Step(cur, volts)
	}
}

func mustCalibratedB(b *testing.B, pct float64) *Network {
	b.Helper()
	n, err := Calibrate(Params{IFloor: 10}, 10, 60, pct)
	if err != nil {
		b.Fatalf("Calibrate: %v", err)
	}
	return n
}
