package pdn

import (
	"math"
	"testing"
	"testing/quick"
)

func mustCalibrated(t *testing.T, pct float64) *Network {
	t.Helper()
	n, err := Calibrate(Params{IFloor: 10}, 10, 60, pct)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	return n
}

func TestNewRequiresPeakZ(t *testing.T) {
	if _, err := New(Params{}); err == nil {
		t.Fatal("want error for missing PeakZ")
	}
}

func TestDefaultsApplied(t *testing.T) {
	n, err := New(Params{PeakZ: 2e-3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := n.Params()
	if p.ClockHz != DefaultClockHz || p.VNominal != DefaultVNominal || p.Tolerance != DefaultTolerance {
		t.Errorf("defaults not applied: %+v", p)
	}
	if n.ResonantPeriodCycles() != 60 {
		t.Errorf("resonant period = %d cycles, want 60 (3GHz/50MHz)", n.ResonantPeriodCycles())
	}
}

func TestQuiescentVoltageIsNominal(t *testing.T) {
	n := mustCalibrated(t, 1)
	sim := n.NewSimulator()
	for i := 0; i < 200; i++ {
		if v := sim.Step(n.Params().IFloor); math.Abs(v-1.0) > 1e-12 {
			t.Fatalf("cycle %d: quiescent V=%g, want 1.0", i, v)
		}
	}
}

func TestCalibrationTargetImpedanceRule(t *testing.T) {
	// Z_target = Tolerance*VNominal/(iMax-iMin), the de facto rule of
	// Section 2.1.
	n := mustCalibrated(t, 1)
	want := DefaultTolerance * DefaultVNominal / 50.0
	if got := n.Params().PeakZ; math.Abs(got-want)/want > 1e-9 {
		t.Errorf("PeakZ = %.4gmΩ, want %.4gmΩ", got*1e3, want*1e3)
	}
	// Meeting spec means the resonant worst case stays inside the band.
	dev := n.WorstCaseDeviation(10, 60)
	allow := DefaultTolerance * DefaultVNominal
	if dev > allow {
		t.Errorf("worst-case deviation %.4gmV exceeds band %.4gmV at 100%%", dev*1e3, allow*1e3)
	}
	// While the 200%% network lets the worst case break through.
	if dev2 := mustCalibrated(t, 2).WorstCaseDeviation(10, 60); dev2 <= allow {
		t.Errorf("at 200%% the worst case should exceed the band: %.4gmV", dev2*1e3)
	}
}

func TestHigherImpedanceWorseDeviation(t *testing.T) {
	prev := 0.0
	for _, pct := range []float64{1, 2, 3, 4} {
		dev := mustCalibrated(t, pct).WorstCaseDeviation(10, 60)
		if dev <= prev {
			t.Errorf("deviation not increasing with impedance: %g after %g", dev, prev)
		}
		prev = dev
	}
}

// TestNarrowVsWideSpike reproduces the Figure 3/4 contrast: a 5-cycle spike
// must not cross the emergency threshold while a sufficiently wide spike at
// 200% impedance must.
func TestNarrowVsWideSpike(t *testing.T) {
	n := mustCalibrated(t, 2)
	minV := func(width int) float64 {
		cur := make([]float64, 400)
		for i := range cur {
			cur[i] = 10
		}
		for i := 9; i < 9+width; i++ {
			cur[i] = 60
		}
		low := math.Inf(1)
		for _, v := range n.VoltageTrace(cur) {
			low = math.Min(low, v)
		}
		return low
	}
	if v := minV(5); v < n.VMin() {
		t.Errorf("5-cycle spike dips to %.4f, should stay above %.4f", v, n.VMin())
	}
	if v5, v30 := minV(5), minV(30); v30 >= v5 {
		t.Errorf("wider spike should dip lower: 5-cycle %.4f vs 30-cycle %.4f", v5, v30)
	}
	if v := minV(30); v >= n.VMin() {
		t.Errorf("30-cycle spike at 200%% impedance dips to %.4f, want emergency (< %.4f)", v, n.VMin())
	}
}

// TestResonantBuildup reproduces Figure 6: the second resonant pulse causes
// a deeper dip than the first.
func TestResonantBuildup(t *testing.T) {
	n := mustCalibrated(t, 2)
	period := n.ResonantPeriodCycles()
	cur := make([]float64, 4*period)
	for i := range cur {
		cur[i] = 10
		if i%period < period/2 {
			cur[i] = 60
		}
	}
	v := n.VoltageTrace(cur)
	min1 := math.Inf(1)
	for _, x := range v[:period] {
		min1 = math.Min(min1, x)
	}
	min2 := math.Inf(1)
	for _, x := range v[period : 2*period] {
		min2 = math.Min(min2, x)
	}
	if min2 >= min1 {
		t.Errorf("no resonant buildup: first dip %.4f, second dip %.4f", min1, min2)
	}
}

func TestOffResonanceWeakerThanResonance(t *testing.T) {
	n := mustCalibrated(t, 2)
	dev := func(period int) float64 {
		sim := n.NewSimulator()
		worst := 0.0
		for c := 0; c < n.KernelLen()+20*period; c++ {
			cur := 10.0
			if c%period < period/2 {
				cur = 60.0
			}
			v := sim.Step(cur)
			worst = math.Max(worst, math.Abs(v-1.0))
		}
		return worst
	}
	res := n.ResonantPeriodCycles()
	if on, off := dev(res), dev(res/4); off >= on {
		t.Errorf("off-resonance drive (period %d) dev %.4g >= resonant %.4g", res/4, off, on)
	}
	if on, off := dev(res), dev(res*4); off >= on {
		t.Errorf("slow drive (period %d) dev %.4g >= resonant %.4g", res*4, off, on)
	}
}

func TestVoltageTraceMatchesSimulator(t *testing.T) {
	n := mustCalibrated(t, 2)
	cur := make([]float64, 300)
	for i := range cur {
		cur[i] = 10 + 50*math.Abs(math.Sin(float64(i)/7))
	}
	want := n.VoltageTrace(cur)
	sim := n.NewSimulator()
	for i, c := range cur {
		if got := sim.Step(c); got != want[i] {
			t.Fatalf("cycle %d: Step=%g VoltageTrace=%g", i, got, want[i])
		}
	}
}

func TestPeekDoesNotAdvance(t *testing.T) {
	n := mustCalibrated(t, 2)
	sim := n.NewSimulator()
	for i := 0; i < 50; i++ {
		sim.Step(40)
	}
	p := sim.Peek(60)
	if got := sim.Step(60); math.Abs(got-p) > 1e-12 {
		t.Errorf("Peek=%g then Step=%g; must agree", p, got)
	}
	if sim.Cycles() != 51 {
		t.Errorf("Peek advanced the cycle counter: %d", sim.Cycles())
	}
}

func TestResetRestoresQuiescence(t *testing.T) {
	n := mustCalibrated(t, 2)
	sim := n.NewSimulator()
	for i := 0; i < 100; i++ {
		sim.Step(60)
	}
	sim.Reset()
	if v := sim.Step(n.Params().IFloor); math.Abs(v-1.0) > 1e-12 {
		t.Errorf("after Reset, V=%g, want 1.0", v)
	}
}

func TestCalibrateRejectsBadEnvelope(t *testing.T) {
	if _, err := Calibrate(Params{}, 60, 10, 1); err == nil {
		t.Error("want error for iMax <= iMin")
	}
	if _, err := Calibrate(Params{}, 10, 60, 0); err == nil {
		t.Error("want error for zero impedancePct")
	}
}

// Property: superposition. The PDN is linear, so the response to the sum of
// two current deviations equals the sum of responses.
func TestPropertyLinearity(t *testing.T) {
	n := mustCalibrated(t, 2)
	f := func(seedA, seedB [16]uint8) bool {
		la := make([]float64, 64)
		lb := make([]float64, 64)
		for i := range la {
			la[i] = 10 + float64(seedA[i%16])/8
			lb[i] = 10 + float64(seedB[i%16])/8
		}
		sum := make([]float64, 64)
		for i := range sum {
			// deviations add; subtract one IFloor so the combined trace's
			// deviation is the sum of the two deviations.
			sum[i] = la[i] + lb[i] - 10
		}
		va, vb, vs := n.VoltageTrace(la), n.VoltageTrace(lb), n.VoltageTrace(sum)
		for i := range vs {
			dropA := 1.0 - va[i]
			dropB := 1.0 - vb[i]
			dropS := 1.0 - vs[i]
			if math.Abs(dropS-(dropA+dropB)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: time invariance. Delaying the input delays the output.
func TestPropertyTimeInvariance(t *testing.T) {
	n := mustCalibrated(t, 2)
	f := func(seed [8]uint8, shift uint8) bool {
		d := int(shift%20) + 1
		base := make([]float64, 120)
		for i := range base {
			base[i] = 10
		}
		for i, s := range seed {
			base[10+i] = 10 + float64(s)/4
		}
		shifted := make([]float64, 120+d)
		for i := range shifted {
			shifted[i] = 10
		}
		copy(shifted[d:], base)
		va := n.VoltageTrace(base)
		vb := n.VoltageTrace(shifted)
		for i := 0; i < len(va); i++ {
			if math.Abs(va[i]-vb[i+d]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestKernelTruncationAblation(t *testing.T) {
	// A much looser truncation must still give nearly the same worst case:
	// validates the default tolerance is conservative.
	tight, err := Calibrate(Params{IFloor: 10}, 10, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := New(Params{PeakZ: tight.Params().PeakZ, IFloor: 10, TruncRelTol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	a := tight.WorstCaseDeviation(10, 60)
	b := loose.WorstCaseDeviation(10, 60)
	if math.Abs(a-b)/a > 0.02 {
		t.Errorf("truncation sensitivity too high: tight %.4g loose %.4g", a, b)
	}
	if loose.KernelLen() >= tight.KernelLen() {
		t.Errorf("loose truncation should shorten kernel: %d vs %d", loose.KernelLen(), tight.KernelLen())
	}
}
