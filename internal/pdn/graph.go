// Rail graph: the multi-domain generalization of Network. A Graph holds N
// named delivery domains — each its own calibrated Network with its own
// sampled kernel — plus a cross-coupling matrix that injects a fraction of
// each domain's current transient into its neighbors' convolution inputs:
//
//	eff_i[n] = I_i[n] + sum_{j != i} K[i][j] * (I_j[n] - IFloor_j)
//
// so rail i's voltage is V_i[n] = Vnom_i - sum_k h_i[k]*(eff_i[n-k] -
// IFloor_i). With every rail at its floor the injected transients vanish
// and all rails sit at nominal, exactly like the quiescent single-rail
// network. The single-rail Network is the 1-node graph (SingleRail), and
// on that degenerate graph — or any graph with an all-zero matrix — the
// step and block-convolution paths delegate straight to the underlying
// Network, so the output is bit-identical (`==`) to using the Network
// directly, not merely close.
package pdn

import "fmt"

// Rail is one named delivery domain of a Graph.
type Rail struct {
	Name string
	Net  *Network
}

// Graph is an immutable set of rails plus their cross-coupling matrix.
// Like Network it is safe for concurrent use; GraphSimulator carries the
// per-run mutable state.
type Graph struct {
	rails    []Rail
	coupling [][]float64 // coupling[to][from]; nil when the graph is uncoupled
	floors   []float64   // per-rail IFloor, hoisted out of the step loop
	coupled  bool        // any nonzero off-diagonal coefficient
}

// NewGraph builds a rail graph. coupling may be nil (independent rails) or
// an NxN matrix where coupling[i][j] is the fraction of rail j's current
// transient injected into rail i's input; the diagonal must be zero and
// every coefficient must lie in [0, 1).
func NewGraph(rails []Rail, coupling [][]float64) (*Graph, error) {
	if len(rails) == 0 {
		return nil, fmt.Errorf("pdn: graph needs at least one rail")
	}
	seen := make(map[string]bool, len(rails))
	floors := make([]float64, len(rails))
	for i, r := range rails {
		if r.Name == "" {
			return nil, fmt.Errorf("pdn: rail %d has no name", i)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("pdn: duplicate rail name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Net == nil {
			return nil, fmt.Errorf("pdn: rail %q has no network", r.Name)
		}
		floors[i] = r.Net.params.IFloor
	}
	g := &Graph{rails: rails, floors: floors}
	if coupling == nil {
		return g, nil
	}
	if len(coupling) != len(rails) {
		return nil, fmt.Errorf("pdn: coupling matrix has %d rows for %d rails", len(coupling), len(rails))
	}
	for i, row := range coupling {
		if len(row) != len(rails) {
			return nil, fmt.Errorf("pdn: coupling row %d has %d columns for %d rails", i, len(row), len(rails))
		}
		for j, k := range row {
			if i == j && k != 0 {
				return nil, fmt.Errorf("pdn: rail %q couples to itself (k=%g)", rails[i].Name, k)
			}
			if k < 0 || k >= 1 {
				return nil, fmt.Errorf("pdn: coupling %q<-%q coefficient %g outside [0,1)", rails[i].Name, rails[j].Name, k)
			}
			if k != 0 {
				g.coupled = true
			}
		}
	}
	if g.coupled {
		g.coupling = coupling
	}
	return g, nil
}

// SingleRail wraps an existing Network as the 1-node graph; every caller
// of the graph path sees identical behaviour to using the Network alone.
func SingleRail(net *Network) *Graph {
	g, err := NewGraph([]Rail{{Name: "core", Net: net}}, nil)
	if err != nil {
		// Unreachable: one named rail with a non-nil network always passes.
		panic(err)
	}
	return g
}

// Size reports the number of rails.
func (g *Graph) Size() int { return len(g.rails) }

// Rail returns rail i.
func (g *Graph) Rail(i int) Rail { return g.rails[i] }

// Coupled reports whether any cross-coupling coefficient is nonzero.
func (g *Graph) Coupled() bool { return g.coupled }

// CouplingInto returns a copy of row i of the coupling matrix (the
// coefficients of what rail i receives), or nil for an uncoupled graph.
func (g *Graph) CouplingInto(i int) []float64 {
	if !g.coupled {
		return nil
	}
	return append([]float64(nil), g.coupling[i]...)
}

// GraphSimulator advances all rails of a Graph in lockstep, one streaming
// Simulator per rail. Not safe for concurrent use; create one per
// goroutine and Release it when done.
type GraphSimulator struct {
	g    *Graph
	sims []*Simulator
	eff  []float64 // effective (coupled) per-rail inputs, reused across steps
}

// NewSimulator creates a quiescent simulator for every rail.
func (g *Graph) NewSimulator() *GraphSimulator {
	sims := make([]*Simulator, len(g.rails))
	for i, r := range g.rails {
		sims[i] = r.Net.NewSimulator()
	}
	return &GraphSimulator{g: g, sims: sims, eff: make([]float64, len(g.rails))}
}

// RailSim exposes rail i's underlying streaming simulator. On an uncoupled
// graph stepping it directly is equivalent to stepping the graph (the
// batching engine uses rail 0 of a single-rail graph this way).
func (s *GraphSimulator) RailSim(i int) *Simulator { return s.sims[i] }

// Step advances every rail one CPU cycle: currents[i] is rail i's load
// current and volts[i] receives its supply voltage. Both slices must have
// length >= Size(). Zero allocations; on an uncoupled graph each rail's
// output is bit-identical to stepping its Simulator alone.
//
//didt:hotpath
func (s *GraphSimulator) Step(currents, volts []float64) {
	g := s.g
	if !g.coupled {
		for i, sim := range s.sims {
			volts[i] = sim.Step(currents[i])
		}
		return
	}
	// Coupling inner loop: build each rail's effective input before any
	// rail advances, so injection uses this cycle's raw currents.
	eff := s.eff
	floors := g.floors
	for i := range s.sims {
		c := currents[i]
		row := g.coupling[i]
		for j, k := range row {
			if k != 0 {
				c += k * (currents[j] - floors[j])
			}
		}
		eff[i] = c
	}
	for i, sim := range s.sims {
		volts[i] = sim.Step(eff[i])
	}
}

// Cycles reports how many cycles have been simulated.
func (s *GraphSimulator) Cycles() int { return s.sims[0].Cycles() }

// Reset returns every rail to the quiescent state.
func (s *GraphSimulator) Reset() {
	for _, sim := range s.sims {
		sim.Reset()
	}
}

// Release returns every rail simulator's history buffer to its network's
// pool. The graph simulator must not be used afterwards.
func (s *GraphSimulator) Release() {
	for _, sim := range s.sims {
		sim.Release()
	}
}

// ConvolveVoltages computes every rail's voltage for entire current traces
// at once: currents[i] and dst[i] are rail i's input and output (dst[i]
// must have length >= len(currents[i])). Uncoupled rails pass their trace
// straight to Network.ConvolveVoltages — byte-identical to the single-rail
// open-loop path — while coupled rails first materialize the effective
// input trace. Rails may have different trace lengths only when uncoupled;
// coupling requires equal lengths.
func (g *Graph) ConvolveVoltages(dst, currents [][]float64) {
	if !g.coupled {
		for i, r := range g.rails {
			r.Net.ConvolveVoltages(dst[i], currents[i])
		}
		return
	}
	for i, r := range g.rails {
		eff := make([]float64, len(currents[i]))
		copy(eff, currents[i])
		for j, k := range g.coupling[i] {
			if k == 0 {
				continue
			}
			floor := g.floors[j]
			for n, cj := range currents[j] {
				eff[n] += k * (cj - floor)
			}
		}
		r.Net.ConvolveVoltages(dst[i], eff)
	}
}
