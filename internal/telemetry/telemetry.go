// Package telemetry is the simulator's observability layer: a
// zero-allocation ring-buffered cycle tracer with pluggable sinks (JSONL
// and Chrome trace-event format, loadable in Perfetto or chrome://tracing),
// a metrics registry (counters, gauges, bounded histograms) snapshotted
// into machine-readable run manifests, and a throttled stderr progress
// line for long parallel sweeps.
//
// The closed loop in internal/core emits typed events here — sensor-level
// changes, actuator engage/release, emergencies, phantom fires, voltage
// samples — but the whole layer is designed to vanish from the hot path
// when unused: every entry point is nil-safe, emission is guarded by a
// single atomic enabled flag, and events are fixed-size structs written
// into preallocated rings, so a disabled (or absent) tracer costs one
// pointer test plus one atomic load per guard.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// KindSensorLevel records a sensor output transition; Arg is the new
	// sensor.Level (0 normal, 1 low, 2 high), Value the true voltage.
	KindSensorLevel Kind = iota + 1
	// KindGate records actuator clock-gating; Arg 1 = engage, 0 = release,
	// Value the voltage at the decision.
	KindGate
	// KindPhantom records phantom-firing; Arg 1 = engage, 0 = release.
	KindPhantom
	// KindEmergency records the supply leaving (Arg 1) or re-entering
	// (Arg 0) the allowed band; Value the voltage.
	KindEmergency
	// KindVoltage is a periodic supply-voltage sample in volts.
	KindVoltage
	// KindCurrent is a periodic processor-current sample in amperes.
	KindCurrent
	// KindQuadrantVoltage is a per-quadrant supply sample; Arg is the
	// quadrant index, Value the local voltage.
	KindQuadrantVoltage
	// KindMark is a generic instant marker; Arg and Value are free-form.
	KindMark
)

// String names the kind (stable identifiers used by the JSONL sink).
func (k Kind) String() string {
	switch k {
	case KindSensorLevel:
		return "sensor-level"
	case KindGate:
		return "gate"
	case KindPhantom:
		return "phantom"
	case KindEmergency:
		return "emergency"
	case KindVoltage:
		return "voltage"
	case KindCurrent:
		return "current"
	case KindQuadrantVoltage:
		return "quadrant-voltage"
	case KindMark:
		return "mark"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// kindFromString inverts String for the JSONL decoder.
func kindFromString(s string) (Kind, bool) {
	for k := KindSensorLevel; k <= KindMark; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// Event is one timestamped occurrence. The struct is fixed-size and
// pointer-free so rings of events never touch the garbage collector.
type Event struct {
	Cycle uint64
	Kind  Kind
	Arg   int32
	Value float64
}

// Tracer owns a set of per-run event streams behind one atomic enabled
// flag. The zero of *Tracer (nil) is a valid, permanently-disabled tracer:
// every method tolerates a nil receiver, so instrumented code never
// branches on configuration.
type Tracer struct {
	enabled atomic.Bool
	ringCap int

	mu      sync.Mutex
	streams []*Stream

	// Completed request spans (span.go) ride the same tracer behind the
	// same enabled flag, in their own ring: spans are written by many
	// request goroutines while streams are single-writer per system.
	spanMu    sync.Mutex
	spans     []SpanRecord
	spanHead  int
	spanCap   int
	spanTotal uint64
}

// DefaultRingCap bounds each stream's ring when no capacity is given:
// enough to hold a full controller episode window at per-cycle sampling
// while keeping a many-stream sweep's footprint in tens of megabytes.
const DefaultRingCap = 1 << 16

// NewTracer creates an enabled tracer whose streams retain the most recent
// ringCap events each (ringCap <= 0 selects DefaultRingCap).
func NewTracer(ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	t := &Tracer{ringCap: ringCap}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether emission is on; nil-safe and callable from the
// hot path (one pointer test + one atomic load).
//
//didt:hotpath
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled flips emission; nil-safe no-op on a nil tracer.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Stream opens a named event stream (one per simulated system). Returns
// nil — itself a valid, disabled stream — when the tracer is nil. Streams
// are single-writer: each belongs to the goroutine running its system.
func (t *Tracer) Stream(name string) *Stream {
	if t == nil {
		return nil
	}
	if name == "" {
		name = "system"
	}
	// Rings start small and double up to the tracer's cap as events
	// arrive, so a sweep that builds hundreds of short-lived systems does
	// not pay the full ring per stream.
	initial := 1024
	if initial > t.ringCap {
		initial = t.ringCap
	}
	s := &Stream{t: t, name: name, buf: make([]Event, 0, initial)}
	t.mu.Lock()
	t.streams = append(t.streams, s)
	t.mu.Unlock()
	return s
}

// Streams returns the tracer's streams in a canonical deterministic order:
// sorted by name, ties broken by event count and then event content. Runs
// are deterministic regardless of worker count, so the multiset of streams
// a sweep produces is fixed — canonical ordering makes the serialized
// trace byte-identical at any -parallel setting.
func (t *Tracer) Streams() []*Stream {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]*Stream, len(t.streams))
	copy(out, t.streams)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Stream is one system's ring of events. Not safe for concurrent writers;
// the tracer-level enabled flag is the only shared state it reads.
type Stream struct {
	t     *Tracer
	name  string
	buf   []Event
	head  int    // next write position once the ring is saturated
	total uint64 // events emitted over the stream's lifetime
}

// Name returns the stream name ("" for a nil stream).
func (s *Stream) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Enabled reports whether the owning tracer is emitting; nil-safe.
//
//didt:hotpath
func (s *Stream) Enabled() bool { return s != nil && s.t.enabled.Load() }

// Emit appends an event, overwriting the oldest once the ring is full.
// No-op (and allocation-free) on a nil or disabled stream.
//
//didt:hotpath
func (s *Stream) Emit(cycle uint64, k Kind, arg int32, value float64) {
	if s == nil || !s.t.enabled.Load() {
		return
	}
	e := Event{Cycle: cycle, Kind: k, Arg: arg, Value: value}
	switch {
	case len(s.buf) < cap(s.buf):
		s.buf = append(s.buf, e) //didt:allow hotpath -- len<cap is checked the line above: this append is provably in-place
	case cap(s.buf) < s.t.ringCap:
		grown := cap(s.buf) * 2
		if grown > s.t.ringCap {
			grown = s.t.ringCap
		}
		nb := make([]Event, len(s.buf), grown)
		copy(nb, s.buf)
		s.buf = append(nb, e) //didt:allow hotpath -- nb was just sized with spare capacity; amortized ring growth capped at ringCap
	default:
		s.buf[s.head] = e
		s.head++
		if s.head == len(s.buf) {
			s.head = 0
		}
	}
	s.total++
}

// Events returns the retained events in chronological order.
func (s *Stream) Events() []Event {
	if s == nil {
		return nil
	}
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.head:]...)
	out = append(out, s.buf[:s.head]...)
	return out
}

// Total reports how many events were ever emitted; Total - len(Events())
// is the number dropped by the ring bound.
func (s *Stream) Total() uint64 {
	if s == nil {
		return 0
	}
	return s.total
}

// Dropped reports how many events the ring bound discarded.
func (s *Stream) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.total - uint64(len(s.buf))
}

// less is the canonical stream order used by Streams.
func (s *Stream) less(o *Stream) bool {
	if s.name != o.name {
		return s.name < o.name
	}
	a, b := s.Events(), o.Events()
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			ea, eb := a[i], b[i]
			if ea.Cycle != eb.Cycle {
				return ea.Cycle < eb.Cycle
			}
			if ea.Kind != eb.Kind {
				return ea.Kind < eb.Kind
			}
			if ea.Arg != eb.Arg {
				return ea.Arg < eb.Arg
			}
			return ea.Value < eb.Value
		}
	}
	return false
}
