package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestProgressThrottlesAndFlushesFinal(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "sweep", time.Hour) // throttle everything but the final update
	p.Update(1, 10)                            // first update writes (last is zero)
	p.Update(2, 10)                            // throttled
	p.Update(3, 10)                            // throttled
	p.Update(10, 10)                           // final: always writes
	p.Done()
	out := buf.String()
	if got := strings.Count(out, "\r"); got != 2 {
		t.Fatalf("wrote %d progress lines, want 2 (first + final):\n%q", got, out)
	}
	if !strings.Contains(out, "10/10 jobs (100%") {
		t.Fatalf("final line missing completion: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("Done did not terminate the line")
	}
}

// TestProgressClampsOverdoneAndNegativeTotal is the regression test for
// the done > total rendering bug: the sweep error path corrects the total
// downward after completions were counted, so Update can briefly see
// done > total (or a negative total). The line must clamp to 100% and
// never print a negative total.
func TestProgressClampsOverdoneAndNegativeTotal(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "sweep", time.Nanosecond)
	p.Update(5, 3)
	if out := buf.String(); !strings.Contains(out, "(100%") {
		t.Fatalf("done > total not clamped to 100%%: %q", out)
	}
	buf.Reset()
	time.Sleep(2 * time.Nanosecond)
	p.Update(2, -4)
	out := buf.String()
	if strings.Contains(out, "-") {
		t.Fatalf("negative total printed: %q", out)
	}
	if !strings.Contains(out, "2/0 jobs (0%") {
		t.Fatalf("negative total not clamped to zero: %q", out)
	}
	p.Done()
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Update(1, 2)
	p.Done()
}

func TestProgressDoneWithoutUpdates(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "idle", 0)
	p.Done()
	if buf.Len() != 0 {
		t.Fatalf("Done wrote %q with no prior updates", buf.String())
	}
}
