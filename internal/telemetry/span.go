package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Request tracing. A Span measures one timed operation of a serving-path
// request (HTTP handling, admission wait, one experiment render, one sweep
// job, a memo-cache decision), linked into a trace by a shared trace_id
// and parent span ids. Spans ride the same *Tracer as the cycle streams
// and inherit its cost contract: every entry point is nil-safe, emission
// is behind the tracer's single atomic enabled flag, and call sites guard
// with Enabled() (enforced by the didtlint telemetryguard analyzer for
// Tracer.Start and Span.End) so a disabled tracer never even evaluates
// attribute arguments.
//
// Spans deliberately record wall-clock time — that is their whole point —
// which is why every clock read lives in this file, inside the telemetry
// package, with an explicit determinism exemption: span data flows to
// logs, /v1/spans exports and metrics, never into experiment result bytes.
//
// Propagation is via context.Context: ContextWithTracer carries the
// tracer into deep layers (the sweep engine starts per-job spans from it),
// Start links child spans to the parent span already in the context, and
// ContextWithTraceID seeds the trace id for layers — like access logging —
// that need request correlation even when span recording is off.

// Attr is one span attribute. Values are pre-rendered strings so records
// stay pointer-light and serialization is trivially canonical.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// AttrStr builds a string attribute.
func AttrStr(k, v string) Attr { return Attr{Key: k, Value: v} }

// AttrInt builds an integer attribute.
func AttrInt(k string, v int64) Attr { return Attr{Key: k, Value: formatInt(v)} }

// AttrBool builds a boolean attribute.
func AttrBool(k string, v bool) Attr {
	if v {
		return Attr{Key: k, Value: "true"}
	}
	return Attr{Key: k, Value: "false"}
}

// formatInt is strconv.FormatInt(v, 10) without pulling strconv into the
// struct-literal call path (kept tiny and allocation-predictable).
func formatInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// idState generates process-unique trace and span ids: an 8-byte random
// process nonce (crypto/rand, drawn once) plus an atomic counter. Ids are
// correlation keys for logs and span exports only — they never reach
// experiment output, so their uniqueness matters and their sequence does
// not.
var idState struct {
	once  sync.Once
	nonce uint64
	ctr   atomic.Uint64
}

func idNonce() uint64 {
	idState.once.Do(func() {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			idState.nonce = binary.LittleEndian.Uint64(b[:])
		} else {
			idState.nonce = 0x9e3779b97f4a7c15 // degraded but still counting
		}
	})
	return idState.nonce
}

// NewTraceID returns a fresh 32-hex-character trace id, unique within and
// across processes (random nonce ++ counter).
func NewTraceID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], idNonce())
	binary.BigEndian.PutUint64(b[8:], idState.ctr.Add(1))
	return hex.EncodeToString(b[:])
}

func newSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], idState.ctr.Add(1))
	return hex.EncodeToString(b[:])
}

// Context plumbing. Keys are unexported struct types per the context docs.
type (
	ctxKeyTracer  struct{}
	ctxKeySpan    struct{}
	ctxKeyTraceID struct{}
)

// ContextWithTracer returns a context carrying the tracer, making it
// reachable by deep layers (sim.Map starts per-job spans from it). A nil
// tracer is fine — lookups return nil and every span call degrades to a
// pointer test.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, ctxKeyTracer{}, t)
}

// TracerFromContext returns the context's tracer, or nil.
func TracerFromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(ctxKeyTracer{}).(*Tracer)
	return t
}

// ContextWithSpan returns a context carrying span as the current parent.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKeySpan{}, s)
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKeySpan{}).(*Span)
	return s
}

// ContextWithTraceID returns a context carrying a request-scoped trace id,
// for correlation layers (access logs, error envelopes) that must agree
// with span records. Start adopts this id for root spans.
func ContextWithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyTraceID{}, id)
}

// TraceIDFromContext returns the context's trace id: the current span's if
// one is active, the seeded request id otherwise, "" when neither exists.
func TraceIDFromContext(ctx context.Context) string {
	if s := SpanFromContext(ctx); s != nil {
		return s.traceID
	}
	id, _ := ctx.Value(ctxKeyTraceID{}).(string)
	return id
}

// Span is one in-flight timed operation. Created by Tracer.Start, closed
// by End; single-goroutine between the two (like a Stream, a span belongs
// to the goroutine running its operation). The nil *Span is a valid,
// permanently-disabled span.
type Span struct {
	t        *Tracer
	traceID  string
	spanID   string
	parentID string
	name     string
	start    time.Time
	dur      time.Duration
	attrs    []Attr
	ended    bool
}

// DefaultSpanRingCap bounds the tracer's completed-span ring when no
// capacity is set: deep enough for thousands of requests' worth of spans
// while keeping a long-lived server's footprint bounded.
const DefaultSpanRingCap = 1 << 12

// SetSpanRingCap rebounds the completed-span ring (n <= 0 selects
// DefaultSpanRingCap). Existing records are kept up to the new bound.
func (t *Tracer) SetSpanRingCap(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = DefaultSpanRingCap
	}
	t.spanMu.Lock()
	defer t.spanMu.Unlock()
	t.spanCap = n
	if len(t.spans) > n {
		// Keep the most recent n records, oldest-first.
		ordered := append(t.spans[t.spanHead:], t.spans[:t.spanHead]...)
		t.spans = append([]SpanRecord(nil), ordered[len(ordered)-n:]...)
		t.spanHead = 0
	}
}

// Start opens a span named name under t. Nil or disabled tracers return
// (ctx, nil) untouched; call sites still guard with t.Enabled() — enforced
// by didtlint — so attribute construction costs nothing when tracing is
// off. The span's trace id comes from the parent span in ctx, else the
// context's seeded trace id, else a fresh one; the returned context
// carries the new span as parent for nested Starts.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil || !t.enabled.Load() {
		return ctx, nil
	}
	s := &Span{
		t:     t,
		name:  name,
		start: time.Now(), //didt:allow determinism,purity -- spans exist to measure wall-clock request latency; they feed logs and span exports, never result bytes
		attrs: attrs,
	}
	if parent := SpanFromContext(ctx); parent != nil {
		s.traceID, s.parentID = parent.traceID, parent.spanID
	} else if id := TraceIDFromContext(ctx); id != "" {
		s.traceID = id
	} else {
		s.traceID = NewTraceID()
	}
	s.spanID = newSpanID()
	return ContextWithSpan(ctx, s), s
}

// Enabled reports whether this span is live and its tracer still emitting;
// nil-safe, the guard didtlint requires in front of End.
func (s *Span) Enabled() bool { return s != nil && s.t.enabled.Load() }

// TraceID returns the span's trace id ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SpanID returns the span's id ("" for a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// SetAttr adds (or overwrites) an attribute on an un-ended span; nil-safe.
func (s *Span) SetAttr(k, v string) {
	if s == nil || s.ended {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].Key == k {
			s.attrs[i].Value = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: k, Value: v})
}

// End closes the span, stamping its duration and appending the record to
// the tracer's ring. Nil-safe and idempotent: only the first End records.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start) //didt:allow determinism,purity -- span durations are the observability payload; they never reach result bytes
	s.t.recordSpan(SpanRecord{
		TraceID:       s.traceID,
		SpanID:        s.spanID,
		ParentID:      s.parentID,
		Name:          s.name,
		StartUnixNano: s.start.UnixNano(),
		DurationNs:    s.dur.Nanoseconds(),
		Attrs:         s.attrs,
	})
}

// DurationMS reports the ended span's duration in milliseconds (0 before
// End or on a nil span) — the one clock surface callers may consume, so
// histograms and log fields agree with the span record without reading
// wall clocks outside telemetry.
func (s *Span) DurationMS() float64 {
	if s == nil {
		return 0
	}
	return float64(s.dur) / 1e6
}

// SpanRecord is one completed span, the unit of the JSONL export.
type SpanRecord struct {
	TraceID       string `json:"trace_id"`
	SpanID        string `json:"span_id"`
	ParentID      string `json:"parent_id,omitempty"`
	Name          string `json:"name"`
	StartUnixNano int64  `json:"start_unix_ns"`
	DurationNs    int64  `json:"duration_ns"`
	Attrs         []Attr `json:"attrs,omitempty"`
}

// recordSpan appends a completed span, overwriting the oldest once the
// ring is full.
func (t *Tracer) recordSpan(r SpanRecord) {
	t.spanMu.Lock()
	defer t.spanMu.Unlock()
	if t.spanCap <= 0 {
		t.spanCap = DefaultSpanRingCap
	}
	if len(t.spans) < t.spanCap {
		t.spans = append(t.spans, r)
	} else {
		t.spans[t.spanHead] = r
		t.spanHead++
		if t.spanHead == len(t.spans) {
			t.spanHead = 0
		}
	}
	t.spanTotal++
}

// Spans returns the retained completed spans in completion order;
// nil-safe.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.spanMu.Lock()
	defer t.spanMu.Unlock()
	out := make([]SpanRecord, 0, len(t.spans))
	out = append(out, t.spans[t.spanHead:]...)
	out = append(out, t.spans[:t.spanHead]...)
	return out
}

// SpanTotal reports how many spans were ever recorded; SpanTotal minus
// len(Spans()) is the number the ring bound discarded.
func (t *Tracer) SpanTotal() uint64 {
	if t == nil {
		return 0
	}
	t.spanMu.Lock()
	defer t.spanMu.Unlock()
	return t.spanTotal
}

// Timer measures one wall-clock interval for operational metrics and log
// fields. It exists so serving-path packages never read clocks themselves:
// the only wall-clock calls stay inside telemetry, where the determinism
// exemptions are audited in one place.
type Timer struct{ start time.Time }

// StartTimer begins an interval.
func StartTimer() Timer {
	return Timer{start: time.Now()} //didt:allow determinism -- feeds request-latency metrics and log fields only, never result bytes
}

// ElapsedMS reports milliseconds since StartTimer.
func (t Timer) ElapsedMS() float64 {
	return float64(time.Since(t.start)) / 1e6 //didt:allow determinism -- feeds request-latency metrics and log fields only, never result bytes
}
