package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a pprof CPU profile written to path and returns
// the function that stops and closes it. An empty path is a no-op.
func StartCPUProfile(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects (for up-to-date allocation stats, as
// `go test -memprofile` does) and writes a heap profile to path. An empty
// path is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
