package telemetry

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), hand-rolled on the
// standard library: the didtd /metrics endpoint serves a registry snapshot
// in the form every Prometheus-compatible scraper ingests, alongside the
// canonical-JSON snapshot that remains the default.
//
// Metric names translate mechanically: every character outside
// [a-zA-Z0-9_:] becomes '_', so "didtd.requests_total" scrapes as
// "didtd_requests_total". A registry name may carry a label suffix in
// standard form — `family{key="value",...}` — which passes through to the
// exposition verbatim (callers write labels in canonical sorted order;
// the JSON snapshot treats the whole name as an opaque key, so both
// serializations stay deterministic). Output is canonical: families
// sorted by exposition name, one TYPE line per family, series sorted by
// label suffix within a family.
//
// Registry histograms are linear-bucket with clamped ends, so the
// exposition maps bucket i to upper bound lo+(i+1)*(hi-lo)/n and the last
// bucket — which absorbs every observation above hi — to le="+Inf",
// giving the cumulative form scrapers expect, plus _sum and _count.

// promName sanitizes one name segment into the exposition alphabet.
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// splitLabels separates a registry name into its family part and an
// optional `{...}` label suffix (passed through verbatim).
func splitLabels(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i:]
	}
	return name, ""
}

// promFloat renders a sample value; Prometheus accepts Go's shortest
// round-trip float form plus the special spellings below.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSeries is one sample line awaiting output.
type promSeries struct {
	labels string
	value  string
}

// promFamily groups the series of one exposition family.
type promFamily struct {
	name   string
	kind   string // counter | gauge | histogram
	series []promSeries
}

// mergeLabels splices extra label pairs (already in `k="v"` form) into an
// existing `{...}` suffix, or creates one.
func mergeLabels(labels string, extra ...string) string {
	inner := strings.Join(extra, ",")
	if labels == "" {
		if inner == "" {
			return ""
		}
		return "{" + inner + "}"
	}
	body := labels[1 : len(labels)-1]
	if inner == "" {
		return labels
	}
	if body == "" {
		return "{" + inner + "}"
	}
	return "{" + body + "," + inner + "}"
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format 0.0.4. The output is canonical for equal snapshots: families and
// series are explicitly sorted, never panic on empty or partial
// registries, and histograms always emit their full cumulative bucket
// ladder even with zero observations.
func WritePrometheus(w io.Writer, s Snapshot) error {
	fams := map[string]*promFamily{}
	family := func(name, kind string) (*promFamily, string) {
		fam, labels := splitLabels(name)
		fam = promName(fam)
		f, ok := fams[fam]
		if !ok {
			f = &promFamily{name: fam, kind: kind}
			fams[fam] = f
		}
		return f, labels
	}
	for _, name := range sortedKeys(s.Counters) {
		f, labels := family(name, "counter")
		f.series = append(f.series, promSeries{labels, strconv.FormatInt(s.Counters[name], 10)})
	}
	for _, name := range sortedKeys(s.Gauges) {
		f, labels := family(name, "gauge")
		f.series = append(f.series, promSeries{labels, promFloat(s.Gauges[name])})
	}
	type histSeries struct {
		labels string
		h      HistogramSnapshot
	}
	hists := map[string][]histSeries{}
	for _, name := range sortedKeys(s.Histograms) {
		fam, labels := splitLabels(name)
		fam = promName(fam)
		hists[fam] = append(hists[fam], histSeries{labels, s.Histograms[name]})
	}

	bw := bufio.NewWriter(w)
	for _, fam := range sortedKeys(fams) {
		f := fams[fam]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		bw.WriteString("# TYPE " + f.name + " " + f.kind + "\n")
		for _, se := range f.series {
			bw.WriteString(f.name + se.labels + " " + se.value + "\n")
		}
	}
	for _, fam := range sortedKeys(hists) {
		series := hists[fam]
		sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })
		bw.WriteString("# TYPE " + fam + " histogram\n")
		for _, se := range series {
			h := se.h
			cum := uint64(0)
			n := len(h.Buckets)
			for i, c := range h.Buckets {
				cum += c
				le := "+Inf"
				if i < n-1 {
					le = promFloat(h.Lo + float64(i+1)*(h.Hi-h.Lo)/float64(n))
				}
				labels := mergeLabels(se.labels, `le="`+le+`"`)
				bw.WriteString(fam + "_bucket" + labels + " " + strconv.FormatUint(cum, 10) + "\n")
			}
			if n == 0 {
				// A histogram with no buckets still needs the +Inf rung to
				// be a well-formed exposition histogram.
				bw.WriteString(fam + "_bucket" + mergeLabels(se.labels, `le="+Inf"`) + " " + strconv.FormatUint(h.Count, 10) + "\n")
			}
			sum := 0.0
			if h.Count > 0 {
				sum = h.Mean * float64(h.Count)
			}
			bw.WriteString(fam + "_sum" + se.labels + " " + promFloat(sum) + "\n")
			bw.WriteString(fam + "_count" + se.labels + " " + strconv.FormatUint(h.Count, 10) + "\n")
		}
	}
	return bw.Flush()
}
