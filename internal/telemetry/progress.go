package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress renders a single live status line ("\r"-rewritten, so it needs
// a terminal-ish writer such as stderr) for long parallel sweeps. Updates
// are throttled to at most one write per interval; Done always writes a
// final newline-terminated summary. Safe for concurrent use — worker
// goroutines report completions directly.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	label    string
	interval time.Duration
	last     time.Time
	started  time.Time
	wrote    bool
}

// NewProgress creates a progress line writing to w (typically os.Stderr).
// interval <= 0 selects 200ms.
func NewProgress(w io.Writer, label string, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	//didt:allow determinism -- progress lines go to stderr for humans, never into result artifacts
	return &Progress{w: w, label: label, interval: interval, started: time.Now()}
}

// Update reports done-of-total completion; nil-safe. Writes are throttled
// except for the final update (done == total), which always flushes.
func (p *Progress) Update(done, total int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now() //didt:allow determinism -- throttles a human-facing stderr status line only
	if done < total && now.Sub(p.last) < p.interval {
		return
	}
	p.last = now
	// Clamp pathological inputs rather than rendering nonsense: a sweep
	// error path can shrink the total after completions were counted, so
	// done may transiently exceed total (or total may go negative).
	if total < 0 {
		total = 0
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
		if pct > 100 {
			pct = 100
		}
	}
	fmt.Fprintf(p.w, "\r[%s] %d/%d jobs (%.0f%%, %s elapsed)   ",
		p.label, done, total, pct, now.Sub(p.started).Round(time.Second))
	p.wrote = true
}

// Done terminates the line; nil-safe, idempotent enough for deferred use.
func (p *Progress) Done() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.wrote {
		fmt.Fprintln(p.w)
		p.wrote = false
	}
}
