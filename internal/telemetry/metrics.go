package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. Safe for
// concurrent use; Add is one atomic add.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; nil-safe.
//
//didt:hotpath
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric. Safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v; nil-safe.
//
//didt:hotpath
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a bounded linear-bucket histogram: observations below Lo
// land in the first bucket, above Hi in the last. Mutex-protected — it is
// meant for per-run/per-sweep observations, not per-cycle hot paths.
type Histogram struct {
	mu      sync.Mutex
	lo, hi  float64
	buckets []uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

func newHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]uint64, buckets),
		min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one sample; nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := int(float64(len(h.buckets)) * (v - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	h.min = math.Min(h.min, v)
	h.max = math.Max(h.max, v)
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Lo      float64  `json:"lo"`
	Hi      float64  `json:"hi"`
	Count   uint64   `json:"count"`
	Mean    float64  `json:"mean"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []uint64 `json:"buckets"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Lo: h.lo, Hi: h.hi, Count: h.count,
		Buckets: append([]uint64(nil), h.buckets...)}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
		s.Min, s.Max = h.min, h.max
	}
	return s
}

// Registry is a named set of metrics. Metric handles are created on first
// use and shared thereafter; lookups take a mutex, so instrumented code
// should hold handles rather than re-resolving names per event. The zero
// value is not usable; use NewRegistry or the process-wide Default.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() float64{},
		hists:      map[string]*Histogram{},
	}
}

// defaultRegistry is the process-wide registry every internal package
// instruments; CLIs snapshot it into run manifests.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns (creating on first use) the named counter; nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge; nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// RegisterGaugeFunc registers a callback gauge evaluated at snapshot time
// (used for cache hit/miss statistics, whose source of truth lives in the
// caches themselves). Re-registering a name replaces the callback.
func (r *Registry) RegisterGaugeFunc(name string, f func() float64) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = f
}

// Histogram returns (creating on first use) the named bounded histogram.
// The bounds are fixed by the first caller; nil-safe.
func (r *Registry) Histogram(name string, lo, hi float64, buckets int) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(lo, hi, buckets)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a machine-readable registry dump. Serialization is canonical:
// MarshalJSON writes every section's keys in explicitly sorted order, so two
// snapshots of equal state are byte-identical by construction rather than by
// an encoding/json implementation detail.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot captures every metric's current value. Gauge funcs and histogram
// locks are invoked outside the registry lock (so callbacks may themselves
// read metrics) and in sorted name order, keeping evaluation order — and any
// side effects callbacks have — deterministic across runs.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Gauges: map[string]float64{}, Histograms: map[string]HistogramSnapshot{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for n, f := range r.gaugeFuncs {
		funcs[n] = f
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()
	for _, n := range sortedKeys(hists) {
		s.Histograms[n] = hists[n].snapshot()
	}
	for _, n := range sortedKeys(funcs) {
		s.Gauges[n] = funcs[n]()
	}
	return s
}

// writeSortedObject renders m as a JSON object with keys in sorted order.
func writeSortedObject[V any](buf *bytes.Buffer, m map[string]V) error {
	buf.WriteByte('{')
	for i, k := range sortedKeys(m) {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		vb, err := json.Marshal(m[k])
		if err != nil {
			return err
		}
		buf.Write(vb)
	}
	buf.WriteByte('}')
	return nil
}

// MarshalJSON writes the snapshot with explicitly sorted keys in every
// section. Byte-identical manifests for equal state are part of this
// package's determinism contract, so the ordering is spelled out here
// instead of inherited from encoding/json's map-key sorting.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(`{"counters":`)
	if err := writeSortedObject(&buf, s.Counters); err != nil {
		return nil, err
	}
	buf.WriteString(`,"gauges":`)
	if err := writeSortedObject(&buf, s.Gauges); err != nil {
		return nil, err
	}
	buf.WriteString(`,"histograms":`)
	if err := writeSortedObject(&buf, s.Histograms); err != nil {
		return nil, err
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// Manifest is the machine-readable record written alongside an experiment
// run: what ran, on what machine, and every metric the run produced.
type Manifest struct {
	Tool        string   `json:"tool"`
	Experiments []string `json:"experiments,omitempty"`
	Workers     int      `json:"workers"`
	// Spec and SpecKey record the resolved run spec (a spec.RunSpec,
	// typed as any because telemetry sits below the spec layer) and its
	// content hash, so a manifest pins exactly which configuration
	// produced its metrics.
	Spec          any      `json:"spec,omitempty"`
	SpecKey       string   `json:"spec_key,omitempty"`
	GOMAXPROCS    int      `json:"gomaxprocs"`
	NumCPU        int      `json:"num_cpu"`
	GoVersion     string   `json:"go_version"`
	GeneratedUnix int64    `json:"generated_unix"`
	TraceStreams  int      `json:"trace_streams,omitempty"`
	TraceEvents   uint64   `json:"trace_events,omitempty"`
	TraceDropped  uint64   `json:"trace_dropped,omitempty"`
	Metrics       Snapshot `json:"metrics"`
}

// NewManifest assembles a manifest for the named tool from the registry's
// current state, stamping host facts and (when a tracer is given) trace
// volume.
func NewManifest(tool string, workers int, r *Registry, t *Tracer) Manifest {
	m := Manifest{
		Tool:          tool,
		Workers:       workers,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		GoVersion:     runtime.Version(),
		GeneratedUnix: time.Now().Unix(), //didt:allow determinism -- records when the run happened; readers comparing manifests exclude this field
		Metrics:       r.Snapshot(),
	}
	for _, s := range t.Streams() {
		m.TraceStreams++
		m.TraceEvents += s.Total()
		m.TraceDropped += s.Dropped()
	}
	return m
}

// WriteJSON serializes the manifest with stable indentation.
func (m Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
