package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetEnabled(true) // must not panic
	s := tr.Stream("x")
	if s != nil {
		t.Fatal("nil tracer returned a live stream")
	}
	if s.Enabled() {
		t.Fatal("nil stream reports enabled")
	}
	s.Emit(1, KindVoltage, 0, 1.0) // must not panic
	if s.Name() != "" || s.Total() != 0 || s.Dropped() != 0 || s.Events() != nil {
		t.Fatal("nil stream leaked state")
	}
	if got := tr.Streams(); got != nil {
		t.Fatalf("nil tracer Streams() = %v, want nil", got)
	}
}

func TestDisabledTracerDropsEvents(t *testing.T) {
	tr := NewTracer(16)
	s := tr.Stream("sys")
	s.Emit(1, KindVoltage, 0, 1.0)
	tr.SetEnabled(false)
	s.Emit(2, KindVoltage, 0, 0.9)
	if got := s.Total(); got != 1 {
		t.Fatalf("disabled stream recorded: total = %d, want 1", got)
	}
	tr.SetEnabled(true)
	s.Emit(3, KindVoltage, 0, 0.8)
	if got := s.Total(); got != 2 {
		t.Fatalf("re-enabled stream total = %d, want 2", got)
	}
}

func TestRingGrowthAndWraparound(t *testing.T) {
	const ringCap = 2048 // larger than the 1024 initial allocation
	tr := NewTracer(ringCap)
	s := tr.Stream("sys")
	const n = 3 * ringCap
	for i := 0; i < n; i++ {
		s.Emit(uint64(i), KindVoltage, 0, float64(i))
	}
	if got := s.Total(); got != n {
		t.Fatalf("total = %d, want %d", got, n)
	}
	ev := s.Events()
	if len(ev) != ringCap {
		t.Fatalf("retained %d events, want ring cap %d", len(ev), ringCap)
	}
	if got := s.Dropped(); got != n-ringCap {
		t.Fatalf("dropped = %d, want %d", got, n-ringCap)
	}
	// The ring keeps the most recent ringCap events in chronological order.
	for i, e := range ev {
		want := uint64(n - ringCap + i)
		if e.Cycle != want {
			t.Fatalf("event %d has cycle %d, want %d", i, e.Cycle, want)
		}
	}
}

func TestDefaultStreamName(t *testing.T) {
	tr := NewTracer(0)
	if got := tr.Stream("").Name(); got != "system" {
		t.Fatalf("empty stream name = %q, want %q", got, "system")
	}
}

func TestStreamsCanonicalOrder(t *testing.T) {
	// Register streams in one order, emit, and verify Streams() sorts by
	// name then content — the property that makes serialized traces
	// byte-identical regardless of sweep completion order.
	build := func(order []int) *Tracer {
		tr := NewTracer(64)
		names := []string{"c", "a", "b", "a"}
		streams := make([]*Stream, len(names))
		for _, i := range order {
			streams[i] = tr.Stream(names[i])
		}
		streams[0].Emit(5, KindVoltage, 0, 1)
		streams[1].Emit(1, KindVoltage, 0, 1)
		streams[2].Emit(2, KindVoltage, 0, 1)
		streams[3].Emit(9, KindGate, 1, 0.9)
		return tr
	}
	serialize := func(tr *Tracer) string {
		var b bytes.Buffer
		if err := WriteJSONL(&b, tr); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := serialize(build([]int{0, 1, 2, 3}))
	b := serialize(build([]int{3, 2, 1, 0}))
	if a != b {
		t.Fatalf("trace depends on stream registration order:\n%s\nvs\n%s", a, b)
	}
	names := []string{}
	for _, s := range build([]int{2, 0, 3, 1}).Streams() {
		names = append(names, s.Name())
	}
	if got := strings.Join(names, ","); got != "a,a,b,c" {
		t.Fatalf("canonical order = %s, want a,a,b,c", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(64)
	s1 := tr.Stream("alpha")
	s2 := tr.Stream("beta")
	want := map[string][]Event{
		"alpha": {
			{Cycle: 10, Kind: KindSensorLevel, Arg: 1, Value: 0.94},
			{Cycle: 11, Kind: KindGate, Arg: 1, Value: 0.94},
			{Cycle: 40, Kind: KindGate, Arg: 0, Value: 0.99},
		},
		"beta": {
			{Cycle: 7, Kind: KindEmergency, Arg: 1, Value: 0.91},
			{Cycle: 8, Kind: KindQuadrantVoltage, Arg: 3, Value: 0.97},
		},
	}
	for _, e := range want["alpha"] {
		s1.Emit(e.Cycle, e.Kind, e.Arg, e.Value)
	}
	for _, e := range want["beta"] {
		s2.Emit(e.Cycle, e.Kind, e.Arg, e.Value)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-trip produced %d streams, want %d", len(got), len(want))
	}
	for name, evs := range want {
		if len(got[name]) != len(evs) {
			t.Fatalf("stream %s: %d events, want %d", name, len(got[name]), len(evs))
		}
		for i := range evs {
			if got[name][i] != evs[i] {
				t.Fatalf("stream %s event %d = %+v, want %+v", name, i, got[name][i], evs[i])
			}
		}
	}
}

func TestReadJSONLRejectsUnknownKind(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader(`{"stream":"x","cycle":1,"kind":"bogus"}`))
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindSensorLevel; k <= KindMark; k++ {
		got, ok := kindFromString(k.String())
		if !ok || got != k {
			t.Fatalf("kind %d does not round-trip through %q", k, k.String())
		}
	}
	if _, ok := kindFromString("kind(99)"); ok {
		t.Fatal("invalid kind string accepted")
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := NewTracer(64)
	s := tr.Stream("fig11 stressmark controller")
	s.Emit(100, KindVoltage, 0, 0.97)
	s.Emit(100, KindCurrent, 0, 31.5)
	s.Emit(101, KindSensorLevel, 1, 0.94)
	s.Emit(102, KindGate, 1, 0.94)
	s.Emit(120, KindGate, 0, 0.99)
	s.Emit(130, KindPhantom, 1, 1.04)
	s.Emit(140, KindEmergency, 1, 0.89)
	s.Emit(150, KindQuadrantVoltage, 2, 0.96)
	s.Emit(160, KindMark, 0, 0)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr, 3e9); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			PID   int     `json:"pid"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	phases := map[string]int{}
	names := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e.Phase]++
		names[e.Name]++
		if e.Phase != "M" && e.TS < 0 {
			t.Fatalf("negative timestamp on %q", e.Name)
		}
	}
	if phases["M"] != 2 {
		t.Fatalf("want process_name + thread_name metadata events, got %d", phases["M"])
	}
	if phases["C"] == 0 || phases["i"] == 0 {
		t.Fatalf("want counter and instant events, got phases %v", phases)
	}
	for _, want := range []string{"voltage (V)", "current (A)", "sensor: low", "gate engage", "phantom engage", "emergency", "quadrant 2 voltage (V)"} {
		if names[want] == 0 {
			t.Fatalf("chrome trace missing %q events; have %v", want, names)
		}
	}
	// 3 GHz: cycle 102 is 0.034 µs.
	for _, e := range doc.TraceEvents {
		if e.Name == "gate engage" {
			if want := 102 * 1e6 / 3e9; e.TS < want*0.99 || e.TS > want*1.01 {
				t.Fatalf("gate engage ts = %v µs, want ≈%v", e.TS, want)
			}
		}
	}
}

// TestChromeTraceStreamCounterIsolation is the regression test for the
// counter-track collision: the trace-event format keys counters by
// (pid, name), and every stream used to emit under PID 1, merging
// same-named counters from different streams into one garbled track.
// Each stream now gets its own PID, labeled via process_name metadata.
func TestChromeTraceStreamCounterIsolation(t *testing.T) {
	tr := NewTracer(64)
	a := tr.Stream("core A")
	b := tr.Stream("core B")
	a.Emit(1, KindVoltage, 0, 0.98)
	a.Emit(1, KindCurrent, 0, 30)
	b.Emit(1, KindVoltage, 0, 1.02)
	b.Emit(1, KindCurrent, 0, 45)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr, 3e9); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string                 `json:"name"`
			Phase string                 `json:"ph"`
			PID   int                    `json:"pid"`
			Args  map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	pidsByCounter := map[string]map[int]bool{}
	processNames := map[int]string{}
	for _, e := range doc.TraceEvents {
		if e.Phase == "C" {
			if pidsByCounter[e.Name] == nil {
				pidsByCounter[e.Name] = map[int]bool{}
			}
			pidsByCounter[e.Name][e.PID] = true
		}
		if e.Phase == "M" && e.Name == "process_name" {
			processNames[e.PID], _ = e.Args["name"].(string)
		}
	}
	for _, name := range []string{"voltage (V)", "current (A)"} {
		if got := len(pidsByCounter[name]); got != 2 {
			t.Fatalf("counter %q spans %d pid(s), want 2 (one per stream); counters: %v", name, got, pidsByCounter)
		}
	}
	if len(processNames) != 2 {
		t.Fatalf("want 2 process_name metadata entries, got %v", processNames)
	}
	seen := map[string]bool{}
	for _, n := range processNames {
		seen[n] = true
	}
	if !seen["core A"] || !seen["core B"] {
		t.Fatalf("process names %v do not label the streams", processNames)
	}
}

func TestChromeTraceNilTracer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, 0); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("nil-tracer chrome trace is invalid JSON")
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	tr := NewTracer(1 << 12)
	s := tr.Stream("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Emit(uint64(i), KindVoltage, 0, 1.0)
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	tr := NewTracer(1 << 12)
	tr.SetEnabled(false)
	s := tr.Stream("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Emit(uint64(i), KindVoltage, 0, 1.0)
	}
}
