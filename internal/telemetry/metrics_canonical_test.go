package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
)

// populate fills r with a spread of metric kinds whose creation order is
// deliberately shuffled between calls, so any iteration-order dependence in
// Snapshot or its serialization would surface as byte differences.
func populate(r *Registry, names []string) {
	for _, n := range names {
		r.Counter("count_" + n).Add(int64(len(n)))
		r.Gauge("gauge_" + n).Set(float64(len(n)) / 3)
		r.Histogram("hist_"+n, 0, 10, 4).Observe(float64(len(n)))
		name := n
		r.RegisterGaugeFunc("func_"+n, func() float64 { return float64(len(name)) })
	}
}

// TestSnapshotByteIdentical asserts the canonical-serialization contract:
// two registries holding equal state — even when built in different
// insertion orders — marshal to byte-identical JSON, and repeated snapshots
// of one registry are byte-identical to each other.
func TestSnapshotByteIdentical(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	populate(a, []string{"alpha", "bravo", "charlie", "delta", "echo"})
	populate(b, []string{"echo", "charlie", "alpha", "delta", "bravo"})

	ja, err := json.Marshal(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Errorf("snapshots of equal state differ:\n%s\n%s", ja, jb)
	}

	ja2, err := json.Marshal(a.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, ja2) {
		t.Errorf("repeated snapshots of one registry differ:\n%s\n%s", ja, ja2)
	}
}

// TestSnapshotMarshalShape pins the JSON shape: MarshalJSON hand-writes the
// object, so it must stay interchangeable with the default struct encoding
// (three map-valued sections, keys sorted).
func TestSnapshotMarshalShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(2.5)
	r.Histogram("h", 0, 1, 2).Observe(0.25)
	r.RegisterGaugeFunc("gf", func() float64 { return 7 })

	got, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var round struct {
		Counters   map[string]int64             `json:"counters"`
		Gauges     map[string]float64           `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(got, &round); err != nil {
		t.Fatalf("canonical output is not the expected shape: %v\n%s", err, got)
	}
	if round.Counters["c"] != 1 || round.Gauges["g"] != 2.5 || round.Gauges["gf"] != 7 {
		t.Errorf("round-trip lost values: %+v", round)
	}
	if h, ok := round.Histograms["h"]; !ok || h.Count != 1 {
		t.Errorf("round-trip lost histogram: %+v", round.Histograms)
	}

	// Gauge funcs must be evaluated in sorted name order: register funcs
	// that record their evaluation sequence and check it is alphabetical.
	seq := []string{}
	r2 := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mike"} {
		name := n
		r2.RegisterGaugeFunc(name, func() float64 {
			seq = append(seq, name)
			return 0
		})
	}
	r2.Snapshot()
	if len(seq) != 3 || seq[0] != "alpha" || seq[1] != "mike" || seq[2] != "zeta" {
		t.Errorf("gauge funcs evaluated in order %v, want alphabetical", seq)
	}
}
