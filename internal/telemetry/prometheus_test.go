package telemetry

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var updatePromGolden = flag.Bool("update", false, "rewrite the Prometheus exposition golden file")

// promRegistry builds the fixture registry behind the golden file: every
// metric kind, a labeled series, and names needing sanitization.
func promRegistry() *Registry {
	r := NewRegistry()
	r.Counter("didtd.requests_total").Add(42)
	r.Counter(`didtd.requests_total{code="429"}`).Add(3)
	r.Counter("sim.pool.jobs_completed_total").Add(128)
	r.Gauge("didtd.active_requests").Set(2)
	r.Gauge("didtd.queue.depth-max").Set(64) // '-' sanitizes to '_'
	r.RegisterGaugeFunc("cache.experiments_memo.len", func() float64 { return 17 })
	h := r.Histogram("didtd.request_duration_ms", 0, 100, 4)
	for _, v := range []float64{1, 26, 51, 99, 250} { // one per bucket + one overflow
		h.Observe(v)
	}
	he := r.Histogram(`didtd.sweep.experiment_duration_ms{experiment="fig2"}`, 0, 10, 2)
	he.Observe(4)
	r.Histogram("didtd.admission.queue_wait_ms", 0, 50, 2) // zero observations
	return r
}

// TestPrometheusGolden pins the full exposition output: family sorting,
// TYPE lines, label pass-through, sanitization, and the cumulative
// histogram ladder. Regenerate with `go test ./internal/telemetry -run
// TestPrometheusGolden -update` after an intentional format change.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *updatePromGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden (-update to regenerate):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestPrometheusByteIdentical mirrors the JSON canonicalization test:
// registries with equal state built in different insertion orders must
// expose byte-identically, and repeated snapshots must agree.
func TestPrometheusByteIdentical(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	populate(a, []string{"alpha", "bravo", "charlie", "delta", "echo"})
	populate(b, []string{"echo", "charlie", "alpha", "delta", "bravo"})
	var wa, wb, wa2 bytes.Buffer
	if err := WritePrometheus(&wa, a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&wb, b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wa.Bytes(), wb.Bytes()) {
		t.Errorf("expositions of equal state differ:\n%s\n%s", wa.String(), wb.String())
	}
	if err := WritePrometheus(&wa2, a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wa.Bytes(), wa2.Bytes()) {
		t.Errorf("repeated expositions differ")
	}
}

// TestPrometheusWellFormed parses the exposition line by line: every
// sample line must match the text-format grammar, every family must have
// exactly one TYPE line appearing before its samples, and histogram
// bucket counts must be cumulative and end at le="+Inf" equal to _count.
func TestPrometheusWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
	typeLine := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	typed := map[string]string{}
	lastBucket := map[string]uint64{} // series key -> previous cumulative count
	counts := map[string]uint64{}
	infs := map[string]uint64{}
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if m := typeLine.FindStringSubmatch(line); m != nil {
			if _, dup := typed[m[1]]; dup {
				t.Errorf("duplicate TYPE line for %s", m[1])
			}
			typed[m[1]] = m[2]
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line does not match exposition grammar: %q", line)
			continue
		}
		name, labels, val := m[1], m[2], m[3]
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && typed[strings.TrimSuffix(name, suf)] == "histogram" {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if _, ok := typed[base]; !ok {
			t.Errorf("sample %q has no preceding TYPE line", line)
		}
		if strings.HasSuffix(name, "_bucket") && typed[base] == "histogram" {
			c, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Errorf("bucket count %q is not an unsigned int", val)
				continue
			}
			key := base + stripLe(labels)
			if c < lastBucket[key] {
				t.Errorf("bucket counts not cumulative at %q: %d < %d", line, c, lastBucket[key])
			}
			lastBucket[key] = c
			if strings.Contains(labels, `le="+Inf"`) {
				infs[key] = c
			}
		}
		if strings.HasSuffix(name, "_count") && typed[base] == "histogram" {
			c, _ := strconv.ParseUint(val, 10, 64)
			counts[base+labels] = c
		}
	}
	if len(infs) == 0 {
		t.Fatal("no +Inf buckets found")
	}
	for key, inf := range infs {
		if counts[key] != inf {
			t.Errorf("series %s: +Inf bucket %d != _count %d", key, inf, counts[key])
		}
	}
}

// stripLe removes the le pair from a label suffix so bucket lines of one
// series share a key.
func stripLe(labels string) string {
	if labels == "" {
		return ""
	}
	var kept []string
	for _, p := range strings.Split(labels[1:len(labels)-1], ",") {
		if !strings.HasPrefix(p, `le="`) {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

// TestPrometheusNeverPanics drives the writer across empty, partial, and
// adversarial registries — the fuzz-style safety net the handler relies on.
func TestPrometheusNeverPanics(t *testing.T) {
	cases := []func() Snapshot{
		func() Snapshot { return Snapshot{} },
		func() Snapshot { return NewRegistry().Snapshot() },
		func() Snapshot {
			r := NewRegistry()
			r.Counter("") // empty name
			return r.Snapshot()
		},
		func() Snapshot {
			r := NewRegistry()
			r.Counter("9starts.with-digit").Inc()
			r.Gauge("unicode.metric.é").Set(1)
			r.Gauge("nan").Set(math.NaN())
			r.Gauge("inf").Set(math.Inf(-1))
			return r.Snapshot()
		},
		func() Snapshot {
			r := NewRegistry()
			r.Counter("half{open").Inc()     // brace without close: treated as opaque
			r.Counter(`odd{}`).Inc()         // empty label set
			r.Counter(`x{a="1"}`).Inc()      // labeled
			r.Histogram("h", 0, 0, 0)        // degenerate bounds, zero buckets requested
			r.Histogram(`h{q="2"}`, 5, 5, 1) // hi == lo
			r.Histogram("neg", -10, -5, 3).Observe(-7)
			return r.Snapshot()
		},
	}
	for i, mk := range cases {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("case %d panicked: %v", i, p)
				}
			}()
			var buf bytes.Buffer
			if err := WritePrometheus(&buf, mk()); err != nil {
				t.Errorf("case %d: %v", i, err)
			}
		}()
	}
}

// FuzzWritePrometheus feeds arbitrary metric names and values through the
// writer; it must never panic regardless of name contents.
func FuzzWritePrometheus(f *testing.F) {
	f.Add("didtd.requests_total", `x{a="1"}`, 1.5)
	f.Add("", "{", math.Inf(1))
	f.Add("h", "9", math.NaN())
	f.Fuzz(func(t *testing.T, a, b string, v float64) {
		r := NewRegistry()
		r.Counter(a).Inc()
		r.Gauge(b).Set(v)
		r.Histogram(a+b, v, v+1, 3).Observe(v)
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatal("empty exposition for non-empty registry")
		}
	})
}
