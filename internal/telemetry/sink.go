package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonlEvent is the JSONL wire form of one event.
type jsonlEvent struct {
	Stream string  `json:"stream"`
	Cycle  uint64  `json:"cycle"`
	Kind   string  `json:"kind"`
	Arg    int32   `json:"arg,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// WriteJSONL serializes every stream as one JSON object per line, streams
// in canonical order, events in chronological order within a stream.
func WriteJSONL(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.Streams() {
		for _, e := range s.Events() {
			je := jsonlEvent{Stream: s.Name(), Cycle: e.Cycle, Kind: e.Kind.String(), Arg: e.Arg, Value: e.Value}
			if err := enc.Encode(je); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace back into per-stream event lists, the
// round-trip counterpart of WriteJSONL (used by tests and external tools
// that post-process traces).
func ReadJSONL(r io.Reader) (map[string][]Event, error) {
	out := map[string][]Event{}
	dec := json.NewDecoder(r)
	for dec.More() {
		var je jsonlEvent
		if err := dec.Decode(&je); err != nil {
			return nil, err
		}
		k, ok := kindFromString(je.Kind)
		if !ok {
			return nil, fmt.Errorf("telemetry: unknown event kind %q", je.Kind)
		}
		out[je.Stream] = append(out[je.Stream], Event{Cycle: je.Cycle, Kind: k, Arg: je.Arg, Value: je.Value})
	}
	return out, nil
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Perfetto and chrome://tracing both load the JSON-object form produced
// by WriteChromeTrace.
type chromeEvent struct {
	Name  string                 `json:"name"`
	Cat   string                 `json:"cat,omitempty"`
	Phase string                 `json:"ph"`
	TS    float64                `json:"ts"`            // microseconds
	Dur   float64                `json:"dur,omitempty"` // microseconds, X events
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// levelName maps a KindSensorLevel Arg to its display name. The values
// mirror sensor.Level without importing the package (telemetry is a leaf).
func levelName(arg int32) string {
	switch arg {
	case 1:
		return "sensor: low"
	case 2:
		return "sensor: high"
	}
	return "sensor: normal"
}

// WriteChromeTrace serializes the tracer in Chrome trace-event format.
// State-like kinds (voltage, current, gate, phantom, emergency, quadrant
// voltages) become counter tracks — robust to ring truncation, where a
// begin/end pairing could lose its opening half — and discrete occurrences
// (sensor transitions, gate/phantom engagement, marks) become instant
// events. clockHz converts cycle timestamps to trace microseconds;
// clockHz <= 0 defaults to the paper's 3 GHz clock.
//
// Each stream gets its own PID (assigned in the canonical Streams()
// order, so the serialization is deterministic): the trace-event format
// keys counter tracks by (pid, name), so putting every stream under one
// PID would merge same-named counters ("voltage (V)", "current (A)") from
// different streams into a single garbled track. Per-stream process_name
// metadata labels each PID with the stream name.
func WriteChromeTrace(w io.Writer, t *Tracer, clockHz float64) error {
	if clockHz <= 0 {
		clockHz = 3e9
	}
	usPerCycle := 1e6 / clockHz
	tr := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}
	for i, s := range t.Streams() {
		pid := i + 1 // pid/tid 0 render poorly in some viewers
		const tid = 1
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid, TID: tid,
			Args: map[string]interface{}{"name": s.Name()},
		}, chromeEvent{
			Name: "thread_name", Phase: "M", PID: pid, TID: tid,
			Args: map[string]interface{}{"name": s.Name()},
		})
		for _, e := range s.Events() {
			ts := float64(e.Cycle) * usPerCycle
			switch e.Kind {
			case KindVoltage:
				tr.TraceEvents = append(tr.TraceEvents, counter("voltage (V)", ts, pid, tid, "v", e.Value))
			case KindCurrent:
				tr.TraceEvents = append(tr.TraceEvents, counter("current (A)", ts, pid, tid, "i", e.Value))
			case KindQuadrantVoltage:
				name := fmt.Sprintf("quadrant %d voltage (V)", e.Arg)
				tr.TraceEvents = append(tr.TraceEvents, counter(name, ts, pid, tid, "v", e.Value))
			case KindGate:
				tr.TraceEvents = append(tr.TraceEvents, counter("gating", ts, pid, tid, "on", float64(e.Arg)))
				if e.Arg == 1 {
					tr.TraceEvents = append(tr.TraceEvents, instant("gate engage", "actuation", ts, pid, tid, e.Value))
				}
			case KindPhantom:
				tr.TraceEvents = append(tr.TraceEvents, counter("phantom-fire", ts, pid, tid, "on", float64(e.Arg)))
				if e.Arg == 1 {
					tr.TraceEvents = append(tr.TraceEvents, instant("phantom engage", "actuation", ts, pid, tid, e.Value))
				}
			case KindEmergency:
				tr.TraceEvents = append(tr.TraceEvents, counter("emergency", ts, pid, tid, "on", float64(e.Arg)))
				if e.Arg == 1 {
					tr.TraceEvents = append(tr.TraceEvents, instant("emergency", "emergency", ts, pid, tid, e.Value))
				}
			case KindSensorLevel:
				tr.TraceEvents = append(tr.TraceEvents, instant(levelName(e.Arg), "sensor", ts, pid, tid, e.Value))
			case KindMark:
				tr.TraceEvents = append(tr.TraceEvents, instant("mark", "mark", ts, pid, tid, e.Value))
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// WriteSpansJSONL serializes the tracer's completed request spans as one
// JSON object per line in completion order — the export the didtd
// /v1/spans endpoint serves. Span records are operational data (wall-clock
// timings, request correlation ids); they are not part of the byte-identical
// result contract.
func WriteSpansJSONL(w io.Writer, t *Tracer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range t.Spans() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpansJSONL parses a span JSONL export back into records, the
// round-trip counterpart of WriteSpansJSONL (tests, external tools).
func ReadSpansJSONL(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	dec := json.NewDecoder(r)
	for dec.More() {
		var sr SpanRecord
		if err := dec.Decode(&sr); err != nil {
			return nil, err
		}
		out = append(out, sr)
	}
	return out, nil
}

// WriteSpanChromeTrace serializes completed request spans as Chrome
// trace-event "complete" (X) events, loadable in Perfetto next to the
// cycle traces. Each distinct trace id gets its own thread row (assigned
// in first-seen completion order) so concurrent requests render side by
// side; thread_name metadata labels the row with the trace id.
func WriteSpanChromeTrace(w io.Writer, t *Tracer) error {
	tr := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	const pid = 1
	tids := map[string]int{}
	for _, r := range t.Spans() {
		tid, ok := tids[r.TraceID]
		if !ok {
			tid = len(tids) + 1
			tids[r.TraceID] = tid
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: pid, TID: tid,
				Args: map[string]interface{}{"name": "trace " + r.TraceID},
			})
		}
		args := map[string]interface{}{
			"trace_id": r.TraceID, "span_id": r.SpanID,
		}
		if r.ParentID != "" {
			args["parent_id"] = r.ParentID
		}
		for _, a := range r.Attrs {
			args[a.Key] = a.Value
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: r.Name, Cat: "span", Phase: "X",
			TS:  float64(r.StartUnixNano) / 1e3,
			Dur: float64(r.DurationNs) / 1e3,
			PID: pid, TID: tid, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

func counter(name string, ts float64, pid, tid int, key string, v float64) chromeEvent {
	return chromeEvent{Name: name, Cat: "state", Phase: "C", TS: ts, PID: pid, TID: tid,
		Args: map[string]interface{}{key: v}}
}

func instant(name, cat string, ts float64, pid, tid int, v float64) chromeEvent {
	return chromeEvent{Name: name, Cat: cat, Phase: "i", TS: ts, PID: pid, TID: tid, Scope: "t",
		Args: map[string]interface{}{"voltage": v}}
}
