package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

func TestSpanParentChildLinkage(t *testing.T) {
	tr := NewTracer(0)
	ctx := context.Background()
	ctx, root := tr.Start(ctx, "request", AttrStr("path", "/v1/sweep"))
	if root == nil {
		t.Fatal("enabled tracer returned nil root span")
	}
	cctx, child := tr.Start(ctx, "experiment", AttrStr("experiment", "fig2"))
	_, grand := tr.Start(cctx, "sim.job", AttrInt("index", 3))
	if child.TraceID() != root.TraceID() || grand.TraceID() != root.TraceID() {
		t.Fatalf("trace ids diverge: root=%s child=%s grand=%s",
			root.TraceID(), child.TraceID(), grand.TraceID())
	}
	grand.End()
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Completion order: grand, child, root.
	if spans[0].Name != "sim.job" || spans[1].Name != "experiment" || spans[2].Name != "request" {
		t.Fatalf("unexpected completion order: %v %v %v", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[2].ParentID != "" {
		t.Errorf("root span has parent %q", spans[2].ParentID)
	}
	if spans[1].ParentID != spans[2].SpanID {
		t.Errorf("child parent %q != root span id %q", spans[1].ParentID, spans[2].SpanID)
	}
	if spans[0].ParentID != spans[1].SpanID {
		t.Errorf("grandchild parent %q != child span id %q", spans[0].ParentID, spans[1].SpanID)
	}
	if spans[0].DurationNs < 0 {
		t.Errorf("negative duration %d", spans[0].DurationNs)
	}
}

func TestSpanAdoptsSeededTraceID(t *testing.T) {
	tr := NewTracer(0)
	id := NewTraceID()
	ctx := ContextWithTraceID(context.Background(), id)
	if got := TraceIDFromContext(ctx); got != id {
		t.Fatalf("seeded trace id not readable: got %q want %q", got, id)
	}
	sctx, s := tr.Start(ctx, "request")
	if s.TraceID() != id {
		t.Errorf("root span trace id %q does not adopt seeded id %q", s.TraceID(), id)
	}
	// With a span active, the span's id wins (they are equal here).
	if got := TraceIDFromContext(sctx); got != id {
		t.Errorf("TraceIDFromContext with active span = %q, want %q", got, id)
	}
	s.End()
}

func TestSpanDisabledAndNilTracer(t *testing.T) {
	var nilTr *Tracer
	ctx, s := nilTr.Start(context.Background(), "x", AttrStr("k", "v"))
	if s != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil tracer mutated context")
	}
	s.End() // must not panic
	s.SetAttr("a", "b")
	if s.Enabled() {
		t.Error("nil span reports Enabled")
	}
	if s.TraceID() != "" || s.SpanID() != "" || s.DurationMS() != 0 {
		t.Error("nil span leaks ids or duration")
	}

	tr := NewTracer(0)
	tr.SetEnabled(false)
	_, s2 := tr.Start(context.Background(), "x")
	if s2 != nil {
		t.Fatal("disabled tracer returned non-nil span")
	}
	if n := len(tr.Spans()); n != 0 {
		t.Fatalf("disabled tracer recorded %d spans", n)
	}
}

func TestSpanRingBound(t *testing.T) {
	tr := NewTracer(0)
	tr.SetSpanRingCap(4)
	for i := 0; i < 10; i++ {
		_, s := tr.Start(context.Background(), "op", AttrInt("i", int64(i)))
		s.End()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	if tr.SpanTotal() != 10 {
		t.Fatalf("SpanTotal = %d, want 10", tr.SpanTotal())
	}
	// Ring keeps the most recent, oldest-first: i = 6..9.
	for k, want := range []string{"6", "7", "8", "9"} {
		if got := spans[k].Attrs[0].Value; got != want {
			t.Errorf("spans[%d] i=%s, want %s", k, got, want)
		}
	}
	// Shrinking keeps the most recent records.
	tr.SetSpanRingCap(2)
	spans = tr.Spans()
	if len(spans) != 2 || spans[0].Attrs[0].Value != "8" || spans[1].Attrs[0].Value != "9" {
		t.Fatalf("after shrink: %+v", spans)
	}
}

func TestSpanSetAttrAndEndIdempotent(t *testing.T) {
	tr := NewTracer(0)
	_, s := tr.Start(context.Background(), "op", AttrStr("outcome", "pending"))
	s.SetAttr("outcome", "ok")
	s.SetAttr("cache_hit", "true")
	s.End()
	s.SetAttr("outcome", "late") // after End: dropped
	s.End()                      // second End: no second record
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("End recorded %d spans, want 1", len(spans))
	}
	got := map[string]string{}
	for _, a := range spans[0].Attrs {
		got[a.Key] = a.Value
	}
	if got["outcome"] != "ok" || got["cache_hit"] != "true" {
		t.Errorf("attrs = %v", got)
	}
	if s.DurationMS() < 0 {
		t.Errorf("negative duration")
	}
}

func TestTraceIDFormat(t *testing.T) {
	hex32 := regexp.MustCompile(`^[0-9a-f]{32}$`)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if !hex32.MatchString(id) {
			t.Fatalf("trace id %q is not 32 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
	tr := NewTracer(0)
	_, s := tr.Start(context.Background(), "op")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(s.SpanID()) {
		t.Fatalf("span id %q is not 16 hex chars", s.SpanID())
	}
	s.End()
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(0)
	ctx, root := tr.Start(context.Background(), "request", AttrStr("path", "/v1/sweep"))
	_, child := tr.Start(ctx, "experiment", AttrStr("experiment", "fig2"), AttrBool("cache_hit", false))
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteSpansJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var first map[string]interface{}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	for _, k := range []string{"trace_id", "span_id", "name", "start_unix_ns", "duration_ns"} {
		if _, ok := first[k]; !ok {
			t.Errorf("line 1 missing %q: %s", k, lines[0])
		}
	}

	back, err := ReadSpansJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := tr.Spans()
	if len(back) != len(orig) {
		t.Fatalf("round-trip lost records: %d != %d", len(back), len(orig))
	}
	for i := range back {
		a, _ := json.Marshal(back[i])
		b, _ := json.Marshal(orig[i])
		if !bytes.Equal(a, b) {
			t.Errorf("record %d differs after round-trip:\n%s\n%s", i, a, b)
		}
	}
}

func TestSpanChromeTrace(t *testing.T) {
	tr := NewTracer(0)
	ctx, root := tr.Start(context.Background(), "request")
	_, child := tr.Start(ctx, "experiment", AttrStr("experiment", "fig2"))
	child.End()
	root.End()
	// A second, unrelated trace gets its own thread row.
	_, other := tr.Start(context.Background(), "request")
	other.End()

	var buf bytes.Buffer
	if err := WriteSpanChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string                 `json:"name"`
			Phase string                 `json:"ph"`
			TID   int                    `json:"tid"`
			Dur   float64                `json:"dur"`
			Args  map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	var xEvents, metas int
	tids := map[int]bool{}
	for _, e := range out.TraceEvents {
		switch e.Phase {
		case "X":
			xEvents++
			tids[e.TID] = true
			if e.Args["trace_id"] == "" {
				t.Errorf("X event %q missing trace_id arg", e.Name)
			}
		case "M":
			metas++
		}
	}
	if xEvents != 3 {
		t.Errorf("got %d X events, want 3", xEvents)
	}
	if len(tids) != 2 {
		t.Errorf("got %d distinct tids, want 2 (one per trace)", len(tids))
	}
	if metas != 2 {
		t.Errorf("got %d thread_name metadata events, want 2", metas)
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	if ms := tm.ElapsedMS(); ms < 0 {
		t.Errorf("negative elapsed %v", ms)
	}
}
