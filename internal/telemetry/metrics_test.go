package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	var g *Gauge
	g.Set(3.5)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	var h *Histogram
	h.Observe(1)
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", 0, 1, 4) != nil {
		t.Fatal("nil registry handed out live metrics")
	}
	r.RegisterGaugeFunc("x", func() float64 { return 1 })
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistryHandlesAreShared(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("runs")
	b := r.Counter("runs")
	if a != b {
		t.Fatal("same name resolved to different counters")
	}
	a.Add(2)
	b.Inc()
	if got := r.Counter("runs").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if r.Gauge("depth") != r.Gauge("depth") {
		t.Fatal("same name resolved to different gauges")
	}
}

func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestHistogramBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ipc", 0, 8, 4) // buckets of width 2
	for _, v := range []float64{-3, 0.5, 1.9, 3, 7.9, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["ipc"]
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Min != -3 || s.Max != 100 {
		t.Fatalf("min/max = %v/%v, want -3/100", s.Min, s.Max)
	}
	want := []uint64{3, 1, 0, 2} // below-lo clamps to first, above-hi to last
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Fatalf("buckets = %v, want %v", s.Buckets, want)
		}
	}
}

func TestGaugeFuncEvaluatedAtSnapshot(t *testing.T) {
	r := NewRegistry()
	hits := 0
	r.RegisterGaugeFunc("cache.hits", func() float64 { return float64(hits) })
	hits = 7
	if got := r.Snapshot().Gauges["cache.hits"]; got != 7 {
		t.Fatalf("gauge func = %v, want 7", got)
	}
	hits = 11
	if got := r.Snapshot().Gauges["cache.hits"]; got != 11 {
		t.Fatalf("gauge func = %v, want 11 (not cached)", got)
	}
}

func TestSnapshotSerializationIsStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("z").Set(0.5)
	r.Histogram("h", 0, 1, 2).Observe(0.25)
	enc := func() []byte {
		raw, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("snapshot serialization unstable across calls")
	}
}

func TestManifestJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.runs_total").Inc()
	tr := NewTracer(8)
	s := tr.Stream("sys")
	for i := 0; i < 20; i++ {
		s.Emit(uint64(i), KindVoltage, 0, 1)
	}
	m := NewManifest("test", 4, r, tr)
	if m.TraceStreams != 1 || m.TraceEvents != 20 || m.TraceDropped != 12 {
		t.Fatalf("trace volume = %d streams / %d events / %d dropped, want 1/20/12",
			m.TraceStreams, m.TraceEvents, m.TraceDropped)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Tool != "test" || back.Workers != 4 {
		t.Fatalf("manifest round-trip lost fields: %+v", back)
	}
	if back.Metrics.Counters["core.runs_total"] != 1 {
		t.Fatal("manifest lost counter value")
	}
}

func TestManifestNilTracerAndRegistry(t *testing.T) {
	m := NewManifest("bare", 1, nil, nil)
	if m.TraceStreams != 0 || m.TraceEvents != 0 {
		t.Fatal("nil tracer contributed trace volume")
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
