package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"didt/internal/telemetry"
)

func openTest(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	if o.Registry == nil {
		o.Registry = telemetry.NewRegistry()
	}
	s, err := Open(dir, o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// counter reads a store counter out of the registry snapshot.
func counter(t *testing.T, r *telemetry.Registry, name string) int64 {
	t.Helper()
	return r.Snapshot().Counters[name]
}

func TestEntryRoundTrip(t *testing.T) {
	body := []byte("rendered experiment output\nwith newlines\x00and binary\xff")
	enc := EncodeEntry("sweep|abc123", body)
	key, got, digest, err := DecodeEntry(enc)
	if err != nil {
		t.Fatalf("DecodeEntry: %v", err)
	}
	if key != "sweep|abc123" {
		t.Errorf("key = %q", key)
	}
	if !bytes.Equal(got, body) {
		t.Errorf("body round-trip mismatch")
	}
	if digest != Digest(body) {
		t.Errorf("digest = %s, want %s", digest, Digest(body))
	}
	// Encoding is a pure function of (key, body).
	if !bytes.Equal(enc, EncodeEntry("sweep|abc123", body)) {
		t.Error("EncodeEntry not deterministic")
	}
}

func TestDecodeEntryRejectsDamage(t *testing.T) {
	body := []byte("the body bytes")
	enc := EncodeEntry("k1", body)
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated body", func(b []byte) []byte { return b[:len(b)-3] }},
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"trailing garbage", func(b []byte) []byte { return append(append([]byte{}, b...), "xx"...) }},
		{"bit flip in body", func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[len(c)-2] ^= 0x40
			return c
		}},
		{"wrong magic", func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[0] = 'X'
			return c
		}},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, tc := range cases {
		if _, _, _, err := DecodeEntry(tc.mut(append([]byte{}, enc...))); err == nil {
			t.Errorf("%s: DecodeEntry accepted damaged entry", tc.name)
		}
	}
}

func TestETagStrongAndDistinct(t *testing.T) {
	e1 := ETag("k1", Digest([]byte("a")))
	e2 := ETag("k1", Digest([]byte("b")))
	e3 := ETag("k2", Digest([]byte("a")))
	if !strings.HasPrefix(e1, `"`) || !strings.HasSuffix(e1, `"`) {
		t.Errorf("ETag %q is not a quoted strong validator", e1)
	}
	if strings.HasPrefix(e1, `W/`) {
		t.Errorf("ETag %q is weak", e1)
	}
	if e1 == e2 || e1 == e3 {
		t.Errorf("ETag collisions: %q %q %q", e1, e2, e3)
	}
	if e1 != ETag("k1", Digest([]byte("a"))) {
		t.Error("ETag not deterministic")
	}
}

func TestStorePutGetRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := openTest(t, t.TempDir(), Options{Registry: reg})
	body := []byte("result body")
	digest, err := s.Put("spec|deadbeef", body)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if digest != Digest(body) {
		t.Errorf("Put digest = %s, want %s", digest, Digest(body))
	}
	got, d, ok := s.Get("spec|deadbeef")
	if !ok || !bytes.Equal(got, body) || d != digest {
		t.Fatalf("Get = (%q, %s, %v), want stored body", got, d, ok)
	}
	if _, _, ok := s.Get("spec|other"); ok {
		t.Error("Get of absent key reported a hit")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if h := counter(t, reg, "store.results.hits"); h != 1 {
		t.Errorf("hits = %v, want 1", h)
	}
	if m := counter(t, reg, "store.results.misses"); m != 1 {
		t.Errorf("misses = %v, want 1", m)
	}
}

// TestStoreRestartRoundTrip is the durability contract: a new Store
// opened over a dead process's directory serves the same bytes.
func TestStoreRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1 := openTest(t, dir, Options{})
	body := []byte("bytes that must survive the process")
	if _, err := s1.Put("k", body); err != nil {
		t.Fatal(err)
	}
	// No Close: the Put path fsyncs, so simply abandoning s1 models a
	// kill. Reopen and expect a warm, byte-identical hit.
	reg := telemetry.NewRegistry()
	s2 := openTest(t, dir, Options{Registry: reg})
	got, d, ok := s2.Get("k")
	if !ok {
		t.Fatal("restarted store missed a durable entry")
	}
	if !bytes.Equal(got, body) {
		t.Errorf("restarted body differs:\n%q\nvs\n%q", got, body)
	}
	if d != Digest(body) {
		t.Errorf("digest %s, want %s", d, Digest(body))
	}
	if h := counter(t, reg, "store.results.hits"); h != 1 {
		t.Errorf("hits after restart = %v, want 1", h)
	}
}

// findEntryFile locates the single on-disk entry file.
func findEntryFile(t *testing.T, dir string) string {
	t.Helper()
	var path string
	filepath.Walk(filepath.Join(dir, "entries"), func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			path = p
		}
		return nil
	})
	if path == "" {
		t.Fatal("no entry file on disk")
	}
	return path
}

func TestStoreTruncatedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s := openTest(t, dir, Options{Registry: reg})
	if _, err := s.Put("k", []byte("a result body long enough to truncate")); err != nil {
		t.Fatal(err)
	}
	path := findEntryFile(t, dir)
	if err := os.Truncate(path, 20); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("truncated entry served as a hit")
	}
	if c := counter(t, reg, "store.results.corruptions"); c != 1 {
		t.Errorf("corruptions = %v, want 1", c)
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine holds %d files (err %v), want 1", len(q), err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry still resident after quarantine")
	}
	// The key is reusable: a fresh Put then hits again.
	if _, err := s.Put("k", []byte("recomputed")); err != nil {
		t.Fatal(err)
	}
	if got, _, ok := s.Get("k"); !ok || string(got) != "recomputed" {
		t.Errorf("re-Put after quarantine: got (%q, %v)", got, ok)
	}
}

func TestStoreBitFlippedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s := openTest(t, dir, Options{Registry: reg})
	if _, err := s.Put("k", []byte("body whose digest the flip breaks")); err != nil {
		t.Fatal(err)
	}
	path := findEntryFile(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("bit-flipped entry served as a hit")
	}
	if c := counter(t, reg, "store.results.corruptions"); c != 1 {
		t.Errorf("corruptions = %v, want 1", c)
	}
}

func TestStoreTTLExpiry(t *testing.T) {
	dir := t.TempDir()
	s1 := openTest(t, dir, Options{})
	if _, err := s1.Put("k", []byte("ages out")); err != nil {
		t.Fatal(err)
	}
	// Age the entry on disk, then reopen so the index reads the mtime.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(findEntryFile(t, dir), past, past); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	s2 := openTest(t, dir, Options{TTL: time.Minute, Registry: reg})
	if _, _, ok := s2.Get("k"); ok {
		t.Fatal("expired entry served as a hit")
	}
	if e := counter(t, reg, "store.results.evictions_ttl"); e != 1 {
		t.Errorf("evictions_ttl = %v, want 1", e)
	}
	if s2.Len() != 0 {
		t.Errorf("Len = %d after expiry, want 0", s2.Len())
	}
}

func TestStoreCapacityEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s := openTest(t, dir, Options{Capacity: 2, Registry: reg})
	for i, k := range []string{"k0", "k1", "k2"} {
		if _, err := s.Put(k, []byte(k+" body")); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so eviction order is unambiguous even on
		// coarse-grained filesystems.
		stamp := time.Now().Add(time.Duration(i-10) * time.Minute)
		name := entryName(k)
		if err := os.Chtimes(s.entryPath(name), stamp, stamp); err != nil {
			t.Fatal(err)
		}
		s.mu.Lock()
		meta := s.index[name]
		meta.mtime = stamp
		s.index[name] = meta
		s.mu.Unlock()
	}
	s.Sweep()
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after capacity sweep", s.Len())
	}
	if _, _, ok := s.Get("k0"); ok {
		t.Error("oldest entry k0 survived capacity eviction")
	}
	for _, k := range []string{"k1", "k2"} {
		if _, _, ok := s.Get(k); !ok {
			t.Errorf("entry %s evicted out of order", k)
		}
	}
	if e := counter(t, reg, "store.results.evictions_capacity"); e < 1 {
		t.Errorf("evictions_capacity = %v, want >= 1", e)
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	for _, k := range []string{"", "with\nnewline"} {
		if _, err := s.Put(k, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", k)
		}
	}
}

func TestStoreOverwriteSameKey(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	if _, err := s.Put("k", []byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("k", []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, _, ok := s.Get("k")
	if !ok || string(got) != "second" {
		t.Errorf("Get after overwrite = (%q, %v)", got, ok)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}
