package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"didt/internal/telemetry"
)

// Options sizes a store.
type Options struct {
	// Capacity bounds the number of resident entries; <= 0 is unbounded.
	// The janitor evicts oldest-written entries first once the cap is
	// exceeded.
	Capacity int
	// TTL bounds entry age (time since write); <= 0 disables expiry.
	// Expired entries are dropped lazily on Get and in janitor passes.
	TTL time.Duration
	// Registry receives the store's hit/miss/eviction/corruption metrics
	// as store.<name>.* counters and gauges; nil disables metrics.
	Registry *telemetry.Registry
	// MetricsPrefix names the metric family; "" selects "store.results".
	MetricsPrefix string
}

// entryMeta is the in-memory index record for one on-disk entry.
type entryMeta struct {
	size  int64
	mtime time.Time
}

// Store is a disk-backed, content-addressed result store. Safe for
// concurrent use; create with Open.
type Store struct {
	dir string
	cap int
	ttl time.Duration

	mu    sync.Mutex
	index map[string]entryMeta // file name (hex key hash) -> meta
	bytes int64

	mHits      *telemetry.Counter
	mMisses    *telemetry.Counter
	mPuts      *telemetry.Counter
	mPutErrors *telemetry.Counter
	mEvicted   *telemetry.Counter // capacity evictions
	mExpired   *telemetry.Counter // TTL evictions
	mCorrupt   *telemetry.Counter // quarantined entries
}

// Open creates (or reopens) a store rooted at dir, scanning any entries a
// previous process left behind into the index — restart recovery is just
// Open on the same directory. The layout is entries/<h2>/<hash> for
// resident entries, tmp/ for in-progress writes (cleared at open; they
// are torn by definition), and quarantine/ for entries that failed
// verification.
func Open(dir string, o Options) (*Store, error) {
	for _, sub := range []string{"entries", "tmp", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{
		dir:   dir,
		cap:   o.Capacity,
		ttl:   o.TTL,
		index: map[string]entryMeta{},
	}
	if o.Registry != nil {
		prefix := o.MetricsPrefix
		if prefix == "" {
			prefix = "store.results"
		}
		s.mHits = o.Registry.Counter(prefix + ".hits")
		s.mMisses = o.Registry.Counter(prefix + ".misses")
		s.mPuts = o.Registry.Counter(prefix + ".puts")
		s.mPutErrors = o.Registry.Counter(prefix + ".put_errors")
		s.mEvicted = o.Registry.Counter(prefix + ".evictions_capacity")
		s.mExpired = o.Registry.Counter(prefix + ".evictions_ttl")
		s.mCorrupt = o.Registry.Counter(prefix + ".corruptions")
		o.Registry.RegisterGaugeFunc(prefix+".entries", func() float64 { return float64(s.Len()) })
		o.Registry.RegisterGaugeFunc(prefix+".bytes", func() float64 { return float64(s.Bytes()) })
	}
	// Abandon torn writes from a previous process.
	if tmps, err := os.ReadDir(filepath.Join(dir, "tmp")); err == nil {
		for _, e := range tmps {
			os.Remove(filepath.Join(dir, "tmp", e.Name()))
		}
	}
	err := filepath.WalkDir(filepath.Join(dir, "entries"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent delete; skip
		}
		s.index[d.Name()] = entryMeta{size: info.Size(), mtime: info.ModTime()}
		s.bytes += info.Size()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scan: %w", err)
	}
	s.mu.Lock()
	s.janitorLocked(time.Now())
	s.mu.Unlock()
	return s, nil
}

// entryName maps a store key to its file name: the hex SHA-256 of the key,
// so arbitrary key strings become uniform, filesystem-safe names.
func entryName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func (s *Store) entryPath(name string) string {
	return filepath.Join(s.dir, "entries", name[:2], name)
}

// Get returns the stored body and digest for key. A missing, expired or
// corrupt entry reports ok=false; corrupt entries are additionally moved
// to quarantine/ so the bad bytes survive for inspection and the next Put
// starts clean.
func (s *Store) Get(key string) (body []byte, digest string, ok bool) {
	name := entryName(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	meta, resident := s.index[name]
	if !resident {
		s.mMisses.Inc()
		return nil, "", false
	}
	if s.ttl > 0 && time.Since(meta.mtime) > s.ttl {
		s.dropLocked(name, meta)
		s.mExpired.Inc()
		s.mMisses.Inc()
		return nil, "", false
	}
	raw, err := os.ReadFile(s.entryPath(name))
	if err != nil {
		// The file vanished under the index (external cleanup): a miss.
		s.forgetLocked(name, meta)
		s.mMisses.Inc()
		return nil, "", false
	}
	storedKey, b, d, derr := DecodeEntry(raw)
	if derr != nil || storedKey != key {
		s.quarantineLocked(name, meta)
		s.mCorrupt.Inc()
		s.mMisses.Inc()
		return nil, "", false
	}
	s.mHits.Inc()
	return b, d, true
}

// Put durably stores body under key, returning the body digest. The write
// is crash-safe: temp file, fsync, rename, directory fsync. A Put that
// fails leaves the previous entry (if any) intact. Keys must be non-empty
// single-line strings — every caller derives them from content hashes.
func (s *Store) Put(key string, body []byte) (string, error) {
	if key == "" || strings.ContainsAny(key, "\n\r") {
		s.mPutErrors.Inc()
		return "", fmt.Errorf("store: invalid key %q", key)
	}
	enc := EncodeEntry(key, body)
	digest := Digest(body)
	name := entryName(key)

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeLocked(name, enc); err != nil {
		s.mPutErrors.Inc()
		return "", err
	}
	if old, ok := s.index[name]; ok {
		s.bytes -= old.size
	}
	s.index[name] = entryMeta{size: int64(len(enc)), mtime: time.Now()}
	s.bytes += int64(len(enc))
	s.mPuts.Inc()
	s.janitorLocked(time.Now())
	return digest, nil
}

// writeLocked performs the atomic write-temp-then-rename for one entry.
func (s *Store) writeLocked(name string, enc []byte) error {
	final := s.entryPath(name)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := filepath.Join(s.dir, "tmp", name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(enc); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	syncDir(filepath.Dir(final))
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Best effort: some filesystems reject directory fsync; the rename itself
// is still atomic there.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// dropLocked removes an entry file and forgets it.
func (s *Store) dropLocked(name string, meta entryMeta) {
	os.Remove(s.entryPath(name))
	s.forgetLocked(name, meta)
}

// forgetLocked removes an entry from the index only.
func (s *Store) forgetLocked(name string, meta entryMeta) {
	delete(s.index, name)
	s.bytes -= meta.size
}

// quarantineLocked moves a bad entry aside (overwriting any previous
// quarantine of the same name) and forgets it, so the next Put recreates
// the entry from scratch while the corrupt bytes remain inspectable.
func (s *Store) quarantineLocked(name string, meta entryMeta) {
	dst := filepath.Join(s.dir, "quarantine", name)
	os.Remove(dst)
	if err := os.Rename(s.entryPath(name), dst); err != nil {
		os.Remove(s.entryPath(name))
	}
	s.forgetLocked(name, meta)
}

// janitorLocked enforces TTL then capacity: expired entries go first,
// then oldest-written entries until the count fits the cap. Ordering ties
// break on name so eviction order is reproducible.
func (s *Store) janitorLocked(now time.Time) {
	if s.ttl > 0 {
		for name, meta := range s.index {
			if now.Sub(meta.mtime) > s.ttl {
				s.dropLocked(name, meta)
				s.mExpired.Inc()
			}
		}
	}
	if s.cap <= 0 || len(s.index) <= s.cap {
		return
	}
	type aged struct {
		name string
		meta entryMeta
	}
	entries := make([]aged, 0, len(s.index))
	for name, meta := range s.index {
		entries = append(entries, aged{name, meta})
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].meta.mtime.Equal(entries[j].meta.mtime) {
			return entries[i].meta.mtime.Before(entries[j].meta.mtime)
		}
		return entries[i].name < entries[j].name
	})
	for _, e := range entries[:len(entries)-s.cap] {
		s.dropLocked(e.name, e.meta)
		s.mEvicted.Inc()
	}
}

// Sweep runs one janitor pass (TTL + capacity) immediately. Puts and
// opens janitor automatically; Sweep exists for tests and for operators
// that want expiry without traffic.
func (s *Store) Sweep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.janitorLocked(time.Now())
}

// Len reports the number of resident entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes reports the total on-disk size of resident entries.
func (s *Store) Bytes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}
