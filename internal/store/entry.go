// Package store is didtd's disk-backed, content-addressed result store.
// Every entry is keyed by a request's canonical content hash (spec_key for
// simulations, the sweep identity hash for sweeps) and carries the exact
// response body bytes together with a SHA-256 digest of those bytes. The
// determinism contract — a response body is a pure function of its key,
// byte-identical at any parallelism — is what makes a body served from
// disk indistinguishable from a fresh run, so a warm store turns a million
// identical requests into one simulation plus a million file reads.
//
// Durability discipline: entries are written to a temp file, fsync'd,
// renamed into place, and the directory fsync'd — a crash leaves either
// the old entry or the new one, never a torn file. Reads verify the body
// digest before trusting an entry; a corrupt or truncated entry is
// quarantined (moved aside for forensics) and reported as a miss, so bit
// rot degrades into recomputation, never into wrong bytes.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
)

// entryMagic is the versioned first line of every entry file. Bumping the
// format means a new magic; old entries then decode as corrupt and are
// recomputed, which is always safe (the store is a cache, not a ledger).
const entryMagic = "didt-store-v1"

// Digest returns the hex SHA-256 of a result body — the content half of
// an entry's identity. The store key addresses an entry; the digest
// proves its body survived the disk intact.
func Digest(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// ETag derives the strong HTTP entity tag didtd serves for a cached
// result: a hash over both the request key and the result digest. Keying
// the tag on the pair means a tag validates one specific body for one
// specific request — If-None-Match can answer 304 from the store header
// alone, and a corrupt body can never masquerade as fresh because its
// digest (and therefore its tag) no longer matches.
func ETag(key, digest string) string {
	sum := sha256.Sum256([]byte(key + "\x00" + digest))
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// EncodeEntry serializes one store entry: a versioned text header
// carrying the key, the body digest and the body length, then the raw
// body bytes. The encoding is a pure function of (key, body) — equal
// inputs produce equal files, so entries are themselves content-addressed
// artifacts.
func EncodeEntry(key string, body []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(entryMagic) + len(key) + len(body) + 128)
	buf.WriteString(entryMagic)
	buf.WriteByte('\n')
	buf.WriteString("key ")
	buf.WriteString(key)
	buf.WriteByte('\n')
	buf.WriteString("digest ")
	buf.WriteString(Digest(body))
	buf.WriteByte('\n')
	buf.WriteString("len ")
	buf.WriteString(strconv.Itoa(len(body)))
	buf.WriteString("\n\n")
	buf.Write(body)
	return buf.Bytes()
}

// DecodeEntry parses and verifies an entry file. It returns the stored
// key, body and digest only when every check passes: magic and header
// shape, declared length matching the remaining bytes exactly (truncation
// and trailing garbage both fail), and the body hashing back to the
// declared digest (bit flips fail). Any violation returns an error; the
// caller treats the entry as a miss and quarantines the file.
func DecodeEntry(b []byte) (key string, body []byte, digest string, err error) {
	rest := b
	line := func() (string, bool) {
		i := bytes.IndexByte(rest, '\n')
		if i < 0 {
			return "", false
		}
		l := string(rest[:i])
		rest = rest[i+1:]
		return l, true
	}
	magic, ok := line()
	if !ok || magic != entryMagic {
		return "", nil, "", fmt.Errorf("store: bad entry magic %q", magic)
	}
	keyLine, ok := line()
	if !ok || !bytes.HasPrefix([]byte(keyLine), []byte("key ")) {
		return "", nil, "", fmt.Errorf("store: bad key header")
	}
	key = keyLine[len("key "):]
	if key == "" {
		return "", nil, "", fmt.Errorf("store: empty key")
	}
	digestLine, ok := line()
	if !ok || !bytes.HasPrefix([]byte(digestLine), []byte("digest ")) {
		return "", nil, "", fmt.Errorf("store: bad digest header")
	}
	digest = digestLine[len("digest "):]
	lenLine, ok := line()
	if !ok || !bytes.HasPrefix([]byte(lenLine), []byte("len ")) {
		return "", nil, "", fmt.Errorf("store: bad length header")
	}
	n, aerr := strconv.Atoi(lenLine[len("len "):])
	if aerr != nil || n < 0 {
		return "", nil, "", fmt.Errorf("store: bad length %q", lenLine)
	}
	blank, ok := line()
	if !ok || blank != "" {
		return "", nil, "", fmt.Errorf("store: missing header terminator")
	}
	if len(rest) != n {
		return "", nil, "", fmt.Errorf("store: body is %d bytes, header declares %d (truncated or padded entry)", len(rest), n)
	}
	body = rest
	if got := Digest(body); got != digest {
		return "", nil, "", fmt.Errorf("store: body digest %s does not match declared %s (corrupt entry)", got, digest)
	}
	return key, body, digest, nil
}
