// Package core couples every substrate into the paper's closed loop
// (Figure 7 plus the controller of Sections 4-5): each cycle the
// out-of-order core produces structural activity, the power model turns it
// into current, the PDN convolution turns current into supply voltage, the
// threshold sensor classifies the (delayed, noisy) voltage, and the
// actuator's response gates or phantom-fires the controlled units on the
// next cycle.
//
// This package is the paper's primary contribution in executable form: a
// microarchitectural dI/dt controller with solver-derived thresholds that
// bound supply excursions, coupled to a cycle-accurate machine.
package core

import (
	"fmt"
	"math"

	"didt/internal/actuator"
	"didt/internal/control"
	"didt/internal/cpu"
	"didt/internal/isa"
	"didt/internal/pdn"
	"didt/internal/power"
	"didt/internal/sensor"
	"didt/internal/spec"
	"didt/internal/stats"
	"didt/internal/telemetry"
	"didt/internal/trace"
)

// Options assembles a system: the serializable spec describing the run,
// plus the few runtime-only attachments (a code-level responder override,
// trace recording, a telemetry sink) that cannot live in configuration
// data. Zero spec fields take paper defaults; see spec.RunSpec.
type Options struct {
	// Spec is the complete run description — PDN, CPU, power model,
	// sensor, controller, actuator, budgets and seed. NewSystem resolves
	// it through spec.WithDefaults, so sparse specs work.
	Spec spec.RunSpec

	// Responder overrides the spec's named mechanism with an arbitrary
	// actuation policy (e.g. actuator.Asymmetric, the paper's Section 6
	// proposal). Responders are code, so they attach here rather than in
	// the serializable spec.
	Responder actuator.Responder

	RecordTraces bool // keep per-cycle current/voltage traces

	// Telemetry, when non-nil, receives typed per-cycle events (sensor
	// transitions, actuation engage/release, emergencies, voltage and
	// current samples) on a stream named TelemetryName. A nil tracer — or
	// a disabled one — costs one pointer test and one atomic load per
	// cycle, so the hot path is unchanged when observability is off.
	Telemetry     *telemetry.Tracer
	TelemetryName string

	// ProgKey, when non-empty, is a stable identity for the program
	// (typically a fingerprint of its generation parameters). It enables
	// the machine-trace cache on the open-loop fast path: runs that share
	// program, CPU and power configuration reuse one cycle-accurate
	// current trace and re-convolve it per PDN. Empty disables that cache
	// — results are identical either way.
	ProgKey string
}

// Result summarizes one run.
type Result struct {
	Stats    cpu.Stats
	Cycles   uint64
	Energy   float64 // joules
	AvgPower float64 // watts

	IMin, IMax float64 // calibration envelope (amperes)
	MinV, MaxV float64 // observed after warmup
	VNominal   float64

	Emergencies   uint64  // post-warmup cycles outside the +-5% band
	EmergencyFreq float64 // Emergencies / measured cycles

	Hist *stats.Histogram // post-warmup voltage distribution

	Thresholds control.Thresholds
	LowEvents  uint64 // distinct gating actuations
	HighEvents uint64 // distinct phantom actuations

	// Rails carries per-rail summaries on a multi-rail run (spec order;
	// nil otherwise). The top-level MinV/MaxV are then the worst across
	// rails, Emergencies counts cycles where any rail left its band, and
	// Thresholds/VNominal describe rail 0.
	Rails []RailResult

	// DVS schedule activity, when the spec carries a DVS section.
	DVSStepDowns uint64
	DVSStepUps   uint64

	CurrentTrace trace.Trace // populated when Options.RecordTraces
	VoltageTrace trace.Trace
}

// IPC is a convenience accessor.
func (r *Result) IPC() float64 { return r.Stats.IPC() }

// System is one assembled closed loop. Create with NewSystem; not safe for
// concurrent use.
type System struct {
	opts Options
	spec spec.RunSpec // resolved (WithDefaults applied)

	CPU    *cpu.CPU
	Power  *power.Model
	Net    *pdn.Network
	Sim    *pdn.Simulator
	Sensor *sensor.Sensor

	thresholds control.Thresholds
	policy     control.Policy
	responder  actuator.Responder
	counting   *actuator.Counting

	// Telemetry stream plus the previous-cycle states whose transitions
	// become events.
	stream      *telemetry.Stream
	lastLevel   sensor.Level
	gateActive  bool
	phantomOn   bool
	emergActive bool

	gating  cpu.Gating
	phantom power.Phantom
	act     cpu.Activity // per-cycle scratch for StepCycle (avoids a fresh zeroed copy per cycle)

	quietStreak uint64 // consecutive no-issue cycles (pessimistic ramp)
	rampLeft    int

	cycle  uint64
	minV   float64
	maxV   float64
	emerg  uint64
	hist   *stats.Histogram
	curTr  trace.Trace
	voltTr trace.Trace
	iMin   float64
	iMax   float64

	// Multi-rail state (see multirail.go). rails is nil on a single-rail
	// system, and every legacy path keys off that.
	graph    *pdn.Graph
	gsim     *pdn.GraphSimulator
	rails    []railState
	railOf   [power.NumScopes]int // delivery scope -> owning rail index
	scopeCur []float64            // per-cycle scratch: current by scope
	railCur  []float64            // per-cycle scratch: current by rail
	railVolt []float64            // per-cycle scratch: voltage by rail

	// dvs, when non-nil, scales the machine's current draw by the schedule's
	// operating point (set on both single- and multi-rail systems when the
	// spec carries a DVS section).
	dvs     *actuator.DVS
	dvsRail int // rail whose sensor drives the schedule; -1 = aggregate
}

// NewSystem builds the coupled system for a program. The PDN is calibrated
// so that the theoretical worst-case current waveform exactly reaches the
// emergency boundary at 100% target impedance, then scaled by
// ImpedancePct; controller thresholds are solved for the configured delay
// and actuator authority, with noise guard-banding applied.
func NewSystem(prog isa.Program, opts Options) (*System, error) {
	sp := opts.Spec.WithDefaults()
	c, err := cpu.New(sp.CPU, prog)
	if err != nil {
		return nil, err
	}
	pm := power.New(sp.Power, c.Config())
	if sp.PDN.MultiRail() {
		s := &System{
			opts:  opts,
			spec:  sp,
			CPU:   c,
			Power: pm,
			minV:  math.Inf(1),
			maxV:  math.Inf(-1),
			hist:  stats.NewHistogram(0.90, 1.10, 200),
		}
		s.stream = opts.Telemetry.Stream(opts.TelemetryName)
		return newMultiRailSystem(s, sp, opts)
	}
	iMin, iMax := sp.PDN.EnvelopeIMin, sp.PDN.EnvelopeIMax
	if iMin == 0 || iMax == 0 {
		// The probe memo keys on the as-given (pre-resolution) CPU/power
		// sections, so distinct sparse specs keep distinct entries even
		// when they resolve to the same configuration.
		mMin, mMax, err := measureEnvelope(opts.Spec.CPU, opts.Spec.Power)
		if err != nil {
			return nil, err
		}
		if iMin == 0 {
			iMin = mMin
		}
		if iMax == 0 {
			iMax = mMax
		}
	}

	// The voltage regulator's reference point: it holds the supply at
	// exactly nominal for the midpoint current, so workload swings produce
	// the symmetric over- and under-shoots of the paper's Figures 2 and 6
	// (an idle machine sits slightly above nominal, a saturated one
	// slightly below, and transients ring around both).
	pdnParams := sp.PDN.Params
	pdnParams.IFloor = 0.5 * (iMin + iMax)
	net, err := pdn.Calibrate(pdnParams, iMin, iMax, sp.PDN.ImpedancePct)
	if err != nil {
		return nil, err
	}

	noise := sp.Sensor.NoiseMV * 1e-3
	sen, err := sensor.New(sp.Sensor.DelayCycles, noise, sp.Seed.Resolve(0))
	if err != nil {
		return nil, err
	}

	s := &System{
		opts:   opts,
		spec:   sp,
		CPU:    c,
		Power:  pm,
		Net:    net,
		Sim:    net.NewSimulator(),
		Sensor: sen,
		minV:   math.Inf(1),
		maxV:   math.Inf(-1),
		hist:   stats.NewHistogram(0.90, 1.10, 200),
		iMin:   iMin,
		iMax:   iMax,
	}

	s.stream = opts.Telemetry.Stream(opts.TelemetryName)

	s.responder = opts.Responder
	if s.responder == nil {
		mech, err := sp.Mechanism()
		if err != nil {
			return nil, err
		}
		s.responder = mech
	}
	s.dvsRail = -1
	if d := sp.Actuator.DVS; d != nil {
		// Single-rail DVS: the schedule advances through Respond (one rail,
		// one sensed level), composed around whatever responder is in place.
		s.dvs = actuator.NewDVS(s.responder, d.Steps, d.TransitionCycles, d.HoldCycles, d.CurrentExponent)
		s.responder = s.dvs
	}
	if sp.Control.Enabled {
		// The counting wrapper feeds actuation tallies into the metrics
		// registry at the end of the run; one plain increment per cycle.
		s.counting = &actuator.Counting{R: s.responder}
		s.responder = s.counting

		floor, ceil := s.responder.Envelope(pm)
		solver := control.NewSolver(net)
		th, err := solver.Solve(control.Envelope{
			IMin: iMin, IMax: iMax,
			Floor: floor, Ceil: ceil,
			Settle: sp.Control.SettleCycles,
		}, sp.Sensor.DelayCycles)
		if err != nil {
			return nil, err
		}
		// Guard-band for sensor error (Section 4.5): raise Low and lower
		// High by the guard band (defaulting to the noise amplitude) so a
		// worst-case misreading still triggers in time.
		guard := sp.Sensor.GuardBandMV * 1e-3
		if th.Stable {
			lo, hi := th.Low+guard, th.High-guard
			if lo >= hi {
				th.Stable = false
			} else {
				th.Low, th.High, th.SafeWindow = lo, hi, hi-lo
			}
		}
		if !th.Stable {
			// No guaranteed thresholds exist (e.g. FU-only actuation with
			// large delay). Run with maximally conservative trip points so
			// the instability is observable, as in Figure 17.
			p := net.Params()
			th.Low = p.VNominal - 0.25*(p.VNominal-net.VMin())
			th.High = p.VNominal + 0.25*(net.VMax()-p.VNominal)
			th.SafeWindow = th.High - th.Low
		}
		s.thresholds = th
		if err := s.Sensor.SetThresholds(th.Low, th.High); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Thresholds returns the solved (and guard-banded) thresholds; zero value
// when control is disabled.
func (s *System) Thresholds() control.Thresholds { return s.thresholds }

// Close releases pooled resources (the PDN simulator's ring buffer) back
// for reuse by other runs against the same network. The system must not be
// stepped afterwards; Close is optional but sweeps that build hundreds of
// systems should call it.
func (s *System) Close() {
	if s.gsim != nil {
		// Releases every rail's simulator, including the one aliased by
		// s.Sim (Release is idempotent).
		s.gsim.Release()
		s.gsim = nil
		s.Sim = nil
		return
	}
	if s.Sim != nil {
		s.Sim.Release()
		s.Sim = nil
	}
}

// Envelope returns the calibration current envelope.
func (s *System) Envelope() (iMin, iMax float64) { return s.iMin, s.iMax }

// Spec returns the resolved run spec the system was built from. Its Key()
// identifies the configuration in manifests and server responses.
func (s *System) Spec() spec.RunSpec { return s.spec }

// CycleState reports one cycle for trace-level consumers (Figure 11).
type CycleState struct {
	Cycle   uint64
	Current float64
	Voltage float64
	Level   sensor.Level
	Gating  cpu.Gating
	Phantom power.Phantom
	Done    bool
}

// StepCycle advances the loop one cycle.
//
//didt:hotpath
func (s *System) StepCycle() CycleState {
	if s.rails != nil {
		return s.stepCycleMulti()
	}
	current, done := s.machineStep(&s.act)
	v := s.Sim.Step(current)
	return s.observe(&s.act, current, v, done)
}

// machineStep advances the machine half of the loop — actuator gating into
// the core, core activity into the power model — and returns the cycle's
// activity, load current and completion flag. The PDN convolution and
// everything downstream of the voltage live in observe; RunBatch steps
// many systems' machine halves against one batched convolver between the
// two.
//
//didt:hotpath
func (s *System) machineStep(act *cpu.Activity) (float64, bool) {
	s.CPU.SetGating(s.gating)
	done := s.CPU.StepInto(act)
	rep := s.Power.Step(act, s.phantom)
	if s.dvs != nil {
		return rep.Current * s.dvs.CurrentScale(), done
	}
	return rep.Current, done
}

// observe ingests this cycle's voltage: statistics, traces, the sensor →
// policy → responder control path, the pessimistic ramp, telemetry, and
// the cycle counter. Exactly the post-convolution half of StepCycle.
//
//didt:hotpath
func (s *System) observe(act *cpu.Activity, current, v float64, done bool) CycleState {
	if s.cycle >= s.spec.Budget.WarmupCycles {
		if v < s.minV {
			s.minV = v
		}
		if v > s.maxV {
			s.maxV = v
		}
		if v < s.Net.VMin() || v > s.Net.VMax() {
			s.emerg++
		}
		s.hist.Add(v)
	}
	if s.opts.RecordTraces {
		s.curTr = append(s.curTr, current) //didt:allow hotpath -- trace recording is a debug mode; steady-state sweeps never enter this branch
		s.voltTr = append(s.voltTr, v)     //didt:allow hotpath -- trace recording is a debug mode; steady-state sweeps never enter this branch
	}

	level := sensor.Normal
	if s.spec.Control.Enabled {
		level = s.Sensor.Sense(v)
		lowBefore := s.policy.LowEvents
		gate, phantom := s.policy.Update(level == sensor.Low, level == sensor.High)
		g, p := s.responder.Respond(level)
		if !gate {
			g = cpu.Gating{}
		}
		if !phantom {
			p = power.Phantom{}
		}
		s.gating, s.phantom = g, p
		if s.spec.Control.FlushRecovery && s.policy.LowEvents > lowBefore {
			s.CPU.Flush(s.CPU.Config().BranchPenalty)
		}
	}

	// Pessimistic ramp policy (Section 2.3's alternative to the greedy
	// default): after a quiet spell, restart execution at half rate. The
	// ramp's gating is recomputed every cycle on top of the controller's
	// decision (or from scratch when no controller runs).
	if s.spec.Control.PessimisticRamp > 0 {
		if !s.spec.Control.Enabled {
			s.gating = cpu.Gating{}
		}
		if act.Issued == 0 {
			s.quietStreak++
		} else {
			if s.quietStreak >= 8 {
				s.rampLeft = s.spec.Control.PessimisticRamp
			}
			s.quietStreak = 0
		}
		if s.rampLeft > 0 {
			s.rampLeft--
			if s.cycle%2 == 0 {
				s.gating.FUs = true
			}
		}
	}

	if s.stream.Enabled() {
		s.emitCycle(current, v, level)
	}

	st := CycleState{
		Cycle:   s.cycle,
		Current: current,
		Voltage: v,
		Level:   level,
		Gating:  s.gating,
		Phantom: s.phantom,
		Done:    done,
	}
	s.cycle++
	return st
}

// emitCycle records this cycle's telemetry: per-cycle voltage and current
// samples plus transition events for the sensor level, actuation state and
// emergency state. StepCycle only calls it when the stream is enabled; the
// guard below re-establishes that dominance locally so the telemetryguard
// analyzer can prove every Emit is reached enabled-only without
// cross-function reasoning.
//
//didt:hotpath
func (s *System) emitCycle(current, v float64, level sensor.Level) {
	if !s.stream.Enabled() {
		return
	}
	c := s.cycle
	s.stream.Emit(c, telemetry.KindVoltage, 0, v)
	s.stream.Emit(c, telemetry.KindCurrent, 0, current)
	if level != s.lastLevel {
		s.stream.Emit(c, telemetry.KindSensorLevel, int32(level), v)
		s.lastLevel = level
	}
	if gate := s.gating.FUs || s.gating.DL1 || s.gating.IL1; gate != s.gateActive {
		s.stream.Emit(c, telemetry.KindGate, boolArg(gate), v)
		s.gateActive = gate
	}
	if ph := s.phantom.FUs || s.phantom.DL1 || s.phantom.IL1; ph != s.phantomOn {
		s.stream.Emit(c, telemetry.KindPhantom, boolArg(ph), v)
		s.phantomOn = ph
	}
	if emerg := v < s.Net.VMin() || v > s.Net.VMax(); emerg != s.emergActive {
		s.stream.Emit(c, telemetry.KindEmergency, boolArg(emerg), v)
		s.emergActive = emerg
	}
}

func boolArg(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// Run advances the loop until the program retires or MaxCycles elapse and
// returns the aggregated result.
//
// Open-loop runs — no controller, no pessimistic ramp, no responder, no
// enabled telemetry stream — have a machine whose evolution cannot depend
// on the voltage, so Run computes the whole current trace first and block-
// convolves it through the PDN's FFT path instead of paying a kernel-length
// multiply-add per cycle. The FFT agrees with the streaming convolver to
// <= 1e-9 V (see internal/pdn's property tests); anything that feeds the
// voltage back (control, ramp, telemetry) stays on the streaming reference
// path.
func (s *System) Run() (*Result, error) {
	if s.openLoop() {
		if s.rails != nil {
			return s.runOpenLoopMulti()
		}
		return s.runOpenLoop()
	}
	for s.cycle < s.spec.Budget.MaxCycles {
		st := s.StepCycle()
		if st.Done {
			break
		}
	}
	if err := s.CPU.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return s.finish(s.CPU.Stats(), s.Power.TotalEnergy()), nil
}

// openLoop reports whether nothing in this run feeds the computed voltage
// back into the machine: the controller is off (no sensing, no actuation),
// the pessimistic ramp is off (its gating feeds the next machine cycle),
// no code-level responder is attached, and the telemetry stream is
// disabled (per-cycle emission is interleaved with stepping).
func (s *System) openLoop() bool {
	return !s.spec.Control.Enabled &&
		s.spec.Control.PessimisticRamp == 0 &&
		s.opts.Responder == nil &&
		!s.stream.Enabled()
}

// finish aggregates the run's statistics into a Result and publishes the
// whole-run metrics. Every completion path — streaming, open-loop, batched
// — funnels through here.
func (s *System) finish(st cpu.Stats, energy float64) *Result {
	measured := uint64(0)
	if s.cycle > s.spec.Budget.WarmupCycles {
		measured = s.cycle - s.spec.Budget.WarmupCycles
	}
	r := &Result{
		Stats:        st,
		Cycles:       s.cycle,
		Energy:       energy,
		IMin:         s.iMin,
		IMax:         s.iMax,
		MinV:         s.minV,
		MaxV:         s.maxV,
		VNominal:     s.Net.Params().VNominal,
		Emergencies:  s.emerg,
		Hist:         s.hist,
		Thresholds:   s.thresholds,
		LowEvents:    s.policy.LowEvents,
		HighEvents:   s.policy.HighEvents,
		CurrentTrace: s.curTr,
		VoltageTrace: s.voltTr,
	}
	if measured > 0 {
		r.EmergencyFreq = float64(s.emerg) / float64(measured)
	}
	r.Rails = s.railResults()
	if s.dvs != nil {
		r.DVSStepDowns, r.DVSStepUps = s.dvs.StepDowns, s.dvs.StepUps
	}
	if s.cycle > 0 {
		r.AvgPower = r.Energy / (float64(s.cycle) / s.Power.Params().ClockHz)
	}
	s.publishMetrics(r)
	return r
}

// publishMetrics folds the finished run into the process-wide metrics
// registry: whole-run aggregates only (a handful of atomic adds per run,
// never per cycle), so the simulation hot path is untouched.
func (s *System) publishMetrics(r *Result) {
	reg := telemetry.Default()
	reg.Counter("core.runs_total").Inc()
	reg.Counter("core.cycles_total").Add(int64(s.cycle))
	reg.Counter("core.emergencies_total").Add(int64(s.emerg))
	reg.Counter("core.gating_episodes_total").Add(int64(s.policy.LowEvents))
	reg.Counter("core.phantom_episodes_total").Add(int64(s.policy.HighEvents))
	reg.Counter("cpu.instructions_total").Add(int64(r.Stats.Instructions))
	reg.Counter("cpu.mispredicts_total").Add(int64(r.Stats.Mispredicts))
	reg.Counter("cpu.gated_cycles_total").Add(int64(r.Stats.GatedCycles))
	if s.Sensor != nil {
		samples, low, high := s.Sensor.Trips()
		reg.Counter("sensor.samples_total").Add(int64(samples))
		reg.Counter("sensor.low_trips_total").Add(int64(low))
		reg.Counter("sensor.high_trips_total").Add(int64(high))
	}
	for i := range s.rails {
		if sen := s.rails[i].sensor; sen != nil {
			samples, low, high := sen.Trips()
			reg.Counter("sensor.samples_total").Add(int64(samples))
			reg.Counter("sensor.low_trips_total").Add(int64(low))
			reg.Counter("sensor.high_trips_total").Add(int64(high))
		}
	}
	if s.counting != nil {
		reg.Counter("actuator.low_responses_total").Add(int64(s.counting.LowResponses))
		reg.Counter("actuator.high_responses_total").Add(int64(s.counting.HighResponses))
		reg.Counter("actuator.normal_responses_total").Add(int64(s.counting.NormalResponses))
	}
	reg.Histogram("core.run_ipc", 0, 8, 32).Observe(r.IPC())
}
