package core

import (
	"sort"

	"didt/internal/cpu"
	"didt/internal/isa"
	"didt/internal/power"
	"didt/internal/sim"
	"didt/internal/telemetry"
)

// envelope is a measured current envelope in amperes. The per-scope
// breakdown (same probe, same window, same percentile) feeds multi-rail
// calibration; whole-chip iMin/iMax are computed exactly as they always
// were, so single-rail systems see bit-identical envelopes.
type envelope struct {
	iMin, iMax float64
	scopeMin   [power.NumScopes]float64
	scopeMax   [power.NumScopes]float64
}

// envelopeKey identifies one envelope measurement by the fingerprints of
// the as-given CPU and power sections — the same sub-hashes those sections
// contribute to spec.RunSpec.Key. Keying on the pre-resolution sections
// (rather than their resolved forms) preserves the cache's historical
// entry structure: sparse and explicit spellings of the same configuration
// stay distinct entries, exactly as they did when the raw structs were the
// key.
type envelopeKey struct {
	cpu   string
	power string
}

// envelopeCache memoizes the saturation-probe measurement: every NewSystem
// without an explicit envelope runs the same ~28k-cycle probe, and a sweep
// builds hundreds of systems from the same configuration. The probe is
// deterministic in its inputs, so cached and fresh envelopes are
// identical.
var envelopeCache = sim.NewCache[envelopeKey, envelope](256)

func init() {
	envelopeCache.RegisterMetrics(telemetry.Default(), "cache.core_envelope")
	sim.RegisterCacheCapacity("core_envelope", 256, envelopeCache.SetCapacity)
}

// EnvelopeCacheStats reports the saturation-probe envelope cache's
// effectiveness.
func EnvelopeCacheStats() sim.CacheStats { return envelopeCache.Stats() }

// ResetEnvelopeCache empties the shared envelope cache (benchmarks use it
// to measure cold-start cost).
func ResetEnvelopeCache() { envelopeCache.Reset() }

// measureEnvelope determines the processor's current envelope the way the
// paper's Figure 13 flow does ("examine the processor power model to find
// minimum and maximum power values"): the minimum is the all-idle
// conditional-clock-gated floor, and the maximum is measured by running a
// saturating probe loop through the cycle simulator and power model and
// taking a high percentile of its per-cycle current. A sum-of-unit-peaks
// maximum would be unreachable — the 8-wide issue stage cannot light every
// unit at once — and calibrating the target impedance against an
// unreachable envelope would make every real workload look artificially
// tame (and every threshold artificially loose).
func measureEnvelope(cfg cpu.Config, pp power.Params) (iMin, iMax float64, err error) {
	env, err := measureEnvelopeScoped(cfg, pp)
	if err != nil {
		return 0, 0, err
	}
	return env.iMin, env.iMax, nil
}

// measureEnvelopeScoped returns the full measurement including the
// per-delivery-scope envelopes multi-rail calibration splits the chip
// across. Same memo as measureEnvelope — one probe serves both.
func measureEnvelopeScoped(cfg cpu.Config, pp power.Params) (envelope, error) {
	key := envelopeKey{cpu: sim.Fingerprint(cfg), power: sim.Fingerprint(pp)}
	return envelopeCache.Get(key, func() (envelope, error) {
		return measureEnvelopeUncached(cfg, pp)
	})
}

func measureEnvelopeUncached(cfg cpu.Config, pp power.Params) (envelope, error) {
	probe := saturationProbe()
	c, err := cpu.New(cfg, probe)
	if err != nil {
		return envelope{}, err
	}
	pm := power.New(pp, c.Config())
	// The probe's code footprint must first stream in from cold memory
	// (~300 cycles per line), so the measurement window sits well past the
	// warm-up transient.
	const (
		warmup = 20000
		window = 8000
	)
	samples := make([]float64, 0, window)
	var scopeSamples [power.NumScopes][]float64
	for sc := range scopeSamples {
		scopeSamples[sc] = make([]float64, 0, window)
	}
	scopeCur := make([]float64, power.NumScopes)
	var act cpu.Activity
	for i := 0; i < warmup+window; i++ {
		done := c.StepInto(&act)
		rep := pm.Step(&act, power.Phantom{})
		if i >= warmup {
			samples = append(samples, rep.Current)
			pm.ScopeCurrents(&rep, scopeCur)
			for sc := range scopeSamples {
				scopeSamples[sc] = append(scopeSamples[sc], scopeCur[sc])
			}
		}
		if done {
			break
		}
	}
	// The whole-chip envelope is computed exactly as before the scoped
	// breakdown existed (same samples, same sort, same percentile) — the
	// memoized value single-rail calibration consumes is bit-identical.
	sort.Float64s(samples)
	env := envelope{iMin: pm.MinCurrent(), iMax: samples[len(samples)*98/100]}
	for sc := range scopeSamples {
		sort.Float64s(scopeSamples[sc])
		env.scopeMax[sc] = scopeSamples[sc][len(scopeSamples[sc])*98/100]
		env.scopeMin[sc] = pm.ScopedMinCurrent(power.Scope(sc).Mask())
	}
	return env, nil
}

// saturationProbe builds an endless-enough loop of independent, cache-warm,
// perfectly-predicted work mixed across every unit class, the steady-state
// hottest program the machine can run.
func saturationProbe() isa.Program {
	b := isa.NewBuilder()
	b.LdI(1, 1<<14) // warm data region
	b.LdI(9, 4000)  // iterations (far more than the measurement window)
	b.FLdI(2, 1.25)
	b.FLdI(3, 0.75)
	b.Label("loop")
	for i := 0; i < 48; i++ {
		d1 := uint8(10 + i%8)
		d2 := uint8(18 + i%8)
		b.Add(d1, 1, d2)
		b.Xor(d2, 1, d1)
		if i%2 == 0 {
			b.St(1, 1, int64(8*(i%32)))
		} else {
			b.Ld(uint8(26), 1, int64(8*(i%32)))
		}
		b.FAdd(uint8(10+i%8), 2, 3)
		if i%2 == 1 {
			b.FMul(uint8(18+i%4), 2, 3)
		}
		if i%8 == 0 {
			b.Mul(27, 1, d1)
		}
	}
	b.AddI(9, 9, -1)
	b.BneZ(9, "loop")
	b.Halt()
	return b.MustBuild()
}
