package core

import (
	"fmt"

	"didt/internal/cpu"
	"didt/internal/sim"
	"didt/internal/telemetry"
)

// machineRun is the voltage-independent half of an open-loop run: the full
// per-cycle current trace plus the machine's end-of-run aggregates.
// Immutable once cached — the currents slice is shared across every run
// that reuses it and must never be written.
type machineRun struct {
	currents []float64
	stats    cpu.Stats
	energy   float64
	cycles   uint64
}

// machineKey identifies one machine trace: the program plus everything
// that shapes machine evolution on the open-loop path (CPU and power
// configuration, cycle budget). Warmup is excluded — it gates statistics,
// not stepping — and the PDN is excluded by construction: the open-loop
// machine never sees the voltage, which is exactly what lets table2 re-use
// one trace across its four impedance points.
type machineKey struct {
	prog      string
	cpu       string
	power     string
	maxCycles uint64
}

// traceCache memoizes machine traces across open-loop runs keyed by
// Options.ProgKey. Entries are a few hundred KB to a few MB each (8 bytes
// per simulated cycle), so the default capacity is deliberately small —
// 16 covers a full characterization sweep's distinct (program, machine,
// budget) combinations without letting a long-lived server hold more
// than ~100 MB of traces.
var traceCache = sim.NewCache[machineKey, *machineRun](16)

func init() {
	traceCache.RegisterMetrics(telemetry.Default(), "cache.core_trace")
	sim.RegisterCacheCapacity("core_trace", 16, traceCache.SetCapacity)
}

// TraceCacheStats reports the machine-trace cache's effectiveness.
func TraceCacheStats() sim.CacheStats { return traceCache.Stats() }

// ResetTraceCache empties the machine-trace cache (benchmarks use it to
// measure cold-start cost).
func ResetTraceCache() { traceCache.Reset() }

// machineTrace returns this run's machine evolution, from the trace cache
// when a ProgKey is present, stepping this system's own machine otherwise.
func (s *System) machineTrace() (*machineRun, error) {
	if s.opts.ProgKey == "" {
		return s.stepMachine()
	}
	key := machineKey{
		prog:      s.opts.ProgKey,
		cpu:       sim.Fingerprint(s.spec.CPU),
		power:     sim.Fingerprint(s.spec.Power),
		maxCycles: s.spec.Budget.MaxCycles,
	}
	return traceCache.Get(key, func() (*machineRun, error) {
		return s.stepMachine()
	})
}

// stepMachine runs the machine half to completion with quiescent control
// state (zero gating, zero phantom — the open-loop invariant), mirroring
// Run's loop structure exactly: step, count, stop on completion or budget.
func (s *System) stepMachine() (*machineRun, error) {
	mr := &machineRun{currents: make([]float64, 0, s.spec.Budget.MaxCycles)}
	var act cpu.Activity
	for mr.cycles < s.spec.Budget.MaxCycles {
		current, done := s.machineStep(&act)
		mr.currents = append(mr.currents, current)
		mr.cycles++
		if done {
			break
		}
	}
	if err := s.CPU.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	mr.stats = s.CPU.Stats()
	mr.energy = s.Power.TotalEnergy()
	return mr, nil
}

// runOpenLoop is the fast path: machine trace (possibly cached), one block
// convolution, then a statistics replay in cycle order. The replay applies
// the same per-cycle updates as observe does on the streaming path, so the
// only difference in the result is FFT round-off (<= 1e-9 V).
func (s *System) runOpenLoop() (*Result, error) {
	mr, err := s.machineTrace()
	if err != nil {
		return nil, err
	}
	volts := make([]float64, len(mr.currents))
	s.Net.ConvolveVoltages(volts, mr.currents)

	warm := s.spec.Budget.WarmupCycles
	vmin, vmax := s.Net.VMin(), s.Net.VMax()
	for c, v := range volts {
		if uint64(c) < warm {
			continue
		}
		if v < s.minV {
			s.minV = v
		}
		if v > s.maxV {
			s.maxV = v
		}
		if v < vmin || v > vmax {
			s.emerg++
		}
		s.hist.Add(v)
	}
	if s.opts.RecordTraces {
		s.curTr = append(s.curTr, mr.currents...)
		s.voltTr = append(s.voltTr, volts...)
	}
	s.cycle = mr.cycles
	return s.finish(mr.stats, mr.energy), nil
}

// RunBatch advances the given systems in lockstep through one shared
// structure-of-arrays PDN convolver and returns their results in input
// order. All systems must target the same PDN parameters (hence the same
// sampled kernel) and must be freshly built — RunBatch is the batched
// equivalent of calling Run on each.
//
// Each lane's sequence of machine steps, voltages, sensor readings and
// actuation decisions is bit-identical to a solo Run: the batch kernel
// preserves per-lane accumulation order, and every lane keeps its own CPU,
// power model, sensor RNG and policy state. A lane that finishes early
// stops being observed; its slot is driven at IFloor (zero deviation)
// until the whole batch drains.
func RunBatch(systems []*System) ([]*Result, error) {
	if len(systems) == 0 {
		return nil, nil
	}
	if len(systems) == 1 {
		r, err := systems[0].Run()
		if err != nil {
			return nil, err
		}
		return []*Result{r}, nil
	}
	for _, s := range systems {
		if s.rails != nil {
			// Multi-rail systems carry a rail graph per lane; the shared
			// single-kernel batch convolver does not apply. Run them
			// sequentially — same results, no lockstep speedup.
			results := make([]*Result, len(systems))
			for i, ms := range systems {
				r, err := ms.Run()
				if err != nil {
					return nil, fmt.Errorf("core: lane %d: %w", i, err)
				}
				results[i] = r
			}
			return results, nil
		}
	}
	params := systems[0].Net.Params()
	for _, s := range systems[1:] {
		if s.Net.Params() != params {
			return nil, fmt.Errorf("core: RunBatch requires identical PDN params (got %+v vs %+v)", s.Net.Params(), params)
		}
	}
	w := len(systems)
	batch := systems[0].Net.NewBatchSimulator(w)
	currents := make([]float64, w)
	volts := make([]float64, w)
	acts := make([]cpu.Activity, w)
	dones := make([]bool, w)
	finished := make([]bool, w)
	remaining := w
	for remaining > 0 {
		// Once the batch is mostly drained, one fixed w-wide kernel step
		// costs more than stepping the survivors' own streaming simulators,
		// so hand each survivor its lane's ring state and let it finish on
		// the per-run path (bit-identical — see ExtractLane).
		if 2*remaining <= w {
			break
		}
		for l, s := range systems {
			if finished[l] {
				currents[l] = params.IFloor
				continue
			}
			currents[l], dones[l] = s.machineStep(&acts[l])
		}
		batch.Step(currents, volts)
		for l, s := range systems {
			if finished[l] {
				continue
			}
			st := s.observe(&acts[l], currents[l], volts[l], dones[l])
			if st.Done || s.cycle >= s.spec.Budget.MaxCycles {
				finished[l] = true
				remaining--
			}
		}
	}
	for l, s := range systems {
		if finished[l] {
			continue
		}
		batch.ExtractLane(l, s.Sim)
		for s.cycle < s.spec.Budget.MaxCycles {
			if st := s.StepCycle(); st.Done {
				break
			}
		}
	}
	results := make([]*Result, w)
	for l, s := range systems {
		if err := s.CPU.Err(); err != nil {
			return nil, fmt.Errorf("core: lane %d: %w", l, err)
		}
		results[l] = s.finish(s.CPU.Stats(), s.Power.TotalEnergy())
	}
	return results, nil
}
