package core

import (
	"math"
	"testing"

	"didt/internal/actuator"
	"didt/internal/spec"
)

// threeRailKnobs maps the shared knobs onto a three-domain spec: the core
// rail (functional units + uncore), a memory rail (DL1) and a fetch rail
// (IL1), with symmetric core<->mem coupling.
func threeRailKnobs(k knobs) Options {
	o := k.options()
	o.Spec.PDN.Rails = []spec.RailSpec{
		{Name: "core", Scopes: []string{"fu", "uncore"}},
		{Name: "mem", Scopes: []string{"dl1"}},
		{Name: "fetch", Scopes: []string{"il1"}},
	}
	o.Spec.PDN.Coupling = []spec.CouplingSpec{
		{From: "core", To: "mem", K: 0.2},
		{From: "mem", To: "core", K: 0.2},
	}
	return o
}

func TestMultiRailSystemRuns(t *testing.T) {
	sys, err := NewSystem(alternator(300), threeRailKnobs(knobs{MaxCycles: 100000, WarmupCycles: 10000}))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Instructions == 0 {
		t.Error("no instructions retired")
	}
	if len(res.Rails) != 3 {
		t.Fatalf("rail results %d, want 3", len(res.Rails))
	}
	var sum, max uint64
	for _, r := range res.Rails {
		if r.Name == "" || r.IMin <= 0 || r.IMax <= r.IMin {
			t.Errorf("rail %q envelope [%g, %g]", r.Name, r.IMin, r.IMax)
		}
		if r.MinV >= r.MaxV {
			t.Errorf("rail %q voltage range degenerate: [%g, %g]", r.Name, r.MinV, r.MaxV)
		}
		sum += r.Emergencies
		if r.Emergencies > max {
			max = r.Emergencies
		}
	}
	// The aggregate counts cycles where any rail is outside its band:
	// bounded below by the worst rail and above by the sum.
	if res.Emergencies < max || res.Emergencies > sum {
		t.Errorf("aggregate emergencies %d outside [max %d, sum %d]", res.Emergencies, max, sum)
	}
	// The per-rail envelopes partition the chip's.
	var iMinSum, iMaxSum float64
	for _, r := range res.Rails {
		iMinSum += r.IMin
		iMaxSum += r.IMax
	}
	if relErr(iMinSum, res.IMin) > 1e-9 {
		t.Errorf("rail iMin sum %g vs chip %g", iMinSum, res.IMin)
	}
	// Per-scope p98s need not sum to the whole-chip p98, but they bound it
	// from above (max of sum <= sum of maxes, and p98 tracks that closely).
	if iMaxSum < res.IMax {
		t.Errorf("rail iMax sum %g below chip p98 %g", iMaxSum, res.IMax)
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestOneRailGraphMatchesLegacySystem pins the refactor's seam at the
// system level: a spec whose rails section holds a single whole-chip rail
// calibrates identically to the legacy single-rail path (same envelope,
// same kernel) and its run differs only by the float-association of the
// per-scope current split (sub-nanovolt).
func TestOneRailGraphMatchesLegacySystem(t *testing.T) {
	k := knobs{ImpedancePct: 2, MaxCycles: 80000, WarmupCycles: 10000}
	legacy, err := NewSystem(alternator(300), k.options())
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	oneRail := k.options()
	oneRail.Spec.PDN.Rails = []spec.RailSpec{{Name: "chip"}}
	multi, err := NewSystem(alternator(300), oneRail)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()

	if li, la := legacy.Envelope(); true {
		mi, ma := multi.Envelope()
		if li != mi || la != ma {
			t.Fatalf("envelopes differ: legacy [%g, %g] vs one-rail [%g, %g]", li, la, mi, ma)
		}
	}
	if legacy.Net.Params() != multi.Net.Params() {
		t.Fatalf("calibrated params differ:\nlegacy %+v\nrail   %+v", legacy.Net.Params(), multi.Net.Params())
	}

	lr, err := legacy.Run()
	if err != nil {
		t.Fatal(err)
	}
	mr, err := multi.Run()
	if err != nil {
		t.Fatal(err)
	}
	if lr.Cycles != mr.Cycles || lr.Stats != mr.Stats {
		t.Errorf("machine evolution differs: %d/%d cycles", lr.Cycles, mr.Cycles)
	}
	const tol = 1e-9
	if math.Abs(lr.MinV-mr.MinV) > tol || math.Abs(lr.MaxV-mr.MaxV) > tol {
		t.Errorf("voltage stats differ: legacy [%.12f, %.12f] vs one-rail [%.12f, %.12f]",
			lr.MinV, lr.MaxV, mr.MinV, mr.MaxV)
	}
	if lr.Emergencies != mr.Emergencies {
		t.Errorf("emergencies differ: %d vs %d", lr.Emergencies, mr.Emergencies)
	}
}

// TestMultiRailStreamingMatchesOpenLoop: the streaming step path and the
// block-convolution fast path agree on the rail graph to FFT round-off,
// mirroring the single-rail guarantee.
func TestMultiRailStreamingMatchesOpenLoop(t *testing.T) {
	k := knobs{ImpedancePct: 2, MaxCycles: 60000, WarmupCycles: 5000}
	fast, err := NewSystem(alternator(200), threeRailKnobs(k))
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	fr, err := fast.Run() // open loop: control off, no telemetry
	if err != nil {
		t.Fatal(err)
	}

	slow, err := NewSystem(alternator(200), threeRailKnobs(k))
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	for slow.cycle < slow.spec.Budget.MaxCycles {
		if st := slow.StepCycle(); st.Done {
			break
		}
	}
	if err := slow.CPU.Err(); err != nil {
		t.Fatal(err)
	}
	sr := slow.finish(slow.CPU.Stats(), slow.Power.TotalEnergy())

	if fr.Cycles != sr.Cycles {
		t.Fatalf("cycle counts differ: %d vs %d", fr.Cycles, sr.Cycles)
	}
	const tol = 1e-9
	for i := range fr.Rails {
		f, s := fr.Rails[i], sr.Rails[i]
		if math.Abs(f.MinV-s.MinV) > tol || math.Abs(f.MaxV-s.MaxV) > tol {
			t.Errorf("rail %q: open-loop [%.12f, %.12f] vs streaming [%.12f, %.12f]",
				f.Name, f.MinV, f.MaxV, s.MinV, s.MaxV)
		}
		if f.Emergencies != s.Emergencies {
			t.Errorf("rail %q emergencies: %d vs %d", f.Name, f.Emergencies, s.Emergencies)
		}
	}
}

func TestMultiRailControlSolvesPerRailThresholds(t *testing.T) {
	sys, err := NewSystem(alternator(400), threeRailKnobs(knobs{
		ImpedancePct: 2, MaxCycles: 120000, WarmupCycles: 10000,
		Control: true, Mechanism: actuator.Ideal.Name, Delay: 2,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rails {
		if r.Thresholds.Low >= r.Thresholds.High {
			t.Errorf("rail %q thresholds inverted: [%g, %g]", r.Name, r.Thresholds.Low, r.Thresholds.High)
		}
		vn := res.VNominal
		if r.Thresholds.Low >= vn || r.Thresholds.High <= vn {
			t.Errorf("rail %q thresholds [%g, %g] do not bracket nominal %g",
				r.Name, r.Thresholds.Low, r.Thresholds.High, vn)
		}
	}
	if res.Thresholds != res.Rails[0].Thresholds {
		t.Error("top-level thresholds are not rail 0's")
	}
}

// TestMultiRailDVSComposesWithGating: under sustained pressure the DVS
// schedule steps down while the cycle-scale mechanism keeps actuating —
// the two responders compose in one spec.
func TestMultiRailDVSComposesWithGating(t *testing.T) {
	o := threeRailKnobs(knobs{
		ImpedancePct: 3, MaxCycles: 200000, WarmupCycles: 10000,
		Control: true, Mechanism: actuator.FU.Name, Delay: 4,
	})
	o.Spec.Actuator.DVS = &spec.DVSSpec{
		Steps:            []float64{1, 0.95, 0.9},
		TransitionCycles: 5,
		HoldCycles:       400,
		Rail:             "core",
	}
	sys, err := NewSystem(alternator(1500), o)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LowEvents == 0 {
		t.Skip("no voltage-low pressure at this configuration")
	}
	if res.DVSStepDowns == 0 {
		t.Error("sustained low pressure never stepped the DVS schedule down")
	}
}

func TestMultiRailDeterministic(t *testing.T) {
	run := func() *Result {
		o := threeRailKnobs(knobs{
			ImpedancePct: 2, MaxCycles: 60000, WarmupCycles: 5000,
			Control: true, Mechanism: actuator.Ideal.Name, Delay: 2, NoiseMV: 5, Seed: 42,
		})
		sys, err := NewSystem(alternator(300), o)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Emergencies != b.Emergencies || a.MinV != b.MinV || a.MaxV != b.MaxV {
		t.Errorf("runs differ: %d/%d cycles, %d/%d emerg", a.Cycles, b.Cycles, a.Emergencies, b.Emergencies)
	}
	for i := range a.Rails {
		if a.Rails[i] != b.Rails[i] {
			t.Errorf("rail %d differs:\n%+v\n%+v", i, a.Rails[i], b.Rails[i])
		}
	}
}

func TestMultiRailRejectsResponderOverride(t *testing.T) {
	o := threeRailKnobs(knobs{MaxCycles: 1000})
	o.Responder = actuator.Asymmetric{Low: actuator.FU, High: actuator.Ideal}
	if _, err := NewSystem(alternator(10), o); err == nil {
		t.Fatal("multi-rail spec accepted a code-level responder override")
	}
}

func TestRunBatchMultiRailSequentialFallback(t *testing.T) {
	build := func() []*System {
		systems := make([]*System, 3)
		for i := range systems {
			sys, err := NewSystem(alternator(100+50*i), threeRailKnobs(knobs{
				ImpedancePct: 2, MaxCycles: 40000, WarmupCycles: 5000,
			}))
			if err != nil {
				t.Fatal(err)
			}
			systems[i] = sys
		}
		return systems
	}
	batchSys := build()
	batch, err := RunBatch(batchSys)
	if err != nil {
		t.Fatal(err)
	}
	for i, sys := range build() {
		solo, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Emergencies != solo.Emergencies || batch[i].MinV != solo.MinV || batch[i].Cycles != solo.Cycles {
			t.Errorf("lane %d: batch %+v vs solo %+v", i, batch[i].Rails, solo.Rails)
		}
		sys.Close()
	}
	for _, s := range batchSys {
		s.Close()
	}
}

// TestSingleRailDVSInertWithoutControl: a DVS section on a legacy
// single-rail spec with control disabled never engages, and the run is
// bit-identical to the same spec without it.
func TestSingleRailDVSInertWithoutControl(t *testing.T) {
	k := knobs{ImpedancePct: 2, MaxCycles: 60000, WarmupCycles: 5000}
	base, err := NewSystem(alternator(200), k.options())
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	br, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	o := k.options()
	o.Spec.Actuator.DVS = &spec.DVSSpec{}
	dvs, err := NewSystem(alternator(200), o)
	if err != nil {
		t.Fatal(err)
	}
	defer dvs.Close()
	dr, err := dvs.Run()
	if err != nil {
		t.Fatal(err)
	}
	if br.MinV != dr.MinV || br.MaxV != dr.MaxV || br.Emergencies != dr.Emergencies || br.Cycles != dr.Cycles {
		t.Errorf("inert DVS changed the run: [%v %v %d] vs [%v %v %d]",
			br.MinV, br.MaxV, br.Emergencies, dr.MinV, dr.MaxV, dr.Emergencies)
	}
	if dr.DVSStepDowns != 0 || dr.DVSStepUps != 0 {
		t.Errorf("inert DVS stepped: %d down %d up", dr.DVSStepDowns, dr.DVSStepUps)
	}
}

// TestSingleRailDVSEngagesWithControl: on the legacy path the schedule
// advances through Respond and shows up in the result counters.
func TestSingleRailDVSEngagesWithControl(t *testing.T) {
	o := knobs{
		ImpedancePct: 3, MaxCycles: 200000, WarmupCycles: 10000,
		Control: true, Mechanism: actuator.FU.Name, Delay: 4,
	}.options()
	o.Spec.Actuator.DVS = &spec.DVSSpec{TransitionCycles: 5, HoldCycles: 400}
	sys, err := NewSystem(alternator(1500), o)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LowEvents == 0 {
		t.Skip("no voltage-low pressure at this configuration")
	}
	if res.DVSStepDowns == 0 {
		t.Error("controlled single-rail run with low pressure never stepped down")
	}
}
