package core

import (
	"fmt"
	"math"

	"didt/internal/actuator"
	"didt/internal/control"
	"didt/internal/cpu"
	"didt/internal/pdn"
	"didt/internal/power"
	"didt/internal/sensor"
	"didt/internal/spec"
)

// Multi-rail assembly: when the spec carries a Rails section, the system
// replaces its single Network/Simulator pair with a pdn.Graph — one
// calibrated Network per delivery domain plus the cross-coupling matrix —
// and the power model's per-cycle current is split across the rails by
// delivery scope. The single-rail spine is untouched: a legacy spec never
// enters this file, and the public System.Net/System.Sim fields point at
// rail 0 so existing accessors keep working.

// railState is one delivery domain's runtime state.
type railState struct {
	name       string
	net        *pdn.Network
	sensor     *sensor.Sensor // nil when the rail is not sensed
	th         control.Thresholds
	iMin, iMax float64
	mask       power.ScopeMask

	level sensor.Level
	minV  float64
	maxV  float64
	emerg uint64
}

// RailResult summarizes one rail of a multi-rail run.
type RailResult struct {
	Name          string
	IMin, IMax    float64 // rail calibration envelope (amperes)
	MinV, MaxV    float64 // observed after warmup
	Emergencies   uint64  // post-warmup cycles outside the rail's band
	EmergencyFreq float64
	Thresholds    control.Thresholds
}

// newMultiRailSystem finishes NewSystem for a spec with a Rails section:
// per-rail envelopes from the scoped saturation probe, per-rail
// calibration, the coupled graph, per-rail sensors, and — with control
// enabled — per-rail threshold solves against the mechanism's scoped
// authority.
func newMultiRailSystem(s *System, sp spec.RunSpec, opts Options) (*System, error) {
	if opts.Responder != nil {
		return nil, fmt.Errorf("core: multi-rail specs do not support code-level responder overrides; use the actuator spec")
	}
	masks, err := sp.PDN.RailScopeMasks()
	if err != nil {
		return nil, err
	}
	env, err := measureEnvelopeScoped(opts.Spec.CPU, opts.Spec.Power)
	if err != nil {
		return nil, err
	}
	s.iMin, s.iMax = env.iMin, env.iMax

	sensed := func(name string) bool {
		if len(sp.Sensor.Rails) == 0 {
			return true
		}
		for _, n := range sp.Sensor.Rails {
			if n == name {
				return true
			}
		}
		return false
	}

	noise := sp.Sensor.NoiseMV * 1e-3
	seed := sp.Seed.Resolve(0)
	rails := make([]railState, len(sp.PDN.Rails))
	graphRails := make([]pdn.Rail, len(sp.PDN.Rails))
	for i, rs := range sp.PDN.Rails {
		var iMin, iMax float64
		if masks[i] == power.AllScopes {
			// A rail feeding the whole chip uses the whole-chip envelope
			// (p98 of the summed current, not the sum of per-scope p98s),
			// so a one-rail graph calibrates exactly like the legacy path.
			iMin, iMax = env.iMin, env.iMax
		} else {
			for sc := power.Scope(0); sc < power.NumScopes; sc++ {
				if masks[i].Has(sc) {
					iMin += env.scopeMin[sc]
					iMax += env.scopeMax[sc]
				}
			}
		}
		params := rs.Params
		params.IFloor = 0.5 * (iMin + iMax)
		net, err := pdn.Calibrate(params, iMin, iMax, rs.ImpedancePct)
		if err != nil {
			return nil, fmt.Errorf("core: rail %q: %w", rs.Name, err)
		}
		rails[i] = railState{
			name: rs.Name,
			net:  net,
			iMin: iMin,
			iMax: iMax,
			mask: masks[i],
			minV: math.Inf(1),
			maxV: math.Inf(-1),
		}
		if sensed(rs.Name) {
			// Each rail draws its noise from its own stream so per-rail
			// readings stay independent yet seed-deterministic.
			sen, err := sensor.New(sp.Sensor.DelayCycles, noise, seed+int64(i))
			if err != nil {
				return nil, err
			}
			rails[i].sensor = sen
		}
		graphRails[i] = pdn.Rail{Name: rs.Name, Net: net}
	}
	matrix, err := sp.PDN.CouplingMatrix()
	if err != nil {
		return nil, err
	}
	graph, err := pdn.NewGraph(graphRails, matrix)
	if err != nil {
		return nil, err
	}
	s.graph = graph
	s.gsim = graph.NewSimulator()
	s.rails = rails
	s.Net = rails[0].net
	s.Sim = s.gsim.RailSim(0)
	s.scopeCur = make([]float64, power.NumScopes)
	s.railCur = make([]float64, len(rails))
	s.railVolt = make([]float64, len(rails))
	for sc := power.Scope(0); sc < power.NumScopes; sc++ {
		for i := range rails {
			if rails[i].mask.Has(sc) {
				s.railOf[sc] = i
				break
			}
		}
	}

	mech, err := sp.Mechanism()
	if err != nil {
		return nil, err
	}
	s.responder = mech
	s.dvsRail = -1
	if d := sp.Actuator.DVS; d != nil {
		dvs := actuator.NewDVS(mech, d.Steps, d.TransitionCycles, d.HoldCycles, d.CurrentExponent)
		// The multi-rail loop drives the schedule itself, from the bound
		// rail's sensed level (or the aggregate when unbound).
		dvs.Driven = true
		if d.Rail != "" {
			for i := range rails {
				if rails[i].name == d.Rail {
					s.dvsRail = i
					break
				}
			}
		}
		s.dvs = dvs
		s.responder = dvs
	}

	if sp.Control.Enabled {
		s.counting = &actuator.Counting{R: s.responder}
		s.responder = s.counting
		guard := sp.Sensor.GuardBandMV * 1e-3
		for i := range rails {
			r := &rails[i]
			// The mechanism's authority over this rail: what gating can
			// force its scopes down to and phantom firing up to. Clamp into
			// the rail's envelope — a rail the mechanism cannot reach keeps
			// a floor at its own maximum (no authority), which the solver
			// then reports as unstable rather than erroring out.
			floor := s.Power.ScopedGatedFloorCurrent(r.mask, mech.FUs, mech.DL1, mech.IL1)
			ceil := s.Power.ScopedPhantomCeilingCurrent(r.mask, mech.FUs, mech.DL1, mech.IL1)
			if floor > r.iMax {
				floor = r.iMax
			}
			if ceil < r.iMin {
				ceil = r.iMin
			}
			th, err := control.NewSolver(r.net).Solve(control.Envelope{
				IMin: r.iMin, IMax: r.iMax,
				Floor: floor, Ceil: ceil,
				Settle: sp.Control.SettleCycles,
			}, sp.Sensor.DelayCycles)
			if err != nil {
				return nil, fmt.Errorf("core: rail %q thresholds: %w", r.name, err)
			}
			if th.Stable {
				lo, hi := th.Low+guard, th.High-guard
				if lo >= hi {
					th.Stable = false
				} else {
					th.Low, th.High, th.SafeWindow = lo, hi, hi-lo
				}
			}
			if !th.Stable {
				p := r.net.Params()
				th.Low = p.VNominal - 0.25*(p.VNominal-r.net.VMin())
				th.High = p.VNominal + 0.25*(r.net.VMax()-p.VNominal)
				th.SafeWindow = th.High - th.Low
			}
			r.th = th
			if r.sensor != nil {
				if err := r.sensor.SetThresholds(th.Low, th.High); err != nil {
					return nil, err
				}
			}
		}
		s.thresholds = rails[0].th
	}
	return s, nil
}

// machineStepMulti advances the machine half and splits the cycle's
// current across the rails by delivery scope (scaled by the DVS operating
// point when one is active). railCur must have length >= len(s.rails).
//
//didt:hotpath
func (s *System) machineStepMulti(act *cpu.Activity, railCur []float64) (float64, bool) {
	s.CPU.SetGating(s.gating)
	done := s.CPU.StepInto(act)
	rep := s.Power.Step(act, s.phantom)
	s.Power.ScopeCurrents(&rep, s.scopeCur)
	scale := 1.0
	if s.dvs != nil {
		scale = s.dvs.CurrentScale()
	}
	for i := range s.rails {
		railCur[i] = 0
	}
	for sc := 0; sc < int(power.NumScopes); sc++ {
		railCur[s.railOf[sc]] += s.scopeCur[sc]
	}
	for i := range s.rails {
		railCur[i] *= scale
	}
	return rep.Current * scale, done
}

// stepCycleMulti is StepCycle on the rail graph: machine step, one coupled
// graph step, then per-rail observation.
//
//didt:hotpath
func (s *System) stepCycleMulti() CycleState {
	total, done := s.machineStepMulti(&s.act, s.railCur)
	s.gsim.Step(s.railCur, s.railVolt)
	return s.observeMulti(&s.act, total, done)
}

// observeMulti ingests one cycle's per-rail voltages: per-rail statistics
// and sensing, the aggregate control decision (any rail low gates, else
// any rail high phantom-fires), the DVS schedule, telemetry and the cycle
// counter. The aggregate min/max/emergency statistics are the worst across
// rails, so single-number summaries stay meaningful.
//
//didt:hotpath
func (s *System) observeMulti(act *cpu.Activity, total float64, done bool) CycleState {
	if s.cycle >= s.spec.Budget.WarmupCycles {
		anyEmerg := false
		for i := range s.rails {
			r := &s.rails[i]
			v := s.railVolt[i]
			if v < r.minV {
				r.minV = v
			}
			if v > r.maxV {
				r.maxV = v
			}
			if v < r.net.VMin() || v > r.net.VMax() {
				r.emerg++
				anyEmerg = true
			}
			if v < s.minV {
				s.minV = v
			}
			if v > s.maxV {
				s.maxV = v
			}
			s.hist.Add(v)
		}
		if anyEmerg {
			s.emerg++
		}
	}
	if s.opts.RecordTraces {
		s.curTr = append(s.curTr, total)           //didt:allow hotpath -- trace recording is a debug mode; steady-state sweeps never enter this branch
		s.voltTr = append(s.voltTr, s.railVolt[0]) //didt:allow hotpath -- trace recording is a debug mode; steady-state sweeps never enter this branch
	}

	level := sensor.Normal
	if s.spec.Control.Enabled {
		anyLow, anyHigh := false, false
		for i := range s.rails {
			r := &s.rails[i]
			if r.sensor == nil {
				r.level = sensor.Normal
				continue
			}
			r.level = r.sensor.Sense(s.railVolt[i])
			if r.level == sensor.Low {
				anyLow = true
			} else if r.level == sensor.High {
				anyHigh = true
			}
		}
		// Undervolt wins: gating beats phantom firing when rails disagree.
		if anyLow {
			level = sensor.Low
		} else if anyHigh {
			level = sensor.High
		}
		if s.dvs != nil {
			drive := level
			if s.dvsRail >= 0 {
				drive = s.rails[s.dvsRail].level
			}
			s.dvs.Observe(drive)
		}
		lowBefore := s.policy.LowEvents
		gate, phantom := s.policy.Update(anyLow, anyHigh)
		g, p := s.responder.Respond(level)
		if !gate {
			g = cpu.Gating{}
		}
		if !phantom {
			p = power.Phantom{}
		}
		s.gating, s.phantom = g, p
		if s.spec.Control.FlushRecovery && s.policy.LowEvents > lowBefore {
			s.CPU.Flush(s.CPU.Config().BranchPenalty)
		}
	}

	if s.spec.Control.PessimisticRamp > 0 {
		if !s.spec.Control.Enabled {
			s.gating = cpu.Gating{}
		}
		if act.Issued == 0 {
			s.quietStreak++
		} else {
			if s.quietStreak >= 8 {
				s.rampLeft = s.spec.Control.PessimisticRamp
			}
			s.quietStreak = 0
		}
		if s.rampLeft > 0 {
			s.rampLeft--
			if s.cycle%2 == 0 {
				s.gating.FUs = true
			}
		}
	}

	if s.stream.Enabled() {
		// Telemetry narrates rail 0 (the primary domain); per-rail streams
		// are future work.
		s.emitCycle(total, s.railVolt[0], level)
	}

	st := CycleState{
		Cycle:   s.cycle,
		Current: total,
		Voltage: s.railVolt[0],
		Level:   level,
		Gating:  s.gating,
		Phantom: s.phantom,
		Done:    done,
	}
	s.cycle++
	return st
}

// runOpenLoopMulti is the open-loop fast path on the rail graph: step the
// machine once recording per-rail current traces, block-convolve every
// rail (coupling included) through Graph.ConvolveVoltages, then replay the
// statistics in cycle order. The machine-trace cache does not apply — its
// entries are single-current traces — but the per-rail block convolution
// still beats kernel-length multiply-adds per cycle per rail.
func (s *System) runOpenLoopMulti() (*Result, error) {
	n := len(s.rails)
	traces := make([][]float64, n)
	for i := range traces {
		traces[i] = make([]float64, 0, s.spec.Budget.MaxCycles)
	}
	var totals []float64
	if s.opts.RecordTraces {
		totals = make([]float64, 0, s.spec.Budget.MaxCycles)
	}
	var act cpu.Activity
	var cycles uint64
	railCur := make([]float64, n)
	for cycles < s.spec.Budget.MaxCycles {
		total, done := s.machineStepMulti(&act, railCur)
		for i := 0; i < n; i++ {
			traces[i] = append(traces[i], railCur[i])
		}
		if s.opts.RecordTraces {
			totals = append(totals, total)
		}
		cycles++
		if done {
			break
		}
	}
	if err := s.CPU.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	volts := make([][]float64, n)
	for i := range volts {
		volts[i] = make([]float64, len(traces[i]))
	}
	s.graph.ConvolveVoltages(volts, traces)

	warm := s.spec.Budget.WarmupCycles
	for c := uint64(0); c < cycles; c++ {
		if c < warm {
			continue
		}
		anyEmerg := false
		for i := range s.rails {
			r := &s.rails[i]
			v := volts[i][c]
			if v < r.minV {
				r.minV = v
			}
			if v > r.maxV {
				r.maxV = v
			}
			if v < r.net.VMin() || v > r.net.VMax() {
				r.emerg++
				anyEmerg = true
			}
			if v < s.minV {
				s.minV = v
			}
			if v > s.maxV {
				s.maxV = v
			}
			s.hist.Add(v)
		}
		if anyEmerg {
			s.emerg++
		}
	}
	if s.opts.RecordTraces {
		s.curTr = append(s.curTr, totals...)
		s.voltTr = append(s.voltTr, volts[0]...)
	}
	s.cycle = cycles
	return s.finish(s.CPU.Stats(), s.Power.TotalEnergy()), nil
}

// railResults materializes the per-rail summaries for finish.
func (s *System) railResults() []RailResult {
	if len(s.rails) == 0 {
		return nil
	}
	measured := uint64(0)
	if s.cycle > s.spec.Budget.WarmupCycles {
		measured = s.cycle - s.spec.Budget.WarmupCycles
	}
	out := make([]RailResult, len(s.rails))
	for i := range s.rails {
		r := &s.rails[i]
		rr := RailResult{
			Name:        r.name,
			IMin:        r.iMin,
			IMax:        r.iMax,
			MinV:        r.minV,
			MaxV:        r.maxV,
			Emergencies: r.emerg,
			Thresholds:  r.th,
		}
		if measured > 0 {
			rr.EmergencyFreq = float64(r.emerg) / float64(measured)
		}
		out[i] = rr
	}
	return out
}

// Rails exposes the per-rail networks and calibration envelopes for
// inspection tools (cmd/pdnexplore). Nil on a single-rail system.
func (s *System) Rails() []RailInfo {
	if len(s.rails) == 0 {
		return nil
	}
	out := make([]RailInfo, len(s.rails))
	for i := range s.rails {
		r := &s.rails[i]
		out[i] = RailInfo{
			Name:       r.name,
			Net:        r.net,
			IMin:       r.iMin,
			IMax:       r.iMax,
			Coupling:   s.graph.CouplingInto(i),
			Thresholds: r.th,
		}
	}
	return out
}

// RailInfo describes one assembled rail.
type RailInfo struct {
	Name       string
	Net        *pdn.Network
	IMin, IMax float64
	Coupling   []float64 // incoming coefficients, spec order; nil when uncoupled
	Thresholds control.Thresholds
}
