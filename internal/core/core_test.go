package core

import (
	"math"
	"testing"

	"didt/internal/actuator"
	"didt/internal/isa"
	"didt/internal/spec"
	"didt/internal/telemetry"
)

// knobs is the flat option shape these tests vary; options maps it onto a
// spec-backed Options value.
type knobs struct {
	ImpedancePct  float64
	MaxCycles     uint64
	WarmupCycles  uint64
	Control       bool
	Mechanism     string
	Delay         int
	NoiseMV       float64
	Seed          int64
	EnvelopeIMin  float64
	EnvelopeIMax  float64
	FlushRecovery bool
}

func (k knobs) options() Options {
	var s spec.RunSpec
	s.PDN.ImpedancePct = k.ImpedancePct
	s.PDN.EnvelopeIMin = k.EnvelopeIMin
	s.PDN.EnvelopeIMax = k.EnvelopeIMax
	s.Control.Enabled = k.Control
	s.Control.FlushRecovery = k.FlushRecovery
	s.Actuator.Mechanism = k.Mechanism
	s.Sensor.DelayCycles = k.Delay
	s.Sensor.NoiseMV = k.NoiseMV
	s.Budget.MaxCycles = k.MaxCycles
	s.Budget.WarmupCycles = k.WarmupCycles
	if k.Seed != 0 {
		s.Seed = spec.NewSeed(k.Seed)
	}
	return Options{Spec: s}
}

// alternator builds a current-swinging loop: a divide-stall phase feeding a
// dependent burst, a miniature stressmark for fast tests.
func alternator(iters int) isa.Program {
	b := isa.NewBuilder()
	b.LdI(4, 1<<16)
	b.LdI(9, int64(iters))
	b.FLdI(2, 1.0000001)
	b.FLdI(1, 1.5)
	b.FSt(1, 4, 0)
	b.Label("loop")
	b.FLd(1, 4, 0)
	b.FDiv(3, 1, 2)
	b.FDiv(3, 3, 2)
	b.FDiv(3, 3, 2)
	b.FSt(3, 4, 8)
	b.Ld(7, 4, 8)
	// Interleaved wide burst, everything dependent on r7/f3.
	for i := 0; i < 45; i++ {
		b.Add(uint8(10+i%16), 7, uint8(10+(i+5)%16))
		b.Xor(uint8(10+(i+1)%16), 7, uint8(10+(i+9)%16))
		if i < 40 {
			b.St(7, 4, int64(64+8*i))
		}
		if i < 32 {
			b.FAdd(uint8(10+i%8), 3, uint8(10+(i+3)%8))
		}
		if i%2 == 0 {
			b.FMul(uint8(18+i%4), 3, 2)
		}
	}
	b.FSt(3, 4, 0)
	b.AddI(9, 9, -1)
	b.BneZ(9, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestSystemRunsAndReports(t *testing.T) {
	sys, err := NewSystem(alternator(300), knobs{MaxCycles: 100000}.options())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Instructions == 0 {
		t.Error("no instructions retired")
	}
	if res.Energy <= 0 || res.AvgPower <= 0 {
		t.Errorf("energy accounting: E=%g P=%g", res.Energy, res.AvgPower)
	}
	if res.MinV >= res.MaxV {
		t.Errorf("voltage range degenerate: [%g, %g]", res.MinV, res.MaxV)
	}
	if res.Hist.Total() == 0 {
		t.Error("voltage histogram empty")
	}
	if res.IMin <= 0 || res.IMax <= res.IMin {
		t.Errorf("bad envelope: [%g, %g]", res.IMin, res.IMax)
	}
}

func TestEnvelopeMeasurement(t *testing.T) {
	sys, err := NewSystem(alternator(50), knobs{MaxCycles: 50000}.options())
	if err != nil {
		t.Fatal(err)
	}
	iMin, iMax := sys.Envelope()
	// A ~60W-class machine: idle near 11A, sustained max 40-60A.
	if iMin < 5 || iMin > 20 {
		t.Errorf("iMin = %g out of expected range", iMin)
	}
	if iMax < 35 || iMax > 65 {
		t.Errorf("iMax = %g out of expected range", iMax)
	}
}

func TestEnvelopeOverride(t *testing.T) {
	sys, err := NewSystem(alternator(50), knobs{
		MaxCycles: 1000, EnvelopeIMin: 12, EnvelopeIMax: 48,
	}.options())
	if err != nil {
		t.Fatal(err)
	}
	iMin, iMax := sys.Envelope()
	if iMin != 12 || iMax != 48 {
		t.Errorf("override ignored: [%g, %g]", iMin, iMax)
	}
}

func TestRecordTraces(t *testing.T) {
	sys, err := NewSystem(alternator(100), func() Options {
		o := knobs{MaxCycles: 30000}.options()
		o.RecordTraces = true
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(res.CurrentTrace)) != res.Cycles || uint64(len(res.VoltageTrace)) != res.Cycles {
		t.Errorf("trace lengths %d/%d vs cycles %d", len(res.CurrentTrace), len(res.VoltageTrace), res.Cycles)
	}
}

func TestHigherImpedanceWidensSwings(t *testing.T) {
	dev := func(pct float64) float64 {
		sys, err := NewSystem(alternator(800), knobs{ImpedancePct: pct, MaxCycles: 100000, WarmupCycles: 20000}.options())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return math.Max(res.VNominal-res.MinV, res.MaxV-res.VNominal)
	}
	if d1, d3 := dev(1), dev(3); d3 <= d1 {
		t.Errorf("300%% dev %.1fmV should exceed 100%% dev %.1fmV", d3*1e3, d1*1e3)
	}
}

func TestControlEliminatesEmergencies(t *testing.T) {
	// The headline result: at an impedance where the uncontrolled machine
	// has emergencies, the controller removes them (ideal actuator, small
	// delay), at modest performance cost.
	base, err := NewSystem(alternator(1500), knobs{ImpedancePct: 3, MaxCycles: 250000, WarmupCycles: 20000}.options())
	if err != nil {
		t.Fatal(err)
	}
	resBase, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resBase.Emergencies == 0 {
		t.Skip("workload does not produce emergencies at 300% on this configuration")
	}

	ctl, err := NewSystem(alternator(1500), knobs{
		ImpedancePct: 3, MaxCycles: 400000, WarmupCycles: 20000,
		Control: true, Mechanism: actuator.Ideal.Name, Delay: 2,
	}.options())
	if err != nil {
		t.Fatal(err)
	}
	resCtl, err := ctl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !resCtl.Thresholds.Stable {
		t.Fatal("solver found no stable thresholds")
	}
	if resCtl.Emergencies != 0 {
		t.Errorf("controller left %d emergencies (minV=%.4f maxV=%.4f, thresholds %+v)",
			resCtl.Emergencies, resCtl.MinV, resCtl.MaxV, resCtl.Thresholds)
	}
	if resCtl.LowEvents == 0 {
		t.Error("controller never actuated — suspicious for a swinging workload")
	}
	slowdown := float64(resCtl.Cycles)/float64(resBase.Cycles) - 1
	if slowdown > 0.5 {
		t.Errorf("slowdown %.1f%% unreasonably large", slowdown*100)
	}
}

func TestControlPreservesArchitecturalResults(t *testing.T) {
	run := func(control bool) int64 {
		sys, err := NewSystem(alternator(200), knobs{
			ImpedancePct: 3, MaxCycles: 200000,
			Control: control, Delay: 1, Mechanism: actuator.FUDL1.Name,
		}.options())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if !sys.CPU.Done() {
			t.Fatal("did not finish")
		}
		return sys.CPU.Arch().R[7]
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("control changed architectural state: %d vs %d", a, b)
	}
}

func TestSensorDelayDegradesStressmarkPerformance(t *testing.T) {
	cycles := func(delay int) uint64 {
		sys, err := NewSystem(alternator(800), knobs{
			ImpedancePct: 3, MaxCycles: 500000, Control: true, Delay: delay,
		}.options())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if c0, c5 := cycles(0), cycles(5); c5 < c0 {
		t.Errorf("delay 5 (%d cycles) should not beat delay 0 (%d)", c5, c0)
	}
}

func TestNoiseGuardBandNarrowsWindow(t *testing.T) {
	th := func(noise float64) float64 {
		sys, err := NewSystem(alternator(50), knobs{
			MaxCycles: 1000, Control: true, Delay: 1, NoiseMV: noise,
		}.options())
		if err != nil {
			t.Fatal(err)
		}
		tt := sys.Thresholds()
		if !tt.Stable {
			t.Fatalf("unstable at noise %.0fmV", noise)
		}
		return tt.SafeWindow
	}
	if w0, w15 := th(0), th(15); w15 >= w0 {
		t.Errorf("15mV noise window %.1fmV should be narrower than clean %.1fmV", w15*1e3, w0*1e3)
	}
}

func TestStepCycleReportsLevels(t *testing.T) {
	sys, err := NewSystem(alternator(200), knobs{
		ImpedancePct: 3, MaxCycles: 100000, Control: true, Delay: 1,
	}.options())
	if err != nil {
		t.Fatal(err)
	}
	sawGate := false
	for i := 0; i < 100000; i++ {
		st := sys.StepCycle()
		if st.Gating.FUs {
			sawGate = true
		}
		if st.Done {
			break
		}
	}
	if !sawGate {
		t.Error("no gating observed on a swinging workload at 300% impedance")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *Result {
		sys, err := NewSystem(alternator(300), knobs{
			ImpedancePct: 2, MaxCycles: 100000, Control: true, Delay: 2, NoiseMV: 10, Seed: 42,
		}.options())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Emergencies != b.Emergencies || a.Energy != b.Energy {
		t.Error("identical seeded runs diverged")
	}
}

func TestFlushRecoveryStillProtects(t *testing.T) {
	// Section 6's alternative recovery: flushing on each gating episode
	// must preserve protection and architectural results, at some extra
	// performance cost relative to protect-and-resume.
	run := func(flush bool) (*Result, int64) {
		sys, err := NewSystem(alternator(800), knobs{
			ImpedancePct: 3, MaxCycles: 500000, WarmupCycles: 20000,
			Control: true, Delay: 2, FlushRecovery: flush,
		}.options())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !sys.CPU.Done() {
			t.Fatal("did not finish")
		}
		return res, sys.CPU.Arch().R[7]
	}
	resume, archA := run(false)
	flush, archB := run(true)
	if archA != archB {
		t.Errorf("recovery style changed architectural state: %d vs %d", archA, archB)
	}
	if flush.Emergencies > resume.Emergencies {
		t.Errorf("flush recovery lost protection: %d vs %d emergencies",
			flush.Emergencies, resume.Emergencies)
	}
	if flush.Cycles < resume.Cycles {
		t.Errorf("flush recovery should not be faster: %d vs %d cycles",
			flush.Cycles, resume.Cycles)
	}
}

func TestTelemetryEventsRecorded(t *testing.T) {
	tracer := telemetry.NewTracer(1 << 14)
	sys, err := NewSystem(alternator(400), func() Options {
		o := knobs{ImpedancePct: 3, MaxCycles: 200000, Control: true, Delay: 2}.options()
		o.Telemetry = tracer
		o.TelemetryName = "alt"
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	streams := tracer.Streams()
	if len(streams) != 1 || streams[0].Name() != "alt" {
		t.Fatalf("streams = %v", streams)
	}
	kinds := map[telemetry.Kind]int{}
	for _, e := range streams[0].Events() {
		kinds[e.Kind]++
	}
	if kinds[telemetry.KindVoltage] == 0 || kinds[telemetry.KindCurrent] == 0 {
		t.Fatalf("missing per-cycle samples: %v", kinds)
	}
	if kinds[telemetry.KindSensorLevel] == 0 {
		t.Fatalf("no sensor-level transitions recorded (run had %d gating episodes): %v",
			res.LowEvents, kinds)
	}
	if res.LowEvents > 0 && kinds[telemetry.KindGate] == 0 {
		t.Fatalf("run gated %d times but no gate events: %v", res.LowEvents, kinds)
	}
	if res.Emergencies > 0 && kinds[telemetry.KindEmergency] == 0 {
		t.Fatalf("run had %d emergencies but no emergency events: %v", res.Emergencies, kinds)
	}
	// Streams record at most one sample pair per cycle.
	if got := streams[0].Total(); got > 8*res.Cycles {
		t.Fatalf("suspicious event volume %d for %d cycles", got, res.Cycles)
	}
}

func TestTelemetryDisabledAndNil(t *testing.T) {
	run := func(tracer *telemetry.Tracer) *Result {
		sys, err := NewSystem(alternator(50), func() Options {
			o := knobs{MaxCycles: 50000}.options()
			o.Telemetry = tracer
			return o
		}())
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil) // nil tracer: must not panic anywhere

	off := telemetry.NewTracer(0)
	off.SetEnabled(false)
	res := run(off)
	for _, s := range off.Streams() {
		if s.Total() != 0 {
			t.Fatalf("disabled tracer recorded %d events on %q", s.Total(), s.Name())
		}
	}
	if res.Cycles != base.Cycles || res.Stats.Instructions != base.Stats.Instructions {
		t.Fatalf("telemetry changed simulation: %d/%d cycles, %d/%d instructions",
			res.Cycles, base.Cycles, res.Stats.Instructions, base.Stats.Instructions)
	}
}

func TestRunPublishesMetrics(t *testing.T) {
	reg := telemetry.Default()
	before := reg.Snapshot().Counters
	sys, err := NewSystem(alternator(50), knobs{MaxCycles: 50000, Control: true, Delay: 2}.options())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	after := reg.Snapshot().Counters
	if after["core.runs_total"] != before["core.runs_total"]+1 {
		t.Fatalf("runs_total %d -> %d", before["core.runs_total"], after["core.runs_total"])
	}
	if got := after["core.cycles_total"] - before["core.cycles_total"]; got != int64(res.Cycles) {
		t.Fatalf("cycles_total grew by %d, run took %d cycles", got, res.Cycles)
	}
	if after["sensor.samples_total"] <= before["sensor.samples_total"] {
		t.Fatal("sensor samples not published")
	}
	if after["actuator.low_responses_total"]+after["actuator.high_responses_total"]+
		after["actuator.normal_responses_total"] <=
		before["actuator.low_responses_total"]+before["actuator.high_responses_total"]+
			before["actuator.normal_responses_total"] {
		t.Fatal("actuator responses not published")
	}
}
