package core

import (
	"math"
	"testing"

	"didt/internal/telemetry"
)

// TestOpenLoopMatchesStreaming pins the fast-path contract: an
// uncontrolled run through the block-convolution path must match the
// same run forced onto the per-cycle streaming path (via an enabled
// tracer, which never changes results) exactly on machine state and to
// FFT round-off on voltage statistics.
func TestOpenLoopMatchesStreaming(t *testing.T) {
	k := knobs{ImpedancePct: 2, MaxCycles: 60000, WarmupCycles: 10000}

	fastSys, err := NewSystem(alternator(300), k.options())
	if err != nil {
		t.Fatal(err)
	}
	if !fastSys.openLoop() {
		t.Fatal("uncontrolled run did not select the open-loop path")
	}
	fast, err := fastSys.Run()
	if err != nil {
		t.Fatal(err)
	}

	opts := k.options()
	opts.Telemetry = telemetry.NewTracer(1 << 10)
	opts.TelemetryName = "stream"
	slowSys, err := NewSystem(alternator(300), opts)
	if err != nil {
		t.Fatal(err)
	}
	if slowSys.openLoop() {
		t.Fatal("traced run unexpectedly selected the open-loop path")
	}
	slow, err := slowSys.Run()
	if err != nil {
		t.Fatal(err)
	}

	if fast.Cycles != slow.Cycles || fast.Stats != slow.Stats {
		t.Fatalf("machine state diverged: %d/%+v vs %d/%+v",
			fast.Cycles, fast.Stats, slow.Cycles, slow.Stats)
	}
	if fast.Energy != slow.Energy {
		t.Fatalf("energy diverged: %g vs %g", fast.Energy, slow.Energy)
	}
	const tol = 1e-9
	if math.Abs(fast.MinV-slow.MinV) > tol || math.Abs(fast.MaxV-slow.MaxV) > tol {
		t.Fatalf("voltage extremes diverged: [%g,%g] vs [%g,%g]",
			fast.MinV, fast.MaxV, slow.MinV, slow.MaxV)
	}
	if fast.Emergencies != slow.Emergencies {
		t.Fatalf("emergencies diverged: %d vs %d", fast.Emergencies, slow.Emergencies)
	}
	if fast.Hist.Total() != slow.Hist.Total() {
		t.Fatalf("histogram totals diverged: %d vs %d", fast.Hist.Total(), slow.Hist.Total())
	}
}

// TestOpenLoopTraceCacheReuse checks that a keyed open-loop run is
// identical whether its machine trace is computed or served from the
// trace cache, and that the cache actually gets hit.
func TestOpenLoopTraceCacheReuse(t *testing.T) {
	ResetTraceCache()
	k := knobs{ImpedancePct: 2, MaxCycles: 50000, WarmupCycles: 10000}
	runKeyed := func(pct float64) *Result {
		kk := k
		kk.ImpedancePct = pct
		opts := kk.options()
		opts.ProgKey = "test:alternator300"
		sys, err := NewSystem(alternator(300), opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := runKeyed(2)
	second := runKeyed(2) // same key: trace served from cache
	third := runKeyed(3)  // same trace, different network
	if st := TraceCacheStats(); st.Hits < 2 || st.Misses != 1 {
		t.Fatalf("trace cache not reused: %+v", st)
	}
	if first.MinV != second.MinV || first.MaxV != second.MaxV ||
		first.Cycles != second.Cycles || first.Energy != second.Energy {
		t.Fatalf("cached trace changed results: %+v vs %+v", first, second)
	}
	if third.MinV >= first.MinV {
		t.Fatalf("higher impedance should droop further: %g vs %g", third.MinV, first.MinV)
	}
}

// TestRunBatchMatchesSoloRun pins the batch kernel's bit-identity
// contract end to end: eight closed-loop systems advanced in lockstep
// must produce exactly the Results of eight solo Runs — including mixed
// programs, delays and budgets within one batch. The budgets are
// staggered so the batch drains one lane at a time, driving the lane
// count through the migration threshold and exercising the ExtractLane
// handoff to the per-run path mid-ring.
func TestRunBatchMatchesSoloRun(t *testing.T) {
	progs := []int{300, 250, 300, 280, 300, 250, 280, 300}
	delays := []int{0, 1, 2, 3, 0, 2, 1, 3}
	build := func(i int) Options {
		k := knobs{
			ImpedancePct: 2, MaxCycles: 40000 + uint64(i)*3000, WarmupCycles: 10000,
			Control: true, Delay: delays[i], Seed: int64(100 + i),
		}
		return k.options()
	}

	solo := make([]*Result, len(progs))
	for i := range progs {
		sys, err := NewSystem(alternator(progs[i]), build(i))
		if err != nil {
			t.Fatal(err)
		}
		if sys.openLoop() {
			t.Fatal("controlled run unexpectedly open-loop")
		}
		if solo[i], err = sys.Run(); err != nil {
			t.Fatal(err)
		}
	}

	systems := make([]*System, len(progs))
	for i := range progs {
		var err error
		if systems[i], err = NewSystem(alternator(progs[i]), build(i)); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := RunBatch(systems)
	if err != nil {
		t.Fatal(err)
	}
	for i := range progs {
		s, b := solo[i], batch[i]
		if s.Cycles != b.Cycles || s.Stats != b.Stats ||
			s.MinV != b.MinV || s.MaxV != b.MaxV ||
			s.Energy != b.Energy || s.Emergencies != b.Emergencies ||
			s.LowEvents != b.LowEvents || s.HighEvents != b.HighEvents {
			t.Fatalf("lane %d diverged from solo run:\nsolo  %+v\nbatch %+v", i, s, b)
		}
	}
}
