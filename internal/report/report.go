// Package report renders the experiment harness's tables and figures as
// text: aligned tables for the paper's tables and ASCII line/bar plots for
// its figures. Keeping the renderer dependency-free lets every experiment
// print the same rows and series the paper reports without a plotting
// stack.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid. Rows need not all have the same width; cells are
// right-aligned under their headers.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row formatting each value with %v (floats with %g).
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			} else if i >= len(widths) {
				widths = append(widths, len(c))
			}
		}
	}
	var sb strings.Builder
	for i, h := range t.Headers {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths)))
	for _, row := range t.Rows {
		sb.Reset()
		for i, c := range row {
			width := 8
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", width, c)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func lineWidth(widths []int) int {
	total := 0
	for _, v := range widths {
		total += v + 2
	}
	if total > 2 {
		total -= 2
	}
	return total
}

// LinePlot renders one or more series as an ASCII chart. All series share
// the x axis (sample index) and the y scale.
type LinePlot struct {
	Title  string
	YLabel string
	Series []Series
	Width  int // columns; default 72
	Height int // rows; default 16
	Notes  []string
}

// Series is one named line.
type Series struct {
	Name string
	Data []float64
}

// Render draws the plot.
func (p *LinePlot) Render(w io.Writer) {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	if p.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", p.Title, strings.Repeat("=", len(p.Title)))
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range p.Series {
		for _, v := range s.Data {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(s.Data) > maxLen {
			maxLen = len(s.Data)
		}
	}
	if maxLen == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if hi == lo {
		hi = lo + 1
	}
	marks := []byte{'*', 'o', '+', 'x', '#'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		mark := marks[si%len(marks)]
		for x := 0; x < width; x++ {
			idx := x * (len(s.Data) - 1) / maxCol(width-1)
			if idx >= len(s.Data) {
				continue
			}
			v := s.Data[idx]
			row := int(float64(height-1) * (hi - v) / (hi - lo))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][x] = mark
		}
	}
	for r, line := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%9.4g ", hi)
		} else if r == height-1 {
			label = fmt.Sprintf("%9.4g ", lo)
		} else if r == height/2 {
			label = fmt.Sprintf("%9.4g ", (hi+lo)/2)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	var legend []string
	for si, s := range p.Series {
		legend = append(legend, fmt.Sprintf("%c %s", marks[si%len(marks)], s.Name))
	}
	fmt.Fprintf(w, "           %s", strings.Join(legend, "   "))
	if p.YLabel != "" {
		fmt.Fprintf(w, "   (y: %s)", p.YLabel)
	}
	fmt.Fprintln(w)
	for _, n := range p.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func maxCol(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// BarChart renders labeled horizontal bars (used for the Figure 10 voltage
// distributions and per-benchmark comparisons).
type BarChart struct {
	Title  string
	Unit   string
	Labels []string
	Values []float64
	Width  int // bar columns; default 50
	Notes  []string
}

// Render draws the chart.
func (b *BarChart) Render(w io.Writer) {
	width := b.Width
	if width <= 0 {
		width = 50
	}
	if b.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", b.Title, strings.Repeat("=", len(b.Title)))
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range b.Values {
		if v > maxVal {
			maxVal = v
		}
		if i < len(b.Labels) && len(b.Labels[i]) > maxLabel {
			maxLabel = len(b.Labels[i])
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	for i, v := range b.Values {
		label := ""
		if i < len(b.Labels) {
			label = b.Labels[i]
		}
		n := int(float64(width) * v / maxVal)
		fmt.Fprintf(w, "%-*s |%s %.4g%s\n", maxLabel, label, strings.Repeat("#", n), v, b.Unit)
	}
	for _, n := range b.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}
