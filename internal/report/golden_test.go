package report

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file tests pin the exact rendered bytes of each figure/table
// shape. The experiment suite's determinism contract ("output is
// byte-identical at any -parallel setting") is only as strong as the
// renderer's stability, so any formatting change must be deliberate:
// regenerate with
//
//	go test ./internal/report -run Golden -update
//
// and review the testdata diff.
var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s rendering changed; rerun with -update if intended.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenTable(t *testing.T) {
	tbl := &Table{
		Title:   "Table 2 shape: emergencies per impedance",
		Headers: []string{"benchmark", "100%", "150%", "200%", "300%"},
		Notes:   []string{"counts are emergency cycles in the measured window"},
	}
	tbl.AddRow("swim", "0", "12", "340", "1204")
	tbl.AddRowf("gcc", 0, 3, 77.5, 901)
	tbl.AddRow("stressmark", "55", "1020", "8100", "22013")
	var buf bytes.Buffer
	tbl.Render(&buf)
	checkGolden(t, "table", buf.Bytes())
}

func TestGoldenLinePlot(t *testing.T) {
	// A resonance-shaped pair of series, the Figure 2-6 shape.
	var damped, envelope []float64
	for i := 0; i < 120; i++ {
		x := float64(i) / 8
		damped = append(damped, math.Exp(-x/6)*math.Cos(2*x))
		envelope = append(envelope, math.Exp(-x/6))
	}
	p := &LinePlot{
		Title:  "Fig 3 shape: step response",
		YLabel: "voltage (V)",
		Series: []Series{{Name: "response", Data: damped}, {Name: "envelope", Data: envelope}},
		Notes:  []string{"50 MHz package resonance"},
	}
	var buf bytes.Buffer
	p.Render(&buf)
	checkGolden(t, "lineplot", buf.Bytes())
}

func TestGoldenBarChart(t *testing.T) {
	b := &BarChart{
		Title:  "Fig 10 shape: voltage distribution",
		Unit:   "%",
		Labels: []string{"<0.95V", "0.95-1.00V", "1.00-1.05V", ">1.05V"},
		Values: []float64{0.4, 48.1, 50.2, 1.3},
		Notes:  []string{"fraction of measured cycles"},
	}
	var buf bytes.Buffer
	b.Render(&buf)
	checkGolden(t, "barchart", buf.Bytes())
}
