package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Headers: []string{"name", "value"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRowf("beta", 2.5)
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Demo", "name", "alpha", "beta", "2.5", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := &Table{Headers: []string{"a"}}
	tbl.AddRow("x", "extra", "cells")
	var buf bytes.Buffer
	tbl.Render(&buf) // must not panic
	if !strings.Contains(buf.String(), "extra") {
		t.Error("extra cells dropped")
	}
}

func TestLinePlotRender(t *testing.T) {
	p := &LinePlot{
		Title:  "Wave",
		YLabel: "V",
		Series: []report_series{{Name: "s1", Data: []float64{0, 1, 0, -1, 0}}},
	}
	var buf bytes.Buffer
	p.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Wave") || !strings.Contains(out, "s1") || !strings.Contains(out, "*") {
		t.Errorf("plot output:\n%s", out)
	}
}

// alias so the test file documents that Series is the exported name.
type report_series = Series

func TestLinePlotEmpty(t *testing.T) {
	var buf bytes.Buffer
	(&LinePlot{Title: "Empty"}).Render(&buf)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty plot should say so")
	}
}

func TestLinePlotConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	(&LinePlot{Series: []Series{{Name: "c", Data: []float64{5, 5, 5}}}}).Render(&buf)
	if buf.Len() == 0 {
		t.Error("constant series must render")
	}
}

func TestBarChartRender(t *testing.T) {
	b := &BarChart{
		Title:  "Bars",
		Labels: []string{"one", "two"},
		Values: []float64{1, 2},
		Unit:   "mV",
	}
	var buf bytes.Buffer
	b.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "one") || !strings.Contains(out, "##") {
		t.Errorf("bar chart output:\n%s", out)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	var buf bytes.Buffer
	(&BarChart{Labels: []string{"z"}, Values: []float64{0}}).Render(&buf)
	if buf.Len() == 0 {
		t.Error("zero-valued chart must render")
	}
}
