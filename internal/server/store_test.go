package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"didt/internal/spec"
	"didt/internal/store"
	"didt/internal/telemetry"
)

// postJSONFull posts a JSON body with optional extra headers and returns
// the full response plus its body (the header-level assertions — ETag,
// X-Didtd-Result-Source, 304 — need more than postJSON exposes).
func postJSONFull(t *testing.T, url, body string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func counterVal(reg *telemetry.Registry, name string) int64 {
	return reg.Snapshot().Counters[name]
}

func waitForCounter(t *testing.T, reg *telemetry.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if counterVal(reg, name) >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("counter %s never reached %d: %v", name, want, reg.Snapshot().Counters)
}

// storeServer builds a store-backed test server whose store shares the
// server's registry, so one snapshot answers both families of metrics.
func storeServer(t *testing.T, dir string, cfg Config) (*Server, string, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	st, err := store.Open(dir, store.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	cfg.Store = st
	s, ts := newTestServer(t, cfg)
	return s, ts.URL, reg
}

// TestServerStoreColdCoalescing is the tentpole's concurrency acceptance
// check: 6 concurrent identical spec-form requests against a cold store
// cost exactly one run-slot admission and one simulation — one leader
// runs the engine while everyone else coalesces onto its flight (or, if
// they arrive after it lands, reads the store). All six answers are
// byte-identical and carry the same strong ETag.
func TestServerStoreColdCoalescing(t *testing.T) {
	srv, tsURL, reg2 := storeServer(t, t.TempDir(), Config{MaxConcurrent: 2, QueueDepth: 8})
	started := make(chan struct{}, 6)
	gate := make(chan struct{})
	srv.testRunStarted = started
	srv.testRunGate = gate

	body := specBody(t, tinySpec())
	const n = 6
	type reply struct {
		code   int
		body   string
		etag   string
		source string
	}
	var wg sync.WaitGroup
	replies := make([]reply, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postJSONFull(t, tsURL+"/v1/simulate", body, nil)
			replies[i] = reply{resp.StatusCode, b, resp.Header.Get("ETag"), resp.Header.Get("X-Didtd-Result-Source")}
		}(i)
	}
	// Exactly one request reaches the run-start hook; hold it there until
	// every request has been counted in, so the rest are provably
	// concurrent with the (single) engine run.
	<-started
	waitForCounter(t, reg2, "didtd.requests_total", n)
	close(gate)
	wg.Wait()

	select {
	case <-started:
		t.Error("a second request reached the run-start hook: admission was not coalesced")
	default:
	}
	if runs := counterVal(reg2, "didtd.engine_runs_total"); runs != 1 {
		t.Errorf("engine_runs_total = %d, want 1", runs)
	}
	if puts := counterVal(reg2, "store.results.puts"); puts != 1 {
		t.Errorf("store puts = %d, want 1", puts)
	}
	followers := counterVal(reg2, "didtd.coalesced_total") + counterVal(reg2, "store.results.hits")
	if followers != n-1 {
		t.Errorf("coalesced+store hits = %d, want %d", followers, n-1)
	}
	for i, r := range replies {
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.code, r.body)
		}
		if r.body != replies[0].body || r.etag == "" || r.etag != replies[0].etag {
			t.Errorf("request %d diverges (etag %q vs %q)", i, r.etag, replies[0].etag)
		}
		switch r.source {
		case "run", "coalesced", "store":
		default:
			t.Errorf("request %d: unknown result source %q", i, r.source)
		}
	}
}

// TestServerStoreRestartWarmHit is the durability acceptance check: a
// result computed before a process death is served byte-identical (same
// ETag) by a fresh server over the same store directory, without running
// the engine or admitting a run — and If-None-Match turns even the body
// transfer into a 304.
func TestServerStoreRestartWarmHit(t *testing.T) {
	dir := t.TempDir()
	body := specBody(t, tinySpec())

	_, url1, _ := storeServer(t, dir, Config{MaxConcurrent: 2})
	resp1, b1 := postJSONFull(t, url1+"/v1/simulate", body, nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold request: status %d: %s", resp1.StatusCode, b1)
	}
	if src := resp1.Header.Get("X-Didtd-Result-Source"); src != "run" {
		t.Errorf("cold request source %q, want run", src)
	}
	etag := resp1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("cold response carries no ETag")
	}

	// "Restart": a brand-new server and registry over the same directory
	// (the store fsyncs on Put, so no shutdown handshake is needed).
	_, url2, reg2 := storeServer(t, dir, Config{MaxConcurrent: 2})
	resp2, b2 := postJSONFull(t, url2+"/v1/simulate", body, nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm request: status %d: %s", resp2.StatusCode, b2)
	}
	if b2 != b1 {
		t.Errorf("restarted response diverges:\n%s\nvs\n%s", b2, b1)
	}
	if got := resp2.Header.Get("ETag"); got != etag {
		t.Errorf("restarted ETag %q, want %q", got, etag)
	}
	if src := resp2.Header.Get("X-Didtd-Result-Source"); src != "store" {
		t.Errorf("warm request source %q, want store", src)
	}
	if runs := counterVal(reg2, "didtd.engine_runs_total"); runs != 0 {
		t.Errorf("engine_runs_total = %d after warm hit, want 0", runs)
	}

	// Conditional request: the client already holds the bytes.
	resp3, b3 := postJSONFull(t, url2+"/v1/simulate", body, map[string]string{"If-None-Match": etag})
	if resp3.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional request: status %d, want 304: %s", resp3.StatusCode, b3)
	}
	if b3 != "" {
		t.Errorf("304 carried a body: %q", b3)
	}
	if nm := counterVal(reg2, "didtd.not_modified_total"); nm != 1 {
		t.Errorf("not_modified_total = %d, want 1", nm)
	}
	if runs := counterVal(reg2, "didtd.engine_runs_total"); runs != 0 {
		t.Errorf("engine_runs_total = %d after 304, want 0 (no run admitted)", runs)
	}
}

// TestServerSweepStoreRoundTrip: sweep responses ride the same store —
// the repeat request is served from disk byte-identical, with the
// experiments header intact, and honours If-None-Match.
func TestServerSweepStoreRoundTrip(t *testing.T) {
	_, url, reg := storeServer(t, t.TempDir(), Config{MaxConcurrent: 2})
	body := `{"run":"fig2","cycles":20000,"warmup":10000,"iterations":200,"stress_iterations":250,"benchmarks":["swim","gcc"],"parallel":2}`

	resetAllCaches()
	resp1, b1 := postJSONFull(t, url+"/v1/sweep", body, nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold sweep: status %d: %s", resp1.StatusCode, b1)
	}
	if src := resp1.Header.Get("X-Didtd-Result-Source"); src != "run" {
		t.Errorf("cold sweep source %q, want run", src)
	}
	etag := resp1.Header.Get("ETag")

	// Cold caches again: the repeat must come from the result store, not
	// from the in-process memo.
	resetAllCaches()
	resp2, b2 := postJSONFull(t, url+"/v1/sweep", body, nil)
	if resp2.StatusCode != http.StatusOK || b2 != b1 {
		t.Fatalf("warm sweep: status %d, identical=%v", resp2.StatusCode, b2 == b1)
	}
	if src := resp2.Header.Get("X-Didtd-Result-Source"); src != "store" {
		t.Errorf("warm sweep source %q, want store", src)
	}
	if h := resp2.Header.Get("X-Didtd-Experiments"); h != "fig2" {
		t.Errorf("warm sweep X-Didtd-Experiments = %q, want fig2", h)
	}
	if runs := counterVal(reg, "didtd.engine_runs_total"); runs != 1 {
		t.Errorf("engine_runs_total = %d, want 1", runs)
	}

	resp3, _ := postJSONFull(t, url+"/v1/sweep", body, map[string]string{"If-None-Match": etag})
	if resp3.StatusCode != http.StatusNotModified {
		t.Errorf("conditional sweep: status %d, want 304", resp3.StatusCode)
	}
}

// TestServerBatch: /v1/batch answers one NDJSON record per entry —
// invalid entries as immediate errors, duplicates deduplicated into one
// simulation — and warms the shared store for later single requests.
func TestServerBatch(t *testing.T) {
	_, url, reg := storeServer(t, t.TempDir(), Config{MaxConcurrent: 2})

	okSpec := tinySpec()
	variant := tinySpec()
	variant.Workload.Iterations = 151
	var bad spec.RunSpec
	bad.Sensor.DelayCycles = -1

	req, err := json.Marshal(BatchRequest{Specs: []spec.RunSpec{okSpec, okSpec, variant, bad}})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSONFull(t, url+"/v1/batch", string(req), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}

	records := map[int]BatchRecord{}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec BatchRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("record is not JSON: %v\n%s", err, sc.Text())
		}
		records[rec.Index] = rec
	}
	if len(records) != 4 {
		t.Fatalf("got %d records, want 4:\n%s", len(records), body)
	}

	if rec := records[3]; rec.Status != "error" || !strings.Contains(rec.Error, "delay_cycles") {
		t.Errorf("invalid entry record = %+v, want bad-spec error", rec)
	}
	resolvedOK, err := okSpec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 1} {
		rec := records[idx]
		if rec.Status != "ok" || rec.SpecKey != resolvedOK.Key() {
			t.Fatalf("record %d = %+v, want ok with key %s", idx, rec, resolvedOK.Key())
		}
		var sim SimulateResponse
		if err := json.Unmarshal(rec.Body, &sim); err != nil {
			t.Fatalf("record %d body is not a simulate response: %v", idx, err)
		}
		if sim.SpecKey != resolvedOK.Key() {
			t.Errorf("record %d body spec_key %q, want %q", idx, sim.SpecKey, resolvedOK.Key())
		}
	}
	if string(records[0].Body) != string(records[1].Body) {
		t.Error("deduplicated entries answered different bodies")
	}
	if records[2].Status != "ok" || records[2].SpecKey == resolvedOK.Key() {
		t.Errorf("variant record = %+v, want ok under its own key", records[2])
	}

	if n := counterVal(reg, "didtd.batch.entries_total"); n != 4 {
		t.Errorf("batch entries_total = %d, want 4", n)
	}
	if n := counterVal(reg, "didtd.batch.deduped_total"); n != 1 {
		t.Errorf("batch deduped_total = %d, want 1", n)
	}
	if runs := counterVal(reg, "didtd.engine_runs_total"); runs != 2 {
		t.Errorf("engine_runs_total = %d, want 2 (dup collapsed, invalid never ran)", runs)
	}

	// The batch warmed the store: the same spec through /v1/simulate is a
	// disk hit whose bytes compact to exactly the batch record's body.
	single, sb := postJSONFull(t, url+"/v1/simulate", specBody(t, okSpec), nil)
	if single.StatusCode != http.StatusOK {
		t.Fatalf("post-batch simulate: status %d: %s", single.StatusCode, sb)
	}
	if src := single.Header.Get("X-Didtd-Result-Source"); src != "store" {
		t.Errorf("post-batch simulate source %q, want store", src)
	}
	var tmp any
	if err := json.Unmarshal([]byte(sb), &tmp); err != nil {
		t.Fatal(err)
	}
	recompact, err := json.Marshal(tmp)
	if err != nil {
		t.Fatal(err)
	}
	var batchBody any
	if err := json.Unmarshal(records[0].Body, &batchBody); err != nil {
		t.Fatal(err)
	}
	batchRecompact, err := json.Marshal(batchBody)
	if err != nil {
		t.Fatal(err)
	}
	if string(recompact) != string(batchRecompact) {
		t.Errorf("batch record body diverges from /v1/simulate body:\n%s\nvs\n%s", batchRecompact, recompact)
	}
}

// TestServerBatchValidation: the batch-specific 400 paths.
func TestServerBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	big := `{"specs":[` + strings.Repeat(`{},`, maxBatchEntries) + `{}]}`
	for _, tc := range []struct {
		name, body string
	}{
		{"no specs", `{"specs":[]}`},
		{"missing field", `{}`},
		{"too many entries", big},
	} {
		code, body := postJSON(t, ts.URL+"/v1/batch", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, code, body)
		}
	}
}

// TestSimulateSeedOnlyAppliedWhenSet is the regression test for the seed
// satellite: an absent seed must leave the spec's seed unset (resolved to
// the same default the CLI uses when -seed is not passed), while an
// explicit "seed":0 is a real seed — and the two must resolve to the same
// run, matching the CLI's flag semantics end to end.
func TestSimulateSeedOnlyAppliedWhenSet(t *testing.T) {
	// Unit level: the request → spec mapping.
	noSeed := &SimulateRequest{Workload: "stressmark"}
	spNo, err := noSeed.spec()
	if err != nil {
		t.Fatal(err)
	}
	if spNo.Seed.Explicit {
		t.Error("absent seed produced an explicit spec seed")
	}
	zero := int64(0)
	withZero := &SimulateRequest{Workload: "stressmark", Seed: &zero}
	spZero, err := withZero.spec()
	if err != nil {
		t.Fatal(err)
	}
	if !spZero.Seed.Explicit || spZero.Seed.Value != 0 {
		t.Errorf("explicit zero seed mapped to %+v", spZero.Seed)
	}
	// CLI equivalence: the CLI leaves the seed unset when -seed is absent
	// and WithDefaults pins unset to 0, so both requests name one run.
	rNo, err := spNo.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	rZero, err := spZero.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if rNo.Key() != rZero.Key() {
		t.Errorf("absent seed and explicit 0 resolve to different runs: %s vs %s", rNo.Key(), rZero.Key())
	}
	seven := int64(7)
	spSeven, _ := (&SimulateRequest{Workload: "stressmark", Seed: &seven}).spec()
	rSeven, err := spSeven.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if rSeven.Key() == rZero.Key() {
		t.Error("seed 7 resolves to the same run as seed 0")
	}

	// Wire level: both spellings return byte-identical simulations, and a
	// spec-form request mixing in a seed is rejected.
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	flatNo := `{"workload":"stressmark","cycles":20000,"iterations":150}`
	flatZero := `{"workload":"stressmark","cycles":20000,"iterations":150,"seed":0}`
	code1, b1 := postJSON(t, ts.URL+"/v1/simulate", flatNo)
	code2, b2 := postJSON(t, ts.URL+"/v1/simulate", flatZero)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("status %d/%d: %s %s", code1, code2, b1, b2)
	}
	if b1 != b2 {
		t.Errorf("absent seed and explicit 0 answered different bodies:\n%s\nvs\n%s", b1, b2)
	}
	mixed := specBody(t, tinySpec())
	mixed = strings.TrimSuffix(mixed, "}") + `,"seed":0}`
	if code, body := postJSON(t, ts.URL+"/v1/simulate", mixed); code != http.StatusBadRequest {
		t.Errorf("spec+seed: status %d, want 400: %s", code, body)
	}
}
