package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"didt/internal/core"
	"didt/internal/experiments"
	"didt/internal/pdn"
	"didt/internal/telemetry"
	"didt/internal/workload"
)

// tinySweep is a cheap sweep configuration shared by the integration
// tests (same shape the experiments package uses for its own tiny tests).
func tinySweep(parallel int) string {
	return fmt.Sprintf(`{"run":"table2","cycles":30000,"warmup":10000,"iterations":300,"stress_iterations":250,"benchmarks":["swim","gcc"],"parallel":%d}`, parallel)
}

func tinyConfig() experiments.Config {
	cfg := experiments.Default()
	cfg.Cycles = 30_000
	cfg.Warmup = 10_000
	cfg.Iterations = 300
	cfg.StressIter = 250
	cfg.Benchmarks = []string{"swim", "gcc"}
	return cfg
}

// resetAllCaches drops every process-wide memo so each render genuinely
// recomputes (the byte-identity test must exercise the parallel path, not
// replay cached results).
func resetAllCaches() {
	experiments.ResetMemo()
	workload.ResetProgramCache()
	pdn.ResetKernelCache()
	core.ResetEnvelopeCache()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, string(b)
}

// TestServerSweepByteIdentical is the service's determinism contract: the
// /v1/sweep response body is exactly the experiment's rendered output —
// the bytes cmd/experiments prints — and is byte-identical at any
// parallelism setting, with caches cold or warm.
func TestServerSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep comparison in -short mode")
	}
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})

	resetAllCaches()
	var want bytes.Buffer
	if err := experiments.Registry()["table2"](tinyConfig(), &want); err != nil {
		t.Fatalf("local render: %v", err)
	}

	for _, parallel := range []int{1, 8} {
		resetAllCaches()
		code, body := postJSON(t, ts.URL+"/v1/sweep", tinySweep(parallel))
		if code != http.StatusOK {
			t.Fatalf("parallel=%d: status %d: %s", parallel, code, body)
		}
		if body != want.String() {
			t.Errorf("parallel=%d response diverges from cmd/experiments output\ngot:\n%s\nwant:\n%s", parallel, body, want.String())
		}
	}
}

// TestServerSweepRailsByteIdentical extends the determinism contract to
// the multi-rail family: the rail-graph experiments registered after the
// single-rail refactor are served through the same generic sweep path —
// no server changes — and their bytes match cmd/experiments output at any
// parallelism.
func TestServerSweepRailsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep comparison in -short mode")
	}
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})

	ids := []string{"rails-thresholds", "rails-dvs"}
	resetAllCaches()
	var want bytes.Buffer
	for _, id := range ids {
		if err := experiments.Registry()[id](tinyConfig(), &want); err != nil {
			t.Fatalf("local render %s: %v", id, err)
		}
	}

	for _, parallel := range []int{1, 8} {
		resetAllCaches()
		req := fmt.Sprintf(`{"runs":["rails-thresholds","rails-dvs"],"cycles":30000,"warmup":10000,"iterations":300,"stress_iterations":250,"benchmarks":["swim","gcc"],"parallel":%d}`, parallel)
		code, body := postJSON(t, ts.URL+"/v1/sweep", req)
		if code != http.StatusOK {
			t.Fatalf("parallel=%d: status %d: %s", parallel, code, body)
		}
		if body != want.String() {
			t.Errorf("parallel=%d rails response diverges from cmd/experiments output\ngot:\n%s\nwant:\n%s", parallel, body, want.String())
		}
	}
}

// TestServerSweepValidation: malformed and unknown requests are rejected
// before admission, with no work started.
func TestServerSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
	}{
		{"bad json", `{"run":`},
		{"unknown field", `{"experiment":"table2"}`},
		{"unknown id", `{"run":"fig99"}`},
		{"no id", `{"quick":true}`},
		{"unknown id in runs", `{"runs":["table2","nope"]}`},
	} {
		code, body := postJSON(t, ts.URL+"/v1/sweep", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, code, body)
		}
	}
}

// TestServerGracefulShutdown: BeginShutdown lets the in-flight request
// finish (and its response stays correct) while new requests get 503, and
// Drain returns once the in-flight work completes.
func TestServerGracefulShutdown(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Config{MaxConcurrent: 1, QueueDepth: 0, Registry: reg})
	started := make(chan struct{}, 1)
	gate := make(chan struct{})
	s.testRunStarted = started
	s.testRunGate = gate
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resetAllCaches()
	var want bytes.Buffer
	cfg := tinyConfig()
	cfg.Cycles, cfg.Iterations = 20_000, 200
	if err := experiments.Registry()["fig2"](cfg, &want); err != nil {
		t.Fatalf("local render: %v", err)
	}
	resetAllCaches()

	type reply struct {
		code int
		body string
	}
	first := make(chan reply, 1)
	go func() {
		code, body := postJSON(t, ts.URL+"/v1/sweep",
			`{"run":"fig2","cycles":20000,"warmup":10000,"iterations":200,"stress_iterations":250,"benchmarks":["swim","gcc"],"parallel":2}`)
		first <- reply{code, body}
	}()
	<-started // the request holds the only run slot, blocked on the gate

	s.BeginShutdown()

	// New work is turned away while the first request is still running.
	code, body := postJSON(t, ts.URL+"/v1/sweep", tinySweep(1))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503: %s", code, body)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"stressmark"}`); code != http.StatusServiceUnavailable {
		t.Fatalf("simulate during drain: status %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", resp.StatusCode)
	}

	close(gate) // release the in-flight request

	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(drainCtx) }()

	r := <-first
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request: status %d, want 200: %s", r.code, r.body)
	}
	if r.body != want.String() {
		t.Errorf("drained response diverges from direct render\ngot:\n%s\nwant:\n%s", r.body, want.String())
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestServerAdmissionOverflow: with one run slot and a one-deep queue, a
// third concurrent request is rejected with 429, and the admission queue
// gauge reports the queued request.
func TestServerAdmissionOverflow(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1, Registry: reg})
	started := make(chan struct{}, 2)
	gate := make(chan struct{})
	s.testRunStarted = started
	s.testRunGate = gate
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Distinct bodies: identical requests would coalesce onto one flight
	// and never contend for admission — this test is about the queue.
	done := make(chan struct{}, 2)
	go func() {
		postJSON(t, ts.URL+"/v1/simulate", `{"workload":"stressmark","cycles":20000,"iterations":200}`)
		done <- struct{}{}
	}()
	<-started // first request occupies the run slot

	go func() {
		postJSON(t, ts.URL+"/v1/simulate", `{"workload":"stressmark","cycles":20000,"iterations":201}`)
		done <- struct{}{}
	}()
	// Wait for the second request to be admitted into the queue.
	waitForGauge(t, reg, "didtd.admission.queue_depth", 1)

	code, body := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"stressmark","cycles":20000,"iterations":202}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429: %s", code, body)
	}

	close(gate) // release both admitted requests
	<-started   // the queued request starts once the first releases its slot
	<-done
	<-done
}

func waitForGauge(t *testing.T, reg *telemetry.Registry, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if snap := reg.Snapshot(); snap.Gauges[name] == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("gauge %s never reached %v: %v", name, want, reg.Snapshot().Gauges)
}

// TestServerConcurrentMemoSingleflight drives the memo cache under
// capacity pressure from concurrent requests: 6 requests over 3 distinct
// seeds against a 2-entry memo must compute each study exactly once
// (pre-LRU, the flush-everything eviction dropped in-flight entries and
// concurrent requests recomputed them).
func TestServerConcurrentMemoSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent sweep fan-out in -short mode")
	}
	s := New(Config{MaxConcurrent: 6, QueueDepth: 6, Registry: telemetry.NewRegistry()})
	started := make(chan struct{}, 6)
	gate := make(chan struct{})
	s.testRunStarted = started
	s.testRunGate = gate
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resetAllCaches()
	experiments.SetMemoCapacity(2)
	defer func() {
		experiments.SetMemoCapacity(64)
		resetAllCaches()
	}()
	before := experiments.MemoStats()

	// ablation-window renders through the shared memo; seed is part of
	// the memo key, so 3 seeds x 2 requests = 3 distinct studies, each
	// requested twice concurrently.
	var wg sync.WaitGroup
	bodies := make([][]string, 3)
	for seed := 0; seed < 3; seed++ {
		bodies[seed] = make([]string, 2)
		for rep := 0; rep < 2; rep++ {
			wg.Add(1)
			go func(seed, rep int) {
				defer wg.Done()
				req := fmt.Sprintf(`{"run":"ablation-window","cycles":30000,"warmup":10000,"iterations":300,"stress_iterations":250,"benchmarks":["swim","gcc"],"seed":%d,"parallel":2}`, seed)
				code, body := postJSON(t, ts.URL+"/v1/sweep", req)
				if code != http.StatusOK {
					t.Errorf("seed %d rep %d: status %d: %s", seed, rep, code, body)
					return
				}
				bodies[seed][rep] = body
			}(seed, rep)
		}
	}
	// Hold every admitted leader at the gate, then release them together so
	// the memo lookups race: wire-level coalescing admits one leader per
	// distinct seed (the duplicate of each pair rides its leader's flight),
	// so exactly 3 requests reach the run-start hook.
	for i := 0; i < 3; i++ {
		<-started
	}
	close(gate)
	wg.Wait()

	for seed := range bodies {
		if bodies[seed][0] != bodies[seed][1] {
			t.Errorf("seed %d: concurrent responses differ", seed)
		}
		if bodies[seed][0] == "" {
			t.Errorf("seed %d: empty response", seed)
		}
	}
	after := experiments.MemoStats()
	if misses := after.Misses - before.Misses; misses != 3 {
		t.Errorf("memo misses = %d, want 3 (each distinct study computed exactly once; in-flight entries must survive capacity pressure)", misses)
	}
}

// TestServerSimulate: the single-run endpoint returns a deterministic
// JSON summary (identical across repeat requests) and validates input.
func TestServerSimulate(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})

	req := `{"workload":"stressmark","cycles":30000,"iterations":300,"control":true,"mechanism":"FU/DL1","delay":2}`
	code, body1 := postJSON(t, ts.URL+"/v1/simulate", req)
	if code != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", code, body1)
	}
	var resp SimulateResponse
	if err := json.Unmarshal([]byte(body1), &resp); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, body1)
	}
	if resp.Workload != "stressmark" || resp.Cycles == 0 || resp.Instructions == 0 {
		t.Errorf("implausible summary: %+v", resp)
	}
	if resp.Control == nil || resp.Control.Mechanism != "FU/DL1" {
		t.Errorf("control summary missing or wrong: %+v", resp.Control)
	}

	_, body2 := postJSON(t, ts.URL+"/v1/simulate", req)
	if body1 != body2 {
		t.Errorf("repeat simulate responses differ:\n%s\n---\n%s", body1, body2)
	}

	for _, tc := range []struct {
		name, body string
	}{
		{"no workload", `{"cycles":1000}`},
		{"unknown workload", `{"workload":"doom"}`},
		{"unknown mechanism", `{"workload":"stressmark","mechanism":"DVFS"}`},
	} {
		if code, body := postJSON(t, ts.URL+"/v1/simulate", tc.body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, code, body)
		}
	}
}

// TestServerMetricsAndHealth: the observability endpoints serve without
// admission control and report service state.
func TestServerMetricsAndHealth(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, ts := newTestServer(t, Config{Registry: reg})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, b)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %s", resp.StatusCode, b)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, b)
	}
	if _, ok := snap.Counters["didtd.requests_total"]; !ok {
		t.Errorf("metrics missing didtd.requests_total: %s", b)
	}

	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %d", resp.StatusCode)
	}
}

// TestServerClientGoneAtGateReleasesSlot: regression for the unguarded
// test-hook channel operations in admit. The hook channels are unbuffered
// and sit on the path of every admitted request — including SSE progress
// streams — so a client that vanished while its request was parked on the
// run-start hook or the gate once wedged the only run slot forever. An
// abandoned request must release its slot so later requests still run.
func TestServerClientGoneAtGateReleasesSlot(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Config{MaxConcurrent: 1, QueueDepth: 0, Registry: reg})
	started := make(chan struct{}, 2)
	gate := make(chan struct{})
	s.testRunStarted = started
	s.testRunGate = gate
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/simulate",
		strings.NewReader(`{"workload":"stressmark","cycles":20000,"iterations":200}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errs := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errs <- err
	}()
	<-started // the request holds the only run slot, parked on the gate
	cancel()  // the client walks away
	if err := <-errs; err == nil {
		t.Fatal("cancelled request unexpectedly completed")
	}
	// The abandoned request must give its slot back...
	waitForGauge(t, reg, "didtd.active_requests", 0)
	// ...so a fresh request is admitted and completes once the gate opens.
	close(gate)
	code, body := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"stressmark","cycles":20000,"iterations":200}`)
	if code != http.StatusOK {
		t.Fatalf("request after abandoned predecessor: status %d, want 200: %s", code, body)
	}
}
