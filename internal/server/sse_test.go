package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"didt/internal/telemetry"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// parseSSE splits a text/event-stream body into events.
func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if cur.name != "" || cur.data != "" {
		events = append(events, cur)
	}
	return events
}

// TestSweepSSEByteIdentical is the streaming contract: the final result
// event's body is byte-for-byte the non-streaming response for the same
// request, and the experiment events narrate the sweep in order.
func TestSweepSSEByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	resetAllCaches()
	tracer := telemetry.NewTracer(0)
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, Spans: tracer})

	// Non-streaming reference.
	code, plain := postJSON(t, ts.URL+"/v1/sweep", tinySweep(2))
	if code != http.StatusOK {
		t.Fatalf("plain sweep: status %d: %s", code, plain)
	}

	// Streaming request for the same sweep (cache reset so the streaming
	// run actually computes).
	resetAllCaches()
	body := strings.TrimSuffix(tinySweep(2), "}") + `,"progress":"sse"}`
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sse sweep: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	var raw strings.Builder
	if _, err := func() (int64, error) {
		buf := make([]byte, 32<<10)
		var n int64
		for {
			m, err := resp.Body.Read(buf)
			raw.Write(buf[:m])
			n += int64(m)
			if err != nil {
				if err.Error() == "EOF" {
					return n, nil
				}
				return n, err
			}
		}
	}(); err != nil {
		t.Fatal(err)
	}

	events := parseSSE(t, raw.String())
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}

	// Experiment events: start/done pairs in order, indices consistent.
	var starts, dones []string
	for _, ev := range events[:len(events)-1] {
		if ev.name != "experiment" {
			t.Fatalf("unexpected mid-stream event %q: %s", ev.name, ev.data)
		}
		var e struct {
			Experiment string  `json:"experiment"`
			State      string  `json:"state"`
			Index      int     `json:"index"`
			Total      int     `json:"total"`
			DurationMS float64 `json:"duration_ms"`
		}
		if err := json.Unmarshal([]byte(ev.data), &e); err != nil {
			t.Fatalf("experiment event is not JSON: %v: %s", err, ev.data)
		}
		switch e.State {
		case "start":
			starts = append(starts, e.Experiment)
		case "done":
			dones = append(dones, e.Experiment)
			if e.DurationMS < 0 {
				t.Errorf("done event with negative duration: %s", ev.data)
			}
		default:
			t.Errorf("unknown state %q", e.State)
		}
	}
	if len(starts) == 0 || len(starts) != len(dones) {
		t.Fatalf("unbalanced experiment events: %d starts, %d dones", len(starts), len(dones))
	}
	for i := range starts {
		if starts[i] != dones[i] {
			t.Errorf("event order: start[%d]=%s but done[%d]=%s", i, starts[i], i, dones[i])
		}
	}

	// Final event reconstructs the non-streaming body exactly.
	final := events[len(events)-1]
	if final.name != "result" {
		t.Fatalf("last event is %q, want result: %s", final.name, final.data)
	}
	var res struct {
		Experiments []string `json:"experiments"`
		Body        string   `json:"body"`
	}
	if err := json.Unmarshal([]byte(final.data), &res); err != nil {
		t.Fatalf("result event is not JSON: %v", err)
	}
	if res.Body != plain {
		t.Errorf("SSE result body differs from non-streaming response\nsse %d bytes, plain %d bytes", len(res.Body), len(plain))
	}
	if len(res.Experiments) != len(starts) {
		t.Errorf("result lists %d experiments, events narrated %d", len(res.Experiments), len(starts))
	}

	// The tracer saw the sweep's experiment spans.
	spans := tracer.Spans()
	var expSpans int
	for _, sp := range spans {
		if sp.Name == "sweep.experiment" {
			expSpans++
		}
	}
	if expSpans == 0 {
		t.Error("no sweep.experiment spans recorded during SSE sweep")
	}
}

// TestSweepSSEQueryParam: ?progress=sse selects streaming without a body
// field.
func TestSweepSSEQueryParam(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	resetAllCaches()
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	resp, err := http.Post(ts.URL+"/v1/sweep?progress=sse", "application/json", strings.NewReader(tinySweep(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
}
