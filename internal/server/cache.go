package server

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"strings"

	"didt/internal/sim"
	"didt/internal/store"
)

// Wire-level result caching: every cacheable work request (non-SSE sweep,
// simulate, batch entry) resolves through one path — the durable
// content-addressed store first, then a per-key singleflight, then the
// engine. The determinism contract makes the three sources
// indistinguishable byte-for-byte, so the only observable differences are
// cost (a store hit never admits a run slot, a coalesced request never
// runs the engine) and the X-Didtd-Result-Source header.
//
// Responses carry a strong ETag derived from the request key and the
// result digest; If-None-Match answers 304 without touching the engine —
// on a warm store, without even reading the run from disk into the
// response.

// wireResult is one cached response body with its entity tag.
type wireResult struct {
	body []byte
	etag string
}

// errAdmissionHandled reports that a flight leader failed admission: the
// admission path has already answered the request (429, 503, or nothing
// for a vanished client), so the handler must write nothing more.
var errAdmissionHandled = errors.New("didtd: admission answered the request")

// storeGet probes the durable store; nil-store servers always miss.
func (s *Server) storeGet(key string) (wireResult, bool) {
	if s.cfg.Store == nil {
		return wireResult{}, false
	}
	body, digest, ok := s.cfg.Store.Get(key)
	if !ok {
		return wireResult{}, false
	}
	return wireResult{body: body, etag: store.ETag(key, digest)}, true
}

// storePut persists a freshly computed body (best effort — a store write
// failure degrades durability, not the response) and derives the ETag.
func (s *Server) storePut(key string, body []byte) wireResult {
	digest := store.Digest(body)
	if s.cfg.Store != nil {
		if _, err := s.cfg.Store.Put(key, body); err != nil && s.cfg.Logger != nil {
			s.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "store put failed",
				slog.String("key", key), slog.String("err", err.Error()))
		}
	}
	return wireResult{body: body, etag: store.ETag(key, digest)}
}

// fetch resolves the keyed result: store hit, coalesced onto another
// request's in-progress flight, or computed by running the engine as the
// flight leader. ctx bounds only this caller's waiting; the leader's own
// computation runs under whatever context run chooses. admit, when
// non-nil, is invoked once if this call becomes the leader — it is the
// hook through which exactly one of N concurrent identical requests pays
// run-slot admission; returning ok=false aborts the flight with
// errAdmissionHandled. source reports where the bytes came from
// ("store", "coalesced", "run").
func (s *Server) fetch(ctx context.Context, key string, admit func() (release func(), ok bool), run func() ([]byte, error)) (res wireResult, source string, err error) {
	if res, ok := s.storeGet(key); ok {
		return res, "store", nil
	}
	for {
		f, leader := s.flights.Join(key)
		if !leader {
			res, err := f.Wait(ctx)
			if errors.Is(err, sim.ErrFlightAborted) {
				// The leader produced nothing (lost admission, client
				// vanished) — but it may have landed a store entry before
				// aborting. Re-probe, then contend for leadership.
				if res, ok := s.storeGet(key); ok {
					return res, "store", nil
				}
				continue
			}
			if err != nil {
				return wireResult{}, "", err
			}
			s.mCoalesced.Inc()
			return res, "coalesced", nil
		}
		// Leader. Double-check the store: between this request's probe and
		// winning leadership, a previous flight may have completed and
		// persisted — recomputing would break "N identical requests, one
		// simulation".
		if res, ok := s.storeGet(key); ok {
			s.flights.Abort(key, f)
			return res, "store", nil
		}
		if admit != nil {
			release, ok := admit()
			if !ok {
				s.flights.Abort(key, f)
				return wireResult{}, "", errAdmissionHandled
			}
			defer release()
		}
		s.mEngineRuns.Inc()
		body, err := run()
		if err != nil {
			if errors.Is(err, context.Canceled) && ctx.Err() != nil {
				// Leader-specific abandonment: the result never existed, so
				// waiters retry instead of inheriting a cancellation that
				// was never theirs.
				s.flights.Abort(key, f)
			} else {
				s.flights.Finish(key, f, wireResult{}, err)
			}
			return wireResult{}, "", err
		}
		res := s.storePut(key, body)
		s.flights.Finish(key, f, res, nil)
		return res, "run", nil
	}
}

// serveCached is the HTTP face of fetch: it answers w from the store, a
// coalesced flight, or a fresh engine run, attaching the strong ETag and
// honouring If-None-Match with 304.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, timeoutMS int64, contentType string, extra func(http.Header), run func(ctx context.Context) ([]byte, error)) {
	res, source, err := s.fetch(r.Context(), key,
		func() (func(), bool) { return s.admit(w, r) },
		func() ([]byte, error) {
			ctx, cancel := s.requestContext(r, timeoutMS)
			defer cancel()
			return run(ctx)
		})
	switch {
	case errors.Is(err, errAdmissionHandled):
		return // admit wrote the rejection (or the client is gone)
	case err != nil && r.Context().Err() != nil:
		setOutcome(r.Context(), "client_gone")
		return
	case err != nil:
		writeRunError(w, r, err)
		return
	}
	s.writeResult(w, r, res, contentType, extra, source)
}

// writeResult emits a cached/computed result body with its caching
// headers, short-circuiting to 304 when the client already holds these
// exact bytes.
func (s *Server) writeResult(w http.ResponseWriter, r *http.Request, res wireResult, contentType string, extra func(http.Header), source string) {
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set("ETag", res.etag)
	h.Set("X-Didtd-Result-Source", source)
	if extra != nil {
		extra(h)
	}
	if etagMatch(r.Header.Get("If-None-Match"), res.etag) {
		s.mNotModified.Inc()
		setOutcome(r.Context(), "not_modified")
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Write(res.body)
}

// etagMatch implements the If-None-Match comparison (RFC 9110 §13.1.2):
// a comma-separated list of entity tags, compared weakly (a W/ prefix on
// either side is ignored), with "*" matching any current representation.
func etagMatch(ifNoneMatch, etag string) bool {
	if ifNoneMatch == "" {
		return false
	}
	opaque := strings.TrimPrefix(etag, "W/")
	for _, candidate := range strings.Split(ifNoneMatch, ",") {
		candidate = strings.TrimSpace(candidate)
		if candidate == "*" {
			return true
		}
		if strings.TrimPrefix(candidate, "W/") == opaque {
			return true
		}
	}
	return false
}
