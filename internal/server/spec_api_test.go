package server

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"didt/internal/spec"
)

// specBody wraps a RunSpec into a simulate request body.
func specBody(t *testing.T, s spec.RunSpec) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Spec spec.RunSpec `json:"spec"`
	}{s})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func tinySpec() spec.RunSpec {
	var s spec.RunSpec
	s.Workload.Iterations = 150
	s.Budget.MaxCycles = 20_000
	s.Budget.WarmupCycles = 5_000
	return s
}

// TestSpecDefaultEndpoint: GET /v1/spec/default serves exactly the
// checked-in golden — the same bytes didtd -print-default-spec emits and
// internal/spec's own golden test pins.
func TestSpecDefaultEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/spec/default")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	want, err := os.ReadFile("../spec/testdata/default_spec.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(want) {
		t.Errorf("/v1/spec/default drifted from testdata/default_spec.json\ngot:\n%s\nwant:\n%s", body, want)
	}
}

// TestSimulateSpecIdenticalBodies: two requests carrying the same spec
// return byte-identical bodies, and the body carries the resolved spec's
// content hash.
func TestSimulateSpecIdenticalBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	body := specBody(t, tinySpec())
	code1, resp1 := postJSON(t, ts.URL+"/v1/simulate", body)
	code2, resp2 := postJSON(t, ts.URL+"/v1/simulate", body)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("status %d/%d: %s", code1, code2, resp1)
	}
	if resp1 != resp2 {
		t.Errorf("identical specs gave different bodies:\n%s\nvs\n%s", resp1, resp2)
	}
	resolved, err := tinySpec().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp1, resolved.Key()) {
		t.Errorf("response misses spec_key %s:\n%s", resolved.Key(), resp1)
	}
}

// TestSimulateSpecMatchesLegacy: the spec form and the legacy flat form of
// the same run produce the same simulation results (the spec form adds only
// the spec_key field).
func TestSimulateSpecMatchesLegacy(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	legacy := `{"workload":"stressmark","iterations":150,"cycles":20000,"warmup":5000}`
	codeL, respL := postJSON(t, ts.URL+"/v1/simulate", legacy)
	codeS, respS := postJSON(t, ts.URL+"/v1/simulate", specBody(t, tinySpec()))
	if codeL != http.StatusOK || codeS != http.StatusOK {
		t.Fatalf("status %d/%d: %s %s", codeL, codeS, respL, respS)
	}
	var l, s map[string]any
	if err := json.Unmarshal([]byte(respL), &l); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(respS), &s); err != nil {
		t.Fatal(err)
	}
	if _, ok := l["spec_key"]; ok {
		t.Error("legacy response must not carry spec_key")
	}
	delete(s, "spec_key")
	if len(l) != len(s) {
		t.Fatalf("field sets differ: %v vs %v", l, s)
	}
	for k, lv := range l {
		if sv := s[k]; sv != lv {
			t.Errorf("field %s: legacy %v vs spec %v", k, lv, sv)
		}
	}
}

// TestSimulateBadRequests: the 400 paths — mixed request forms, invalid
// specs, and misspelled names with did-you-mean hints.
func TestSimulateBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mixed := specBody(t, tinySpec())
	mixed = strings.TrimSuffix(mixed, "}") + `,"workload":"stressmark"}`
	for _, tc := range []struct {
		name, body, frag string
	}{
		{"mixed forms", mixed, "cannot be combined"},
		{"no workload", `{}`, "names no workload"},
		{"unknown benchmark", `{"workload":"gxc"}`, `did you mean "gcc"`},
		{"unknown mechanism", `{"workload":"stressmark","control":true,"mechanism":"FU/DL2"}`, `did you mean "FU/DL1"`},
		{"invalid spec", `{"spec":{"sensor":{"delay_cycles":-1}}}`, "delay_cycles"},
	} {
		code, body := postJSON(t, ts.URL+"/v1/simulate", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, code, body)
			continue
		}
		var env struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.Unmarshal([]byte(body), &env); err != nil {
			t.Errorf("%s: 400 body is not an error envelope: %v\n%s", tc.name, err, body)
			continue
		}
		if !strings.Contains(env.Error, tc.frag) {
			t.Errorf("%s: envelope misses %q: %s", tc.name, tc.frag, env.Error)
		}
		if env.Code != "bad_request" {
			t.Errorf("%s: code %q, want bad_request", tc.name, env.Code)
		}
	}
}

// TestSweepDidYouMean: misspelled experiment IDs and benchmark names in
// sweep requests fail through the same did-you-mean path the CLI uses.
func TestSweepDidYouMean(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body, frag string
	}{
		{"experiment id", `{"run":"fig41"}`, "did you mean"},
		{"benchmark", `{"run":"table2","benchmarks":["swum"]}`, `did you mean "swim"`},
	} {
		code, body := postJSON(t, ts.URL+"/v1/sweep", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, code, body)
			continue
		}
		var env struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &env); err != nil {
			t.Errorf("%s: 400 body is not an error envelope: %v\n%s", tc.name, err, body)
			continue
		}
		if !strings.Contains(env.Error, tc.frag) {
			t.Errorf("%s: envelope misses %q: %s", tc.name, tc.frag, env.Error)
		}
	}
}
